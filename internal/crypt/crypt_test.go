package crypt

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"math/rand"
	"testing"
	"testing/quick"

	"shield/internal/vfs"
)

func testKeyIV(t *testing.T) (DEK, [IVSize]byte) {
	t.Helper()
	key, err := NewDEK()
	if err != nil {
		t.Fatal(err)
	}
	iv, err := NewIV()
	if err != nil {
		t.Fatal(err)
	}
	return key, iv
}

func TestDEKFromBytes(t *testing.T) {
	if _, err := DEKFromBytes(make([]byte, 15)); err == nil {
		t.Fatal("short key accepted")
	}
	if _, err := DEKFromBytes(make([]byte, 17)); err == nil {
		t.Fatal("long key accepted")
	}
	raw := bytes.Repeat([]byte{7}, KeySize)
	dek, err := DEKFromBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dek[:], raw) {
		t.Fatal("round trip mismatch")
	}
}

func TestDEKStringRedacts(t *testing.T) {
	dek, _ := NewDEK()
	if s := dek.String(); bytes.Contains([]byte(s), dek[:4]) || s != "DEK(redacted)" {
		t.Fatalf("DEK leaked through String: %q", s)
	}
}

// TestStreamMatchesStdCTR: XORKeyStreamAt at offset 0 must equal the
// standard library CTR stream, and arbitrary offsets must equal the
// corresponding slice of that stream.
func TestStreamMatchesStdCTR(t *testing.T) {
	key, iv := testKeyIV(t)
	const n = 64 * 1024
	plain := make([]byte, n)
	rand.New(rand.NewSource(1)).Read(plain)

	block, err := aes.NewCipher(key[:])
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, n)
	cipher.NewCTR(block, iv[:]).XORKeyStream(want, plain)

	s, err := NewStream(key, iv)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, n)
	s.XORKeyStreamAt(got, plain, 0)
	if !bytes.Equal(want, got) {
		t.Fatal("offset-0 stream differs from stdlib CTR")
	}

	// Random offsets/lengths must match the same keystream.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		off := rng.Intn(n - 1)
		length := 1 + rng.Intn(n-off)
		chunk := make([]byte, length)
		s.XORKeyStreamAt(chunk, plain[off:off+length], int64(off))
		if !bytes.Equal(chunk, want[off:off+length]) {
			t.Fatalf("offset %d len %d differs", off, length)
		}
	}
}

// TestStreamIVCarry exercises counter overflow from the low 64 bits.
func TestStreamIVCarry(t *testing.T) {
	key, _ := testKeyIV(t)
	var iv [IVSize]byte
	for i := 8; i < 16; i++ {
		iv[i] = 0xff // low counter = max: first block increment carries
	}
	s, err := NewStream(key, iv)
	if err != nil {
		t.Fatal(err)
	}
	plain := make([]byte, 3*aes.BlockSize)

	// Contiguous encryption.
	all := make([]byte, len(plain))
	s.XORKeyStreamAt(all, plain, 0)
	// Same bytes encrypted block-by-block at offsets must agree.
	for off := 0; off < len(plain); off += aes.BlockSize {
		chunk := make([]byte, aes.BlockSize)
		s.XORKeyStreamAt(chunk, plain[off:off+aes.BlockSize], int64(off))
		if !bytes.Equal(chunk, all[off:off+aes.BlockSize]) {
			t.Fatalf("carry mismatch at offset %d", off)
		}
	}
}

// Property: encrypt then decrypt at any offset is the identity.
func TestEncryptDecryptRoundTripProperty(t *testing.T) {
	key, iv := testKeyIV(t)
	f := func(data []byte, off uint32) bool {
		ct := make([]byte, len(data))
		if err := EncryptAt(key, iv, ct, data, int64(off)); err != nil {
			return false
		}
		pt := make([]byte, len(data))
		if err := EncryptAt(key, iv, pt, ct, int64(off)); err != nil {
			return false
		}
		return bytes.Equal(pt, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: ciphertext differs from plaintext (for non-trivial input) and
// different offsets produce different ciphertext.
func TestCiphertextProperties(t *testing.T) {
	key, iv := testKeyIV(t)
	data := bytes.Repeat([]byte("A"), 1024)
	ct1 := make([]byte, len(data))
	ct2 := make([]byte, len(data))
	if err := EncryptAt(key, iv, ct1, data, 0); err != nil {
		t.Fatal(err)
	}
	if err := EncryptAt(key, iv, ct2, data, 1024); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ct1, data) {
		t.Fatal("ciphertext equals plaintext")
	}
	if bytes.Equal(ct1, ct2) {
		t.Fatal("different offsets produced identical ciphertext (keystream reuse)")
	}
}

func TestPBKDF2KnownVector(t *testing.T) {
	// RFC 6070-style vector adapted for SHA-256 (from RFC 7914 test data):
	// PBKDF2-HMAC-SHA256("passwd", "salt", 1, 64) prefix.
	got := PBKDF2SHA256([]byte("passwd"), []byte("salt"), 1, 8)
	want := []byte{0x55, 0xac, 0x04, 0x6e, 0x56, 0xe3, 0x08, 0x9f}
	if !bytes.Equal(got, want) {
		t.Fatalf("PBKDF2 vector mismatch: got %x want %x", got, want)
	}
}

func TestPBKDF2Properties(t *testing.T) {
	a := PBKDF2SHA256([]byte("pw"), []byte("salt"), 100, 48)
	b := PBKDF2SHA256([]byte("pw"), []byte("salt"), 100, 48)
	if !bytes.Equal(a, b) {
		t.Fatal("PBKDF2 not deterministic")
	}
	c := PBKDF2SHA256([]byte("pw2"), []byte("salt"), 100, 48)
	if bytes.Equal(a, c) {
		t.Fatal("different passwords produced the same key")
	}
	d := PBKDF2SHA256([]byte("pw"), []byte("salt2"), 100, 48)
	if bytes.Equal(a, d) {
		t.Fatal("different salts produced the same key")
	}
	if len(PBKDF2SHA256([]byte("x"), []byte("y"), 2, 100)) != 100 {
		t.Fatal("wrong derived length")
	}
}

func TestHMACVerify(t *testing.T) {
	key := []byte("k")
	data := []byte("data")
	tag := HMACSHA256(key, data)
	if !VerifyHMACSHA256(key, data, tag) {
		t.Fatal("valid tag rejected")
	}
	tag[0] ^= 1
	if VerifyHMACSHA256(key, data, tag) {
		t.Fatal("tampered tag accepted")
	}
}

// TestBufferedWriterEquivalence: any buffer size must produce the same
// ciphertext stream as unbuffered writing.
func TestBufferedWriterEquivalence(t *testing.T) {
	key, iv := testKeyIV(t)
	payload := make([]byte, 10000)
	rand.New(rand.NewSource(3)).Read(payload)

	write := func(bufSize int, pieces []int) []byte {
		fs := vfs.NewMem()
		f, _ := fs.Create("f")
		w := NewBufferedWriter(f, key, iv, bufSize)
		off := 0
		for _, p := range pieces {
			if off+p > len(payload) {
				p = len(payload) - off
			}
			if _, err := w.Write(payload[off : off+p]); err != nil {
				t.Fatal(err)
			}
			off += p
		}
		if _, err := w.Write(payload[off:]); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		data, _ := vfs.ReadFile(fs, "f")
		return data
	}

	ref := write(0, []int{100, 1, 977, 3000})
	for _, bufSize := range []int{1, 64, 512, 4096, 100000} {
		got := write(bufSize, []int{7, 700, 7000})
		if !bytes.Equal(ref, got) {
			t.Fatalf("bufSize=%d produced different ciphertext", bufSize)
		}
	}
}

// TestBufferedWriterSyncFlushes: Sync must persist buffered bytes.
func TestBufferedWriterSyncFlushes(t *testing.T) {
	key, iv := testKeyIV(t)
	fs := vfs.NewMem()
	f, _ := fs.Create("f")
	w := NewBufferedWriter(f, key, iv, 1<<20) // huge buffer: nothing auto-flushes
	if _, err := w.Write([]byte("hello world")); err != nil {
		t.Fatal(err)
	}
	if info, _ := fs.Stat("f"); info.Size != 0 {
		t.Fatalf("bytes reached disk before Sync: %d", info.Size)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	info, err := fs.Stat("f")
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != int64(len("hello world")) {
		t.Fatalf("Sync persisted %d bytes", info.Size)
	}
	w.Close()
}

// TestDecryptingReaderAt reads back what the writers stored, at offsets.
func TestDecryptingReaderAt(t *testing.T) {
	key, iv := testKeyIV(t)
	fs := vfs.NewMem()

	header := []byte("HDR!")
	payload := make([]byte, 5000)
	rand.New(rand.NewSource(4)).Read(payload)

	raw, _ := fs.Create("f")
	raw.Write(header)
	w := NewBufferedWriter(raw, key, iv, 256)
	w.Write(payload)
	w.Close()

	f, err := fs.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewDecryptingReaderAt(f, key, iv, int64(len(header)))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	size, err := r.Size()
	if err != nil {
		t.Fatal(err)
	}
	if size != int64(len(payload)) {
		t.Fatalf("size %d, want %d", size, len(payload))
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		off := rng.Intn(len(payload) - 1)
		length := 1 + rng.Intn(len(payload)-off)
		buf := make([]byte, length)
		if _, err := r.ReadAt(buf, int64(off)); err != nil && err.Error() != "EOF" {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, payload[off:off+length]) {
			t.Fatalf("ReadAt(%d,%d) mismatch", off, length)
		}
	}
}

// TestChunkedWriterErrorPropagation: writes after Close-induced drain should
// not panic, and output equals input length.
func TestChunkedWriterLengths(t *testing.T) {
	key, iv := testKeyIV(t)
	for _, total := range []int{0, 1, 4095, 4096, 4097, 1 << 20} {
		fs := vfs.NewMem()
		f, _ := fs.Create("f")
		w := NewChunkedWriter(f, key, iv, 4096, 3)
		payload := make([]byte, total)
		if _, err := w.Write(payload); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		info, _ := fs.Stat("f")
		if info.Size != int64(total) {
			t.Fatalf("total=%d: stored %d bytes", total, info.Size)
		}
	}
}
