package crypt

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"shield/internal/vfs"
)

func newTestSealer(t testing.TB) (*Sealer, DEK) {
	t.Helper()
	dek, err := NewDEK()
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSealer(dek, []byte("8bytepfx"), []byte("file-header-aad"))
	if err != nil {
		t.Fatal(err)
	}
	return s, dek
}

// sealToMem writes payload through a SealedWriter and returns the raw body.
func sealToMem(t testing.TB, s *Sealer, payload []byte) []byte {
	t.Helper()
	fs := vfs.NewMem()
	f, err := fs.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	w := NewSealedWriter(f, s)
	if _, err := w.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := vfs.ReadFile(fs, "f")
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func openSealed(t testing.TB, s *Sealer, body []byte) (*SealedReaderAt, error) {
	t.Helper()
	fs := vfs.NewMem()
	if err := vfs.WriteFile(fs, "f", body); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	return NewSealedReaderAt(f, s, 0)
}

func TestSealedRoundTripSizes(t *testing.T) {
	s, _ := newTestSealer(t)
	rng := rand.New(rand.NewSource(7))
	for _, size := range []int{0, 1, SealedBlockSize - 1, SealedBlockSize,
		SealedBlockSize + 1, 3 * SealedBlockSize, 3*SealedBlockSize + 37} {
		payload := make([]byte, size)
		rng.Read(payload)
		body := sealToMem(t, s, payload)

		// The layout invariant: every file ends with a mandatory final
		// block, so the body is never a clean multiple of the cipher block.
		wantLen := (size/SealedBlockSize+1)*SealedTagSize + size
		if len(body) != wantLen {
			t.Fatalf("size %d: body %d bytes, want %d", size, len(body), wantLen)
		}

		r, err := openSealed(t, s, body)
		if err != nil {
			t.Fatalf("size %d: open: %v", size, err)
		}
		if ps, _ := r.Size(); ps != int64(size) {
			t.Fatalf("size %d: plain size %d", size, ps)
		}
		got := make([]byte, size)
		if size > 0 {
			if _, err := r.ReadAt(got, 0); err != nil && err != io.EOF {
				t.Fatalf("size %d: read: %v", size, err)
			}
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("size %d: round trip mismatch", size)
		}
		r.Close()
	}
}

func TestSealedTamperEveryRegionDetected(t *testing.T) {
	s, _ := newTestSealer(t)
	payload := make([]byte, 2*SealedBlockSize+100)
	rand.New(rand.NewSource(8)).Read(payload)
	body := sealToMem(t, s, payload)

	// Flip one bit in a sample of positions covering every block and both
	// ciphertext and tag bytes; each must surface as vfs.ErrIntegrity from
	// the read covering it, never as silently different plaintext.
	for pos := 0; pos < len(body); pos += 997 {
		mut := append([]byte(nil), body...)
		mut[pos] ^= 0x40
		r, err := openSealed(t, s, mut)
		if err != nil {
			if !errors.Is(err, vfs.ErrIntegrity) {
				t.Fatalf("pos %d: open error not integrity: %v", pos, err)
			}
			continue
		}
		got := make([]byte, len(payload))
		_, err = r.ReadAt(got, 0)
		r.Close()
		if err == nil || !errors.Is(err, vfs.ErrIntegrity) {
			t.Fatalf("pos %d: tamper not detected (err=%v)", pos, err)
		}
	}
}

func TestSealedTruncationDetected(t *testing.T) {
	s, _ := newTestSealer(t)
	payload := make([]byte, 2*SealedBlockSize+100)
	rand.New(rand.NewSource(9)).Read(payload)
	body := sealToMem(t, s, payload)

	cuts := []int{
		len(body) - 1,                   // inside the final block
		len(body) - 100 - SealedTagSize, // exactly at the last full-block boundary
		sealedCipherBlock,               // after one full block
		SealedTagSize - 1,               // shorter than one tag
		0,                               // empty body
	}
	for _, cut := range cuts {
		r, err := openSealed(t, s, body[:cut])
		if err == nil {
			// Boundary truncation passes the size check; the last block then
			// fails its final-flag AAD on read.
			got := make([]byte, cut)
			_, err = r.ReadAt(got, 0)
			r.Close()
		}
		if err == nil || !errors.Is(err, vfs.ErrIntegrity) {
			t.Fatalf("cut %d: truncation not detected (err=%v)", cut, err)
		}
	}
}

func TestSealedBlockSpliceDetected(t *testing.T) {
	s, _ := newTestSealer(t)
	payload := make([]byte, 3*SealedBlockSize)
	rand.New(rand.NewSource(10)).Read(payload)
	body := sealToMem(t, s, payload)

	// Swap blocks 0 and 1: both authenticate under their original index, so
	// the index in nonce+AAD must reject them at the new positions.
	mut := append([]byte(nil), body...)
	copy(mut[0:sealedCipherBlock], body[sealedCipherBlock:2*sealedCipherBlock])
	copy(mut[sealedCipherBlock:2*sealedCipherBlock], body[0:sealedCipherBlock])
	r, err := openSealed(t, s, mut)
	if err == nil {
		got := make([]byte, SealedBlockSize)
		_, err = r.ReadAt(got, 0)
		r.Close()
	}
	if err == nil || !errors.Is(err, vfs.ErrIntegrity) {
		t.Fatalf("block reorder not detected (err=%v)", err)
	}
}

func TestTagChainDigestMatchesWriterAndReader(t *testing.T) {
	s, _ := newTestSealer(t)
	payload := make([]byte, 2*SealedBlockSize+55)
	rand.New(rand.NewSource(11)).Read(payload)

	fs := vfs.NewMem()
	f, _ := fs.Create("f")
	w := NewSealedWriter(f, s)
	w.Write(payload)
	if _, ok := w.FileDigest(); ok {
		t.Fatal("digest available before finalization")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	wd, ok := w.FileDigest()
	if !ok {
		t.Fatal("no digest after Close")
	}

	body, _ := vfs.ReadFile(fs, "f")
	// Keyless digest over the ciphertext must match the writer's.
	cd, err := TagChainDigest(body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wd, cd) {
		t.Fatal("TagChainDigest != writer digest")
	}
	// And the reader's (tag-scan and full-verify paths).
	r, err := openSealed(t, s, body)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rd, err := r.FileDigest()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wd, rd) {
		t.Fatal("reader FileDigest != writer digest")
	}
	vd, err := r.VerifyAll()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wd, vd) {
		t.Fatal("VerifyAll digest != writer digest")
	}
}

func TestChunkedSealedWriterMatchesSerial(t *testing.T) {
	dek, err := NewDEK()
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 5*SealedBlockSize+1234)
	rand.New(rand.NewSource(12)).Read(payload)

	serialSealer, _ := NewSealer(dek, []byte("8bytepfx"), []byte("hdr"))
	fs1 := vfs.NewMem()
	f1, _ := fs1.Create("f")
	sw := NewSealedWriter(f1, serialSealer)
	sw.Write(payload)
	sw.Close()
	want, _ := vfs.ReadFile(fs1, "f")
	wantDigest, _ := sw.FileDigest()

	// The multi-goroutine chunked writer must produce byte-identical output
	// for every worker count and chunk size.
	for _, workers := range []int{1, 2, 4} {
		for _, chunk := range []int{SealedBlockSize, 2 * SealedBlockSize, 64 << 10} {
			sealer, _ := NewSealer(dek, []byte("8bytepfx"), []byte("hdr"))
			fs2 := vfs.NewMem()
			f2, _ := fs2.Create("f")
			cw := NewChunkedSealedWriter(f2, sealer, chunk, workers)
			// Uneven write sizes exercise buffering.
			for off := 0; off < len(payload); off += 3000 {
				end := off + 3000
				if end > len(payload) {
					end = len(payload)
				}
				if _, err := cw.Write(payload[off:end]); err != nil {
					t.Fatal(err)
				}
			}
			if err := cw.Close(); err != nil {
				t.Fatal(err)
			}
			got, _ := vfs.ReadFile(fs2, "f")
			if !bytes.Equal(got, want) {
				t.Fatalf("workers=%d chunk=%d: chunked output differs from serial", workers, chunk)
			}
			gd, ok := cw.FileDigest()
			if !ok || !bytes.Equal(gd, wantDigest) {
				t.Fatalf("workers=%d chunk=%d: chunked digest differs (ok=%v)", workers, chunk, ok)
			}
		}
	}
}

// FuzzSealedOpen feeds arbitrary bodies to the sealed reader: it must either
// reject them (typed as integrity errors for impossible layouts) or round
// genuine sealed data back — never panic, never return unauthenticated bytes
// as success.
func FuzzSealedOpen(f *testing.F) {
	dek := DEK{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	s, err := NewSealer(dek, []byte("fuzzpref"), []byte("hdr"))
	if err != nil {
		f.Fatal(err)
	}
	valid := s.SealBlock(nil, []byte("tail"), 0, true)
	f.Add(valid)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xAA}, sealedCipherBlock+SealedTagSize))
	f.Fuzz(func(t *testing.T, body []byte) {
		fs := vfs.NewMem()
		if err := vfs.WriteFile(fs, "f", body); err != nil {
			t.Skip()
		}
		file, err := fs.Open("f")
		if err != nil {
			t.Skip()
		}
		defer file.Close()
		r, err := NewSealedReaderAt(file, s, 0)
		if err != nil {
			if !errors.Is(err, vfs.ErrIntegrity) {
				t.Fatalf("open rejected with non-integrity error: %v", err)
			}
			return
		}
		size, _ := r.Size()
		buf := make([]byte, size)
		if _, err := r.ReadAt(buf, 0); err != nil && err != io.EOF {
			if !errors.Is(err, vfs.ErrIntegrity) {
				t.Fatalf("read failed with non-integrity error: %v", err)
			}
		}
		if _, err := r.FileDigest(); err != nil && err != io.EOF {
			t.Fatalf("digest scan: %v", err)
		}
	})
}
