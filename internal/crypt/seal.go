package crypt

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"io"

	"shield/internal/vfs"
)

// Sealed file format (format v2).
//
// CTR mode (format v1) gives confidentiality only: a storage adversary can
// flip ciphertext bits and the engine decrypts them to attacker-chosen
// plaintext deltas. Format v2 replaces the CTR body with per-block AES-GCM:
//
//	body = block_0 ... block_{n-1} final_block
//
// Every non-final block seals exactly SealedBlockSize plaintext bytes into
// SealedBlockSize+tag bytes of ciphertext. The file always ends with one
// final block holding the 0..SealedBlockSize-1 byte tail (a full-multiple
// file ends with an empty final block: just its 16-byte tag). The nonce is
// an 8-byte per-file random prefix followed by the 32-bit block index; the
// AAD binds the plaintext file header plus the block index and a final-block
// flag. Consequences:
//
//   - any ciphertext flip fails the block's tag → vfs.ErrIntegrity;
//   - blocks cannot be reordered or spliced across files (index in the
//     nonce+AAD, file identity in the header-derived AAD);
//   - truncation is detected: cutting mid-block breaks the size invariant
//     (body % 4112 must be in [16, 4111]), and cutting at a block boundary
//     leaves a non-final block in last position, whose AAD then fails;
//   - the chain of block tags hashes into a 32-byte file digest that the
//     manifest records, so replacing a whole file with an older validly
//     sealed version of itself is caught against the (trusted) manifest.
const (
	// SealedBlockSize is the plaintext granularity of format v2.
	SealedBlockSize = 4096

	// SealedTagSize is the per-block GCM tag.
	SealedTagSize = 16

	// sealedCipherBlock is the on-disk size of one full sealed block.
	sealedCipherBlock = SealedBlockSize + SealedTagSize

	// SealedNoncePrefixLen is the per-file random nonce prefix; the
	// remaining 4 bytes of the 12-byte GCM nonce are the block index.
	SealedNoncePrefixLen = 8
)

// errSealTruncated reports a sealed body whose size cannot have been
// produced by a complete writer (mid-block truncation or a missing final
// block's tag).
var errSealTruncated = fmt.Errorf("crypt: sealed body truncated: %w", vfs.ErrIntegrity)

// Sealer seals and opens fixed-size blocks under one DEK and per-file nonce
// prefix. It is stateless after construction and safe for concurrent use,
// which is what lets ChunkedWriter seal chunks on multiple goroutines while
// keeping the output byte-identical to the serial path.
type Sealer struct {
	aead   cipher.AEAD
	prefix [SealedNoncePrefixLen]byte
	aad    []byte // file-binding AAD prefix (the plaintext header)
}

// NewSealer builds a Sealer for one file. noncePrefix must hold at least
// SealedNoncePrefixLen bytes unique per (key, file); aad is the file's
// plaintext header, bound into every block so headers cannot be swapped
// between files.
func NewSealer(key DEK, noncePrefix []byte, aad []byte) (*Sealer, error) {
	if len(noncePrefix) < SealedNoncePrefixLen {
		return nil, fmt.Errorf("crypt: nonce prefix too short: %d", len(noncePrefix))
	}
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	s := &Sealer{aead: aead, aad: append([]byte(nil), aad...)}
	copy(s.prefix[:], noncePrefix)
	return s, nil
}

// blockNonce derives the 12-byte GCM nonce for block idx.
func (s *Sealer) blockNonce(idx uint32) [12]byte {
	var n [12]byte
	copy(n[:SealedNoncePrefixLen], s.prefix[:])
	binary.BigEndian.PutUint32(n[SealedNoncePrefixLen:], idx)
	return n
}

// blockAAD derives the AAD for block idx: header ‖ index ‖ final-flag.
func (s *Sealer) blockAAD(idx uint32, final bool) []byte {
	aad := make([]byte, 0, len(s.aad)+5)
	aad = append(aad, s.aad...)
	var tail [5]byte
	binary.BigEndian.PutUint32(tail[:4], idx)
	if final {
		tail[4] = 1
	}
	return append(aad, tail[:]...)
}

// SealBlock appends block idx's ciphertext (plaintext + tag) to dst.
// Non-final blocks must be exactly SealedBlockSize long; the final block is
// 0..SealedBlockSize-1 bytes.
func (s *Sealer) SealBlock(dst, plain []byte, idx uint32, final bool) []byte {
	nonce := s.blockNonce(idx)
	return s.aead.Seal(dst, nonce[:], plain, s.blockAAD(idx, final))
}

// OpenBlock authenticates and decrypts one sealed block, appending the
// plaintext to dst. A failed tag (or wrong idx/final position) returns an
// error wrapping vfs.ErrIntegrity.
func (s *Sealer) OpenBlock(dst, sealed []byte, idx uint32, final bool) ([]byte, error) {
	if len(sealed) < SealedTagSize {
		return dst, fmt.Errorf("crypt: sealed block %d short (%d bytes): %w", idx, len(sealed), vfs.ErrIntegrity)
	}
	nonce := s.blockNonce(idx)
	out, err := s.aead.Open(dst, nonce[:], sealed, s.blockAAD(idx, final))
	if err != nil {
		return dst, fmt.Errorf("crypt: sealed block %d failed authentication: %w", idx, vfs.ErrIntegrity)
	}
	return out, nil
}

// sealedBodyLayout validates a sealed body size and returns the number of
// full (non-final) blocks and the plaintext size.
func sealedBodyLayout(bodyLen int64) (fullBlocks int64, plainSize int64, err error) {
	if bodyLen < SealedTagSize {
		return 0, 0, errSealTruncated
	}
	rem := bodyLen % sealedCipherBlock
	if rem < SealedTagSize {
		// rem == 0 means the file ends on a full-block boundary, i.e. the
		// mandatory final block is missing — boundary truncation.
		return 0, 0, errSealTruncated
	}
	fullBlocks = bodyLen / sealedCipherBlock
	plainSize = fullBlocks*SealedBlockSize + (rem - SealedTagSize)
	return fullBlocks, plainSize, nil
}

// SealedPlainSize returns the plaintext size of a sealed body of bodyLen
// ciphertext bytes, or an error wrapping vfs.ErrIntegrity if no complete
// writer could have produced that length.
func SealedPlainSize(bodyLen int64) (int64, error) {
	_, plain, err := sealedBodyLayout(bodyLen)
	return plain, err
}

// TagChainDigest hashes the per-block GCM tags of a sealed body, in block
// order, into the file digest the manifest anchors. It needs only the
// ciphertext — tags sit at fixed offsets — so a storage node can compute it
// without holding any key; the digest is only *meaningful* against the
// manifest because each tag is unforgeable without the DEK.
func TagChainDigest(body []byte) ([]byte, error) {
	full, _, err := sealedBodyLayout(int64(len(body)))
	if err != nil {
		return nil, err
	}
	h := sha256.New()
	for i := int64(0); i < full; i++ {
		blk := body[i*sealedCipherBlock : (i+1)*sealedCipherBlock]
		h.Write(blk[SealedBlockSize:])
	}
	h.Write(body[len(body)-SealedTagSize:])
	return h.Sum(nil), nil
}

// SealedWriter writes a format-v2 body to an append-only file: full blocks
// are sealed as they fill, and Sync (or Close) finalizes the file with the
// mandatory final block. After finalization the writer accepts no more
// data — v2 is for write-once files (SSTs, CURRENT); append-many streams
// (WAL, MANIFEST) stay on format v1.
type SealedWriter struct {
	f      vfs.WritableFile
	s      *Sealer
	buf    []byte // pending plaintext, < SealedBlockSize after Write returns
	idx    uint32
	digest hash.Hash
	final  []byte // tag-chain digest, set at finalization
	err    error
}

// NewSealedWriter wraps f (positioned just past the plaintext header) with
// sealed encryption.
func NewSealedWriter(f vfs.WritableFile, s *Sealer) *SealedWriter {
	return &SealedWriter{f: f, s: s, digest: sha256.New()}
}

func (w *SealedWriter) sealAndWrite(plain []byte, final bool) error {
	ct := w.s.SealBlock(nil, plain, w.idx, final)
	w.digest.Write(ct[len(plain):])
	w.idx++
	return vfs.WriteFull(w.f, ct)
}

// Write implements io.Writer; full blocks are sealed and written eagerly.
func (w *SealedWriter) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	if w.final != nil {
		return 0, fmt.Errorf("crypt: write after sealed file was finalized")
	}
	w.buf = append(w.buf, p...)
	for len(w.buf) >= SealedBlockSize {
		if err := w.sealAndWrite(w.buf[:SealedBlockSize], false); err != nil {
			w.err = err
			// p was absorbed into the buffer before the failure; report it
			// consumed so the caller's offsets match (io.Writer contract).
			return len(p), err
		}
		w.buf = w.buf[SealedBlockSize:]
	}
	return len(p), nil
}

// finalize seals the tail (possibly empty) as the final block.
func (w *SealedWriter) finalize() error {
	if w.err != nil {
		return w.err
	}
	if w.final != nil {
		return nil
	}
	if err := w.sealAndWrite(w.buf, true); err != nil {
		w.err = err
		return err
	}
	w.buf = nil
	w.final = w.digest.Sum(nil)
	return nil
}

// Sync finalizes the sealed body and syncs the file. No writes may follow.
func (w *SealedWriter) Sync() error {
	if err := w.finalize(); err != nil {
		return err
	}
	return w.f.Sync()
}

// Close finalizes (if Sync has not already) and closes the file.
func (w *SealedWriter) Close() error {
	ferr := w.finalize()
	cerr := w.f.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}

// FileDigest returns the tag-chain digest; ok is false until finalization.
func (w *SealedWriter) FileDigest() ([]byte, bool) {
	if w.final == nil {
		return nil, false
	}
	return append([]byte(nil), w.final...), true
}

// SealedReaderAt reads a format-v2 body with per-block verification: every
// ReadAt authenticates the covering blocks before returning plaintext, so a
// tampered block surfaces as an error wrapping vfs.ErrIntegrity — never as
// wrong bytes. Offsets are body-relative plaintext offsets.
type SealedReaderAt struct {
	f         vfs.RandomAccessFile
	s         *Sealer
	headerLen int64
	bodyLen   int64
	plainSize int64
	full      int64 // number of non-final blocks
}

// NewSealedReaderAt wraps f, whose sealed body starts at headerLen. The
// body size is validated immediately (truncation fails here).
func NewSealedReaderAt(f vfs.RandomAccessFile, s *Sealer, headerLen int64) (*SealedReaderAt, error) {
	sz, err := f.Size()
	if err != nil {
		return nil, err
	}
	bodyLen := sz - headerLen
	full, plain, err := sealedBodyLayout(bodyLen)
	if err != nil {
		return nil, err
	}
	return &SealedReaderAt{f: f, s: s, headerLen: headerLen, bodyLen: bodyLen, plainSize: plain, full: full}, nil
}

// blockExtent returns the ciphertext offset and length of block idx.
func (r *SealedReaderAt) blockExtent(idx int64) (off, n int64) {
	off = idx * sealedCipherBlock
	if idx < r.full {
		return off, sealedCipherBlock
	}
	return off, r.bodyLen - off
}

// ReadAt implements io.ReaderAt over the verified plaintext body.
func (r *SealedReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("crypt: negative offset %d", off)
	}
	if off >= r.plainSize {
		return 0, io.EOF
	}
	n := 0
	for len(p) > 0 && off < r.plainSize {
		idx := off / SealedBlockSize
		coff, clen := r.blockExtent(idx)
		ct := make([]byte, clen)
		if _, err := r.f.ReadAt(ct, r.headerLen+coff); err != nil && err != io.EOF {
			return n, err
		}
		plain, err := r.s.OpenBlock(nil, ct, uint32(idx), idx == r.full)
		if err != nil {
			return n, err
		}
		c := copy(p, plain[off-idx*SealedBlockSize:])
		n += c
		p = p[c:]
		off += int64(c)
	}
	if len(p) > 0 {
		return n, io.EOF
	}
	return n, nil
}

// Size returns the plaintext body length.
func (r *SealedReaderAt) Size() (int64, error) { return r.plainSize, nil }

// Close closes the underlying file.
func (r *SealedReaderAt) Close() error { return r.f.Close() }

// FileDigest recomputes the tag-chain digest from the stored ciphertext.
// It does not authenticate blocks — callers compare the result against the
// manifest-recorded digest (whose tags only the DEK holder could forge).
func (r *SealedReaderAt) FileDigest() ([]byte, error) {
	h := sha256.New()
	var tag [SealedTagSize]byte
	for idx := int64(0); idx <= r.full; idx++ {
		coff, clen := r.blockExtent(idx)
		if _, err := r.f.ReadAt(tag[:], r.headerLen+coff+clen-SealedTagSize); err != nil && err != io.EOF {
			return nil, err
		}
		h.Write(tag[:])
	}
	return h.Sum(nil), nil
}

// VerifyAll authenticates every block of the body (the scrub's full pass)
// and returns the tag-chain digest.
func (r *SealedReaderAt) VerifyAll() ([]byte, error) {
	h := sha256.New()
	for idx := int64(0); idx <= r.full; idx++ {
		coff, clen := r.blockExtent(idx)
		ct := make([]byte, clen)
		if _, err := r.f.ReadAt(ct, r.headerLen+coff); err != nil && err != io.EOF {
			return nil, err
		}
		if _, err := r.s.OpenBlock(nil, ct, uint32(idx), idx == r.full); err != nil {
			return nil, err
		}
		h.Write(ct[clen-SealedTagSize:])
	}
	return h.Sum(nil), nil
}
