package crypt

// Zeroize overwrites b with zeros so key material does not linger on the
// heap after use. Go cannot promise the GC never copied the bytes (stack
// growth, append reallocation), so this bounds the exposure window rather
// than eliminating it — which is still the difference between a key that
// lives for microseconds and one that survives until the next GC cycle in a
// core dump or a swapped page.
//
// The shield-vet keyhygiene analyzer requires every local that receives
// derived key bytes (PBKDF2SHA256, HKDFSHA256, DEKFromBytes input) to be
// wiped with Zeroize or returned to the caller.
func Zeroize(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// Zeroize wipes the DEK in place. Callers that materialize a DEK copy
// outside the secure cache (wire decode buffers, re-derived per-file keys)
// wipe it as soon as the dependent cipher state is built.
func (k *DEK) Zeroize() {
	Zeroize(k[:])
}
