package crypt

import (
	"io"

	"shield/internal/vfs"
)

// DecryptingReaderAt wraps a vfs.RandomAccessFile whose body (from headerLen
// onward) is encrypted with key/iv. ReadAt takes body-relative offsets and
// returns plaintext.
type DecryptingReaderAt struct {
	f         vfs.RandomAccessFile
	stream    *Stream
	headerLen int64
}

// NewDecryptingReaderAt wraps f. headerLen is the length of the plaintext
// file header preceding the encrypted body.
func NewDecryptingReaderAt(f vfs.RandomAccessFile, key DEK, iv [IVSize]byte, headerLen int64) (*DecryptingReaderAt, error) {
	s, err := NewStream(key, iv)
	if err != nil {
		return nil, err
	}
	return &DecryptingReaderAt{f: f, stream: s, headerLen: headerLen}, nil
}

// ReadAt implements io.ReaderAt over the decrypted body.
func (r *DecryptingReaderAt) ReadAt(p []byte, off int64) (int, error) {
	n, err := r.f.ReadAt(p, off+r.headerLen)
	if n > 0 {
		r.stream.XORKeyStreamAt(p[:n], p[:n], off)
	}
	if err != nil && err != io.EOF {
		return n, err
	}
	return n, err
}

// Size returns the body length (file size minus header).
func (r *DecryptingReaderAt) Size() (int64, error) {
	sz, err := r.f.Size()
	if err != nil {
		return 0, err
	}
	return sz - r.headerLen, nil
}

// Close closes the underlying file.
func (r *DecryptingReaderAt) Close() error { return r.f.Close() }
