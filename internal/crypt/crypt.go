// Package crypt provides the cryptographic primitives SHIELD builds on: Data
// Encryption Keys (DEKs), an offset-seekable AES-128-CTR stream so encrypted
// files support positional reads, and PBKDF2 key derivation for the secure
// DEK cache passkey.
//
// The paper runs 128-bit AES in CTR mode (Section 6.1); CTR lets a reader
// decrypt any byte range of a file without touching the rest, which is what
// SST block reads need.
package crypt

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
)

// KeySize is the DEK length in bytes (AES-128).
const KeySize = 16

// IVSize is the CTR initialization-vector length in bytes.
const IVSize = aes.BlockSize

// DEK is a Data Encryption Key. A DEK encrypts exactly one file under SHIELD
// (per-file DEKs) or an entire instance under EncFS.
type DEK [KeySize]byte

// ErrKeySize reports a key of the wrong length.
var ErrKeySize = errors.New("crypt: invalid key size")

// NewDEK generates a fresh random DEK.
func NewDEK() (DEK, error) {
	var k DEK
	if _, err := rand.Read(k[:]); err != nil {
		return DEK{}, fmt.Errorf("crypt: generating DEK: %w", err)
	}
	return k, nil
}

// DEKFromBytes copies b into a DEK. b must be exactly KeySize bytes.
func DEKFromBytes(b []byte) (DEK, error) {
	var k DEK
	if len(b) != KeySize {
		return k, fmt.Errorf("%w: got %d, want %d", ErrKeySize, len(b), KeySize)
	}
	copy(k[:], b)
	return k, nil
}

// String renders the DEK redacted; keys must never leak into logs.
func (DEK) String() string { return "DEK(redacted)" }

// Hex returns the full hex encoding. For tests only.
func (k DEK) Hex() string { return hex.EncodeToString(k[:]) }

// NewIV generates a fresh random CTR initialization vector.
func NewIV() ([IVSize]byte, error) {
	var iv [IVSize]byte
	if _, err := rand.Read(iv[:]); err != nil {
		return iv, fmt.Errorf("crypt: generating IV: %w", err)
	}
	return iv, nil
}

// Stream is an offset-addressable AES-CTR keystream bound to one (DEK, IV)
// pair. XORKeyStreamAt encrypts or decrypts (the operation is symmetric) a
// buffer that logically starts at the given byte offset of the file body.
//
// A Stream is stateless between calls and safe for concurrent use; every call
// re-derives the counter block for its offset. This is exactly what lets
// compaction encrypt chunks on multiple goroutines (Section 5.2).
type Stream struct {
	block cipher.Block
	iv    [IVSize]byte
}

// NewStream builds a Stream for the given DEK and IV.
func NewStream(key DEK, iv [IVSize]byte) (*Stream, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("crypt: %w", err)
	}
	return &Stream{block: block, iv: iv}, nil
}

// XORKeyStreamAt applies the keystream for file-body offset off to src,
// writing the result to dst. dst and src may be the same slice.
func (s *Stream) XORKeyStreamAt(dst, src []byte, off int64) {
	if len(dst) < len(src) {
		panic("crypt: dst shorter than src")
	}
	blockIdx := uint64(off) / aes.BlockSize
	skip := int(uint64(off) % aes.BlockSize)

	var ctr [aes.BlockSize]byte
	addCounter(&ctr, s.iv, blockIdx)

	// CTR streams from a block boundary; discard the first `skip` keystream
	// bytes so the stream aligns with off.
	stream := cipher.NewCTR(s.block, ctr[:])
	if skip > 0 {
		var scratch [aes.BlockSize]byte
		stream.XORKeyStream(scratch[:skip], scratch[:skip])
	}
	stream.XORKeyStream(dst[:len(src)], src)
}

// addCounter sets ctr = iv + n treating the IV as a 128-bit big-endian
// counter, matching cipher.NewCTR's increment rule.
func addCounter(ctr *[aes.BlockSize]byte, iv [IVSize]byte, n uint64) {
	copy(ctr[:], iv[:])
	// Add n to the low 64 bits, propagating carry into the high 64 bits.
	lo := binary.BigEndian.Uint64(ctr[8:])
	newLo := lo + n
	binary.BigEndian.PutUint64(ctr[8:], newLo)
	if newLo < lo { // carry
		hi := binary.BigEndian.Uint64(ctr[:8])
		binary.BigEndian.PutUint64(ctr[:8], hi+1)
	}
}

// EncryptAt is a convenience that allocates a fresh Stream per call. It
// deliberately pays the full encryption-initialization cost (AES key
// schedule + CTR setup) every time — this is the overhead the paper measures
// in Figure 4 and that the WAL buffer amortizes.
func EncryptAt(key DEK, iv [IVSize]byte, dst, src []byte, off int64) error {
	s, err := NewStream(key, iv)
	if err != nil {
		return err
	}
	s.XORKeyStreamAt(dst, src, off)
	return nil
}

// PBKDF2SHA256 derives keyLen bytes from password and salt with the given
// iteration count using PBKDF2-HMAC-SHA256 (RFC 8018). It seals the secure
// DEK cache with the user-provided server passkey (Section 5.2).
func PBKDF2SHA256(password, salt []byte, iter, keyLen int) []byte {
	prf := hmac.New(sha256.New, password)
	hashLen := prf.Size()
	numBlocks := (keyLen + hashLen - 1) / hashLen

	var buf [4]byte
	dk := make([]byte, 0, numBlocks*hashLen)
	u := make([]byte, hashLen)
	t := make([]byte, hashLen)
	for blk := 1; blk <= numBlocks; blk++ {
		prf.Reset()
		prf.Write(salt)
		binary.BigEndian.PutUint32(buf[:], uint32(blk))
		prf.Write(buf[:])
		u = prf.Sum(u[:0])
		copy(t, u)
		for i := 1; i < iter; i++ {
			prf.Reset()
			prf.Write(u)
			u = prf.Sum(u[:0])
			for j := range t {
				t[j] ^= u[j]
			}
		}
		dk = append(dk, t...)
	}
	// Wipe the intermediate HMAC states and the derived tail beyond keyLen;
	// the caller owns (and must eventually Zeroize) the returned prefix.
	Zeroize(u)
	Zeroize(t)
	Zeroize(dk[keyLen:])
	return dk[:keyLen]
}

// HKDFSHA256 derives n bytes from secret using HKDF (RFC 5869) with
// SHA-256: extract with salt, then expand with info. It backs the KDS's
// hierarchical key-derivation policy, where per-file DEKs are derived from
// a master secret and the file's DEK-ID instead of being stored.
func HKDFSHA256(secret, salt, info []byte, n int) []byte {
	// Extract.
	prk := HMACSHA256(salt, secret)
	// Expand.
	var (
		out  []byte
		prev []byte
		ctr  byte = 1
	)
	for len(out) < n {
		mac := hmac.New(sha256.New, prk)
		mac.Write(prev)
		mac.Write(info)
		mac.Write([]byte{ctr})
		prev = mac.Sum(nil)
		out = append(out, prev...)
		ctr++
	}
	// Wipe the pseudorandom key and the expand tail beyond n; the caller
	// owns (and must eventually Zeroize) the returned prefix.
	Zeroize(prk)
	Zeroize(prev)
	Zeroize(out[n:])
	return out[:n]
}

// HMACSHA256 returns the HMAC-SHA256 tag of data under key.
func HMACSHA256(key, data []byte) []byte {
	mac := hmac.New(sha256.New, key)
	mac.Write(data)
	return mac.Sum(nil)
}

// VerifyHMACSHA256 reports whether tag authenticates data under key, in
// constant time.
func VerifyHMACSHA256(key, data, tag []byte) bool {
	return hmac.Equal(HMACSHA256(key, data), tag)
}
