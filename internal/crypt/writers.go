package crypt

import (
	"crypto/sha256"
	"fmt"
	"hash"
	"sync"

	"shield/internal/vfs"
)

// BufferedWriter is SHIELD's WAL writer (Section 5.3): an
// application-managed buffer that accumulates small writes and encrypts
// them in one pass when the buffer reaches its threshold (or on Sync).
//
// Each flush pays one full encryption initialization (AES key schedule +
// CTR setup via EncryptAt) — that is the cost the buffer amortizes
// over many small WAL writes. With bufSize == 0 every Write is its own
// flush, reproducing the per-write encryption bottleneck of Section 3.2.
//
// Trade-off: bytes still in the buffer are lost if the process crashes, but
// nothing ever reaches storage in plaintext.
type BufferedWriter struct {
	f       vfs.WritableFile
	key     DEK
	iv      [IVSize]byte
	off     int64 // body offset already persisted
	buf     []byte
	bufSize int
	scratch []byte
}

// NewBufferedWriter wraps f with buffered encryption; bufSize 0 flushes
// (and pays a full encryption initialization) on every Write.
func NewBufferedWriter(f vfs.WritableFile, key DEK, iv [IVSize]byte, bufSize int) *BufferedWriter {
	return &BufferedWriter{f: f, key: key, iv: iv, bufSize: bufSize}
}

// Write implements io.Writer; plaintext accumulates in the buffer.
func (w *BufferedWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	if len(w.buf) >= w.bufSize {
		if err := w.flush(); err != nil {
			// p was fully accepted into the buffer (and remains there for a
			// later flush); report it written so the caller's offsets match
			// the bytes this writer has consumed (io.Writer contract).
			return len(p), err
		}
	}
	return len(p), nil
}

func (w *BufferedWriter) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	if cap(w.scratch) < len(w.buf) {
		w.scratch = make([]byte, len(w.buf))
	}
	ct := w.scratch[:len(w.buf)]
	// Full per-flush initialization, deliberately not a cached stream.
	if err := EncryptAt(w.key, w.iv, ct, w.buf, w.off); err != nil {
		return err
	}
	if err := vfs.WriteFull(w.f, ct); err != nil {
		return err
	}
	w.off += int64(len(w.buf))
	w.buf = w.buf[:0]
	return nil
}

// Sync flushes the buffer and syncs the file.
func (w *BufferedWriter) Sync() error {
	if err := w.flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

// Close flushes and closes the file.
func (w *BufferedWriter) Close() error {
	if err := w.flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// ChunkedWriter encrypts an SST body in fixed-size chunks,
// optionally on multiple goroutines (Section 5.2's multi-threaded
// compaction encryption). Chunks are dispatched to workers as they fill and
// written back strictly in order, so the on-disk byte stream is identical
// to inline encryption.
type ChunkedWriter struct {
	f         vfs.WritableFile
	key       DEK
	iv        [IVSize]byte
	chunkSize int

	cur []byte // plaintext accumulating for the current chunk
	off int64  // body offset of cur's first byte

	// Sealed (format v2) mode: non-nil sealer switches chunk encryption
	// from CTR to per-block AES-GCM. nextBlock numbers blocks across
	// chunks; the tag-chain digest accumulates in retirement order, which
	// is plaintext order, so parallel and serial runs agree byte-for-byte.
	sealer    *Sealer
	nextBlock uint32
	digest    hash.Hash
	finalTag  []byte
	finalized bool

	// Parallel pipeline (nil when workers <= 1).
	jobs    chan *chunkJob
	order   []*chunkJob
	wg      sync.WaitGroup
	started bool
	workers int
	err     error
}

type chunkJob struct {
	plain    []byte
	off      int64
	firstIdx uint32 // sealed mode: index of the chunk's first block
	final    bool   // sealed mode: this chunk carries the final block
	done     chan []byte
	err      error
}

// NewChunkedWriter wraps f with chunk-granular encryption on `workers`
// goroutines (workers <= 1 encrypts inline).
func NewChunkedWriter(f vfs.WritableFile, key DEK, iv [IVSize]byte, chunkSize, workers int) *ChunkedWriter {
	if chunkSize <= 0 {
		chunkSize = 64 << 10
	}
	return &ChunkedWriter{f: f, key: key, iv: iv, chunkSize: chunkSize, workers: workers}
}

// NewChunkedSealedWriter is NewChunkedWriter for format v2: chunks are
// sealed per-block under sealer instead of CTR-encrypted. chunkSize is
// rounded up to a multiple of SealedBlockSize so chunk boundaries and block
// boundaries coincide. Sync finalizes the sealed body (no writes after), as
// NewSealedWriter does.
func NewChunkedSealedWriter(f vfs.WritableFile, sealer *Sealer, chunkSize, workers int) *ChunkedWriter {
	if chunkSize <= 0 {
		chunkSize = 64 << 10
	}
	if r := chunkSize % SealedBlockSize; r != 0 {
		chunkSize += SealedBlockSize - r
	}
	return &ChunkedWriter{f: f, sealer: sealer, chunkSize: chunkSize, workers: workers, digest: sha256.New()}
}

// sealChunk seals one chunk job: every full block non-final, then — only on
// the final job — the 0..SealedBlockSize-1 byte tail as the final block.
func (w *ChunkedWriter) sealChunk(job *chunkJob) []byte {
	p := job.plain
	idx := job.firstIdx
	out := make([]byte, 0, len(p)+((len(p)/SealedBlockSize)+1)*SealedTagSize)
	for len(p) >= SealedBlockSize {
		out = w.sealer.SealBlock(out, p[:SealedBlockSize], idx, false)
		idx++
		p = p[SealedBlockSize:]
	}
	if job.final {
		out = w.sealer.SealBlock(out, p, idx, true)
	}
	return out
}

// digestTags folds a retired chunk's block tags into the file digest.
func (w *ChunkedWriter) digestTags(job *chunkJob, ct []byte) {
	full := len(job.plain) / SealedBlockSize
	for i := 0; i < full; i++ {
		end := (i + 1) * sealedCipherBlock
		w.digest.Write(ct[end-SealedTagSize : end])
	}
	if job.final {
		w.digest.Write(ct[len(ct)-SealedTagSize:])
	}
}

func (w *ChunkedWriter) startWorkers() {
	w.jobs = make(chan *chunkJob, w.workers*2)
	for i := 0; i < w.workers; i++ {
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			for job := range w.jobs {
				if w.sealer != nil {
					job.done <- w.sealChunk(job)
					continue
				}
				ct := make([]byte, len(job.plain))
				job.err = EncryptAt(w.key, w.iv, ct, job.plain, job.off)
				job.done <- ct
			}
		}()
	}
	w.started = true
}

// Write implements io.Writer.
func (w *ChunkedWriter) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	if w.finalized {
		return 0, fmt.Errorf("crypt: write after sealed file was finalized")
	}
	consumed := 0
	for len(p) > 0 {
		room := w.chunkSize - len(w.cur)
		n := len(p)
		if n > room {
			n = room
		}
		w.cur = append(w.cur, p[:n]...)
		consumed += n
		p = p[n:]
		if len(w.cur) >= w.chunkSize {
			if err := w.dispatch(); err != nil {
				w.err = err
				// Report the bytes actually accepted so far (io.Writer
				// contract: n < len(p) must accompany a non-nil error).
				return consumed, err
			}
		}
	}
	return consumed, nil
}

// dispatch hands the full current chunk to the pipeline (or encrypts
// inline when single-threaded).
func (w *ChunkedWriter) dispatch() error {
	return w.dispatchJob(false)
}

// dispatchJob ships the accumulated chunk; final marks the sealed tail job
// (which is dispatched even when empty — the final block is mandatory).
func (w *ChunkedWriter) dispatchJob(final bool) error {
	if len(w.cur) == 0 && !final {
		return nil
	}
	plain := w.cur
	off := w.off
	w.off += int64(len(plain))
	w.cur = nil
	job := &chunkJob{plain: plain, off: off, final: final, done: make(chan []byte, 1)}
	if w.sealer != nil {
		job.firstIdx = w.nextBlock
		w.nextBlock += uint32(len(plain) / SealedBlockSize)
		if final {
			w.nextBlock++
		}
	}

	if w.workers <= 1 {
		var ct []byte
		if w.sealer != nil {
			ct = w.sealChunk(job)
		} else {
			ct = make([]byte, len(plain))
			if err := EncryptAt(w.key, w.iv, ct, plain, off); err != nil {
				return err
			}
		}
		if err := vfs.WriteFull(w.f, ct); err != nil {
			return err
		}
		if w.sealer != nil {
			w.digestTags(job, ct)
		}
		return nil
	}

	if !w.started {
		w.startWorkers()
	}
	w.jobs <- job
	w.order = append(w.order, job)
	// Keep the pipeline bounded; retire completed chunks in order.
	for len(w.order) > w.workers*2 {
		if err := w.retireOne(); err != nil {
			return err
		}
	}
	return nil
}

// retireOne waits for the oldest in-flight chunk and writes it.
func (w *ChunkedWriter) retireOne() error {
	job := w.order[0]
	w.order = w.order[1:]
	ct := <-job.done
	if job.err != nil {
		return job.err
	}
	if err := vfs.WriteFull(w.f, ct); err != nil {
		return err
	}
	if w.sealer != nil {
		w.digestTags(job, ct)
	}
	return nil
}

// drain flushes the partial chunk and retires every in-flight chunk. In
// sealed mode the tail flush is the finalization: the partial chunk ships
// as the final job and the sealed body is complete afterwards.
func (w *ChunkedWriter) drain() error {
	if w.sealer != nil {
		if !w.finalized {
			if err := w.dispatchJob(true); err != nil {
				return err
			}
			w.finalized = true
		}
	} else if err := w.dispatch(); err != nil {
		return err
	}
	for len(w.order) > 0 {
		if err := w.retireOne(); err != nil {
			return err
		}
	}
	if w.sealer != nil && w.finalTag == nil && w.finalized {
		w.finalTag = w.digest.Sum(nil)
	}
	return nil
}

// Sync drains the pipeline and syncs the file. In sealed mode this
// finalizes the body: no writes may follow.
func (w *ChunkedWriter) Sync() error {
	if w.err != nil {
		return w.err
	}
	if err := w.drain(); err != nil {
		w.err = err
		return err
	}
	return w.f.Sync()
}

// Close drains, stops workers, and closes the file.
func (w *ChunkedWriter) Close() error {
	var derr error
	if w.err != nil {
		derr = w.err
	} else {
		derr = w.drain()
	}
	if w.started {
		close(w.jobs)
		w.wg.Wait()
		w.started = false
	}
	cerr := w.f.Close()
	if derr != nil {
		return derr
	}
	return cerr
}

// FileDigest returns the sealed tag-chain digest; ok is false for CTR-mode
// writers and before finalization.
func (w *ChunkedWriter) FileDigest() ([]byte, bool) {
	if w.finalTag == nil {
		return nil, false
	}
	return append([]byte(nil), w.finalTag...), true
}
