package crypt

import (
	"sync"

	"shield/internal/vfs"
)

// BufferedWriter is SHIELD's WAL writer (Section 5.3): an
// application-managed buffer that accumulates small writes and encrypts
// them in one pass when the buffer reaches its threshold (or on Sync).
//
// Each flush pays one full encryption initialization (AES key schedule +
// CTR setup via EncryptAt) — that is the cost the buffer amortizes
// over many small WAL writes. With bufSize == 0 every Write is its own
// flush, reproducing the per-write encryption bottleneck of Section 3.2.
//
// Trade-off: bytes still in the buffer are lost if the process crashes, but
// nothing ever reaches storage in plaintext.
type BufferedWriter struct {
	f       vfs.WritableFile
	key     DEK
	iv      [IVSize]byte
	off     int64 // body offset already persisted
	buf     []byte
	bufSize int
	scratch []byte
}

// NewBufferedWriter wraps f with buffered encryption; bufSize 0 flushes
// (and pays a full encryption initialization) on every Write.
func NewBufferedWriter(f vfs.WritableFile, key DEK, iv [IVSize]byte, bufSize int) *BufferedWriter {
	return &BufferedWriter{f: f, key: key, iv: iv, bufSize: bufSize}
}

// Write implements io.Writer; plaintext accumulates in the buffer.
func (w *BufferedWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	if len(w.buf) >= w.bufSize {
		if err := w.flush(); err != nil {
			// p was fully accepted into the buffer (and remains there for a
			// later flush); report it written so the caller's offsets match
			// the bytes this writer has consumed (io.Writer contract).
			return len(p), err
		}
	}
	return len(p), nil
}

func (w *BufferedWriter) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	if cap(w.scratch) < len(w.buf) {
		w.scratch = make([]byte, len(w.buf))
	}
	ct := w.scratch[:len(w.buf)]
	// Full per-flush initialization, deliberately not a cached stream.
	if err := EncryptAt(w.key, w.iv, ct, w.buf, w.off); err != nil {
		return err
	}
	if err := vfs.WriteFull(w.f, ct); err != nil {
		return err
	}
	w.off += int64(len(w.buf))
	w.buf = w.buf[:0]
	return nil
}

// Sync flushes the buffer and syncs the file.
func (w *BufferedWriter) Sync() error {
	if err := w.flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

// Close flushes and closes the file.
func (w *BufferedWriter) Close() error {
	if err := w.flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// ChunkedWriter encrypts an SST body in fixed-size chunks,
// optionally on multiple goroutines (Section 5.2's multi-threaded
// compaction encryption). Chunks are dispatched to workers as they fill and
// written back strictly in order, so the on-disk byte stream is identical
// to inline encryption.
type ChunkedWriter struct {
	f         vfs.WritableFile
	key       DEK
	iv        [IVSize]byte
	chunkSize int

	cur []byte // plaintext accumulating for the current chunk
	off int64  // body offset of cur's first byte

	// Parallel pipeline (nil when workers <= 1).
	jobs    chan *chunkJob
	order   []*chunkJob
	wg      sync.WaitGroup
	started bool
	workers int
	err     error
}

type chunkJob struct {
	plain []byte
	off   int64
	done  chan []byte
	err   error
}

// NewChunkedWriter wraps f with chunk-granular encryption on `workers`
// goroutines (workers <= 1 encrypts inline).
func NewChunkedWriter(f vfs.WritableFile, key DEK, iv [IVSize]byte, chunkSize, workers int) *ChunkedWriter {
	if chunkSize <= 0 {
		chunkSize = 64 << 10
	}
	return &ChunkedWriter{f: f, key: key, iv: iv, chunkSize: chunkSize, workers: workers}
}

func (w *ChunkedWriter) startWorkers() {
	w.jobs = make(chan *chunkJob, w.workers*2)
	for i := 0; i < w.workers; i++ {
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			for job := range w.jobs {
				ct := make([]byte, len(job.plain))
				job.err = EncryptAt(w.key, w.iv, ct, job.plain, job.off)
				job.done <- ct
			}
		}()
	}
	w.started = true
}

// Write implements io.Writer.
func (w *ChunkedWriter) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	consumed := 0
	for len(p) > 0 {
		room := w.chunkSize - len(w.cur)
		n := len(p)
		if n > room {
			n = room
		}
		w.cur = append(w.cur, p[:n]...)
		consumed += n
		p = p[n:]
		if len(w.cur) >= w.chunkSize {
			if err := w.dispatch(); err != nil {
				w.err = err
				// Report the bytes actually accepted so far (io.Writer
				// contract: n < len(p) must accompany a non-nil error).
				return consumed, err
			}
		}
	}
	return consumed, nil
}

// dispatch hands the full current chunk to the pipeline (or encrypts
// inline when single-threaded).
func (w *ChunkedWriter) dispatch() error {
	if len(w.cur) == 0 {
		return nil
	}
	plain := w.cur
	off := w.off
	w.off += int64(len(plain))
	w.cur = nil

	if w.workers <= 1 {
		ct := make([]byte, len(plain))
		if err := EncryptAt(w.key, w.iv, ct, plain, off); err != nil {
			return err
		}
		return vfs.WriteFull(w.f, ct)
	}

	if !w.started {
		w.startWorkers()
	}
	job := &chunkJob{plain: plain, off: off, done: make(chan []byte, 1)}
	w.jobs <- job
	w.order = append(w.order, job)
	// Keep the pipeline bounded; retire completed chunks in order.
	for len(w.order) > w.workers*2 {
		if err := w.retireOne(); err != nil {
			return err
		}
	}
	return nil
}

// retireOne waits for the oldest in-flight chunk and writes it.
func (w *ChunkedWriter) retireOne() error {
	job := w.order[0]
	w.order = w.order[1:]
	ct := <-job.done
	if job.err != nil {
		return job.err
	}
	return vfs.WriteFull(w.f, ct)
}

// drain flushes the partial chunk and retires every in-flight chunk.
func (w *ChunkedWriter) drain() error {
	if err := w.dispatch(); err != nil {
		return err
	}
	for len(w.order) > 0 {
		if err := w.retireOne(); err != nil {
			return err
		}
	}
	return nil
}

// Sync drains the pipeline and syncs the file.
func (w *ChunkedWriter) Sync() error {
	if w.err != nil {
		return w.err
	}
	if err := w.drain(); err != nil {
		w.err = err
		return err
	}
	return w.f.Sync()
}

// Close drains, stops workers, and closes the file.
func (w *ChunkedWriter) Close() error {
	derr := w.drain()
	if w.started {
		close(w.jobs)
		w.wg.Wait()
		w.started = false
	}
	cerr := w.f.Close()
	if derr != nil {
		return derr
	}
	return cerr
}
