package resp

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// FuzzReadCommand asserts the parser never panics, never returns an
// argument larger than its limit, and — after a recoverable protocol
// error — can keep consuming the stream without looping forever.
func FuzzReadCommand(f *testing.F) {
	f.Add([]byte("*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n"))
	f.Add([]byte("PING\r\n"))
	f.Add([]byte("GET key extra  args\r\n"))
	f.Add([]byte("*abc\r\nPING\r\n"))
	f.Add([]byte("*2\r\n$3\r\nGET\r\n$999999999\r\nzzz"))
	f.Add([]byte("*1\r\n:5\r\n"))
	f.Add([]byte("$5\r\nhello\r\n"))
	f.Add([]byte("*-1\r\n*0\r\n\r\n\n"))
	f.Add(bytes.Repeat([]byte("a"), 4096))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		r.MaxBulkLen = 1 << 16
		r.MaxArrayLen = 64
		for i := 0; i < 64; i++ {
			args, err := r.ReadCommand()
			if err != nil {
				if IsRecoverable(err) {
					continue // parser promises the stream is resynced
				}
				return // fatal protocol error or EOF: connection would close
			}
			if len(args) == 0 {
				t.Fatal("ReadCommand returned an empty command without error")
			}
			if len(args) > 64 {
				t.Fatalf("command has %d args, over the limit", len(args))
			}
			for _, a := range args {
				if len(a) > 1<<16 {
					t.Fatalf("arg of %d bytes, over the limit", len(a))
				}
			}
		}
	})
}

// FuzzReadReply mirrors FuzzReadCommand for the client-side reply parser.
func FuzzReadReply(f *testing.F) {
	f.Add([]byte("+OK\r\n"))
	f.Add([]byte("-ERR nope\r\n"))
	f.Add([]byte(":42\r\n"))
	f.Add([]byte("$5\r\nhello\r\n$-1\r\n"))
	f.Add([]byte("*2\r\n$1\r\na\r\n:7\r\n"))
	f.Add([]byte("*9999999\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(io.MultiReader(bytes.NewReader(data), strings.NewReader(""))) //nolint:staticcheck // exercise non-bufio path
		r.MaxBulkLen = 1 << 16
		r.MaxArrayLen = 64
		for i := 0; i < 64; i++ {
			if _, err := r.ReadReply(); err != nil {
				return
			}
		}
	})
}
