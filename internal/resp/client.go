package resp

import (
	"fmt"
	"net"
	"time"
)

// Client is a pipelined RESP client: queue commands with Send, push them
// with Flush, then collect replies in order with Recv. Do is the one-shot
// convenience. A Client is not safe for concurrent use; benchmarks open one
// per goroutine.
type Client struct {
	conn net.Conn
	r    *Reader
	w    *Writer

	// Timeout, when nonzero, bounds each Flush and each Recv.
	Timeout time.Duration

	pending int
}

// Dial connects to a RESP server.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("resp: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, r: NewReader(conn), w: NewWriter(conn)}
}

// Send queues one command without flushing.
func (c *Client) Send(args ...[]byte) error {
	c.pending++
	return c.w.Command(args...)
}

// SendStrings is Send for string arguments.
func (c *Client) SendStrings(args ...string) error {
	bs := make([][]byte, len(args))
	for i, a := range args {
		bs[i] = []byte(a)
	}
	return c.Send(bs...)
}

// Flush pushes every queued command to the server.
func (c *Client) Flush() error {
	if c.Timeout > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(c.Timeout)) //nolint:errcheck
	}
	return c.w.Flush()
}

// Recv reads the next in-order reply.
func (c *Client) Recv() (Value, error) {
	if c.Timeout > 0 {
		c.conn.SetReadDeadline(time.Now().Add(c.Timeout)) //nolint:errcheck
	}
	if c.pending > 0 {
		c.pending--
	}
	return c.r.ReadReply()
}

// Pending reports queued-but-unanswered commands (sent or not yet flushed).
func (c *Client) Pending() int { return c.pending }

// Do sends one command, flushes, and returns its reply.
func (c *Client) Do(args ...string) (Value, error) {
	if err := c.SendStrings(args...); err != nil {
		return Value{}, err
	}
	if err := c.Flush(); err != nil {
		return Value{}, err
	}
	return c.Recv()
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
