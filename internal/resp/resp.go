// Package resp implements the Redis wire protocol (RESP2) for the SHIELD
// serving front-end: a command reader that accepts both the array-of-bulk
// form pipelined clients send and the inline form humans type over netcat,
// a reply writer for the five RESP reply types, and a pipelined client used
// by shield-bench's network mode and the integration tests.
//
// Protocol errors are split into two classes. Errors detected at a clean
// line boundary (a malformed inline command, a bad array header) are
// recoverable: the caller replies -ERR and keeps reading — the next command
// starts at the next line. Errors inside a frame (a bad element type, a
// corrupt or oversized bulk length) leave the stream position ambiguous, so
// they are fatal: the caller replies and then closes, exactly like Redis.
package resp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Default parser limits. They bound how much memory one connection can
// demand before the server has validated anything.
const (
	DefaultMaxBulkLen  = 64 << 20 // one argument
	DefaultMaxArrayLen = 1024     // arguments per command
	maxInlineLen       = 64 << 10 // one inline command line
)

// ProtocolError describes malformed input from the peer. Recoverable
// reports whether the reader consumed through a line boundary and can keep
// parsing the connection; when false the connection must be closed after
// replying.
type ProtocolError struct {
	Msg         string
	Recoverable bool
}

func (e *ProtocolError) Error() string { return "resp: protocol error: " + e.Msg }

// IsRecoverable reports whether err is a protocol error the connection can
// survive (reply -ERR, keep reading).
func IsRecoverable(err error) bool {
	var pe *ProtocolError
	return errors.As(err, &pe) && pe.Recoverable
}

// IsProtocolError reports whether err is any protocol error (as opposed to
// an I/O error on the underlying stream).
func IsProtocolError(err error) bool {
	var pe *ProtocolError
	return errors.As(err, &pe)
}

func protoErr(recoverable bool, format string, args ...any) error {
	return &ProtocolError{Msg: fmt.Sprintf(format, args...), Recoverable: recoverable}
}

// Reader parses commands and replies from a RESP stream.
type Reader struct {
	br *bufio.Reader

	// MaxBulkLen and MaxArrayLen bound a single argument and a single
	// command's argument count; both default when zero.
	MaxBulkLen  int
	MaxArrayLen int
}

// NewReader wraps r. If r is already a *bufio.Reader it is used directly.
func NewReader(r io.Reader) *Reader {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	return &Reader{br: br}
}

func (r *Reader) maxBulk() int {
	if r.MaxBulkLen > 0 {
		return r.MaxBulkLen
	}
	return DefaultMaxBulkLen
}

func (r *Reader) maxArray() int {
	if r.MaxArrayLen > 0 {
		return r.MaxArrayLen
	}
	return DefaultMaxArrayLen
}

// Buffered reports how many bytes are already buffered in memory — the
// pipelining signal: a server can keep parsing commands without another
// network read while this is nonzero.
func (r *Reader) Buffered() int { return r.br.Buffered() }

// readLine reads through the next LF and returns the line without its
// terminator. RESP terminates lines with CRLF; a bare LF is tolerated on
// inline input. Lines longer than maxInlineLen are a fatal protocol error.
func (r *Reader) readLine() ([]byte, error) {
	line, err := r.br.ReadSlice('\n')
	if errors.Is(err, bufio.ErrBufferFull) {
		// Drain the oversized line so the error is at least diagnosable,
		// but treat it as fatal: the peer is not speaking sane RESP.
		for errors.Is(err, bufio.ErrBufferFull) {
			_, err = r.br.ReadSlice('\n')
		}
		if err != nil {
			return nil, err
		}
		return nil, protoErr(false, "line exceeds %d bytes", maxInlineLen)
	}
	if err != nil {
		return nil, err
	}
	line = line[:len(line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}

// ReadCommand returns the next command as its argument vector. It accepts
// the RESP array-of-bulk-strings form and the inline form. Empty inline
// lines (and empty arrays) are skipped, matching Redis. The returned
// slices are owned by the caller.
func (r *Reader) ReadCommand() ([][]byte, error) {
	for {
		first, err := r.br.Peek(1)
		if err != nil {
			return nil, err
		}
		if first[0] != '*' {
			args, err := r.readInline()
			if err != nil {
				return nil, err
			}
			if len(args) == 0 {
				continue // blank line between commands
			}
			return args, nil
		}
		args, err := r.readArray()
		if err != nil {
			return nil, err
		}
		if args == nil {
			continue // empty or null array: ignore, like Redis
		}
		return args, nil
	}
}

// readInline splits one line into whitespace-separated arguments.
func (r *Reader) readInline() ([][]byte, error) {
	line, err := r.readLine()
	if err != nil {
		return nil, err
	}
	var args [][]byte
	for i := 0; i < len(line); {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		start := i
		for i < len(line) && line[i] != ' ' && line[i] != '\t' {
			i++
		}
		if i > start {
			args = append(args, append([]byte(nil), line[start:i]...))
		}
	}
	if len(args) > r.maxArray() {
		return nil, protoErr(true, "inline command has %d arguments (limit %d)", len(args), r.maxArray())
	}
	return args, nil
}

// readArray parses "*<n>\r\n" followed by n bulk strings. A nil return with
// nil error means an empty/null array (skip it).
func (r *Reader) readArray() ([][]byte, error) {
	line, err := r.readLine()
	if err != nil {
		return nil, err
	}
	// line[0] == '*' (peeked by the caller).
	n, perr := strconv.Atoi(string(line[1:]))
	if perr != nil {
		// The full header line was consumed — safe to resync at the next
		// line, so this class is recoverable.
		return nil, protoErr(true, "invalid multibulk length %q", line[1:])
	}
	if n <= 0 {
		return nil, nil // "*0" and "*-1": no command
	}
	if n > r.maxArray() {
		// The n bulk frames are still in flight; resync is ambiguous.
		return nil, protoErr(false, "multibulk length %d exceeds limit %d", n, r.maxArray())
	}
	args := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		arg, err := r.readBulk()
		if err != nil {
			return nil, err
		}
		args = append(args, arg)
	}
	return args, nil
}

// readBulk parses "$<len>\r\n<len bytes>\r\n".
func (r *Reader) readBulk() ([]byte, error) {
	line, err := r.readLine()
	if err != nil {
		return nil, err
	}
	if len(line) == 0 || line[0] != '$' {
		return nil, protoErr(false, "expected bulk string, got %q", line)
	}
	n, perr := strconv.Atoi(string(line[1:]))
	if perr != nil || n < 0 {
		return nil, protoErr(false, "invalid bulk length %q", line[1:])
	}
	if n > r.maxBulk() {
		return nil, protoErr(false, "bulk length %d exceeds limit %d", n, r.maxBulk())
	}
	buf := make([]byte, n+2)
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return nil, err
	}
	if buf[n] != '\r' || buf[n+1] != '\n' {
		return nil, protoErr(false, "bulk string missing CRLF terminator")
	}
	return buf[:n], nil
}

// ---- Replies (client side) ----

// Kind tags a parsed reply value.
type Kind byte

// Reply kinds, matching the RESP type bytes.
const (
	KindStatus Kind = '+'
	KindError  Kind = '-'
	KindInt    Kind = ':'
	KindBulk   Kind = '$'
	KindArray  Kind = '*'
)

// Value is one parsed RESP reply.
type Value struct {
	Kind  Kind
	Str   []byte  // KindStatus, KindError, KindBulk
	Int   int64   // KindInt
	Null  bool    // null bulk ($-1) or null array (*-1)
	Array []Value // KindArray
}

// IsError reports whether the value is an -ERR style reply.
func (v Value) IsError() bool { return v.Kind == KindError }

// Text returns the string payload (status, error, or bulk).
func (v Value) Text() string { return string(v.Str) }

// ReadReply parses one reply value (used by clients).
func (r *Reader) ReadReply() (Value, error) {
	line, err := r.readLine()
	if err != nil {
		return Value{}, err
	}
	if len(line) == 0 {
		return Value{}, protoErr(false, "empty reply line")
	}
	switch line[0] {
	case '+':
		return Value{Kind: KindStatus, Str: append([]byte(nil), line[1:]...)}, nil
	case '-':
		return Value{Kind: KindError, Str: append([]byte(nil), line[1:]...)}, nil
	case ':':
		n, perr := strconv.ParseInt(string(line[1:]), 10, 64)
		if perr != nil {
			return Value{}, protoErr(false, "invalid integer reply %q", line[1:])
		}
		return Value{Kind: KindInt, Int: n}, nil
	case '$':
		n, perr := strconv.Atoi(string(line[1:]))
		if perr != nil {
			return Value{}, protoErr(false, "invalid bulk length %q", line[1:])
		}
		if n < 0 {
			return Value{Kind: KindBulk, Null: true}, nil
		}
		if n > r.maxBulk() {
			return Value{}, protoErr(false, "bulk reply length %d exceeds limit %d", n, r.maxBulk())
		}
		buf := make([]byte, n+2)
		if _, err := io.ReadFull(r.br, buf); err != nil {
			return Value{}, err
		}
		if buf[n] != '\r' || buf[n+1] != '\n' {
			return Value{}, protoErr(false, "bulk reply missing CRLF terminator")
		}
		return Value{Kind: KindBulk, Str: buf[:n]}, nil
	case '*':
		n, perr := strconv.Atoi(string(line[1:]))
		if perr != nil {
			return Value{}, protoErr(false, "invalid array length %q", line[1:])
		}
		if n < 0 {
			return Value{Kind: KindArray, Null: true}, nil
		}
		if n > r.maxArray() {
			return Value{}, protoErr(false, "array reply length %d exceeds limit %d", n, r.maxArray())
		}
		vals := make([]Value, 0, n)
		for i := 0; i < n; i++ {
			v, err := r.ReadReply()
			if err != nil {
				return Value{}, err
			}
			vals = append(vals, v)
		}
		return Value{Kind: KindArray, Array: vals}, nil
	default:
		return Value{}, protoErr(false, "unknown reply type %q", line[0])
	}
}

// ---- Writer ----

// Writer serializes RESP replies (and, for clients, commands) into a
// buffered stream. Nothing reaches the peer until Flush.
type Writer struct {
	bw *bufio.Writer
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	bw, ok := w.(*bufio.Writer)
	if !ok {
		bw = bufio.NewWriter(w)
	}
	return &Writer{bw: bw}
}

// Status writes "+s\r\n".
func (w *Writer) Status(s string) error {
	w.bw.WriteByte('+') //nolint:errcheck // bufio sticks the first error
	w.bw.WriteString(s) //nolint:errcheck
	_, err := w.bw.WriteString("\r\n")
	return err
}

// Error writes "-msg\r\n". CR/LF inside msg would break framing, so they
// are replaced with spaces.
func (w *Writer) Error(msg string) error {
	w.bw.WriteByte('-') //nolint:errcheck
	for i := 0; i < len(msg); i++ {
		c := msg[i]
		if c == '\r' || c == '\n' {
			c = ' '
		}
		w.bw.WriteByte(c) //nolint:errcheck
	}
	_, err := w.bw.WriteString("\r\n")
	return err
}

// Int writes ":n\r\n".
func (w *Writer) Int(n int64) error {
	w.bw.WriteByte(':')                        //nolint:errcheck
	w.bw.WriteString(strconv.FormatInt(n, 10)) //nolint:errcheck
	_, err := w.bw.WriteString("\r\n")
	return err
}

// Bulk writes "$len\r\nb\r\n".
func (w *Writer) Bulk(b []byte) error {
	w.bw.WriteByte('$')                    //nolint:errcheck
	w.bw.WriteString(strconv.Itoa(len(b))) //nolint:errcheck
	w.bw.WriteString("\r\n")               //nolint:errcheck
	w.bw.Write(b)                          //nolint:errcheck
	_, err := w.bw.WriteString("\r\n")
	return err
}

// Null writes the null bulk "$-1\r\n" (key not found).
func (w *Writer) Null() error {
	_, err := w.bw.WriteString("$-1\r\n")
	return err
}

// ArrayHeader writes "*n\r\n"; the caller then writes n elements.
func (w *Writer) ArrayHeader(n int) error {
	w.bw.WriteByte('*')               //nolint:errcheck
	w.bw.WriteString(strconv.Itoa(n)) //nolint:errcheck
	_, err := w.bw.WriteString("\r\n")
	return err
}

// Command writes one command in array-of-bulk form (client side).
func (w *Writer) Command(args ...[]byte) error {
	if err := w.ArrayHeader(len(args)); err != nil {
		return err
	}
	for _, a := range args {
		if err := w.Bulk(a); err != nil {
			return err
		}
	}
	return nil
}

// Flush sends everything buffered.
func (w *Writer) Flush() error { return w.bw.Flush() }
