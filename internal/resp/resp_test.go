package resp

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/iotest"
)

func readAll(t *testing.T, r *Reader) [][]string {
	t.Helper()
	var cmds [][]string
	for {
		args, err := r.ReadCommand()
		if errors.Is(err, io.EOF) {
			return cmds
		}
		if err != nil {
			t.Fatalf("ReadCommand: %v", err)
		}
		var s []string
		for _, a := range args {
			s = append(s, string(a))
		}
		cmds = append(cmds, s)
	}
}

func TestReadCommandForms(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want [][]string
	}{
		{"array", "*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n", [][]string{{"SET", "k", "v"}}},
		{"inline", "PING\r\n", [][]string{{"PING"}}},
		{"inline-args", "GET  some-key\r\n", [][]string{{"GET", "some-key"}}},
		{"inline-bare-lf", "PING\n", [][]string{{"PING"}}},
		{"blank-lines-skipped", "\r\n\r\nPING\r\n", [][]string{{"PING"}}},
		{"empty-array-skipped", "*0\r\n*1\r\n$4\r\nPING\r\n", [][]string{{"PING"}}},
		{"null-array-skipped", "*-1\r\nPING\r\n", [][]string{{"PING"}}},
		{"empty-bulk-arg", "*2\r\n$3\r\nGET\r\n$0\r\n\r\n", [][]string{{"GET", ""}}},
		{"binary-arg", "*2\r\n$3\r\nGET\r\n$3\r\n\x00\r\t\r\n", [][]string{{"GET", "\x00\r\t"}}},
		{
			"pipelined-mixed",
			"*1\r\n$4\r\nPING\r\nGET k\r\n*2\r\n$3\r\nGET\r\n$1\r\nx\r\n",
			[][]string{{"PING"}, {"GET", "k"}, {"GET", "x"}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := readAll(t, NewReader(strings.NewReader(tc.in)))
			if len(got) != len(tc.want) {
				t.Fatalf("got %d commands %v, want %d", len(got), got, len(tc.want))
			}
			for i := range got {
				if strings.Join(got[i], "|") != strings.Join(tc.want[i], "|") {
					t.Fatalf("command %d: got %v want %v", i, got[i], tc.want[i])
				}
			}
		})
	}
}

// Partial reads: the same streams must parse identically when the
// underlying reader returns one byte at a time.
func TestReadCommandPartialReads(t *testing.T) {
	in := "*3\r\n$3\r\nSET\r\n$5\r\nhello\r\n$5\r\nworld\r\n*1\r\n$4\r\nPING\r\nGET k\r\n"
	r := NewReader(iotest.OneByteReader(strings.NewReader(in)))
	got := readAll(t, r)
	want := [][]string{{"SET", "hello", "world"}, {"PING"}, {"GET", "k"}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range got {
		if strings.Join(got[i], "|") != strings.Join(want[i], "|") {
			t.Fatalf("command %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestProtocolErrors(t *testing.T) {
	cases := []struct {
		name        string
		in          string
		recoverable bool
	}{
		{"bad-array-len", "*abc\r\nPING\r\n", true},
		{"huge-inline-argc", "*2000000\r\n", false}, // over MaxArrayLen: elements in flight
		{"bad-bulk-type", "*1\r\n:5\r\n", false},
		{"bad-bulk-len", "*1\r\n$abc\r\n", false},
		{"negative-bulk-len", "*1\r\n$-5\r\n", false},
		{"oversized-bulk", "*1\r\n$999999999\r\n", false},
		{"missing-crlf", "*1\r\n$3\r\nabcde\r\n", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewReader(strings.NewReader(tc.in))
			_, err := r.ReadCommand()
			if !IsProtocolError(err) {
				t.Fatalf("want protocol error, got %v", err)
			}
			if IsRecoverable(err) != tc.recoverable {
				t.Fatalf("recoverable=%v, want %v (%v)", IsRecoverable(err), tc.recoverable, err)
			}
		})
	}
}

// A recoverable error must leave the reader positioned at the next line.
func TestRecoverableErrorResyncs(t *testing.T) {
	r := NewReader(strings.NewReader("*zz\r\nPING\r\n"))
	if _, err := r.ReadCommand(); !IsRecoverable(err) {
		t.Fatalf("want recoverable protocol error, got %v", err)
	}
	args, err := r.ReadCommand()
	if err != nil || len(args) != 1 || string(args[0]) != "PING" {
		t.Fatalf("after resync: %v %v", args, err)
	}
}

func TestCustomBulkLimit(t *testing.T) {
	r := NewReader(strings.NewReader("*1\r\n$100\r\n" + strings.Repeat("x", 100) + "\r\n"))
	r.MaxBulkLen = 10
	if _, err := r.ReadCommand(); !IsProtocolError(err) || IsRecoverable(err) {
		t.Fatalf("want fatal protocol error, got %v", err)
	}
}

func TestOversizedInlineLine(t *testing.T) {
	r := NewReader(strings.NewReader(strings.Repeat("a", 1<<20) + "\r\nPING\r\n"))
	if _, err := r.ReadCommand(); !IsProtocolError(err) || IsRecoverable(err) {
		t.Fatalf("want fatal protocol error for giant line, got %v", err)
	}
}

func TestWriterRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Status("OK"); err != nil {
		t.Fatal(err)
	}
	w.Error("ERR boom\r\nwith newline") //nolint:errcheck
	w.Int(-42)                          //nolint:errcheck
	w.Bulk([]byte("hi\r\nthere"))       //nolint:errcheck
	w.Null()                            //nolint:errcheck
	w.ArrayHeader(2)                    //nolint:errcheck
	w.Bulk([]byte("a"))                 //nolint:errcheck
	w.Int(7)                            //nolint:errcheck
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	v, err := r.ReadReply()
	if err != nil || v.Kind != KindStatus || v.Text() != "OK" {
		t.Fatalf("status: %+v %v", v, err)
	}
	v, _ = r.ReadReply()
	if v.Kind != KindError || strings.Contains(v.Text(), "\n") {
		t.Fatalf("error reply kept newline: %q", v.Text())
	}
	v, _ = r.ReadReply()
	if v.Kind != KindInt || v.Int != -42 {
		t.Fatalf("int: %+v", v)
	}
	v, _ = r.ReadReply()
	if v.Kind != KindBulk || v.Text() != "hi\r\nthere" {
		t.Fatalf("bulk: %+v", v)
	}
	v, _ = r.ReadReply()
	if v.Kind != KindBulk || !v.Null {
		t.Fatalf("null: %+v", v)
	}
	v, err = r.ReadReply()
	if err != nil || v.Kind != KindArray || len(v.Array) != 2 ||
		v.Array[0].Text() != "a" || v.Array[1].Int != 7 {
		t.Fatalf("array: %+v %v", v, err)
	}
}

// The command writer must emit frames the command reader accepts verbatim.
func TestCommandRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Command([]byte("SET"), []byte("k"), []byte("binary\x00\r\n")); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	args, err := NewReader(&buf).ReadCommand()
	if err != nil || len(args) != 3 || string(args[2]) != "binary\x00\r\n" {
		t.Fatalf("round trip: %q %v", args, err)
	}
}
