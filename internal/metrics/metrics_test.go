package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestBasicStats(t *testing.T) {
	h := &Histogram{}
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count %d", h.Count())
	}
	mean := h.Mean()
	if mean < 40*time.Millisecond || mean > 60*time.Millisecond {
		t.Fatalf("mean %v", mean)
	}
	p50 := h.Quantile(0.5)
	if p50 < 40*time.Millisecond || p50 > 60*time.Millisecond {
		t.Fatalf("p50 %v", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 90*time.Millisecond || p99 > 110*time.Millisecond {
		t.Fatalf("p99 %v", p99)
	}
	if h.Quantile(1.0) > 100*time.Millisecond {
		t.Fatalf("p100 above max: %v", h.Quantile(1.0))
	}
}

func TestQuantileMonotonic(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 10_000; i++ {
		h.Record(time.Duration(i%977) * time.Microsecond)
	}
	prev := time.Duration(0)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile %v < previous (%v < %v)", q, v, prev)
		}
		prev = v
	}
}

func TestEmptyHistogram(t *testing.T) {
	h := &Histogram{}
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram not zero")
	}
}

func TestMerge(t *testing.T) {
	a, b := &Histogram{}, &Histogram{}
	for i := 0; i < 50; i++ {
		a.Record(time.Millisecond)
		b.Record(100 * time.Millisecond)
	}
	a.Merge(b)
	if a.Count() != 100 {
		t.Fatalf("merged count %d", a.Count())
	}
	p99 := a.Quantile(0.99)
	if p99 < 90*time.Millisecond {
		t.Fatalf("merge lost the slow half: p99=%v", p99)
	}
	p25 := a.Quantile(0.25)
	if p25 > 2*time.Millisecond {
		t.Fatalf("merge lost the fast half: p25=%v", p25)
	}
}

func TestConcurrentRecord(t *testing.T) {
	h := &Histogram{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10_000; i++ {
				h.Record(time.Duration(i) * time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 80_000 {
		t.Fatalf("count %d", h.Count())
	}
}

func TestAccuracyWithinBucketResolution(t *testing.T) {
	h := &Histogram{}
	exact := 12345 * time.Microsecond
	for i := 0; i < 1000; i++ {
		h.Record(exact)
	}
	got := h.Quantile(0.5)
	// Buckets grow by 8%; the answer must be within that.
	lo := time.Duration(float64(exact) * 0.90)
	hi := time.Duration(float64(exact) * 1.10)
	if got < lo || got > hi {
		t.Fatalf("p50 %v outside [%v,%v]", got, lo, hi)
	}
}
