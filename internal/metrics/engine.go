package metrics

import (
	"fmt"
	"sync/atomic"
)

// EngineCounters tracks the foreground commit and read paths across every
// open engine in the process: committed batches, commit-path WAL fsyncs (the
// wal_syncs/writes pair behind the group-commit ratio), how often the
// pipeline actually coalesced concurrent writers, and prefix-filter seek
// outcomes. The zero value is ready to use.
type EngineCounters struct {
	Writes         atomic.Int64 // committed batches (each acked writer counts once)
	WALSyncs       atomic.Int64 // commit-path fsyncs; < Writes under group commit
	GroupedCommits atomic.Int64 // commit groups that coalesced >1 writer
	GroupedWriters atomic.Int64 // writers that rode those coalesced groups
	PrefixSeeks    atomic.Int64 // iterator seeks routed through SeekPrefixGE
	PrefixSkips    atomic.Int64 // tables skipped because the prefix bloom proved absence
}

// Engine is the process-wide engine counter set.
var Engine = &EngineCounters{}

// EngineSnapshot is a point-in-time copy of EngineCounters.
type EngineSnapshot struct {
	Writes         int64
	WALSyncs       int64
	GroupedCommits int64
	GroupedWriters int64
	PrefixSeeks    int64
	PrefixSkips    int64
}

// Snapshot returns the current counter values.
func (c *EngineCounters) Snapshot() EngineSnapshot {
	return EngineSnapshot{
		Writes:         c.Writes.Load(),
		WALSyncs:       c.WALSyncs.Load(),
		GroupedCommits: c.GroupedCommits.Load(),
		GroupedWriters: c.GroupedWriters.Load(),
		PrefixSeeks:    c.PrefixSeeks.Load(),
		PrefixSkips:    c.PrefixSkips.Load(),
	}
}

// Reset zeroes every counter (benchmarks reset between runs).
func (c *EngineCounters) Reset() {
	c.Writes.Store(0)
	c.WALSyncs.Store(0)
	c.GroupedCommits.Store(0)
	c.GroupedWriters.Store(0)
	c.PrefixSeeks.Store(0)
	c.PrefixSkips.Store(0)
}

// Any reports whether any engine activity was recorded.
func (s EngineSnapshot) Any() bool {
	return s.Writes+s.WALSyncs+s.GroupedCommits+s.PrefixSeeks != 0
}

// Sub returns the delta s minus prev.
func (s EngineSnapshot) Sub(prev EngineSnapshot) EngineSnapshot {
	return EngineSnapshot{
		Writes:         s.Writes - prev.Writes,
		WALSyncs:       s.WALSyncs - prev.WALSyncs,
		GroupedCommits: s.GroupedCommits - prev.GroupedCommits,
		GroupedWriters: s.GroupedWriters - prev.GroupedWriters,
		PrefixSeeks:    s.PrefixSeeks - prev.PrefixSeeks,
		PrefixSkips:    s.PrefixSkips - prev.PrefixSkips,
	}
}

// GroupCommitRatio returns WALSyncs/Writes (0 with no writes); under group
// commit with concurrent synced writers this drops below 1.
func (s EngineSnapshot) GroupCommitRatio() float64 {
	if s.Writes == 0 {
		return 0
	}
	return float64(s.WALSyncs) / float64(s.Writes)
}

// String renders the counters.
func (s EngineSnapshot) String() string {
	return fmt.Sprintf(
		"writes=%d wal_syncs=%d (ratio %.3f) grouped_commits=%d grouped_writers=%d prefix_seeks=%d prefix_skips=%d",
		s.Writes, s.WALSyncs, s.GroupCommitRatio(), s.GroupedCommits, s.GroupedWriters,
		s.PrefixSeeks, s.PrefixSkips)
}
