package metrics

import (
	"strings"
	"testing"
)

func TestNetSnapshotSubAndString(t *testing.T) {
	var c NetCounters
	before := c.Snapshot()
	c.Retries.Add(3)
	c.Timeouts.Add(1)
	c.DegradedWrites.Add(2)
	delta := c.Snapshot().Sub(before)
	if delta.Retries != 3 || delta.Timeouts != 1 || delta.DegradedWrites != 2 {
		t.Fatalf("delta = %+v", delta)
	}
	if !delta.Any() {
		t.Fatal("Any() = false with non-zero counters")
	}
	s := delta.String()
	if !strings.Contains(s, "retries=3") {
		t.Fatalf("String() = %q, want retries=3", s)
	}
	c.Reset()
	if c.Snapshot().Any() {
		t.Fatal("counters non-zero after Reset")
	}
}

func TestGlobalNetCounters(t *testing.T) {
	base := Net.Snapshot()
	Net.Failovers.Add(1)
	if d := Net.Snapshot().Sub(base); d.Failovers != 1 {
		t.Fatalf("global Failovers delta = %d, want 1", d.Failovers)
	}
}
