package metrics

import (
	"fmt"
	"sync/atomic"
)

// NetCounters aggregates fault-tolerance events on the network paths:
// the KDS client, the disaggregated-storage client, and the offloaded
// compaction client all report into one counter set so the bench harness
// can print how much retrying/failover a run needed. The zero value is
// ready to use.
type NetCounters struct {
	Retries        atomic.Int64 // requests re-sent after a transport failure
	Timeouts       atomic.Int64 // attempts that hit the per-request deadline
	Failovers      atomic.Int64 // connections moved to a different replica
	Redials        atomic.Int64 // pool slots re-dialed after a discarded conn
	DegradedWrites atomic.Int64 // writes refused because the KDS is unreachable
	DegradedReads  atomic.Int64 // reads that failed even after the secure cache
}

// Net is the process-wide counter set the network clients report into.
var Net = &NetCounters{}

// NetSnapshot is a point-in-time copy of NetCounters.
type NetSnapshot struct {
	Retries        int64
	Timeouts       int64
	Failovers      int64
	Redials        int64
	DegradedWrites int64
	DegradedReads  int64
}

// Snapshot returns the current counter values.
func (c *NetCounters) Snapshot() NetSnapshot {
	return NetSnapshot{
		Retries:        c.Retries.Load(),
		Timeouts:       c.Timeouts.Load(),
		Failovers:      c.Failovers.Load(),
		Redials:        c.Redials.Load(),
		DegradedWrites: c.DegradedWrites.Load(),
		DegradedReads:  c.DegradedReads.Load(),
	}
}

// Reset zeroes every counter (benchmarks reset between runs).
func (c *NetCounters) Reset() {
	c.Retries.Store(0)
	c.Timeouts.Store(0)
	c.Failovers.Store(0)
	c.Redials.Store(0)
	c.DegradedWrites.Store(0)
	c.DegradedReads.Store(0)
}

// Any reports whether any fault-tolerance event occurred.
func (s NetSnapshot) Any() bool {
	return s.Retries+s.Timeouts+s.Failovers+s.Redials+s.DegradedWrites+s.DegradedReads != 0
}

// Sub returns the delta s minus prev, for reporting one run's events.
func (s NetSnapshot) Sub(prev NetSnapshot) NetSnapshot {
	return NetSnapshot{
		Retries:        s.Retries - prev.Retries,
		Timeouts:       s.Timeouts - prev.Timeouts,
		Failovers:      s.Failovers - prev.Failovers,
		Redials:        s.Redials - prev.Redials,
		DegradedWrites: s.DegradedWrites - prev.DegradedWrites,
		DegradedReads:  s.DegradedReads - prev.DegradedReads,
	}
}

// String renders the non-zero counters.
func (s NetSnapshot) String() string {
	return fmt.Sprintf("retries=%d timeouts=%d failovers=%d redials=%d degraded_writes=%d degraded_reads=%d",
		s.Retries, s.Timeouts, s.Failovers, s.Redials, s.DegradedWrites, s.DegradedReads)
}
