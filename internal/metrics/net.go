package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// NetCounters aggregates fault-tolerance events on the network paths:
// the KDS client, the disaggregated-storage client, and the offloaded
// compaction client all report into one counter set so the bench harness
// can print how much retrying/failover a run needed. The zero value is
// ready to use.
type NetCounters struct {
	Retries          atomic.Int64 // requests re-sent after a transport failure
	Timeouts         atomic.Int64 // attempts that hit the per-request deadline
	Failovers        atomic.Int64 // connections moved to a different replica
	Redials          atomic.Int64 // pool slots re-dialed after a discarded conn
	DegradedWrites   atomic.Int64 // writes refused because the KDS is unreachable
	DegradedReads    atomic.Int64 // reads that failed even after the secure cache
	QuorumShortfalls atomic.Int64 // replicated mutations acked by fewer than quorum replicas
	Resyncs          atomic.Int64 // replica rejoin re-sync passes completed
	ResyncBytes      atomic.Int64 // bytes copied to rejoining replicas

	epMu       sync.Mutex
	byEndpoint map[string]*EndpointCounters
}

// EndpointCounters is the per-replica breakdown of the aggregate counters:
// one set per endpoint address, so an operator can see WHICH storage node
// is failing over, being resynced, or eating errors — the aggregate view
// cannot distinguish one sick replica from uniform flakiness.
type EndpointCounters struct {
	Failovers   atomic.Int64 // times traffic was re-pointed at this endpoint
	Errors      atomic.Int64 // transport failures charged to this endpoint
	Resyncs     atomic.Int64 // re-sync passes that repaired this endpoint
	ResyncBytes atomic.Int64 // bytes copied to this endpoint during re-sync
}

// Endpoint returns (lazily creating) the per-endpoint counter set for addr.
func (c *NetCounters) Endpoint(addr string) *EndpointCounters {
	c.epMu.Lock()
	defer c.epMu.Unlock()
	if c.byEndpoint == nil {
		c.byEndpoint = make(map[string]*EndpointCounters)
	}
	ec, ok := c.byEndpoint[addr]
	if !ok {
		ec = &EndpointCounters{}
		c.byEndpoint[addr] = ec
	}
	return ec
}

// EndpointSnapshot is a point-in-time copy of one endpoint's counters.
type EndpointSnapshot struct {
	Failovers   int64 `json:"failovers"`
	Errors      int64 `json:"errors"`
	Resyncs     int64 `json:"resyncs,omitempty"`
	ResyncBytes int64 `json:"resync_bytes,omitempty"`
}

// Net is the process-wide counter set the network clients report into.
var Net = &NetCounters{}

// NetSnapshot is a point-in-time copy of NetCounters.
type NetSnapshot struct {
	Retries          int64
	Timeouts         int64
	Failovers        int64
	Redials          int64
	DegradedWrites   int64
	DegradedReads    int64
	QuorumShortfalls int64 `json:",omitempty"`
	Resyncs          int64 `json:",omitempty"`
	ResyncBytes      int64 `json:",omitempty"`

	// Endpoints breaks the counters down per replica address (only
	// endpoints that registered activity appear).
	Endpoints map[string]EndpointSnapshot `json:",omitempty"`
}

// Snapshot returns the current counter values.
func (c *NetCounters) Snapshot() NetSnapshot {
	s := NetSnapshot{
		Retries:          c.Retries.Load(),
		Timeouts:         c.Timeouts.Load(),
		Failovers:        c.Failovers.Load(),
		Redials:          c.Redials.Load(),
		DegradedWrites:   c.DegradedWrites.Load(),
		DegradedReads:    c.DegradedReads.Load(),
		QuorumShortfalls: c.QuorumShortfalls.Load(),
		Resyncs:          c.Resyncs.Load(),
		ResyncBytes:      c.ResyncBytes.Load(),
	}
	c.epMu.Lock()
	if len(c.byEndpoint) > 0 {
		s.Endpoints = make(map[string]EndpointSnapshot, len(c.byEndpoint))
		for addr, ec := range c.byEndpoint {
			s.Endpoints[addr] = EndpointSnapshot{
				Failovers:   ec.Failovers.Load(),
				Errors:      ec.Errors.Load(),
				Resyncs:     ec.Resyncs.Load(),
				ResyncBytes: ec.ResyncBytes.Load(),
			}
		}
	}
	c.epMu.Unlock()
	return s
}

// Reset zeroes every counter (benchmarks reset between runs).
func (c *NetCounters) Reset() {
	c.Retries.Store(0)
	c.Timeouts.Store(0)
	c.Failovers.Store(0)
	c.Redials.Store(0)
	c.DegradedWrites.Store(0)
	c.DegradedReads.Store(0)
	c.QuorumShortfalls.Store(0)
	c.Resyncs.Store(0)
	c.ResyncBytes.Store(0)
	c.epMu.Lock()
	c.byEndpoint = nil
	c.epMu.Unlock()
}

// Any reports whether any fault-tolerance event occurred.
func (s NetSnapshot) Any() bool {
	return s.Retries+s.Timeouts+s.Failovers+s.Redials+s.DegradedWrites+s.DegradedReads+
		s.QuorumShortfalls+s.Resyncs+s.ResyncBytes != 0
}

// Sub returns the delta s minus prev, for reporting one run's events.
// Endpoint counters subtract pairwise; endpoints absent from prev pass
// through unchanged.
func (s NetSnapshot) Sub(prev NetSnapshot) NetSnapshot {
	out := NetSnapshot{
		Retries:          s.Retries - prev.Retries,
		Timeouts:         s.Timeouts - prev.Timeouts,
		Failovers:        s.Failovers - prev.Failovers,
		Redials:          s.Redials - prev.Redials,
		DegradedWrites:   s.DegradedWrites - prev.DegradedWrites,
		DegradedReads:    s.DegradedReads - prev.DegradedReads,
		QuorumShortfalls: s.QuorumShortfalls - prev.QuorumShortfalls,
		Resyncs:          s.Resyncs - prev.Resyncs,
		ResyncBytes:      s.ResyncBytes - prev.ResyncBytes,
	}
	if len(s.Endpoints) > 0 {
		out.Endpoints = make(map[string]EndpointSnapshot, len(s.Endpoints))
		for addr, es := range s.Endpoints {
			p := prev.Endpoints[addr]
			out.Endpoints[addr] = EndpointSnapshot{
				Failovers:   es.Failovers - p.Failovers,
				Errors:      es.Errors - p.Errors,
				Resyncs:     es.Resyncs - p.Resyncs,
				ResyncBytes: es.ResyncBytes - p.ResyncBytes,
			}
		}
	}
	return out
}

// String renders the non-zero counters.
func (s NetSnapshot) String() string {
	out := fmt.Sprintf("retries=%d timeouts=%d failovers=%d redials=%d degraded_writes=%d degraded_reads=%d",
		s.Retries, s.Timeouts, s.Failovers, s.Redials, s.DegradedWrites, s.DegradedReads)
	if s.QuorumShortfalls+s.Resyncs+s.ResyncBytes != 0 {
		out += fmt.Sprintf(" quorum_shortfalls=%d resyncs=%d resync_bytes=%d",
			s.QuorumShortfalls, s.Resyncs, s.ResyncBytes)
	}
	for _, addr := range s.EndpointOrder() {
		es := s.Endpoints[addr]
		out += fmt.Sprintf(" [%s: failovers=%d errors=%d resyncs=%d resync_bytes=%d]",
			addr, es.Failovers, es.Errors, es.Resyncs, es.ResyncBytes)
	}
	return out
}

// EndpointOrder returns the snapshot's endpoint addresses sorted, so
// rendered breakdowns (String, the server's INFO) are deterministic.
func (s NetSnapshot) EndpointOrder() []string {
	if len(s.Endpoints) == 0 {
		return nil
	}
	addrs := make([]string, 0, len(s.Endpoints))
	for a := range s.Endpoints {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	return addrs
}
