package metrics

import (
	"fmt"
	"sync/atomic"
)

// RecoveryCounters aggregates crash-recovery and integrity-checking events:
// WAL replay volume, torn tails truncated, files the recovery or scrub pass
// quarantined, and how much data the scrub verified. The zero value is ready
// to use.
type RecoveryCounters struct {
	WALRecordsReplayed  atomic.Int64 // batch records re-applied from WALs at open
	WALTailTruncations  atomic.Int64 // WALs ended early at a torn/corrupt tail
	FilesQuarantined    atomic.Int64 // corrupt files moved aside (lost/) or dropped
	ScrubBlocksVerified atomic.Int64 // SST blocks whose checksums a scrub verified
	RecoveryNanos       atomic.Int64 // total time spent inside DB recovery
}

// Recovery is the process-wide counter set recovery and scrub report into.
var Recovery = &RecoveryCounters{}

// RecoverySnapshot is a point-in-time copy of RecoveryCounters.
type RecoverySnapshot struct {
	WALRecordsReplayed  int64
	WALTailTruncations  int64
	FilesQuarantined    int64
	ScrubBlocksVerified int64
	RecoveryNanos       int64
}

// Snapshot returns the current counter values.
func (c *RecoveryCounters) Snapshot() RecoverySnapshot {
	return RecoverySnapshot{
		WALRecordsReplayed:  c.WALRecordsReplayed.Load(),
		WALTailTruncations:  c.WALTailTruncations.Load(),
		FilesQuarantined:    c.FilesQuarantined.Load(),
		ScrubBlocksVerified: c.ScrubBlocksVerified.Load(),
		RecoveryNanos:       c.RecoveryNanos.Load(),
	}
}

// Reset zeroes every counter (benchmarks reset between runs).
func (c *RecoveryCounters) Reset() {
	c.WALRecordsReplayed.Store(0)
	c.WALTailTruncations.Store(0)
	c.FilesQuarantined.Store(0)
	c.ScrubBlocksVerified.Store(0)
	c.RecoveryNanos.Store(0)
}

// Any reports whether any recovery or scrub activity occurred.
func (s RecoverySnapshot) Any() bool {
	return s.WALRecordsReplayed+s.WALTailTruncations+s.FilesQuarantined+
		s.ScrubBlocksVerified+s.RecoveryNanos != 0
}

// Sub returns the delta s minus prev, for reporting one run's events.
func (s RecoverySnapshot) Sub(prev RecoverySnapshot) RecoverySnapshot {
	return RecoverySnapshot{
		WALRecordsReplayed:  s.WALRecordsReplayed - prev.WALRecordsReplayed,
		WALTailTruncations:  s.WALTailTruncations - prev.WALTailTruncations,
		FilesQuarantined:    s.FilesQuarantined - prev.FilesQuarantined,
		ScrubBlocksVerified: s.ScrubBlocksVerified - prev.ScrubBlocksVerified,
		RecoveryNanos:       s.RecoveryNanos - prev.RecoveryNanos,
	}
}

// String renders the counters.
func (s RecoverySnapshot) String() string {
	return fmt.Sprintf("wal_replayed=%d wal_truncations=%d quarantined=%d scrub_blocks=%d recovery=%dms",
		s.WALRecordsReplayed, s.WALTailTruncations, s.FilesQuarantined,
		s.ScrubBlocksVerified, s.RecoveryNanos/1e6)
}
