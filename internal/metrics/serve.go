package metrics

import (
	"fmt"
	"sync/atomic"
)

// ServeCounters aggregates serving-layer events: connection lifecycle,
// commands executed, pipelining behavior, and the misbehaving-client paths
// (protocol errors, slow clients dropped at a deadline). Per-shard op
// counters live on server.Server — the shard count is a runtime value — but
// the process-wide totals report here so the bench harness can print them
// next to the engine counters. The zero value is ready to use.
type ServeCounters struct {
	ConnsOpened     atomic.Int64 // connections accepted
	ConnsOpen       atomic.Int64 // gauge: connections open right now
	Commands        atomic.Int64 // commands executed (all types)
	PipelineBatches atomic.Int64 // reader cycles that executed >= 1 command
	PipelinedCmds   atomic.Int64 // commands arriving in a batch of >= 2
	WriteBatches    atomic.Int64 // coalesced per-shard write batches committed
	ProtocolErrors  atomic.Int64 // -ERR replies to malformed frames
	SlowClientDrops atomic.Int64 // connections closed at a read/write deadline
}

// Serve is the process-wide serving counter set.
var Serve = &ServeCounters{}

// ServeSnapshot is a point-in-time copy of ServeCounters.
type ServeSnapshot struct {
	ConnsOpened     int64
	ConnsOpen       int64 // point-in-time gauge, not a delta
	Commands        int64
	PipelineBatches int64
	PipelinedCmds   int64
	WriteBatches    int64
	ProtocolErrors  int64
	SlowClientDrops int64
}

// Snapshot returns the current counter values.
func (c *ServeCounters) Snapshot() ServeSnapshot {
	return ServeSnapshot{
		ConnsOpened:     c.ConnsOpened.Load(),
		ConnsOpen:       c.ConnsOpen.Load(),
		Commands:        c.Commands.Load(),
		PipelineBatches: c.PipelineBatches.Load(),
		PipelinedCmds:   c.PipelinedCmds.Load(),
		WriteBatches:    c.WriteBatches.Load(),
		ProtocolErrors:  c.ProtocolErrors.Load(),
		SlowClientDrops: c.SlowClientDrops.Load(),
	}
}

// Reset zeroes every counter (benchmarks reset between runs).
func (c *ServeCounters) Reset() {
	c.ConnsOpened.Store(0)
	c.ConnsOpen.Store(0)
	c.Commands.Store(0)
	c.PipelineBatches.Store(0)
	c.PipelinedCmds.Store(0)
	c.WriteBatches.Store(0)
	c.ProtocolErrors.Store(0)
	c.SlowClientDrops.Store(0)
}

// Any reports whether any serving activity was recorded.
func (s ServeSnapshot) Any() bool {
	return s.ConnsOpened+s.Commands+s.ProtocolErrors+s.SlowClientDrops != 0
}

// Sub returns the delta s minus prev for the cumulative counters; the
// ConnsOpen gauge is kept from s.
func (s ServeSnapshot) Sub(prev ServeSnapshot) ServeSnapshot {
	return ServeSnapshot{
		ConnsOpened:     s.ConnsOpened - prev.ConnsOpened,
		ConnsOpen:       s.ConnsOpen,
		Commands:        s.Commands - prev.Commands,
		PipelineBatches: s.PipelineBatches - prev.PipelineBatches,
		PipelinedCmds:   s.PipelinedCmds - prev.PipelinedCmds,
		WriteBatches:    s.WriteBatches - prev.WriteBatches,
		ProtocolErrors:  s.ProtocolErrors - prev.ProtocolErrors,
		SlowClientDrops: s.SlowClientDrops - prev.SlowClientDrops,
	}
}

// String renders the counters.
func (s ServeSnapshot) String() string {
	return fmt.Sprintf(
		"conns=%d open=%d commands=%d batches=%d pipelined=%d write_batches=%d proto_errors=%d slow_drops=%d",
		s.ConnsOpened, s.ConnsOpen, s.Commands, s.PipelineBatches, s.PipelinedCmds,
		s.WriteBatches, s.ProtocolErrors, s.SlowClientDrops)
}
