package metrics

import (
	"fmt"
	"sync/atomic"
)

// StorageCounters aggregates resource-exhaustion events on the persistence
// paths: out-of-space errors surfaced by the filesystem layer, entries into
// the engine's read-only degraded mode, compactions aborted to retain their
// inputs, and secure-cache snapshot saves dropped for lack of space. The zero
// value is ready to use.
type StorageCounters struct {
	NoSpaceErrors     atomic.Int64 // writes refused with vfs.ErrNoSpace
	DegradedEntries   atomic.Int64 // times a DB poisoned itself into read-only mode
	CompactionAborts  atomic.Int64 // compactions aborted with inputs retained
	CacheSavesDropped atomic.Int64 // seccache snapshot saves skipped (non-fatal)
}

// Storage is the process-wide counter set the persistence layers report into.
var Storage = &StorageCounters{}

// StorageSnapshot is a point-in-time copy of StorageCounters.
type StorageSnapshot struct {
	NoSpaceErrors     int64
	DegradedEntries   int64
	CompactionAborts  int64
	CacheSavesDropped int64
}

// Snapshot returns the current counter values.
func (c *StorageCounters) Snapshot() StorageSnapshot {
	return StorageSnapshot{
		NoSpaceErrors:     c.NoSpaceErrors.Load(),
		DegradedEntries:   c.DegradedEntries.Load(),
		CompactionAborts:  c.CompactionAborts.Load(),
		CacheSavesDropped: c.CacheSavesDropped.Load(),
	}
}

// Reset zeroes every counter (benchmarks reset between runs).
func (c *StorageCounters) Reset() {
	c.NoSpaceErrors.Store(0)
	c.DegradedEntries.Store(0)
	c.CompactionAborts.Store(0)
	c.CacheSavesDropped.Store(0)
}

// Any reports whether any resource-exhaustion event occurred.
func (s StorageSnapshot) Any() bool {
	return s.NoSpaceErrors+s.DegradedEntries+s.CompactionAborts+s.CacheSavesDropped != 0
}

// Sub returns the delta s minus prev, for reporting one run's events.
func (s StorageSnapshot) Sub(prev StorageSnapshot) StorageSnapshot {
	return StorageSnapshot{
		NoSpaceErrors:     s.NoSpaceErrors - prev.NoSpaceErrors,
		DegradedEntries:   s.DegradedEntries - prev.DegradedEntries,
		CompactionAborts:  s.CompactionAborts - prev.CompactionAborts,
		CacheSavesDropped: s.CacheSavesDropped - prev.CacheSavesDropped,
	}
}

// String renders the counters.
func (s StorageSnapshot) String() string {
	return fmt.Sprintf("no_space=%d degraded_entries=%d compaction_aborts=%d cache_saves_dropped=%d",
		s.NoSpaceErrors, s.DegradedEntries, s.CompactionAborts, s.CacheSavesDropped)
}
