// Package metrics provides the latency histogram and throughput accounting
// used by the benchmark harness.
package metrics

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// Histogram is a concurrent log-bucketed latency histogram. Buckets grow
// geometrically from 100 ns, giving ~4% resolution across ns..minutes.
type Histogram struct {
	mu      sync.Mutex
	buckets [256]int64
	count   int64
	sum     int64
	min     int64
	max     int64
}

const bucketGrowth = 1.08

// bucketFor maps a duration in nanoseconds to a bucket index.
func bucketFor(ns int64) int {
	if ns < 100 {
		return 0
	}
	idx := int(math.Log(float64(ns)/100) / math.Log(bucketGrowth))
	if idx < 0 {
		idx = 0
	}
	if idx > 255 {
		idx = 255
	}
	return idx
}

// bucketValue returns the representative nanoseconds of a bucket.
func bucketValue(idx int) int64 {
	return int64(100 * math.Pow(bucketGrowth, float64(idx)))
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	ns := d.Nanoseconds()
	h.mu.Lock()
	h.buckets[bucketFor(ns)]++
	h.count++
	h.sum += ns
	if h.count == 1 || ns < h.min {
		h.min = ns
	}
	if ns > h.max {
		h.max = ns
	}
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the average latency.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / h.count)
}

// Quantile returns the approximate q-quantile (0 < q <= 1).
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	target := int64(q * float64(h.count))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i, c := range h.buckets {
		seen += c
		if seen >= target {
			v := bucketValue(i)
			if v > h.max {
				v = h.max
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max)
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	other.mu.Lock()
	buckets := other.buckets
	oCount, oSum, oMin, oMax := other.count, other.sum, other.min, other.max
	other.mu.Unlock()

	h.mu.Lock()
	defer h.mu.Unlock()
	for i, c := range buckets {
		h.buckets[i] += c
	}
	if oCount > 0 {
		if h.count == 0 || oMin < h.min {
			h.min = oMin
		}
		if oMax > h.max {
			h.max = oMax
		}
	}
	h.count += oCount
	h.sum += oSum
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.99), time.Duration(h.max))
}
