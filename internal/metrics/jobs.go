package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// JobCounters tracks the background-job scheduler: compaction jobs claimed
// and finished, the running-jobs gauge and its high-water mark, picks that
// had to wait for a free job slot (the "queued" signal), subcompaction
// shards launched, per-job I/O volume, and write-stall time attributable to
// compaction debt. The zero value is ready to use.
type JobCounters struct {
	CompactionsStarted    atomic.Int64 // jobs claimed (manual + background)
	CompactionsDone       atomic.Int64 // jobs released (success or failure)
	CompactionsRunning    atomic.Int64 // gauge: jobs in flight right now
	MaxRunning            atomic.Int64 // high-water mark of CompactionsRunning
	SchedDeferred         atomic.Int64 // runnable plans deferred for lack of a job slot
	SubcompactionsStarted atomic.Int64 // key-range shards launched inside jobs
	BytesRead             atomic.Int64 // compaction input bytes across all jobs
	BytesWritten          atomic.Int64 // compaction output bytes across all jobs
	StallNanos            atomic.Int64 // writer stall time waiting on background debt
}

// Jobs is the process-wide scheduler counter set.
var Jobs = &JobCounters{}

// JobStarted records a claimed job and maintains the running gauge and its
// high-water mark.
func (c *JobCounters) JobStarted() {
	c.CompactionsStarted.Add(1)
	running := c.CompactionsRunning.Add(1)
	for {
		max := c.MaxRunning.Load()
		if running <= max || c.MaxRunning.CompareAndSwap(max, running) {
			return
		}
	}
}

// JobDone records a released job.
func (c *JobCounters) JobDone() {
	c.CompactionsDone.Add(1)
	c.CompactionsRunning.Add(-1)
}

// JobsSnapshot is a point-in-time copy of JobCounters.
type JobsSnapshot struct {
	CompactionsStarted    int64
	CompactionsDone       int64
	CompactionsRunning    int64 // point-in-time gauge, not a delta
	MaxRunning            int64 // high-water mark, not a delta
	SchedDeferred         int64
	SubcompactionsStarted int64
	BytesRead             int64
	BytesWritten          int64
	StallNanos            int64
}

// Snapshot returns the current counter values.
func (c *JobCounters) Snapshot() JobsSnapshot {
	return JobsSnapshot{
		CompactionsStarted:    c.CompactionsStarted.Load(),
		CompactionsDone:       c.CompactionsDone.Load(),
		CompactionsRunning:    c.CompactionsRunning.Load(),
		MaxRunning:            c.MaxRunning.Load(),
		SchedDeferred:         c.SchedDeferred.Load(),
		SubcompactionsStarted: c.SubcompactionsStarted.Load(),
		BytesRead:             c.BytesRead.Load(),
		BytesWritten:          c.BytesWritten.Load(),
		StallNanos:            c.StallNanos.Load(),
	}
}

// Reset zeroes every counter (benchmarks reset between runs).
func (c *JobCounters) Reset() {
	c.CompactionsStarted.Store(0)
	c.CompactionsDone.Store(0)
	c.CompactionsRunning.Store(0)
	c.MaxRunning.Store(0)
	c.SchedDeferred.Store(0)
	c.SubcompactionsStarted.Store(0)
	c.BytesRead.Store(0)
	c.BytesWritten.Store(0)
	c.StallNanos.Store(0)
}

// Any reports whether any job activity was recorded.
func (s JobsSnapshot) Any() bool {
	return s.CompactionsStarted+s.SubcompactionsStarted+s.SchedDeferred+s.StallNanos != 0
}

// Sub returns the delta s minus prev for the cumulative counters. The
// CompactionsRunning gauge and MaxRunning high-water mark are kept from s
// (the later snapshot) since subtracting gauges is meaningless.
func (s JobsSnapshot) Sub(prev JobsSnapshot) JobsSnapshot {
	return JobsSnapshot{
		CompactionsStarted:    s.CompactionsStarted - prev.CompactionsStarted,
		CompactionsDone:       s.CompactionsDone - prev.CompactionsDone,
		CompactionsRunning:    s.CompactionsRunning,
		MaxRunning:            s.MaxRunning,
		SchedDeferred:         s.SchedDeferred - prev.SchedDeferred,
		SubcompactionsStarted: s.SubcompactionsStarted - prev.SubcompactionsStarted,
		BytesRead:             s.BytesRead - prev.BytesRead,
		BytesWritten:          s.BytesWritten - prev.BytesWritten,
		StallNanos:            s.StallNanos - prev.StallNanos,
	}
}

// String renders the counters.
func (s JobsSnapshot) String() string {
	return fmt.Sprintf(
		"jobs=%d done=%d running=%d max_running=%d deferred=%d subcompactions=%d read=%dB written=%dB stall=%v",
		s.CompactionsStarted, s.CompactionsDone, s.CompactionsRunning, s.MaxRunning,
		s.SchedDeferred, s.SubcompactionsStarted, s.BytesRead, s.BytesWritten,
		time.Duration(s.StallNanos).Round(time.Millisecond))
}
