package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"shield/internal/kds"
	"shield/internal/lsm"
	"shield/internal/metrics"
	"shield/internal/seccache"
	"shield/internal/vfs"
)

func fastKDSClientConfig() kds.ClientConfig {
	return kds.ClientConfig{
		DialTimeout:    200 * time.Millisecond,
		RequestTimeout: 300 * time.Millisecond,
		MaxAttempts:    4,
		BackoffBase:    time.Millisecond,
		BackoffMax:     10 * time.Millisecond,
	}
}

func openTestCache(t *testing.T, fs vfs.FS) *seccache.Cache {
	t.Helper()
	cache, err := seccache.Open(fs, "seccache", []byte("passkey"))
	if err != nil {
		t.Fatal(err)
	}
	return cache
}

// TestKDSDownReadsFromSecureCacheWritesDegraded covers the availability
// story for a KDS outage: an instance restarted with a warm secure cache
// serves reads with zero KDS round trips, while anything needing a fresh
// DEK fails fast with ErrDegraded instead of hanging.
func TestKDSDownReadsFromSecureCacheWritesDegraded(t *testing.T) {
	store := kds.NewStore(kds.DefaultPolicy())
	store.Authorize("server-1")
	srv, err := kds.NewServer(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	dataFS := vfs.NewMem()
	cacheFS := vfs.NewMem()

	client := kds.NewClientConfig("server-1", fastKDSClientConfig(), addr)
	cfg := Config{
		Mode: ModeSHIELD, FS: dataFS, KDS: client,
		Cache: openTestCache(t, cacheFS), WALBufferSize: 512,
	}
	db, err := Open("db", cfg, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%05d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	client.Close()
	srv.Close() // the KDS goes dark
	_, fetchedBefore, _ := store.Stats()

	// Reopen read-only against the dead KDS with the warm cache.
	client2 := kds.NewClientConfig("server-1", fastKDSClientConfig(), addr)
	defer client2.Close()
	cfg2 := Config{
		Mode: ModeSHIELD, FS: dataFS, KDS: client2,
		Cache: openTestCache(t, cacheFS), WALBufferSize: 512,
	}
	wrapper, err := cfg2.BuildWrapper()
	if err != nil {
		t.Fatal(err)
	}
	opts := smallOpts()
	opts.ReadOnly = true
	opts.FS = dataFS
	opts.Wrapper = wrapper
	replica, err := lsm.Open("db", opts)
	if err != nil {
		t.Fatalf("read-only open with KDS down and warm cache: %v", err)
	}
	defer replica.Close()
	if v, err := replica.Get([]byte("k00042")); err != nil || string(v) != "v42" {
		t.Fatalf("degraded read: %q %v", v, err)
	}

	// The degraded read path must be KDS-free: served by the cache.
	st, ok := Stats(wrapper)
	if !ok {
		t.Fatal("not a SHIELD wrapper")
	}
	if st.KDSFetches != 0 {
		t.Fatalf("KDSFetches = %d with KDS down, want 0", st.KDSFetches)
	}
	if st.CacheHits == 0 {
		t.Fatal("CacheHits = 0; cache did not serve the DEKs")
	}
	if _, fetchedAfter, _ := store.Stats(); fetchedAfter != fetchedBefore {
		t.Fatalf("store fetches moved %d -> %d with server closed", fetchedBefore, fetchedAfter)
	}

	// A fresh read-write instance needs new DEKs, which need the KDS: it
	// must fail fast with the typed degradation error, not hang.
	before := metrics.Net.Snapshot()
	start := time.Now()
	_, err = Open("db2", cfg2, smallOpts())
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("RW open with KDS down err = %v, want ErrDegraded", err)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("degraded open took %v, not failing fast", d)
	}
	if delta := metrics.Net.Snapshot().Sub(before); delta.DegradedWrites == 0 {
		t.Fatalf("DegradedWrites not counted: %s", delta)
	}
}

// TestLiveDBKDSDownWritesDegradeReadsServe kills the KDS under a running
// database: reads keep working from in-memory DEKs, and writes surface
// ErrDegraded once a WAL/SST rotation needs a fresh DEK — no hang.
func TestLiveDBKDSDownWritesDegradeReadsServe(t *testing.T) {
	store := kds.NewStore(kds.DefaultPolicy())
	store.Authorize("server-1")
	srv, err := kds.NewServer(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	client := kds.NewClientConfig("server-1", fastKDSClientConfig(), srv.Addr())
	defer client.Close()
	cfg := Config{Mode: ModeSHIELD, FS: vfs.NewMem(), KDS: client, WALBufferSize: 512}
	db, err := Open("db", cfg, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	for i := 0; i < 500; i++ {
		if err := db.Put([]byte(fmt.Sprintf("pre%05d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	srv.Close()

	// Keep writing; once the memtable rotates the new WAL needs a DEK and
	// the write path must degrade in bounded time with a typed error.
	deadline := time.Now().Add(60 * time.Second)
	var werr error
	for i := 0; time.Now().Before(deadline); i++ {
		werr = db.Put([]byte(fmt.Sprintf("post%07d", i)), []byte("vvvvvvvvvvvvvvvvvvvvvvvvvvvvvvvv"))
		if werr != nil {
			break
		}
	}
	if werr == nil {
		t.Fatal("writes never degraded with KDS down")
	}
	if !errors.Is(werr, ErrDegraded) {
		t.Fatalf("write err = %v, want ErrDegraded", werr)
	}

	// Reads still serve from in-memory DEKs.
	if v, err := db.Get([]byte("pre00003")); err != nil || string(v) != "v" {
		t.Fatalf("read after degradation: %q %v", v, err)
	}
}

// TestKDSReplicaKillMidDBWorkload is the acceptance scenario: a database
// whose KDS client knows two replicas completes every write while one
// replica is killed mid-workload, with no hang and no double-issued DEK.
func TestKDSReplicaKillMidDBWorkload(t *testing.T) {
	store := kds.NewStore(kds.DefaultPolicy())
	store.Authorize("server-1")
	r1, err := kds.NewServer(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := kds.NewServer(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()

	fs := vfs.NewMem()
	client := kds.NewClientConfig("server-1", fastKDSClientConfig(), r1.Addr(), r2.Addr())
	defer client.Close()
	cfg := Config{Mode: ModeSHIELD, FS: fs, KDS: client, WALBufferSize: 512}
	wrapper, err := cfg.BuildWrapper()
	if err != nil {
		t.Fatal(err)
	}
	opts := smallOpts()
	opts.FS = fs
	opts.Wrapper = wrapper
	db, err := lsm.Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}

	const puts = 6000
	for i := 0; i < puts; i++ {
		if i == puts/3 {
			r1.Close() // kill a replica mid-workload
		}
		if err := db.Put([]byte(fmt.Sprintf("k%06d", i)), []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatalf("Put %d after replica kill: %v", i, err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatalf("Flush after replica kill: %v", err)
	}
	if v, err := db.Get([]byte("k000000")); err != nil || string(v) != "value-0" {
		t.Fatalf("read back: %q %v", v, err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	st, ok := Stats(wrapper)
	if !ok {
		t.Fatal("not a SHIELD wrapper")
	}
	issued, _, _ := store.Stats()
	if issued != st.DEKsCreated {
		t.Fatalf("store issued %d DEKs but wrapper created %d — a retry double-issued",
			issued, st.DEKsCreated)
	}
	if st.DEKsCreated < 3 {
		t.Fatalf("workload too small to rotate files: %+v", st)
	}
}
