package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"shield/internal/lsm"
	"shield/internal/seccache"
	"shield/internal/vfs"
)

// countFormats classifies every SST in dir by its header version.
func countFormats(t *testing.T, fs vfs.FS, dir string) (v1, v2 int) {
	t.Helper()
	entries, err := fs.List(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name, ".sst") {
			continue
		}
		data, err := vfs.ReadFile(fs, dir+"/"+e.Name)
		if err != nil {
			t.Fatal(err)
		}
		if _, sealed := SealedHeaderLen(data); sealed {
			v2++
		} else {
			v1++
		}
	}
	return v1, v2
}

// TestV1V2Coexistence: a store written in format v1 (LegacyCTR) must stay
// fully readable when reopened by a default (v2-writing) instance, the two
// formats must coexist in one tree, compaction must migrate everything to
// v2, and a legacy-configured instance must still read the v2 result —
// format is negotiated per file from its header, never from config.
func TestV1V2Coexistence(t *testing.T) {
	fs := vfs.NewMem()
	svc := newCrashKDS()
	legacy := Config{Mode: ModeSHIELD, FS: fs, KDS: svc, LegacyCTR: true}
	modern := Config{Mode: ModeSHIELD, FS: fs, KDS: svc}
	opts := lsm.Options{MemtableSize: 16 << 10, L0CompactionTrigger: 100}

	value := func(gen string, i int) []byte {
		return []byte(fmt.Sprintf("%s-value-%04d", gen, i))
	}

	db, err := Open("db", legacy, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := db.Put([]byte(fmt.Sprintf("old-%04d", i)), value("old", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if v1, v2 := countFormats(t, fs, "db"); v1 == 0 || v2 != 0 {
		t.Fatalf("legacy store has %d v1 / %d v2 SSTs, want all v1", v1, v2)
	}

	// A default instance opens the legacy store and writes a second
	// generation, producing a mixed-format tree.
	db2, err := Open("db", modern, opts)
	if err != nil {
		t.Fatalf("v2 open of v1 store: %v", err)
	}
	for i := 0; i < 300; i++ {
		if err := db2.Put([]byte(fmt.Sprintf("new-%04d", i)), value("new", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db2.Flush(); err != nil {
		t.Fatal(err)
	}
	v1, v2 := countFormats(t, fs, "db")
	if v1 == 0 || v2 == 0 {
		t.Fatalf("mixed store has %d v1 / %d v2 SSTs, want both present", v1, v2)
	}
	for i := 0; i < 300; i += 37 {
		for _, gen := range []string{"old", "new"} {
			got, err := db2.Get([]byte(fmt.Sprintf("%s-%04d", gen, i)))
			if err != nil {
				t.Fatalf("mixed read %s-%04d: %v", gen, i, err)
			}
			if string(got) != string(value(gen, i)) {
				t.Fatalf("mixed read %s-%04d = %q", gen, i, got)
			}
		}
	}
	// The mixed tree scrubs clean: v1 files verify by their block checksums,
	// v2 files by their GCM tag chain.
	rep, err := Scrub("db", modern, lsm.ScrubOptions{DryRun: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("mixed-format store not clean:\n%s", rep)
	}

	// Compaction rewrites every table under the writing config: all v2.
	if err := db2.CompactRange(); err != nil {
		t.Fatal(err)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	if v1, v2 := countFormats(t, fs, "db"); v1 != 0 || v2 == 0 {
		t.Fatalf("compacted store has %d v1 / %d v2 SSTs, want all v2", v1, v2)
	}

	// A legacy-configured instance reads the v2 files fine: LegacyCTR only
	// selects the format for new writes.
	db3, err := Open("db", legacy, opts)
	if err != nil {
		t.Fatalf("legacy reopen of v2 store: %v", err)
	}
	defer db3.Close()
	for i := 0; i < 300; i += 37 {
		for _, gen := range []string{"old", "new"} {
			got, err := db3.Get([]byte(fmt.Sprintf("%s-%04d", gen, i)))
			if err != nil {
				t.Fatalf("legacy read %s-%04d: %v", gen, i, err)
			}
			if string(got) != string(value(gen, i)) {
				t.Fatalf("legacy read %s-%04d = %q", gen, i, got)
			}
		}
	}
}

// TestEpochBumpCrashEnumeration targets the freshness-epoch write path:
// every reopen advances the epoch, rolls a new manifest, repoints CURRENT,
// and only then seals the floor into the secure cache. A crash at any sync
// boundary inside that sequence must leave a store that reopens cleanly —
// in particular it must never manufacture a spurious ErrEpochRegression
// (the floor is sealed strictly after the manifest carrying the epoch is
// durable, so floor <= recovered epoch holds at every crash point).
func TestEpochBumpCrashEnumeration(t *testing.T) {
	cfs := vfs.NewCrash(23)
	svc := newCrashKDS()
	if err := cfs.MkdirAll("keys"); err != nil {
		t.Fatal(err)
	}
	cache, err := seccache.Open(cfs, "keys/cache.bin", []byte("pk"))
	if err != nil {
		t.Fatal(err)
	}
	opts := lsm.Options{MemtableSize: 16 << 10, L0CompactionTrigger: 100}

	// Seed the store and ratchet the epoch a few generations up, so a crash
	// image restored mid-bump carries a meaningful sealed floor.
	db, err := Open("db", shieldCrashConfig(cfs, svc, cache), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Enumerate every sync boundary across two epoch-bumping reopens.
	type point struct {
		event string
		img   *vfs.CrashImage
	}
	var (
		mu     sync.Mutex
		points []point
	)
	cfs.AfterSync(func(event string, img *vfs.CrashImage) {
		mu.Lock()
		points = append(points, point{event, img})
		mu.Unlock()
	})
	for r := 0; r < 2; r++ {
		db, err := Open("db", shieldCrashConfig(cfs, svc, cache), opts)
		if err != nil {
			t.Fatalf("reopen %d: %v", r, err)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
	cfs.AfterSync(nil)
	mu.Lock()
	pts := points
	mu.Unlock()
	if len(pts) < 4 {
		t.Fatalf("only %d crash points across the epoch bumps, want >= 4", len(pts))
	}
	t.Logf("enumerated %d crash points across 2 epoch-bumping reopens", len(pts))

	for i, pt := range pts {
		for _, mode := range []string{"strict", "torn"} {
			var fs *vfs.MemFS
			if mode == "strict" {
				fs = pt.img.Strict()
			} else {
				fs = pt.img.Torn(int64(i))
			}
			c2, err := seccache.Open(fs, "keys/cache.bin", []byte("pk"))
			if err != nil {
				t.Fatalf("%s point %d (%s): cache reopen: %v", mode, i, pt.event, err)
			}
			db2, err := Open("db", shieldCrashConfig(fs, svc, c2), opts)
			if errors.Is(err, lsm.ErrEpochRegression) {
				t.Fatalf("%s point %d (%s): spurious epoch regression with no rollback: %v", mode, i, pt.event, err)
			}
			if err != nil {
				t.Fatalf("%s point %d (%s): reopen: %v", mode, i, pt.event, err)
			}
			got, err := db2.Get([]byte("k007"))
			if err != nil || string(got) != "v007" {
				t.Fatalf("%s point %d (%s): Get(k007) = %q, %v", mode, i, pt.event, got, err)
			}
			db2.Close()
		}
	}
}

// TestRollbackFailClosedAndScrubRestamp is the freshness attack end to end:
// an adversary restores an older snapshot of the data directory while the
// secure cache (off the attacked storage) still holds the newer sealed
// floor. Open and Scrub must both fail closed with ErrEpochRegression; a
// Scrub under the explicit AllowRollback override must report the
// regression, re-stamp the restored tree past the floor, and leave a store
// that subsequent opens accept without any override.
func TestRollbackFailClosedAndScrubRestamp(t *testing.T) {
	cfs := vfs.NewCrash(5)
	svc := newCrashKDS()
	cacheFS := vfs.NewMem() // the adversary cannot roll this back
	cache, err := seccache.Open(cacheFS, "cache.bin", []byte("pk"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := shieldCrashConfig(cfs, svc, cache)
	opts := lsm.Options{MemtableSize: 16 << 10, L0CompactionTrigger: 100}

	db, err := Open("db", cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("stable"), []byte("generation-1")); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	stale := cfs.Snapshot() // the adversary's captured image

	// Newer history: overwrite the key and add one, ratcheting the floor.
	db, err = Open("db", cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("stable"), []byte("generation-2")); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("recent"), []byte("only-in-gen-2")); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// The attack: the data directory reverts to the stale image; the sealed
	// floor in the secure cache does not.
	rolled := stale.Strict()
	rolledCfg := cfg
	rolledCfg.FS = rolled

	if _, err := Open("db", rolledCfg, opts); !errors.Is(err, lsm.ErrEpochRegression) {
		t.Fatalf("open of rolled-back store: got %v, want ErrEpochRegression", err)
	}
	if _, err := Scrub("db", rolledCfg, lsm.ScrubOptions{}); !errors.Is(err, lsm.ErrEpochRegression) {
		t.Fatalf("scrub of rolled-back store: got %v, want ErrEpochRegression", err)
	}

	// Operator override: scrub with AllowRollback accepts the loss, reports
	// it, and re-stamps the tree as a fresh generation past the floor.
	rep, err := Scrub("db", rolledCfg, lsm.ScrubOptions{AllowRollback: true})
	if err != nil {
		t.Fatalf("scrub with AllowRollback: %v", err)
	}
	if !rep.EpochRegressed {
		t.Fatalf("scrub accepted the rollback but did not report it:\n%s", rep)
	}
	var stale2 int
	for _, v := range rep.Verdicts {
		if v == lsm.VerdictStaleEpoch {
			stale2++
		}
	}
	if stale2 == 0 {
		t.Fatalf("no stale-epoch verdicts in rollback scrub:\n%s", rep)
	}

	// The re-stamped store opens with no override and serves the (old, but
	// now declared-current) generation-1 state.
	db2, err := Open("db", rolledCfg, opts)
	if err != nil {
		t.Fatalf("open after re-stamp: %v", err)
	}
	defer db2.Close()
	got, err := db2.Get([]byte("stable"))
	if err != nil || string(got) != "generation-1" {
		t.Fatalf("Get(stable) after accepted rollback = %q, %v; want generation-1", got, err)
	}
	if _, err := db2.Get([]byte("recent")); !errors.Is(err, lsm.ErrNotFound) {
		t.Fatalf("Get(recent) after accepted rollback: %v, want ErrNotFound (that history was rolled away)", err)
	}
}
