package core

import (
	"errors"
	"fmt"
	"testing"

	"shield/internal/lsm"
	"shield/internal/vfs"
)

// TestCiphertextTamperDetected: an attacker who flips bits in an encrypted
// SST (CTR malleability) is caught by the plaintext CRC inside the body —
// reads fail loudly rather than returning attacker-controlled data.
func TestCiphertextTamperDetected(t *testing.T) {
	fs := vfs.NewMem()
	_, svc := newTestKDS(t)
	cfg := Config{Mode: ModeSHIELD, FS: fs, KDS: svc}
	db, err := Open("db", cfg, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%05d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	// Tamper with every SST: flip one ciphertext byte in the body, well
	// past the plaintext header.
	entries, err := fs.List("db")
	if err != nil {
		t.Fatal(err)
	}
	tampered := 0
	for _, e := range entries {
		if len(e.Name) < 4 || e.Name[len(e.Name)-4:] != ".sst" {
			continue
		}
		data, err := vfs.ReadFile(fs, "db/"+e.Name)
		if err != nil {
			t.Fatal(err)
		}
		data[128] ^= 0x80
		if err := vfs.WriteFile(fs, "db/"+e.Name, data); err != nil {
			t.Fatal(err)
		}
		tampered++
	}
	if tampered == 0 {
		t.Fatal("no SSTs to tamper with")
	}

	// Evict cached blocks/readers by reopening the DB.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open("db", cfg, smallOpts())
	if err != nil {
		// Acceptable: the corruption may already be detected at open.
		return
	}
	defer db2.Close()
	sawError := false
	for i := 0; i < 3000; i += 50 {
		v, err := db2.Get([]byte(fmt.Sprintf("k%05d", i)))
		if err != nil && !errors.Is(err, lsm.ErrNotFound) {
			sawError = true
			continue
		}
		if err == nil && string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("tampered read returned wrong data silently: %q", v)
		}
	}
	if !sawError {
		t.Fatal("no read surfaced the tampering")
	}
}
