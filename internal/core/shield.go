package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"shield/internal/crypt"
	"shield/internal/kds"
	"shield/internal/lsm"
	"shield/internal/metrics"
	"shield/internal/seccache"
	"shield/internal/vfs"
)

// ErrDegraded marks an operation refused because the KDS is unreachable and
// the needed DEK is not available locally. Writes need a fresh DEK, so they
// fail fast with this error rather than hanging; reads degrade only when the
// DEK is in neither the in-memory map nor the secure cache. Callers match it
// with errors.Is and typically surface "read-only / retry later" upstream.
var ErrDegraded = errors.New("core: degraded: KDS unavailable")

// kdsUnavailable distinguishes "the service cannot be reached" (every
// replica down or unresponsive — a transient infrastructure fault worth
// degrading over) from policy denials like ErrUnauthorized or
// ErrAlreadyIssued, which are authoritative answers and must surface as-is.
func kdsUnavailable(err error) bool {
	return errors.Is(err, kds.ErrNoReplica) || errors.Is(err, kds.ErrUnconfirmed)
}

// SHIELD file header (plaintext, precedes the encrypted body):
//
//	magic(4) version(4) dekIDLen(2) dekID iv(16)
//
// The DEK-ID is deliberately in the clear — it is the metadata-enabled
// sharing hook of Section 5.4. Possession of a DEK-ID is useless without
// KDS authorization, and one-time provisioning blocks replay of leaked IDs.
//
// version selects the body format: 1 is AES-128-CTR under the 16-byte IV
// (confidentiality only), 2 is per-block AES-GCM (crypt/seal.go) with the
// first 8 IV bytes as the nonce prefix and the full header as AAD — so a
// header cannot be transplanted onto another body. New SSTs are written as
// v2; WAL and MANIFEST streams stay v1 (sealing finalizes on first Sync,
// which append-many files cannot satisfy); readers accept both, which is
// what lets a v1 store migrate file-by-file through compaction.
const (
	shieldMagic    = 0x53484c44 // "SHLD"
	shieldVersion  = 1
	shieldVersion2 = 2
)

// errBadHeader wraps lsm.ErrCorruption: a malformed SHIELD header is
// structural file damage (unlike an unresolvable DEK, which may just mean
// the KDS is unreachable and must never classify as corruption).
var errBadHeader = fmt.Errorf("core: bad SHIELD file header: %w", lsm.ErrCorruption)

func encodeHeader(dekID kds.KeyID, iv [crypt.IVSize]byte, version uint32) []byte {
	out := make([]byte, 0, 10+len(dekID)+crypt.IVSize)
	var tmp [10]byte
	binary.LittleEndian.PutUint32(tmp[0:4], shieldMagic)
	binary.LittleEndian.PutUint32(tmp[4:8], version)
	binary.LittleEndian.PutUint16(tmp[8:10], uint16(len(dekID)))
	out = append(out, tmp[:]...)
	out = append(out, dekID...)
	out = append(out, iv[:]...)
	return out
}

// parseHeader decodes a header from buf; returns the DEK-ID, IV, format
// version, and total header length.
func parseHeader(buf []byte) (kds.KeyID, [crypt.IVSize]byte, uint32, int, error) {
	var iv [crypt.IVSize]byte
	if len(buf) < 10 {
		return "", iv, 0, 0, errBadHeader
	}
	if binary.LittleEndian.Uint32(buf[0:4]) != shieldMagic {
		return "", iv, 0, 0, fmt.Errorf("%w: bad magic", errBadHeader)
	}
	v := binary.LittleEndian.Uint32(buf[4:8])
	if v != shieldVersion && v != shieldVersion2 {
		return "", iv, 0, 0, fmt.Errorf("%w: unsupported version %d", errBadHeader, v)
	}
	idLen := int(binary.LittleEndian.Uint16(buf[8:10]))
	if len(buf) < 10+idLen+crypt.IVSize {
		return "", iv, 0, 0, fmt.Errorf("%w: truncated", errBadHeader)
	}
	id := kds.KeyID(buf[10 : 10+idLen])
	copy(iv[:], buf[10+idLen:10+idLen+crypt.IVSize])
	return id, iv, v, 10 + idLen + crypt.IVSize, nil
}

// DEKIDFromHeader extracts the plaintext DEK-ID from the head of a SHIELD
// file's raw bytes — the read any server performs before asking the KDS for
// the key (metadata-enabled DEK sharing).
func DEKIDFromHeader(data []byte) (string, bool) {
	id, _, _, _, err := parseHeader(data)
	if err != nil {
		return "", false
	}
	return string(id), true
}

// SealedHeaderLen returns the header length and whether data begins a
// format-v2 (sealed) SHIELD file — the layout information a storage node
// needs to locate block tags without holding any key.
func SealedHeaderLen(data []byte) (int, bool) {
	_, _, version, hdrLen, err := parseHeader(data)
	if err != nil || version != shieldVersion2 {
		return 0, false
	}
	return hdrLen, true
}

// shieldWrapper implements lsm.FileWrapper with per-file DEKs.
type shieldWrapper struct {
	cfg Config

	// deks mirrors the DEKs of live files in memory (the paper keeps the
	// DEK "in memory as part of the LSM-KVS metadata while the instance is
	// running"); the secure cache persists them across restarts. names
	// remembers which DEK this wrapper minted for which file so deletion
	// notifications without an explicit DEK-ID (WALs, MANIFESTs) still
	// prune the right key.
	mu    sync.Mutex
	deks  map[kds.KeyID]crypt.DEK
	names map[string]kds.KeyID

	// Stats.
	created    int64
	kdsFetches int64
	cacheHits  int64
	memoryHits int64
}

func newShieldWrapper(cfg Config) *shieldWrapper {
	return &shieldWrapper{
		cfg:   cfg,
		deks:  make(map[kds.KeyID]crypt.DEK),
		names: make(map[string]kds.KeyID),
	}
}

// WrapperStats reports DEK-resolution counters for a SHIELD wrapper.
type WrapperStats struct {
	DEKsCreated int64
	KDSFetches  int64
	CacheHits   int64
	MemoryHits  int64
}

// Stats extracts counters from a wrapper produced by BuildWrapper; ok is
// false for non-SHIELD wrappers.
func Stats(w lsm.FileWrapper) (WrapperStats, bool) {
	sw, ok := w.(*shieldWrapper)
	if !ok {
		return WrapperStats{}, false
	}
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return WrapperStats{
		DEKsCreated: sw.created,
		KDSFetches:  sw.kdsFetches,
		CacheHits:   sw.cacheHits,
		MemoryHits:  sw.memoryHits,
	}, true
}

// WrapCreate implements lsm.FileWrapper. Every new WAL/SST/MANIFEST gets a
// fresh DEK; CURRENT (no user data, must be readable at bootstrap) passes
// through.
func (s *shieldWrapper) WrapCreate(name string, kind lsm.FileKind, f vfs.WritableFile) (vfs.WritableFile, string, error) {
	if kind == lsm.FileKindCurrent || kind == lsm.FileKindOther {
		return f, "", nil
	}
	if kind == lsm.FileKindWAL && s.cfg.PlaintextWAL {
		return f, "", nil
	}
	id, dek, err := s.cfg.KDS.CreateDEK()
	if err != nil {
		if kdsUnavailable(err) {
			metrics.Net.DegradedWrites.Add(1)
			return nil, "", fmt.Errorf("%w: requesting DEK for %s: %v", ErrDegraded, name, err)
		}
		return nil, "", fmt.Errorf("core: requesting DEK for %s: %w", name, err)
	}
	s.mu.Lock()
	s.deks[id] = dek
	s.names[name] = id
	s.created++
	s.mu.Unlock()
	if s.cfg.Cache != nil {
		// Best effort: we hold the DEK in memory, so a cache-persistence
		// failure (storage may itself be degraded) must not fail the write
		// path; the cache tracks SaveErrors for visibility.
		s.cfg.Cache.Put(id, dek) //nolint:errcheck
	}
	iv, err := crypt.NewIV()
	if err != nil {
		return nil, "", err
	}
	// SSTs are write-once and get the authenticated v2 format; WAL and
	// MANIFEST are append-many streams and stay on v1 CTR (their records
	// carry CRCs inside the ciphertext; see DESIGN.md §13).
	version := uint32(shieldVersion)
	if kind == lsm.FileKindSST && !s.cfg.LegacyCTR {
		version = shieldVersion2
	}
	hdr := encodeHeader(id, iv, version)
	if err := vfs.WriteFull(f, hdr); err != nil {
		return nil, "", fmt.Errorf("core: writing header for %s: %w", name, err)
	}

	if version == shieldVersion2 {
		sealer, err := crypt.NewSealer(dek, iv[:crypt.SealedNoncePrefixLen], hdr)
		if err != nil {
			return nil, "", err
		}
		return crypt.NewChunkedSealedWriter(f, sealer, s.cfg.CompactionChunkSize, s.cfg.EncryptionThreads), string(id), nil
	}
	switch kind {
	case lsm.FileKindWAL:
		return crypt.NewBufferedWriter(f, dek, iv, s.cfg.WALBufferSize), string(id), nil
	case lsm.FileKindSST:
		return crypt.NewChunkedWriter(f, dek, iv, s.cfg.CompactionChunkSize, s.cfg.EncryptionThreads), string(id), nil
	default: // MANIFEST: small, infrequent appends
		return crypt.NewBufferedWriter(f, dek, iv, 0), string(id), nil
	}
}

// resolveDEK finds a DEK by ID: in-memory map, then secure cache, then KDS.
func (s *shieldWrapper) resolveDEK(id kds.KeyID) (crypt.DEK, error) {
	s.mu.Lock()
	dek, ok := s.deks[id]
	if ok {
		s.memoryHits++
		s.mu.Unlock()
		return dek, nil
	}
	s.mu.Unlock()

	if s.cfg.Cache != nil {
		if dek, err := s.cfg.Cache.Get(id); err == nil {
			s.mu.Lock()
			s.deks[id] = dek
			s.cacheHits++
			s.mu.Unlock()
			return dek, nil
		} else if !errors.Is(err, seccache.ErrNotCached) {
			return crypt.DEK{}, err
		}
	}

	dek, err := s.cfg.KDS.FetchDEK(id)
	if err != nil {
		if kdsUnavailable(err) {
			metrics.Net.DegradedReads.Add(1)
			return crypt.DEK{}, fmt.Errorf("%w: resolving DEK %s: %v", ErrDegraded, id, err)
		}
		if errors.Is(err, kds.ErrUnknownKey) {
			// Authoritative disavowal, not unavailability: the KDS durably
			// records every DEK it ever issued, so an ID it has never seen —
			// read from a plaintext header the threat model lets the storage
			// side rewrite — means the header was tampered with. Classify as
			// an integrity violation so recovery quarantines the file (bytes
			// preserved) instead of treating it as an unresolvable key.
			return crypt.DEK{}, fmt.Errorf("%w: DEK-ID %s disavowed by KDS (header tampered?): %v", vfs.ErrIntegrity, id, err)
		}
		return crypt.DEK{}, fmt.Errorf("core: resolving DEK %s: %w", id, err)
	}
	s.mu.Lock()
	s.deks[id] = dek
	s.kdsFetches++
	s.mu.Unlock()
	if s.cfg.Cache != nil {
		s.cfg.Cache.Put(id, dek) //nolint:errcheck // best effort, DEK is in memory
	}
	return dek, nil
}

// WrapOpen implements lsm.FileWrapper for positional reads.
func (s *shieldWrapper) WrapOpen(name string, kind lsm.FileKind, f vfs.RandomAccessFile) (vfs.RandomAccessFile, error) {
	if kind == lsm.FileKindCurrent || kind == lsm.FileKindOther {
		return f, nil
	}
	if kind == lsm.FileKindWAL && s.cfg.PlaintextWAL {
		return f, nil
	}
	var hdr [4096]byte
	n, err := f.ReadAt(hdr[:], 0)
	if err != nil && err != io.EOF {
		return nil, err
	}
	id, iv, version, hdrLen, err := parseHeader(hdr[:n])
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", name, err)
	}
	dek, err := s.resolveDEK(id)
	if err != nil {
		return nil, err
	}
	if version == shieldVersion2 {
		sealer, err := crypt.NewSealer(dek, iv[:crypt.SealedNoncePrefixLen], hdr[:hdrLen])
		if err != nil {
			return nil, err
		}
		r, err := crypt.NewSealedReaderAt(f, sealer, int64(hdrLen))
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", name, err)
		}
		return r, nil
	}
	//shield:noauthread format v1 compatibility: CTR files predate authentication; their absence of a manifest digest is what marks them unauthenticated
	return crypt.NewDecryptingReaderAt(f, dek, iv, int64(hdrLen))
}

// WrapOpenSequential implements lsm.FileWrapper for streaming reads
// (WAL/MANIFEST recovery).
func (s *shieldWrapper) WrapOpenSequential(name string, kind lsm.FileKind, f vfs.SequentialFile) (vfs.SequentialFile, error) {
	if kind == lsm.FileKindCurrent || kind == lsm.FileKindOther {
		return f, nil
	}
	if kind == lsm.FileKindWAL && s.cfg.PlaintextWAL {
		return f, nil
	}
	// Read the fixed prefix, then the variable tail of the header.
	var fixed [10]byte
	if _, err := io.ReadFull(f, fixed[:]); err != nil {
		return nil, fmt.Errorf("core: %s: reading header: %w", name, err)
	}
	idLen := int(binary.LittleEndian.Uint16(fixed[8:10]))
	rest := make([]byte, idLen+crypt.IVSize)
	if _, err := io.ReadFull(f, rest); err != nil {
		return nil, fmt.Errorf("core: %s: reading header: %w", name, err)
	}
	id, iv, version, _, err := parseHeader(append(fixed[:], rest...))
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", name, err)
	}
	if version == shieldVersion2 {
		// Only WAL/MANIFEST recovery streams files, and both stay on v1;
		// sealed bodies need positional reads for block verification.
		return nil, fmt.Errorf("core: %s: sealed (v2) files require positional reads", name)
	}
	dek, err := s.resolveDEK(id)
	if err != nil {
		return nil, err
	}
	stream, err := crypt.NewStream(dek, iv)
	if err != nil {
		return nil, err
	}
	return &decryptingSequential{f: f, stream: stream}, nil
}

// FileDeleted implements lsm.FileWrapper: DEKs die with their files, which
// is what makes compaction-driven rotation effective (Section 5.2).
func (s *shieldWrapper) FileDeleted(name string, dekID string) {
	id := kds.KeyID(dekID)
	s.mu.Lock()
	if id == "" {
		id = s.names[name] // WAL/MANIFEST deletions carry no explicit ID
	}
	delete(s.names, name)
	if id == "" {
		s.mu.Unlock()
		return
	}
	delete(s.deks, id)
	s.mu.Unlock()
	if s.cfg.Cache != nil {
		s.cfg.Cache.Delete(id) //nolint:errcheck // best-effort prune
	}
	if s.cfg.RevokeOnDelete {
		s.cfg.KDS.RevokeDEK(id) //nolint:errcheck // best-effort revoke
	}
}

// decryptingSequential decrypts a streaming read of an encrypted body.
type decryptingSequential struct {
	f      vfs.SequentialFile
	stream *crypt.Stream
	off    int64
}

func (d *decryptingSequential) Read(p []byte) (int, error) {
	n, err := d.f.Read(p)
	if n > 0 {
		d.stream.XORKeyStreamAt(p[:n], p[:n], d.off)
		d.off += int64(n)
	}
	return n, err
}

func (d *decryptingSequential) Close() error { return d.f.Close() }
