package core

import (
	"errors"
	"fmt"
	"testing"

	"shield/internal/kds"
	"shield/internal/lsm"
	"shield/internal/vfs"
)

// TestReadOnlyReplicaSHIELD: a read-only instance on another "server" opens
// the shared encrypted directory, resolves every DEK through the embedded
// DEK-IDs and its own KDS identity, and serves reads — the paper's
// read-only-instance optimization combined with metadata-enabled sharing.
func TestReadOnlyReplicaSHIELD(t *testing.T) {
	sharedFS := vfs.NewMem()
	store := kds.NewStore(kds.Policy{MaxFetches: 1})
	store.Authorize("primary")
	store.Authorize("replica")

	primaryCfg := Config{
		Mode:          ModeSHIELD,
		FS:            sharedFS,
		KDS:           kds.NewLocal(store, "primary"),
		WALBufferSize: 512,
	}
	db, err := Open("db", primaryCfg, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%05d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// Tail writes that only live in the (encrypted, synced) WAL.
	b := lsm.NewBatch()
	b.Put([]byte("tail"), []byte("wal-only"))
	if err := db.Write(b, true); err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	replicaCfg := Config{
		Mode: ModeSHIELD,
		FS:   sharedFS,
		KDS:  kds.NewLocal(store, "replica"),
	}
	opts := smallOpts()
	opts.ReadOnly = true
	replica, err := Open("db", replicaCfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()

	if v, err := replica.Get([]byte("k00123")); err != nil || string(v) != "v123" {
		t.Fatalf("replica read: %q %v", v, err)
	}
	if v, err := replica.Get([]byte("tail")); err != nil || string(v) != "wal-only" {
		t.Fatalf("replica WAL-tail read: %q %v", v, err)
	}
	if err := replica.Put([]byte("x"), nil); !errors.Is(err, lsm.ErrReadOnly) {
		t.Fatalf("replica write allowed: %v", err)
	}

	// The replica consumed each foreign DEK's one-time budget; a second
	// foreign server is now denied — the policy trade-off the paper's
	// secure cache exists to absorb.
	store.Authorize("intruder")
	entries, _ := sharedFS.List("db")
	for _, e := range entries {
		if e.Name == "CURRENT" {
			continue
		}
		data, _ := vfs.ReadFile(sharedFS, "db/"+e.Name)
		if id, ok := DEKIDFromHeader(data); ok {
			if _, err := kds.NewLocal(store, "intruder").FetchDEK(kds.KeyID(id)); err == nil {
				t.Fatalf("third server fetched exhausted DEK %s", id)
			}
			break
		}
	}
}
