package core

import (
	"bytes"
	"fmt"
	"testing"

	"shield/internal/lsm/sstable"
	"shield/internal/vfs"
)

// TestCompressThenEncrypt: the full pipeline — block build, flate compress,
// AES-CTR encrypt — round-trips, shrinks storage for compressible data, and
// still leaks no plaintext. (Encrypt-then-compress would be useless;
// ciphertext does not compress.)
func TestCompressThenEncrypt(t *testing.T) {
	marker := bytes.Repeat([]byte("COMPRESSIBLE-SECRET-"), 5)

	build := func(compress bool) (*vfs.MemFS, int64) {
		fs := vfs.NewMem()
		_, svc := newTestKDS(t)
		cfg := Config{Mode: ModeSHIELD, FS: fs, KDS: svc}
		opts := smallOpts()
		if compress {
			opts.Compression = sstable.FlateCompression
		}
		db, err := Open("db", cfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3000; i++ {
			if err := db.Put([]byte(fmt.Sprintf("k%06d", i)), marker); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
		// Verify reads before closing.
		v, err := db.Get([]byte("k001234"))
		if err != nil || !bytes.Equal(v, marker) {
			t.Fatalf("read-back (compress=%v): %v", compress, err)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		return fs, fs.TotalBytes(".sst")
	}

	_, rawSize := build(false)
	compFS, compSize := build(true)
	if compSize >= rawSize {
		t.Fatalf("compression under encryption did not shrink SSTs: %d vs %d", compSize, rawSize)
	}
	t.Logf("SST bytes: plain-blocks=%d flate-blocks=%d", rawSize, compSize)

	// Even compressed, nothing legible on disk.
	entries, _ := compFS.List("db")
	for _, e := range entries {
		data, _ := vfs.ReadFile(compFS, "db/"+e.Name)
		if bytes.Contains(data, []byte("COMPRESSIBLE-SECRET-")) {
			t.Fatalf("plaintext visible in %s", e.Name)
		}
	}
}
