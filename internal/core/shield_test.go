package core

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"shield/internal/kds"
	"shield/internal/lsm"
	"shield/internal/seccache"
	"shield/internal/vfs"
)

func TestHeaderRoundTrip(t *testing.T) {
	iv := [16]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	hdr := encodeHeader("dek-abc123", iv, shieldVersion)
	id, gotIV, _, n, err := parseHeader(hdr)
	if err != nil {
		t.Fatal(err)
	}
	if id != "dek-abc123" || gotIV != iv || n != len(hdr) {
		t.Fatalf("parsed id=%q ivOK=%v n=%d", id, gotIV == iv, n)
	}
	// Extra trailing data after the header is ignored by the parser.
	id2, _, _, n2, err := parseHeader(append(hdr, []byte("body bytes")...))
	if err != nil || id2 != id || n2 != n {
		t.Fatalf("parse with body: %v", err)
	}
}

func TestHeaderRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		bytes.Repeat([]byte{0}, 64), // bad magic
		encodeHeader("dek-x", [16]byte{}, shieldVersion)[:12], // truncated
	}
	for i, c := range cases {
		if _, _, _, _, err := parseHeader(c); err == nil {
			t.Fatalf("case %d: garbage header accepted", i)
		}
	}
}

// TestWALDEKPrunedOnDeletion: when a WAL is deleted after flush, its DEK
// leaves the secure cache even though the engine reports no DEK-ID for WALs.
func TestWALDEKPrunedOnDeletion(t *testing.T) {
	fs := vfs.NewMem()
	_, svc := newTestKDS(t)
	cache, err := seccache.Open(vfs.NewMem(), "c.bin", []byte("pw"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Mode: ModeSHIELD, FS: fs, KDS: svc, Cache: cache}
	db, err := Open("db", cfg, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	for i := 0; i < 500; i++ {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), make([]byte, 64))
	}
	before := cache.Len()
	// Flush rotates the WAL and deletes the old one.
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// The cache holds: new WAL, SST, manifest keys — but the dead WAL's key
	// must be gone. Cache can't grow by more than the files created.
	after := cache.Len()
	if after > before+2 {
		t.Fatalf("cache grew from %d to %d; dead-WAL DEK not pruned", before, after)
	}

	// No stale WAL files remain whose DEK is still cached.
	entries, _ := fs.List("db")
	logs := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name, ".log") {
			logs++
		}
	}
	if logs != 1 {
		t.Fatalf("%d WAL files after flush, want 1", logs)
	}
}

// TestWALBufferCrashLosesOnlyTail reproduces the Section 5.3 trade-off: a
// process crash loses at most the unflushed buffer, and recovery replays
// the encrypted prefix cleanly (no partial/garbled records).
func TestWALBufferCrashLosesOnlyTail(t *testing.T) {
	fs := vfs.NewMem()
	store := kds.NewStore(kds.Policy{MaxFetches: 1})
	svc := kds.NewLocal(store, "s")
	cfg := Config{Mode: ModeSHIELD, FS: fs, KDS: svc, WALBufferSize: 4096}
	opts := smallOpts()
	db, err := Open("db", cfg, opts)
	if err != nil {
		t.Fatal(err)
	}

	const n = 300
	for i := 0; i < n; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a process crash: abandon the DB without Close. The WAL
	// buffer's unflushed tail never reached the filesystem.
	// (The old DB object is simply dropped.)

	db2, err := Open("db", cfg, opts)
	if err != nil {
		t.Fatalf("recovery after crash: %v", err)
	}
	defer db2.Close()

	// Recovered records must be an exact prefix: if k_i is present, every
	// k_j (j < i) is present with the right value.
	lastPresent := -1
	for i := 0; i < n; i++ {
		v, err := db2.Get([]byte(fmt.Sprintf("k%04d", i)))
		if errors.Is(err, lsm.ErrNotFound) {
			break
		}
		if err != nil {
			t.Fatalf("Get k%04d: %v", i, err)
		}
		if string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%04d corrupted: %q", i, v)
		}
		lastPresent = i
	}
	for i := lastPresent + 1; i < n; i++ {
		if _, err := db2.Get([]byte(fmt.Sprintf("k%04d", i))); !errors.Is(err, lsm.ErrNotFound) {
			t.Fatalf("non-prefix recovery: k%04d present after gap", i)
		}
	}
	t.Logf("recovered %d/%d records (buffered tail lost, as designed)", lastPresent+1, n)
}

// TestWALBufferSyncSurvivesCrash: an explicit synced write flushes the
// buffer, so it survives even an immediate crash.
func TestWALBufferSyncSurvivesCrash(t *testing.T) {
	fs := vfs.NewMem()
	_, svc := newTestKDS(t)
	cfg := Config{Mode: ModeSHIELD, FS: fs, KDS: svc, WALBufferSize: 1 << 20}
	opts := smallOpts()
	db, err := Open("db", cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	b := lsm.NewBatch()
	b.Put([]byte("critical"), []byte("data"))
	if err := db.Write(b, true); err != nil { // sync=true
		t.Fatal(err)
	}
	// Crash without Close.
	db2, err := Open("db", cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	v, err := db2.Get([]byte("critical"))
	if err != nil || string(v) != "data" {
		t.Fatalf("synced write lost: %q %v", v, err)
	}
}

// TestRevokeOnDelete: with the option on, compacted-away DEKs become
// unfetchable at the KDS even for authorized servers.
func TestRevokeOnDelete(t *testing.T) {
	fs := vfs.NewMem()
	store := kds.NewStore(kds.Policy{MaxFetches: 0})
	svc := kds.NewLocal(store, "s")
	cfg := Config{Mode: ModeSHIELD, FS: fs, KDS: svc, RevokeOnDelete: true}
	db, err := Open("db", cfg, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	for i := 0; i < 8000; i++ {
		db.Put([]byte(fmt.Sprintf("k%06d", i%2000)), make([]byte, 100))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	before := sstDEKIDs(t, fs)
	if err := db.CompactRange(); err != nil {
		t.Fatal(err)
	}
	revoked := 0
	for id := range before {
		if _, err := svc.FetchDEK(id); errors.Is(err, kds.ErrKeyRevoked) {
			revoked++
		}
	}
	if revoked == 0 {
		t.Fatal("no compacted DEK was revoked at the KDS")
	}
}

// TestModeValidation covers Config error paths.
func TestModeValidation(t *testing.T) {
	if _, err := Open("db", Config{Mode: ModeSHIELD, FS: vfs.NewMem()}, smallOpts()); err == nil {
		t.Fatal("SHIELD without KDS accepted")
	}
	if _, err := Open("db", Config{Mode: ModeNone}, smallOpts()); err == nil {
		t.Fatal("missing FS accepted")
	}
	if got := ModeSHIELD.String(); got != "shield" {
		t.Fatalf("mode string %q", got)
	}
}

// TestWrapperStats: the resolution counters move as expected.
func TestWrapperStats(t *testing.T) {
	fs := vfs.NewMem()
	_, svc := newTestKDS(t)
	cfg := Config{Mode: ModeSHIELD, FS: fs, KDS: svc}
	wrapper, err := cfg.BuildWrapper()
	if err != nil {
		t.Fatal(err)
	}
	opts := smallOpts()
	opts.FS = fs
	opts.Wrapper = wrapper
	db, err := lsm.Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 3000; i++ {
		db.Put([]byte(fmt.Sprintf("k%05d", i)), make([]byte, 64))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	st, ok := Stats(wrapper)
	if !ok {
		t.Fatal("Stats rejected a SHIELD wrapper")
	}
	if st.DEKsCreated < 3 {
		t.Fatalf("stats: %+v", st)
	}
	if _, ok := Stats(lsm.NopWrapper{}); ok {
		t.Fatal("Stats accepted a non-SHIELD wrapper")
	}
}
