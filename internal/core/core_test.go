package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"shield/internal/crypt"
	"shield/internal/kds"
	"shield/internal/lsm"
	"shield/internal/seccache"
	"shield/internal/vfs"
)

func newTestKDS(t *testing.T) (*kds.Store, kds.Service) {
	t.Helper()
	store := kds.NewStore(kds.Policy{MaxFetches: 1})
	return store, kds.NewLocal(store, "server-1")
}

func smallOpts() lsm.Options {
	return lsm.Options{
		MemtableSize:        64 << 10,
		BaseLevelSize:       256 << 10,
		TargetFileSize:      64 << 10,
		L0CompactionTrigger: 4,
	}
}

func testConfig(t *testing.T, mode Mode, fs vfs.FS) Config {
	t.Helper()
	cfg := Config{Mode: mode, FS: fs, WALBufferSize: 512}
	switch mode {
	case ModeEncFS:
		dek, err := crypt.NewDEK()
		if err != nil {
			t.Fatal(err)
		}
		cfg.InstanceDEK = dek
	case ModeSHIELD:
		_, svc := newTestKDS(t)
		cfg.KDS = svc
	}
	return cfg
}

// roundTrip exercises put/flush/compact/get/reopen under one mode.
func roundTrip(t *testing.T, mode Mode) {
	fs := vfs.NewMem()
	cfg := testConfig(t, mode, fs)
	db, err := Open("db", cfg, smallOpts())
	if err != nil {
		t.Fatal(err)
	}

	const n = 5000
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%06d", i)
		v := fmt.Sprintf("value-%06d-%s", i, "PLAINTEXTMARKER")
		if err := db.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.CompactRange(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 97 {
		k := fmt.Sprintf("key-%06d", i)
		v, err := db.Get([]byte(k))
		if err != nil {
			t.Fatalf("mode %v Get(%s): %v", mode, k, err)
		}
		want := fmt.Sprintf("value-%06d-%s", i, "PLAINTEXTMARKER")
		if string(v) != want {
			t.Fatalf("mode %v Get(%s) = %q", mode, k, v)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with the same config (same KDS/DEK) and read again.
	db2, err := Open("db", cfg, smallOpts())
	if err != nil {
		t.Fatalf("mode %v reopen: %v", mode, err)
	}
	defer db2.Close()
	v, err := db2.Get([]byte("key-000042"))
	if err != nil {
		t.Fatalf("mode %v after reopen: %v", mode, err)
	}
	if !bytes.Contains(v, []byte("value-000042")) {
		t.Fatalf("mode %v wrong value after reopen: %q", mode, v)
	}
}

func TestRoundTripNone(t *testing.T)   { roundTrip(t, ModeNone) }
func TestRoundTripEncFS(t *testing.T)  { roundTrip(t, ModeEncFS) }
func TestRoundTripSHIELD(t *testing.T) { roundTrip(t, ModeSHIELD) }

// TestNoPlaintextOnDisk is the core confidentiality property: under EncFS
// and SHIELD no stored byte sequence reveals the values we wrote.
func TestNoPlaintextOnDisk(t *testing.T) {
	marker := []byte("SUPERSECRETVALUE-0123456789")
	for _, mode := range []Mode{ModeEncFS, ModeSHIELD} {
		t.Run(mode.String(), func(t *testing.T) {
			fs := vfs.NewMem()
			cfg := testConfig(t, mode, fs)
			db, err := Open("db", cfg, smallOpts())
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3000; i++ {
				k := fmt.Sprintf("k%06d", i)
				v := append([]byte{}, marker...)
				if err := db.Put([]byte(k), v); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			// Scan every stored file for the plaintext marker.
			entries, err := fs.List("db")
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				data, err := vfs.ReadFile(fs, "db/"+e.Name)
				if err != nil {
					t.Fatal(err)
				}
				if bytes.Contains(data, marker) {
					t.Fatalf("mode %v: plaintext marker found in %s", mode, e.Name)
				}
				// Keys must not leak either.
				if bytes.Contains(data, []byte("k000123")) {
					t.Fatalf("mode %v: plaintext key found in %s", mode, e.Name)
				}
			}
		})
	}

	// Sanity check: with no encryption the marker IS on disk, proving the
	// scan actually detects plaintext.
	fs := vfs.NewMem()
	db, err := Open("db", Config{Mode: ModeNone, FS: fs}, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%06d", i)), marker); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	db.Close()
	found := false
	entries, _ := fs.List("db")
	for _, e := range entries {
		data, _ := vfs.ReadFile(fs, "db/"+e.Name)
		if bytes.Contains(data, marker) {
			found = true
		}
	}
	if !found {
		t.Fatal("plaintext scan found nothing even without encryption; scan is broken")
	}
}

// TestUniqueDEKPerFile verifies SHIELD's per-file key property: every SST
// and WAL carries a distinct DEK-ID.
func TestUniqueDEKPerFile(t *testing.T) {
	fs := vfs.NewMem()
	store, svc := newTestKDS(t)
	cfg := Config{Mode: ModeSHIELD, FS: fs, KDS: svc}
	db, err := Open("db", cfg, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%06d", i)), make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	entries, err := fs.List("db")
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[kds.KeyID]string)
	checked := 0
	for _, e := range entries {
		if e.Name == "CURRENT" {
			continue
		}
		data, err := vfs.ReadFile(fs, "db/"+e.Name)
		if err != nil {
			t.Fatal(err)
		}
		id, _, _, _, err := parseHeader(data)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if prev, dup := seen[id]; dup {
			t.Fatalf("DEK-ID %s reused by %s and %s", id, prev, e.Name)
		}
		seen[id] = e.Name
		checked++
	}
	if checked < 3 {
		t.Fatalf("only %d encrypted files found; expected several", checked)
	}
	issued, _, _ := store.Stats()
	if issued < int64(checked) {
		t.Fatalf("KDS issued %d keys for %d files", issued, checked)
	}
}

// TestDEKRotationByCompaction verifies that compaction re-encrypts data
// under fresh DEKs and the old DEKs are pruned.
func TestDEKRotationByCompaction(t *testing.T) {
	fs := vfs.NewMem()
	_, svc := newTestKDS(t)
	cache, err := seccache.Open(vfs.NewMem(), "cache.bin", []byte("passkey"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Mode: ModeSHIELD, FS: fs, KDS: svc, Cache: cache}
	db, err := Open("db", cfg, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	for i := 0; i < 8000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%06d", i%2000)), make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	// Collect the DEK-IDs of current SSTs.
	before := sstDEKIDs(t, fs)
	if len(before) == 0 {
		t.Fatal("no SSTs before compaction")
	}
	if err := db.CompactRange(); err != nil {
		t.Fatal(err)
	}
	after := sstDEKIDs(t, fs)
	for id := range after {
		if _, old := before[id]; old {
			t.Fatalf("DEK %s survived compaction (no rotation)", id)
		}
	}
	// Old DEKs must be pruned from the secure cache.
	for id := range before {
		if _, err := cache.Get(id); err == nil {
			t.Fatalf("rotated-away DEK %s still in secure cache", id)
		}
	}
	// Data still readable under the new keys.
	if _, err := db.Get([]byte("k000042")); err != nil {
		t.Fatal(err)
	}
}

func sstDEKIDs(t *testing.T, fs *vfs.MemFS) map[kds.KeyID]bool {
	t.Helper()
	out := make(map[kds.KeyID]bool)
	entries, err := fs.List("db")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if len(e.Name) < 4 || e.Name[len(e.Name)-4:] != ".sst" {
			continue
		}
		data, err := vfs.ReadFile(fs, "db/"+e.Name)
		if err != nil {
			t.Fatal(err)
		}
		id, _, _, _, err := parseHeader(data)
		if err != nil {
			t.Fatal(err)
		}
		out[id] = true
	}
	return out
}

// TestWrongEncFSKeyFailsClosed: opening an EncFS database with the wrong
// instance DEK must fail, not return garbage.
func TestWrongEncFSKeyFailsClosed(t *testing.T) {
	fs := vfs.NewMem()
	cfg := testConfig(t, ModeEncFS, fs)
	db, err := Open("db", cfg, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		db.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	bad, err := crypt.NewDEK()
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.InstanceDEK = bad
	if _, err := Open("db", cfg2, smallOpts()); err == nil {
		t.Fatal("open with wrong instance DEK succeeded")
	}
}

// TestSecureCacheAvoidsKDS: a warm secure cache lets a restart resolve DEKs
// without KDS fetches.
func TestSecureCacheAvoidsKDS(t *testing.T) {
	fs := vfs.NewMem()
	cacheFS := vfs.NewMem()
	store := kds.NewStore(kds.Policy{MaxFetches: 1})
	svc := kds.NewLocal(store, "server-1")
	cache, err := seccache.Open(cacheFS, "cache.bin", []byte("pw"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Mode: ModeSHIELD, FS: fs, KDS: svc, Cache: cache}
	db, err := Open("db", cfg, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		db.Put([]byte(fmt.Sprintf("k%06d", i)), make([]byte, 64))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	_, fetchedBefore, _ := store.Stats()

	// Fresh wrapper (new process) with the reloaded secure cache.
	cache2, err := seccache.Open(cacheFS, "cache.bin", []byte("pw"))
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := Config{Mode: ModeSHIELD, FS: fs, KDS: svc, Cache: cache2}
	db2, err := Open("db", cfg2, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, err := db2.Get([]byte("k000100")); err != nil {
		t.Fatal(err)
	}
	_, fetchedAfter, _ := store.Stats()
	if fetchedAfter != fetchedBefore {
		t.Fatalf("restart hit the KDS %d times despite warm secure cache", fetchedAfter-fetchedBefore)
	}
}

// TestWALBufferRecovery: with a WAL buffer, synced writes survive; the
// encrypted WAL replays correctly after clean close.
func TestWALBufferRecovery(t *testing.T) {
	for _, bufSize := range []int{0, 512, 2048} {
		t.Run(fmt.Sprintf("buf=%d", bufSize), func(t *testing.T) {
			fs := vfs.NewMem()
			_, svc := newTestKDS(t)
			cfg := Config{Mode: ModeSHIELD, FS: fs, KDS: svc, WALBufferSize: bufSize}
			opts := smallOpts()
			db, err := Open("db", cfg, opts)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 200; i++ {
				if err := db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			db2, err := Open("db", cfg, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer db2.Close()
			for i := 0; i < 200; i++ {
				v, err := db2.Get([]byte(fmt.Sprintf("k%04d", i)))
				if err != nil {
					t.Fatalf("buf=%d: k%04d lost: %v", bufSize, i, err)
				}
				if string(v) != fmt.Sprintf("v%d", i) {
					t.Fatalf("buf=%d: wrong value %q", bufSize, v)
				}
			}
		})
	}
}

// TestChunkedParallelEncryption: multi-threaded chunk encryption must
// produce byte-identical files to inline encryption.
func TestChunkedParallelEncryption(t *testing.T) {
	key, err := crypt.NewDEK()
	if err != nil {
		t.Fatal(err)
	}
	iv, err := crypt.NewIV()
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 7)
	}

	write := func(chunk, workers int) []byte {
		fs := vfs.NewMem()
		f, err := fs.Create("out")
		if err != nil {
			t.Fatal(err)
		}
		w := crypt.NewChunkedWriter(f, key, iv, chunk, workers)
		// Write in awkward sizes to exercise chunk boundaries.
		for off := 0; off < len(payload); {
			n := 3000 + off%977
			if off+n > len(payload) {
				n = len(payload) - off
			}
			if _, err := w.Write(payload[off : off+n]); err != nil {
				t.Fatal(err)
			}
			off += n
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		data, err := vfs.ReadFile(fs, "out")
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	ref := write(64<<10, 1)
	for _, workers := range []int{2, 4, 8} {
		for _, chunk := range []int{4 << 10, 64 << 10, 512 << 10} {
			got := write(chunk, workers)
			if !bytes.Equal(ref, got) {
				t.Fatalf("chunk=%d workers=%d produced different ciphertext", chunk, workers)
			}
		}
	}
}

// TestLeakedDEKBlastRadius: a compromised DEK decrypts exactly one file.
func TestLeakedDEKBlastRadius(t *testing.T) {
	fs := vfs.NewMem()
	_, svc := newTestKDS(t)
	cfg := Config{Mode: ModeSHIELD, FS: fs, KDS: svc}
	db, err := Open("db", cfg, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		db.Put([]byte(fmt.Sprintf("k%06d", i)), make([]byte, 100))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	// Gather SST files and their headers.
	type sstFile struct {
		name string
		id   kds.KeyID
		iv   [crypt.IVSize]byte
		hdr  int
		data []byte
	}
	var files []sstFile
	entries, _ := fs.List("db")
	for _, e := range entries {
		if len(e.Name) < 4 || e.Name[len(e.Name)-4:] != ".sst" {
			continue
		}
		data, _ := vfs.ReadFile(fs, "db/"+e.Name)
		id, iv, _, hdr, err := parseHeader(data)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, sstFile{name: e.Name, id: id, iv: iv, hdr: hdr, data: data})
	}
	if len(files) < 2 {
		t.Fatalf("need >=2 SSTs, have %d", len(files))
	}

	// "Leak" file 0's DEK by fetching it from the KDS (authorized server).
	leaked, err := svc.FetchDEK(files[0].id)
	if err != nil {
		t.Fatal(err)
	}

	decryptsValidTable := func(f sstFile, dek crypt.DEK) bool {
		// SSTs are sealed (format v2): open every block under the DEK. The
		// wrong key fails authentication rather than yielding garbage.
		sealer, err := crypt.NewSealer(dek, f.iv[:crypt.SealedNoncePrefixLen], f.data[:f.hdr])
		if err != nil {
			t.Fatal(err)
		}
		const cb = crypt.SealedBlockSize + crypt.SealedTagSize
		body := f.data[f.hdr:]
		var plain []byte
		for i := 0; ; i++ {
			start := i * cb
			final := len(body)-start <= cb
			end := start + cb
			if final {
				end = len(body)
			}
			out, err := sealer.OpenBlock(nil, body[start:end], uint32(i), final)
			if err != nil {
				return false
			}
			plain = append(plain, out...)
			if final {
				break
			}
		}
		// A correct DEK yields the table magic in the footer.
		if len(plain) < 8 {
			return false
		}
		magic := plain[len(plain)-8:]
		want := []byte{0x44, 0x4c, 0x48, 0x53, 0x42, 0x54, 0x53, 0x53} // "SSTBSHLD" LE
		return bytes.Equal(magic, want)
	}
	if !decryptsValidTable(files[0], leaked) {
		t.Fatal("leaked DEK failed to decrypt its own file")
	}
	if decryptsValidTable(files[1], leaked) {
		t.Fatal("leaked DEK decrypted a different file: blast radius not contained")
	}
}

// TestKDSOneTimeProvisioning: a foreign server can fetch a DEK-ID once;
// the second fetch is denied even though the DEK-ID is public metadata.
func TestKDSOneTimeProvisioning(t *testing.T) {
	store := kds.NewStore(kds.Policy{MaxFetches: 1})
	owner := kds.NewLocal(store, "owner")
	other := kds.NewLocal(store, "other")

	id, _, err := owner.CreateDEK()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.FetchDEK(id); err != nil {
		t.Fatalf("first foreign fetch should succeed: %v", err)
	}
	if _, err := other.FetchDEK(id); !errors.Is(err, kds.ErrAlreadyIssued) {
		t.Fatalf("second foreign fetch: want ErrAlreadyIssued, got %v", err)
	}
	// Owner re-fetch (cold restart) is always allowed.
	if _, err := owner.FetchDEK(id); err != nil {
		t.Fatalf("owner re-fetch: %v", err)
	}
}
