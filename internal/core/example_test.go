package core_test

import (
	"fmt"
	"log"

	"shield/internal/core"
	"shield/internal/crypt"
	"shield/internal/kds"
	"shield/internal/lsm"
	"shield/internal/seccache"
	"shield/internal/vfs"
)

// Example shows the minimal SHIELD deployment: an in-process KDS, a secure
// DEK cache, and a database whose persistent files are all encrypted with
// per-file keys.
func Example() {
	fs := vfs.NewMem() // use vfs.NewOS() for a real disk

	kdsService := kds.NewLocal(kds.NewStore(kds.DefaultPolicy()), "server-1")
	cache, err := seccache.Open(fs, "dek-cache.bin", []byte("passkey"))
	if err != nil {
		log.Fatal(err)
	}

	db, err := core.Open("db", core.Config{
		Mode:          core.ModeSHIELD,
		FS:            fs,
		KDS:           kdsService,
		Cache:         cache,
		WALBufferSize: 512,
	}, lsm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if err := db.Put([]byte("greeting"), []byte("hello, encrypted world")); err != nil {
		log.Fatal(err)
	}
	v, err := db.Get([]byte("greeting"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(v))
	// Output: hello, encrypted world
}

// Example_instanceLevel shows the simpler EncFS design: one instance-wide
// DEK, transparent filesystem-level encryption, engine unaware.
func Example_instanceLevel() {
	dek, err := newExampleDEK()
	if err != nil {
		log.Fatal(err)
	}
	db, err := core.Open("db", core.Config{
		Mode:        core.ModeEncFS,
		FS:          vfs.NewMem(),
		InstanceDEK: dek,
	}, lsm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	db.Put([]byte("k"), []byte("v"))
	v, _ := db.Get([]byte("k"))
	fmt.Println(string(v))
	// Output: v
}

// newExampleDEK generates the instance key for the EncFS example.
func newExampleDEK() (dek crypt.DEK, err error) { return crypt.NewDEK() }
