package core

import (
	"fmt"
	"testing"

	"shield/internal/kds"
	"shield/internal/vfs"
)

// TestSecCacheRestartLoop restarts a SHIELD instance twenty times against a
// persistent secure cache, with injected write faults on the cache's storage.
// Warm restarts must be served from the sealed snapshot — no KDS round-trip
// storm: the KDS fetch count may grow only by the DEKs lost to the injected
// save failures, never in proportion to restarts × files. A structurally
// corrupted cache must cold-start with Recovered() = true and refill from the
// KDS (the creator re-fetch path), not fail the open.
func TestSecCacheRestartLoop(t *testing.T) {
	store := kds.NewStore(kds.DefaultPolicy())
	store.Authorize("server-1")
	srv, err := kds.NewServer(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	dataFS := vfs.NewMem()
	// The cache disk misbehaves: two snapshot writes fail mid-run. The cache
	// must absorb them (stale-but-valid snapshot on disk, serving continues
	// from memory).
	cacheBase := vfs.NewMem()
	cacheFS := vfs.NewFault(cacheBase, 1)
	cacheFS.Inject(vfs.FaultRule{Op: vfs.FaultWrite, Path: "seccache", After: 6, Count: 2})

	const rounds = 20
	var fetchedAfterCold int64
	for round := 0; round < rounds; round++ {
		cache := openTestCache(t, cacheFS)
		if cache.Recovered() {
			t.Fatalf("round %d: cache claims recovery from corruption; none was injected", round)
		}
		client := kds.NewClientConfig("server-1", fastKDSClientConfig(), srv.Addr())
		cfg := Config{Mode: ModeSHIELD, FS: dataFS, KDS: client, Cache: cache, WALBufferSize: 512}
		db, err := Open("db", cfg, smallOpts())
		if err != nil {
			t.Fatalf("round %d: open: %v", round, err)
		}
		for i := 0; i < 50; i++ {
			key := fmt.Sprintf("r%02d-k%03d", round, i)
			if err := db.Put([]byte(key), []byte("v-"+key)); err != nil {
				t.Fatalf("round %d: put: %v", round, err)
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatalf("round %d: flush: %v", round, err)
		}
		// Every earlier round's data must still read back through DEKs that
		// came from the cache, not fresh KDS fetches.
		for r := 0; r <= round; r++ {
			key := fmt.Sprintf("r%02d-k%03d", r, 7)
			if v, err := db.Get([]byte(key)); err != nil || string(v) != "v-"+key {
				t.Fatalf("round %d: read of round-%d key: %q %v", round, r, v, err)
			}
		}
		if err := db.Close(); err != nil {
			t.Fatalf("round %d: close: %v", round, err)
		}
		client.Close()

		if round == 0 {
			_, fetchedAfterCold, _ = store.Stats()
		}
	}

	// Bounded fetches: each of the two injected save failures can lose the
	// DEKs added between the previous good snapshot and the next one (a
	// handful per round), which the next restart re-fetches. Twenty warm
	// restarts over a growing file set would otherwise be hundreds of
	// fetches.
	_, fetchedAfterWarm, _ := store.Stats()
	if growth := fetchedAfterWarm - fetchedAfterCold; growth > 8 {
		t.Fatalf("KDS fetch storm across warm restarts: %d extra fetches", growth)
	}

	if cacheFS.Injected() != 2 {
		t.Fatalf("expected both cache-save faults to fire, got %d", cacheFS.Injected())
	}

	// The failed saves must not have left a corrupt cache behind: the next
	// open loads the last good snapshot without claiming recovery.
	cache := openTestCache(t, cacheFS)
	if cache.Recovered() {
		t.Fatal("cache claims recovery; none was injected yet")
	}

	// Structural corruption: truncate the cache file. The next open must
	// cold-start, flag Recovered, and the instance must refill from the KDS.
	if err := vfs.WriteFile(cacheBase, "seccache", []byte("xx")); err != nil {
		t.Fatal(err)
	}
	cache = openTestCache(t, cacheFS)
	if !cache.Recovered() {
		t.Fatal("Recovered() = false after structural cache corruption")
	}
	client := kds.NewClientConfig("server-1", fastKDSClientConfig(), srv.Addr())
	defer client.Close()
	cfg := Config{Mode: ModeSHIELD, FS: dataFS, KDS: client, Cache: cache, WALBufferSize: 512}
	db, err := Open("db", cfg, smallOpts())
	if err != nil {
		t.Fatalf("open after cache corruption: %v", err)
	}
	defer db.Close()
	key := "r00-k007"
	if v, err := db.Get([]byte(key)); err != nil || string(v) != "v-"+key {
		t.Fatalf("read after cold cache: %q %v", v, err)
	}
	if _, fetchedCold, _ := store.Stats(); fetchedCold == fetchedAfterWarm {
		t.Fatal("cold-started cache served reads without any KDS fetch — cache was not actually cold")
	}
}
