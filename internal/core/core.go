// Package core implements the paper's two encryption designs on top of the
// LSM engine:
//
//   - ModeEncFS — instance-level encryption (Section 4): the whole
//     filesystem is wrapped by internal/encfs with a single instance DEK.
//     The engine is unaware; there are no per-file keys and no rotation.
//
//   - ModeSHIELD — encryption embedded in the write path (Section 5): every
//     WAL, SST, and MANIFEST file gets its own DEK from a KDS; the DEK-ID
//     travels in a plaintext file header (metadata-enabled DEK sharing,
//     Section 5.4); WAL writes are batched in an application-managed buffer
//     before encryption (Section 5.3); compaction output is encrypted in
//     configurable chunks, optionally on multiple goroutines (Section 5.2);
//     a passkey-sealed secure cache avoids repeated KDS round trips; and
//     compaction rotates DEKs for free — new output files always get new
//     keys, and the old keys are pruned and revoked when their files die.
//
// The package exposes Open, which wires a Config into lsm.Options and
// returns a regular *lsm.DB.
package core

import (
	"errors"
	"fmt"

	"shield/internal/crypt"
	"shield/internal/encfs"
	"shield/internal/kds"
	"shield/internal/lsm"
	"shield/internal/seccache"
	"shield/internal/vfs"
)

// Mode selects the encryption design.
type Mode int

// Encryption modes.
const (
	// ModeNone runs the plain engine (the "unencrypted RocksDB" baseline).
	ModeNone Mode = iota

	// ModeEncFS applies instance-level encryption below the engine.
	ModeEncFS

	// ModeSHIELD embeds per-file encryption into the engine's write path.
	ModeSHIELD
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case ModeEncFS:
		return "encfs"
	case ModeSHIELD:
		return "shield"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Config wires an encryption design around a database.
type Config struct {
	// Mode selects the design.
	Mode Mode

	// FS is the backing filesystem (local, counting, latency-injected, or
	// the disaggregated-storage client).
	FS vfs.FS

	// InstanceDEK is the single DEK for ModeEncFS, supplied at startup and
	// held only in memory.
	InstanceDEK crypt.DEK

	// KDS issues and resolves per-file DEKs for ModeSHIELD.
	KDS kds.Service

	// Cache, when non-nil, is the secure on-disk DEK cache shared by
	// co-located instances. Optional.
	Cache *seccache.Cache

	// WALBufferSize is the application-managed WAL buffer in bytes
	// (Section 5.3). 0 encrypts every WAL write individually (paying the
	// full encryption-initialization cost per write); the paper's default
	// trade-off point is 512 bytes.
	WALBufferSize int

	// CompactionChunkSize is the encryption granularity for SST bodies
	// during flush/compaction. Defaults to 64 KiB; smaller chunks mean
	// more encryption-initialization calls, larger chunks amortize them.
	CompactionChunkSize int

	// EncryptionThreads is the number of goroutines encrypting SST chunks
	// concurrently (Section 5.2's multi-threaded compaction encryption).
	// Values <= 1 encrypt inline.
	EncryptionThreads int

	// RevokeOnDelete revokes a file's DEK at the KDS when the file is
	// deleted (after compaction), making stale DEK-IDs useless even to
	// authorized servers.
	RevokeOnDelete bool

	// PlaintextWAL leaves the WAL unencrypted under ModeSHIELD. This is an
	// ablation knob for the paper's Table 2 ("Encrypted SST" row); it
	// violates the threat model and exists only for measurement.
	PlaintextWAL bool

	// LegacyCTR writes new files in format v1 (CTR, unauthenticated), as
	// builds before format v2 did. Reads accept both formats regardless;
	// the knob exists for mixed-version coexistence tests and staged
	// rollouts.
	LegacyCTR bool
}

func (c Config) withDefaults() Config {
	if c.CompactionChunkSize == 0 {
		c.CompactionChunkSize = 64 << 10
	}
	return c
}

// Validate checks mode-specific requirements.
func (c Config) Validate() error {
	if c.FS == nil {
		return errors.New("core: Config.FS is required")
	}
	if c.Mode == ModeSHIELD && c.KDS == nil {
		return errors.New("core: ModeSHIELD requires a KDS")
	}
	return nil
}

// BuildFS returns the filesystem the engine should run on: the EncFS wrap
// for instance-level encryption, the raw FS otherwise.
func (c Config) BuildFS() (vfs.FS, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if c.Mode == ModeEncFS {
		if c.WALBufferSize > 0 {
			return encfs.NewWithWALBuffer(c.FS, c.InstanceDEK, c.WALBufferSize), nil
		}
		return encfs.New(c.FS, c.InstanceDEK), nil
	}
	return c.FS, nil
}

// BuildWrapper returns the engine file wrapper: the SHIELD codec for
// ModeSHIELD, the identity wrapper otherwise.
func (c Config) BuildWrapper() (lsm.FileWrapper, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if c.Mode != ModeSHIELD {
		return lsm.NopWrapper{}, nil
	}
	return newShieldWrapper(c.withDefaults()), nil
}

// cacheFreshness anchors a store's freshness epoch in the passkey-sealed
// secure cache: the floor lives in the same tamper-evident payload as the
// DEKs, outside the data directory, so rolling the data back cannot roll
// the floor back.
type cacheFreshness struct {
	cache *seccache.Cache
	store string
}

// EpochFloor implements lsm.FreshnessStore.
func (f cacheFreshness) EpochFloor() (uint64, bool) { return f.cache.EpochFloor(f.store) }

// SealEpoch implements lsm.FreshnessStore.
func (f cacheFreshness) SealEpoch(epoch uint64) error { return f.cache.SealEpoch(f.store, epoch) }

// Open opens a database in dir with the encryption design applied.
// opts.FS and opts.Wrapper are populated from cfg. Under ModeSHIELD with a
// secure cache, opts.Freshness defaults to an epoch floor sealed into that
// cache, making recovery rollback-proof (fail closed on epoch regression).
func Open(dir string, cfg Config, opts lsm.Options) (*lsm.DB, error) {
	fs, err := cfg.BuildFS()
	if err != nil {
		return nil, err
	}
	wrapper, err := cfg.BuildWrapper()
	if err != nil {
		return nil, err
	}
	opts.FS = fs
	opts.Wrapper = wrapper
	if opts.Freshness == nil && cfg.Mode == ModeSHIELD && cfg.Cache != nil {
		opts.Freshness = cacheFreshness{cache: cfg.Cache, store: dir}
	}
	return lsm.Open(dir, opts)
}
