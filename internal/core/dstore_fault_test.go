package core

import (
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"shield/internal/dstore"
	"shield/internal/kds"
	"shield/internal/vfs"
)

// flakyProxy forwards TCP traffic to upstream but drops every dropEveryN-th
// upstream->client payload and kills that connection, so responses keep
// getting lost for the whole run.
type flakyProxy struct {
	ln       net.Listener
	upstream string
	every    int

	mu   sync.Mutex
	seen int
}

func newFlakyProxy(t *testing.T, upstream string, every int) *flakyProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &flakyProxy{ln: ln, upstream: upstream, every: every}
	go p.serve()
	t.Cleanup(func() { ln.Close() })
	return p
}

func (p *flakyProxy) addr() string { return p.ln.Addr().String() }

func (p *flakyProxy) serve() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		go p.handle(conn)
	}
}

func (p *flakyProxy) handle(conn net.Conn) {
	up, err := net.Dial("tcp", p.upstream)
	if err != nil {
		conn.Close()
		return
	}
	go func() {
		io.Copy(up, conn) //nolint:errcheck
		up.Close()
	}()
	buf := make([]byte, 64<<10)
	for {
		n, err := up.Read(buf)
		if err != nil {
			conn.Close()
			up.Close()
			return
		}
		p.mu.Lock()
		p.seen++
		drop := p.seen%p.every == 0
		p.mu.Unlock()
		if drop {
			conn.Close()
			up.Close()
			return
		}
		if _, err := conn.Write(buf[:n]); err != nil {
			conn.Close()
			up.Close()
			return
		}
	}
}

// TestDBOverFlakyDStoreLink runs an encrypted database on disaggregated
// storage through a link that keeps dropping responses, forcing connection
// discards and retried (sequence-deduplicated) writes during flush and
// compaction. Every write must complete and every byte must read back,
// i.e. no lost, duplicated, or torn appends.
func TestDBOverFlakyDStoreLink(t *testing.T) {
	storageFS := vfs.NewMem()
	storage, err := dstore.NewServer(storageFS, "127.0.0.1:0", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer storage.Close()
	proxy := newFlakyProxy(t, storage.Addr(), 7)

	remote, err := dstore.DialConfig(proxy.addr(), dstore.Config{
		Conns:          2,
		DialTimeout:    200 * time.Millisecond,
		RequestTimeout: 2 * time.Second,
		MaxAttempts:    5,
		BackoffBase:    time.Millisecond,
		BackoffMax:     10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	store := kds.NewStore(kds.DefaultPolicy())
	cfg := Config{
		Mode: ModeSHIELD, FS: remote,
		KDS:           kds.NewLocal(store, "compute-1"),
		WALBufferSize: 512,
	}
	db, err := Open("db", cfg, smallOpts())
	if err != nil {
		t.Fatal(err)
	}

	const puts = 4000
	for i := 0; i < puts; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%06d", i)), []byte(fmt.Sprintf("value-%06d", i))); err != nil {
			t.Fatalf("Put %d over flaky link: %v", i, err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatalf("Flush over flaky link: %v", err)
	}
	for _, i := range []int{0, 1, puts / 2, puts - 1} {
		v, err := db.Get([]byte(fmt.Sprintf("k%06d", i)))
		if err != nil || string(v) != fmt.Sprintf("value-%06d", i) {
			t.Fatalf("Get k%06d = %q, %v", i, v, err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen over a clean connection straight to the server and verify the
	// persisted state is intact end to end.
	remote2, err := dstore.Dial(storage.Addr(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer remote2.Close()
	cfg2 := cfg
	cfg2.FS = remote2
	db2, err := Open("db", cfg2, smallOpts())
	if err != nil {
		t.Fatalf("reopen after flaky run: %v", err)
	}
	defer db2.Close()
	for _, i := range []int{0, puts / 3, puts - 1} {
		v, err := db2.Get([]byte(fmt.Sprintf("k%06d", i)))
		if err != nil || string(v) != fmt.Sprintf("value-%06d", i) {
			t.Fatalf("reopened Get k%06d = %q, %v", i, v, err)
		}
	}
}
