package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"shield/internal/dstore"
	"shield/internal/kds"
	"shield/internal/vfs"
)

// replicatedFleet is three dstore storage nodes plus the replica-set dial
// config the tests share.
type replicatedFleet struct {
	fs    [3]*vfs.MemFS
	srv   [3]*dstore.Server
	addrs [3]string
}

func startFleet(t *testing.T) *replicatedFleet {
	t.Helper()
	f := &replicatedFleet{}
	for i := range f.srv {
		f.fs[i] = vfs.NewMem()
		srv, err := dstore.NewServer(f.fs[i], "127.0.0.1:0", 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		f.srv[i] = srv
		f.addrs[i] = srv.Addr()
		t.Cleanup(func() { srv.Close() })
	}
	return f
}

func (f *replicatedFleet) restart(t *testing.T, i int) {
	t.Helper()
	srv, err := dstore.NewServer(f.fs[i], f.addrs[i], 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.srv[i] = srv
	t.Cleanup(func() { srv.Close() })
}

func fleetConfig() dstore.ReplicaConfig {
	return dstore.ReplicaConfig{
		WriteQuorum: 2,
		Client: dstore.Config{
			Conns:          2,
			DialTimeout:    200 * time.Millisecond,
			RequestTimeout: 2 * time.Second,
			MaxAttempts:    3,
			BackoffBase:    time.Millisecond,
			BackoffMax:     20 * time.Millisecond,
		},
		Dirs:        []string{"db"},
		ResyncEvery: 25 * time.Millisecond,
	}
}

// waitInSync blocks until n replicas report InSync (resync promotion done).
func waitInSync(t *testing.T, rs *dstore.ReplicaSet, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		in := 0
		for _, st := range rs.Replicas() {
			if st.InSync {
				in++
			}
		}
		if in >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d replicas in sync after 5s: %+v", in, n, rs.Replicas())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDBSurvivesReplicaKillMidWorkload runs an encrypted database over a
// 3-replica quorum-2 fleet and kills one replica in the middle of the
// write workload: every write must still be acknowledged (two replicas
// satisfy quorum), reads must keep being served, and after the node
// returns, re-sync must promote it back to full membership.
func TestDBSurvivesReplicaKillMidWorkload(t *testing.T) {
	fleet := startFleet(t)
	rs, err := dstore.DialReplicaSet(fleetConfig(), fleet.addrs[0], fleet.addrs[1], fleet.addrs[2])
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	store := kds.NewStore(kds.DefaultPolicy())
	cfg := Config{
		Mode: ModeSHIELD, FS: rs,
		KDS:           kds.NewLocal(store, "compute-1"),
		WALBufferSize: 512,
	}
	db, err := Open("db", cfg, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const puts = 3000
	for i := 0; i < puts; i++ {
		if i == puts/2 {
			fleet.srv[2].Close() // one node dies mid-workload
		}
		if err := db.Put([]byte(fmt.Sprintf("k%06d", i)), []byte(fmt.Sprintf("value-%06d", i))); err != nil {
			t.Fatalf("Put %d with one replica down: %v", i, err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatalf("Flush with one replica down: %v", err)
	}
	for _, i := range []int{0, puts / 2, puts - 1} {
		v, err := db.Get([]byte(fmt.Sprintf("k%06d", i)))
		if err != nil || string(v) != fmt.Sprintf("value-%06d", i) {
			t.Fatalf("Get k%06d = %q, %v", i, v, err)
		}
	}

	// The node comes back; re-sync must repair and promote it without any
	// help from the engine.
	fleet.restart(t, 2)
	waitInSync(t, rs, 3)
	for i := puts; i < puts+200; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%06d", i)), []byte(fmt.Sprintf("value-%06d", i))); err != nil {
			t.Fatalf("Put %d after rejoin: %v", i, err)
		}
	}
}

// TestDBDegradesBelowQuorumAndRecovers drops the fleet below write quorum:
// writes must fail with ErrNoQuorum (flowing through the engine's degraded
// handling, not silently succeeding on one copy), reads must still be
// served from the surviving replica, and once the nodes return a
// controlled reopen must restore full service with nothing lost.
func TestDBDegradesBelowQuorumAndRecovers(t *testing.T) {
	fleet := startFleet(t)
	rs, err := dstore.DialReplicaSet(fleetConfig(), fleet.addrs[0], fleet.addrs[1], fleet.addrs[2])
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	store := kds.NewStore(kds.DefaultPolicy())
	cfg := Config{
		Mode: ModeSHIELD, FS: rs,
		KDS:           kds.NewLocal(store, "compute-1"),
		WALBufferSize: 512,
	}
	// Synced writes: acked means durable on a write quorum, so the quorum
	// loss must surface on the Put itself rather than hide in the buffer.
	opts := smallOpts()
	opts.SyncWrites = true
	db, err := Open("db", cfg, opts)
	if err != nil {
		t.Fatal(err)
	}

	const puts = 1000
	for i := 0; i < puts; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%06d", i)), []byte(fmt.Sprintf("value-%06d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	// Two of three nodes die: quorum 2 is unreachable.
	fleet.srv[1].Close()
	fleet.srv[2].Close()

	var putErr error
	for i := 0; i < 50; i++ {
		if putErr = db.Put([]byte("below-quorum"), []byte("x")); putErr != nil {
			break
		}
	}
	if putErr == nil {
		t.Fatal("writes kept succeeding below write quorum")
	}
	if !errors.Is(putErr, dstore.ErrNoQuorum) {
		t.Fatalf("below-quorum write failed with %v, want ErrNoQuorum in the chain", putErr)
	}

	// Reads keep being served from the surviving replica.
	for _, i := range []int{0, puts / 2, puts - 1} {
		v, err := db.Get([]byte(fmt.Sprintf("k%06d", i)))
		if err != nil || string(v) != fmt.Sprintf("value-%06d", i) {
			t.Fatalf("read-any below quorum: Get k%06d = %q, %v", i, v, err)
		}
	}

	// The nodes return; re-sync reclaims them. The engine may have latched
	// degraded (read-only) mode on the failed write, so recovery is the
	// operator's controlled reopen — same stack, healed fleet.
	fleet.restart(t, 1)
	fleet.restart(t, 2)
	waitInSync(t, rs, 3)
	if err := db.Close(); err != nil {
		t.Logf("close after degraded window: %v", err)
	}
	// The close flushed through write handles opened before the kill; the
	// restarted servers reject them, demoting the rejoined replicas again.
	// The resync loop re-promotes them — wait it out before reopening.
	waitInSync(t, rs, 3)
	db2, err := Open("db", cfg, opts)
	if err != nil {
		t.Fatalf("reopen after quorum restored: %v", err)
	}
	defer db2.Close()
	for _, i := range []int{0, puts / 2, puts - 1} {
		v, err := db2.Get([]byte(fmt.Sprintf("k%06d", i)))
		if err != nil || string(v) != fmt.Sprintf("value-%06d", i) {
			t.Fatalf("after recovery: Get k%06d = %q, %v", i, v, err)
		}
	}
	if err := db2.Put([]byte("after-recovery"), []byte("ok")); err != nil {
		t.Fatalf("write after quorum restored: %v", err)
	}
}
