package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"shield/internal/kds"
	"shield/internal/lsm"
	"shield/internal/seccache"
	"shield/internal/vfs"
)

// newCrashKDS returns an in-memory KDS with unlimited fetches: the KDS is a
// separate service and survives the storage-server "crash", and recovery
// re-fetches DEKs as often as it needs.
func newCrashKDS() kds.Service {
	return kds.NewLocal(kds.NewStore(kds.Policy{}), "server-1")
}

func shieldCrashConfig(fs vfs.FS, svc kds.Service, cache *seccache.Cache) Config {
	return Config{
		Mode:          ModeSHIELD,
		FS:            fs,
		KDS:           svc,
		Cache:         cache,
		WALBufferSize: 512,
	}
}

func shieldCrashLSMOptions() lsm.Options {
	return lsm.Options{
		SyncWrites:          true,
		MemtableSize:        1 << 10,
		L0CompactionTrigger: 2,
		BaseLevelSize:       8 << 10,
		TargetFileSize:      4 << 10,
		MaxManifestFileSize: 2 << 10,
	}
}

// TestShieldCrashRecoveryEnumeration is the full-stack version of the lsm
// crash harness: SHIELD encryption (per-file DEKs from a KDS, buffered WAL,
// secure DEK cache on the same failing disk) over a power-loss-simulating
// filesystem. Every sync boundary must yield a recoverable image with all
// synced-acked writes intact.
func TestShieldCrashRecoveryEnumeration(t *testing.T) {
	cfs := vfs.NewCrash(11)
	type point struct {
		event string
		img   *vfs.CrashImage
		acked int64
	}
	var (
		mu     sync.Mutex
		points []point
		acked  atomic.Int64
	)
	cfs.AfterSync(func(event string, img *vfs.CrashImage) {
		mu.Lock()
		points = append(points, point{event, img, acked.Load()})
		mu.Unlock()
	})

	svc := newCrashKDS()
	if err := cfs.MkdirAll("keys"); err != nil {
		t.Fatal(err)
	}
	cache, err := seccache.Open(cfs, "keys/cache.bin", []byte("pk"))
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open("db", shieldCrashConfig(cfs, svc, cache), shieldCrashLSMOptions())
	if err != nil {
		t.Fatal(err)
	}
	const nops = 100
	value := func(i int) []byte {
		return []byte(fmt.Sprintf("v%04d-%048d", i, i))
	}
	for i := 0; i < nops; i++ {
		k := fmt.Sprintf("k%03d", i%60)
		if err := db.Put([]byte(k), value(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		acked.Add(1)
		if (i+1)%25 == 0 {
			if err := db.Flush(); err != nil {
				t.Fatalf("flush at %d: %v", i, err)
			}
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	pts := points
	mu.Unlock()
	if len(pts) < 50 {
		t.Fatalf("only %d crash points, want >= 50", len(pts))
	}
	t.Logf("enumerated %d crash points", len(pts))

	for i, pt := range pts {
		for _, mode := range []string{"strict", "torn"} {
			var fs *vfs.MemFS
			if mode == "strict" {
				fs = pt.img.Strict()
			} else {
				fs = pt.img.Torn(0)
			}
			// The secure cache is on the same crashed disk; a corrupt image
			// must cold-start it, not fail the open.
			c2, err := seccache.Open(fs, "keys/cache.bin", []byte("pk"))
			if err != nil {
				t.Fatalf("%s point %d (%s): cache reopen: %v", mode, i, pt.event, err)
			}
			db2, err := Open("db", shieldCrashConfig(fs, svc, c2), shieldCrashLSMOptions())
			if err != nil {
				t.Fatalf("%s point %d (%s): reopen: %v\nimage:\n%s", mode, i, pt.event, err, pt.img)
			}
			// Expected state from the acked prefix, allowing the in-flight op.
			expected := make(map[string][]byte)
			for j := int64(0); j < pt.acked; j++ {
				expected[fmt.Sprintf("k%03d", j%60)] = value(int(j))
			}
			var inflightKey string
			var inflightVal []byte
			if pt.acked < nops {
				inflightKey = fmt.Sprintf("k%03d", pt.acked%60)
				inflightVal = value(int(pt.acked))
			}
			for k, want := range expected {
				got, err := db2.Get([]byte(k))
				if err != nil {
					t.Fatalf("%s point %d (%s, acked=%d): Get(%s): %v", mode, i, pt.event, pt.acked, k, err)
				}
				if string(got) == string(want) {
					continue
				}
				if k == inflightKey && string(got) == string(inflightVal) {
					continue
				}
				t.Fatalf("%s point %d (%s, acked=%d): Get(%s) = %q, want %q", mode, i, pt.event, pt.acked, k, got, want)
			}
			db2.Close()
		}
	}
}

// TestShieldWALBufferLossWindow is the property test for the
// application-managed WAL buffer (Section 5.3) under power loss with
// SyncWrites off: the surviving writes are always a contiguous prefix of
// commit order (the loss window is exactly the acked-but-unflushed tail),
// and everything written before a completed Flush always survives.
func TestShieldWALBufferLossWindow(t *testing.T) {
	cfs := vfs.NewCrash(3)
	svc := newCrashKDS()
	cfg := shieldCrashConfig(cfs, svc, nil)

	opts := lsm.Options{
		MemtableSize:        1 << 20, // no size-triggered flushes
		L0CompactionTrigger: 100,
	}
	db, err := Open("db", cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	type snap struct {
		img     *vfs.CrashImage
		acked   int
		durable int // acked ops covered by the last completed Flush
	}
	var snaps []snap
	const nops = 60
	durable := 0
	for i := 0; i < nops; i++ {
		k := fmt.Sprintf("op-%04d", i)
		if err := db.Put([]byte(k), []byte(strings.Repeat("x", 32)+k)); err != nil {
			t.Fatal(err)
		}
		if (i+1)%17 == 0 {
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
			durable = i + 1
		}
		snaps = append(snaps, snap{img: cfs.Snapshot(), acked: i + 1, durable: durable})
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	for i, sn := range snaps {
		for _, mode := range []string{"strict", "torn"} {
			var fs *vfs.MemFS
			if mode == "strict" {
				fs = sn.img.Strict()
			} else {
				fs = sn.img.Torn(0)
			}
			db2, err := Open("db", shieldCrashConfig(fs, svc, nil), opts)
			if err != nil {
				t.Fatalf("%s snap %d: reopen: %v", mode, i, err)
			}
			// Count survivors and check prefix-ness: if op j survived, every
			// op before j must have survived too.
			survived := 0
			for j := 0; j < sn.acked; j++ {
				_, err := db2.Get([]byte(fmt.Sprintf("op-%04d", j)))
				switch {
				case err == nil:
					if survived != j {
						t.Fatalf("%s snap %d: op %d survived but op %d did not — loss window is not a contiguous tail",
							mode, i, j, survived)
					}
					survived = j + 1
				case errors.Is(err, lsm.ErrNotFound):
					// keep scanning to catch out-of-order survival
				default:
					t.Fatalf("%s snap %d: Get(op-%04d): %v", mode, i, j, err)
				}
			}
			if survived < sn.durable {
				t.Fatalf("%s snap %d: only %d ops survived, but %d were flushed before the crash",
					mode, i, survived, sn.durable)
			}
			db2.Close()
		}
	}
}

// TestShieldScrubWithKeys: the scrub decrypts with the engine's own wrapper,
// verifies every block, and quarantines a bit-flipped encrypted SST.
func TestShieldScrubWithKeys(t *testing.T) {
	fs := vfs.NewMem()
	svc := newCrashKDS()
	cfg := shieldCrashConfig(fs, svc, nil)
	opts := lsm.Options{MemtableSize: 16 << 10, L0CompactionTrigger: 100}
	db, err := Open("db", cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%04d", i)), make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
		if (i+1)%50 == 0 {
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := Scrub("db", cfg, lsm.ScrubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("clean SHIELD DB not clean:\n%s", rep)
	}

	// Bit-flip an SST body (past the plaintext header) and re-scrub.
	var victim string
	entries, err := fs.List("db")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name, ".sst") {
			victim = "db/" + e.Name
			break
		}
	}
	data, err := vfs.ReadFile(fs, victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x20
	if err := vfs.WriteFile(fs, victim, data); err != nil {
		t.Fatal(err)
	}
	rep, err = Scrub("db", cfg, lsm.ScrubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Quarantined != 1 || !rep.ManifestRepaired {
		t.Fatalf("quarantined=%d repaired=%v, want 1/true\n%s", rep.Quarantined, rep.ManifestRepaired, rep)
	}
	// The DB reopens cleanly around the quarantined file.
	db2, err := Open("db", cfg, opts)
	if err != nil {
		t.Fatalf("reopen after scrub: %v", err)
	}
	db2.Close()
}

// TestShieldScrubKeylessRefusesManifest: scrubbing an encrypted database
// without keys must refuse to "repair" the unreadable manifest rather than
// discard the tree.
func TestShieldScrubKeylessRefuses(t *testing.T) {
	fs := vfs.NewMem()
	svc := newCrashKDS()
	cfg := shieldCrashConfig(fs, svc, nil)
	db, err := Open("db", cfg, lsm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	keyless := Config{Mode: ModeNone, FS: fs}
	if _, err := Scrub("db", keyless, lsm.ScrubOptions{}); err == nil {
		t.Fatal("keyless scrub of an encrypted DB did not refuse")
	} else if !strings.Contains(err.Error(), "encrypted") {
		t.Fatalf("unexpected refusal: %v", err)
	}
	// Nothing was harmed: the DB still opens with keys.
	db2, err := Open("db", cfg, lsm.Options{})
	if err != nil {
		t.Fatalf("reopen after keyless scrub attempt: %v", err)
	}
	defer db2.Close()
	if _, err := db2.Get([]byte("k")); err != nil {
		t.Fatal(err)
	}
}
