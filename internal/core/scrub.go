package core

import (
	"encoding/binary"

	"shield/internal/encfs"
	"shield/internal/lsm"
)

// IsShieldHeader reports whether a file's raw prefix carries the plaintext
// SHIELD per-file header (magic "SHLD").
func IsShieldHeader(prefix []byte) bool {
	return len(prefix) >= 4 && binary.LittleEndian.Uint32(prefix[0:4]) == shieldMagic
}

// EncryptedSniffer recognizes both of the paper's encrypted on-disk formats
// from a raw file prefix. Scrubs use it to skip (rather than quarantine)
// files that fail verification only because the scrubber lacks the key.
func EncryptedSniffer(prefix []byte) bool {
	return IsShieldHeader(prefix) || encfs.IsEncrypted(prefix)
}

// Scrub runs the offline corruption scrub on the database in dir with cfg's
// encryption design applied: files are decrypted exactly as the engine
// would decrypt them, per-block MACs/checksums are verified under the
// DEKs cfg can resolve, and provably corrupt files are quarantined into
// <dir>/lost/. Files in an encrypted format whose key cfg cannot resolve
// (e.g. the KDS is unreachable, or scrubbing keyless with ModeNone) are
// skipped, never quarantined. The database must not be open on dir.
func Scrub(dir string, cfg Config, opts lsm.ScrubOptions) (*lsm.ScrubReport, error) {
	fs, err := cfg.BuildFS()
	if err != nil {
		return nil, err
	}
	wrapper, err := cfg.BuildWrapper()
	if err != nil {
		return nil, err
	}
	opts.Wrapper = wrapper
	if opts.Encrypted == nil {
		opts.Encrypted = EncryptedSniffer
	}
	// Anchor rollback detection in the secure cache, matching what Open
	// does: the scrub then reports stale-epoch verdicts for rolled-back
	// stores and (with AllowRollback) re-stamps them past the sealed floor.
	if opts.Freshness == nil && cfg.Mode == ModeSHIELD && cfg.Cache != nil {
		opts.Freshness = cacheFreshness{cache: cfg.Cache, store: dir}
	}
	return lsm.Scrub(fs, dir, opts)
}
