package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestPutGet(t *testing.T) {
	c := New(1 << 20)
	k := Key{File: 1, Offset: 0}
	c.Put(k, "hello", 5)
	v, ok := c.Get(k)
	if !ok || v.(string) != "hello" {
		t.Fatalf("get: %v %v", v, ok)
	}
	if _, ok := c.Get(Key{File: 2}); ok {
		t.Fatal("phantom hit")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats %d/%d", hits, misses)
	}
}

func TestEvictionUnderPressure(t *testing.T) {
	c := New(8 * 1024) // 1 KiB per shard
	for i := 0; i < 1000; i++ {
		c.Put(Key{File: 1, Offset: uint64(i)}, i, 100)
	}
	if used := c.Used(); used > 8*1024 {
		t.Fatalf("capacity exceeded: %d", used)
	}
	// The most recent entries should largely survive; at least one of the
	// last few must be present.
	found := false
	for i := 995; i < 1000; i++ {
		if _, ok := c.Get(Key{File: 1, Offset: uint64(i)}); ok {
			found = true
		}
	}
	if !found {
		t.Fatal("recent entries all evicted (not LRU)")
	}
}

func TestUpdateExistingKeyAdjustsCharge(t *testing.T) {
	c := New(8 * 1024)
	k := Key{File: 1, Offset: 42}
	c.Put(k, "a", 100)
	c.Put(k, "bb", 200)
	if used := c.Used(); used != 200 {
		t.Fatalf("used %d after replace", used)
	}
	v, _ := c.Get(k)
	if v.(string) != "bb" {
		t.Fatal("stale value after replace")
	}
}

func TestEvictFile(t *testing.T) {
	c := New(1 << 20)
	for i := 0; i < 100; i++ {
		c.Put(Key{File: 1, Offset: uint64(i)}, i, 10)
		c.Put(Key{File: 2, Offset: uint64(i)}, i, 10)
	}
	c.EvictFile(1)
	for i := 0; i < 100; i++ {
		if _, ok := c.Get(Key{File: 1, Offset: uint64(i)}); ok {
			t.Fatal("evicted file entry served")
		}
	}
	survivors := 0
	for i := 0; i < 100; i++ {
		if _, ok := c.Get(Key{File: 2, Offset: uint64(i)}); ok {
			survivors++
		}
	}
	if survivors == 0 {
		t.Fatal("EvictFile removed unrelated entries")
	}
}

func TestZeroCapacityDisables(t *testing.T) {
	c := New(0)
	c.Put(Key{File: 1}, "x", 1)
	if _, ok := c.Get(Key{File: 1}); ok {
		t.Fatal("zero-capacity cache stored an entry")
	}
}

// Regression: capacities below nShards used to round every shard's maxSize
// to 0, silently disabling the cache while Stats/Used pretended it existed.
func TestSmallCapacityStillCaches(t *testing.T) {
	for capacity := int64(1); capacity < 2*nShards; capacity++ {
		c := New(capacity)
		var total int64
		for i := range c.shards {
			total += c.shards[i].maxSize
		}
		if total != capacity {
			t.Fatalf("capacity %d: shard maxSizes sum to %d", capacity, total)
		}
		// At least one charge-1 entry must be cacheable somewhere: probe
		// keys until one lands on a shard with nonzero capacity.
		cached := false
		for i := 0; i < 64 && !cached; i++ {
			k := Key{File: uint64(i), Offset: uint64(i)}
			c.Put(k, i, 1)
			_, cached = c.Get(k)
		}
		if !cached {
			t.Fatalf("capacity %d: no entry cacheable", capacity)
		}
	}
}

// Regression for the Get data race: Get used to read entry.value after
// releasing the shard mutex while a concurrent Put on the same key updated
// it under the lock. Run with -race; the checker flags the old code. The
// value/generation pairing also catches torn reads without -race.
func TestConcurrentGetPutSameKeyRace(t *testing.T) {
	c := New(1 << 20)
	type val struct{ a, b int }
	k := Key{File: 7, Offset: 7}
	c.Put(k, val{0, 0}, 8)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 1; i < 5000; i++ {
			c.Put(k, val{i, i}, 8)
		}
	}()
	for {
		select {
		case <-done:
			return
		default:
		}
		if v, ok := c.Get(k); ok {
			if vv := v.(val); vv.a != vv.b {
				t.Fatalf("torn read: %+v", vv)
			}
		}
	}
}

// Stress: concurrent Get/Put/EvictFile across goroutines, with key overlap
// between workers so the same keys are updated and read concurrently.
// Primarily a -race target.
func TestConcurrentStress(t *testing.T) {
	c := New(64 << 10)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := Key{File: uint64(i % 7), Offset: uint64(i % 101)}
				switch i % 5 {
				case 0, 1:
					c.Put(k, fmt.Sprintf("%d-%d", g, i), int64(32+i%32))
				case 2, 3:
					if v, ok := c.Get(k); ok {
						_ = v.(string)
					}
				default:
					if i%250 == 0 {
						c.EvictFile(uint64(i % 7))
					} else {
						c.Used()
						c.Stats()
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestConcurrentAccess(t *testing.T) {
	c := New(1 << 20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				k := Key{File: uint64(g), Offset: uint64(i % 50)}
				c.Put(k, fmt.Sprintf("%d-%d", g, i), 64)
				if v, ok := c.Get(k); ok {
					_ = v.(string)
				}
				if i%100 == 0 {
					c.EvictFile(uint64(g))
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestPinnedSurvivesChurnStorm: pinned entries must survive a churn storm
// that turns over the whole LRU class many times; unpinned entries still
// evict, and the charge accounting stays exact throughout.
func TestPinnedSurvivesChurnStorm(t *testing.T) {
	const capacity = 8 * 1024
	c := New(capacity)

	// Pin a handful of entries (file 100) before the storm.
	const nPinned, pinCharge = 10, 64
	for i := 0; i < nPinned; i++ {
		c.PutPinned(Key{File: 100, Offset: uint64(i)}, fmt.Sprintf("pin-%d", i), pinCharge)
	}
	if got := c.Pinned(); got != nPinned*pinCharge {
		t.Fatalf("Pinned() = %d, want %d", got, nPinned*pinCharge)
	}

	// Storm: push ~100x capacity of unpinned churn through the cache.
	for i := 0; i < 8000; i++ {
		c.Put(Key{File: 1, Offset: uint64(i)}, i, 100)
	}

	// Every pinned entry survived, with its value intact.
	for i := 0; i < nPinned; i++ {
		v, ok := c.Get(Key{File: 100, Offset: uint64(i)})
		if !ok {
			t.Fatalf("pinned entry %d evicted by churn", i)
		}
		if want := fmt.Sprintf("pin-%d", i); v.(string) != want {
			t.Fatalf("pinned entry %d = %v, want %q", i, v, want)
		}
	}
	// Unpinned entries still evict: the early storm keys are long gone.
	for i := 0; i < 10; i++ {
		if _, ok := c.Get(Key{File: 1, Offset: uint64(i)}); ok {
			t.Fatalf("storm key %d survived a 100x-capacity churn", i)
		}
	}
	// Exact accounting: total within capacity, pinned charge unchanged.
	if used := c.Used(); used > capacity {
		t.Fatalf("Used() = %d exceeds capacity %d (pins within budget)", used, capacity)
	}
	if got := c.Pinned(); got != nPinned*pinCharge {
		t.Fatalf("Pinned() = %d after storm, want %d", got, nPinned*pinCharge)
	}
}

// TestPinnedChargeAccounting covers the pinned-class bookkeeping edges:
// update-in-place recharges, promotion of an existing LRU entry, Put on a
// pinned key staying pinned, and EvictFile as the only pin release.
func TestPinnedChargeAccounting(t *testing.T) {
	c := New(1 << 20)
	k := Key{File: 5, Offset: 0}

	// Promote an existing unpinned entry: charge moves classes, not doubled.
	c.Put(k, "lru", 100)
	c.PutPinned(k, "pinned", 150)
	if used, pinned := c.Used(), c.Pinned(); used != 150 || pinned != 150 {
		t.Fatalf("after promote: used=%d pinned=%d, want 150/150", used, pinned)
	}

	// Re-pin with a new charge: updated in place.
	c.PutPinned(k, "pinned2", 80)
	if used, pinned := c.Used(), c.Pinned(); used != 80 || pinned != 80 {
		t.Fatalf("after recharge: used=%d pinned=%d, want 80/80", used, pinned)
	}

	// Plain Put on a pinned key keeps it pinned (L0 block re-read path).
	c.Put(k, "pinned3", 120)
	if used, pinned := c.Used(), c.Pinned(); used != 120 || pinned != 120 {
		t.Fatalf("after Put on pinned key: used=%d pinned=%d, want 120/120", used, pinned)
	}
	if v, ok := c.Get(k); !ok || v.(string) != "pinned3" {
		t.Fatalf("pinned value after Put = %v,%v", v, ok)
	}

	// EvictFile is the release.
	c.EvictFile(5)
	if used, pinned := c.Used(), c.Pinned(); used != 0 || pinned != 0 {
		t.Fatalf("after EvictFile: used=%d pinned=%d, want 0/0", used, pinned)
	}
	if _, ok := c.Get(k); ok {
		t.Fatal("pinned entry served after EvictFile")
	}
}

// TestPinnedConcurrentChurn hammers pinned and unpinned traffic from many
// goroutines (a -race target) and then checks the invariants: pins all
// present, accounting exact.
func TestPinnedConcurrentChurn(t *testing.T) {
	const capacity = 16 * 1024
	c := New(capacity)
	const nPinned, pinCharge = 16, 32
	for i := 0; i < nPinned; i++ {
		c.PutPinned(Key{File: 200, Offset: uint64(i)}, i, pinCharge)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4000; i++ {
				switch i % 4 {
				case 0, 1:
					c.Put(Key{File: uint64(g), Offset: uint64(i)}, i, 100)
				case 2:
					c.Get(Key{File: 200, Offset: uint64(i % nPinned)})
				default:
					if i%500 == 0 {
						c.EvictFile(uint64(g))
					} else {
						c.Pinned()
						c.Used()
					}
				}
			}
		}(g)
	}
	wg.Wait()

	for i := 0; i < nPinned; i++ {
		if _, ok := c.Get(Key{File: 200, Offset: uint64(i)}); !ok {
			t.Fatalf("pinned entry %d lost during concurrent churn", i)
		}
	}
	if got := c.Pinned(); got != nPinned*pinCharge {
		t.Fatalf("Pinned() = %d, want %d", got, nPinned*pinCharge)
	}
	if used := c.Used(); used > capacity {
		t.Fatalf("Used() = %d exceeds capacity %d", used, capacity)
	}
}

// TestPinsMayExceedCapacity: pinning beyond capacity is allowed (the caller
// bounds pins); the LRU class is starved but pinned entries stay readable.
func TestPinsMayExceedCapacity(t *testing.T) {
	c := New(64) // 8 per shard
	for i := 0; i < 32; i++ {
		c.PutPinned(Key{File: 1, Offset: uint64(i)}, i, 100)
	}
	for i := 0; i < 32; i++ {
		if _, ok := c.Get(Key{File: 1, Offset: uint64(i)}); !ok {
			t.Fatalf("over-budget pinned entry %d not served", i)
		}
	}
	if got, want := c.Pinned(), int64(32*100); got != want {
		t.Fatalf("Pinned() = %d, want %d", got, want)
	}
	// LRU inserts are shed immediately: pins already exceed capacity.
	c.Put(Key{File: 2, Offset: 0}, "x", 10)
	if used := c.Used(); used != 32*100 {
		t.Fatalf("Used() = %d, want %d (unpinned insert must be shed)", used, 32*100)
	}
}
