// Package cache provides a size-bounded, sharded LRU cache used for the LSM
// block cache (decrypted data blocks) and the open-table cache.
package cache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Key identifies a cache entry: a file number plus an offset within it.
type Key struct {
	File   uint64
	Offset uint64
}

type entry struct {
	key    Key
	value  any
	charge int64
}

// shard is one LRU segment. Pinned entries live in their own map, outside
// the recency list, so the eviction loop never has to skip over them: it
// only ever sees evictable entries and stays O(evicted).
type shard struct {
	mu      sync.Mutex
	ll      *list.List
	items   map[Key]*list.Element
	pinned  map[Key]*entry
	used    int64 // total charge: LRU entries + pinned entries
	pinUsed int64 // charge held by pinned entries (subset of used)
	maxSize int64
}

// LRU is a sharded, thread-safe LRU cache bounded by total charge.
type LRU struct {
	shards [nShards]shard
	// Hit/miss counters are lock-free: a mutex here would serialize all
	// shards through one cache line on the hottest read-path operation,
	// defeating the sharding.
	nHit  atomic.Int64
	nMiss atomic.Int64
}

const nShards = 8

// New returns an LRU bounded by capacity bytes of charge. The capacity is
// spread across the shards with the remainder distributed one byte at a
// time, so every positive capacity yields at least one shard that can hold
// an entry. A capacity <= 0 is the disabled sentinel: every Get misses and
// Put is a no-op (per-shard maxSize 0), though Stats still counts the
// misses.
func New(capacity int64) *LRU {
	c := &LRU{}
	per := capacity / nShards
	rem := capacity % nShards
	for i := range c.shards {
		c.shards[i].ll = list.New()
		c.shards[i].items = make(map[Key]*list.Element)
		c.shards[i].pinned = make(map[Key]*entry)
		c.shards[i].maxSize = per
		if int64(i) < rem {
			c.shards[i].maxSize++
		}
	}
	return c
}

func (c *LRU) shardFor(k Key) *shard {
	h := k.File*0x9e3779b97f4a7c15 ^ k.Offset*0xbf58476d1ce4e5b9
	return &c.shards[h%nShards]
}

// Get returns the cached value for k, if present. The value is read while
// the shard lock is held: a concurrent Put updating the same key writes
// entry.value under that lock, so reading it after unlock would race and
// could hand the caller a torn value.
func (c *LRU) Get(k Key) (any, bool) {
	s := c.shardFor(k)
	s.mu.Lock()
	var v any
	var ok bool
	if e, pinnedHit := s.pinned[k]; pinnedHit {
		// Pinned entries carry no recency: they cannot be evicted anyway.
		v, ok = e.value, true
	} else if el, lruHit := s.items[k]; lruHit {
		s.ll.MoveToFront(el)
		v, ok = el.Value.(*entry).value, true
	}
	s.mu.Unlock()

	if !ok {
		c.nMiss.Add(1)
		return nil, false
	}
	c.nHit.Add(1)
	return v, true
}

// Put inserts value under k with the given charge, evicting LRU entries to
// stay within capacity. A key that is currently pinned stays pinned: the
// pinned entry is updated in place.
func (c *LRU) Put(k Key, value any, charge int64) {
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.maxSize <= 0 {
		return
	}
	if e, ok := s.pinned[k]; ok {
		s.used += charge - e.charge
		s.pinUsed += charge - e.charge
		e.value, e.charge = value, charge
		return
	}
	if el, ok := s.items[k]; ok {
		e := el.Value.(*entry)
		s.used += charge - e.charge
		e.value, e.charge = value, charge
		s.ll.MoveToFront(el)
	} else {
		el := s.ll.PushFront(&entry{key: k, value: value, charge: charge})
		s.items[k] = el
		s.used += charge
	}
	s.evictLocked()
}

// PutPinned inserts value under k into the pinned charge class: the entry
// counts against capacity but is never evicted, only removed by EvictFile.
// Unpinned overflow is shed to make room; if pinned charge alone exceeds the
// shard's capacity the shard runs over budget (pins are a correctness-free
// accounting promise, the caller bounds what it pins). An existing unpinned
// entry under k is promoted.
func (c *LRU) PutPinned(k Key, value any, charge int64) {
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.maxSize <= 0 {
		return
	}
	if el, ok := s.items[k]; ok {
		e := el.Value.(*entry)
		s.ll.Remove(el)
		delete(s.items, k)
		s.used -= e.charge
	}
	if e, ok := s.pinned[k]; ok {
		s.used += charge - e.charge
		s.pinUsed += charge - e.charge
		e.value, e.charge = value, charge
	} else {
		s.pinned[k] = &entry{key: k, value: value, charge: charge}
		s.used += charge
		s.pinUsed += charge
	}
	s.evictLocked()
}

// evictLocked sheds unpinned LRU entries until the shard fits its capacity
// or only pinned charge remains. Shard mutex held.
func (s *shard) evictLocked() {
	for s.used > s.maxSize {
		back := s.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry)
		s.ll.Remove(back)
		delete(s.items, e.key)
		s.used -= e.charge
	}
}

// EvictFile drops all entries belonging to file — called when an SST is
// deleted so stale blocks cannot be served.
func (c *LRU) EvictFile(file uint64) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.ll.Front(); el != nil; {
			next := el.Next()
			e := el.Value.(*entry)
			if e.key.File == file {
				s.ll.Remove(el)
				delete(s.items, e.key)
				s.used -= e.charge
			}
			el = next
		}
		// Deleting the file releases its pins too — the only way pinned
		// charge is ever reclaimed.
		for k, e := range s.pinned {
			if k.File == file {
				delete(s.pinned, k)
				s.used -= e.charge
				s.pinUsed -= e.charge
			}
		}
		s.mu.Unlock()
	}
}

// Stats returns cumulative hit and miss counts.
func (c *LRU) Stats() (hits, misses int64) {
	return c.nHit.Load(), c.nMiss.Load()
}

// Used returns the total charge currently held (pinned included).
func (c *LRU) Used() int64 {
	var n int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.used
		s.mu.Unlock()
	}
	return n
}

// Pinned returns the charge held by the pinned class.
func (c *LRU) Pinned() int64 {
	var n int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.pinUsed
		s.mu.Unlock()
	}
	return n
}
