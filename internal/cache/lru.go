// Package cache provides a size-bounded, sharded LRU cache used for the LSM
// block cache (decrypted data blocks) and the open-table cache.
package cache

import (
	"container/list"
	"sync"
)

// Key identifies a cache entry: a file number plus an offset within it.
type Key struct {
	File   uint64
	Offset uint64
}

type entry struct {
	key    Key
	value  any
	charge int64
}

// shard is one LRU segment.
type shard struct {
	mu      sync.Mutex
	ll      *list.List
	items   map[Key]*list.Element
	used    int64
	maxSize int64
}

// LRU is a sharded, thread-safe LRU cache bounded by total charge.
type LRU struct {
	shards [nShards]shard
	nHit   int64
	nMiss  int64
	statMu sync.Mutex
}

const nShards = 8

// New returns an LRU bounded by capacity bytes of charge. A capacity of 0
// disables caching (every Get misses, Put is a no-op).
func New(capacity int64) *LRU {
	c := &LRU{}
	per := capacity / nShards
	for i := range c.shards {
		c.shards[i].ll = list.New()
		c.shards[i].items = make(map[Key]*list.Element)
		c.shards[i].maxSize = per
	}
	return c
}

func (c *LRU) shardFor(k Key) *shard {
	h := k.File*0x9e3779b97f4a7c15 ^ k.Offset*0xbf58476d1ce4e5b9
	return &c.shards[h%nShards]
}

// Get returns the cached value for k, if present.
func (c *LRU) Get(k Key) (any, bool) {
	s := c.shardFor(k)
	s.mu.Lock()
	el, ok := s.items[k]
	if ok {
		s.ll.MoveToFront(el)
	}
	s.mu.Unlock()

	c.statMu.Lock()
	if ok {
		c.nHit++
	} else {
		c.nMiss++
	}
	c.statMu.Unlock()
	if !ok {
		return nil, false
	}
	return el.Value.(*entry).value, true
}

// Put inserts value under k with the given charge, evicting LRU entries to
// stay within capacity.
func (c *LRU) Put(k Key, value any, charge int64) {
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.maxSize <= 0 {
		return
	}
	if el, ok := s.items[k]; ok {
		e := el.Value.(*entry)
		s.used += charge - e.charge
		e.value, e.charge = value, charge
		s.ll.MoveToFront(el)
	} else {
		el := s.ll.PushFront(&entry{key: k, value: value, charge: charge})
		s.items[k] = el
		s.used += charge
	}
	for s.used > s.maxSize {
		back := s.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry)
		s.ll.Remove(back)
		delete(s.items, e.key)
		s.used -= e.charge
	}
}

// EvictFile drops all entries belonging to file — called when an SST is
// deleted so stale blocks cannot be served.
func (c *LRU) EvictFile(file uint64) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.ll.Front(); el != nil; {
			next := el.Next()
			e := el.Value.(*entry)
			if e.key.File == file {
				s.ll.Remove(el)
				delete(s.items, e.key)
				s.used -= e.charge
			}
			el = next
		}
		s.mu.Unlock()
	}
}

// Stats returns cumulative hit and miss counts.
func (c *LRU) Stats() (hits, misses int64) {
	c.statMu.Lock()
	defer c.statMu.Unlock()
	return c.nHit, c.nMiss
}

// Used returns the total charge currently held.
func (c *LRU) Used() int64 {
	var n int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.used
		s.mu.Unlock()
	}
	return n
}
