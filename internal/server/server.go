// Package server implements the SHIELD serving front-end: a RESP-speaking
// TCP server fronting N hash-partitioned shard instances of the LSM engine.
// Each shard is its own engine — one WAL, one commit loop, one scheduler,
// one block cache — so shards never contend on engine locks; the shared
// pieces (KDS client, secure DEK cache) are wired in by the caller when the
// shards are opened.
//
// The write path is built for coalescing at two levels. Within one
// connection, consecutive SET/DEL commands of a pipelined batch are folded
// into a single engine batch per shard (one commit, one WAL record run).
// Across connections, those per-shard commits land in the engine's commit
// loop, whose group commit merges concurrently arriving batches into one
// WAL sync — the lsm.Metrics.WALSyncs counter makes the effect observable:
// under concurrent load it stays well below the number of synced batches.
package server

import (
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"shield/internal/lsm"
	"shield/internal/metrics"
)

// Engine is the per-shard slice of the LSM engine the server drives.
// *lsm.DB implements it; the simulation substitutes a swappable handle so
// the nemesis can crash and reopen the engine underneath a live server.
type Engine interface {
	Get(key []byte) ([]byte, error)
	Write(b *lsm.Batch, sync bool) error
	Metrics() lsm.Metrics
}

// Config parameterizes a Server.
type Config struct {
	// Shards are the engines; keys are routed by hash. Required, len >= 1.
	Shards []Engine

	// Sync commits every write batch with a WAL fsync. Default true: an
	// acknowledged SET is durable, and group commit keeps the sync count
	// sublinear in the write count. False trades durability for latency
	// (the engine's buffered-WAL mode).
	Sync *bool

	// MaxPipeline bounds how many commands one reader cycle executes before
	// replies are flushed. Default 128 (matching the engine's group-commit
	// window).
	MaxPipeline int

	// IdleTimeout disconnects a connection with no complete command for
	// this long — the slow-client guard. Default 5 minutes.
	IdleTimeout time.Duration

	// WriteTimeout bounds flushing a reply batch to one connection, so one
	// stuck client cannot wedge its handler forever. Default 30 seconds.
	WriteTimeout time.Duration

	// DrainTimeout bounds graceful shutdown: connections that have not
	// finished their in-flight pipeline batch when it expires are closed
	// hard. Default 5 seconds.
	DrainTimeout time.Duration

	// MaxBulkLen bounds one argument's size (default resp.DefaultMaxBulkLen).
	MaxBulkLen int

	// Logger receives connection-level event lines; nil discards.
	Logger func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxPipeline <= 0 {
		c.MaxPipeline = 128
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 5 * time.Minute
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.Sync == nil {
		t := true
		c.Sync = &t
	}
	if c.Logger == nil {
		c.Logger = func(string, ...any) {}
	}
	return c
}

// ShardStats are one shard's serving counters. All fields are atomic; read
// them through Stats.
type ShardStats struct {
	Gets         atomic.Int64 // GET commands routed here
	Sets         atomic.Int64 // SET commands routed here
	Dels         atomic.Int64 // DEL keys routed here
	WriteBatches atomic.Int64 // coalesced engine batches committed
	Errors       atomic.Int64 // commands answered with -ERR
}

// ShardSnapshot is a point-in-time copy of one shard's counters plus the
// engine counters the serving layer is accountable for.
type ShardSnapshot struct {
	Gets         int64
	Sets         int64
	Dels         int64
	WriteBatches int64
	Errors       int64
	Engine       lsm.Metrics
}

// Server is the RESP front-end.
type Server struct {
	cfg  Config
	sync bool

	ln     net.Listener
	lnMu   sync.Mutex
	closed atomic.Bool

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup

	shardStats []*ShardStats
}

// New builds a server over the given shards.
func New(cfg Config) (*Server, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("server: Config.Shards is required")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		sync:  *cfg.Sync,
		conns: make(map[net.Conn]struct{}),
	}
	for range cfg.Shards {
		s.shardStats = append(s.shardStats, &ShardStats{})
	}
	return s, nil
}

// shardFor routes a key to a shard by FNV-1a hash.
func (s *Server) shardFor(key []byte) int {
	if len(s.cfg.Shards) == 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write(key) //nolint:errcheck // fnv never errors
	return int(h.Sum32() % uint32(len(s.cfg.Shards)))
}

// NumShards reports the shard count.
func (s *Server) NumShards() int { return len(s.cfg.Shards) }

// Listen binds addr (use "127.0.0.1:0" for an ephemeral port) without
// starting to accept; Serve then drives the accept loop.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", addr, err)
	}
	s.lnMu.Lock()
	s.ln = ln
	s.lnMu.Unlock()
	return nil
}

// Addr returns the bound address, or "" before Listen.
func (s *Server) Addr() string {
	s.lnMu.Lock()
	ln := s.ln
	s.lnMu.Unlock()
	if ln == nil {
		return ""
	}
	return ln.Addr().String()
}

// Serve accepts connections until Close. It returns nil on a clean
// shutdown.
func (s *Server) Serve() error {
	s.lnMu.Lock()
	ln := s.ln
	s.lnMu.Unlock()
	if ln == nil {
		return errors.New("server: Serve before Listen")
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		if !s.track(conn) {
			conn.Close() //nolint:errcheck // raced with shutdown
			return nil
		}
		metrics.Serve.ConnsOpened.Add(1)
		metrics.Serve.ConnsOpen.Add(1)
		go func() {
			defer metrics.Serve.ConnsOpen.Add(-1)
			defer s.untrack(conn)
			s.handle(conn)
		}()
	}
}

// ListenAndServe is Listen followed by Serve.
func (s *Server) ListenAndServe(addr string) error {
	if err := s.Listen(addr); err != nil {
		return err
	}
	return s.Serve()
}

// track registers conn and accounts its future handler in s.wg inside the
// same connMu critical section as the closed check. Doing the Add here —
// not after track returns — orders it before Close's drain: Close snapshots
// the registry under connMu (openConns) before it starts wg.Wait, so a
// handler can no longer slip its Add in after the Wait already observed a
// zero counter and let Close return with the handler still live.
func (s *Server) track(conn net.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.closed.Load() {
		return false
	}
	s.conns[conn] = struct{}{}
	s.wg.Add(1)
	return true
}

// untrack is the handler-side release for track: deregister, close, and
// only then drop the wg count so Close cannot return before the conn is
// actually off the books.
func (s *Server) untrack(conn net.Conn) {
	s.connMu.Lock()
	delete(s.conns, conn)
	s.connMu.Unlock()
	conn.Close() //nolint:errcheck // idempotent; the handler may have closed already
	s.wg.Done()
}

// Close drains and shuts down: stop accepting, wake idle readers so their
// handlers exit at the next command boundary (in-flight pipeline batches
// finish and flush their replies), then hard-close whatever is left after
// DrainTimeout. Shard engines are NOT closed — the caller owns them.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.lnMu.Lock()
	ln := s.ln
	s.lnMu.Unlock()
	if ln != nil {
		ln.Close() //nolint:errcheck // double-close is the only error path
	}

	// Wake every blocked reader; handlers see closed and exit cleanly.
	now := time.Now()
	for _, c := range s.openConns() {
		c.SetReadDeadline(now) //nolint:errcheck // best effort wake-up
	}

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(s.cfg.DrainTimeout):
		for _, c := range s.openConns() {
			c.Close() //nolint:errcheck // hard drop past the drain budget
		}
		<-done
	}
	return nil
}

// openConns snapshots the registry; deadline pokes and hard closes happen
// outside connMu so no I/O runs under the lock.
func (s *Server) openConns() []net.Conn {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	out := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		out = append(out, c)
	}
	return out
}

// Stats snapshots every shard's serving and engine counters.
func (s *Server) Stats() []ShardSnapshot {
	out := make([]ShardSnapshot, len(s.cfg.Shards))
	for i, sh := range s.cfg.Shards {
		st := s.shardStats[i]
		out[i] = ShardSnapshot{
			Gets:         st.Gets.Load(),
			Sets:         st.Sets.Load(),
			Dels:         st.Dels.Load(),
			WriteBatches: st.WriteBatches.Load(),
			Errors:       st.Errors.Load(),
			Engine:       sh.Metrics(),
		}
	}
	return out
}
