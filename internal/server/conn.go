package server

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"shield/internal/lsm"
	"shield/internal/metrics"
	"shield/internal/resp"
)

// pendingBatch is one shard's coalesced writes for the current segment of a
// pipeline batch, plus the commit verdict the segment's replies consult.
type pendingBatch struct {
	b   *lsm.Batch
	err error
}

// queued is one command awaiting its reply. Replies are emitted strictly in
// command order; writes resolve when their shard's coalesced batch commits.
type queued struct {
	op    string // "SET", "DEL", "GET", or "" for a precomputed reply
	shard int
	key   []byte
	nDel  int64       // DEL: keys folded into this slot's reply
	ready *resp.Value // precomputed reply (PING, ECHO, errors, ...)
}

// handle runs one connection's read-execute-reply loop.
func (s *Server) handle(conn net.Conn) {
	r := resp.NewReader(conn)
	r.MaxBulkLen = s.cfg.MaxBulkLen
	w := resp.NewWriter(conn)

	for {
		// Idle deadline: a connection that cannot produce a complete
		// command within the window is a slow client and is dropped.
		conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout)) //nolint:errcheck
		cmd, err := r.ReadCommand()
		if err != nil {
			if s.replyReadError(conn, w, err) {
				continue
			}
			return
		}

		// Pipelining: keep parsing while bytes are already buffered, so a
		// burst of commands executes as one batch with one reply flush.
		batch := [][][]byte{cmd}
		var stashed error
		for r.Buffered() > 0 && len(batch) < s.cfg.MaxPipeline {
			next, err := r.ReadCommand()
			if err != nil {
				stashed = err
				break
			}
			batch = append(batch, next)
		}

		metrics.Serve.PipelineBatches.Add(1)
		metrics.Serve.Commands.Add(int64(len(batch)))
		if len(batch) > 1 {
			metrics.Serve.PipelinedCmds.Add(int64(len(batch)))
		}

		quit := s.execute(batch, w)
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout)) //nolint:errcheck
		if err := w.Flush(); err != nil {
			metrics.Serve.SlowClientDrops.Add(1)
			s.cfg.Logger("server: %s: reply flush: %v", conn.RemoteAddr(), err)
			return
		}
		if quit {
			return
		}
		if stashed != nil {
			if s.replyReadError(conn, w, stashed) {
				continue
			}
			return
		}
	}
}

// replyReadError answers a ReadCommand failure. It returns true when the
// connection can keep going: a recoverable protocol error gets an -ERR
// reply and the reader is already resynced at the next line. Fatal protocol
// errors get the reply but close the connection (the stream position is
// ambiguous); timeouts and I/O errors just close.
func (s *Server) replyReadError(conn net.Conn, w *resp.Writer, err error) bool {
	if resp.IsProtocolError(err) {
		metrics.Serve.ProtocolErrors.Add(1)
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout)) //nolint:errcheck
		w.Error("ERR Protocol error: " + sanitize(err.Error()))   //nolint:errcheck
		w.Flush()                                                 //nolint:errcheck
		return resp.IsRecoverable(err)
	}
	if isTimeout(err) && !s.closed.Load() {
		metrics.Serve.SlowClientDrops.Add(1)
		s.cfg.Logger("server: %s: idle/slow client dropped", conn.RemoteAddr())
	}
	return false
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// execute runs one pipeline batch: commands are classified in order,
// consecutive writes are folded into one engine batch per shard, and every
// read boundary commits the pending writes before the read executes — so a
// GET observes earlier SETs of the same pipeline and never later ones.
// Replies are written to w strictly in command order. Returns true when the
// client sent QUIT.
func (s *Server) execute(cmds [][][]byte, w *resp.Writer) (quit bool) {
	var (
		pending = make(map[int]*pendingBatch) // shard -> coalesced writes
		segment []queued                      // replies not yet emitted
	)

	write := func(shard int) *lsm.Batch {
		pb := pending[shard]
		if pb == nil {
			pb = &pendingBatch{b: lsm.NewBatch()}
			pending[shard] = pb
		}
		return pb.b
	}

	flush := func() {
		s.commitPending(pending)
		s.emit(segment, pending, w)
		pending = make(map[int]*pendingBatch)
		segment = segment[:0]
	}

	for _, args := range cmds {
		name := strings.ToUpper(string(args[0]))
		switch name {
		case "SET":
			if len(args) != 3 {
				segment = append(segment, errReply("ERR wrong number of arguments for 'set' command"))
				continue
			}
			shard := s.shardFor(args[1])
			write(shard).Put(args[1], args[2])
			s.shardStats[shard].Sets.Add(1)
			segment = append(segment, queued{op: "SET", shard: shard, key: args[1]})
		case "DEL":
			if len(args) < 2 {
				segment = append(segment, errReply("ERR wrong number of arguments for 'del' command"))
				continue
			}
			// Blind delete: a tombstone per key, no existence probe (a
			// read before every delete would defeat write coalescing), so
			// the reply counts tombstones written, not keys that existed.
			q := queued{op: "DEL", shard: -1, nDel: int64(len(args) - 1)}
			for _, key := range args[1:] {
				shard := s.shardFor(key)
				write(shard).Delete(key)
				s.shardStats[shard].Dels.Add(1)
				if q.shard == -1 {
					q.shard = shard
				} else if q.shard != shard {
					q.shard = spansShards
				}
			}
			segment = append(segment, q)
		case "GET":
			if len(args) != 2 {
				segment = append(segment, errReply("ERR wrong number of arguments for 'get' command"))
				continue
			}
			shard := s.shardFor(args[1])
			s.shardStats[shard].Gets.Add(1)
			segment = append(segment, queued{op: "GET", shard: shard, key: args[1]})
			flush() // read boundary: earlier writes must be visible, later ones must not
		case "PING":
			v := resp.Value{Kind: resp.KindStatus, Str: []byte("PONG")}
			if len(args) == 2 {
				v = resp.Value{Kind: resp.KindBulk, Str: args[1]}
			}
			segment = append(segment, queued{ready: &v})
		case "ECHO":
			if len(args) != 2 {
				segment = append(segment, errReply("ERR wrong number of arguments for 'echo' command"))
				continue
			}
			segment = append(segment, queued{ready: &resp.Value{Kind: resp.KindBulk, Str: args[1]}})
		case "INFO":
			// Flush first so the rendered counters include this pipeline's
			// own writes.
			flush()
			segment = append(segment, queued{ready: &resp.Value{Kind: resp.KindBulk, Str: s.renderInfo()}})
		case "COMMAND":
			// Client libraries probe this at connect; an empty array keeps
			// them happy without a command table.
			segment = append(segment, queued{ready: &resp.Value{Kind: resp.KindArray}})
		case "QUIT":
			segment = append(segment, queued{ready: &resp.Value{Kind: resp.KindStatus, Str: []byte("OK")}})
			flush()
			return true
		default:
			segment = append(segment, errReply(fmt.Sprintf("ERR unknown command '%s'", sanitize(name))))
		}
	}
	flush()
	return false
}

// spansShards marks a DEL whose keys hash to more than one shard; its reply
// fails if any involved shard's commit failed.
const spansShards = -2

// errReply queues a precomputed -ERR reply.
func errReply(msg string) queued {
	return queued{ready: &resp.Value{Kind: resp.KindError, Str: []byte(msg)}}
}

// sanitize strips CR/LF so client- or engine-controlled text cannot break
// reply framing.
func sanitize(sv string) string {
	return strings.Map(func(r rune) rune {
		if r == '\r' || r == '\n' {
			return ' '
		}
		return r
	}, sv)
}

// commitPending commits every shard's coalesced batch, in parallel across
// shards. Each commit joins that shard engine's group-commit loop, where it
// merges with batches arriving concurrently from other connections.
func (s *Server) commitPending(pending map[int]*pendingBatch) {
	if len(pending) == 0 {
		return
	}
	if len(pending) == 1 {
		for shard, pb := range pending {
			s.commitShard(shard, pb)
		}
		return
	}
	var wg sync.WaitGroup
	for shard, pb := range pending {
		wg.Add(1)
		go func(shard int, pb *pendingBatch) {
			defer wg.Done()
			s.commitShard(shard, pb)
		}(shard, pb)
	}
	wg.Wait()
}

func (s *Server) commitShard(shard int, pb *pendingBatch) {
	metrics.Serve.WriteBatches.Add(1)
	s.shardStats[shard].WriteBatches.Add(1)
	pb.err = s.cfg.Shards[shard].Write(pb.b, s.sync)
}

// emit writes the segment's replies in command order. Write replies consult
// their shard batch's commit verdict.
func (s *Server) emit(segment []queued, pending map[int]*pendingBatch, w *resp.Writer) {
	shardErr := func(shard int) error {
		if pb := pending[shard]; pb != nil {
			return pb.err
		}
		return nil
	}
	for _, q := range segment {
		switch {
		case q.ready != nil:
			writeValue(w, *q.ready)
		case q.op == "SET":
			if err := shardErr(q.shard); err != nil {
				s.shardStats[q.shard].Errors.Add(1)
				w.Error("ERR " + sanitize(err.Error())) //nolint:errcheck
			} else {
				w.Status("OK") //nolint:errcheck
			}
		case q.op == "DEL":
			var err error
			if q.shard == spansShards {
				for shard := range pending {
					if e := shardErr(shard); e != nil && err == nil {
						err = e
					}
				}
			} else {
				err = shardErr(q.shard)
			}
			if err != nil {
				w.Error("ERR " + sanitize(err.Error())) //nolint:errcheck
			} else {
				w.Int(q.nDel) //nolint:errcheck
			}
		case q.op == "GET":
			v, err := s.cfg.Shards[q.shard].Get(q.key)
			switch {
			case err == nil:
				w.Bulk(v) //nolint:errcheck
			case errors.Is(err, lsm.ErrNotFound):
				w.Null() //nolint:errcheck
			default:
				s.shardStats[q.shard].Errors.Add(1)
				w.Error("ERR " + sanitize(err.Error())) //nolint:errcheck
			}
		}
	}
}

func writeValue(w *resp.Writer, v resp.Value) {
	switch v.Kind {
	case resp.KindStatus:
		w.Status(string(v.Str)) //nolint:errcheck
	case resp.KindError:
		w.Error(string(v.Str)) //nolint:errcheck
	case resp.KindInt:
		w.Int(v.Int) //nolint:errcheck
	case resp.KindBulk:
		w.Bulk(v.Str) //nolint:errcheck
	case resp.KindArray:
		w.ArrayHeader(len(v.Array)) //nolint:errcheck
		for _, e := range v.Array {
			writeValue(w, e)
		}
	}
}

// renderInfo builds the INFO reply: a Redis-style key:value section for the
// server plus one per shard, exposing the serving counters and the engine
// counters the serving layer is accountable for — notably wal_syncs, whose
// gap below ops_set+ops_del is the visible effect of group commit.
func (s *Server) renderInfo() []byte {
	var buf bytes.Buffer
	sv := metrics.Serve.Snapshot()
	fmt.Fprintf(&buf, "# server\r\n")
	fmt.Fprintf(&buf, "shards:%d\r\n", len(s.cfg.Shards))
	fmt.Fprintf(&buf, "connections_opened:%d\r\n", sv.ConnsOpened)
	fmt.Fprintf(&buf, "connections_open:%d\r\n", sv.ConnsOpen)
	fmt.Fprintf(&buf, "commands:%d\r\n", sv.Commands)
	fmt.Fprintf(&buf, "pipeline_batches:%d\r\n", sv.PipelineBatches)
	fmt.Fprintf(&buf, "pipelined_commands:%d\r\n", sv.PipelinedCmds)
	fmt.Fprintf(&buf, "write_batches:%d\r\n", sv.WriteBatches)
	fmt.Fprintf(&buf, "protocol_errors:%d\r\n", sv.ProtocolErrors)
	fmt.Fprintf(&buf, "slow_client_drops:%d\r\n", sv.SlowClientDrops)
	for i, snap := range s.Stats() {
		fmt.Fprintf(&buf, "# shard%d\r\n", i)
		fmt.Fprintf(&buf, "ops_get:%d\r\n", snap.Gets)
		fmt.Fprintf(&buf, "ops_set:%d\r\n", snap.Sets)
		fmt.Fprintf(&buf, "ops_del:%d\r\n", snap.Dels)
		fmt.Fprintf(&buf, "write_batches:%d\r\n", snap.WriteBatches)
		fmt.Fprintf(&buf, "errors:%d\r\n", snap.Errors)
		fmt.Fprintf(&buf, "wal_syncs:%d\r\n", snap.Engine.WALSyncs)
		fmt.Fprintf(&buf, "wal_written:%d\r\n", snap.Engine.WALWritten)
		fmt.Fprintf(&buf, "engine_writes:%d\r\n", snap.Engine.Writes)
		fmt.Fprintf(&buf, "engine_gets:%d\r\n", snap.Engine.Gets)
		fmt.Fprintf(&buf, "group_commit_ratio:%.3f\r\n", snap.Engine.GroupCommitRatio())
		fmt.Fprintf(&buf, "block_cache_hits:%d\r\n", snap.Engine.BlockCacheHits)
		fmt.Fprintf(&buf, "block_cache_misses:%d\r\n", snap.Engine.BlockCacheMisses)
		fmt.Fprintf(&buf, "block_cache_pinned_bytes:%d\r\n", snap.Engine.BlockCachePinned)
		fmt.Fprintf(&buf, "prefix_seeks:%d\r\n", snap.Engine.PrefixSeeks)
		fmt.Fprintf(&buf, "prefix_skips:%d\r\n", snap.Engine.PrefixSkips)
		fmt.Fprintf(&buf, "flushes:%d\r\n", snap.Engine.Flushes)
		fmt.Fprintf(&buf, "compactions:%d\r\n", snap.Engine.Compactions)
	}
	// Network fault-tolerance counters, with the per-replica breakdown when
	// the engine runs over replicated storage: an operator reading INFO can
	// see WHICH storage node is failing over, resyncing, or eating errors.
	nv := metrics.Net.Snapshot()
	fmt.Fprintf(&buf, "# net\r\n")
	fmt.Fprintf(&buf, "net_retries:%d\r\n", nv.Retries)
	fmt.Fprintf(&buf, "net_timeouts:%d\r\n", nv.Timeouts)
	fmt.Fprintf(&buf, "net_failovers:%d\r\n", nv.Failovers)
	fmt.Fprintf(&buf, "net_redials:%d\r\n", nv.Redials)
	fmt.Fprintf(&buf, "degraded_writes:%d\r\n", nv.DegradedWrites)
	fmt.Fprintf(&buf, "degraded_reads:%d\r\n", nv.DegradedReads)
	fmt.Fprintf(&buf, "quorum_shortfalls:%d\r\n", nv.QuorumShortfalls)
	fmt.Fprintf(&buf, "resyncs:%d\r\n", nv.Resyncs)
	fmt.Fprintf(&buf, "resync_bytes:%d\r\n", nv.ResyncBytes)
	for i, addr := range nv.EndpointOrder() {
		es := nv.Endpoints[addr]
		fmt.Fprintf(&buf, "# replica%d\r\n", i)
		fmt.Fprintf(&buf, "addr:%s\r\n", sanitize(addr))
		fmt.Fprintf(&buf, "failovers:%d\r\n", es.Failovers)
		fmt.Fprintf(&buf, "errors:%d\r\n", es.Errors)
		fmt.Fprintf(&buf, "resyncs:%d\r\n", es.Resyncs)
		fmt.Fprintf(&buf, "resync_bytes:%d\r\n", es.ResyncBytes)
	}
	return buf.Bytes()
}
