package server_test

import (
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"shield/internal/lsm"
	"shield/internal/resp"
	"shield/internal/server"
	"shield/internal/vfs"
)

// newTestServer boots a server over nShards fresh in-memory engines on an
// ephemeral port and returns it with its address.
func newTestServer(t *testing.T, nShards int, cfg server.Config) (*server.Server, string) {
	t.Helper()
	var shards []server.Engine
	var dbs []*lsm.DB
	for i := 0; i < nShards; i++ {
		db, err := lsm.Open(fmt.Sprintf("shard-%d", i), lsm.Options{
			FS:           vfs.NewMem(),
			MemtableSize: 256 << 10,
		})
		if err != nil {
			t.Fatalf("open shard %d: %v", i, err)
		}
		dbs = append(dbs, db)
		shards = append(shards, db)
	}
	cfg.Shards = shards
	s, err := server.New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve() }()
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("server.Close: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("Serve returned: %v", err)
		}
		for i, db := range dbs {
			if err := db.Close(); err != nil {
				t.Errorf("close shard %d: %v", i, err)
			}
		}
	})
	return s, s.Addr()
}

// TestPipelinedClientsE2E is the acceptance test: >= 8 concurrent pipelined
// RESP clients drive mixed GET/SET traffic across >= 4 shards, every client
// verifies read-your-writes for its own keys, and afterwards the per-shard
// counters show cross-connection group commit — fewer WAL syncs than SETs.
func TestPipelinedClientsE2E(t *testing.T) {
	const (
		nShards  = 4
		nClients = 8
		nRounds  = 6
		nKeys    = 12 // keys per client per round
	)
	s, addr := newTestServer(t, nShards, server.Config{})

	var wg sync.WaitGroup
	errs := make(chan error, nClients)
	for c := 0; c < nClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			errs <- runClient(addr, c, nRounds, nKeys)
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	const wantSets = nClients * nRounds * nKeys
	var gotSets, gotGets, walSyncs, writeBatches int64
	for i, snap := range s.Stats() {
		if snap.Sets == 0 || snap.Gets == 0 {
			t.Errorf("shard %d saw no traffic (sets=%d gets=%d): keys are not spreading", i, snap.Sets, snap.Gets)
		}
		if snap.Errors != 0 {
			t.Errorf("shard %d: %d -ERR replies", i, snap.Errors)
		}
		// Per-shard group commit: syncs never exceed the batches committed.
		if snap.Engine.WALSyncs > snap.WriteBatches {
			t.Errorf("shard %d: wal_syncs=%d > write_batches=%d", i, snap.Engine.WALSyncs, snap.WriteBatches)
		}
		gotSets += snap.Sets
		gotGets += snap.Gets
		walSyncs += snap.Engine.WALSyncs
		writeBatches += snap.WriteBatches
	}
	if gotSets != wantSets {
		t.Errorf("sets routed = %d, want %d", gotSets, wantSets)
	}
	if gotGets == 0 {
		t.Error("no GETs routed")
	}
	// The acceptance signal: every SET was acknowledged with sync on, yet
	// coalescing (pipeline folding + cross-connection group commit) kept the
	// fsync count well below the SET count.
	if walSyncs == 0 {
		t.Fatal("wal_syncs = 0 with Sync enabled: syncs are not being counted")
	}
	if walSyncs >= wantSets {
		t.Errorf("wal_syncs = %d >= %d sets: write coalescing is not happening", walSyncs, wantSets)
	}
	t.Logf("group commit: %d sets -> %d write batches -> %d wal syncs", wantSets, writeBatches, walSyncs)
}

// runClient drives one connection: each round pipelines nKeys SETs, a GET of
// a key written earlier in the same pipeline (read-your-writes within the
// batch), then re-reads every key it has written to check the latest value.
func runClient(addr string, c, nRounds, nKeys int) error {
	cl, err := resp.Dial(addr, 10*time.Second)
	if err != nil {
		return fmt.Errorf("client %d: dial: %v", c, err)
	}
	defer cl.Close()

	key := func(k int) string { return fmt.Sprintf("c%d-k%d", c, k) }
	val := func(k, r int) string { return fmt.Sprintf("v-c%d-k%d-r%d", c, k, r) }

	for r := 0; r < nRounds; r++ {
		// One pipelined batch: nKeys SETs then a GET in the same flush.
		for k := 0; k < nKeys; k++ {
			if err := cl.SendStrings("SET", key(k), val(k, r)); err != nil {
				return fmt.Errorf("client %d: send: %v", c, err)
			}
		}
		probe := r % nKeys
		if err := cl.SendStrings("GET", key(probe)); err != nil {
			return fmt.Errorf("client %d: send: %v", c, err)
		}
		if err := cl.Flush(); err != nil {
			return fmt.Errorf("client %d: flush: %v", c, err)
		}
		for k := 0; k < nKeys; k++ {
			v, err := cl.Recv()
			if err != nil {
				return fmt.Errorf("client %d round %d: recv SET reply: %v", c, r, err)
			}
			if v.Kind != resp.KindStatus || string(v.Str) != "OK" {
				return fmt.Errorf("client %d round %d: SET %s reply = %+v, want +OK", c, r, key(k), v)
			}
		}
		v, err := cl.Recv()
		if err != nil {
			return fmt.Errorf("client %d round %d: recv GET reply: %v", c, r, err)
		}
		if v.Kind != resp.KindBulk || string(v.Str) != val(probe, r) {
			return fmt.Errorf("client %d round %d: pipelined GET %s = %q, want %q (read-your-writes)",
				c, r, key(probe), v.Str, val(probe, r))
		}
		// Re-read everything written so far: latest round must win.
		for k := 0; k < nKeys; k++ {
			got, err := cl.Do("GET", key(k))
			if err != nil {
				return fmt.Errorf("client %d: GET %s: %v", c, key(k), err)
			}
			if got.Kind != resp.KindBulk || string(got.Str) != val(k, r) {
				return fmt.Errorf("client %d round %d: GET %s = %q, want %q", c, r, key(k), got.Str, val(k, r))
			}
		}
	}
	return nil
}

// TestCommandsBasics exercises DEL, PING, ECHO, INFO, COMMAND, QUIT and the
// error replies for malformed-but-parseable commands.
func TestCommandsBasics(t *testing.T) {
	_, addr := newTestServer(t, 4, server.Config{})
	cl, err := resp.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()

	mustDo := func(want string, args ...string) {
		t.Helper()
		v, err := cl.Do(args...)
		if err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		got := renderValue(v)
		if got != want {
			t.Fatalf("%v = %s, want %s", args, got, want)
		}
	}

	mustDo("+PONG", "PING")
	mustDo("$hello", "PING", "hello")
	mustDo("$hello", "ECHO", "hello")
	mustDo("+OK", "SET", "a", "1")
	mustDo("+OK", "SET", "b", "2")
	mustDo("$1", "GET", "a")
	mustDo(":2", "DEL", "a", "b") // blind delete: counts tombstones written
	mustDo("$-1", "GET", "a")
	mustDo("$-1", "GET", "never-set")
	mustDo(":1", "DEL", "never-set") // blind delete, no existence probe
	mustDo("-ERR wrong number of arguments for 'set' command", "SET", "just-a-key")
	mustDo("-ERR wrong number of arguments for 'get' command", "GET")
	mustDo("-ERR unknown command 'FLUSHALL'", "FLUSHALL")
	mustDo("*0", "COMMAND")

	v, err := cl.Do("INFO")
	if err != nil {
		t.Fatalf("INFO: %v", err)
	}
	info := string(v.Str)
	for _, want := range []string{"# server", "shards:4", "# shard0", "# shard3", "wal_syncs:", "ops_set:"} {
		if !strings.Contains(info, want) {
			t.Errorf("INFO missing %q:\n%s", want, info)
		}
	}

	mustDo("+OK", "QUIT")
	if _, err := cl.Recv(); err == nil {
		t.Error("connection still open after QUIT")
	}
}

func renderValue(v resp.Value) string {
	switch {
	case v.Null:
		return "$-1"
	case v.Kind == resp.KindStatus:
		return "+" + string(v.Str)
	case v.Kind == resp.KindError:
		return "-" + string(v.Str)
	case v.Kind == resp.KindInt:
		return fmt.Sprintf(":%d", v.Int)
	case v.Kind == resp.KindBulk:
		return "$" + string(v.Str)
	case v.Kind == resp.KindArray:
		return fmt.Sprintf("*%d", len(v.Array))
	}
	return "?"
}

// TestProtocolErrorRecovery checks the two protocol-error classes end to
// end: a recoverable error (bad array header at a line boundary) gets -ERR
// and the connection keeps working; a fatal error (bad bulk frame) gets
// -ERR and the connection closes.
func TestProtocolErrorRecovery(t *testing.T) {
	_, addr := newTestServer(t, 2, server.Config{})

	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	r := resp.NewReader(conn)

	// Recoverable: malformed array header, then a valid command on the same
	// connection.
	if _, err := conn.Write([]byte("*abc\r\nPING\r\n")); err != nil {
		t.Fatalf("write: %v", err)
	}
	v, err := r.ReadReply()
	if err != nil {
		t.Fatalf("read error reply: %v", err)
	}
	if v.Kind != resp.KindError || !strings.Contains(string(v.Str), "Protocol error") {
		t.Fatalf("reply to bad header = %+v, want -ERR Protocol error", v)
	}
	v, err = r.ReadReply()
	if err != nil {
		t.Fatalf("read PING reply after recoverable error: %v", err)
	}
	if v.Kind != resp.KindStatus || string(v.Str) != "PONG" {
		t.Fatalf("PING after recoverable error = %+v, want +PONG", v)
	}

	// Fatal: bulk frame with a garbage length. The server replies -ERR and
	// closes; subsequent reads hit EOF.
	if _, err := conn.Write([]byte("*1\r\n$abc\r\n")); err != nil {
		t.Fatalf("write: %v", err)
	}
	v, err = r.ReadReply()
	if err != nil {
		t.Fatalf("read fatal error reply: %v", err)
	}
	if v.Kind != resp.KindError {
		t.Fatalf("reply to bad bulk = %+v, want -ERR", v)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := r.ReadReply(); err == nil {
		t.Fatal("connection still open after fatal protocol error")
	}
}

// TestGracefulDrain checks Close: in-flight connections are woken and the
// server shuts down promptly, and Serve returns nil.
func TestGracefulDrain(t *testing.T) {
	s, addr := newTestServer(t, 2, server.Config{DrainTimeout: 2 * time.Second})

	// A few idle connections blocked in ReadCommand, plus one that has done
	// real work.
	var conns []net.Conn
	for i := 0; i < 3; i++ {
		c, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		defer c.Close()
		conns = append(conns, c)
	}
	cl, err := resp.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()
	if v, err := cl.Do("SET", "k", "v"); err != nil || v.Kind != resp.KindStatus {
		t.Fatalf("SET before drain: %+v, %v", v, err)
	}

	start := time.Now()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("Close took %v, want prompt drain", d)
	}
	// Idle connections were woken and closed.
	for i, c := range conns {
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := io.ReadAll(c); err != nil {
			t.Errorf("conn %d: expected clean close, got %v", i, err)
		}
	}
	// New connections are refused.
	if c, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		c.Close()
		t.Error("dial succeeded after Close")
	}
}

// TestSlowClientDropped checks the idle deadline: a connection that sends a
// partial frame and stalls is disconnected.
func TestSlowClientDropped(t *testing.T) {
	_, addr := newTestServer(t, 1, server.Config{IdleTimeout: 200 * time.Millisecond})
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	// Half a command, then silence.
	if _, err := conn.Write([]byte("*2\r\n$3\r\nGET\r\n$5\r\nhel")); err != nil {
		t.Fatalf("write: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadAll(conn); err != nil {
		t.Fatalf("expected server to close the slow connection, got %v", err)
	}
}
