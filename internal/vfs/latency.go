package vfs

import (
	"sync"
	"time"
)

// LatencyFS wraps an FS and injects a fixed per-operation latency and a
// bandwidth cap, emulating a network link between compute and storage
// servers (the paper's 1 Gbps switch between Server 1 and Server 2).
//
// Latency is charged once per FS round trip (write call, positional read,
// create, open). Bandwidth is modeled as a token bucket shared by all files:
// transferring n bytes over a link of B bytes/sec costs n/B seconds, charged
// synchronously to the caller performing the transfer.
type LatencyFS struct {
	base FS

	// PerOp is the round-trip latency charged to every FS operation.
	PerOp time.Duration

	// BytesPerSec caps throughput; zero means unlimited.
	BytesPerSec int64

	mu      sync.Mutex
	nextUse time.Time // token-bucket: earliest time the link is free
}

// NewLatency wraps base with perOp round-trip latency and a bandwidth cap of
// bytesPerSec (0 = unlimited).
func NewLatency(base FS, perOp time.Duration, bytesPerSec int64) *LatencyFS {
	return &LatencyFS{base: base, PerOp: perOp, BytesPerSec: bytesPerSec}
}

// ReadLatencyFS charges a device latency to positional reads only — the
// storage model of a monolithic host with an SSD: WAL appends land in the
// OS page cache (free), while block reads that miss the cache pay a device
// round trip. It is what lets the paper's "decryption hides inside read
// latency" result reproduce on an otherwise memory-speed substrate.
type ReadLatencyFS struct {
	FS
	perRead time.Duration
}

// NewReadLatency wraps base, charging perRead to every ReadAt.
func NewReadLatency(base FS, perRead time.Duration) *ReadLatencyFS {
	return &ReadLatencyFS{FS: base, perRead: perRead}
}

// Open implements FS.
func (r *ReadLatencyFS) Open(name string) (RandomAccessFile, error) {
	f, err := r.FS.Open(name)
	if err != nil {
		return nil, err
	}
	return &readLatencyFile{f: f, d: r.perRead}, nil
}

type readLatencyFile struct {
	f RandomAccessFile
	d time.Duration
}

func (rl *readLatencyFile) ReadAt(p []byte, off int64) (int, error) {
	if rl.d > 0 {
		time.Sleep(rl.d)
	}
	return rl.f.ReadAt(p, off)
}

func (rl *readLatencyFile) Size() (int64, error) { return rl.f.Size() }
func (rl *readLatencyFile) Close() error         { return rl.f.Close() }

// SyncLatencyFS charges a device latency to every WritableFile.Sync — the
// durability-barrier model of a monolithic host with an SSD: appends land
// in the OS page cache (free), while fsync pays a flash program round
// trip. It is what makes group commit measurable on a memory-speed
// substrate: the only way a concurrent synced workload beats one device
// round trip per write is to coalesce writers behind a shared sync.
type SyncLatencyFS struct {
	FS
	perSync time.Duration
}

// NewSyncLatency wraps base, charging perSync to every Sync.
func NewSyncLatency(base FS, perSync time.Duration) *SyncLatencyFS {
	return &SyncLatencyFS{FS: base, perSync: perSync}
}

// Create implements FS.
func (s *SyncLatencyFS) Create(name string) (WritableFile, error) {
	f, err := s.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &syncLatencyFile{f: f, d: s.perSync}, nil
}

type syncLatencyFile struct {
	f WritableFile
	d time.Duration
}

func (sl *syncLatencyFile) Write(p []byte) (int, error) { return sl.f.Write(p) }

func (sl *syncLatencyFile) Sync() error {
	if sl.d > 0 {
		time.Sleep(sl.d)
	}
	return sl.f.Sync()
}

// Close implies Sync in the vfs contract, so it pays the barrier too.
func (sl *syncLatencyFile) Close() error {
	if sl.d > 0 {
		time.Sleep(sl.d)
	}
	return sl.f.Close()
}

// charge sleeps for the operation latency plus the serialization time of n
// bytes on the shared link.
func (l *LatencyFS) charge(n int) {
	wait := l.PerOp
	if l.BytesPerSec > 0 && n > 0 {
		xfer := time.Duration(int64(n) * int64(time.Second) / l.BytesPerSec)
		l.mu.Lock()
		now := time.Now()
		start := l.nextUse
		if start.Before(now) {
			start = now
		}
		l.nextUse = start.Add(xfer)
		wait += l.nextUse.Sub(now)
		l.mu.Unlock()
	}
	if wait > 0 {
		time.Sleep(wait)
	}
}

// Create implements FS.
func (l *LatencyFS) Create(name string) (WritableFile, error) {
	l.charge(0)
	f, err := l.base.Create(name)
	if err != nil {
		return nil, err
	}
	return &latencyWritable{f: f, fs: l}, nil
}

// Open implements FS.
func (l *LatencyFS) Open(name string) (RandomAccessFile, error) {
	l.charge(0)
	f, err := l.base.Open(name)
	if err != nil {
		return nil, err
	}
	return &latencyRandom{f: f, fs: l}, nil
}

// OpenSequential implements FS.
func (l *LatencyFS) OpenSequential(name string) (SequentialFile, error) {
	l.charge(0)
	f, err := l.base.OpenSequential(name)
	if err != nil {
		return nil, err
	}
	return &latencySequential{f: f, fs: l}, nil
}

// Remove implements FS.
func (l *LatencyFS) Remove(name string) error {
	l.charge(0)
	return l.base.Remove(name)
}

// Rename implements FS.
func (l *LatencyFS) Rename(oldname, newname string) error {
	l.charge(0)
	return l.base.Rename(oldname, newname)
}

// List implements FS.
func (l *LatencyFS) List(dir string) ([]FileInfo, error) {
	l.charge(0)
	return l.base.List(dir)
}

// MkdirAll implements FS.
func (l *LatencyFS) MkdirAll(dir string) error { return l.base.MkdirAll(dir) }

// SyncDir implements FS.
func (l *LatencyFS) SyncDir(dir string) error {
	l.charge(0)
	return l.base.SyncDir(dir)
}

// Stat implements FS.
func (l *LatencyFS) Stat(name string) (FileInfo, error) {
	l.charge(0)
	return l.base.Stat(name)
}

type latencyWritable struct {
	f  WritableFile
	fs *LatencyFS
}

func (w *latencyWritable) Write(p []byte) (int, error) {
	w.fs.charge(len(p))
	return w.f.Write(p)
}

func (w *latencyWritable) Sync() error {
	w.fs.charge(0)
	return w.f.Sync()
}

func (w *latencyWritable) Close() error { return w.f.Close() }

type latencyRandom struct {
	f  RandomAccessFile
	fs *LatencyFS
}

func (r *latencyRandom) ReadAt(p []byte, off int64) (int, error) {
	r.fs.charge(len(p))
	return r.f.ReadAt(p, off)
}

func (r *latencyRandom) Size() (int64, error) { return r.f.Size() }
func (r *latencyRandom) Close() error         { return r.f.Close() }

type latencySequential struct {
	f  SequentialFile
	fs *LatencyFS
}

func (s *latencySequential) Read(p []byte) (int, error) {
	n, err := s.f.Read(p)
	s.fs.charge(n)
	return n, err
}

func (s *latencySequential) Close() error { return s.f.Close() }
