// Package vfs defines the filesystem abstraction (the "Env" layer of the
// LSM-KVS) that every persistent component writes through.
//
// All file creation, appending, and reading in the engine goes through an FS
// implementation. This is the seam where instance-level encryption (EncFS)
// wraps an underlying filesystem, where the disaggregated-storage client
// plugs in, and where I/O accounting and latency/bandwidth emulation live.
package vfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
)

// ErrNotFound reports that a file does not exist.
var ErrNotFound = errors.New("vfs: file not found")

// ErrExist reports that a file already exists.
var ErrExist = errors.New("vfs: file already exists")

// ErrNoSpace reports that the underlying storage is out of space (ENOSPC).
// It is a permanent condition from the writer's point of view: retrying the
// same write cannot succeed until an external actor frees space, so retry
// loops (netretry, dstore) must classify it as non-retryable and surface it
// immediately.
var ErrNoSpace = errors.New("vfs: no space left on device")

// ErrIntegrity reports that an authenticated read failed verification: the
// bytes on storage are not the bytes that were written (tampering, bit-rot,
// or a spliced/rolled-back file). It lives at the vfs seam so the encryption
// layer (which detects it) and the engine (which classifies it) agree on the
// sentinel without depending on each other. Decryption layers MUST return it
// instead of unauthenticated plaintext.
var ErrIntegrity = errors.New("vfs: integrity check failed (content does not authenticate)")

// WritableFile is an append-only file handle. LSM files (WAL, SST, MANIFEST)
// are written strictly sequentially.
type WritableFile interface {
	io.Writer

	// Sync flushes buffered data to durable storage.
	Sync() error

	// Close flushes and releases the handle. Close implies Sync for
	// implementations where that distinction matters.
	Close() error
}

// RandomAccessFile supports positional reads, the access pattern of SST
// readers (block fetches by offset).
type RandomAccessFile interface {
	io.ReaderAt
	io.Closer

	// Size returns the file length in bytes.
	Size() (int64, error)
}

// SequentialFile supports streaming reads, the access pattern of WAL and
// MANIFEST recovery.
type SequentialFile interface {
	io.Reader
	io.Closer
}

// FileInfo describes one directory entry.
type FileInfo struct {
	Name string
	Size int64
}

// FS is the filesystem interface the engine is written against.
type FS interface {
	// Create creates (or truncates) a file for appending.
	Create(name string) (WritableFile, error)

	// Open opens a file for positional reads.
	Open(name string) (RandomAccessFile, error)

	// OpenSequential opens a file for streaming reads.
	OpenSequential(name string) (SequentialFile, error)

	// Remove deletes a file. Removing a missing file returns ErrNotFound.
	Remove(name string) error

	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error

	// List returns the entries of a directory, sorted by name.
	List(dir string) ([]FileInfo, error)

	// MkdirAll creates a directory and all missing parents.
	MkdirAll(dir string) error

	// SyncDir flushes a directory's entries to durable storage. A file
	// created or renamed into a directory is not guaranteed to survive a
	// power loss until the directory itself has been synced — fsyncing the
	// file alone persists its contents, not its name. Callers must SyncDir
	// the parent after every durability-relevant create/rename.
	SyncDir(dir string) error

	// Stat returns metadata for one file.
	Stat(name string) (FileInfo, error)
}

// ReadFile reads the entire named file through fs.
func ReadFile(fsys FS, name string) ([]byte, error) {
	f, err := fsys.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		return nil, err
	}
	return buf, nil
}

// WriteFile writes data to the named file through fs, replacing any existing
// contents, and syncs it. It does not sync the directory: every caller in
// this repo writes a .tmp and then renames it into place, and the rename
// site owns the SyncDir.
//
//shield:nosyncdir helper writes tmp files; the rename site owns directory durability
func WriteFile(fsys FS, name string, data []byte) error {
	f, err := fsys.Create(name)
	if err != nil {
		return err
	}
	if err := WriteFull(f, data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteFull writes all of p to w and converts the silent short-write case
// (err == nil && n < len(p)) into io.ErrShortWrite. io.Writer permits that
// combination, and several FS backends (quota enforcement, torn-write fault
// injection) produce it; any call site that ignores n would otherwise ack
// data that was never written.
func WriteFull(w io.Writer, p []byte) error {
	n, err := w.Write(p)
	if err != nil {
		return err
	}
	if n < len(p) {
		return io.ErrShortWrite
	}
	return nil
}

// mapOSError converts os-package errors to vfs sentinel errors so callers can
// test with errors.Is regardless of backend.
func mapOSError(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, fs.ErrNotExist):
		return fmt.Errorf("%w: %w", ErrNotFound, err)
	case errors.Is(err, fs.ErrExist):
		return fmt.Errorf("%w: %w", ErrExist, err)
	case isNoSpace(err):
		return fmt.Errorf("%w: %w", ErrNoSpace, err)
	default:
		return err
	}
}
