package vfs

import (
	"errors"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the default error a FaultFS rule returns.
var ErrInjected = errors.New("vfs: injected fault")

// FaultOp classifies filesystem operations for fault matching.
type FaultOp int

// Fault matching classes. FaultRead covers both positional (ReadAt) and
// streaming (Read) reads; FaultClose covers file handles, not the FS.
const (
	FaultAny FaultOp = iota
	FaultCreate
	FaultOpen
	FaultOpenSequential
	FaultRemove
	FaultRename
	FaultList
	FaultMkdir
	FaultStat
	FaultWrite
	FaultSync
	FaultRead
	FaultClose
	FaultSyncDir
)

// FaultRule describes one injectable failure. A rule fires on operations
// matching Op and Path, gated by trigger counters and probability:
//
//   - After skips the first After matching operations (hit N-th op);
//   - Count caps how many times the rule fires (0 = unlimited);
//   - Probability, when > 0, fires randomly per matching op; when 0 the
//     rule fires deterministically on every eligible match.
//
// What fires is Err (defaulting to ErrInjected), an optional Stall slept
// before returning, and, for writes, a torn write: TornBytes of the
// payload reach the underlying file before the error, modeling a crashed
// storage node mid-append. A rule with Stall > 0 and nil Err stalls
// without failing (a hung, not dead, device).
type FaultRule struct {
	Op          FaultOp
	Path        string // substring match on the file name; "" matches all
	Probability float64
	After       int
	Count       int
	Err         error
	Stall       time.Duration
	TornBytes   int

	hits  int
	fired int
}

// FaultFS wraps an FS and injects per-operation errors, torn writes, and
// stalls according to a rule set, so network/storage failure modes are
// reproducible in tests (sibling of LatencyFS, which injects only delay).
type FaultFS struct {
	base FS

	mu       sync.Mutex
	rng      *rand.Rand
	rules    []*FaultRule
	injected int64
}

// NewFault wraps base with an initially empty rule set. seed makes
// probabilistic rules reproducible.
func NewFault(base FS, seed int64) *FaultFS {
	return &FaultFS{base: base, rng: rand.New(rand.NewSource(seed))}
}

// Inject adds a rule and returns a handle usable with RemoveRule and
// Fired.
func (f *FaultFS) Inject(r FaultRule) *FaultRule {
	f.mu.Lock()
	defer f.mu.Unlock()
	rule := r
	f.rules = append(f.rules, &rule)
	return &rule
}

// RemoveRule deletes a rule installed by Inject.
func (f *FaultFS) RemoveRule(r *FaultRule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, have := range f.rules {
		if have == r {
			f.rules = append(f.rules[:i], f.rules[i+1:]...)
			return
		}
	}
}

// ClearRules removes every rule.
func (f *FaultFS) ClearRules() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = nil
}

// Injected reports how many faults have fired in total.
func (f *FaultFS) Injected() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// Fired reports how many times one rule has fired.
func (f *FaultFS) Fired(r *FaultRule) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return r.fired
}

// eval matches op/path against the rules, fires at most the strongest
// combination (longest stall, first error, first torn-write length), and
// sleeps any stall before returning.
func (f *FaultFS) eval(op FaultOp, path string) (torn int, err error) {
	f.mu.Lock()
	var stall time.Duration
	for _, r := range f.rules {
		if r.Op != FaultAny && r.Op != op {
			continue
		}
		if r.Path != "" && !strings.Contains(path, r.Path) {
			continue
		}
		r.hits++
		if r.hits <= r.After {
			continue
		}
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		if r.Probability > 0 && f.rng.Float64() >= r.Probability {
			continue
		}
		r.fired++
		f.injected++
		if r.Stall > stall {
			stall = r.Stall
		}
		switch {
		case r.Err != nil:
			if err == nil {
				err = r.Err
			}
		case r.Stall == 0 || r.TornBytes > 0:
			if err == nil {
				err = ErrInjected
			}
		}
		if r.TornBytes > 0 && torn == 0 {
			torn = r.TornBytes
		}
	}
	f.mu.Unlock()
	if stall > 0 {
		time.Sleep(stall)
	}
	return torn, err
}

// Create implements FS.
func (f *FaultFS) Create(name string) (WritableFile, error) {
	if _, err := f.eval(FaultCreate, name); err != nil {
		return nil, err
	}
	w, err := f.base.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultWritable{f: w, fs: f, name: name}, nil
}

// Open implements FS.
func (f *FaultFS) Open(name string) (RandomAccessFile, error) {
	if _, err := f.eval(FaultOpen, name); err != nil {
		return nil, err
	}
	r, err := f.base.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultRandom{f: r, fs: f, name: name}, nil
}

// OpenSequential implements FS.
func (f *FaultFS) OpenSequential(name string) (SequentialFile, error) {
	if _, err := f.eval(FaultOpenSequential, name); err != nil {
		return nil, err
	}
	r, err := f.base.OpenSequential(name)
	if err != nil {
		return nil, err
	}
	return &faultSequential{f: r, fs: f, name: name}, nil
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	if _, err := f.eval(FaultRemove, name); err != nil {
		return err
	}
	return f.base.Remove(name)
}

// Rename implements FS.
func (f *FaultFS) Rename(oldname, newname string) error {
	if _, err := f.eval(FaultRename, oldname); err != nil {
		return err
	}
	return f.base.Rename(oldname, newname)
}

// List implements FS.
func (f *FaultFS) List(dir string) ([]FileInfo, error) {
	if _, err := f.eval(FaultList, dir); err != nil {
		return nil, err
	}
	return f.base.List(dir)
}

// MkdirAll implements FS.
func (f *FaultFS) MkdirAll(dir string) error {
	if _, err := f.eval(FaultMkdir, dir); err != nil {
		return err
	}
	return f.base.MkdirAll(dir)
}

// SyncDir implements FS.
func (f *FaultFS) SyncDir(dir string) error {
	if _, err := f.eval(FaultSyncDir, dir); err != nil {
		return err
	}
	return f.base.SyncDir(dir)
}

// Stat implements FS.
func (f *FaultFS) Stat(name string) (FileInfo, error) {
	if _, err := f.eval(FaultStat, name); err != nil {
		return FileInfo{}, err
	}
	return f.base.Stat(name)
}

type faultWritable struct {
	f    WritableFile
	fs   *FaultFS
	name string
}

func (w *faultWritable) Write(p []byte) (int, error) {
	torn, err := w.fs.eval(FaultWrite, w.name)
	if err != nil {
		if torn > 0 && torn < len(p) {
			// Torn write: part of the payload lands before the failure.
			n, werr := w.f.Write(p[:torn])
			if werr != nil {
				return n, werr
			}
			return n, err
		}
		return 0, err
	}
	return w.f.Write(p)
}

func (w *faultWritable) Sync() error {
	if _, err := w.fs.eval(FaultSync, w.name); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *faultWritable) Close() error {
	if _, err := w.fs.eval(FaultClose, w.name); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

type faultRandom struct {
	f    RandomAccessFile
	fs   *FaultFS
	name string
}

func (r *faultRandom) ReadAt(p []byte, off int64) (int, error) {
	if _, err := r.fs.eval(FaultRead, r.name); err != nil {
		return 0, err
	}
	return r.f.ReadAt(p, off)
}

func (r *faultRandom) Size() (int64, error) { return r.f.Size() }

func (r *faultRandom) Close() error {
	if _, err := r.fs.eval(FaultClose, r.name); err != nil {
		r.f.Close()
		return err
	}
	return r.f.Close()
}

type faultSequential struct {
	f    SequentialFile
	fs   *FaultFS
	name string
}

func (s *faultSequential) Read(p []byte) (int, error) {
	if _, err := s.fs.eval(FaultRead, s.name); err != nil {
		return 0, err
	}
	return s.f.Read(p)
}

func (s *faultSequential) Close() error {
	if _, err := s.fs.eval(FaultClose, s.name); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}
