package vfs

import "sync/atomic"

// IOStats accumulates byte and operation counts for one FS. All fields are
// updated atomically and may be read concurrently.
type IOStats struct {
	BytesWritten atomic.Int64
	BytesRead    atomic.Int64
	WriteOps     atomic.Int64
	ReadOps      atomic.Int64
	Syncs        atomic.Int64
	Creates      atomic.Int64
	Opens        atomic.Int64
	Removes      atomic.Int64
}

// Snapshot is a point-in-time copy of IOStats.
type Snapshot struct {
	BytesWritten int64
	BytesRead    int64
	WriteOps     int64
	ReadOps      int64
	Syncs        int64
	Creates      int64
	Opens        int64
	Removes      int64
}

// Snapshot returns the current counter values.
func (s *IOStats) Snapshot() Snapshot {
	return Snapshot{
		BytesWritten: s.BytesWritten.Load(),
		BytesRead:    s.BytesRead.Load(),
		WriteOps:     s.WriteOps.Load(),
		ReadOps:      s.ReadOps.Load(),
		Syncs:        s.Syncs.Load(),
		Creates:      s.Creates.Load(),
		Opens:        s.Opens.Load(),
		Removes:      s.Removes.Load(),
	}
}

// Sub returns the delta between two snapshots (s - prev).
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	return Snapshot{
		BytesWritten: s.BytesWritten - prev.BytesWritten,
		BytesRead:    s.BytesRead - prev.BytesRead,
		WriteOps:     s.WriteOps - prev.WriteOps,
		ReadOps:      s.ReadOps - prev.ReadOps,
		Syncs:        s.Syncs - prev.Syncs,
		Creates:      s.Creates - prev.Creates,
		Opens:        s.Opens - prev.Opens,
		Removes:      s.Removes - prev.Removes,
	}
}

// CountingFS wraps an FS and accumulates IOStats for every operation. It is
// the accounting layer behind the paper's Table 3 (per-server I/O
// distribution).
type CountingFS struct {
	base  FS
	Stats IOStats
}

// NewCounting wraps base with I/O accounting.
func NewCounting(base FS) *CountingFS { return &CountingFS{base: base} }

// Create implements FS.
func (c *CountingFS) Create(name string) (WritableFile, error) {
	c.Stats.Creates.Add(1)
	f, err := c.base.Create(name)
	if err != nil {
		return nil, err
	}
	return &countingWritable{f: f, stats: &c.Stats}, nil
}

// Open implements FS.
func (c *CountingFS) Open(name string) (RandomAccessFile, error) {
	c.Stats.Opens.Add(1)
	f, err := c.base.Open(name)
	if err != nil {
		return nil, err
	}
	return &countingRandom{f: f, stats: &c.Stats}, nil
}

// OpenSequential implements FS.
func (c *CountingFS) OpenSequential(name string) (SequentialFile, error) {
	c.Stats.Opens.Add(1)
	f, err := c.base.OpenSequential(name)
	if err != nil {
		return nil, err
	}
	return &countingSequential{f: f, stats: &c.Stats}, nil
}

// Remove implements FS.
func (c *CountingFS) Remove(name string) error {
	c.Stats.Removes.Add(1)
	return c.base.Remove(name)
}

// Rename implements FS.
func (c *CountingFS) Rename(oldname, newname string) error {
	return c.base.Rename(oldname, newname)
}

// List implements FS.
func (c *CountingFS) List(dir string) ([]FileInfo, error) { return c.base.List(dir) }

// MkdirAll implements FS.
func (c *CountingFS) MkdirAll(dir string) error { return c.base.MkdirAll(dir) }

// SyncDir implements FS.
func (c *CountingFS) SyncDir(dir string) error {
	c.Stats.Syncs.Add(1)
	return c.base.SyncDir(dir)
}

// Stat implements FS.
func (c *CountingFS) Stat(name string) (FileInfo, error) { return c.base.Stat(name) }

type countingWritable struct {
	f     WritableFile
	stats *IOStats
}

func (w *countingWritable) Write(p []byte) (int, error) {
	n, err := w.f.Write(p)
	w.stats.BytesWritten.Add(int64(n))
	w.stats.WriteOps.Add(1)
	return n, err
}

func (w *countingWritable) Sync() error {
	w.stats.Syncs.Add(1)
	return w.f.Sync()
}

func (w *countingWritable) Close() error { return w.f.Close() }

type countingRandom struct {
	f     RandomAccessFile
	stats *IOStats
}

func (r *countingRandom) ReadAt(p []byte, off int64) (int, error) {
	n, err := r.f.ReadAt(p, off)
	r.stats.BytesRead.Add(int64(n))
	r.stats.ReadOps.Add(1)
	return n, err
}

func (r *countingRandom) Size() (int64, error) { return r.f.Size() }
func (r *countingRandom) Close() error         { return r.f.Close() }

type countingSequential struct {
	f     SequentialFile
	stats *IOStats
}

func (s *countingSequential) Read(p []byte) (int, error) {
	n, err := s.f.Read(p)
	s.stats.BytesRead.Add(int64(n))
	s.stats.ReadOps.Add(1)
	return n, err
}

func (s *countingSequential) Close() error { return s.f.Close() }
