package vfs

import (
	"os"
	"path/filepath"
	"sort"
)

// OSFS is an FS backed by the local operating-system filesystem.
type OSFS struct{}

// NewOS returns an FS backed by the host filesystem.
func NewOS() *OSFS { return &OSFS{} }

type osWritable struct {
	f *os.File
}

func (w *osWritable) Write(p []byte) (int, error) { return w.f.Write(p) }
func (w *osWritable) Sync() error                 { return w.f.Sync() }
func (w *osWritable) Close() error                { return w.f.Close() }

type osRandom struct {
	f *os.File
}

func (r *osRandom) ReadAt(p []byte, off int64) (int, error) { return r.f.ReadAt(p, off) }
func (r *osRandom) Close() error                            { return r.f.Close() }

func (r *osRandom) Size() (int64, error) {
	st, err := r.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Create implements FS.
func (*OSFS) Create(name string) (WritableFile, error) {
	f, err := os.OpenFile(name, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, mapOSError(err)
	}
	return &osWritable{f: f}, nil
}

// Open implements FS.
func (*OSFS) Open(name string) (RandomAccessFile, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, mapOSError(err)
	}
	return &osRandom{f: f}, nil
}

// OpenSequential implements FS.
func (*OSFS) OpenSequential(name string) (SequentialFile, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, mapOSError(err)
	}
	return f, nil
}

// Remove implements FS.
func (*OSFS) Remove(name string) error { return mapOSError(os.Remove(name)) }

// Rename implements FS.
func (*OSFS) Rename(oldname, newname string) error {
	return mapOSError(os.Rename(oldname, newname))
}

// List implements FS.
func (*OSFS) List(dir string) ([]FileInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, mapOSError(err)
	}
	infos := make([]FileInfo, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		st, err := e.Info()
		if err != nil {
			return nil, err
		}
		infos = append(infos, FileInfo{Name: e.Name(), Size: st.Size()})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos, nil
}

// MkdirAll implements FS.
func (*OSFS) MkdirAll(dir string) error { return mapOSError(os.MkdirAll(dir, 0o755)) }

// SyncDir implements FS: it fsyncs the directory so entries created or
// renamed into it survive power loss.
func (*OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return mapOSError(err)
	}
	defer d.Close()
	return mapOSError(d.Sync())
}

// Stat implements FS.
func (*OSFS) Stat(name string) (FileInfo, error) {
	st, err := os.Stat(name)
	if err != nil {
		return FileInfo{}, mapOSError(err)
	}
	return FileInfo{Name: filepath.Base(name), Size: st.Size()}, nil
}
