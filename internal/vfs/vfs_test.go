package vfs

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// fsFactories lets every conformance test run against each implementation.
func fsFactories(t *testing.T) map[string]func() FS {
	t.Helper()
	return map[string]func() FS{
		"mem": func() FS { return NewMem() },
		"os": func() FS {
			dir := t.TempDir()
			return &prefixFS{base: NewOS(), prefix: dir}
		},
		"counting": func() FS { return NewCounting(NewMem()) },
		"latency":  func() FS { return NewLatency(NewMem(), 0, 0) },
		"fault":    func() FS { return NewFault(NewMem(), 1) },
		"crash":    func() FS { return NewCrash(1) },
	}
}

// prefixFS roots an FS at a directory so OS-backed tests stay in TempDir.
type prefixFS struct {
	base   FS
	prefix string
}

func (p *prefixFS) abs(name string) string { return filepath.Join(p.prefix, name) }

func (p *prefixFS) Create(name string) (WritableFile, error) { return p.base.Create(p.abs(name)) }
func (p *prefixFS) Open(name string) (RandomAccessFile, error) {
	return p.base.Open(p.abs(name))
}
func (p *prefixFS) OpenSequential(name string) (SequentialFile, error) {
	return p.base.OpenSequential(p.abs(name))
}
func (p *prefixFS) Remove(name string) error { return p.base.Remove(p.abs(name)) }
func (p *prefixFS) Rename(o, n string) error { return p.base.Rename(p.abs(o), p.abs(n)) }
func (p *prefixFS) List(dir string) ([]FileInfo, error) {
	return p.base.List(p.abs(dir))
}
func (p *prefixFS) MkdirAll(dir string) error { return p.base.MkdirAll(p.abs(dir)) }
func (p *prefixFS) SyncDir(dir string) error  { return p.base.SyncDir(p.abs(dir)) }
func (p *prefixFS) Stat(name string) (FileInfo, error) {
	return p.base.Stat(p.abs(name))
}

func TestFSConformance(t *testing.T) {
	for name, mk := range fsFactories(t) {
		t.Run(name, func(t *testing.T) {
			fs := mk()
			if err := fs.MkdirAll("d/sub"); err != nil {
				t.Fatal(err)
			}

			// Write and read back.
			if err := WriteFile(fs, "d/a.txt", []byte("hello")); err != nil {
				t.Fatal(err)
			}
			data, err := ReadFile(fs, "d/a.txt")
			if err != nil {
				t.Fatal(err)
			}
			if string(data) != "hello" {
				t.Fatalf("read %q", data)
			}

			// Positional reads.
			f, err := fs.Open("d/a.txt")
			if err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 3)
			if _, err := f.ReadAt(buf, 2); err != nil && err != io.EOF {
				t.Fatal(err)
			}
			if string(buf) != "llo" {
				t.Fatalf("ReadAt got %q", buf)
			}
			if size, _ := f.Size(); size != 5 {
				t.Fatalf("size %d", size)
			}
			f.Close()

			// Sequential reads.
			sf, err := fs.OpenSequential("d/a.txt")
			if err != nil {
				t.Fatal(err)
			}
			all, err := io.ReadAll(sf)
			if err != nil {
				t.Fatal(err)
			}
			sf.Close()
			if string(all) != "hello" {
				t.Fatalf("sequential read %q", all)
			}

			// Stat / List.
			info, err := fs.Stat("d/a.txt")
			if err != nil {
				t.Fatal(err)
			}
			if info.Size != 5 {
				t.Fatalf("stat size %d", info.Size)
			}
			WriteFile(fs, "d/b.txt", []byte("x"))
			infos, err := fs.List("d")
			if err != nil {
				t.Fatal(err)
			}
			if len(infos) != 2 || infos[0].Name != "a.txt" || infos[1].Name != "b.txt" {
				t.Fatalf("list %v", infos)
			}

			// Directory sync is available after create/rename.
			if err := fs.SyncDir("d"); err != nil {
				t.Fatal(err)
			}

			// Rename replaces.
			if err := fs.Rename("d/b.txt", "d/a.txt"); err != nil {
				t.Fatal(err)
			}
			if err := fs.SyncDir("d"); err != nil {
				t.Fatal(err)
			}
			data, _ = ReadFile(fs, "d/a.txt")
			if string(data) != "x" {
				t.Fatalf("after rename got %q", data)
			}

			// Remove + sentinel errors.
			if err := fs.Remove("d/a.txt"); err != nil {
				t.Fatal(err)
			}
			if _, err := fs.Open("d/a.txt"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("open removed: %v", err)
			}
			if err := fs.Remove("d/a.txt"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("double remove: %v", err)
			}
			if _, err := fs.Stat("d/nope"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("stat missing: %v", err)
			}
		})
	}
}

// Property: WriteFile/ReadFile round-trips arbitrary contents on MemFS.
func TestMemFSRoundTripProperty(t *testing.T) {
	fs := NewMem()
	f := func(data []byte) bool {
		if err := WriteFile(fs, "f", data); err != nil {
			return false
		}
		got, err := ReadFile(fs, "f")
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMemFSCrashUnsynced(t *testing.T) {
	fs := NewMem()
	f, _ := fs.Create("f")
	f.Write([]byte("durable"))
	f.Sync()
	f.Write([]byte("-volatile"))
	fs.CrashUnsynced()
	f.Close() // post-crash close is a no-op for the lost bytes

	data, err := ReadFile(fs, "f")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "durable" {
		t.Fatalf("after crash: %q", data)
	}
}

func TestMemFSConcurrentAccess(t *testing.T) {
	fs := NewMem()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := string(rune('a' + i))
			for j := 0; j < 100; j++ {
				WriteFile(fs, name, bytes.Repeat([]byte{byte(j)}, 10))
				ReadFile(fs, name)
				fs.List(".")
			}
		}(i)
	}
	wg.Wait()
}

func TestCountingFS(t *testing.T) {
	c := NewCounting(NewMem())
	f, _ := c.Create("f")
	f.Write(make([]byte, 100))
	f.Write(make([]byte, 50))
	f.Sync()
	f.Close()

	r, _ := c.Open("f")
	buf := make([]byte, 60)
	r.ReadAt(buf, 0)
	r.Close()

	s := c.Stats.Snapshot()
	if s.BytesWritten != 150 || s.WriteOps != 2 {
		t.Fatalf("writes: %+v", s)
	}
	if s.BytesRead != 60 || s.ReadOps != 1 {
		t.Fatalf("reads: %+v", s)
	}
	if s.Creates != 1 || s.Opens != 1 || s.Syncs != 1 {
		t.Fatalf("ops: %+v", s)
	}

	prev := s
	f2, _ := c.Create("g")
	f2.Write(make([]byte, 10))
	f2.Close()
	delta := c.Stats.Snapshot().Sub(prev)
	if delta.BytesWritten != 10 || delta.Creates != 1 {
		t.Fatalf("delta: %+v", delta)
	}
}

func TestLatencyFSCharges(t *testing.T) {
	l := NewLatency(NewMem(), 2*time.Millisecond, 0)
	start := time.Now()
	f, err := l.Create("f") // one op
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("x")) // second op
	f.Close()
	if elapsed := time.Since(start); elapsed < 4*time.Millisecond {
		t.Fatalf("latency not charged: %v", elapsed)
	}
}

func TestLatencyFSBandwidth(t *testing.T) {
	// 1 MiB at 10 MiB/s should take ~100ms.
	l := NewLatency(NewMem(), 0, 10<<20)
	f, _ := l.Create("f")
	start := time.Now()
	f.Write(make([]byte, 1<<20))
	elapsed := time.Since(start)
	f.Close()
	if elapsed < 80*time.Millisecond {
		t.Fatalf("bandwidth cap not applied: %v", elapsed)
	}
	if elapsed > 500*time.Millisecond {
		t.Fatalf("bandwidth cap too aggressive: %v", elapsed)
	}
}

func TestOSFSMapsErrors(t *testing.T) {
	dir := t.TempDir()
	fs := NewOS()
	if _, err := fs.Open(filepath.Join(dir, "missing")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	// Ensure the underlying os error is still inspectable.
	_, err := fs.Open(filepath.Join(dir, "missing"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("os.ErrNotExist not wrapped: %v", err)
	}
}
