package vfs

import (
	"errors"
	"syscall"
)

// isNoSpace reports whether err is the operating system's out-of-space errno.
// syscall.ENOSPC is defined on every platform this repo targets (unix and
// windows both expose it as a syscall.Errno), so no build tags are needed.
func isNoSpace(err error) bool {
	return errors.Is(err, syscall.ENOSPC)
}
