package vfs

import (
	"errors"
	"io"
	"testing"
	"time"
)

func TestFaultFSDeterministicRule(t *testing.T) {
	fs := NewFault(NewMem(), 1)
	rule := fs.Inject(FaultRule{Op: FaultCreate})
	if _, err := fs.Create("a"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Create err = %v, want ErrInjected", err)
	}
	if got := fs.Fired(rule); got != 1 {
		t.Fatalf("Fired = %d, want 1", got)
	}
	fs.RemoveRule(rule)
	if _, err := fs.Create("a"); err != nil {
		t.Fatalf("Create after RemoveRule: %v", err)
	}
}

func TestFaultFSAfterAndCount(t *testing.T) {
	fs := NewFault(NewMem(), 1)
	fs.Inject(FaultRule{Op: FaultCreate, After: 2, Count: 1})
	for i := 0; i < 2; i++ {
		if _, err := fs.Create("x"); err != nil {
			t.Fatalf("Create %d should pass (After=2): %v", i, err)
		}
	}
	if _, err := fs.Create("x"); !errors.Is(err, ErrInjected) {
		t.Fatalf("third Create err = %v, want ErrInjected", err)
	}
	if _, err := fs.Create("x"); err != nil {
		t.Fatalf("fourth Create should pass (Count=1): %v", err)
	}
}

func TestFaultFSPathFilter(t *testing.T) {
	fs := NewFault(NewMem(), 1)
	fs.Inject(FaultRule{Op: FaultCreate, Path: ".sst"})
	if _, err := fs.Create("000001.log"); err != nil {
		t.Fatalf("non-matching path failed: %v", err)
	}
	if _, err := fs.Create("000002.sst"); !errors.Is(err, ErrInjected) {
		t.Fatalf("matching path err = %v, want ErrInjected", err)
	}
}

func TestFaultFSCustomError(t *testing.T) {
	boom := errors.New("boom")
	fs := NewFault(NewMem(), 1)
	fs.Inject(FaultRule{Op: FaultRemove, Err: boom})
	if err := fs.Remove("nope"); !errors.Is(err, boom) {
		t.Fatalf("Remove err = %v, want boom", err)
	}
}

func TestFaultFSTornWrite(t *testing.T) {
	base := NewMem()
	fs := NewFault(base, 1)
	f, err := fs.Create("wal")
	if err != nil {
		t.Fatal(err)
	}
	fs.Inject(FaultRule{Op: FaultWrite, TornBytes: 3, Count: 1})
	n, err := f.Write([]byte("hello world"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write err = %v, want ErrInjected", err)
	}
	if n != 3 {
		t.Fatalf("torn write n = %d, want 3", n)
	}
	// The prefix must have reached the underlying file.
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	r, err := base.Open("wal")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	buf := make([]byte, 16)
	nn, rerr := r.ReadAt(buf, 0)
	if rerr != nil && rerr != io.EOF {
		t.Fatal(rerr)
	}
	if string(buf[:nn]) != "hel" {
		t.Fatalf("underlying bytes = %q, want %q", buf[:nn], "hel")
	}
}

func TestFaultFSStallOnly(t *testing.T) {
	fs := NewFault(NewMem(), 1)
	fs.Inject(FaultRule{Op: FaultStat, Stall: 30 * time.Millisecond})
	if err := WriteFile(fs, "f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := fs.Stat("f"); err != nil {
		t.Fatalf("stall-only rule must not fail the op: %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("Stat returned in %v, want >= 30ms stall", d)
	}
}

func TestFaultFSProbabilityRoughlyHonored(t *testing.T) {
	fs := NewFault(NewMem(), 42)
	rule := fs.Inject(FaultRule{Op: FaultCreate, Probability: 0.5})
	const trials = 1000
	for i := 0; i < trials; i++ {
		fs.Create("p") //nolint:errcheck
	}
	fired := fs.Fired(rule)
	if fired < trials/4 || fired > trials*3/4 {
		t.Fatalf("probability 0.5 fired %d/%d times", fired, trials)
	}
}

func TestFaultFSReadAndSequential(t *testing.T) {
	fs := NewFault(NewMem(), 1)
	if err := WriteFile(fs, "f", []byte("data")); err != nil {
		t.Fatal(err)
	}
	fs.Inject(FaultRule{Op: FaultRead})
	r, err := fs.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.ReadAt(make([]byte, 4), 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("ReadAt err = %v, want ErrInjected", err)
	}
	s, err := fs.OpenSequential("f")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Read(make([]byte, 4)); !errors.Is(err, ErrInjected) {
		t.Fatalf("Read err = %v, want ErrInjected", err)
	}
	if fs.Injected() < 2 {
		t.Fatalf("Injected = %d, want >= 2", fs.Injected())
	}
}
