package vfs

import (
	"errors"
	"io"
	"testing"
)

func TestQuotaEnforcesLimit(t *testing.T) {
	q := NewQuota(NewMem(), 10)
	f, err := q.Create("a")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := WriteFull(f, []byte("12345")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	// Second write exceeds the budget: the prefix that fits must land and the
	// call must report ErrNoSpace.
	n, err := f.Write([]byte("67890X"))
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("want ErrNoSpace, got n=%d err=%v", n, err)
	}
	if n != 5 {
		t.Fatalf("torn prefix: want 5 bytes landed, got %d", n)
	}
	f.Close()
	if got := q.Used(); got != 10 {
		t.Fatalf("Used: want 10, got %d", got)
	}
	data, err := ReadFile(q, "a")
	if err != nil || string(data) != "1234567890" {
		t.Fatalf("content: %q err=%v", data, err)
	}
}

func TestQuotaWriteFileShortWriteSurfaces(t *testing.T) {
	q := NewQuota(NewMem(), 3)
	err := WriteFile(q, "a", []byte("toolong"))
	if !errors.Is(err, ErrNoSpace) && !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("WriteFile over quota must fail, got %v", err)
	}
}

func TestQuotaReleaseOnRemoveRenameTruncate(t *testing.T) {
	q := NewQuota(NewMem(), 100)
	for _, name := range []string{"a", "b"} {
		if err := WriteFile(q, name, []byte("0123456789")); err != nil {
			t.Fatalf("WriteFile(%s): %v", name, err)
		}
	}
	if got := q.Used(); got != 20 {
		t.Fatalf("Used after writes: want 20, got %d", got)
	}
	// Rename over b: b's charge is credited, a's charge follows the file.
	if err := q.Rename("a", "b"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if got := q.Used(); got != 10 {
		t.Fatalf("Used after clobbering rename: want 10, got %d", got)
	}
	// Truncate via Create credits the old contents.
	f, err := q.Create("b")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	f.Close()
	if got := q.Used(); got != 0 {
		t.Fatalf("Used after truncate: want 0, got %d", got)
	}
	if err := WriteFile(q, "b", []byte("xy")); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if err := q.Remove("b"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if got := q.Used(); got != 0 {
		t.Fatalf("Used after remove: want 0, got %d", got)
	}
}

func TestQuotaSetLimitRecovers(t *testing.T) {
	q := NewQuota(NewMem(), 4)
	if err := WriteFile(q, "a", []byte("full")); err != nil {
		t.Fatalf("fill: %v", err)
	}
	if err := WriteFile(q, "b", []byte("x")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("want ErrNoSpace, got %v", err)
	}
	q.SetLimit(0) // unlimited
	if err := WriteFile(q, "b", []byte("x")); err != nil {
		t.Fatalf("write after raise: %v", err)
	}
}

func TestQuotaChargeDir(t *testing.T) {
	base := NewMem()
	if err := base.MkdirAll("db"); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(base, "db/000001.sst", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	q := NewQuota(base, 15)
	if err := q.ChargeDir("db"); err != nil {
		t.Fatalf("ChargeDir: %v", err)
	}
	if got := q.Used(); got != 10 {
		t.Fatalf("Used after ChargeDir: want 10, got %d", got)
	}
	// Deleting the pre-existing file must release its charge.
	if err := q.Remove("db/000001.sst"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if got := q.Used(); got != 0 {
		t.Fatalf("Used after remove: want 0, got %d", got)
	}
}
