package vfs

import (
	"fmt"
	"io"
	"path"
	"sort"
	"strings"
	"sync"
)

// MemFS is an in-memory FS used by tests and benchmarks that want to factor
// out disk latency. It is safe for concurrent use.
type MemFS struct {
	mu       sync.Mutex
	files    map[string]*memFile
	dirs     map[string]bool
	dirSyncs int64
}

// NewMem returns an empty in-memory filesystem.
func NewMem() *MemFS {
	return &MemFS{
		files: make(map[string]*memFile),
		dirs:  map[string]bool{".": true, "/": true},
	}
}

type memFile struct {
	mu     sync.Mutex
	data   []byte
	synced int // bytes guaranteed durable; used by crash simulation
}

func clean(name string) string { return path.Clean(name) }

// Create implements FS.
func (m *MemFS) Create(name string) (WritableFile, error) {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	f := &memFile{}
	m.files[name] = f
	m.dirs[path.Dir(name)] = true
	return &memWritable{f: f}, nil
}

// Open implements FS.
func (m *MemFS) Open(name string) (RandomAccessFile, error) {
	name = clean(name)
	m.mu.Lock()
	f, ok := m.files[name]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return &memRandom{f: f}, nil
}

// OpenSequential implements FS.
func (m *MemFS) OpenSequential(name string) (SequentialFile, error) {
	name = clean(name)
	m.mu.Lock()
	f, ok := m.files[name]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return &memSequential{f: f}, nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	delete(m.files, name)
	return nil
}

// Rename implements FS.
func (m *MemFS) Rename(oldname, newname string) error {
	oldname, newname = clean(oldname), clean(newname)
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldname]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, oldname)
	}
	delete(m.files, oldname)
	m.files[newname] = f
	m.dirs[path.Dir(newname)] = true
	return nil
}

// List implements FS.
func (m *MemFS) List(dir string) ([]FileInfo, error) {
	dir = clean(dir)
	m.mu.Lock()
	defer m.mu.Unlock()
	var infos []FileInfo
	for name, f := range m.files {
		if path.Dir(name) == dir {
			f.mu.Lock()
			size := int64(len(f.data))
			f.mu.Unlock()
			infos = append(infos, FileInfo{Name: path.Base(name), Size: size})
		}
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos, nil
}

// MkdirAll implements FS.
func (m *MemFS) MkdirAll(dir string) error {
	dir = clean(dir)
	m.mu.Lock()
	defer m.mu.Unlock()
	for dir != "." && dir != "/" {
		m.dirs[dir] = true
		dir = path.Dir(dir)
	}
	return nil
}

// SyncDir implements FS. MemFS keeps directory entries durable as soon as
// they are created (it has no namespace-volatility model — CrashFS does), so
// this only counts the call.
func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirSyncs++
	return nil
}

// DirSyncs reports how many SyncDir calls the filesystem has seen (used by
// tests asserting that durability barriers are issued).
func (m *MemFS) DirSyncs() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dirSyncs
}

// Stat implements FS.
func (m *MemFS) Stat(name string) (FileInfo, error) {
	name = clean(name)
	m.mu.Lock()
	f, ok := m.files[name]
	m.mu.Unlock()
	if !ok {
		return FileInfo{}, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return FileInfo{Name: path.Base(name), Size: int64(len(f.data))}, nil
}

// CrashUnsynced simulates a system crash: for every file, data written after
// the last Sync is discarded. Used by recovery tests to distinguish the OS
// buffered-I/O persistency guarantee from the application-buffer trade-off.
func (m *MemFS) CrashUnsynced() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, f := range m.files {
		f.mu.Lock()
		if f.synced < len(f.data) {
			f.data = f.data[:f.synced]
		}
		f.mu.Unlock()
	}
}

// TotalBytes reports the sum of all file sizes, optionally restricted to
// names containing substr.
func (m *MemFS) TotalBytes(substr string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	for name, f := range m.files {
		if substr == "" || strings.Contains(name, substr) {
			f.mu.Lock()
			n += int64(len(f.data))
			f.mu.Unlock()
		}
	}
	return n
}

type memWritable struct {
	f *memFile
}

func (w *memWritable) Write(p []byte) (int, error) {
	w.f.mu.Lock()
	defer w.f.mu.Unlock()
	w.f.data = append(w.f.data, p...)
	return len(p), nil
}

func (w *memWritable) Sync() error {
	w.f.mu.Lock()
	defer w.f.mu.Unlock()
	w.f.synced = len(w.f.data)
	return nil
}

func (w *memWritable) Close() error { return w.Sync() }

type memRandom struct {
	f *memFile
}

func (r *memRandom) ReadAt(p []byte, off int64) (int, error) {
	r.f.mu.Lock()
	defer r.f.mu.Unlock()
	if off >= int64(len(r.f.data)) {
		return 0, io.EOF
	}
	n := copy(p, r.f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (r *memRandom) Size() (int64, error) {
	r.f.mu.Lock()
	defer r.f.mu.Unlock()
	return int64(len(r.f.data)), nil
}

func (r *memRandom) Close() error { return nil }

type memSequential struct {
	f   *memFile
	off int64
}

func (s *memSequential) Read(p []byte) (int, error) {
	s.f.mu.Lock()
	defer s.f.mu.Unlock()
	if s.off >= int64(len(s.f.data)) {
		return 0, io.EOF
	}
	n := copy(p, s.f.data[s.off:])
	s.off += int64(n)
	return n, nil
}

func (s *memSequential) Close() error { return nil }
