package vfs

import (
	"fmt"
	"io"
	"math/rand"
	"path"
	"sort"
	"strings"
	"sync"
)

// CrashFS is a power-loss-simulating in-memory filesystem. It models the two
// POSIX durability gaps that FaultFS (I/O errors) and MemFS.CrashUnsynced
// (file-content loss only) do not:
//
//   - File contents written after the last Sync of that handle live in the
//     page cache and are lost — or arbitrarily truncated — on power loss.
//     Unlike MemFS, Close does NOT imply Sync here.
//   - Directory entries are separate from file contents. A file that was
//     created, written, and fsynced can still vanish wholesale if the parent
//     directory was never synced: fsync(file) persists the inode, not the
//     name. Renames likewise do not survive until SyncDir of the parent.
//
// CrashFS therefore keeps two namespaces: the live one, which every FS
// operation acts on and which readers observe (the running process sees its
// own writes), and the durable one, which only SyncDir mutates. Snapshot
// captures a CrashImage — the durable namespace with, per entry, the synced
// byte prefix and the still-volatile tail — from which Strict or Torn
// post-crash filesystems are materialized and reopened by recovery tests.
//
// Directories themselves (MkdirAll) are considered durable immediately;
// modeling directory-creation loss adds noise without exercising any engine
// code path, since the engine creates its directory once before any I/O.
type CrashFS struct {
	mu      sync.Mutex
	live    map[string]*crashInode
	durable map[string]*crashInode
	dirs    map[string]bool
	rng     *rand.Rand
	points  int
	after   func(event string, img *CrashImage)
}

// crashInode is one file's content. The durable map may keep referencing an
// inode after the live namespace has replaced (Create over an existing name)
// or dropped (Remove, Rename) it; such orphaned inodes are frozen and
// represent the on-disk state a crash would roll the entry back to.
type crashInode struct {
	data   []byte
	synced int
}

// NewCrash returns an empty CrashFS. seed drives Torn-image randomness so
// failures replay deterministically.
func NewCrash(seed int64) *CrashFS {
	return &CrashFS{
		live:    make(map[string]*crashInode),
		durable: make(map[string]*crashInode),
		dirs:    map[string]bool{".": true, "/": true},
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// NewCrashFrom materializes a crash image (Strict when torn is false, Torn
// with the given seed otherwise) and returns a fresh CrashFS whose live and
// durable namespaces both start from that state — the surviving bytes are on
// disk, hence durable. The simulation harness uses this to keep a DB under
// crash simulation across repeated kill/reopen cycles: each crash snapshots
// the old CrashFS and reopens on a new one built from the image.
func NewCrashFrom(img *CrashImage, torn bool, seed int64) *CrashFS {
	var m *MemFS
	if torn {
		m = img.Torn(seed)
	} else {
		m = img.Strict()
	}
	c := NewCrash(seed)
	for _, dir := range img.dirs {
		c.dirs[dir] = true
		infos, err := m.List(dir)
		if err != nil {
			continue
		}
		for _, info := range infos {
			name := path.Join(dir, info.Name)
			data, err := ReadFile(m, name)
			if err != nil {
				panic("vfs: rebuilding crash fs: " + err.Error())
			}
			ino := &crashInode{data: data, synced: len(data)}
			c.live[name] = ino
			c.durable[name] = ino
		}
	}
	return c
}

// AfterSync registers fn to run after every durability boundary (file Sync or
// SyncDir) with a freshly captured CrashImage. The crash-point enumeration
// harness uses it to collect one candidate image per boundary from a single
// workload run. fn is called without the FS lock held but must not assume it
// is safe to re-enter the filesystem concurrently with the workload.
func (c *CrashFS) AfterSync(fn func(event string, img *CrashImage)) {
	c.mu.Lock()
	c.after = fn
	c.mu.Unlock()
}

// SyncPoints reports how many durability boundaries (file Sync + SyncDir)
// have occurred.
func (c *CrashFS) SyncPoints() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.points
}

// boundary records a sync point and fires the AfterSync hook. Called with
// c.mu held; the hook runs after it is released.
func (c *CrashFS) boundary(event string) {
	c.points++
	fn := c.after
	if fn == nil {
		return
	}
	img := c.snapshotLocked()
	c.mu.Unlock()
	fn(event, img)
	c.mu.Lock()
}

// Create implements FS. The new entry is volatile until the parent directory
// is synced, even if the file itself is.
func (c *CrashFS) Create(name string) (WritableFile, error) {
	name = clean(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	ino := &crashInode{}
	c.live[name] = ino
	c.dirs[path.Dir(name)] = true
	return &crashWritable{fs: c, name: name, ino: ino}, nil
}

// Open implements FS. Reads observe the live namespace: the running process
// always sees its own writes, synced or not.
func (c *CrashFS) Open(name string) (RandomAccessFile, error) {
	name = clean(name)
	c.mu.Lock()
	ino, ok := c.live[name]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return &crashRandom{fs: c, ino: ino}, nil
}

// OpenSequential implements FS.
func (c *CrashFS) OpenSequential(name string) (SequentialFile, error) {
	f, err := c.Open(name)
	if err != nil {
		return nil, err
	}
	return &crashSequential{f: f.(*crashRandom)}, nil
}

// Remove implements FS. The durable namespace keeps the entry until SyncDir,
// so a crash can resurrect removed files — recovery must tolerate stale WALs,
// manifests, and orphan SSTs reappearing.
func (c *CrashFS) Remove(name string) error {
	name = clean(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.live[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	delete(c.live, name)
	return nil
}

// Rename implements FS. Only the live namespace changes; until SyncDir of the
// parent, a crash rolls the directory back to its previous entries (old name
// present, new name absent or pointing at its prior inode).
func (c *CrashFS) Rename(oldname, newname string) error {
	oldname, newname = clean(oldname), clean(newname)
	c.mu.Lock()
	defer c.mu.Unlock()
	ino, ok := c.live[oldname]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, oldname)
	}
	delete(c.live, oldname)
	c.live[newname] = ino
	c.dirs[path.Dir(newname)] = true
	return nil
}

// List implements FS, over the live namespace.
func (c *CrashFS) List(dir string) ([]FileInfo, error) {
	dir = clean(dir)
	c.mu.Lock()
	defer c.mu.Unlock()
	var infos []FileInfo
	for name, ino := range c.live {
		if path.Dir(name) == dir {
			infos = append(infos, FileInfo{Name: path.Base(name), Size: int64(len(ino.data))})
		}
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos, nil
}

// MkdirAll implements FS.
func (c *CrashFS) MkdirAll(dir string) error {
	dir = clean(dir)
	c.mu.Lock()
	defer c.mu.Unlock()
	for dir != "." && dir != "/" {
		c.dirs[dir] = true
		dir = path.Dir(dir)
	}
	return nil
}

// SyncDir implements FS: the durable namespace of dir is reconciled with the
// live one. Entries created or renamed in become durable (pointing at their
// current inode), removed or renamed-away entries are durably forgotten. This
// is the only operation that mutates the durable namespace.
func (c *CrashFS) SyncDir(dir string) error {
	dir = clean(dir)
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.dirs[dir] {
		return fmt.Errorf("%w: %s", ErrNotFound, dir)
	}
	for name, ino := range c.live {
		if path.Dir(name) == dir {
			c.durable[name] = ino
		}
	}
	for name := range c.durable {
		if path.Dir(name) == dir {
			if _, ok := c.live[name]; !ok {
				delete(c.durable, name)
			}
		}
	}
	c.boundary("syncdir:" + dir)
	return nil
}

// Stat implements FS.
func (c *CrashFS) Stat(name string) (FileInfo, error) {
	name = clean(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	ino, ok := c.live[name]
	if !ok {
		return FileInfo{}, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return FileInfo{Name: path.Base(name), Size: int64(len(ino.data))}, nil
}

// imageEntry is one durable directory entry at snapshot time.
type imageEntry struct {
	durable  []byte // bytes guaranteed present after the crash
	volatile []byte // bytes that may survive as an arbitrary prefix (torn tail)
}

// CrashImage is the durable state captured at one crash point. Materialize a
// post-crash filesystem with Strict or Torn and point recovery at it.
type CrashImage struct {
	entries map[string]imageEntry
	dirs    []string
	seed    int64
}

// snapshotLocked captures the durable namespace. Caller holds c.mu.
func (c *CrashFS) snapshotLocked() *CrashImage {
	img := &CrashImage{entries: make(map[string]imageEntry, len(c.durable)), seed: c.rng.Int63()}
	for name, ino := range c.durable {
		e := imageEntry{
			durable:  append([]byte(nil), ino.data[:ino.synced]...),
			volatile: append([]byte(nil), ino.data[ino.synced:]...),
		}
		img.entries[name] = e
	}
	for dir := range c.dirs {
		img.dirs = append(img.dirs, dir)
	}
	sort.Strings(img.dirs)
	return img
}

// Snapshot captures the current durable state as a crash image.
func (c *CrashFS) Snapshot() *CrashImage {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.snapshotLocked()
}

// Strict materializes the pessimistic post-crash filesystem: only the durable
// namespace, only synced bytes. Everything unsynced is gone.
func (img *CrashImage) Strict() *MemFS {
	return img.materialize(func(e imageEntry) []byte { return e.durable })
}

// Torn materializes a post-crash filesystem where each file additionally
// keeps a random-length prefix of its volatile tail — the "power failed while
// the page cache was half written back" outcome that produces torn records.
// The namespace stays strict in both modes: entry survival is all-or-nothing,
// content is what tears. seed 0 uses the image's own deterministic seed.
func (img *CrashImage) Torn(seed int64) *MemFS {
	if seed == 0 {
		seed = img.seed
	}
	rng := rand.New(rand.NewSource(seed))
	// Iterate names in sorted order so the rng consumption is deterministic.
	names := make([]string, 0, len(img.entries))
	for name := range img.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	kept := make(map[string]int, len(names))
	for _, name := range names {
		if n := len(img.entries[name].volatile); n > 0 {
			kept[name] = rng.Intn(n + 1)
		}
	}
	m := img.materialize(func(e imageEntry) []byte { return e.durable })
	graftVolatile(m, img, kept)
	return m
}

// materialize builds a MemFS from the image using contentOf per entry.
func (img *CrashImage) materialize(contentOf func(imageEntry) []byte) *MemFS {
	m := NewMem()
	for _, dir := range img.dirs {
		m.MkdirAll(dir)
	}
	for name, e := range img.entries {
		if err := WriteFile(m, name, contentOf(e)); err != nil {
			panic("vfs: materializing crash image: " + err.Error())
		}
	}
	return m
}

// graftVolatile appends the chosen volatile prefixes onto a strict
// materialization.
func graftVolatile(m *MemFS, img *CrashImage, kept map[string]int) {
	for name, n := range kept {
		e := img.entries[name]
		data := append(append([]byte(nil), e.durable...), e.volatile[:n]...)
		if err := WriteFile(m, name, data); err != nil {
			panic("vfs: materializing crash image: " + err.Error())
		}
	}
}

// Files lists the entries of the image (durable namespace), sorted.
func (img *CrashImage) Files() []string {
	names := make([]string, 0, len(img.entries))
	for name := range img.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// String summarizes the image for test failure messages.
func (img *CrashImage) String() string {
	var b strings.Builder
	for _, name := range img.Files() {
		e := img.entries[name]
		fmt.Fprintf(&b, "%s durable=%d volatile=%d\n", name, len(e.durable), len(e.volatile))
	}
	return b.String()
}

type crashWritable struct {
	fs   *CrashFS
	name string
	ino  *crashInode
}

func (w *crashWritable) Write(p []byte) (int, error) {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	w.ino.data = append(w.ino.data, p...)
	return len(p), nil
}

// Sync makes the bytes written so far durable (contents only — the entry
// still needs SyncDir if it was never synced into its directory).
func (w *crashWritable) Sync() error {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	w.ino.synced = len(w.ino.data)
	w.fs.boundary("sync:" + w.name) //shield:nolockio boundary is in-memory crash-point bookkeeping on the owning CrashFS; it never touches storage and expects mu held
	return nil
}

// Close does NOT sync: this is the POSIX close(2) contract, and the gap
// between it and MemFS's forgiving Close-implies-Sync is exactly what the
// crash harness exists to expose.
func (w *crashWritable) Close() error { return nil }

type crashRandom struct {
	fs  *CrashFS
	ino *crashInode
}

func (r *crashRandom) ReadAt(p []byte, off int64) (int, error) {
	r.fs.mu.Lock()
	defer r.fs.mu.Unlock()
	data := r.ino.data
	if off >= int64(len(data)) {
		return 0, io.EOF
	}
	n := copy(p, data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (r *crashRandom) Size() (int64, error) {
	r.fs.mu.Lock()
	defer r.fs.mu.Unlock()
	return int64(len(r.ino.data)), nil
}

func (r *crashRandom) Close() error { return nil }

type crashSequential struct {
	f   *crashRandom
	off int64
}

func (s *crashSequential) Read(p []byte) (int, error) {
	n, err := s.f.ReadAt(p, s.off)
	s.off += int64(n)
	if n > 0 && err != nil {
		return n, nil
	}
	return n, err
}

func (s *crashSequential) Close() error { return nil }
