package vfs

import (
	"bytes"
	"errors"
	"testing"
)

// mustRead reads name or fails the test.
func mustRead(t *testing.T, fs FS, name string) []byte {
	t.Helper()
	data, err := ReadFile(fs, name)
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	return data
}

// A fsynced file whose directory entry was never synced vanishes entirely
// from the crash image — fsync(file) persists contents, not the name.
func TestCrashFSDropsUnsyncedDirEntry(t *testing.T) {
	fs := NewCrash(1)
	fs.MkdirAll("d")
	f, _ := fs.Create("d/a")
	f.Write([]byte("hello"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	post := fs.Snapshot().Strict()
	if _, err := ReadFile(post, "d/a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("entry should be lost without SyncDir, got err=%v", err)
	}

	if err := fs.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	post = fs.Snapshot().Strict()
	if got := mustRead(t, post, "d/a"); string(got) != "hello" {
		t.Fatalf("after SyncDir got %q", got)
	}
}

// Close does not imply Sync: contents written but never synced are volatile
// even when the directory entry is durable.
func TestCrashFSCloseDoesNotSync(t *testing.T) {
	fs := NewCrash(1)
	fs.MkdirAll("d")
	f, _ := fs.Create("d/a")
	f.Write([]byte("unsynced"))
	f.Close()
	fs.SyncDir("d")

	post := fs.Snapshot().Strict()
	if got := mustRead(t, post, "d/a"); len(got) != 0 {
		t.Fatalf("unsynced bytes survived strict crash: %q", got)
	}
}

// A rename without a following SyncDir rolls back on crash: the destination
// keeps its prior content and the source entry is restored (or, for a
// never-dir-synced tmp file, was never durable at all).
func TestCrashFSRenameRollsBackWithoutSyncDir(t *testing.T) {
	fs := NewCrash(1)
	fs.MkdirAll("d")
	WriteFile(fs, "d/cur", []byte("old"))
	fs.SyncDir("d")

	WriteFile(fs, "d/cur.tmp", []byte("new"))
	if err := fs.Rename("d/cur.tmp", "d/cur"); err != nil {
		t.Fatal(err)
	}

	post := fs.Snapshot().Strict()
	if got := mustRead(t, post, "d/cur"); string(got) != "old" {
		t.Fatalf("rename leaked through crash: %q", got)
	}
	if _, err := ReadFile(post, "d/cur.tmp"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("tmp entry should not be durable, got err=%v", err)
	}

	fs.SyncDir("d")
	post = fs.Snapshot().Strict()
	if got := mustRead(t, post, "d/cur"); string(got) != "new" {
		t.Fatalf("after SyncDir got %q", got)
	}
	if _, err := ReadFile(post, "d/cur.tmp"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("tmp should be durably gone, got err=%v", err)
	}
}

// A remove without SyncDir can resurrect the file after a crash.
func TestCrashFSRemoveResurrection(t *testing.T) {
	fs := NewCrash(1)
	fs.MkdirAll("d")
	WriteFile(fs, "d/a", []byte("zombie"))
	fs.SyncDir("d")
	if err := fs.Remove("d/a"); err != nil {
		t.Fatal(err)
	}

	post := fs.Snapshot().Strict()
	if got := mustRead(t, post, "d/a"); string(got) != "zombie" {
		t.Fatalf("removed file should resurrect, got %q", got)
	}

	fs.SyncDir("d")
	post = fs.Snapshot().Strict()
	if _, err := ReadFile(post, "d/a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after SyncDir remove should be durable, got err=%v", err)
	}
}

// Torn images keep the synced prefix intact and at most the volatile tail;
// the namespace stays strict.
func TestCrashFSTornTail(t *testing.T) {
	fs := NewCrash(7)
	fs.MkdirAll("d")
	f, _ := fs.Create("d/a")
	f.Write([]byte("durable-"))
	f.Sync()
	f.Write([]byte("volatile"))
	f.Close()
	fs.SyncDir("d")

	img := fs.Snapshot()
	strict := mustRead(t, img.Strict(), "d/a")
	if string(strict) != "durable-" {
		t.Fatalf("strict image: %q", strict)
	}
	sawPartial := false
	for seed := int64(1); seed <= 32; seed++ {
		got := mustRead(t, img.Torn(seed), "d/a")
		if !bytes.HasPrefix(got, []byte("durable-")) {
			t.Fatalf("torn image lost synced prefix: %q", got)
		}
		if len(got) > len("durable-volatile") {
			t.Fatalf("torn image grew: %q", got)
		}
		if len(got) > len("durable-") && len(got) < len("durable-volatile") {
			sawPartial = true
		}
	}
	if !sawPartial {
		t.Fatal("no seed produced a partially-kept tail")
	}
	// Same seed → same image.
	a := mustRead(t, img.Torn(3), "d/a")
	b := mustRead(t, img.Torn(3), "d/a")
	if !bytes.Equal(a, b) {
		t.Fatalf("Torn not deterministic: %q vs %q", a, b)
	}
}

// AfterSync fires at every boundary and the live FS keeps working while
// images accumulate.
func TestCrashFSAfterSyncEnumeration(t *testing.T) {
	fs := NewCrash(1)
	fs.MkdirAll("d")
	var events []string
	var images []*CrashImage
	fs.AfterSync(func(event string, img *CrashImage) {
		events = append(events, event)
		images = append(images, img)
	})

	f, _ := fs.Create("d/a")
	f.Write([]byte("x"))
	f.Sync()
	f.Sync()
	f.Close()
	fs.SyncDir("d")

	if fs.SyncPoints() != 3 {
		t.Fatalf("sync points = %d", fs.SyncPoints())
	}
	if len(events) != 3 || events[0] != "sync:d/a" || events[2] != "syncdir:d" {
		t.Fatalf("events = %v", events)
	}
	// The first two images predate the SyncDir: entry not durable yet.
	if got := images[0].Files(); len(got) != 0 {
		t.Fatalf("image 0 files = %v", got)
	}
	if got := images[2].Files(); len(got) != 1 || got[0] != "d/a" {
		t.Fatalf("image 2 files = %v", got)
	}
}

// Re-creating an existing durable file leaves the old inode reachable from
// the durable namespace until the next boundary: a crash mid-rewrite rolls
// back to the old contents.
func TestCrashFSCreateOverDurable(t *testing.T) {
	fs := NewCrash(1)
	fs.MkdirAll("d")
	WriteFile(fs, "d/a", []byte("v1"))
	fs.SyncDir("d")

	f, _ := fs.Create("d/a") // truncates live view
	f.Write([]byte("v2-partial"))
	f.Close() // no sync

	post := fs.Snapshot().Strict()
	if got := mustRead(t, post, "d/a"); string(got) != "v1" {
		t.Fatalf("crash mid-rewrite should keep old inode, got %q", got)
	}
}
