package vfs

import (
	"fmt"
	"path"
	"sync"

	"shield/internal/metrics"
)

// QuotaFS wraps an FS and enforces a byte budget on file data, modeling a
// disk filling up. Writes that would exceed the budget land a partial prefix
// (the bytes that still fit — a real device commits whole pages until the
// allocator fails) and then return ErrNoSpace; file metadata (creates,
// directory entries) is not charged. Removing, truncating, or renaming over
// a file credits its bytes back, so compactions and obsolete-file deletion
// genuinely release space. The budget can be changed at runtime with
// SetLimit, which is how the simulation harness models an operator freeing
// space.
type QuotaFS struct {
	base FS

	mu    sync.Mutex
	limit int64 // <= 0 means unlimited
	used  int64
	sizes map[string]int64 // bytes charged per file
}

// NewQuota wraps base with a byte budget. limit <= 0 means unlimited.
func NewQuota(base FS, limit int64) *QuotaFS {
	return &QuotaFS{base: base, limit: limit, sizes: make(map[string]int64)}
}

// SetLimit replaces the byte budget. limit <= 0 means unlimited. Lowering the
// limit below current usage does not truncate anything; it only makes further
// writes fail.
func (q *QuotaFS) SetLimit(limit int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.limit = limit
}

// Limit returns the current byte budget (<= 0 means unlimited).
func (q *QuotaFS) Limit() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.limit
}

// Used returns the bytes currently charged against the budget.
func (q *QuotaFS) Used() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.used
}

// ChargeDir charges every existing file under dir against the budget. A
// QuotaFS starts empty, so a wrapper created over a directory that already
// holds data (a restart in the simulation harness) must call ChargeDir before
// use or deletions would under-flow the accounting.
func (q *QuotaFS) ChargeDir(dir string) error {
	infos, err := q.base.List(dir)
	if err != nil {
		return err
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, info := range infos {
		name := path.Join(dir, info.Name)
		if prev, ok := q.sizes[name]; ok {
			q.used -= prev
		}
		q.sizes[name] = info.Size
		q.used += info.Size
	}
	return nil
}

// reserve grants up to want bytes for name, returning how many fit within the
// budget and charging them.
func (q *QuotaFS) reserve(name string, want int) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	granted := want
	if q.limit > 0 {
		if free := q.limit - q.used; int64(granted) > free {
			granted = int(max64(free, 0))
		}
	}
	q.used += int64(granted)
	q.sizes[name] += int64(granted)
	return granted
}

// credit returns n unused bytes previously reserved for name.
func (q *QuotaFS) credit(name string, n int) {
	if n <= 0 {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.used -= int64(n)
	q.sizes[name] -= int64(n)
}

// release credits the full charge of name (remove / truncate / clobber).
func (q *QuotaFS) release(name string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if sz, ok := q.sizes[name]; ok {
		q.used -= sz
		delete(q.sizes, name)
	}
}

func (q *QuotaFS) noSpaceErr() error {
	q.mu.Lock()
	limit, used := q.limit, q.used
	q.mu.Unlock()
	metrics.Storage.NoSpaceErrors.Add(1)
	return fmt.Errorf("%w: quota %d bytes exhausted (used %d)", ErrNoSpace, limit, used)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Create implements FS. Creating (or truncating) a file is free; truncation
// credits the old contents back to the budget.
func (q *QuotaFS) Create(name string) (WritableFile, error) {
	f, err := q.base.Create(name)
	if err != nil {
		return nil, err
	}
	q.release(name)
	return &quotaWritable{f: f, fs: q, name: name}, nil
}

// Open implements FS.
func (q *QuotaFS) Open(name string) (RandomAccessFile, error) { return q.base.Open(name) }

// OpenSequential implements FS.
func (q *QuotaFS) OpenSequential(name string) (SequentialFile, error) {
	return q.base.OpenSequential(name)
}

// Remove implements FS. Removing a file releases its charge.
func (q *QuotaFS) Remove(name string) error {
	if err := q.base.Remove(name); err != nil {
		return err
	}
	q.release(name)
	return nil
}

// Rename implements FS. The charge follows the file; a clobbered target is
// credited back.
func (q *QuotaFS) Rename(oldname, newname string) error {
	if err := q.base.Rename(oldname, newname); err != nil {
		return err
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if sz, ok := q.sizes[newname]; ok {
		q.used -= sz
		delete(q.sizes, newname)
	}
	if sz, ok := q.sizes[oldname]; ok {
		delete(q.sizes, oldname)
		q.sizes[newname] = sz
	}
	return nil
}

// List implements FS.
func (q *QuotaFS) List(dir string) ([]FileInfo, error) { return q.base.List(dir) }

// MkdirAll implements FS. Directories are metadata and not charged.
func (q *QuotaFS) MkdirAll(dir string) error { return q.base.MkdirAll(dir) }

// SyncDir implements FS.
func (q *QuotaFS) SyncDir(dir string) error { return q.base.SyncDir(dir) }

// Stat implements FS.
func (q *QuotaFS) Stat(name string) (FileInfo, error) { return q.base.Stat(name) }

type quotaWritable struct {
	f    WritableFile
	fs   *QuotaFS
	name string
}

// Write charges p against the budget before handing it to the base file. When
// the budget cannot cover all of p, the prefix that fits is still written —
// a torn tail, exactly what a real ENOSPC mid-append leaves behind — and the
// call reports ErrNoSpace with n < len(p).
func (w *quotaWritable) Write(p []byte) (int, error) {
	granted := w.fs.reserve(w.name, len(p))
	if granted == len(p) {
		n, err := w.f.Write(p)
		if n < len(p) {
			w.fs.credit(w.name, len(p)-n)
		}
		return n, err
	}
	n := 0
	if granted > 0 {
		var err error
		n, err = w.f.Write(p[:granted])
		if n < granted {
			w.fs.credit(w.name, granted-n)
		}
		if err != nil {
			return n, err
		}
	}
	return n, w.fs.noSpaceErr()
}

func (w *quotaWritable) Sync() error  { return w.f.Sync() }
func (w *quotaWritable) Close() error { return w.f.Close() }
