package kds

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAuthorizationLifecycle(t *testing.T) {
	store := NewStore(DefaultPolicy())

	// Unenrolled server denied.
	if _, _, err := store.CreateDEK("ghost"); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("want ErrUnauthorized, got %v", err)
	}

	store.Authorize("s1")
	id, dek, err := store.CreateDEK("s1")
	if err != nil {
		t.Fatal(err)
	}
	if id == "" {
		t.Fatal("empty key id")
	}

	// Revoked server denied everywhere.
	store.RevokeServer("s1")
	if _, _, err := store.CreateDEK("s1"); !errors.Is(err, ErrRevoked) {
		t.Fatalf("create after revoke: %v", err)
	}
	if _, err := store.FetchDEK("s1", id); !errors.Is(err, ErrRevoked) {
		t.Fatalf("fetch after revoke: %v", err)
	}

	// Re-enrollment restores access; the creator can always re-fetch.
	store.Authorize("s1")
	got, err := store.FetchDEK("s1", id)
	if err != nil {
		t.Fatal(err)
	}
	if got != dek {
		t.Fatal("fetched DEK differs from created DEK")
	}
}

func TestOneTimeProvisioning(t *testing.T) {
	store := NewStore(Policy{MaxFetches: 1})
	store.Authorize("owner")
	store.Authorize("other1")
	store.Authorize("other2")

	id, _, err := store.CreateDEK("owner")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.FetchDEK("other1", id); err != nil {
		t.Fatalf("first foreign fetch: %v", err)
	}
	if _, err := store.FetchDEK("other2", id); !errors.Is(err, ErrAlreadyIssued) {
		t.Fatalf("second foreign fetch: %v", err)
	}
	// Owner unaffected by the exhausted budget.
	if _, err := store.FetchDEK("owner", id); err != nil {
		t.Fatalf("owner fetch: %v", err)
	}
}

func TestUnlimitedFetchPolicy(t *testing.T) {
	store := NewStore(Policy{MaxFetches: 0})
	store.Authorize("a")
	store.Authorize("b")
	id, _, _ := store.CreateDEK("a")
	for i := 0; i < 5; i++ {
		if _, err := store.FetchDEK("b", id); err != nil {
			t.Fatalf("fetch %d: %v", i, err)
		}
	}
}

func TestRevokeDEK(t *testing.T) {
	store := NewStore(DefaultPolicy())
	store.Authorize("s")
	id, _, _ := store.CreateDEK("s")
	if err := store.RevokeDEK(id); err != nil {
		t.Fatal(err)
	}
	if _, err := store.FetchDEK("s", id); !errors.Is(err, ErrKeyRevoked) {
		t.Fatalf("fetch revoked DEK: %v", err)
	}
	if err := store.RevokeDEK("dek-unknown"); !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("revoke unknown: %v", err)
	}
}

func TestUnknownKey(t *testing.T) {
	store := NewStore(DefaultPolicy())
	store.Authorize("s")
	if _, err := store.FetchDEK("s", "dek-deadbeef"); !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("want ErrUnknownKey, got %v", err)
	}
}

func TestSyntheticLatency(t *testing.T) {
	store := NewStore(Policy{MaxFetches: 1, Latency: 20 * time.Millisecond})
	store.Authorize("s")
	start := time.Now()
	if _, _, err := store.CreateDEK("s"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("latency not applied: %v", elapsed)
	}
	store.SetLatency(0)
	start = time.Now()
	store.CreateDEK("s")
	if elapsed := time.Since(start); elapsed > 10*time.Millisecond {
		t.Fatalf("latency not cleared: %v", elapsed)
	}
}

func TestStatsCounters(t *testing.T) {
	store := NewStore(DefaultPolicy())
	store.Authorize("s")
	id, _, _ := store.CreateDEK("s")
	store.FetchDEK("s", id)
	store.FetchDEK("s", "dek-bogus")
	issued, fetched, denied := store.Stats()
	if issued != 1 || fetched != 1 || denied != 1 {
		t.Fatalf("stats issued=%d fetched=%d denied=%d", issued, fetched, denied)
	}
}

func TestNetworkClientServer(t *testing.T) {
	store := NewStore(Policy{MaxFetches: 1})
	store.Authorize("alpha")
	store.Authorize("beta")
	srv, err := NewServer(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	alpha := NewClient("alpha", srv.Addr())
	defer alpha.Close()
	beta := NewClient("beta", srv.Addr())
	defer beta.Close()

	id, dek, err := alpha.CreateDEK()
	if err != nil {
		t.Fatal(err)
	}
	got, err := beta.FetchDEK(id)
	if err != nil {
		t.Fatal(err)
	}
	if got != dek {
		t.Fatal("DEK mismatch over the wire")
	}
	// Sentinel errors survive the network boundary.
	if _, err := beta.FetchDEK(id); !errors.Is(err, ErrAlreadyIssued) {
		t.Fatalf("want ErrAlreadyIssued across network, got %v", err)
	}
	if err := alpha.RevokeDEK(id); err != nil {
		t.Fatal(err)
	}
	if _, err := alpha.FetchDEK(id); !errors.Is(err, ErrKeyRevoked) {
		t.Fatalf("want ErrKeyRevoked, got %v", err)
	}

	ghost := NewClient("ghost", srv.Addr())
	defer ghost.Close()
	if _, _, err := ghost.CreateDEK(); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("unauthorized over network: %v", err)
	}
}

func TestNetworkConcurrentClients(t *testing.T) {
	store := NewStore(Policy{MaxFetches: 0})
	store.Authorize("c")
	srv, err := NewServer(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := NewClient("c", srv.Addr())
			defer c.Close()
			for j := 0; j < 50; j++ {
				id, _, err := c.CreateDEK()
				if err != nil {
					t.Errorf("create: %v", err)
					return
				}
				if _, err := c.FetchDEK(id); err != nil {
					t.Errorf("fetch: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	issued, _, _ := store.Stats()
	if issued != 200 {
		t.Fatalf("issued %d keys, want 200", issued)
	}
}

// TestReplicaFailover: a client with a dead-first replica list fails over to
// the live one; decentralized replicas share a store.
func TestReplicaFailover(t *testing.T) {
	store := NewStore(Policy{MaxFetches: 0})
	store.Authorize("s")

	// Two replicas front the same store.
	r1, err := NewServer(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewServer(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()

	client := NewClient("s", r1.Addr(), r2.Addr())
	defer client.Close()

	id, _, err := client.CreateDEK()
	if err != nil {
		t.Fatal(err)
	}

	// Kill replica 1: the client must redial and land on replica 2.
	r1.Close()
	if _, err := client.FetchDEK(id); err != nil {
		t.Fatalf("failover fetch: %v", err)
	}

	// A key created via one replica is visible via the other (shared store).
	direct2 := NewClient("s", r2.Addr())
	defer direct2.Close()
	if _, err := direct2.FetchDEK(id); err != nil {
		t.Fatalf("cross-replica fetch: %v", err)
	}
}

func TestNoReplicaReachable(t *testing.T) {
	c := NewClient("s", "127.0.0.1:1") // nothing listens on port 1
	defer c.Close()
	if _, _, err := c.CreateDEK(); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("want ErrNoReplica, got %v", err)
	}
}

func TestClientClosed(t *testing.T) {
	store := NewStore(DefaultPolicy())
	store.Authorize("s")
	srv, _ := NewServer(store, "127.0.0.1:0")
	defer srv.Close()
	c := NewClient("s", srv.Addr())
	c.Close()
	if _, _, err := c.CreateDEK(); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestKeyIDsUnique(t *testing.T) {
	store := NewStore(DefaultPolicy())
	store.Authorize("s")
	seen := make(map[KeyID]bool)
	for i := 0; i < 1000; i++ {
		id, _, err := store.CreateDEK("s")
		if err != nil {
			t.Fatal(err)
		}
		if seen[id] {
			t.Fatalf("duplicate key id %s", id)
		}
		seen[id] = true
	}
}
