// Package kds implements the Key Distribution Service SHIELD depends on
// (Sections 5.2, 5.4). The paper uses the open-source Secure Swarm Toolkit;
// this package reproduces the properties SHIELD requires of a KDS:
//
//  1. decentralized operation for high availability (several servers can
//     front one replicated key store, and clients fail over between them);
//  2. DEKs are provisioned with a unique identifier (KeyID) that SHIELD
//     embeds in file metadata;
//  3. server authorization — only enrolled servers may create or fetch DEKs,
//     and a breached server can be revoked;
//  4. one-time DEK provisioning — a DEK-ID that has already been fetched is
//     denied to later requesters, so a leaked plaintext DEK-ID alone does
//     not yield the key.
//
// The paper measures SSToolkit at ~2750 µs per issued DEK; Service
// implementations take a configurable synthetic latency to reproduce the
// KDS-latency sensitivity experiment (Figure 16).
package kds

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"shield/internal/crypt"
)

// KeyID uniquely identifies a DEK. KeyIDs are stored in plaintext file
// metadata; possession of a KeyID is deliberately worthless without KDS
// authorization.
type KeyID string

// Errors returned by Service implementations.
var (
	ErrUnauthorized   = errors.New("kds: server not authorized")
	ErrUnknownKey     = errors.New("kds: unknown DEK-ID")
	ErrAlreadyIssued  = errors.New("kds: DEK already provisioned (one-time provisioning)")
	ErrRevoked        = errors.New("kds: server authorization revoked")
	ErrKeyRevoked     = errors.New("kds: DEK revoked")
	ErrNoReplica      = errors.New("kds: no replica reachable")
	ErrClosed         = errors.New("kds: service closed")
	ErrPolicyViolated = errors.New("kds: request denied by policy")

	// ErrUnconfirmed reports that a non-idempotent request failed after it
	// may already have reached a replica; re-sending it could apply it
	// twice, so the client surfaces the uncertainty instead of retrying.
	ErrUnconfirmed = errors.New("kds: request outcome unknown")
)

// Backend is the server-side key-store interface: what a KDS front end
// (Server, Local) is backed by. *Store implements it in memory;
// *PersistentStore adds an encrypted on-disk snapshot.
type Backend interface {
	CreateDEK(serverID string) (KeyID, crypt.DEK, error)
	FetchDEK(serverID string, id KeyID) (crypt.DEK, error)
	RevokeDEK(id KeyID) error
}

// TokenCreator is implemented by backends that support idempotent DEK
// creation: a retried create carrying the same token returns the
// already-issued key instead of minting (and leaking) a second one. All
// backends in this package implement it; the network server falls back to
// plain CreateDEK for custom backends that do not.
type TokenCreator interface {
	CreateDEKToken(serverID, token string) (KeyID, crypt.DEK, error)
}

// Service is the client-side interface SHIELD programs against. A Service
// value is bound to one requesting server identity; the KDS authenticates
// and authorizes that identity on every call.
type Service interface {
	// CreateDEK mints a fresh DEK and returns its KeyID. The creator
	// implicitly holds the DEK; creation does not consume the one-time
	// fetch budget.
	CreateDEK() (KeyID, crypt.DEK, error)

	// FetchDEK resolves a KeyID, subject to authorization and the
	// one-time-provisioning policy.
	FetchDEK(id KeyID) (crypt.DEK, error)

	// RevokeDEK removes a DEK, e.g. after its file is deleted or its key is
	// compromised and rotated.
	RevokeDEK(id KeyID) error
}

// Policy configures a Store's provisioning rules.
type Policy struct {
	// MaxFetches bounds how many FetchDEK calls may succeed per KeyID
	// (creation excluded). 1 reproduces the paper's one-time provisioning;
	// 0 means unlimited.
	MaxFetches int

	// Latency is the synthetic per-request service time (key generation,
	// authentication, authorization), mimicking SSToolkit's ~2750 µs.
	Latency time.Duration
}

// DefaultPolicy matches the paper's deployment: one-time provisioning with
// no added latency (benchmarks opt into latency explicitly).
func DefaultPolicy() Policy { return Policy{MaxFetches: 1} }

type keyEntry struct {
	dek     crypt.DEK
	creator string
	fetches int
	revoked bool
}

// Store is the replicated key database behind one or more KDS front ends.
// Multiple Servers (or in-process Locals) sharing one *Store model a
// decentralized KDS deployment: any replica can serve any request.
type Store struct {
	mu         sync.Mutex
	policy     Policy
	keys       map[KeyID]*keyEntry
	authorized map[string]bool // serverID -> enrolled
	revokedSrv map[string]bool // serverID -> revoked
	issued     int64
	fetched    int64
	denied     int64

	// Idempotency-token window for CreateDEKToken: token -> issued KeyID,
	// bounded FIFO so a retry storm cannot grow the store.
	tokens     map[string]KeyID
	tokenOrder []string
}

// tokenWindow bounds how many recent create tokens are remembered. Retries
// arrive within a request's backoff budget (milliseconds to seconds), so a
// small window is ample.
const tokenWindow = 1024

// NewStore creates an empty key store with the given policy.
func NewStore(policy Policy) *Store {
	return &Store{
		policy:     policy,
		keys:       make(map[KeyID]*keyEntry),
		authorized: make(map[string]bool),
		revokedSrv: make(map[string]bool),
	}
}

// Authorize enrolls a server so it may create and fetch DEKs.
func (s *Store) Authorize(serverID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.authorized[serverID] = true
	delete(s.revokedSrv, serverID)
}

// RevokeServer blocks all further requests from a breached server.
func (s *Store) RevokeServer(serverID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.revokedSrv[serverID] = true
	delete(s.authorized, serverID)
}

// SetLatency updates the synthetic per-request latency.
func (s *Store) SetLatency(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.policy.Latency = d
}

func (s *Store) checkServer(serverID string) error {
	if s.revokedSrv[serverID] {
		return fmt.Errorf("%w: %s", ErrRevoked, serverID)
	}
	if !s.authorized[serverID] {
		return fmt.Errorf("%w: %s", ErrUnauthorized, serverID)
	}
	return nil
}

// latency returns the configured synthetic latency without holding the lock
// during the sleep.
func (s *Store) latency() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.policy.Latency
}

// CreateDEK implements the Service semantics at the store level.
func (s *Store) CreateDEK(serverID string) (KeyID, crypt.DEK, error) {
	if d := s.latency(); d > 0 {
		time.Sleep(d)
	}
	dek, err := crypt.NewDEK()
	if err != nil {
		return "", crypt.DEK{}, err
	}
	var raw [12]byte
	if _, err := rand.Read(raw[:]); err != nil {
		return "", crypt.DEK{}, fmt.Errorf("kds: generating key id: %w", err)
	}
	id := KeyID("dek-" + hex.EncodeToString(raw[:]))

	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkServer(serverID); err != nil {
		s.denied++
		return "", crypt.DEK{}, err
	}
	s.keys[id] = &keyEntry{dek: dek, creator: serverID}
	s.issued++
	return id, dek, nil
}

// CreateDEKToken implements TokenCreator: a replayed token returns the key
// already issued for it, so a client retrying a create whose response was
// lost does not double-issue a DEK. The check-then-create sequence is not
// atomic across concurrent calls with the same token, but tokens are
// minted per request by a single client whose retries are serialized.
func (s *Store) CreateDEKToken(serverID, token string) (KeyID, crypt.DEK, error) {
	if token == "" {
		return s.CreateDEK(serverID)
	}
	s.mu.Lock()
	if id, ok := s.tokens[token]; ok {
		if e, live := s.keys[id]; live {
			dek := e.dek
			s.mu.Unlock()
			return id, dek, nil
		}
	}
	s.mu.Unlock()
	id, dek, err := s.CreateDEK(serverID)
	if err != nil {
		return id, dek, err
	}
	s.mu.Lock()
	if s.tokens == nil {
		s.tokens = make(map[string]KeyID)
	}
	s.tokens[token] = id
	s.tokenOrder = append(s.tokenOrder, token)
	for len(s.tokenOrder) > tokenWindow {
		delete(s.tokens, s.tokenOrder[0])
		s.tokenOrder = s.tokenOrder[1:]
	}
	s.mu.Unlock()
	return id, dek, nil
}

// FetchDEK implements the Service semantics at the store level.
func (s *Store) FetchDEK(serverID string, id KeyID) (crypt.DEK, error) {
	if d := s.latency(); d > 0 {
		time.Sleep(d)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkServer(serverID); err != nil {
		s.denied++
		return crypt.DEK{}, err
	}
	e, ok := s.keys[id]
	if !ok {
		s.denied++
		return crypt.DEK{}, fmt.Errorf("%w: %s", ErrUnknownKey, id)
	}
	if e.revoked {
		s.denied++
		return crypt.DEK{}, fmt.Errorf("%w: %s", ErrKeyRevoked, id)
	}
	// The creator re-fetching its own key (e.g. on restart with a cold
	// secure cache) does not consume the one-time budget; foreign servers do.
	if serverID != e.creator {
		if s.policy.MaxFetches > 0 && e.fetches >= s.policy.MaxFetches {
			s.denied++
			return crypt.DEK{}, fmt.Errorf("%w: %s", ErrAlreadyIssued, id)
		}
		e.fetches++
	}
	s.fetched++
	return e.dek, nil
}

// RevokeDEK implements the Service semantics at the store level.
func (s *Store) RevokeDEK(id KeyID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.keys[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownKey, id)
	}
	e.revoked = true
	return nil
}

// Stats reports cumulative request counts.
func (s *Store) Stats() (issued, fetched, denied int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.issued, s.fetched, s.denied
}

// Local is an in-process Service bound to one serverID, used for monolithic
// deployments and tests.
type Local struct {
	store    Backend
	serverID string
}

// Authorizer is implemented by backends with an enrollment list.
type Authorizer interface {
	Authorize(serverID string)
}

// NewLocal returns a Service for serverID backed by store. The server is
// authorized as a side effect (monolithic deployments control enrollment
// out of band).
func NewLocal(store Backend, serverID string) *Local {
	if a, ok := store.(Authorizer); ok {
		a.Authorize(serverID)
	}
	return &Local{store: store, serverID: serverID}
}

// CreateDEK implements Service.
func (l *Local) CreateDEK() (KeyID, crypt.DEK, error) {
	return l.store.CreateDEK(l.serverID)
}

// FetchDEK implements Service.
func (l *Local) FetchDEK(id KeyID) (crypt.DEK, error) {
	return l.store.FetchDEK(l.serverID, id)
}

// RevokeDEK implements Service.
func (l *Local) RevokeDEK(id KeyID) error { return l.store.RevokeDEK(id) }
