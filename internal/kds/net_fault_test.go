package kds

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"shield/internal/metrics"
)

// fastConfig keeps fault tests snappy: short deadlines, tight backoff.
func fastConfig() ClientConfig {
	return ClientConfig{
		DialTimeout:    200 * time.Millisecond,
		RequestTimeout: 300 * time.Millisecond,
		MaxAttempts:    5,
		BackoffBase:    time.Millisecond,
		BackoffMax:     10 * time.Millisecond,
	}
}

// TestReplicaKillMidWorkloadFailover kills one of two replicas in the
// middle of a create/fetch workload. Every operation must still succeed
// (failover + retry), and the store must have issued exactly one DEK per
// create — no double issues from retried requests.
func TestReplicaKillMidWorkloadFailover(t *testing.T) {
	store := NewStore(Policy{MaxFetches: 0})
	store.Authorize("server-1")
	r1, err := NewServer(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewServer(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()

	client := NewClientConfig("server-1", fastConfig(), r1.Addr(), r2.Addr())
	defer client.Close()

	const ops = 30
	ids := make([]KeyID, 0, ops)
	for i := 0; i < ops; i++ {
		if i == ops/3 {
			r1.Close() // kill the replica the client is talking to
		}
		id, _, err := client.CreateDEK()
		if err != nil {
			t.Fatalf("CreateDEK %d after replica kill: %v", i, err)
		}
		ids = append(ids, id)
		if _, err := client.FetchDEK(id); err != nil {
			t.Fatalf("FetchDEK %d after replica kill: %v", i, err)
		}
	}

	issued, _, _ := store.Stats()
	if issued != ops {
		t.Fatalf("store issued %d DEKs for %d creates (retries double-issued)", issued, ops)
	}
	seen := make(map[KeyID]bool, len(ids))
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate KeyID %s returned", id)
		}
		seen[id] = true
	}
}

// dropFirstResponseProxy forwards TCP traffic to upstream but swallows the
// first upstream->client payload and closes the connection, simulating a
// request that reached the server whose response was lost in transit.
type dropFirstResponseProxy struct {
	ln       net.Listener
	upstream string

	mu      sync.Mutex
	dropped bool
}

func newDropFirstResponseProxy(t *testing.T, upstream string) *dropFirstResponseProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &dropFirstResponseProxy{ln: ln, upstream: upstream}
	go p.serve()
	t.Cleanup(func() { ln.Close() })
	return p
}

func (p *dropFirstResponseProxy) addr() string { return p.ln.Addr().String() }

func (p *dropFirstResponseProxy) serve() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		go p.handle(conn)
	}
}

func (p *dropFirstResponseProxy) handle(conn net.Conn) {
	up, err := net.Dial("tcp", p.upstream)
	if err != nil {
		conn.Close()
		return
	}
	go func() {
		io.Copy(up, conn) //nolint:errcheck // client -> upstream
		up.Close()
	}()
	buf := make([]byte, 4096)
	for {
		n, err := up.Read(buf)
		if err != nil {
			conn.Close()
			up.Close()
			return
		}
		p.mu.Lock()
		drop := !p.dropped
		p.dropped = true
		p.mu.Unlock()
		if drop {
			// The request was delivered; the response dies here.
			conn.Close()
			up.Close()
			return
		}
		if _, err := conn.Write(buf[:n]); err != nil {
			conn.Close()
			up.Close()
			return
		}
	}
}

// TestCreateRetryDoesNotDoubleIssueDEK drops the response of the first
// create. The client must retry (the create carries an idempotency token)
// and receive the key the server already issued — exactly one DEK minted.
func TestCreateRetryDoesNotDoubleIssueDEK(t *testing.T) {
	store := NewStore(DefaultPolicy())
	store.Authorize("server-1")
	srv, err := NewServer(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	proxy := newDropFirstResponseProxy(t, srv.Addr())

	client := NewClientConfig("server-1", fastConfig(), proxy.addr())
	defer client.Close()

	id, dek, err := client.CreateDEK()
	if err != nil {
		t.Fatalf("CreateDEK through lossy link: %v", err)
	}
	issued, _, _ := store.Stats()
	if issued != 1 {
		t.Fatalf("store issued %d DEKs for 1 create", issued)
	}
	// The returned key must be the one the store holds for the ID.
	got, err := store.FetchDEK("server-1", id)
	if err != nil {
		t.Fatal(err)
	}
	if got != dek {
		t.Fatal("retried create returned a different DEK than the store issued")
	}
}

// TestCreateUnconfirmedWithoutTokens disables the token protocol and loses
// the first response: the client must NOT blindly retry (that could mint a
// second key) and instead surface ErrUnconfirmed.
func TestCreateUnconfirmedWithoutTokens(t *testing.T) {
	store := NewStore(DefaultPolicy())
	store.Authorize("server-1")
	srv, err := NewServer(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	proxy := newDropFirstResponseProxy(t, srv.Addr())

	cfg := fastConfig()
	cfg.NoIdempotencyTokens = true
	client := NewClientConfig("server-1", cfg, proxy.addr())
	defer client.Close()

	_, _, err = client.CreateDEK()
	if !errors.Is(err, ErrUnconfirmed) {
		t.Fatalf("CreateDEK err = %v, want ErrUnconfirmed", err)
	}
	if issued, _, _ := store.Stats(); issued != 1 {
		t.Fatalf("store issued %d DEKs, want 1 (the unconfirmed one)", issued)
	}
}

// TestHungReplicaTimesOutAndFailsOver lists a replica that accepts
// connections but never answers ahead of a healthy one. The per-request
// deadline must fire and the client must fail over, quickly.
func TestHungReplicaTimesOutAndFailsOver(t *testing.T) {
	hung, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hung.Close()
	go func() { // accept and hold; never respond
		for {
			conn, err := hung.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()

	store := NewStore(DefaultPolicy())
	store.Authorize("server-1")
	srv, err := NewServer(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	before := metrics.Net.Snapshot()
	client := NewClientConfig("server-1", fastConfig(), hung.Addr().String(), srv.Addr())
	defer client.Close()

	start := time.Now()
	if _, _, err := client.CreateDEK(); err != nil {
		t.Fatalf("CreateDEK with hung replica: %v", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("failover took %v, deadline not enforced", d)
	}
	delta := metrics.Net.Snapshot().Sub(before)
	if delta.Timeouts == 0 {
		t.Fatalf("expected a recorded timeout, got %s", delta)
	}
}

// TestReplicaRestartSameAddress restarts a killed replica on its old
// address and verifies the client reconnects to it once the other replica
// also dies — full kill/restart cycle.
func TestReplicaRestartSameAddress(t *testing.T) {
	store := NewStore(Policy{MaxFetches: 0})
	store.Authorize("server-1")
	r1, err := NewServer(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr1 := r1.Addr()
	r2, err := NewServer(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	client := NewClientConfig("server-1", fastConfig(), addr1, r2.Addr())
	defer client.Close()

	if _, _, err := client.CreateDEK(); err != nil {
		t.Fatal(err)
	}
	r1.Close()
	if _, _, err := client.CreateDEK(); err != nil {
		t.Fatalf("create after r1 kill: %v", err)
	}
	// Restart r1 on its old address, then kill r2: the client must come back.
	r1b, err := NewServer(store, addr1)
	if err != nil {
		t.Fatalf("restart on %s: %v", addr1, err)
	}
	defer r1b.Close()
	r2.Close()
	if _, _, err := client.CreateDEK(); err != nil {
		t.Fatalf("create after restart+failback: %v", err)
	}
}

// TestAllReplicasDownFailsFast verifies that with every replica dead the
// client returns ErrNoReplica within its bounded retry budget instead of
// hanging.
func TestAllReplicasDownFailsFast(t *testing.T) {
	store := NewStore(DefaultPolicy())
	store.Authorize("server-1")
	srv, err := NewServer(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	srv.Close()

	client := NewClientConfig("server-1", fastConfig(), addr)
	defer client.Close()

	start := time.Now()
	_, _, err = client.CreateDEK()
	if !errors.Is(err, ErrNoReplica) {
		t.Fatalf("err = %v, want ErrNoReplica", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("failing fast took %v", d)
	}
}

// TestConcurrentCreatesUnderFailover hammers the client from several
// goroutines while a replica dies, exercising the request serialization
// and close/retry interaction under -race.
func TestConcurrentCreatesUnderFailover(t *testing.T) {
	store := NewStore(Policy{MaxFetches: 0})
	store.Authorize("server-1")
	r1, err := NewServer(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewServer(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()

	client := NewClientConfig("server-1", fastConfig(), r1.Addr(), r2.Addr())
	defer client.Close()

	const workers, perWorker = 4, 10
	errs := make(chan error, workers*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, _, err := client.CreateDEK(); err != nil {
					errs <- fmt.Errorf("create: %w", err)
					return
				}
			}
		}()
	}
	time.Sleep(5 * time.Millisecond)
	r1.Close()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if issued, _, _ := store.Stats(); issued != workers*perWorker {
		t.Fatalf("issued %d, want %d", issued, workers*perWorker)
	}
}
