package kds

import (
	"errors"
	"testing"

	"shield/internal/crypt"
)

func TestDerivedDeterministic(t *testing.T) {
	master := []byte("master-secret")
	d := NewDerived(master)
	svc := NewDerivedLocal(d, "s1")

	id, dek, err := svc.CreateDEK()
	if err != nil {
		t.Fatal(err)
	}
	// Any replica with the same master resolves the same key.
	replica := NewDerivedLocal(NewDerived(master), "s2")
	got, err := replica.FetchDEK(id)
	if err != nil {
		t.Fatal(err)
	}
	if got != dek {
		t.Fatal("replica derived a different key")
	}

	// A different master derives different keys.
	other := NewDerivedLocal(NewDerived([]byte("other")), "s3")
	wrong, err := other.FetchDEK(id)
	if err != nil {
		t.Fatal(err)
	}
	if wrong == dek {
		t.Fatal("different master derived the same key")
	}
}

func TestDerivedAuthorization(t *testing.T) {
	d := NewDerived([]byte("m"))
	if _, _, err := d.CreateDEK("ghost"); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("unauthorized create: %v", err)
	}
	d.Authorize("s")
	id, _, err := d.CreateDEK("s")
	if err != nil {
		t.Fatal(err)
	}
	d.RevokeServer("s")
	if _, err := d.FetchDEK("s", id); !errors.Is(err, ErrRevoked) {
		t.Fatalf("revoked server fetch: %v", err)
	}
}

func TestDerivedKeyRevocation(t *testing.T) {
	d := NewDerived([]byte("m"))
	svc := NewDerivedLocal(d, "s")
	id, _, err := svc.CreateDEK()
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.RevokeDEK(id); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.FetchDEK(id); !errors.Is(err, ErrKeyRevoked) {
		t.Fatalf("revoked key fetch: %v", err)
	}
}

func TestDerivedIDsUnique(t *testing.T) {
	svc := NewDerivedLocal(NewDerived([]byte("m")), "s")
	seen := make(map[KeyID]crypt.DEK)
	for i := 0; i < 500; i++ {
		id, dek, err := svc.CreateDEK()
		if err != nil {
			t.Fatal(err)
		}
		if _, dup := seen[id]; dup {
			t.Fatalf("duplicate id %s", id)
		}
		for _, otherDek := range seen {
			if otherDek == dek {
				t.Fatal("two IDs derived the same DEK")
			}
		}
		seen[id] = dek
		if len(seen) > 50 {
			break // quadratic check bounded
		}
	}
}
