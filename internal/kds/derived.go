package kds

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"shield/internal/crypt"
)

// Derived is a stateless KDS implementing the hierarchical-derivation
// policy the paper lists alongside per-server sharing and per-file
// isolation (Section 5.4): every DEK is derived from a master secret and
// the DEK-ID via HKDF-SHA256, so the service stores no keys at all — any
// replica holding the master secret can resolve any DEK-ID.
//
// Trade-off vs the stateful Store: derivation cannot enforce one-time
// provisioning or per-key revocation (a DEK is recomputable forever from
// the master), so the blast radius of a *master* compromise is the whole
// store. In exchange the KDS needs no persistent state and scales without
// replication traffic. Server authorization and revocation still apply.
type Derived struct {
	master []byte

	mu         sync.Mutex
	authorized map[string]bool
	revokedSrv map[string]bool
	revokedKey map[KeyID]bool
	latency    time.Duration
}

// NewDerived creates a derivation-based KDS from a master secret.
func NewDerived(master []byte) *Derived {
	return &Derived{
		master:     append([]byte(nil), master...),
		authorized: make(map[string]bool),
		revokedSrv: make(map[string]bool),
		revokedKey: make(map[KeyID]bool),
	}
}

// Authorize enrolls a server.
func (d *Derived) Authorize(serverID string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.authorized[serverID] = true
	delete(d.revokedSrv, serverID)
}

// RevokeServer blocks a server.
func (d *Derived) RevokeServer(serverID string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.revokedSrv[serverID] = true
	delete(d.authorized, serverID)
}

// SetLatency sets the synthetic service time.
func (d *Derived) SetLatency(lat time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.latency = lat
}

func (d *Derived) check(serverID string) error {
	d.mu.Lock()
	lat := d.latency
	revoked := d.revokedSrv[serverID]
	ok := d.authorized[serverID]
	d.mu.Unlock()
	if lat > 0 {
		time.Sleep(lat)
	}
	if revoked {
		return fmt.Errorf("%w: %s", ErrRevoked, serverID)
	}
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnauthorized, serverID)
	}
	return nil
}

// derive computes the DEK for an ID.
func (d *Derived) derive(id KeyID) (crypt.DEK, error) {
	raw := crypt.HKDFSHA256(d.master, []byte("shield-kds-derived-v1"), []byte(id), crypt.KeySize)
	defer crypt.Zeroize(raw)
	return crypt.DEKFromBytes(raw)
}

// CreateDEK mints a fresh DEK-ID for serverID and derives its key.
func (d *Derived) CreateDEK(serverID string) (KeyID, crypt.DEK, error) {
	if err := d.check(serverID); err != nil {
		return "", crypt.DEK{}, err
	}
	var buf [12]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return "", crypt.DEK{}, fmt.Errorf("kds: generating key id: %w", err)
	}
	id := KeyID("dekh-" + hex.EncodeToString(buf[:]))
	dek, err := d.derive(id)
	return id, dek, err
}

// CreateDEKToken implements TokenCreator. Derivation makes this cheap:
// the DEK-ID is itself derived from the token, so any replica holding the
// master resolves a replayed token to the same ID and key without shared
// state — the dedup survives even a replica restart.
func (d *Derived) CreateDEKToken(serverID, token string) (KeyID, crypt.DEK, error) {
	if token == "" {
		return d.CreateDEK(serverID)
	}
	if err := d.check(serverID); err != nil {
		return "", crypt.DEK{}, err
	}
	raw := crypt.HKDFSHA256(d.master, []byte("shield-kds-derived-id-v1"), []byte(token), 12)
	defer crypt.Zeroize(raw)
	id := KeyID("dekh-" + hex.EncodeToString(raw))
	dek, err := d.derive(id)
	return id, dek, err
}

// FetchDEK re-derives the key for id.
func (d *Derived) FetchDEK(serverID string, id KeyID) (crypt.DEK, error) {
	if err := d.check(serverID); err != nil {
		return crypt.DEK{}, err
	}
	d.mu.Lock()
	dead := d.revokedKey[id]
	d.mu.Unlock()
	if dead {
		return crypt.DEK{}, fmt.Errorf("%w: %s", ErrKeyRevoked, id)
	}
	return d.derive(id)
}

// RevokeDEK blocklists an ID (derivation itself cannot be undone, but this
// service will no longer answer for it).
func (d *Derived) RevokeDEK(id KeyID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.revokedKey[id] = true
	return nil
}

// DerivedLocal binds a Derived KDS to one server identity, implementing
// Service.
type DerivedLocal struct {
	d        *Derived
	serverID string
}

// NewDerivedLocal returns a Service for serverID over d, authorizing it.
func NewDerivedLocal(d *Derived, serverID string) *DerivedLocal {
	d.Authorize(serverID)
	return &DerivedLocal{d: d, serverID: serverID}
}

// CreateDEK implements Service.
func (l *DerivedLocal) CreateDEK() (KeyID, crypt.DEK, error) {
	return l.d.CreateDEK(l.serverID)
}

// FetchDEK implements Service.
func (l *DerivedLocal) FetchDEK(id KeyID) (crypt.DEK, error) {
	return l.d.FetchDEK(l.serverID, id)
}

// RevokeDEK implements Service.
func (l *DerivedLocal) RevokeDEK(id KeyID) error { return l.d.RevokeDEK(id) }
