package kds

import (
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"path"

	"shield/internal/crypt"
	"shield/internal/vfs"
)

// KDS persistence: without it, a KDS restart would lose every issued DEK
// that is not mirrored in some secure cache — i.e. permanent data loss for
// the databases depending on it. PersistentStore wraps Store with an
// encrypted snapshot file: the key database is sealed under a master key
// (the KDS's own root secret, which a deployment guards with an HSM or
// operator passphrase; here it is supplied by the caller).
//
// On-disk layout mirrors the secure cache:
//
//	magic(4) version(4) iv(16) len(4) ciphertext hmac(32)
//
// with AES-128-CTR under the master key and an HMAC-SHA256 tag (key =
// HKDF(master, "kds-hmac")) over everything before it.

const (
	persistMagic   = 0x4b445350 // "KDSP"
	persistVersion = 1
	persistTagLen  = 32
)

// ErrBadMasterKey reports that a snapshot cannot be authenticated.
var ErrBadMasterKey = errors.New("kds: master key mismatch or corrupted snapshot")

// persistedEntry is one key record in the snapshot.
type persistedEntry struct {
	DEKHex  string `json:"dek"`
	Creator string `json:"creator"`
	Fetches int    `json:"fetches"`
	Revoked bool   `json:"revoked,omitempty"`
}

type persistedState struct {
	Keys       map[string]persistedEntry `json:"keys"`
	Authorized []string                  `json:"authorized"`
	RevokedSrv []string                  `json:"revoked_servers"`
	Issued     int64                     `json:"issued"`
	Fetched    int64                     `json:"fetched"`
	Denied     int64                     `json:"denied"`
}

// PersistentStore is a Store whose state survives restarts.
type PersistentStore struct {
	*Store
	fs      vfs.FS
	path    string
	aesKey  crypt.DEK
	hmacKey []byte
}

// OpenPersistentStore loads (or initializes) a store snapshot at path,
// sealed with masterKey. Mutating operations snapshot the store afterwards;
// key issue/fetch volumes are low (one per file creation), so the
// write-behind simplicity costs little.
func OpenPersistentStore(fs vfs.FS, path string, masterKey []byte, policy Policy) (*PersistentStore, error) {
	ps := &PersistentStore{Store: NewStore(policy), fs: fs, path: path}
	aesRaw := crypt.HKDFSHA256(masterKey, []byte("kds-persist-v1"), []byte("aes"), crypt.KeySize)
	defer crypt.Zeroize(aesRaw)
	var err error
	ps.aesKey, err = crypt.DEKFromBytes(aesRaw)
	if err != nil {
		return nil, err
	}
	ps.hmacKey = crypt.HKDFSHA256(masterKey, []byte("kds-persist-v1"), []byte("hmac"), persistTagLen)

	data, err := vfs.ReadFile(fs, path)
	switch {
	case errors.Is(err, vfs.ErrNotFound):
		return ps, nil
	case err != nil:
		return nil, err
	}
	if err := ps.load(data); err != nil {
		return nil, err
	}
	return ps, nil
}

func (ps *PersistentStore) load(data []byte) error {
	const hdrLen = 4 + 4 + crypt.IVSize + 4
	if len(data) < hdrLen+persistTagLen {
		return fmt.Errorf("%w: truncated", ErrBadMasterKey)
	}
	if binary.LittleEndian.Uint32(data[0:4]) != persistMagic {
		return fmt.Errorf("%w: bad magic", ErrBadMasterKey)
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != persistVersion {
		return fmt.Errorf("kds: unsupported snapshot version %d", v)
	}
	var iv [crypt.IVSize]byte
	copy(iv[:], data[8:8+crypt.IVSize])
	n := binary.LittleEndian.Uint32(data[8+crypt.IVSize : hdrLen])
	if int(n) != len(data)-hdrLen-persistTagLen {
		return fmt.Errorf("%w: length mismatch", ErrBadMasterKey)
	}
	body := data[hdrLen : hdrLen+int(n)]
	tag := data[hdrLen+int(n):]
	if !crypt.VerifyHMACSHA256(ps.hmacKey, data[:hdrLen+int(n)], tag) {
		return ErrBadMasterKey
	}
	plain := make([]byte, len(body))
	if err := crypt.EncryptAt(ps.aesKey, iv, plain, body, 0); err != nil {
		return err
	}
	// The decrypted snapshot holds every DEK in hex; wipe it once decoded.
	defer crypt.Zeroize(plain)
	var st persistedState
	if err := json.Unmarshal(plain, &st); err != nil {
		return fmt.Errorf("%w: payload decode: %v", ErrBadMasterKey, err)
	}

	s := ps.Store
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, e := range st.Keys {
		raw, err := hex.DecodeString(e.DEKHex)
		if err != nil {
			return fmt.Errorf("kds: bad key encoding for %s: %w", id, err)
		}
		dek, err := crypt.DEKFromBytes(raw)
		crypt.Zeroize(raw)
		if err != nil {
			return err
		}
		s.keys[KeyID(id)] = &keyEntry{
			dek:     dek,
			creator: e.Creator,
			fetches: e.Fetches,
			revoked: e.Revoked,
		}
	}
	for _, srv := range st.Authorized {
		s.authorized[srv] = true
	}
	for _, srv := range st.RevokedSrv {
		s.revokedSrv[srv] = true
	}
	s.issued, s.fetched, s.denied = st.Issued, st.Fetched, st.Denied
	return nil
}

// Save snapshots the store to disk (write-then-rename).
func (ps *PersistentStore) Save() error {
	s := ps.Store
	s.mu.Lock()
	st := persistedState{
		Keys:   make(map[string]persistedEntry, len(s.keys)),
		Issued: s.issued, Fetched: s.fetched, Denied: s.denied,
	}
	for id, e := range s.keys {
		st.Keys[string(id)] = persistedEntry{
			DEKHex:  hex.EncodeToString(e.dek[:]), //shield:nokeyhygiene snapshot is AES-CTR encrypted and HMAC-tagged before it reaches disk
			Creator: e.creator,
			Fetches: e.fetches,
			Revoked: e.revoked,
		}
	}
	for srv := range s.authorized {
		st.Authorized = append(st.Authorized, srv)
	}
	for srv := range s.revokedSrv {
		st.RevokedSrv = append(st.RevokedSrv, srv)
	}
	s.mu.Unlock()

	plain, err := json.Marshal(&st)
	if err != nil {
		return err
	}
	// The marshaled snapshot holds every DEK in hex; wipe it once encrypted.
	defer crypt.Zeroize(plain)
	iv, err := crypt.NewIV()
	if err != nil {
		return err
	}
	body := make([]byte, len(plain))
	if err := crypt.EncryptAt(ps.aesKey, iv, body, plain, 0); err != nil {
		return err
	}
	const hdrLen = 4 + 4 + crypt.IVSize + 4
	out := make([]byte, hdrLen, hdrLen+len(body)+persistTagLen)
	binary.LittleEndian.PutUint32(out[0:4], persistMagic)
	binary.LittleEndian.PutUint32(out[4:8], persistVersion)
	copy(out[8:8+crypt.IVSize], iv[:])
	binary.LittleEndian.PutUint32(out[8+crypt.IVSize:hdrLen], uint32(len(body)))
	out = append(out, body...)
	out = append(out, crypt.HMACSHA256(ps.hmacKey, out)...)

	tmp := ps.path + ".tmp"
	if err := vfs.WriteFile(ps.fs, tmp, out); err != nil {
		return err
	}
	if err := ps.fs.Rename(tmp, ps.path); err != nil {
		return err
	}
	// The rename is not durable until the parent directory is synced: a
	// crash here could resurrect the previous snapshot — or, on a fresh
	// store, no snapshot at all — losing issued keys the caller already
	// acted on.
	return ps.fs.SyncDir(path.Dir(ps.path))
}

// Authorize enrolls a server and persists the snapshot (best effort: an
// enrollment that fails to persist is still live in memory).
func (ps *PersistentStore) Authorize(serverID string) {
	ps.Store.Authorize(serverID)
	ps.Save() //nolint:errcheck
}

// RevokeServer blocks a server and persists the snapshot.
func (ps *PersistentStore) RevokeServer(serverID string) {
	ps.Store.RevokeServer(serverID)
	ps.Save() //nolint:errcheck
}

// CreateDEK issues a key and persists the snapshot.
func (ps *PersistentStore) CreateDEK(serverID string) (KeyID, crypt.DEK, error) {
	id, dek, err := ps.Store.CreateDEK(serverID)
	if err != nil {
		return id, dek, err
	}
	if err := ps.Save(); err != nil {
		return "", crypt.DEK{}, fmt.Errorf("kds: persisting after issue: %w", err)
	}
	return id, dek, nil
}

// CreateDEKToken issues a key idempotently and persists the snapshot.
// The token window itself is not persisted: a KDS restart forgets recent
// tokens, so a retry that straddles the restart mints a fresh key — a
// bounded leak, never a lost one.
func (ps *PersistentStore) CreateDEKToken(serverID, token string) (KeyID, crypt.DEK, error) {
	id, dek, err := ps.Store.CreateDEKToken(serverID, token)
	if err != nil {
		return id, dek, err
	}
	if err := ps.Save(); err != nil {
		return "", crypt.DEK{}, fmt.Errorf("kds: persisting after issue: %w", err)
	}
	return id, dek, nil
}

// FetchDEK resolves a key and persists the snapshot (fetch budgets are
// state too — one-time provisioning must survive a KDS restart).
func (ps *PersistentStore) FetchDEK(serverID string, id KeyID) (crypt.DEK, error) {
	dek, err := ps.Store.FetchDEK(serverID, id)
	if err != nil {
		return dek, err
	}
	if err := ps.Save(); err != nil {
		return crypt.DEK{}, fmt.Errorf("kds: persisting after fetch: %w", err)
	}
	return dek, nil
}

// RevokeDEK revokes a key and persists the snapshot.
func (ps *PersistentStore) RevokeDEK(id KeyID) error {
	if err := ps.Store.RevokeDEK(id); err != nil {
		return err
	}
	return ps.Save()
}
