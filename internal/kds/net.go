package kds

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"shield/internal/crypt"
	"shield/internal/metrics"
	"shield/internal/netretry"
)

// The wire protocol is newline-delimited JSON over TCP. Each request carries
// the caller's server identity; a production deployment would authenticate
// it (mutual TLS, Kerberos tickets, SSToolkit session keys) — the threat
// model assumes the security infrastructure itself is sound (Section 3.1),
// so identity is taken at face value here and enforcement happens in the
// Store's authorization tables.

type wireRequest struct {
	Op       string `json:"op"` // "create" | "fetch" | "revoke"
	ServerID string `json:"server_id"`
	KeyID    string `json:"key_id,omitempty"`

	// Token makes "create" idempotent: a retried create with the same
	// token resolves to the key already issued for it (TokenCreator).
	Token string `json:"token,omitempty"`
}

type wireResponse struct {
	OK     bool   `json:"ok"`
	Err    string `json:"err,omitempty"`
	KeyID  string `json:"key_id,omitempty"`
	DEKHex string `json:"dek_hex,omitempty"`
}

// Server exposes a Store over TCP. Several Servers may front the same Store,
// modeling the decentralized replica set.
type Server struct {
	store Backend
	ln    net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewServer starts a KDS server on addr (e.g. "127.0.0.1:0") backed by store.
func NewServer(store Backend, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("kds: listen: %w", err)
	}
	s := &Server{store: store, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and disconnects all clients.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var req wireRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := s.handle(req)
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

func (s *Server) handle(req wireRequest) wireResponse {
	switch req.Op {
	case "create":
		var (
			id  KeyID
			dek crypt.DEK
			err error
		)
		if tc, ok := s.store.(TokenCreator); ok && req.Token != "" {
			id, dek, err = tc.CreateDEKToken(req.ServerID, req.Token)
		} else {
			id, dek, err = s.store.CreateDEK(req.ServerID)
		}
		if err != nil {
			return wireResponse{Err: err.Error()}
		}
		return wireResponse{OK: true, KeyID: string(id), DEKHex: hex.EncodeToString(dek[:])} //shield:nokeyhygiene threat model (Section 3.1) assumes the KDS channel is secured by infrastructure
	case "fetch":
		dek, err := s.store.FetchDEK(req.ServerID, KeyID(req.KeyID))
		if err != nil {
			return wireResponse{Err: err.Error()}
		}
		return wireResponse{OK: true, KeyID: req.KeyID, DEKHex: hex.EncodeToString(dek[:])} //shield:nokeyhygiene threat model (Section 3.1) assumes the KDS channel is secured by infrastructure
	case "revoke":
		if err := s.store.RevokeDEK(KeyID(req.KeyID)); err != nil {
			return wireResponse{Err: err.Error()}
		}
		return wireResponse{OK: true}
	default:
		return wireResponse{Err: fmt.Sprintf("kds: unknown op %q", req.Op)}
	}
}

// ClientConfig tunes the client's fault-tolerance behavior. The zero
// value selects the defaults noted per field.
type ClientConfig struct {
	// DialTimeout bounds each connection attempt to one replica
	// (default 1s).
	DialTimeout time.Duration

	// RequestTimeout is the per-attempt deadline covering send and
	// receive, so a hung replica cannot wedge the caller (default 2s).
	RequestTimeout time.Duration

	// MaxAttempts is the total number of transport attempts per request,
	// across replicas (default 4).
	MaxAttempts int

	// BackoffBase and BackoffMax shape the jittered exponential backoff
	// between attempts (defaults 5ms and 250ms).
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// NoIdempotencyTokens disables the create-token protocol, for
	// backends that do not implement TokenCreator. Without tokens a
	// create whose transport fails after the request may have been
	// delivered is NOT retried — it fails with ErrUnconfirmed, because a
	// blind re-send could double-issue a DEK.
	NoIdempotencyTokens bool
}

func (cfg ClientConfig) withDefaults() ClientConfig {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = time.Second
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 2 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 5 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 250 * time.Millisecond
	}
	return cfg
}

// Client is a Service that talks to one or more KDS replicas over TCP.
// Every request carries a deadline and fails over between replicas with
// jittered exponential backoff; idempotent requests (fetch, revoke, and
// token-carrying creates) are retried across replicas, non-idempotent
// ones surface ErrUnconfirmed rather than risk double application. It is
// safe for concurrent use; requests are serialized over one connection.
type Client struct {
	serverID string
	group    *netretry.Group
	cfg      ClientConfig
	done     chan struct{}

	reqMu sync.Mutex // serializes requests on the shared connection

	mu     sync.Mutex // guards connection state below
	conn   net.Conn
	enc    *json.Encoder
	dec    *json.Decoder
	ep     *netretry.Endpoint // replica the live connection is dialed to
	closed bool
}

// NewClient returns a Service identifying as serverID against the given
// replica addresses, with default fault-tolerance settings.
func NewClient(serverID string, addrs ...string) *Client {
	return NewClientConfig(serverID, ClientConfig{}, addrs...)
}

// NewClientConfig is NewClient with explicit retry/timeout settings.
func NewClientConfig(serverID string, cfg ClientConfig, addrs ...string) *Client {
	cfg = cfg.withDefaults()
	return &Client{
		serverID: serverID,
		group:    netretry.NewGroup(cfg.BackoffBase, cfg.BackoffMax, addrs...),
		cfg:      cfg,
		done:     make(chan struct{}),
	}
}

// Status snapshots per-replica health, for INFO surfaces and tests.
func (c *Client) Status() []netretry.EndpointStatus { return c.group.Status() }

// Close releases the client connection and unblocks in-flight requests.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	close(c.done)
	if c.conn != nil {
		err := c.conn.Close() //shield:nolockio teardown must hold the state lock so a racing connect cannot resurrect the conn; Close does not block
		c.conn = nil
		return err
	}
	return nil
}

// connect returns the live connection, dialing replicas in the group's
// failover order when there is none.
func (c *Client) connect() (net.Conn, *json.Encoder, *json.Decoder, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, nil, nil, ErrClosed
	}
	if c.conn != nil {
		conn, enc, dec := c.conn, c.enc, c.dec
		c.mu.Unlock()
		return conn, enc, dec, nil
	}
	c.mu.Unlock()

	var lastErr error
	for _, ep := range c.group.Sequence() {
		conn, err := net.DialTimeout("tcp", ep.Addr(), c.cfg.DialTimeout)
		if err != nil {
			ep.Failure()
			lastErr = err
			continue
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			conn.Close()
			return nil, nil, nil, ErrClosed
		}
		ep.Success()
		c.group.Promote(ep)
		c.ep = ep
		c.conn = conn
		c.enc = json.NewEncoder(conn)
		c.dec = json.NewDecoder(bufio.NewReader(conn))
		enc, dec := c.enc, c.dec
		c.mu.Unlock()
		return conn, enc, dec, nil
	}
	if lastErr == nil {
		lastErr = errors.New("no addresses configured")
	}
	return nil, nil, nil, fmt.Errorf("%w: %v", ErrNoReplica, lastErr)
}

// dropConn discards a failed connection, charges the failure to its
// replica, and rotates the group preference so the next dial tries a
// different server first.
func (c *Client) dropConn(conn net.Conn) {
	conn.Close()
	c.mu.Lock()
	var ep *netretry.Endpoint
	if c.conn == conn {
		c.conn = nil
		ep, c.ep = c.ep, nil
	}
	c.mu.Unlock()
	if ep != nil {
		ep.Failure()
		c.group.Advance(ep)
	}
}

// roundTrip sends one request with deadlines, backoff, and failover.
// idempotent requests are re-sent on transport errors; others fail with
// ErrUnconfirmed once the request may have been delivered.
//
//shield:nolockio reqMu is the request queue: serializing I/O over the shared connection is its whole job
func (c *Client) roundTrip(req wireRequest, idempotent bool) (wireResponse, error) {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	req.ServerID = c.serverID

	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			metrics.Net.Retries.Add(1)
			if !netretry.Sleep(netretry.Delay(attempt-1, c.cfg.BackoffBase, c.cfg.BackoffMax), c.done) {
				return wireResponse{}, ErrClosed
			}
		}
		conn, enc, dec, err := c.connect()
		if err != nil {
			if errors.Is(err, ErrClosed) {
				return wireResponse{}, err
			}
			lastErr = err // nothing was sent; retryable for every op
			continue
		}
		conn.SetDeadline(time.Now().Add(c.cfg.RequestTimeout)) //nolint:errcheck
		err = enc.Encode(&req)
		if err == nil {
			var resp wireResponse
			if err = dec.Decode(&resp); err == nil {
				conn.SetDeadline(time.Time{}) //nolint:errcheck
				return resp, nil
			}
		}
		if netretry.IsTimeout(err) {
			metrics.Net.Timeouts.Add(1)
		}
		c.dropConn(conn)
		lastErr = err
		if !idempotent {
			return wireResponse{}, fmt.Errorf("%w: %v", ErrUnconfirmed, err)
		}
	}
	return wireResponse{}, fmt.Errorf("%w: request failed after %d attempts: %v",
		ErrNoReplica, c.cfg.MaxAttempts, lastErr)
}

// newCreateToken mints a random idempotency token for one create request.
func newCreateToken() (string, error) {
	var raw [16]byte
	if _, err := rand.Read(raw[:]); err != nil {
		return "", fmt.Errorf("kds: generating create token: %w", err)
	}
	return hex.EncodeToString(raw[:]), nil
}

// mapWireError converts a server-side error string back to the package's
// sentinel errors so errors.Is works across the network boundary.
func mapWireError(msg string) error {
	for _, sentinel := range []error{
		ErrUnauthorized, ErrUnknownKey, ErrAlreadyIssued, ErrRevoked, ErrKeyRevoked,
	} {
		if strings.Contains(msg, sentinel.Error()) {
			return fmt.Errorf("%w (remote: %s)", sentinel, msg)
		}
	}
	return errors.New(msg)
}

// CreateDEK implements Service. Unless disabled, the request carries an
// idempotency token so transport-level retries cannot double-issue a DEK.
func (c *Client) CreateDEK() (KeyID, crypt.DEK, error) {
	req := wireRequest{Op: "create"}
	idempotent := false
	if !c.cfg.NoIdempotencyTokens {
		token, err := newCreateToken()
		if err != nil {
			return "", crypt.DEK{}, err
		}
		req.Token = token
		idempotent = true
	}
	resp, err := c.roundTrip(req, idempotent)
	if err != nil {
		return "", crypt.DEK{}, err
	}
	if !resp.OK {
		return "", crypt.DEK{}, mapWireError(resp.Err)
	}
	raw, err := hex.DecodeString(resp.DEKHex)
	if err != nil {
		return "", crypt.DEK{}, fmt.Errorf("kds: bad DEK encoding: %w", err)
	}
	dek, err := crypt.DEKFromBytes(raw)
	crypt.Zeroize(raw)
	if err != nil {
		return "", crypt.DEK{}, err
	}
	return KeyID(resp.KeyID), dek, nil
}

// FetchDEK implements Service. Fetches are idempotent (the one-time
// budget is only consumed by a successful response reaching a *different*
// server, and re-fetch by the same server is policy-checked server-side),
// so transport failures retry freely.
func (c *Client) FetchDEK(id KeyID) (crypt.DEK, error) {
	resp, err := c.roundTrip(wireRequest{Op: "fetch", KeyID: string(id)}, true)
	if err != nil {
		return crypt.DEK{}, err
	}
	if !resp.OK {
		return crypt.DEK{}, mapWireError(resp.Err)
	}
	raw, err := hex.DecodeString(resp.DEKHex)
	if err != nil {
		return crypt.DEK{}, fmt.Errorf("kds: bad DEK encoding: %w", err)
	}
	dek, err := crypt.DEKFromBytes(raw)
	crypt.Zeroize(raw)
	return dek, err
}

// RevokeDEK implements Service. Revocation is idempotent.
func (c *Client) RevokeDEK(id KeyID) error {
	resp, err := c.roundTrip(wireRequest{Op: "revoke", KeyID: string(id)}, true)
	if err != nil {
		return err
	}
	if !resp.OK {
		return mapWireError(resp.Err)
	}
	return nil
}
