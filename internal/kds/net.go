package kds

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"

	"shield/internal/crypt"
)

// The wire protocol is newline-delimited JSON over TCP. Each request carries
// the caller's server identity; a production deployment would authenticate
// it (mutual TLS, Kerberos tickets, SSToolkit session keys) — the threat
// model assumes the security infrastructure itself is sound (Section 3.1),
// so identity is taken at face value here and enforcement happens in the
// Store's authorization tables.

type wireRequest struct {
	Op       string `json:"op"` // "create" | "fetch" | "revoke"
	ServerID string `json:"server_id"`
	KeyID    string `json:"key_id,omitempty"`
}

type wireResponse struct {
	OK     bool   `json:"ok"`
	Err    string `json:"err,omitempty"`
	KeyID  string `json:"key_id,omitempty"`
	DEKHex string `json:"dek_hex,omitempty"`
}

// Server exposes a Store over TCP. Several Servers may front the same Store,
// modeling the decentralized replica set.
type Server struct {
	store Backend
	ln    net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewServer starts a KDS server on addr (e.g. "127.0.0.1:0") backed by store.
func NewServer(store Backend, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("kds: listen: %w", err)
	}
	s := &Server{store: store, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and disconnects all clients.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var req wireRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := s.handle(req)
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

func (s *Server) handle(req wireRequest) wireResponse {
	switch req.Op {
	case "create":
		id, dek, err := s.store.CreateDEK(req.ServerID)
		if err != nil {
			return wireResponse{Err: err.Error()}
		}
		return wireResponse{OK: true, KeyID: string(id), DEKHex: hex.EncodeToString(dek[:])}
	case "fetch":
		dek, err := s.store.FetchDEK(req.ServerID, KeyID(req.KeyID))
		if err != nil {
			return wireResponse{Err: err.Error()}
		}
		return wireResponse{OK: true, KeyID: req.KeyID, DEKHex: hex.EncodeToString(dek[:])}
	case "revoke":
		if err := s.store.RevokeDEK(KeyID(req.KeyID)); err != nil {
			return wireResponse{Err: err.Error()}
		}
		return wireResponse{OK: true}
	default:
		return wireResponse{Err: fmt.Sprintf("kds: unknown op %q", req.Op)}
	}
}

// Client is a Service that talks to one or more KDS replicas over TCP,
// failing over in order. It is safe for concurrent use; requests are
// serialized over a single connection per replica.
type Client struct {
	serverID string
	addrs    []string

	mu     sync.Mutex
	conn   net.Conn
	enc    *json.Encoder
	dec    *json.Decoder
	closed bool
}

// NewClient returns a Service identifying as serverID against the given
// replica addresses.
func NewClient(serverID string, addrs ...string) *Client {
	return &Client{serverID: serverID, addrs: addrs}
}

// Close releases the client connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn != nil {
		err := c.conn.Close()
		c.conn = nil
		return err
	}
	return nil
}

// connectLocked dials the first reachable replica. Caller holds c.mu.
func (c *Client) connectLocked() error {
	if c.conn != nil {
		return nil
	}
	var lastErr error
	for _, addr := range c.addrs {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			lastErr = err
			continue
		}
		c.conn = conn
		c.enc = json.NewEncoder(conn)
		c.dec = json.NewDecoder(bufio.NewReader(conn))
		return nil
	}
	if lastErr == nil {
		lastErr = errors.New("no addresses configured")
	}
	return fmt.Errorf("%w: %v", ErrNoReplica, lastErr)
}

func (c *Client) roundTrip(req wireRequest) (wireResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return wireResponse{}, ErrClosed
	}
	req.ServerID = c.serverID
	// Two attempts: a stale connection (replica restarted) gets one redial.
	for attempt := 0; attempt < 2; attempt++ {
		if err := c.connectLocked(); err != nil {
			return wireResponse{}, err
		}
		if err := c.enc.Encode(&req); err != nil {
			c.conn.Close()
			c.conn = nil
			continue
		}
		var resp wireResponse
		if err := c.dec.Decode(&resp); err != nil {
			c.conn.Close()
			c.conn = nil
			continue
		}
		return resp, nil
	}
	return wireResponse{}, fmt.Errorf("%w: request failed after retry", ErrNoReplica)
}

// mapWireError converts a server-side error string back to the package's
// sentinel errors so errors.Is works across the network boundary.
func mapWireError(msg string) error {
	for _, sentinel := range []error{
		ErrUnauthorized, ErrUnknownKey, ErrAlreadyIssued, ErrRevoked, ErrKeyRevoked,
	} {
		if strings.Contains(msg, sentinel.Error()) {
			return fmt.Errorf("%w (remote: %s)", sentinel, msg)
		}
	}
	return errors.New(msg)
}

// CreateDEK implements Service.
func (c *Client) CreateDEK() (KeyID, crypt.DEK, error) {
	resp, err := c.roundTrip(wireRequest{Op: "create"})
	if err != nil {
		return "", crypt.DEK{}, err
	}
	if !resp.OK {
		return "", crypt.DEK{}, mapWireError(resp.Err)
	}
	raw, err := hex.DecodeString(resp.DEKHex)
	if err != nil {
		return "", crypt.DEK{}, fmt.Errorf("kds: bad DEK encoding: %w", err)
	}
	dek, err := crypt.DEKFromBytes(raw)
	if err != nil {
		return "", crypt.DEK{}, err
	}
	return KeyID(resp.KeyID), dek, nil
}

// FetchDEK implements Service.
func (c *Client) FetchDEK(id KeyID) (crypt.DEK, error) {
	resp, err := c.roundTrip(wireRequest{Op: "fetch", KeyID: string(id)})
	if err != nil {
		return crypt.DEK{}, err
	}
	if !resp.OK {
		return crypt.DEK{}, mapWireError(resp.Err)
	}
	raw, err := hex.DecodeString(resp.DEKHex)
	if err != nil {
		return crypt.DEK{}, fmt.Errorf("kds: bad DEK encoding: %w", err)
	}
	return crypt.DEKFromBytes(raw)
}

// RevokeDEK implements Service.
func (c *Client) RevokeDEK(id KeyID) error {
	resp, err := c.roundTrip(wireRequest{Op: "revoke", KeyID: string(id)})
	if err != nil {
		return err
	}
	if !resp.OK {
		return mapWireError(resp.Err)
	}
	return nil
}
