package kds

import (
	"errors"
	"testing"

	"shield/internal/vfs"
)

func TestPersistentStoreSurvivesRestart(t *testing.T) {
	fs := vfs.NewMem()
	master := []byte("kds-root-secret")

	ps, err := OpenPersistentStore(fs, "kds.db", master, Policy{MaxFetches: 1})
	if err != nil {
		t.Fatal(err)
	}
	ps.Authorize("owner")
	ps.Authorize("other")
	ps.RevokeServer("bad-guy")

	id, dek, err := ps.CreateDEK("owner")
	if err != nil {
		t.Fatal(err)
	}
	// Consume the one-time budget before the restart.
	if _, err := ps.FetchDEK("other", id); err != nil {
		t.Fatal(err)
	}

	// Restart.
	ps2, err := OpenPersistentStore(fs, "kds.db", master, Policy{MaxFetches: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The key survives; the owner re-fetches it.
	got, err := ps2.FetchDEK("owner", id)
	if err != nil {
		t.Fatal(err)
	}
	if got != dek {
		t.Fatal("DEK changed across restart")
	}
	// The exhausted one-time budget survives too.
	ps2.Authorize("third")
	if _, err := ps2.FetchDEK("third", id); !errors.Is(err, ErrAlreadyIssued) {
		t.Fatalf("fetch budget forgotten across restart: %v", err)
	}
	// Server revocation survives.
	if _, _, err := ps2.CreateDEK("bad-guy"); !errors.Is(err, ErrRevoked) {
		t.Fatalf("revocation forgotten: %v", err)
	}
}

func TestPersistentStoreWrongMasterKey(t *testing.T) {
	fs := vfs.NewMem()
	ps, err := OpenPersistentStore(fs, "kds.db", []byte("right"), DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	ps.Authorize("s")
	if _, _, err := ps.CreateDEK("s"); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenPersistentStore(fs, "kds.db", []byte("wrong"), DefaultPolicy()); !errors.Is(err, ErrBadMasterKey) {
		t.Fatalf("wrong master key accepted: %v", err)
	}
}

func TestPersistentStoreTamperDetected(t *testing.T) {
	fs := vfs.NewMem()
	master := []byte("m")
	ps, err := OpenPersistentStore(fs, "kds.db", master, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	ps.Authorize("s")
	ps.CreateDEK("s")

	data, err := vfs.ReadFile(fs, "kds.db")
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	vfs.WriteFile(fs, "kds.db", data)
	if _, err := OpenPersistentStore(fs, "kds.db", master, DefaultPolicy()); !errors.Is(err, ErrBadMasterKey) {
		t.Fatalf("tampered snapshot accepted: %v", err)
	}
}

func TestPersistentStoreNoPlaintextKeys(t *testing.T) {
	fs := vfs.NewMem()
	ps, err := OpenPersistentStore(fs, "kds.db", []byte("m"), DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	ps.Authorize("s")
	id, dek, err := ps.CreateDEK("s")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := vfs.ReadFile(fs, "kds.db")
	if containsBytes(data, dek[:]) || containsBytes(data, []byte(dek.Hex())) || containsBytes(data, []byte(id)) {
		t.Fatal("plaintext key material in the KDS snapshot")
	}
}

func containsBytes(haystack, needle []byte) bool {
	if len(needle) == 0 {
		return false
	}
outer:
	for i := 0; i+len(needle) <= len(haystack); i++ {
		for j := range needle {
			if haystack[i+j] != needle[j] {
				continue outer
			}
		}
		return true
	}
	return false
}

// TestPersistentStoreBehindServer: the persistent backend plugs into the
// network front end unchanged.
func TestPersistentStoreBehindServer(t *testing.T) {
	fs := vfs.NewMem()
	ps, err := OpenPersistentStore(fs, "kds.db", []byte("m"), Policy{MaxFetches: 0})
	if err != nil {
		t.Fatal(err)
	}
	ps.Authorize("c")
	srv, err := NewServer(ps, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient("c", srv.Addr())
	id, dek, err := client.CreateDEK()
	if err != nil {
		t.Fatal(err)
	}
	client.Close()
	srv.Close()

	// Cold restart of the whole KDS node.
	ps2, err := OpenPersistentStore(fs, "kds.db", []byte("m"), Policy{MaxFetches: 0})
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := NewServer(ps2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	client2 := NewClient("c", srv2.Addr())
	defer client2.Close()
	got, err := client2.FetchDEK(id)
	if err != nil {
		t.Fatal(err)
	}
	if got != dek {
		t.Fatal("DEK lost across KDS node restart")
	}
}
