package experiments

import (
	"fmt"
	"time"

	"shield/internal/bench"
	"shield/internal/core"
	"shield/internal/crypt"
	"shield/internal/vfs"
)

func init() {
	register("table1", "Comparison of designs (measured degradation ranges)", runTable1)
	register("fig4", "Encryption vs file-write cost; overhead share by write size", runFig4)
	register("table2", "Impact of encryption for WAL-writes", runTable2)
	register("fig7", "Monolith micro/macro baseline (fillrandom, readrandom, mixgraph)", runFig7)
	register("fig8", "Mixed read/write ratios: throughput and p99 (monolith)", runFig8)
	register("fig9", "YCSB A-F (monolith)", runFig9)
	register("fig10", "Sensitivity: value size", runFig10)
	register("fig11", "Sensitivity: writer threads", runFig11)
	register("fig12", "Sensitivity: background threads", runFig12)
	register("fig13", "Sensitivity: chunk size and encryption threads (compaction time)", runFig13)
	register("fig14", "Sensitivity: WAL buffer size", runFig14)
}

// fillWorkload is the common random-write workload (db_bench fillrandom
// defaults: 16-byte keys, 100-byte values).
func fillWorkload(opt Options) bench.Workload {
	return bench.Workload{NumOps: opt.ops(100_000)}
}

// runVariants runs fn for each variant on a fresh monolithic deployment and
// reports overhead vs the first (baseline) variant.
func runVariants(opt Options, variants []variant, fn func(*deployment, variant) (bench.Result, error)) ([]bench.Result, error) {
	var results []bench.Result
	var baseline float64
	for i, v := range variants {
		dep, err := openMonolith(v, engineOpts())
		if err != nil {
			return nil, err
		}
		r, err := fn(dep, v)
		dep.Close()
		if err != nil {
			return nil, err
		}
		r.Name = v.name + ":" + r.Name
		if i == 0 {
			baseline = r.OpsPerSec
		}
		report(opt.Out, r, baselineIf(i > 0, baseline))
		results = append(results, r)
	}
	return results, nil
}

func baselineIf(cond bool, v float64) float64 {
	if cond {
		return v
	}
	return 0
}

// ---- Table 1 ----

func runTable1(opt Options) error {
	// Measure the fillrandom (worst-case) degradation of both designs and
	// print the qualitative comparison table with measured ranges.
	w := fillWorkload(opt)
	results, err := runVariants(opt, []variant{vNone, vEncFS, vShield, vEncFSBuf, vShieldBuf},
		func(dep *deployment, v variant) (bench.Result, error) {
			return bench.FillRandom(dep.db, w), nil
		})
	if err != nil {
		return err
	}
	base := results[0].OpsPerSec
	deg := func(i int) float64 { return (base - results[i].OpsPerSec) / base * 100 }
	fmt.Fprintf(opt.Out, "\n  %-22s %-8s %-10s %-12s %-14s %s\n",
		"Design", "DS", "At-Rest", "DEK practices", "Data-in-Use", "Write degradation")
	fmt.Fprintf(opt.Out, "  %-22s %-8s %-10s %-12s %-14s %s\n",
		"No-Encryption", "n/a", "no", "n/a", "no", "0% (baseline)")
	fmt.Fprintf(opt.Out, "  %-22s %-8s %-10s %-12s %-14s %s\n",
		"Enclave solutions", "no", "partial", "no", "yes", "340-1500% (reported by paper)")
	fmt.Fprintf(opt.Out, "  %-22s %-8s %-10s %-12s %-14s 0-%.0f%% (buffered: %.0f%%)\n",
		"Instance-level (EncFS)", "yes", "yes", "no", "no", deg(1), deg(3))
	fmt.Fprintf(opt.Out, "  %-22s %-8s %-10s %-12s %-14s 0-%.0f%% (buffered: %.0f%%)\n",
		"SHIELD", "yes", "yes", "yes", "no", deg(2), deg(4))
	return nil
}

// ---- Figure 4 ----

func runFig4(opt Options) error {
	// (a) Cost of a one-shot encryption (full initialization + AES-CTR)
	// vs appending the same bytes to a file, across write sizes.
	key, err := crypt.NewDEK()
	if err != nil {
		return err
	}
	iv, err := crypt.NewIV()
	if err != nil {
		return err
	}
	fs := vfs.NewOS()
	dir, cleanup, err := tempDir()
	if err != nil {
		return err
	}
	defer cleanup()

	sizes := []int{64, 256, 1024, 4096, 16 << 10, 64 << 10, 256 << 10, 1 << 20}
	iters := opt.ops(2000)
	fmt.Fprintf(opt.Out, "  %-10s %-14s %-14s %-10s\n", "size", "encrypt/op", "file-write/op", "enc/write")
	for _, size := range sizes {
		n := iters
		if size >= 64<<10 {
			n = iters / 16
		}
		src := make([]byte, size)
		dst := make([]byte, size)

		encStart := time.Now()
		for i := 0; i < n; i++ {
			if err := crypt.EncryptAt(key, iv, dst, src, int64(i*size)); err != nil {
				return err
			}
		}
		encPer := time.Since(encStart) / time.Duration(n)

		f, err := fs.Create(dir + "/fig4a.bin") //shield:nosyncdir benchmark scratch file, removed right below; durability is not measured
		if err != nil {
			return err
		}
		wrStart := time.Now()
		for i := 0; i < n; i++ {
			if _, err := f.Write(src); err != nil {
				return err
			}
		}
		wrPer := time.Since(wrStart) / time.Duration(n)
		f.Close()
		fs.Remove(dir + "/fig4a.bin")

		fmt.Fprintf(opt.Out, "  %-10d %-14v %-14v %.2fx\n", size, encPer, wrPer,
			float64(encPer)/float64(wrPer))
	}

	// (b) Encryption share of a WAL write for small KV sizes: time a write
	// (copy into a memory file, the analog of the OS buffer) with and
	// without per-write encryption.
	fmt.Fprintf(opt.Out, "\n  %-10s %-16s %-16s %s\n", "kv-size", "plain write/op", "enc write/op", "enc overhead")
	mem := vfs.NewMem()
	for _, size := range []int{50, 100, 250, 500, 1000, 4000} {
		src := make([]byte, size)
		n := iters * 4

		pf, _ := mem.Create("plain") //shield:nosyncdir in-memory FS; directory durability has no meaning here
		plainStart := time.Now()
		for i := 0; i < n; i++ {
			pf.Write(src)
		}
		plainPer := time.Since(plainStart) / time.Duration(n)
		pf.Close()

		ef, _ := mem.Create("enc")                    //shield:nosyncdir in-memory FS; directory durability has no meaning here
		ew := crypt.NewBufferedWriter(ef, key, iv, 0) // flush==init every write
		encStart := time.Now()
		for i := 0; i < n; i++ {
			ew.Write(src)
		}
		encPer := time.Since(encStart) / time.Duration(n)
		ew.Close()

		fmt.Fprintf(opt.Out, "  %-10d %-16v %-16v %+.0f%%\n", size, plainPer, encPer,
			(float64(encPer)-float64(plainPer))/float64(plainPer)*100)
	}
	return nil
}

// ---- Table 2 ----

func runTable2(opt Options) error {
	w := fillWorkload(opt)
	variants := []variant{
		vNone,
		{name: "Encrypted SST", mode: core.ModeSHIELD, sstOnly: true},
		{name: "Encrypted All (SST & WAL)", mode: core.ModeSHIELD},
	}
	_, err := runVariants(opt, variants, func(dep *deployment, v variant) (bench.Result, error) {
		r := bench.FillRandom(dep.db, w)
		r.Name = "fillrandom"
		return r, nil
	})
	return err
}

// ---- Figure 7 ----

func runFig7(opt Options) error {
	writeW := fillWorkload(opt)
	readW := bench.Workload{NumOps: opt.ops(50_000), KeyCount: uint64(opt.ops(100_000))}
	mixW := bench.Workload{NumOps: opt.ops(20_000), KeyCount: uint64(opt.ops(100_000))}

	fmt.Fprintln(opt.Out, " fillrandom:")
	if _, err := runVariants(opt, monolithVariants, func(dep *deployment, v variant) (bench.Result, error) {
		return bench.FillRandom(dep.db, writeW), nil
	}); err != nil {
		return err
	}

	fmt.Fprintln(opt.Out, " readrandom (preloaded):")
	if _, err := runVariants(opt, monolithVariants, func(dep *deployment, v variant) (bench.Result, error) {
		if err := bench.Preload(dep.db, readW); err != nil {
			return bench.Result{}, err
		}
		return bench.ReadRandom(dep.db, readW), nil
	}); err != nil {
		return err
	}

	fmt.Fprintln(opt.Out, " mixgraph (preloaded):")
	_, err := runVariants(opt, monolithVariants, func(dep *deployment, v variant) (bench.Result, error) {
		if err := bench.Preload(dep.db, mixW); err != nil {
			return bench.Result{}, err
		}
		return bench.Mixgraph(dep.db, mixW), nil
	})
	return err
}

// ---- Figure 8 ----

func runFig8(opt Options) error {
	ratios := []int{0, 25, 50, 75, 90, 100}
	variants := []variant{vNone, vEncFS, vShield}
	for _, ratio := range ratios {
		fmt.Fprintf(opt.Out, " read%%=%d:\n", ratio)
		w := bench.Workload{
			NumOps:   opt.ops(30_000),
			KeyCount: uint64(opt.ops(100_000)),
			ReadPct:  ratio,
		}
		if _, err := runVariants(opt, variants, func(dep *deployment, v variant) (bench.Result, error) {
			if err := bench.Preload(dep.db, w); err != nil {
				return bench.Result{}, err
			}
			return bench.MixedRatio(dep.db, w), nil
		}); err != nil {
			return err
		}
	}
	return nil
}

// ---- Figure 9 ----

func runFig9(opt Options) error {
	load := bench.Workload{KeyCount: uint64(opt.ops(20_000)), ValueSize: 1024}
	runW := bench.Workload{
		NumOps:    opt.ops(10_000),
		KeyCount:  load.KeyCount,
		ValueSize: 1024,
	}
	for _, kind := range bench.AllYCSB {
		fmt.Fprintf(opt.Out, " YCSB-%c:\n", kind)
		if _, err := runVariants(opt, monolithVariants, func(dep *deployment, v variant) (bench.Result, error) {
			if err := bench.YCSBLoad(dep.db, load); err != nil {
				return bench.Result{}, err
			}
			return bench.YCSB(dep.db, kind, runW), nil
		}); err != nil {
			return err
		}
	}
	return nil
}

// ---- Figure 10 ----

func runFig10(opt Options) error {
	variants := []variant{vNone, vEncFS, vShield, vEncFSBuf, vShieldBuf}
	for _, vs := range []int{50, 100, 250, 500, 1000} {
		fmt.Fprintf(opt.Out, " value=%dB:\n", vs)
		w := bench.Workload{NumOps: opt.ops(60_000), ValueSize: vs}
		if _, err := runVariants(opt, variants, func(dep *deployment, v variant) (bench.Result, error) {
			return bench.FillRandom(dep.db, w), nil
		}); err != nil {
			return err
		}
	}
	return nil
}

// ---- Figure 11 ----

func runFig11(opt Options) error {
	variants := []variant{vNone, vShield, vShieldBuf}
	for _, threads := range []int{1, 2, 4, 8} {
		fmt.Fprintf(opt.Out, " writer-threads=%d (16 background jobs):\n", threads)
		w := bench.Workload{NumOps: opt.ops(60_000), Threads: threads}
		opts := engineOpts()
		opts.MaxBackgroundJobs = 16
		for i, v := range variants {
			dep, err := openOn(v, vfs.NewMem(), opts, 0)
			if err != nil {
				return err
			}
			r := bench.FillRandom(dep.db, w)
			dep.Close()
			r.Name = v.name + ":fillrandom"
			report(opt.Out, r, 0)
			_ = i
		}
	}
	return nil
}

// ---- Figure 12 ----

func runFig12(opt Options) error {
	for _, jobs := range []int{2, 4, 8} {
		fmt.Fprintf(opt.Out, " background-jobs=%d (4 writer threads):\n", jobs)
		w := bench.Workload{NumOps: opt.ops(60_000), Threads: 4}
		opts := engineOpts()
		opts.MaxBackgroundJobs = jobs
		for _, v := range []variant{vNone, vShieldBuf} {
			dep, err := openOn(v, vfs.NewMem(), opts, 0)
			if err != nil {
				return err
			}
			r := bench.FillRandom(dep.db, w)
			dep.Close()
			r.Name = v.name + ":fillrandom"
			report(opt.Out, r, 0)
		}
	}
	return nil
}

// ---- Figure 13 ----

func runFig13(opt Options) error {
	// Compaction wall time for SHIELD as the encryption chunk size and
	// thread count vary, vs the EncFS and plaintext baselines.
	prep := func(dep *deployment) error {
		w := bench.Workload{NumOps: opt.ops(80_000)}
		if r := bench.FillRandom(dep.db, w); r.Errors > 0 {
			return fmt.Errorf("fill errors: %d", r.Errors)
		}
		return dep.db.Flush()
	}
	timeCompact := func(dep *deployment) (time.Duration, error) {
		start := time.Now()
		if err := dep.db.CompactRange(); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}

	for _, v := range []variant{vNone, vEncFS} {
		dep, err := openMonolith(v, engineOpts())
		if err != nil {
			return err
		}
		if err := prep(dep); err != nil {
			dep.Close()
			return err
		}
		d, err := timeCompact(dep)
		dep.Close()
		if err != nil {
			return err
		}
		fmt.Fprintf(opt.Out, "  %-28s compaction=%v\n", v.name, d.Round(time.Millisecond))
	}

	for _, threads := range []int{1, 2, 4} {
		for _, chunk := range []int{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 2 << 20} {
			fs := vfs.NewMem()
			cfg := core.Config{
				Mode:                core.ModeSHIELD,
				FS:                  fs,
				CompactionChunkSize: chunk,
				EncryptionThreads:   threads,
			}
			store := newBenchKDS()
			cfg.KDS = store
			db, err := core.Open("db", cfg, engineOpts())
			if err != nil {
				return err
			}
			dep := &deployment{db: db}
			if err := prep(dep); err != nil {
				dep.Close()
				return err
			}
			d, err := timeCompact(dep)
			dep.Close()
			if err != nil {
				return err
			}
			fmt.Fprintf(opt.Out, "  SHIELD chunk=%-8d threads=%d  compaction=%v\n",
				chunk, threads, d.Round(time.Millisecond))
		}
	}
	return nil
}

// ---- Figure 14 ----

func runFig14(opt Options) error {
	w := fillWorkload(opt)
	// Baseline once.
	dep, err := openMonolith(vNone, engineOpts())
	if err != nil {
		return err
	}
	base := bench.FillRandom(dep.db, w)
	dep.Close()
	base.Name = "RocksDB:fillrandom"
	report(opt.Out, base, 0)

	for _, buf := range []int{0, 128, 256, 512, 1024, 2048} {
		for _, mode := range []core.Mode{core.ModeEncFS, core.ModeSHIELD} {
			v := variant{name: fmt.Sprintf("%s buf=%d", mode, buf), mode: mode, walBuf: buf}
			dep, err := openMonolith(v, engineOpts())
			if err != nil {
				return err
			}
			r := bench.FillRandom(dep.db, w)
			dep.Close()
			r.Name = v.name
			report(opt.Out, r, base.OpsPerSec)
		}
	}
	return nil
}
