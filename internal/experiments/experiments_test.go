package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestRegistryComplete: every table/figure of the paper's evaluation has a
// registered experiment, in paper order.
func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "fig4", "table2", "fig7", "fig8", "fig9", "fig10", "fig11",
		"fig12", "fig13", "fig14", "fig15", "table3", "fig16", "fig17",
		"fig18", "fig19", "fig20", "fig21", "fig22", "fig23", "fig24",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registered %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Fatalf("position %d: %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := Run("fig99", Options{}); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}

// TestSmokeMonolith runs the cheap monolithic experiments end to end at the
// minimum scale to make sure every code path executes and reports.
func TestSmokeMonolith(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping experiment smoke test in -short mode")
	}
	var out bytes.Buffer
	opt := Options{Scale: 0.01, Out: &out}
	for _, id := range []string{"table2", "fig14"} {
		if err := Run(id, opt); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	report := out.String()
	for _, needle := range []string{"Encrypted All", "fillrandom", "overhead="} {
		if !strings.Contains(report, needle) {
			t.Fatalf("report missing %q:\n%s", needle, report)
		}
	}
}

// TestSmokeDS runs one disaggregated experiment at minimum scale, covering
// the dstore/compactsvc/KDS wiring inside the harness.
func TestSmokeDS(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping experiment smoke test in -short mode")
	}
	var out bytes.Buffer
	if err := Run("fig16", Options{Scale: 0.01, Out: &out}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "kds-latency") {
		t.Fatalf("fig16 report malformed:\n%s", out.String())
	}
}
