// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6). Each experiment id (table1, table2, table3,
// fig4–fig24) maps to a function that builds the right deployment
// (monolithic, disaggregated storage, offloaded compaction), runs the
// paper's workload, and prints the corresponding rows/series.
//
// Absolute numbers differ from the paper (this substrate is a simulator on
// different hardware); the reproduced quantity is the *shape*: which
// variant wins, by roughly what factor, and where the curves converge.
package experiments

import (
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"shield/internal/bench"
	"shield/internal/core"
	"shield/internal/crypt"
	"shield/internal/kds"
	"shield/internal/lsm"
	"shield/internal/vfs"
)

// Options configures a run.
type Options struct {
	// Scale multiplies the baseline operation counts (1.0 ≈ seconds per
	// experiment cell on a laptop; the paper's 50M-op runs correspond to a
	// much larger scale).
	Scale float64

	// Out receives the report; defaults to io.Discard when nil.
	Out io.Writer

	// DiskReadLatency, when set, charges every SST block read in the
	// monolithic experiments with a device latency (e.g. 60µs to emulate
	// the paper's SAS SSD). With it, decryption hides inside read latency
	// as in the paper; at the default 0 the substrate is memory-speed and
	// read overheads are inflated (EXPERIMENTS.md deviation 1).
	DiskReadLatency time.Duration
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1.0
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	return o
}

func (o Options) ops(base int) int {
	n := int(float64(base) * o.Scale)
	if n < 1000 {
		n = 1000
	}
	return n
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) error
}

var registry []Experiment

func register(id, title string, run func(Options) error) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// All returns the registered experiments in paper order.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool { return orderKey(out[i].ID) < orderKey(out[j].ID) })
	return out
}

// orderKey sorts table1 < table2 < fig4 < ... < fig24 < table3 by paper
// appearance.
func orderKey(id string) int {
	order := []string{
		"table1", "fig4", "table2", "fig7", "fig8", "fig9", "fig10", "fig11",
		"fig12", "fig13", "fig14", "fig15", "table3", "fig16", "fig17",
		"fig18", "fig19", "fig20", "fig21", "fig22", "fig23", "fig24",
	}
	for i, v := range order {
		if v == id {
			return i
		}
	}
	return len(order)
}

// Run executes one experiment by id.
func Run(id string, opt Options) error {
	opt = opt.withDefaults()
	diskReadLatency = opt.DiskReadLatency
	for _, e := range registry {
		if e.ID == id {
			fmt.Fprintf(opt.Out, "\n=== %s: %s ===\n", e.ID, e.Title)
			start := time.Now()
			if err := e.Run(opt); err != nil {
				return fmt.Errorf("experiment %s: %w", id, err)
			}
			fmt.Fprintf(opt.Out, "--- %s done in %v ---\n", e.ID, time.Since(start).Round(time.Millisecond))
			return nil
		}
	}
	return fmt.Errorf("experiments: unknown id %q", id)
}

// RunAll executes every experiment in paper order.
func RunAll(opt Options) error {
	opt = opt.withDefaults()
	for _, e := range All() {
		if err := Run(e.ID, opt); err != nil {
			return err
		}
	}
	return nil
}

// ---- Deployment/variant plumbing shared by the experiments ----

// variant is one line/bar in a figure: an encryption configuration.
type variant struct {
	name   string
	mode   core.Mode
	walBuf int
	// sstOnly leaves the WAL plaintext (Table 2's middle row).
	sstOnly bool
}

var (
	vNone      = variant{name: "RocksDB", mode: core.ModeNone}
	vEncFS     = variant{name: "EncFS", mode: core.ModeEncFS}
	vShield    = variant{name: "SHIELD", mode: core.ModeSHIELD}
	vEncFSBuf  = variant{name: "EncFS+WAL-Buf", mode: core.ModeEncFS, walBuf: 512}
	vShieldBuf = variant{name: "SHIELD+WAL-Buf", mode: core.ModeSHIELD, walBuf: 512}
)

// monolithVariants are the five configurations of Figures 7–9.
var monolithVariants = []variant{vNone, vEncFS, vShield, vEncFSBuf, vShieldBuf}

// deployment is an opened database plus its teardown.
type deployment struct {
	db      *lsm.DB
	kds     *kds.Store
	cleanup []func()
}

func (d *deployment) Close() {
	if d.db != nil {
		d.db.Close()
	}
	for i := len(d.cleanup) - 1; i >= 0; i-- {
		d.cleanup[i]()
	}
}

// engineOpts returns the benchmark engine tuning: small enough that the
// scaled-down workloads still exercise flush and multi-level compaction.
func engineOpts() lsm.Options {
	return lsm.Options{
		MemtableSize:        1 << 20,
		BaseLevelSize:       4 << 20,
		TargetFileSize:      1 << 20,
		L0CompactionTrigger: 4,
		MaxBackgroundJobs:   2,
	}
}

// openMonolith opens a fresh in-memory monolithic deployment for a variant.
func openMonolith(v variant, opts lsm.Options) (*deployment, error) {
	var fs vfs.FS = vfs.NewMem()
	if diskReadLatency > 0 {
		fs = vfs.NewReadLatency(fs, diskReadLatency)
	}
	return openOn(v, fs, opts, 0)
}

// diskReadLatency is installed from Options by Run/RunAll before
// experiments execute.
var diskReadLatency time.Duration

// openOn opens a deployment for a variant on a given filesystem, with the
// KDS answering after kdsLatency.
func openOn(v variant, fs vfs.FS, opts lsm.Options, kdsLatency time.Duration) (*deployment, error) {
	dep := &deployment{}
	cfg := core.Config{
		Mode:          v.mode,
		FS:            fs,
		WALBufferSize: v.walBuf,
		PlaintextWAL:  v.sstOnly,
	}
	switch v.mode {
	case core.ModeEncFS:
		dek, err := crypt.NewDEK()
		if err != nil {
			return nil, err
		}
		cfg.InstanceDEK = dek
	case core.ModeSHIELD:
		dep.kds = kds.NewStore(kds.Policy{MaxFetches: 1, Latency: kdsLatency})
		cfg.KDS = kds.NewLocal(dep.kds, "bench-server")
	}
	db, err := core.Open("db", cfg, opts)
	if err != nil {
		dep.Close()
		return nil, err
	}
	dep.db = db
	return dep, nil
}

// newBenchKDS returns an in-process KDS service with no synthetic latency.
func newBenchKDS() kds.Service {
	return kds.NewLocal(kds.NewStore(kds.Policy{MaxFetches: 1}), "bench-server")
}

// tempDir makes a scratch directory on the host filesystem for experiments
// that need real file-write costs (Figure 4a).
func tempDir() (string, func(), error) {
	dir, err := os.MkdirTemp("", "shield-bench-*") //shield:nofs scratch directory created before any vfs.FS is mounted over it
	if err != nil {
		return "", nil, err
	}
	return dir, func() { os.RemoveAll(dir) }, nil //shield:nofs cleanup of the same pre-FS scratch directory
}

// report prints one result row with an overhead percentage vs a baseline
// throughput (0 baseline prints no comparison).
func report(out io.Writer, r bench.Result, baselineOps float64) {
	if baselineOps > 0 {
		delta := (baselineOps - r.OpsPerSec) / baselineOps * 100
		fmt.Fprintf(out, "  %s  overhead=%+.1f%%\n", r, delta)
		return
	}
	fmt.Fprintf(out, "  %s\n", r)
}
