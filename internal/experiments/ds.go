package experiments

import (
	"fmt"
	"time"

	"shield/internal/bench"
	"shield/internal/compactsvc"
	"shield/internal/core"
	"shield/internal/dstore"
	"shield/internal/kds"
	"shield/internal/lsm"
	"shield/internal/vfs"
)

func init() {
	register("fig15", "Compaction policies with offloaded compaction", runFig15)
	register("table3", "I/O distribution by server for compaction styles", runTable3)
	register("fig16", "Impact of KDS latency (offloaded compaction)", runFig16)
	register("fig17", "Increasing dataset sizes (disaggregated storage)", runFig17)
	register("fig18", "Sensitivity to CPU, memory, and network bandwidth", runFig18)
	register("fig19", "Disaggregated storage baseline (fillrandom, readrandom, mixgraph)", runFig19)
	register("fig20", "Mixed ratios in disaggregated storage", runFig20)
	register("fig21", "YCSB in disaggregated storage", runFig21)
	register("fig22", "Offloaded compaction baseline", runFig22)
	register("fig23", "Mixed ratios with offloaded compaction", runFig23)
	register("fig24", "YCSB with offloaded compaction", runFig24)
}

// dsParams shapes one disaggregated deployment.
type dsParams struct {
	// linkLatency and linkBandwidth emulate the compute<->storage network
	// (the paper's 1 Gbps switch).
	linkLatency   time.Duration
	linkBandwidth int64

	// offload ships compactions to a worker on the storage node.
	offload bool

	// kdsLatency is the synthetic KDS service time (SSToolkit ≈ 2750 µs).
	kdsLatency time.Duration

	// engine overrides engineOpts() when non-nil.
	engine *lsm.Options

	// chunk/threads tune SHIELD's compaction encryption.
	chunk   int
	threads int
}

func defaultDSParams() dsParams {
	// The paper's testbed pushes ~50M-op workloads over a 1 Gbps switch,
	// making the link the fillrandom bottleneck. Our workloads are ~1000×
	// smaller, so the emulated link is scaled down proportionally (to
	// ~100 Mbps) to preserve the network-bound regime; fig18(c) sweeps
	// bandwidth explicitly.
	return dsParams{
		linkLatency:   200 * time.Microsecond,
		linkBandwidth: 12 << 20,
	}
}

// dsEngineOpts shrinks the memtable and level targets so the scaled-down DS
// workloads still produce realistic flush/compaction pressure on the
// emulated link.
func dsEngineOpts() lsm.Options {
	return lsm.Options{
		MemtableSize:        256 << 10,
		BaseLevelSize:       1 << 20,
		TargetFileSize:      512 << 10,
		L0CompactionTrigger: 4,
		MaxBackgroundJobs:   2,
	}
}

// dsDeployment is a full disaggregated topology on loopback.
type dsDeployment struct {
	db        *lsm.DB
	computeIO *vfs.CountingFS // compute-side (network) I/O
	workerIO  *vfs.CountingFS // storage-local I/O by the compaction worker
	storage   *dstore.Server
	worker    *compactsvc.Worker
	kdsStore  *kds.Store
	closers   []func()
}

func (d *dsDeployment) Close() {
	if d.db != nil {
		d.db.Close()
	}
	for i := len(d.closers) - 1; i >= 0; i-- {
		d.closers[i]()
	}
}

// openDS builds: storage node (MemFS + dstore server with the emulated
// link), a network KDS, optionally an offloaded-compaction worker
// co-located with storage, and the compute-node DB reaching storage through
// the dstore client.
func openDS(v variant, p dsParams) (*dsDeployment, error) {
	dep := &dsDeployment{}
	fail := func(err error) (*dsDeployment, error) {
		dep.Close()
		return nil, err
	}

	baseFS := vfs.NewMem()
	storage, err := dstore.NewServer(baseFS, "127.0.0.1:0", p.linkLatency, p.linkBandwidth)
	if err != nil {
		return fail(err)
	}
	dep.storage = storage
	dep.closers = append(dep.closers, func() { storage.Close() })

	cfg := core.Config{
		Mode:                v.mode,
		WALBufferSize:       v.walBuf,
		PlaintextWAL:        v.sstOnly,
		CompactionChunkSize: p.chunk,
		EncryptionThreads:   p.threads,
	}

	var workerWrapper lsm.FileWrapper = lsm.NopWrapper{}
	if v.mode == core.ModeSHIELD {
		dep.kdsStore = kds.NewStore(kds.Policy{MaxFetches: 0, Latency: p.kdsLatency})
		dep.kdsStore.Authorize("compute-1")
		dep.kdsStore.Authorize("compaction-worker-1")
		kdsSrv, err := kds.NewServer(dep.kdsStore, "127.0.0.1:0")
		if err != nil {
			return fail(err)
		}
		dep.closers = append(dep.closers, func() { kdsSrv.Close() })

		computeKDS := kds.NewClient("compute-1", kdsSrv.Addr())
		dep.closers = append(dep.closers, func() { computeKDS.Close() })
		cfg.KDS = computeKDS

		if p.offload {
			workerKDS := kds.NewClient("compaction-worker-1", kdsSrv.Addr())
			dep.closers = append(dep.closers, func() { workerKDS.Close() })
			workerCfg := core.Config{
				Mode:                core.ModeSHIELD,
				FS:                  baseFS,
				KDS:                 workerKDS,
				CompactionChunkSize: p.chunk,
				EncryptionThreads:   p.threads,
			}
			workerWrapper, err = workerCfg.BuildWrapper()
			if err != nil {
				return fail(err)
			}
		}
	}

	opts := dsEngineOpts()
	if p.engine != nil {
		opts = *p.engine
	}

	remote, err := dstore.Dial(storage.Addr(), 4)
	if err != nil {
		return fail(err)
	}
	dep.closers = append(dep.closers, func() { remote.Close() })

	if p.offload {
		orch, err := compactsvc.NewOrchestrator(remote, "127.0.0.1:0", compactsvc.OrchestratorConfig{})
		if err != nil {
			return fail(err)
		}
		dep.closers = append(dep.closers, func() { orch.Close() })
		dep.workerIO = vfs.NewCounting(baseFS)
		worker := compactsvc.NewWorker(dep.workerIO, workerWrapper, "compaction-worker-1", orch.Addr(),
			compactsvc.WorkerConfig{PollEvery: 2 * time.Millisecond})
		dep.worker = worker
		dep.closers = append(dep.closers, func() { worker.Close() })
		opts.Compactor = orch
	}
	dep.computeIO = vfs.NewCounting(remote)
	cfg.FS = dep.computeIO

	db, err := core.Open("db", cfg, opts)
	if err != nil {
		return fail(err)
	}
	dep.db = db
	return dep, nil
}

// runDSVariants runs fn per variant on fresh DS deployments.
func runDSVariants(opt Options, variants []variant, p dsParams, fn func(*dsDeployment, variant) (bench.Result, error)) error {
	var baseline float64
	for i, v := range variants {
		dep, err := openDS(v, p)
		if err != nil {
			return err
		}
		r, err := fn(dep, v)
		dep.Close()
		if err != nil {
			return err
		}
		r.Name = v.name + ":" + r.Name
		if i == 0 {
			baseline = r.OpsPerSec
		}
		report(opt.Out, r, baselineIf(i > 0, baseline))
	}
	return nil
}

// dsVariants is the paper's DS comparison (EncFS is excluded: Section 6.4
// notes it is incompatible with the HDFS-plugin deployment).
var dsVariants = []variant{vNone, vShield, vShieldBuf}

// ---- Figure 15 ----

func runFig15(opt Options) error {
	styles := []lsm.CompactionStyle{lsm.CompactionLeveled, lsm.CompactionUniversal, lsm.CompactionFIFO}
	for _, style := range styles {
		fmt.Fprintf(opt.Out, " style=%v:\n", style)
		p := defaultDSParams()
		p.offload = true
		opts := dsEngineOpts()
		opts.CompactionStyle = style
		opts.FIFOMaxTableSize = 8 << 20
		opts.UniversalMaxRuns = 6
		p.engine = &opts

		w := bench.Workload{NumOps: opt.ops(20_000)}
		if err := runDSVariants(opt, []variant{vNone, vShieldBuf}, p, func(dep *dsDeployment, v variant) (bench.Result, error) {
			return bench.FillRandom(dep.db, w), nil
		}); err != nil {
			return err
		}
		if style == lsm.CompactionFIFO {
			fmt.Fprintln(opt.Out, "  (readrandom omitted for FIFO: early keys are dropped, as in the paper)")
			continue
		}
		rw := bench.Workload{NumOps: opt.ops(10_000), KeyCount: uint64(opt.ops(20_000))}
		if err := runDSVariants(opt, []variant{vNone, vShieldBuf}, p, func(dep *dsDeployment, v variant) (bench.Result, error) {
			if err := bench.Preload(dep.db, rw); err != nil {
				return bench.Result{}, err
			}
			return bench.ReadRandom(dep.db, rw), nil
		}); err != nil {
			return err
		}
	}
	return nil
}

// ---- Table 3 ----

func runTable3(opt Options) error {
	styles := []lsm.CompactionStyle{lsm.CompactionLeveled, lsm.CompactionUniversal, lsm.CompactionFIFO}
	fmt.Fprintf(opt.Out, "  %-10s | compute W/R (MiB) | compaction-server W/R (MiB) | ratio compute:worker\n", "style")
	for _, style := range styles {
		p := defaultDSParams()
		p.offload = true
		opts := dsEngineOpts()
		opts.CompactionStyle = style
		opts.FIFOMaxTableSize = 8 << 20
		opts.UniversalMaxRuns = 6
		p.engine = &opts

		dep, err := openDS(vShieldBuf, p)
		if err != nil {
			return err
		}
		w := bench.Workload{NumOps: opt.ops(40_000)}
		bench.FillRandom(dep.db, w)
		dep.db.Flush()
		dep.db.CompactRange()

		cio := dep.computeIO.Stats.Snapshot()
		wio := dep.workerIO.Stats.Snapshot()
		dep.Close()

		mib := func(n int64) float64 { return float64(n) / (1 << 20) }
		total := func(s vfs.Snapshot) float64 { return mib(s.BytesWritten + s.BytesRead) }
		ratio := 0.0
		if total(cio) > 0 {
			ratio = total(wio) / total(cio)
		}
		fmt.Fprintf(opt.Out, "  %-10v | %8.1f / %-8.1f | %8.1f / %-8.1f | 1:%.1f\n",
			style, mib(cio.BytesWritten), mib(cio.BytesRead),
			mib(wio.BytesWritten), mib(wio.BytesRead), ratio)
	}
	return nil
}

// ---- Figure 16 ----

func runFig16(opt Options) error {
	w := bench.Workload{NumOps: opt.ops(20_000)}
	for _, lat := range []time.Duration{0, time.Millisecond, 2750 * time.Microsecond, 5 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond} {
		p := defaultDSParams()
		p.offload = true
		p.kdsLatency = lat
		dep, err := openDS(vShieldBuf, p)
		if err != nil {
			return err
		}
		r := bench.FillRandom(dep.db, w)
		dep.Close()
		r.Name = fmt.Sprintf("SHIELD kds-latency=%v", lat)
		report(opt.Out, r, 0)
	}
	return nil
}

// ---- Figure 17 ----

func runFig17(opt Options) error {
	base := opt.ops(20_000)
	for _, mult := range []int{1, 2, 5, 10} {
		n := base * mult
		fmt.Fprintf(opt.Out, " dataset=%d KV-pairs (value=240B):\n", n)
		w := bench.Workload{NumOps: n, ValueSize: 240}
		if err := runDSVariants(opt, []variant{vNone, vShieldBuf}, defaultDSParams(), func(dep *dsDeployment, v variant) (bench.Result, error) {
			return bench.FillRandom(dep.db, w), nil
		}); err != nil {
			return err
		}
	}
	return nil
}

// ---- Figure 18 ----

func runFig18(opt Options) error {
	w := bench.Workload{NumOps: opt.ops(20_000)}

	fmt.Fprintln(opt.Out, " (a) CPU (background jobs + encryption threads):")
	for _, cpus := range []int{1, 2, 4, 8} {
		p := defaultDSParams()
		p.offload = true
		p.threads = cpus
		opts := dsEngineOpts()
		opts.MaxBackgroundJobs = cpus + 1
		p.engine = &opts
		dep, err := openDS(vShieldBuf, p)
		if err != nil {
			return err
		}
		r := bench.FillRandom(dep.db, w)
		dep.Close()
		r.Name = fmt.Sprintf("SHIELD cpus=%d", cpus)
		report(opt.Out, r, 0)
	}

	fmt.Fprintln(opt.Out, " (b) Memory (memtable + block cache):")
	for _, mb := range []int64{1, 4, 16} {
		p := defaultDSParams()
		p.offload = true
		opts := dsEngineOpts()
		opts.MemtableSize = mb << 19 // half the budget to the memtable
		opts.BlockCacheSize = mb << 19
		p.engine = &opts
		dep, err := openDS(vShieldBuf, p)
		if err != nil {
			return err
		}
		r := bench.FillRandom(dep.db, w)
		dep.Close()
		r.Name = fmt.Sprintf("SHIELD mem=%dMiB", mb)
		report(opt.Out, r, 0)
	}

	fmt.Fprintln(opt.Out, " (c) Network bandwidth:")
	for _, mbps := range []int64{100, 1000, 10000} {
		p := defaultDSParams()
		p.offload = true
		p.linkBandwidth = mbps << 20 / 8
		dep, err := openDS(vShieldBuf, p)
		if err != nil {
			return err
		}
		r := bench.FillRandom(dep.db, w)
		dep.Close()
		r.Name = fmt.Sprintf("SHIELD bw=%dMbps", mbps)
		report(opt.Out, r, 0)
	}
	return nil
}

// ---- Figures 19–24 ----

func runDSBaseline(opt Options, offload bool) error {
	p := defaultDSParams()
	p.offload = offload

	writeW := bench.Workload{NumOps: opt.ops(20_000)}
	readW := bench.Workload{NumOps: opt.ops(10_000), KeyCount: uint64(opt.ops(20_000))}
	mixW := bench.Workload{NumOps: opt.ops(8_000), KeyCount: uint64(opt.ops(20_000))}

	fmt.Fprintln(opt.Out, " fillrandom:")
	if err := runDSVariants(opt, dsVariants, p, func(dep *dsDeployment, v variant) (bench.Result, error) {
		return bench.FillRandom(dep.db, writeW), nil
	}); err != nil {
		return err
	}
	fmt.Fprintln(opt.Out, " readrandom (preloaded):")
	if err := runDSVariants(opt, dsVariants, p, func(dep *dsDeployment, v variant) (bench.Result, error) {
		if err := bench.Preload(dep.db, readW); err != nil {
			return bench.Result{}, err
		}
		return bench.ReadRandom(dep.db, readW), nil
	}); err != nil {
		return err
	}
	fmt.Fprintln(opt.Out, " mixgraph (preloaded):")
	return runDSVariants(opt, dsVariants, p, func(dep *dsDeployment, v variant) (bench.Result, error) {
		if err := bench.Preload(dep.db, mixW); err != nil {
			return bench.Result{}, err
		}
		return bench.Mixgraph(dep.db, mixW), nil
	})
}

func runDSRatios(opt Options, offload bool) error {
	p := defaultDSParams()
	p.offload = offload
	for _, ratio := range []int{0, 25, 50, 75, 90, 100} {
		fmt.Fprintf(opt.Out, " read%%=%d:\n", ratio)
		w := bench.Workload{
			NumOps:   opt.ops(10_000),
			KeyCount: uint64(opt.ops(20_000)),
			ReadPct:  ratio,
		}
		if err := runDSVariants(opt, []variant{vNone, vShieldBuf}, p, func(dep *dsDeployment, v variant) (bench.Result, error) {
			if err := bench.Preload(dep.db, w); err != nil {
				return bench.Result{}, err
			}
			return bench.MixedRatio(dep.db, w), nil
		}); err != nil {
			return err
		}
	}
	return nil
}

func runDSYCSB(opt Options, offload bool) error {
	p := defaultDSParams()
	p.offload = offload
	load := bench.Workload{KeyCount: uint64(opt.ops(5_000)), ValueSize: 1024}
	runW := bench.Workload{NumOps: opt.ops(3_000), KeyCount: load.KeyCount, ValueSize: 1024}
	for _, kind := range bench.AllYCSB {
		fmt.Fprintf(opt.Out, " YCSB-%c:\n", kind)
		if err := runDSVariants(opt, []variant{vNone, vShieldBuf}, p, func(dep *dsDeployment, v variant) (bench.Result, error) {
			if err := bench.YCSBLoad(dep.db, load); err != nil {
				return bench.Result{}, err
			}
			return bench.YCSB(dep.db, kind, runW), nil
		}); err != nil {
			return err
		}
	}
	return nil
}

func runFig19(opt Options) error { return runDSBaseline(opt, false) }
func runFig20(opt Options) error { return runDSRatios(opt, false) }
func runFig21(opt Options) error { return runDSYCSB(opt, false) }
func runFig22(opt Options) error { return runDSBaseline(opt, true) }
func runFig23(opt Options) error { return runDSRatios(opt, true) }
func runFig24(opt Options) error { return runDSYCSB(opt, true) }
