package compactsvc

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"shield/internal/lsm"
	"shield/internal/metrics"
	"shield/internal/netretry"
	"shield/internal/vfs"
)

// WorkerConfig tunes the polling loop.
type WorkerConfig struct {
	PollEvery      time.Duration // idle delay between polls; default 100ms
	DialTimeout    time.Duration // default 1s
	RequestTimeout time.Duration // one poll/heartbeat/complete round; default 5s
	BackoffBase    time.Duration // redial backoff; default 10ms
	BackoffMax     time.Duration // default 500ms
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.PollEvery <= 0 {
		c.PollEvery = 100 * time.Millisecond
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 10 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 500 * time.Millisecond
	}
	return c
}

// Worker executes compaction jobs leased from an orchestrator. It dials the
// orchestrator (the storage side initiates, so workers can sit behind NAT or
// scale out without compute-side reconfiguration), polls for jobs, and
// heartbeats each claim while lsm.RunCompaction runs against its local
// filesystem and its own encryption wrapper.
type Worker struct {
	fs      vfs.FS
	wrapper lsm.FileWrapper
	name    string
	addr    string
	cfg     WorkerConfig

	connMu sync.Mutex // serializes wire rounds (heartbeats interleave with nothing else)
	conn   net.Conn
	enc    *json.Encoder
	dec    *json.Decoder

	mu       sync.Mutex
	jobs     int64
	bytesIn  int64
	bytesOut int64
	stale    int64

	done chan struct{}
	wg   sync.WaitGroup
}

// NewWorker starts a worker named name executing against fs/wrapper,
// polling the orchestrator at addr. Close stops it.
func NewWorker(fs vfs.FS, wrapper lsm.FileWrapper, name, addr string, cfg WorkerConfig) *Worker {
	if wrapper == nil {
		wrapper = lsm.NopWrapper{}
	}
	w := &Worker{
		fs:      fs,
		wrapper: wrapper,
		name:    name,
		addr:    addr,
		cfg:     cfg.withDefaults(),
		done:    make(chan struct{}),
	}
	w.wg.Add(1)
	go w.run()
	return w
}

// Stats reports jobs executed and bytes moved by this worker.
func (w *Worker) Stats() (jobs, bytesRead, bytesWritten int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.jobs, w.bytesIn, w.bytesOut
}

// StaleJobs reports results the orchestrator discarded because the lease
// had been revoked (this worker was presumed dead).
func (w *Worker) StaleJobs() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stale
}

// Close stops the polling loop and waits for it — including any job still
// executing — to finish.
//
//shield:nolockio connMu only guards the conn pointer here; Close on a TCP conn is an immediate teardown, not a blocking round, and it is what unblocks a poll loop stuck mid-read
func (w *Worker) Close() error {
	select {
	case <-w.done:
		return nil
	default:
	}
	close(w.done)
	w.connMu.Lock()
	if w.conn != nil {
		w.conn.Close()
		w.conn = nil
	}
	w.connMu.Unlock()
	w.wg.Wait()
	return nil
}

func (w *Worker) stopped() bool {
	select {
	case <-w.done:
		return true
	default:
		return false
	}
}

func (w *Worker) run() {
	defer w.wg.Done()
	fails := 0
	for !w.stopped() {
		resp, err := w.call(&wireRequest{Op: "poll", Worker: w.name})
		if err != nil {
			netretry.Sleep(netretry.Delay(fails, w.cfg.BackoffBase, w.cfg.BackoffMax), w.done)
			fails++
			continue
		}
		fails = 0
		if resp.Job == nil {
			netretry.Sleep(w.cfg.PollEvery, w.done)
			continue
		}
		w.execute(resp)
	}
}

// execute runs one leased job, heartbeating until the result is delivered.
func (w *Worker) execute(claim *wireResponse) {
	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go w.heartbeatLoop(claim, hbStop, &hbWG)

	res, err := lsm.RunCompaction(w.fs, w.wrapper, *claim.Job)

	close(hbStop)
	hbWG.Wait()

	req := &wireRequest{Op: "complete", Worker: w.name, JobID: claim.JobID, Lease: claim.Lease}
	if err != nil {
		req.Err = err.Error()
	} else {
		req.Result = &res
	}
	// The lease outlives a connection blip, so retry the delivery a few
	// times: losing a finished compaction to one dropped packet would waste
	// the whole execution.
	var resp *wireResponse
	var sendErr error
	for attempt := 0; attempt < 3 && !w.stopped(); attempt++ {
		if attempt > 0 {
			metrics.Net.Retries.Add(1)
			netretry.Sleep(netretry.Delay(attempt-1, w.cfg.BackoffBase, w.cfg.BackoffMax), w.done)
		}
		if resp, sendErr = w.call(req); sendErr == nil {
			break
		}
	}
	if sendErr != nil || err != nil || resp == nil {
		// resp is nil when Close raced the delivery loop out before any
		// attempt: the worker died mid-job and the result is discarded.
		return
	}
	w.mu.Lock()
	if resp.Stale {
		w.stale++
	} else {
		w.jobs++
		w.bytesIn += res.BytesRead
		w.bytesOut += res.BytesWritten
	}
	w.mu.Unlock()
}

// heartbeatLoop keeps the claim's lease alive while the job runs. Transport
// errors are tolerated (call redials on the next round); a Stale answer
// means the lease is gone, but the loop keeps running only to terminate
// with the job — RunCompaction is not cancellable, and the final complete
// will be told Stale anyway.
func (w *Worker) heartbeatLoop(claim *wireResponse, stop <-chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	ttl := time.Duration(claim.TTLMs) * time.Millisecond
	if ttl <= 0 {
		ttl = 3 * time.Second
	}
	t := time.NewTicker(ttl / 3)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-w.done:
			return
		case <-t.C:
		}
		resp, err := w.call(&wireRequest{Op: "heartbeat", Worker: w.name, JobID: claim.JobID, Lease: claim.Lease})
		if err == nil && resp.Stale {
			return
		}
	}
}

// call performs one request/response round, dialing on demand and dropping
// the connection on any error so the next round starts clean.
//
//shield:nolockio connMu is the wire: one in-flight round at a time is the protocol, and every round carries a deadline so a dead orchestrator cannot wedge the worker
func (w *Worker) call(req *wireRequest) (*wireResponse, error) {
	w.connMu.Lock()
	defer w.connMu.Unlock()
	if w.stopped() {
		return nil, fmt.Errorf("compactsvc: worker %q closed", w.name)
	}
	if w.conn == nil {
		conn, err := net.DialTimeout("tcp", w.addr, w.cfg.DialTimeout)
		if err != nil {
			return nil, fmt.Errorf("compactsvc: dial %s: %w", w.addr, err)
		}
		w.conn = conn
		w.enc = json.NewEncoder(conn)
		w.dec = json.NewDecoder(bufio.NewReader(conn))
	}
	w.conn.SetDeadline(time.Now().Add(w.cfg.RequestTimeout)) //nolint:errcheck
	err := w.enc.Encode(req)
	var resp wireResponse
	if err == nil {
		err = w.dec.Decode(&resp)
	}
	if err != nil {
		if netretry.IsTimeout(err) {
			metrics.Net.Timeouts.Add(1)
		}
		w.conn.Close()
		w.conn = nil
		return nil, fmt.Errorf("compactsvc: %s round: %w", req.Op, err)
	}
	w.conn.SetDeadline(time.Time{}) //nolint:errcheck
	if resp.Err != "" {
		return nil, fmt.Errorf("compactsvc: orchestrator rejected %s: %s", req.Op, resp.Err)
	}
	return &resp, nil
}
