package compactsvc

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"shield/internal/lsm"
	"shield/internal/vfs"
)

// OrchestratorConfig tunes job leasing.
type OrchestratorConfig struct {
	// LeaseTTL is how long a claimed job survives without a heartbeat
	// before the janitor declares the worker dead and reclaims the job.
	// Default 3s.
	LeaseTTL time.Duration
	// MaxAttempts bounds how many times a job is handed out (first claim
	// included) before it fails with lsm.ErrJobLost. It also sets the
	// output-number fencing: each attempt writes into a disjoint
	// MaxOutputFiles/MaxAttempts sub-range of the job's reserved file
	// numbers. Default 3.
	MaxAttempts int
	// JobTimeout bounds a job end to end — queue wait, every attempt,
	// requeues — so a missing worker pool cannot wedge the engine's
	// compaction goroutine forever. Default 2 minutes.
	JobTimeout time.Duration
}

func (c OrchestratorConfig) withDefaults() OrchestratorConfig {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 3 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 2 * time.Minute
	}
	return c
}

// OrchestratorStats is a snapshot of the orchestrator's counters.
type OrchestratorStats struct {
	Enqueued       int64 // jobs accepted from the engine
	Completed      int64 // jobs finished successfully
	Failed         int64 // jobs terminally failed (ErrJobLost or remote error)
	Expired        int64 // leases reclaimed from dead workers
	StaleCompletes int64 // results delivered on a lease no longer honored
	BytesRead      int64
	BytesWritten   int64
	Queued         int // jobs currently pending
	Leased         int // jobs currently claimed
}

type jobState uint8

const (
	statePending jobState = iota
	stateLeased
	stateDone
)

type job struct {
	id       uint64
	spec     lsm.CompactionJob
	deadline time.Time

	state   jobState
	attempt int // attempts started
	lease   uint64
	worker  string
	expiry  time.Time

	done chan struct{}
	res  lsm.CompactionResult
	err  error
}

// leaseRec remembers which fenced output range a lease was writing into, so
// a dead or zombie attempt can be swept by file-number range alone.
type leaseRec struct {
	jobID uint64
	dir   string
	first uint64
	width uint64
}

// Orchestrator queues compaction jobs for a pool of leased workers. It
// implements lsm.Compactor: the engine's Compact call blocks until some
// worker completes the job, every attempt is exhausted, or the job deadline
// passes.
type Orchestrator struct {
	fs  vfs.FS // engine-side view of shared storage, used to sweep dead attempts
	ln  net.Listener
	cfg OrchestratorConfig

	mu        sync.Mutex
	jobs      map[uint64]*job
	queue     []uint64
	leases    map[uint64]leaseRec // expired/zombie recs retained for late sweeps
	nextJob   uint64
	nextLease uint64
	stats     OrchestratorStats
	closed    bool
	conns     map[net.Conn]struct{}
	done      chan struct{}
	wg        sync.WaitGroup
}

// NewOrchestrator starts an orchestrator on addr. fs is the engine's view of
// the shared storage (the same FS the engine itself runs on), used only to
// remove the fenced partial outputs of dead attempts.
func NewOrchestrator(fs vfs.FS, addr string, cfg OrchestratorConfig) (*Orchestrator, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("compactsvc: listen: %w", err)
	}
	o := &Orchestrator{
		fs:     fs,
		ln:     ln,
		cfg:    cfg.withDefaults(),
		jobs:   make(map[uint64]*job),
		leases: make(map[uint64]leaseRec),
		conns:  make(map[net.Conn]struct{}),
		done:   make(chan struct{}),
	}
	o.wg.Add(2)
	go o.acceptLoop()
	go o.janitor()
	return o, nil
}

// Addr returns the listen address workers dial.
func (o *Orchestrator) Addr() string { return o.ln.Addr().String() }

// Stats snapshots the counters.
func (o *Orchestrator) Stats() OrchestratorStats {
	o.mu.Lock()
	defer o.mu.Unlock()
	s := o.stats
	s.Queued, s.Leased = 0, 0
	for _, j := range o.jobs {
		switch j.state {
		case statePending:
			s.Queued++
		case stateLeased:
			s.Leased++
		}
	}
	return s
}

// Close stops the orchestrator. Jobs still in flight fail with
// lsm.ErrJobLost so a closing engine halts compactions instead of poisoning
// itself.
func (o *Orchestrator) Close() error {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return nil
	}
	o.closed = true
	close(o.done)
	err := o.ln.Close()
	for c := range o.conns {
		c.Close()
	}
	for _, j := range o.jobs {
		if j.state != stateDone {
			o.finishLocked(j, fmt.Errorf("compactsvc: orchestrator closed: %w", lsm.ErrJobLost))
		}
	}
	o.mu.Unlock()
	o.wg.Wait()
	return err
}

// Compact implements lsm.Compactor: enqueue the job and block until a
// worker completes it or the orchestrator gives up on it.
func (o *Orchestrator) Compact(spec lsm.CompactionJob) (lsm.CompactionResult, error) {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return lsm.CompactionResult{}, fmt.Errorf("compactsvc: orchestrator closed: %w", lsm.ErrJobLost)
	}
	o.nextJob++
	j := &job{
		id:       o.nextJob,
		spec:     spec,
		deadline: time.Now().Add(o.cfg.JobTimeout),
		done:     make(chan struct{}),
	}
	o.jobs[j.id] = j
	o.queue = append(o.queue, j.id)
	o.stats.Enqueued++
	o.mu.Unlock()

	<-j.done

	o.mu.Lock()
	delete(o.jobs, j.id)
	o.mu.Unlock()
	return j.res, j.err
}

// attemptRange carves the fenced output-file-number sub-range for one
// attempt out of the job's reservation. Attempts get disjoint ranges so a
// zombie writer can never collide with the attempt that reclaimed its job;
// the last attempt absorbs the remainder.
func attemptRange(spec *lsm.CompactionJob, attempt, maxAttempts int) (first, width uint64) {
	per := spec.MaxOutputFiles / uint64(maxAttempts)
	if per < 1 {
		// Degenerate reservation (fewer numbers than attempts): fencing is
		// impossible, so every attempt reuses the whole range. Safe only
		// because the janitor sweeps the range before requeueing.
		return spec.FirstOutputFileNum, spec.MaxOutputFiles
	}
	first = spec.FirstOutputFileNum + uint64(attempt)*per
	width = per
	if attempt == maxAttempts-1 {
		width = spec.MaxOutputFiles - per*uint64(maxAttempts-1)
	}
	return first, width
}

// finishLocked moves a job to its terminal state and wakes the engine.
func (o *Orchestrator) finishLocked(j *job, err error) {
	if j.state == stateDone {
		return
	}
	j.state = stateDone
	j.err = err
	if err == nil {
		o.stats.Completed++
		o.stats.BytesRead += j.res.BytesRead
		o.stats.BytesWritten += j.res.BytesWritten
	} else {
		o.stats.Failed++
	}
	close(j.done)
}

// sweep removes every table file in a dead attempt's fenced number range.
// Best-effort: the worker may never have created most of the names, and the
// engine's recovery-time orphan sweep catches anything a lost connection to
// storage leaves behind.
func (o *Orchestrator) sweep(rec leaseRec) {
	removed := false
	for n := rec.first; n < rec.first+rec.width; n++ {
		if err := o.fs.Remove(lsm.TableFileName(rec.dir, n)); err == nil {
			removed = true
		}
	}
	if removed {
		o.fs.SyncDir(rec.dir) //nolint:errcheck // best-effort orphan sweep
	}
}

// janitor expires dead leases: sweep the attempt's fenced outputs, then
// requeue the job (attempt budget permitting) or fail it with
// lsm.ErrJobLost. It also enforces each job's end-to-end deadline.
func (o *Orchestrator) janitor() {
	defer o.wg.Done()
	tick := o.cfg.LeaseTTL / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-o.done:
			return
		case <-t.C:
		}
		now := time.Now()
		var sweeps []leaseRec
		o.mu.Lock()
		for _, j := range o.jobs {
			switch j.state {
			case stateLeased:
				if now.Before(j.expiry) && now.Before(j.deadline) {
					continue
				}
				// Worker presumed dead (or job out of time): the lease is
				// revoked, its partial outputs are swept, and any late
				// complete on it will be answered Stale.
				o.stats.Expired++
				if rec, ok := o.leases[j.lease]; ok {
					sweeps = append(sweeps, rec)
				}
				j.lease = 0
				if j.attempt >= o.cfg.MaxAttempts || !now.Before(j.deadline) {
					o.finishLocked(j, fmt.Errorf("compactsvc: job %d lost after %d attempts (last worker %q): %w",
						j.id, j.attempt, j.worker, lsm.ErrJobLost))
				} else {
					j.state = statePending
					o.queue = append(o.queue, j.id)
				}
			case statePending:
				if !now.Before(j.deadline) {
					o.finishLocked(j, fmt.Errorf("compactsvc: job %d unclaimed past deadline: %w",
						j.id, lsm.ErrJobLost))
				}
			}
		}
		o.mu.Unlock()
		for _, rec := range sweeps {
			o.sweep(rec)
		}
	}
}

func (o *Orchestrator) acceptLoop() {
	defer o.wg.Done()
	for {
		conn, err := o.ln.Accept()
		if err != nil {
			return
		}
		o.mu.Lock()
		if o.closed {
			o.mu.Unlock()
			conn.Close()
			return
		}
		o.conns[conn] = struct{}{}
		o.wg.Add(1)
		o.mu.Unlock()
		go o.serveConn(conn)
	}
}

func (o *Orchestrator) serveConn(conn net.Conn) {
	defer o.wg.Done()
	defer func() {
		o.mu.Lock()
		delete(o.conns, conn)
		o.mu.Unlock()
		conn.Close()
	}()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var req wireRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		var resp *wireResponse
		switch req.Op {
		case "poll":
			resp = o.poll(req.Worker)
		case "heartbeat":
			resp = o.heartbeat(req.JobID, req.Lease)
		case "complete":
			resp = o.complete(&req)
		default:
			resp = &wireResponse{Err: fmt.Sprintf("compactsvc: unknown op %q", req.Op)}
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// poll claims the oldest pending job for a worker and leases it, handing out
// that attempt's fenced output range.
func (o *Orchestrator) poll(worker string) *wireResponse {
	o.mu.Lock()
	defer o.mu.Unlock()
	for len(o.queue) > 0 {
		id := o.queue[0]
		o.queue = o.queue[1:]
		j, ok := o.jobs[id]
		if !ok || j.state != statePending {
			continue // finished (deadline, close) while queued
		}
		j.attempt++
		first, width := attemptRange(&j.spec, j.attempt-1, o.cfg.MaxAttempts)
		spec := j.spec
		spec.FirstOutputFileNum = first
		spec.MaxOutputFiles = width
		o.nextLease++
		j.state = stateLeased
		j.lease = o.nextLease
		j.worker = worker
		j.expiry = time.Now().Add(o.cfg.LeaseTTL)
		// The rec outlives the lease on purpose: a zombie's complete may
		// arrive long after expiry, and the sweep needs the fenced range.
		// Growth is bounded by lease expiries plus live jobs; successful
		// completes delete their rec.
		o.leases[j.lease] = leaseRec{jobID: id, dir: spec.Dir, first: first, width: width}
		return &wireResponse{
			Job:   &spec,
			JobID: id,
			Lease: j.lease,
			TTLMs: o.cfg.LeaseTTL.Milliseconds(),
		}
	}
	return &wireResponse{}
}

// heartbeat extends a live lease; a revoked lease is reported Stale so the
// worker knows its result will be discarded.
func (o *Orchestrator) heartbeat(jobID, lease uint64) *wireResponse {
	o.mu.Lock()
	defer o.mu.Unlock()
	j, ok := o.jobs[jobID]
	if !ok || j.state != stateLeased || j.lease != lease {
		return &wireResponse{Stale: true}
	}
	j.expiry = time.Now().Add(o.cfg.LeaseTTL)
	return &wireResponse{}
}

// complete delivers a worker's result. A result on a revoked lease is
// answered Stale and the zombie attempt's fenced outputs are swept — the
// worker finished a job someone else now owns.
func (o *Orchestrator) complete(req *wireRequest) *wireResponse {
	o.mu.Lock()
	j, ok := o.jobs[req.JobID]
	if !ok || j.state != stateLeased || j.lease != req.Lease {
		rec, haveRec := o.leases[req.Lease]
		o.stats.StaleCompletes++
		o.mu.Unlock()
		if haveRec && req.Err == "" {
			o.sweep(rec)
		}
		return &wireResponse{Stale: true}
	}
	if req.Err == "" && req.Result != nil {
		j.res = *req.Result
		delete(o.leases, j.lease)
		o.finishLocked(j, nil)
		o.mu.Unlock()
		return &wireResponse{}
	}
	// Execution failed on the worker. RunCompaction already removed its own
	// outputs; ENOSPC (restored as a sentinel) is terminal like a local
	// abort, while other failures may be worker-local (flaky storage path,
	// lost DEK fetch), so the job gets another attempt if budget remains.
	err := restoreRemoteError(req.Err)
	rec := o.leases[j.lease]
	j.lease = 0
	if errors.Is(err, vfs.ErrNoSpace) || j.attempt >= o.cfg.MaxAttempts || !time.Now().Before(j.deadline) {
		o.finishLocked(j, err)
		o.mu.Unlock()
		return &wireResponse{}
	}
	j.state = statePending
	o.queue = append(o.queue, j.id)
	o.mu.Unlock()
	// Insurance sweep: the worker's own abort cleanup is best-effort too.
	o.sweep(rec)
	return &wireResponse{}
}

// restoreRemoteError rebuilds sentinel structure from a remote error string:
// ENOSPC must survive the wire so the engine halts compactions (inputs
// retained) instead of entering degraded mode.
func restoreRemoteError(msg string) error {
	if strings.Contains(msg, vfs.ErrNoSpace.Error()) {
		return fmt.Errorf("compactsvc: remote: %w: %s", vfs.ErrNoSpace, msg)
	}
	return fmt.Errorf("compactsvc: remote: %s", msg)
}
