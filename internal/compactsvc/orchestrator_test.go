package compactsvc

import (
	"encoding/json"
	"errors"
	"net"
	"testing"
	"time"

	"shield/internal/lsm"
	"shield/internal/lsm/manifest"
	"shield/internal/vfs"
)

// fakeWorker speaks the wire protocol by hand, so tests can claim a job and
// then misbehave: never heartbeat (a dead worker) or complete long after the
// lease was revoked (a zombie).
type fakeWorker struct {
	t    *testing.T
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
}

func dialFake(t *testing.T, addr string) *fakeWorker {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &fakeWorker{t: t, conn: conn, enc: json.NewEncoder(conn), dec: json.NewDecoder(conn)}
}

func (f *fakeWorker) round(req *wireRequest) *wireResponse {
	f.t.Helper()
	f.conn.SetDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	if err := f.enc.Encode(req); err != nil {
		f.t.Fatal(err)
	}
	var resp wireResponse
	if err := f.dec.Decode(&resp); err != nil {
		f.t.Fatal(err)
	}
	return &resp
}

// claim polls until a job is handed out.
func (f *fakeWorker) claim(name string) *wireResponse {
	f.t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		resp := f.round(&wireRequest{Op: "poll", Worker: name})
		if resp.Job != nil {
			return resp
		}
		time.Sleep(2 * time.Millisecond)
	}
	f.t.Fatal("no job offered within 2s")
	return nil
}

func testJob(m1, m2 manifest.FileMetadata) lsm.CompactionJob {
	return lsm.CompactionJob{
		Dir:                "db",
		Inputs:             []lsm.JobLevel{{Level: 0, Files: []manifest.FileMetadata{m2, m1}}},
		OutputLevel:        1,
		Bottommost:         true,
		SmallestSnapshot:   1 << 60,
		FirstOutputFileNum: 10,
		MaxOutputFiles:     30,
		TargetFileSize:     1 << 20,
		BlockSize:          4096,
		BloomBitsPerKey:    10,
	}
}

// TestLeaseExpiryReclaimAndStaleComplete is the tentpole scenario: a worker
// claims a job and dies (stops heartbeating). Its lease expires, the partial
// output it left in its fenced number range is swept, the job is reclaimed
// and finished by a healthy worker in a disjoint range — and when the dead
// worker turns out to be a zombie and delivers its result anyway, the
// orchestrator answers Stale and discards it.
func TestLeaseExpiryReclaimAndStaleComplete(t *testing.T) {
	fs := vfs.NewMem()
	m1 := buildInput(t, fs, 1, 0, 500)
	m2 := buildInput(t, fs, 2, 250, 750)

	orch, err := NewOrchestrator(fs, "127.0.0.1:0", OrchestratorConfig{
		LeaseTTL:    100 * time.Millisecond,
		MaxAttempts: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer orch.Close()

	type result struct {
		res lsm.CompactionResult
		err error
	}
	resCh := make(chan result, 1)
	go func() {
		res, err := orch.Compact(testJob(m1, m2))
		resCh <- result{res, err}
	}()

	// The doomed worker claims attempt 1 and gets its fenced third of the
	// 30 reserved output numbers.
	fake := dialFake(t, orch.Addr())
	claim := fake.claim("doomed")
	if claim.Job.FirstOutputFileNum != 10 || claim.Job.MaxOutputFiles != 10 {
		t.Fatalf("attempt 1 fencing: got [%d,+%d), want [10,+10)",
			claim.Job.FirstOutputFileNum, claim.Job.MaxOutputFiles)
	}
	// It writes one partial output, then dies (no heartbeats).
	partial := lsm.TableFileName("db", claim.Job.FirstOutputFileNum)
	if err := vfs.WriteFile(fs, partial, []byte("partial garbage")); err != nil {
		t.Fatal(err)
	}

	// A healthy worker picks up the reclaimed job.
	w := NewWorker(fs, lsm.NopWrapper{}, "healthy", orch.Addr(), WorkerConfig{PollEvery: 2 * time.Millisecond})
	defer w.Close()

	r := <-resCh
	if r.err != nil {
		t.Fatalf("reclaimed job failed: %v", r.err)
	}
	if len(r.res.Outputs) == 0 {
		t.Fatal("no outputs")
	}
	for _, out := range r.res.Outputs {
		if out.FileNum < 20 || out.FileNum >= 30 {
			t.Fatalf("attempt 2 output %d outside its fenced range [20,30)", out.FileNum)
		}
	}

	// The dead attempt's partial output was swept by the janitor.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := fs.Stat(partial); errors.Is(err, vfs.ErrNotFound) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("dead attempt's partial output was not swept")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The zombie wakes up and delivers: told Stale, result discarded.
	done := fake.round(&wireRequest{
		Op: "complete", Worker: "doomed",
		JobID: claim.JobID, Lease: claim.Lease,
		Result: &lsm.CompactionResult{},
	})
	if !done.Stale {
		t.Fatal("zombie complete was not answered Stale")
	}

	st := orch.Stats()
	if st.Expired == 0 {
		t.Fatalf("no lease expiry recorded: %+v", st)
	}
	if st.StaleCompletes != 1 {
		t.Fatalf("stale completes = %d, want 1", st.StaleCompletes)
	}
	if st.Completed != 1 {
		t.Fatalf("completed = %d, want 1", st.Completed)
	}
	wj, _, _ := w.Stats()
	if wj != 1 {
		t.Fatalf("healthy worker jobs = %d, want 1", wj)
	}
}

// TestHeartbeatKeepsSlowJobAlive pins a job open well past the lease TTL:
// as long as the worker heartbeats, the janitor must not reclaim it.
func TestHeartbeatKeepsSlowJobAlive(t *testing.T) {
	fs := vfs.NewMem()
	m1 := buildInput(t, fs, 1, 0, 500)
	m2 := buildInput(t, fs, 2, 250, 750)

	orch, err := NewOrchestrator(fs, "127.0.0.1:0", OrchestratorConfig{
		LeaseTTL:    60 * time.Millisecond,
		MaxAttempts: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer orch.Close()

	gate := make(chan struct{})
	slow := &gateFS{FS: fs, gate: gate}
	w := NewWorker(slow, lsm.NopWrapper{}, "slow", orch.Addr(), WorkerConfig{PollEvery: 2 * time.Millisecond})
	defer w.Close()

	resCh := make(chan error, 1)
	go func() {
		_, err := orch.Compact(testJob(m1, m2))
		resCh <- err
	}()

	// Hold the job open for several TTLs; heartbeats must keep the lease.
	time.Sleep(300 * time.Millisecond)
	if st := orch.Stats(); st.Expired != 0 || st.Leased != 1 {
		t.Fatalf("lease lost under active heartbeats: %+v", st)
	}
	close(gate)
	if err := <-resCh; err != nil {
		t.Fatalf("slow job failed: %v", err)
	}
	if st := orch.Stats(); st.Expired != 0 || st.Completed != 1 {
		t.Fatalf("after completion: %+v", st)
	}
}

// gateFS blocks the first SST read until the gate opens, simulating a
// healthy-but-slow worker.
type gateFS struct {
	vfs.FS
	gate chan struct{}
}

func (g *gateFS) Open(name string) (vfs.RandomAccessFile, error) {
	f, err := g.FS.Open(name)
	if err != nil {
		return nil, err
	}
	return &gateFile{RandomAccessFile: f, gate: g.gate}, nil
}

type gateFile struct {
	vfs.RandomAccessFile
	gate chan struct{}
}

func (f *gateFile) ReadAt(p []byte, off int64) (int, error) {
	<-f.gate
	return f.RandomAccessFile.ReadAt(p, off)
}

// TestUnclaimedJobFailsWithJobLost: with no worker pool at all, the job
// deadline converts into lsm.ErrJobLost — the engine-side halt signal —
// instead of wedging the engine's compaction goroutine forever.
func TestUnclaimedJobFailsWithJobLost(t *testing.T) {
	fs := vfs.NewMem()
	m1 := buildInput(t, fs, 1, 0, 20)
	m2 := buildInput(t, fs, 2, 10, 30)

	orch, err := NewOrchestrator(fs, "127.0.0.1:0", OrchestratorConfig{
		LeaseTTL:   40 * time.Millisecond,
		JobTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer orch.Close()

	_, err = orch.Compact(testJob(m1, m2))
	if !errors.Is(err, lsm.ErrJobLost) {
		t.Fatalf("unclaimed job returned %v, want ErrJobLost", err)
	}
	if st := orch.Stats(); st.Failed != 1 {
		t.Fatalf("failed = %d, want 1: %+v", st.Failed, st)
	}
}

// TestExhaustedAttemptsFailWithJobLost: every attempt claimed by a worker
// that dies. After MaxAttempts lease expiries the job is terminal with
// lsm.ErrJobLost and every fenced range was swept.
func TestExhaustedAttemptsFailWithJobLost(t *testing.T) {
	fs := vfs.NewMem()
	m1 := buildInput(t, fs, 1, 0, 20)
	m2 := buildInput(t, fs, 2, 10, 30)

	orch, err := NewOrchestrator(fs, "127.0.0.1:0", OrchestratorConfig{
		LeaseTTL:    50 * time.Millisecond,
		MaxAttempts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer orch.Close()

	resCh := make(chan error, 1)
	go func() {
		_, err := orch.Compact(testJob(m1, m2))
		resCh <- err
	}()

	fake := dialFake(t, orch.Addr())
	var partials []string
	for attempt := 0; attempt < 2; attempt++ {
		claim := fake.claim("serial-killer")
		p := lsm.TableFileName("db", claim.Job.FirstOutputFileNum)
		if err := vfs.WriteFile(fs, p, []byte("junk")); err != nil {
			t.Fatal(err)
		}
		partials = append(partials, p)
		// Die: no heartbeat, wait for the reclaim.
	}

	err = <-resCh
	if !errors.Is(err, lsm.ErrJobLost) {
		t.Fatalf("exhausted job returned %v, want ErrJobLost", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for _, p := range partials {
		for {
			if _, err := fs.Stat(p); errors.Is(err, vfs.ErrNotFound) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("partial %s not swept", p)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	if st := orch.Stats(); st.Expired != 2 || st.Failed != 1 {
		t.Fatalf("stats after exhaustion: %+v", st)
	}
}
