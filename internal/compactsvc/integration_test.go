package compactsvc_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"shield/internal/compactsvc"
	"shield/internal/core"
	"shield/internal/dstore"
	"shield/internal/kds"
	"shield/internal/lsm"
	"shield/internal/seccache"
	"shield/internal/vfs"
)

// TestOffloadedCompactionEndToEnd stands up the full DS topology on
// loopback: a storage node (dstore server over a MemFS), a compute-node DB
// reaching it through the dstore client, a shared KDS, and an
// offloaded-compaction worker co-located with the storage node that
// resolves DEKs via file-metadata DEK-IDs.
func TestOffloadedCompactionEndToEnd(t *testing.T) {
	storageFS := vfs.NewMem()

	// Storage node.
	storage, err := dstore.NewServer(storageFS, "127.0.0.1:0", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer storage.Close()

	// Decentralized KDS: one store behind a network front end.
	kdsStore := kds.NewStore(kds.Policy{MaxFetches: 1})
	kdsStore.Authorize("compute-1")
	kdsStore.Authorize("compaction-worker-1")
	kdsSrv, err := kds.NewServer(kdsStore, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer kdsSrv.Close()

	// Offloaded-compaction worker: its own KDS identity and secure cache,
	// direct (local) access to the storage node's filesystem.
	workerKDS := kds.NewClient("compaction-worker-1", kdsSrv.Addr())
	defer workerKDS.Close()
	workerCache, err := seccache.Open(vfs.NewMem(), "worker-cache.bin", []byte("worker-pass"))
	if err != nil {
		t.Fatal(err)
	}
	workerCfg := core.Config{
		Mode:  core.ModeSHIELD,
		FS:    storage.LocalFS(),
		KDS:   workerKDS,
		Cache: workerCache,
	}
	workerWrapper, err := workerCfg.BuildWrapper()
	if err != nil {
		t.Fatal(err)
	}
	// Compute node: DB over the remote FS, compactions enqueued into an
	// orchestrator that the storage-side worker polls.
	remoteFS, err := dstore.Dial(storage.Addr(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer remoteFS.Close()
	computeKDS := kds.NewClient("compute-1", kdsSrv.Addr())
	defer computeKDS.Close()

	orch, err := compactsvc.NewOrchestrator(remoteFS, "127.0.0.1:0", compactsvc.OrchestratorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer orch.Close()
	worker := compactsvc.NewWorker(storage.LocalFS(), workerWrapper, "compaction-worker-1", orch.Addr(),
		compactsvc.WorkerConfig{PollEvery: 5 * time.Millisecond})
	defer worker.Close()

	// The compute node keeps a durable secure cache: with one-time DEK
	// provisioning, a restart must resolve worker-created DEKs from the
	// cache, because the KDS will not hand them out twice.
	computeCacheFS := vfs.NewMem()
	computeCache, err := seccache.Open(computeCacheFS, "compute-cache.bin", []byte("compute-pass"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		Mode:          core.ModeSHIELD,
		FS:            remoteFS,
		KDS:           computeKDS,
		Cache:         computeCache,
		WALBufferSize: 512,
	}
	opts := lsm.Options{
		MemtableSize:        64 << 10,
		BaseLevelSize:       128 << 10,
		TargetFileSize:      64 << 10,
		L0CompactionTrigger: 2,
		Compactor:           orch,
	}
	db, err := core.Open("db", cfg, opts)
	if err != nil {
		t.Fatal(err)
	}

	const n = 8000
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%06d", i%3000)
		v := fmt.Sprintf("value-%06d-%d", i, i*31)
		if err := db.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.CompactRange(); err != nil {
		t.Fatal(err)
	}

	jobs, bytesIn, bytesOut := worker.Stats()
	if jobs == 0 {
		t.Fatal("no compaction jobs reached the offloaded worker")
	}
	if bytesIn == 0 || bytesOut == 0 {
		t.Fatalf("worker moved no bytes (in=%d out=%d)", bytesIn, bytesOut)
	}

	// The compute node must read data the worker re-encrypted under fresh
	// DEKs, resolved through DEK-IDs + KDS (one-time foreign fetch).
	for i := 0; i < 3000; i += 113 {
		k := fmt.Sprintf("key-%06d", i)
		v, err := db.Get([]byte(k))
		if err != nil {
			t.Fatalf("Get(%s) after offloaded compaction: %v", k, err)
		}
		if len(v) == 0 {
			t.Fatalf("empty value for %s", k)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen (cold restart of compute node): a fresh wrapper resolves the
	// worker-created DEKs from the reloaded secure cache, since one-time
	// provisioning blocks a second KDS fetch.
	cache2, err := seccache.Open(computeCacheFS, "compute-cache.bin", []byte("compute-pass"))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Cache = cache2
	db2, err := core.Open("db", cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, err := db2.Get([]byte("key-000777")); err != nil {
		t.Fatalf("after reopen: %v", err)
	}
}

// TestOffloadedCompactionPlaintext runs the same topology without
// encryption, isolating the job-shipping path.
func TestOffloadedCompactionPlaintext(t *testing.T) {
	storageFS := vfs.NewMem()
	storage, err := dstore.NewServer(storageFS, "127.0.0.1:0", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer storage.Close()
	remoteFS, err := dstore.Dial(storage.Addr(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer remoteFS.Close()
	orch, err := compactsvc.NewOrchestrator(remoteFS, "127.0.0.1:0", compactsvc.OrchestratorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer orch.Close()
	worker := compactsvc.NewWorker(storage.LocalFS(), lsm.NopWrapper{}, "worker-1", orch.Addr(),
		compactsvc.WorkerConfig{PollEvery: 5 * time.Millisecond})
	defer worker.Close()

	opts := lsm.Options{
		FS:                  remoteFS,
		MemtableSize:        64 << 10,
		BaseLevelSize:       128 << 10,
		TargetFileSize:      64 << 10,
		L0CompactionTrigger: 2,
		Compactor:           orch,
	}
	db, err := lsm.Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 6000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%06d", i%2000)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CompactRange(); err != nil {
		t.Fatal(err)
	}
	jobs, _, _ := worker.Stats()
	if jobs == 0 {
		t.Fatal("no jobs offloaded")
	}
	if _, err := db.Get([]byte("k000001")); err != nil {
		t.Fatal(err)
	}
}

// TestEngineHaltsOnLostJob loses a compaction job (no worker ever claims
// it) and checks the engine treats it like a local ENOSPC abort: the
// CompactRange caller sees lsm.ErrJobLost, the write and read paths stay
// healthy — no degraded mode — and once a worker appears a retry succeeds.
func TestEngineHaltsOnLostJob(t *testing.T) {
	fs := vfs.NewMem()
	orch, err := compactsvc.NewOrchestrator(fs, "127.0.0.1:0", compactsvc.OrchestratorConfig{
		LeaseTTL:   30 * time.Millisecond,
		JobTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer orch.Close()

	opts := lsm.Options{
		FS:                  fs,
		MemtableSize:        64 << 10,
		BaseLevelSize:       128 << 10,
		TargetFileSize:      64 << 10,
		L0CompactionTrigger: 100, // only manual compaction offloads jobs
		Compactor:           orch,
	}
	db, err := lsm.Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 3000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%06d", i%1000)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	// No worker pool: the job times out unclaimed.
	err = db.CompactRange()
	if !errors.Is(err, lsm.ErrJobLost) {
		t.Fatalf("CompactRange with no workers returned %v, want ErrJobLost", err)
	}

	// Inputs retained, engine not poisoned: both paths still work.
	if err := db.Put([]byte("post-loss"), []byte("ok")); err != nil {
		t.Fatalf("write path poisoned after lost job: %v", err)
	}
	if _, err := db.Get([]byte("k000001")); err != nil {
		t.Fatalf("read path broken after lost job: %v", err)
	}

	// A worker joins the pool; the retry drains the same inputs.
	worker := compactsvc.NewWorker(fs, lsm.NopWrapper{}, "late-worker", orch.Addr(),
		compactsvc.WorkerConfig{PollEvery: 2 * time.Millisecond})
	defer worker.Close()
	if err := db.CompactRange(); err != nil {
		t.Fatalf("CompactRange after worker joined: %v", err)
	}
	if v, err := db.Get([]byte("post-loss")); err != nil || string(v) != "ok" {
		t.Fatalf("after recovery: %q, %v", v, err)
	}
	jobs, _, _ := worker.Stats()
	if jobs == 0 {
		t.Fatal("late worker executed no jobs")
	}
}
