// Package compactsvc implements offloaded compaction (the paper's Section
// 5.6 case study, modeled on Disaggregated-RocksDB / CaaS-LSM) as an
// orchestrated worker pool rather than a single point-to-point worker.
//
// The compute node runs an Orchestrator that implements lsm.Compactor: the
// engine enqueues compaction jobs into it and blocks for the result. Workers
// — co-located with storage nodes, each with its own KDS identity and secure
// DEK cache — dial the orchestrator and poll for work. A claimed job carries
// a lease: the worker heartbeats to keep it, and a worker that dies mid-job
// has its lease expire, its partial outputs swept, and the job reclaimed by
// another worker. Output-file numbers are fenced per attempt (each lease
// writes into a disjoint sub-range of the job's reserved numbers), so a
// zombie worker that keeps writing after losing its lease can never collide
// with the reclaiming worker, and its orphans are removable by number range
// alone.
//
// A job whose every attempt is lost fails with lsm.ErrJobLost, which the
// engine treats exactly like a local ENOSPC abort: inputs retained, manifest
// untouched, compactions halted until the next successful flush.
//
// Workers resolve input-file DEKs through the DEK-IDs embedded in file
// headers — the metadata-enabled sharing path — and encrypt outputs under
// fresh DEKs fetched under their own identity.
package compactsvc

// The wire protocol is JSON over TCP, worker-initiated: the worker dials the
// orchestrator and issues request/response rounds on a persistent
// connection. Three operations:
//
//	poll       → claim the oldest pending job; empty response if none
//	heartbeat  → extend the lease on a claimed job
//	complete   → deliver the job's result (or execution error)
//
// A heartbeat or complete against a lease the orchestrator no longer
// honors is answered with Stale, telling a zombie worker its work was
// reassigned (the orchestrator sweeps the zombie attempt's fenced output
// range itself).

import "shield/internal/lsm"

type wireRequest struct {
	Op     string                `json:"op"` // "poll" | "heartbeat" | "complete"
	Worker string                `json:"worker"`
	JobID  uint64                `json:"job_id,omitempty"`
	Lease  uint64                `json:"lease,omitempty"`
	Err    string                `json:"err,omitempty"`
	Result *lsm.CompactionResult `json:"result,omitempty"`
}

type wireResponse struct {
	Err   string             `json:"err,omitempty"`
	Job   *lsm.CompactionJob `json:"job,omitempty"`
	JobID uint64             `json:"job_id,omitempty"`
	Lease uint64             `json:"lease,omitempty"`
	TTLMs int64              `json:"ttl_ms,omitempty"`
	Stale bool               `json:"stale,omitempty"`
}
