// Package compactsvc implements offloaded compaction (the paper's Section
// 5.6 case study, modeled on Disaggregated-RocksDB / CaaS-LSM): a worker
// co-located with the storage node executes compaction jobs shipped from
// the compute node, reading and writing SST files locally instead of over
// the network.
//
// The worker is a separate "server" in the threat model: it holds its own
// KDS identity and secure DEK cache, and resolves input-file DEKs through
// the DEK-IDs embedded in file headers — the metadata-enabled sharing path.
// Output files get fresh DEKs from the KDS under the worker's identity.
package compactsvc

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"shield/internal/lsm"
	"shield/internal/metrics"
	"shield/internal/netretry"
	"shield/internal/vfs"
)

// Server executes compaction jobs against a local filesystem.
type Server struct {
	fs      vfs.FS
	wrapper lsm.FileWrapper
	ln      net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup

	jobs     int64
	bytesIn  int64
	bytesOut int64
}

// NewServer starts a compaction worker on addr. fs is the storage node's
// local filesystem; wrapper is the worker's own encryption codec (a SHIELD
// wrapper with the worker's KDS identity, or lsm.NopWrapper for plaintext).
func NewServer(fs vfs.FS, wrapper lsm.FileWrapper, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("compactsvc: listen: %w", err)
	}
	if wrapper == nil {
		wrapper = lsm.NopWrapper{}
	}
	s := &Server{fs: fs, wrapper: wrapper, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Stats reports jobs executed and bytes moved by this worker.
func (s *Server) Stats() (jobs, bytesRead, bytesWritten int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs, s.bytesIn, s.bytesOut
}

// Close stops the worker.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

type wireResult struct {
	Err    string               `json:"err,omitempty"`
	Result lsm.CompactionResult `json:"result"`
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var job lsm.CompactionJob
		if err := dec.Decode(&job); err != nil {
			return
		}
		var out wireResult
		res, err := lsm.RunCompaction(s.fs, s.wrapper, job)
		if err != nil {
			out.Err = err.Error()
		} else {
			out.Result = res
			s.mu.Lock()
			s.jobs++
			s.bytesIn += res.BytesRead
			s.bytesOut += res.BytesWritten
			s.mu.Unlock()
		}
		if err := enc.Encode(&out); err != nil {
			return
		}
	}
}

// Client ships compaction jobs to a remote worker. It implements
// lsm.Compactor, so it plugs into lsm.Options.Compactor directly.
//
// Jobs are idempotent — RunCompaction writes fresh output files and the
// engine installs them only on success — so the client retries freely on
// transport errors, with per-attempt deadlines so a hung worker cannot
// wedge the engine's background compaction goroutine.
type Client struct {
	addr string

	// JobTimeout bounds one job attempt end to end (dial + execute +
	// response). Compactions move real data, so the default is generous
	// (2 minutes). Set before first use.
	JobTimeout time.Duration

	mu   sync.Mutex
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
}

const (
	compactAttempts    = 3
	compactDialTimeout = time.Second
	compactJobTimeout  = 2 * time.Minute
	compactBackoffBase = 10 * time.Millisecond
	compactBackoffMax  = 500 * time.Millisecond
)

// NewClient returns a Compactor that executes on the worker at addr.
func NewClient(addr string) *Client { return &Client{addr: addr} }

// Close releases the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		err := c.conn.Close() //shield:nolockio teardown must hold the state lock so a racing Compact cannot resurrect the conn; Close does not block
		c.conn = nil
		return err
	}
	return nil
}

// Compact implements lsm.Compactor.
//
//shield:nolockio mu is the request queue: one compaction at a time over the shared connection is the design, and the engine runs compactions on a single background goroutine anyway
func (c *Client) Compact(job lsm.CompactionJob) (lsm.CompactionResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	timeout := c.JobTimeout
	if timeout <= 0 {
		timeout = compactJobTimeout
	}
	var lastErr error
	for attempt := 0; attempt < compactAttempts; attempt++ {
		if attempt > 0 {
			metrics.Net.Retries.Add(1)
			netretry.Sleep(netretry.Delay(attempt-1, compactBackoffBase, compactBackoffMax), nil)
		}
		if c.conn == nil {
			conn, err := net.DialTimeout("tcp", c.addr, compactDialTimeout)
			if err != nil {
				lastErr = fmt.Errorf("compactsvc: dial %s: %w", c.addr, err)
				continue
			}
			c.conn = conn
			c.enc = json.NewEncoder(conn)
			c.dec = json.NewDecoder(bufio.NewReader(conn))
		}
		c.conn.SetDeadline(time.Now().Add(timeout)) //nolint:errcheck
		err := c.enc.Encode(&job)
		if err == nil {
			var out wireResult
			if err = c.dec.Decode(&out); err == nil {
				c.conn.SetDeadline(time.Time{}) //nolint:errcheck
				if out.Err != "" {
					if strings.Contains(out.Err, vfs.ErrNoSpace.Error()) {
						// Restore the sentinel: the engine halts compactions
						// (inputs were retained remotely) instead of
						// poisoning itself.
						return lsm.CompactionResult{}, fmt.Errorf("compactsvc: remote: %w: %s", vfs.ErrNoSpace, out.Err)
					}
					return lsm.CompactionResult{}, fmt.Errorf("compactsvc: remote: %s", out.Err)
				}
				return out.Result, nil
			}
		}
		if netretry.IsTimeout(err) {
			metrics.Net.Timeouts.Add(1)
		}
		c.conn.Close()
		c.conn = nil
		lastErr = err
	}
	return lsm.CompactionResult{}, fmt.Errorf("compactsvc: request failed after %d attempts: %w", compactAttempts, lastErr)
}
