package compactsvc

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"shield/internal/lsm"
	"shield/internal/lsm/base"
	"shield/internal/lsm/manifest"
	"shield/internal/lsm/sstable"
	"shield/internal/vfs"
)

// startPair stands up an orchestrator and one polling worker on fs.
func startPair(t *testing.T, fs vfs.FS) (*Orchestrator, *Worker) {
	t.Helper()
	orch, err := NewOrchestrator(fs, "127.0.0.1:0", OrchestratorConfig{LeaseTTL: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { orch.Close() })
	w := NewWorker(fs, lsm.NopWrapper{}, "w1", orch.Addr(), WorkerConfig{PollEvery: 2 * time.Millisecond})
	t.Cleanup(func() { w.Close() })
	return orch, w
}

// buildInput writes one SST on fs and returns its metadata.
func buildInput(t *testing.T, fs vfs.FS, fileNum uint64, lo, hi int) manifest.FileMetadata {
	t.Helper()
	name := fmt.Sprintf("db/%06d.sst", fileNum)
	fs.MkdirAll("db")
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	w := sstable.NewWriter(f, sstable.WriterOptions{})
	var smallest, largest []byte
	for i := lo; i < hi; i++ {
		ik := base.MakeInternalKey([]byte(fmt.Sprintf("k%06d", i)), base.SeqNum(fileNum*1_000_000+uint64(i)), base.KindSet)
		if smallest == nil {
			smallest = append([]byte(nil), ik...)
		}
		largest = append(largest[:0], ik...)
		if err := w.Add(ik, []byte(fmt.Sprintf("v%d-%d", fileNum, i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	return manifest.FileMetadata{
		FileNum:  fileNum,
		Size:     w.FileSize(),
		Smallest: append([]byte(nil), smallest...),
		Largest:  append([]byte(nil), largest...),
	}
}

func TestRemoteJobExecution(t *testing.T) {
	fs := vfs.NewMem()
	m1 := buildInput(t, fs, 1, 0, 500)
	m2 := buildInput(t, fs, 2, 250, 750)

	orch, _ := startPair(t, fs)

	job := lsm.CompactionJob{
		Dir: "db",
		Inputs: []lsm.JobLevel{
			{Level: 0, Files: []manifest.FileMetadata{m2, m1}},
		},
		OutputLevel:        1,
		Bottommost:         true,
		SmallestSnapshot:   1 << 60,
		FirstOutputFileNum: 10,
		MaxOutputFiles:     16,
		TargetFileSize:     1 << 20,
		BlockSize:          4096,
		BloomBitsPerKey:    10,
	}
	res, err := orch.Compact(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) == 0 {
		t.Fatal("no outputs")
	}
	var total uint64
	for _, out := range res.Outputs {
		total += out.Size
		if out.FileNum < 10 || out.FileNum >= 26 {
			t.Fatalf("output file number %d outside reservation", out.FileNum)
		}
	}
	if res.BytesWritten == 0 || res.BytesRead == 0 {
		t.Fatalf("accounting: %+v", res)
	}
	// 750 distinct keys survive the merge.
	raf, err := fs.Open(fmt.Sprintf("db/%06d.sst", res.Outputs[0].FileNum))
	if err != nil {
		t.Fatal(err)
	}
	r, err := sstable.NewReader(raf, sstable.ReaderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Properties().NumEntries; got != 750 {
		t.Fatalf("merged entries %d, want 750 (duplicates dropped)", got)
	}
	// Overlap winner: file 2 (higher seq) supplies k000300.
	v, _, err := r.Get([]byte("k000300"), base.MaxSeqNum)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(v), "v2-") {
		t.Fatalf("wrong version won the merge: %q", v)
	}

	if st := orch.Stats(); st.Completed != 1 || st.Enqueued != 1 {
		t.Fatalf("orchestrator recorded %+v, want 1 enqueued and completed", st)
	}
}

func TestRemoteJobErrorPropagates(t *testing.T) {
	fs := vfs.NewMem()
	orch, _ := startPair(t, fs)

	// Job references a missing input file. The orchestrator retries a
	// non-ENOSPC execution error (it may be worker-local), so the terminal
	// error arrives only after the attempt budget is spent.
	job := lsm.CompactionJob{
		Dir: "db",
		Inputs: []lsm.JobLevel{{Level: 0, Files: []manifest.FileMetadata{{
			FileNum: 99, Size: 10,
			Smallest: base.MakeInternalKey([]byte("a"), 1, base.KindSet),
			Largest:  base.MakeInternalKey([]byte("b"), 1, base.KindSet),
		}}}},
		OutputLevel:        1,
		FirstOutputFileNum: 10,
		MaxOutputFiles:     4,
		TargetFileSize:     1 << 20,
	}
	if _, err := orch.Compact(job); err == nil {
		t.Fatal("missing-input job succeeded")
	}
	// The worker remains usable after a remote error.
	m := buildInput(t, fs, 1, 0, 10)
	job.Inputs = []lsm.JobLevel{{Level: 0, Files: []manifest.FileMetadata{m}}}
	if _, err := orch.Compact(job); err != nil {
		t.Fatalf("worker broken after remote error: %v", err)
	}
}

func TestWorkerReconnects(t *testing.T) {
	fs := vfs.NewMem()
	m := buildInput(t, fs, 1, 0, 10)
	orch, w := startPair(t, fs)

	job := lsm.CompactionJob{
		Dir:                "db",
		Inputs:             []lsm.JobLevel{{Level: 0, Files: []manifest.FileMetadata{m}}},
		OutputLevel:        1,
		FirstOutputFileNum: 10,
		MaxOutputFiles:     4,
		TargetFileSize:     1 << 20,
	}
	if _, err := orch.Compact(job); err != nil {
		t.Fatal(err)
	}
	// Force-close the worker's connection; the next poll must redial.
	w.connMu.Lock()
	if w.conn != nil {
		w.conn.Close()
		w.conn = nil
	}
	w.connMu.Unlock()
	job.FirstOutputFileNum = 20
	if _, err := orch.Compact(job); err != nil {
		t.Fatalf("worker did not recover from dropped connection: %v", err)
	}
}

// TestRemoteSubcompactedJob ships a job with MaxSubcompactions over the
// wire and checks the worker shards it: the field survives the JSON
// protocol, the shard count comes back in the result, and the merged
// output is identical in content to what a serial merge would produce —
// sorted, non-overlapping outputs covering all 750 surviving keys.
func TestRemoteSubcompactedJob(t *testing.T) {
	fs := vfs.NewMem()
	m1 := buildInput(t, fs, 1, 0, 500)
	m2 := buildInput(t, fs, 2, 250, 750)

	orch, _ := startPair(t, fs)

	job := lsm.CompactionJob{
		Dir: "db",
		Inputs: []lsm.JobLevel{
			{Level: 0, Files: []manifest.FileMetadata{m2, m1}},
		},
		OutputLevel:        1,
		Bottommost:         true,
		SmallestSnapshot:   1 << 60,
		FirstOutputFileNum: 10,
		MaxOutputFiles:     30,
		TargetFileSize:     4 << 10, // several outputs per shard
		BlockSize:          4096,
		BloomBitsPerKey:    10,
		MaxSubcompactions:  3,
	}
	res, err := orch.Compact(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Subcompactions < 2 {
		t.Fatalf("job ran with %d subcompactions, want >= 2 (field lost over the wire?)", res.Subcompactions)
	}
	if len(res.Outputs) < 2 {
		t.Fatalf("got %d outputs, want several", len(res.Outputs))
	}

	var total uint64
	var prevLargest []byte
	for i, out := range res.Outputs {
		if i > 0 && strings.Compare(string(base.UserKey(out.Smallest)), string(prevLargest)) <= 0 {
			t.Fatalf("output %d overlaps or is out of order: smallest %q after largest %q",
				i, base.UserKey(out.Smallest), prevLargest)
		}
		prevLargest = append(prevLargest[:0], base.UserKey(out.Largest)...)

		raf, err := fs.Open(fmt.Sprintf("db/%06d.sst", out.FileNum))
		if err != nil {
			t.Fatal(err)
		}
		r, err := sstable.NewReader(raf, sstable.ReaderOptions{})
		if err != nil {
			t.Fatal(err)
		}
		total += r.Properties().NumEntries
		r.Close()
	}
	if total != 750 {
		t.Fatalf("sharded merge produced %d entries, want 750", total)
	}
}
