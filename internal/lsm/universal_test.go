package lsm

import (
	"fmt"
	"testing"

	"shield/internal/vfs"
)

// TestUniversalCompactionConverges is a regression test for a livelock:
// universal compaction must merge runs into a single output file, otherwise
// the run count never drops below the trigger and workers reschedule
// forever.
func TestUniversalCompactionConverges(t *testing.T) {
	fs := vfs.NewMem()
	opts := Options{
		FS:                  fs,
		MemtableSize:        32 << 10,
		BaseLevelSize:       128 << 10,
		TargetFileSize:      32 << 10,
		L0CompactionTrigger: 3,
		CompactionStyle:     CompactionUniversal,
		UniversalMaxRuns:    4,
	}
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 60000; i++ {
		k := fmt.Sprintf("key-%05d", i%2000)
		if err := db.Put([]byte(k), make([]byte, 80)); err != nil {
			t.Fatal(err)
		}
		if i%10000 == 0 {
			t.Logf("step %d files=%d", i, db.NumFilesAtLevel(0))
		}
	}
	t.Log("fill done")
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	t.Log("flush done")
	if err := db.CompactRange(); err != nil {
		t.Fatal(err)
	}
	t.Log("compact done")
}
