package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"shield/internal/lsm/base"
	"shield/internal/vfs"
)

// slowSyncFS delays WAL fsyncs so concurrent writers pile up behind the
// commit leader — the deterministic way to make coalescing happen in a test
// without depending on scheduler luck.
type slowSyncFS struct {
	vfs.FS
	delay time.Duration
}

func (f *slowSyncFS) Create(name string) (vfs.WritableFile, error) {
	w, err := f.FS.Create(name)
	if err != nil {
		return nil, err
	}
	if !strings.HasSuffix(name, ".log") {
		return w, nil
	}
	return &slowSyncFile{WritableFile: w, delay: f.delay}, nil
}

type slowSyncFile struct {
	vfs.WritableFile
	delay time.Duration
}

func (f *slowSyncFile) Sync() error {
	time.Sleep(f.delay)
	return f.WritableFile.Sync()
}

// groupRecorder collects what the commit pipeline reports through the test
// hook: one entry per committed group, with the user keys decoded out of the
// group's (aliased, leader-owned) WAL record.
type groupRecorder struct {
	mu     sync.Mutex
	sizes  []int
	ranges [][2]base.SeqNum
	keys   [][]string
}

func (g *groupRecorder) hook(size int, first, last base.SeqNum, rec []byte) {
	var ks []string
	err := decodeBatch(rec, func(_ base.SeqNum, _ base.Kind, key, _ []byte) error {
		ks = append(ks, string(key))
		return nil
	})
	g.mu.Lock()
	defer g.mu.Unlock()
	if err != nil {
		// Surface through the size slot; the test asserts on it.
		g.sizes = append(g.sizes, -1)
		return
	}
	g.sizes = append(g.sizes, size)
	g.ranges = append(g.ranges, [2]base.SeqNum{first, last})
	g.keys = append(g.keys, ks)
}

// TestGroupCommitCoalescing is the end-to-end group-commit check: with many
// concurrent synced writers, the engine must coalesce commits so that
// wal_syncs stays strictly below writes (the group-commit ratio < 1), at
// least one group must actually hold multiple writers, and every acked write
// must read back.
func TestGroupCommitCoalescing(t *testing.T) {
	fs := &slowSyncFS{FS: vfs.NewMem(), delay: 200 * time.Microsecond}
	opts := testOptions(fs)
	opts.SyncWrites = true
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	rec := &groupRecorder{}
	db.commitHook = rec.hook

	const writers, perWriter = 8, 60
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := []byte(fmt.Sprintf("w%02d-%04d", w, i))
				if err := db.Put(k, []byte(fmt.Sprintf("v%d-%d", w, i))); err != nil {
					t.Errorf("writer %d put %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	m := db.Metrics()
	if m.Writes != writers*perWriter {
		t.Fatalf("Writes = %d, want %d", m.Writes, writers*perWriter)
	}
	if m.WALSyncs >= m.Writes {
		t.Fatalf("wal_syncs = %d not below writes = %d: no coalescing happened", m.WALSyncs, m.Writes)
	}
	if r := m.GroupCommitRatio(); r >= 1 {
		t.Fatalf("group-commit ratio = %.3f, want < 1", r)
	}
	rec.mu.Lock()
	maxGroup, totalWriters := 0, 0
	for _, s := range rec.sizes {
		if s < 0 {
			rec.mu.Unlock()
			t.Fatal("commit hook saw an undecodable group record")
		}
		if s > maxGroup {
			maxGroup = s
		}
		totalWriters += s
	}
	rec.mu.Unlock()
	if maxGroup < 2 {
		t.Fatalf("largest commit group = %d, want >= 2", maxGroup)
	}
	if totalWriters != writers*perWriter {
		t.Fatalf("groups covered %d writers, want %d", totalWriters, writers*perWriter)
	}
	t.Logf("ratio=%.3f syncs=%d writes=%d maxGroup=%d", m.GroupCommitRatio(), m.WALSyncs, m.Writes, maxGroup)

	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			k := []byte(fmt.Sprintf("w%02d-%04d", w, i))
			v, err := db.Get(k)
			if err != nil {
				t.Fatalf("Get(%s): %v", k, err)
			}
			if want := fmt.Sprintf("v%d-%d", w, i); string(v) != want {
				t.Fatalf("Get(%s) = %q, want %q", k, v, want)
			}
		}
	}
}

// TestConcurrentCommitModelEquivalence is the concurrent-commit property
// test: N goroutine writers (plus a flusher) race through the pipeline while
// each checks read-your-writes after every acked Put; afterwards the DB must
// hold exactly the union of all acked writes (none lost, none invented), the
// committed groups must partition the sequence space contiguously (no
// duplicated or reordered acks), and a reopen must recover the same state.
func TestConcurrentCommitModelEquivalence(t *testing.T) {
	fs := vfs.NewMem()
	opts := testOptions(fs)
	opts.SyncWrites = true
	opts.MemtableSize = 8 << 10 // rotate often: exercise the rotation barrier
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	rec := &groupRecorder{}
	db.commitHook = rec.hook

	const writers, perWriter = 6, 150
	var (
		wg      sync.WaitGroup
		stop    atomic.Bool
		modelMu sync.Mutex
	)
	model := make(map[string]string)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := fmt.Sprintf("w%02d-%04d", w, i)
				v := fmt.Sprintf("val-%d-%d", w, i)
				if i%7 == 3 {
					// Mix multi-record batches through the same pipeline.
					b := NewBatch()
					b.Put([]byte(k), []byte(v))
					b.Delete([]byte(fmt.Sprintf("w%02d-%04d", w, i-1)))
					if err := db.Write(b, true); err != nil {
						t.Errorf("writer %d batch %d: %v", w, i, err)
						return
					}
					modelMu.Lock()
					model[k] = v
					delete(model, fmt.Sprintf("w%02d-%04d", w, i-1))
					modelMu.Unlock()
				} else {
					if err := db.Put([]byte(k), []byte(v)); err != nil {
						t.Errorf("writer %d put %d: %v", w, i, err)
						return
					}
					modelMu.Lock()
					model[k] = v
					modelMu.Unlock()
				}
				// Read-your-writes: the ack means the write is applied.
				got, err := db.Get([]byte(k))
				if err != nil || string(got) != v {
					t.Errorf("writer %d: read-your-writes Get(%s) = %q,%v want %q", w, k, got, err, v)
					return
				}
			}
		}(w)
	}
	// A concurrent flusher forces rotation waiters through the pipeline
	// between groups.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if err := db.Flush(); err != nil {
				t.Errorf("flush: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// Writers finish first; then stop the flusher.
	for w := 0; ; w++ {
		rec.mu.Lock()
		covered := 0
		for _, s := range rec.sizes {
			covered += s
		}
		rec.mu.Unlock()
		if covered >= writers*perWriter || t.Failed() {
			break
		}
		time.Sleep(5 * time.Millisecond)
		if w > 4000 {
			t.Fatal("writers did not finish")
		}
	}
	stop.Store(true)
	<-done
	if t.Failed() {
		db.Close()
		return
	}

	// Sequence-space contiguity: sorted by first seq, the committed groups
	// must tile [1, lastSeq] with no gap or overlap — the pipeline never
	// drops, duplicates, or reorders an acked commit.
	rec.mu.Lock()
	ranges := append([][2]base.SeqNum(nil), rec.ranges...)
	rec.mu.Unlock()
	sort.Slice(ranges, func(i, j int) bool { return ranges[i][0] < ranges[j][0] })
	next := base.SeqNum(1)
	for i, r := range ranges {
		if r[0] != next {
			t.Fatalf("group %d starts at seq %d, want %d (gap or overlap)", i, r[0], next)
		}
		if r[1] < r[0] {
			t.Fatalf("group %d has inverted range [%d,%d]", i, r[0], r[1])
		}
		next = r[1] + 1
	}
	if got := base.SeqNum(db.lastSeq.Load()) + 1; next != got {
		t.Fatalf("groups cover seqs up to %d, engine lastSeq+1 = %d", next, got)
	}

	verify := func(db *DB, stage string) {
		it, err := db.NewIter()
		if err != nil {
			t.Fatal(err)
		}
		defer it.Close()
		seen := 0
		for ok := it.First(); ok; ok = it.Next() {
			want, exists := model[string(it.Key())]
			if !exists {
				t.Fatalf("%s: iterator yielded unacked key %q", stage, it.Key())
			}
			if string(it.Value()) != want {
				t.Fatalf("%s: %q = %q, want %q", stage, it.Key(), it.Value(), want)
			}
			seen++
		}
		if err := it.Err(); err != nil {
			t.Fatal(err)
		}
		if seen != len(model) {
			t.Fatalf("%s: iterator saw %d keys, model has %d", stage, seen, len(model))
		}
	}
	verify(db, "live")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open("db", testOptions(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	verify(db2, "reopened")
}

// armedFaultFS fails every WAL sync once armed; writes keep succeeding, so
// the failure surfaces exactly at the commit pipeline's sync step.
type armedFaultFS struct {
	vfs.FS
	armed atomic.Bool
}

func (f *armedFaultFS) Create(name string) (vfs.WritableFile, error) {
	w, err := f.FS.Create(name)
	if err != nil {
		return nil, err
	}
	if !strings.HasSuffix(name, ".log") {
		return w, nil
	}
	return &armedFaultFile{WritableFile: w, fs: f}, nil
}

type armedFaultFile struct {
	vfs.WritableFile
	fs *armedFaultFS
}

func (f *armedFaultFile) Sync() error {
	if f.fs.armed.Load() {
		return errInjected
	}
	time.Sleep(100 * time.Microsecond) // widen the grouping window
	return f.WritableFile.Sync()
}

// TestCommitSyncFailureFailsWholeGroup: when the group's single fsync fails,
// every writer in the group gets the error — no writer in a failed group is
// ever acked — and the DB is poisoned for subsequent writes.
func TestCommitSyncFailureFailsWholeGroup(t *testing.T) {
	fs := &armedFaultFS{FS: vfs.NewMem()}
	opts := testOptions(fs)
	opts.SyncWrites = true
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	rec := &groupRecorder{}
	db.commitHook = rec.hook

	const writers, perWriter = 8, 40
	var (
		wg    sync.WaitGroup
		acked sync.Map // key -> true, only for nil-error Puts
	)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if w == 0 && i == perWriter/2 {
					fs.armed.Store(true)
				}
				k := fmt.Sprintf("w%02d-%04d", w, i)
				if err := db.Put([]byte(k), []byte("v")); err != nil {
					if !errors.Is(err, ErrDegraded) {
						t.Errorf("writer %d: error %v does not wrap ErrDegraded", w, err)
					}
					return
				}
				acked.Store(k, true)
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// The poison sticks.
	if err := db.Put([]byte("after"), []byte("x")); !errors.Is(err, ErrDegraded) {
		t.Fatalf("post-failure Put = %v, want ErrDegraded", err)
	}

	// The hook fires only for groups that committed fully; every acked key
	// must belong to one of them, and no key from a failed group was acked.
	committed := make(map[string]bool)
	rec.mu.Lock()
	for _, ks := range rec.keys {
		for _, k := range ks {
			committed[k] = true
		}
	}
	rec.mu.Unlock()
	acked.Range(func(k, _ any) bool {
		if !committed[k.(string)] {
			t.Errorf("key %s was acked but its group never committed", k)
		}
		return true
	})
}

// TestFlushRotationCommitsAlone: a rotation request entering the pipeline
// between writer groups must observe a consistent memtable boundary — writes
// acked before the Flush land in the flushed table, writes after it in the
// new memtable — with concurrent writers hammering the pipeline throughout.
func TestFlushRotationCommitsAlone(t *testing.T) {
	fs := vfs.NewMem()
	opts := testOptions(fs)
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	var wg sync.WaitGroup
	var stop atomic.Bool
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				if err := db.Put([]byte(fmt.Sprintf("bg%d-%06d", w, i)), []byte("x")); err != nil {
					t.Errorf("bg writer: %v", err)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 20; i++ {
		k := []byte(fmt.Sprintf("pre-%03d", i))
		if err := db.Put(k, []byte("before")); err != nil {
			t.Fatal(err)
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
		v, err := db.Get(k)
		if err != nil || !bytes.Equal(v, []byte("before")) {
			t.Fatalf("Get(%s) after flush = %q,%v", k, v, err)
		}
	}
	stop.Store(true)
	wg.Wait()
}
