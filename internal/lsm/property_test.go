package lsm

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"shield/internal/vfs"
)

// TestModelEquivalence drives the DB with a random operation stream and
// checks every observable against an in-memory map model, across flushes,
// compactions, and reopen. This is the engine's main correctness property.
func TestModelEquivalence(t *testing.T) {
	for _, style := range []CompactionStyle{CompactionLeveled, CompactionUniversal} {
		t.Run(style.String(), func(t *testing.T) {
			fs := vfs.NewMem()
			opts := Options{
				FS:                  fs,
				MemtableSize:        32 << 10,
				BaseLevelSize:       128 << 10,
				TargetFileSize:      32 << 10,
				L0CompactionTrigger: 3,
				CompactionStyle:     style,
				UniversalMaxRuns:    4,
			}
			db, err := Open("db", opts)
			if err != nil {
				t.Fatal(err)
			}

			model := make(map[string]string)
			rng := rand.New(rand.NewSource(99))
			keySpace := 2000

			checkKey := func(k string) {
				got, err := db.Get([]byte(k))
				want, exists := model[k]
				switch {
				case exists && err != nil:
					t.Fatalf("Get(%s): %v (model has %q)", k, err, want)
				case exists && string(got) != want:
					t.Fatalf("Get(%s) = %q, model has %q", k, got, want)
				case !exists && !errors.Is(err, ErrNotFound):
					t.Fatalf("Get(%s) = %q,%v; model has nothing", k, got, err)
				}
			}

			steps := 20_000
			if testing.Short() {
				steps = 4_000
			}
			for step := 0; step < steps; step++ {
				k := fmt.Sprintf("key-%05d", rng.Intn(keySpace))
				switch rng.Intn(10) {
				case 0, 1, 2, 3, 4, 5: // put
					v := fmt.Sprintf("v-%d-%d", step, rng.Int63())
					if err := db.Put([]byte(k), []byte(v)); err != nil {
						t.Fatal(err)
					}
					model[k] = v
				case 6, 7: // delete
					if err := db.Delete([]byte(k)); err != nil {
						t.Fatal(err)
					}
					delete(model, k)
				case 8: // read
					checkKey(k)
				case 9: // occasional maintenance
					switch rng.Intn(200) {
					case 0:
						if err := db.Flush(); err != nil {
							t.Fatal(err)
						}
					case 1:
						if err := db.CompactRange(); err != nil {
							t.Fatal(err)
						}
					}
				}
			}

			// Full verification via iterator: exact key set, exact values.
			it, err := db.NewIter()
			if err != nil {
				t.Fatal(err)
			}
			seen := 0
			for ok := it.First(); ok; ok = it.Next() {
				k, v := string(it.Key()), string(it.Value())
				want, exists := model[k]
				if !exists {
					t.Fatalf("iterator yielded deleted/unknown key %q", k)
				}
				if v != want {
					t.Fatalf("iterator value for %q: %q want %q", k, v, want)
				}
				seen++
			}
			if err := it.Err(); err != nil {
				t.Fatal(err)
			}
			if seen != len(model) {
				t.Fatalf("iterator saw %d keys, model has %d", seen, len(model))
			}
			it.Close()

			// Reopen and verify a sample again (recovery correctness).
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			db2, err := Open("db", opts)
			if err != nil {
				t.Fatal(err)
			}
			defer db2.Close()
			checked := 0
			for k, want := range model {
				got, err := db2.Get([]byte(k))
				if err != nil {
					t.Fatalf("after reopen Get(%s): %v", k, err)
				}
				if string(got) != want {
					t.Fatalf("after reopen Get(%s) = %q want %q", k, got, want)
				}
				if checked++; checked >= 300 {
					break
				}
			}
			for i := 0; i < 100; i++ {
				k := fmt.Sprintf("key-%05d", rng.Intn(keySpace))
				if _, exists := model[k]; !exists {
					if _, err := db2.Get([]byte(k)); !errors.Is(err, ErrNotFound) {
						t.Fatalf("after reopen deleted key %q resurfaced: %v", k, err)
					}
				}
			}
		})
	}
}

// TestSnapshotIsolation: a snapshot must keep seeing the old value while
// newer writes land, even across flush and compaction.
func TestSnapshotIsolation(t *testing.T) {
	fs := vfs.NewMem()
	db, err := Open("db", testOptions(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	if err := db.Put([]byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	snap := db.NewSnapshot()
	defer snap.Release()

	if err := db.Put([]byte("k"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete([]byte("other")); err != nil {
		t.Fatal(err)
	}
	// Push everything through flush + compaction; the snapshot pins v1.
	for i := 0; i < 5000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("fill-%05d", i)), make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.CompactRange(); err != nil {
		t.Fatal(err)
	}

	v, err := snap.Get([]byte("k"))
	if err != nil {
		t.Fatalf("snapshot read: %v", err)
	}
	if string(v) != "v1" {
		t.Fatalf("snapshot saw %q, want v1", v)
	}
	cur, err := db.Get([]byte("k"))
	if err != nil || string(cur) != "v2" {
		t.Fatalf("current read %q %v", cur, err)
	}
}

// TestIteratorUnaffectedByConcurrentWrites: an open iterator's view stays
// frozen at its creation sequence.
func TestIteratorSnapshotSemantics(t *testing.T) {
	fs := vfs.NewMem()
	db, err := Open("db", testOptions(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("old"))
	}
	it, err := db.NewIter()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()

	// Mutate after iterator creation.
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("new"))
	}
	db.Put([]byte("zzz-extra"), []byte("x"))

	count := 0
	for ok := it.First(); ok; ok = it.Next() {
		if string(it.Value()) != "old" {
			t.Fatalf("iterator leaked post-snapshot write: %q=%q", it.Key(), it.Value())
		}
		count++
	}
	if count != 100 {
		t.Fatalf("iterator saw %d keys, want 100", count)
	}
}
