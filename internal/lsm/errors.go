package lsm

import (
	"errors"
	"fmt"
)

// ErrCorruption is the sentinel all persistent-state corruption errors wrap:
// a bad SST block checksum, an undecodable manifest record, a missing file
// the manifest still references. Test with errors.Is. A torn WAL tail is NOT
// corruption — it is the expected power-loss outcome and recovery truncates
// it silently.
var ErrCorruption = errors.New("lsm: corruption")

// ErrDegraded is the sentinel wrapped by every write rejected because the DB
// has poisoned itself into read-only degraded mode: a WAL append, flush, or
// manifest write failed (ENOSPC, I/O error), so accepting further writes
// could silently lose them. Reads keep being served from the state that was
// durable before the failure. The underlying cause is wrapped alongside, so
// errors.Is(err, ErrDegraded) and errors.Is(err, vfs.ErrNoSpace) can both
// hold. Reopening the DB after the cause is cleared exits degraded mode and
// recovers every previously-acked write from the WAL and manifest.
var ErrDegraded = errors.New("lsm: degraded (read-only) mode")

// ErrIntegrity is the sentinel wrapped by every authenticated-read failure:
// a sealed (format v2) block whose AEAD tag did not verify, or an SST whose
// tag-chain digest disagrees with the manifest. Unlike a block-checksum
// mismatch (which CRC32 can miss under an adversary), an integrity failure
// is cryptographic proof the ciphertext was altered after sealing. Every
// IntegrityError also wraps ErrCorruption, so existing corruption handling
// (quarantine, best-effort recovery) applies unchanged.
var ErrIntegrity = errors.New("lsm: integrity violation")

// ErrEpochRegression is the sentinel wrapped by the fail-closed open error
// when the store's freshness epoch has moved backwards: the manifest the
// disk presents carries an epoch older than the floor sealed into the local
// freshness store, proving the persistent state was rolled back to an
// earlier (validly-encrypted) snapshot. Recovery refuses to proceed unless
// Options.AllowRollback acknowledges the regression.
var ErrEpochRegression = errors.New("lsm: freshness epoch regression (store rolled back)")

// ErrJobLost is the sentinel wrapped by an offloaded-compaction failure in
// which the job could not be completed by any worker: every lease expired
// (worker died mid-job) or no worker claimed the job before its deadline.
// The orchestrator has already swept the dead attempts' fenced output-file
// ranges, and the manifest was never touched, so the inputs are fully
// retained — the engine treats it exactly like a local ENOSPC abort:
// compactions halt (no degraded mode, no poisoning) until the next
// successful flush re-arms them.
var ErrJobLost = errors.New("lsm: compaction job lost (no worker completed it)")

// CorruptionError describes one corrupt (or missing-but-referenced)
// persistent file. It wraps both ErrCorruption and the underlying cause, so
// errors.Is works against either.
type CorruptionError struct {
	Path   string
	Kind   FileKind
	Detail string
	Err    error // underlying cause; may be nil
}

// Error implements error.
func (e *CorruptionError) Error() string {
	msg := fmt.Sprintf("lsm: corruption in %s %s: %s", e.Kind, e.Path, e.Detail)
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Unwrap lets errors.Is(err, ErrCorruption) and errors.Is(err, cause) both
// succeed.
func (e *CorruptionError) Unwrap() []error {
	if e.Err != nil {
		return []error{ErrCorruption, e.Err}
	}
	return []error{ErrCorruption}
}

// IntegrityError describes one file whose contents failed cryptographic
// authentication: a sealed block's AEAD tag did not verify, or the file's
// tag-chain digest disagrees with the digest the manifest recorded when the
// file was installed. It is returned instead of plaintext — a read that
// fails authentication never yields bytes. It wraps ErrIntegrity,
// ErrCorruption, and the underlying cause.
type IntegrityError struct {
	Path   string
	Kind   FileKind
	Detail string
	Err    error // underlying cause; may be nil
}

// Error implements error.
func (e *IntegrityError) Error() string {
	msg := fmt.Sprintf("lsm: integrity violation in %s %s: %s", e.Kind, e.Path, e.Detail)
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Unwrap lets errors.Is succeed against ErrIntegrity, ErrCorruption, and
// the cause. Wrapping ErrCorruption too means every corruption-aware path
// (best-effort recovery, scrub classification, checker taint rules) treats
// an authentication failure at least as seriously as a checksum mismatch.
func (e *IntegrityError) Unwrap() []error {
	if e.Err != nil {
		return []error{ErrIntegrity, ErrCorruption, e.Err}
	}
	return []error{ErrIntegrity, ErrCorruption}
}
