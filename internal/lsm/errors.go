package lsm

import (
	"errors"
	"fmt"
)

// ErrCorruption is the sentinel all persistent-state corruption errors wrap:
// a bad SST block checksum, an undecodable manifest record, a missing file
// the manifest still references. Test with errors.Is. A torn WAL tail is NOT
// corruption — it is the expected power-loss outcome and recovery truncates
// it silently.
var ErrCorruption = errors.New("lsm: corruption")

// ErrDegraded is the sentinel wrapped by every write rejected because the DB
// has poisoned itself into read-only degraded mode: a WAL append, flush, or
// manifest write failed (ENOSPC, I/O error), so accepting further writes
// could silently lose them. Reads keep being served from the state that was
// durable before the failure. The underlying cause is wrapped alongside, so
// errors.Is(err, ErrDegraded) and errors.Is(err, vfs.ErrNoSpace) can both
// hold. Reopening the DB after the cause is cleared exits degraded mode and
// recovers every previously-acked write from the WAL and manifest.
var ErrDegraded = errors.New("lsm: degraded (read-only) mode")

// CorruptionError describes one corrupt (or missing-but-referenced)
// persistent file. It wraps both ErrCorruption and the underlying cause, so
// errors.Is works against either.
type CorruptionError struct {
	Path   string
	Kind   FileKind
	Detail string
	Err    error // underlying cause; may be nil
}

// Error implements error.
func (e *CorruptionError) Error() string {
	msg := fmt.Sprintf("lsm: corruption in %s %s: %s", e.Kind, e.Path, e.Detail)
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Unwrap lets errors.Is(err, ErrCorruption) and errors.Is(err, cause) both
// succeed.
func (e *CorruptionError) Unwrap() []error {
	if e.Err != nil {
		return []error{ErrCorruption, e.Err}
	}
	return []error{ErrCorruption}
}
