package lsm

import (
	"errors"
	"fmt"
)

// ErrCorruption is the sentinel all persistent-state corruption errors wrap:
// a bad SST block checksum, an undecodable manifest record, a missing file
// the manifest still references. Test with errors.Is. A torn WAL tail is NOT
// corruption — it is the expected power-loss outcome and recovery truncates
// it silently.
var ErrCorruption = errors.New("lsm: corruption")

// CorruptionError describes one corrupt (or missing-but-referenced)
// persistent file. It wraps both ErrCorruption and the underlying cause, so
// errors.Is works against either.
type CorruptionError struct {
	Path   string
	Kind   FileKind
	Detail string
	Err    error // underlying cause; may be nil
}

// Error implements error.
func (e *CorruptionError) Error() string {
	msg := fmt.Sprintf("lsm: corruption in %s %s: %s", e.Kind, e.Path, e.Detail)
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Unwrap lets errors.Is(err, ErrCorruption) and errors.Is(err, cause) both
// succeed.
func (e *CorruptionError) Unwrap() []error {
	if e.Err != nil {
		return []error{ErrCorruption, e.Err}
	}
	return []error{ErrCorruption}
}
