package lsm

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"shield/internal/lsm/base"
)

// TestBatchEncodeDecodeProperty: arbitrary record sequences survive the
// WAL wire encoding, with sequence numbers assigned consecutively.
func TestBatchEncodeDecodeProperty(t *testing.T) {
	type rec struct {
		Key    []byte
		Value  []byte
		Delete bool
	}
	f := func(recs []rec, seqSeed uint16) bool {
		b := NewBatch()
		for _, r := range recs {
			if r.Delete {
				b.Delete(r.Key)
			} else {
				b.Put(r.Key, r.Value)
			}
		}
		if b.Count() != uint32(len(recs)) {
			return false
		}
		startSeq := base.SeqNum(seqSeed) + 1
		b.setSeq(startSeq)

		i := 0
		err := decodeBatch(b.data, func(seq base.SeqNum, kind base.Kind, key, value []byte) error {
			r := recs[i]
			if seq != startSeq+base.SeqNum(i) {
				return fmt.Errorf("seq %d at record %d", seq, i)
			}
			wantKind := base.KindSet
			if r.Delete {
				wantKind = base.KindDelete
			}
			if kind != wantKind || !bytes.Equal(key, r.Key) {
				return fmt.Errorf("record %d mismatch", i)
			}
			if !r.Delete && !bytes.Equal(value, r.Value) {
				return fmt.Errorf("value %d mismatch", i)
			}
			i++
			return nil
		})
		return err == nil && i == len(recs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestBatchDecodeRejectsCorruption: truncated or trailing-garbage encodings
// must error, never mis-parse.
func TestBatchDecodeRejectsCorruption(t *testing.T) {
	b := NewBatch()
	b.Put([]byte("key-one"), []byte("value-one"))
	b.Put([]byte("key-two"), []byte("value-two"))
	b.setSeq(7)
	nop := func(base.SeqNum, base.Kind, []byte, []byte) error { return nil }

	if err := decodeBatch(b.data, nop); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
	// Too short for a header.
	if err := decodeBatch(b.data[:8], nop); err == nil {
		t.Fatal("short batch accepted")
	}
	// Truncated mid-record.
	for _, cut := range []int{batchHeaderLen + 1, len(b.data) - 1, len(b.data) - 5} {
		if err := decodeBatch(b.data[:cut], nop); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Trailing garbage.
	if err := decodeBatch(append(append([]byte{}, b.data...), 0xde, 0xad), nop); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	// Corrupted count.
	bad := append([]byte{}, b.data...)
	bad[8] = 200 // claims 200 records
	if err := decodeBatch(bad, nop); err == nil {
		t.Fatal("inflated count accepted")
	}
}

func TestBatchReset(t *testing.T) {
	b := NewBatch()
	b.Put([]byte("k"), []byte("v"))
	b.Reset()
	if !b.Empty() || b.Len() != batchHeaderLen {
		t.Fatalf("reset: count=%d len=%d", b.Count(), b.Len())
	}
	b.Put([]byte("k2"), []byte("v2"))
	if b.Count() != 1 {
		t.Fatalf("count after reuse: %d", b.Count())
	}
}

func TestBatchAppendBatch(t *testing.T) {
	a, b := NewBatch(), NewBatch()
	a.Put([]byte("a"), []byte("1"))
	b.Put([]byte("b"), []byte("2"))
	b.Delete([]byte("c"))
	a.appendBatch(b)
	a.setSeq(100)
	var keys []string
	decodeBatch(a.data, func(seq base.SeqNum, kind base.Kind, key, value []byte) error {
		keys = append(keys, fmt.Sprintf("%s@%d:%v", key, seq, kind))
		return nil
	})
	want := []string{"a@100:set", "b@101:set", "c@102:del"}
	if len(keys) != 3 {
		t.Fatalf("merged %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("merged[%d] = %s want %s", i, keys[i], want[i])
		}
	}
}
