package lsm

import (
	"fmt"
	"path"
	"strconv"
	"strings"
)

// File naming follows the LevelDB/RocksDB convention:
//
//	000042.log        WAL
//	000042.sst        SST
//	MANIFEST-000042   version-edit log
//	CURRENT           pointer to the live MANIFEST
//	LOCK              single-process guard (advisory)

func walFileName(dir string, num uint64) string {
	return path.Join(dir, fmt.Sprintf("%06d.log", num))
}

func sstFileName(dir string, num uint64) string {
	return path.Join(dir, fmt.Sprintf("%06d.sst", num))
}

// TableFileName returns the SST path for file number num under dir. It is
// exported for the offloaded-compaction orchestrator, which must be able to
// sweep a dead worker's partial outputs: each lease attempt writes into a
// fenced sub-range of output file numbers, so cleanup is "remove every table
// name in the range", including numbers the worker never reached.
func TableFileName(dir string, num uint64) string { return sstFileName(dir, num) }

func manifestFileName(dir string, num uint64) string {
	return path.Join(dir, fmt.Sprintf("MANIFEST-%06d", num))
}

func currentFileName(dir string) string { return path.Join(dir, "CURRENT") }

// parseFileName classifies a directory entry, returning its kind and number.
// ok is false for unrelated files.
func parseFileName(name string) (kind FileKind, num uint64, ok bool) {
	switch {
	case name == "CURRENT":
		return FileKindCurrent, 0, true
	case strings.HasPrefix(name, "MANIFEST-"):
		n, err := strconv.ParseUint(strings.TrimPrefix(name, "MANIFEST-"), 10, 64)
		if err != nil {
			return 0, 0, false
		}
		return FileKindManifest, n, true
	case strings.HasSuffix(name, ".log"):
		n, err := strconv.ParseUint(strings.TrimSuffix(name, ".log"), 10, 64)
		if err != nil {
			return 0, 0, false
		}
		return FileKindWAL, n, true
	case strings.HasSuffix(name, ".sst"):
		n, err := strconv.ParseUint(strings.TrimSuffix(name, ".sst"), 10, 64)
		if err != nil {
			return 0, 0, false
		}
		return FileKindSST, n, true
	default:
		return 0, 0, false
	}
}
