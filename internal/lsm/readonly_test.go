package lsm

import (
	"errors"
	"fmt"
	"testing"

	"shield/internal/vfs"
)

// TestReadOnlyInstance: a second instance opens the same directory
// read-only and serves both SST data and WAL-resident (unflushed) data,
// without writing a byte — the DS read-only-replica mechanism.
func TestReadOnlyInstance(t *testing.T) {
	fs := vfs.NewMem()
	opts := testOptions(fs)
	primary, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}

	// Flushed data.
	for i := 0; i < 3000; i++ {
		if err := primary.Put([]byte(fmt.Sprintf("sst-%05d", i)), []byte("flushed")); err != nil {
			t.Fatal(err)
		}
	}
	if err := primary.Flush(); err != nil {
		t.Fatal(err)
	}
	// WAL-only data, synced so it is visible to a second reader.
	b := NewBatch()
	for i := 0; i < 100; i++ {
		b.Put([]byte(fmt.Sprintf("wal-%03d", i)), []byte("unflushed"))
	}
	if err := primary.Write(b, true); err != nil {
		t.Fatal(err)
	}

	roOpts := opts
	roOpts.ReadOnly = true
	replica, err := Open("db", roOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()

	filesBefore, _ := fs.List("db")

	// Reads of both flushed and WAL-resident data.
	if v, err := replica.Get([]byte("sst-00042")); err != nil || string(v) != "flushed" {
		t.Fatalf("replica SST read: %q %v", v, err)
	}
	if v, err := replica.Get([]byte("wal-050")); err != nil || string(v) != "unflushed" {
		t.Fatalf("replica WAL read: %q %v", v, err)
	}
	it, err := replica.NewIter()
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for ok := it.First(); ok; ok = it.Next() {
		count++
	}
	it.Close()
	if count != 3100 {
		t.Fatalf("replica iterated %d keys, want 3100", count)
	}

	// Writes and maintenance are refused.
	if err := replica.Put([]byte("x"), []byte("y")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("replica Put: %v", err)
	}
	if err := replica.Flush(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("replica Flush: %v", err)
	}
	if err := replica.CompactRange(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("replica CompactRange: %v", err)
	}

	// The replica changed nothing on shared storage.
	filesAfter, _ := fs.List("db")
	if len(filesBefore) != len(filesAfter) {
		t.Fatalf("read-only replica changed the directory: %d -> %d files",
			len(filesBefore), len(filesAfter))
	}
	for i := range filesBefore {
		if filesBefore[i] != filesAfter[i] {
			t.Fatalf("file %v changed to %v", filesBefore[i], filesAfter[i])
		}
	}

	// The primary keeps working while the replica is open.
	if err := primary.Put([]byte("post"), []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := primary.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReadOnlyMissingDB(t *testing.T) {
	opts := testOptions(vfs.NewMem())
	opts.ReadOnly = true
	if _, err := Open("nope", opts); err == nil {
		t.Fatal("read-only open created a database")
	}
}
