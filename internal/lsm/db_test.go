package lsm

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"shield/internal/vfs"
)

func testOptions(fs vfs.FS) Options {
	return Options{
		FS:                  fs,
		MemtableSize:        64 << 10, // small to force flushes
		BaseLevelSize:       256 << 10,
		TargetFileSize:      64 << 10,
		L0CompactionTrigger: 4,
	}
}

func TestPutGet(t *testing.T) {
	fs := vfs.NewMem()
	db, err := Open("db", testOptions(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	if err := db.Put([]byte("hello"), []byte("world")); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "world" {
		t.Fatalf("got %q, want %q", v, "world")
	}
	if _, err := db.Get([]byte("missing")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestOverwriteAndDelete(t *testing.T) {
	fs := vfs.NewMem()
	db, err := Open("db", testOptions(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	key := []byte("k")
	for i := 0; i < 10; i++ {
		if err := db.Put(key, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	v, err := db.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "v9" {
		t.Fatalf("got %q, want v9", v)
	}
	if err := db.Delete(key); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound after delete, got %v", err)
	}
}

func TestManyKeysThroughFlushAndCompaction(t *testing.T) {
	fs := vfs.NewMem()
	db, err := Open("db", testOptions(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const n = 20000
	rng := rand.New(rand.NewSource(1))
	keys := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%08d", rng.Intn(n))
		v := fmt.Sprintf("val-%d-%d", i, rng.Int63())
		keys[k] = v
		if err := db.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	// Validate a sample while background work is ongoing.
	checked := 0
	for k, want := range keys {
		v, err := db.Get([]byte(k))
		if err != nil {
			t.Fatalf("Get(%s): %v", k, err)
		}
		if string(v) != want {
			t.Fatalf("Get(%s) = %q, want %q", k, v, want)
		}
		checked++
		if checked > 2000 {
			break
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	m := db.Metrics()
	if m.Flushes == 0 {
		t.Fatal("expected at least one flush")
	}
}

func TestRecoveryFromWAL(t *testing.T) {
	fs := vfs.NewMem()
	opts := testOptions(fs)
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 100; i++ {
		v, err := db2.Get([]byte(fmt.Sprintf("k%03d", i)))
		if err != nil {
			t.Fatalf("after recovery Get(k%03d): %v", i, err)
		}
		if string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("recovered wrong value %q for k%03d", v, i)
		}
	}
}

func TestRecoveryAfterCrashUnsynced(t *testing.T) {
	fs := vfs.NewMem()
	opts := testOptions(fs)
	opts.SyncWrites = true
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a system crash without closing: unsynced bytes vanish.
	fs.CrashUnsynced()

	db2, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 50; i++ {
		if _, err := db2.Get([]byte(fmt.Sprintf("k%03d", i))); err != nil {
			t.Fatalf("synced write k%03d lost: %v", i, err)
		}
	}
}

func TestIterator(t *testing.T) {
	fs := vfs.NewMem()
	db, err := Open("db", testOptions(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const n = 5000
	for i := 0; i < n; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%05d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Delete every third key.
	for i := 0; i < n; i += 3 {
		if err := db.Delete([]byte(fmt.Sprintf("k%05d", i))); err != nil {
			t.Fatal(err)
		}
	}

	it, err := db.NewIter()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()

	count := 0
	prev := ""
	for ok := it.First(); ok; ok = it.Next() {
		k := string(it.Key())
		if prev != "" && k <= prev {
			t.Fatalf("iterator out of order: %q after %q", k, prev)
		}
		prev = k
		count++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	want := n - (n+2)/3
	if count != want {
		t.Fatalf("iterated %d keys, want %d", count, want)
	}

	// SeekGE lands on the right key.
	if !it.SeekGE([]byte("k02500")) {
		t.Fatal("SeekGE failed")
	}
	if k := string(it.Key()); k != "k02500" && k != "k02501" {
		t.Fatalf("SeekGE(k02500) landed on %q", k)
	}
}

func TestConcurrentWriters(t *testing.T) {
	fs := vfs.NewMem()
	db, err := Open("db", testOptions(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const writers = 8
	const perWriter = 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := fmt.Sprintf("w%d-k%04d", w, i)
				if err := db.Put([]byte(k), []byte("v")); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i += 37 {
			k := fmt.Sprintf("w%d-k%04d", w, i)
			if _, err := db.Get([]byte(k)); err != nil {
				t.Fatalf("Get(%s): %v", k, err)
			}
		}
	}
}

func TestBatchAtomicity(t *testing.T) {
	fs := vfs.NewMem()
	db, err := Open("db", testOptions(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	b := NewBatch()
	for i := 0; i < 100; i++ {
		b.Put([]byte(fmt.Sprintf("b%03d", i)), []byte("x"))
	}
	if b.Count() != 100 {
		t.Fatalf("batch count %d", b.Count())
	}
	if err := db.Write(b, false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := db.Get([]byte(fmt.Sprintf("b%03d", i))); err != nil {
			t.Fatalf("batch record %d missing: %v", i, err)
		}
	}
}

func TestCompactRangeDropsTombstones(t *testing.T) {
	fs := vfs.NewMem()
	db, err := Open("db", testOptions(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	for i := 0; i < 2000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%05d", i)), make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2000; i++ {
		if err := db.Delete([]byte(fmt.Sprintf("k%05d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CompactRange(); err != nil {
		t.Fatal(err)
	}
	it, err := db.NewIter()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if it.First() {
		t.Fatalf("expected empty db after deleting everything, found %q", it.Key())
	}
}

func TestCompactionStyles(t *testing.T) {
	for _, style := range []CompactionStyle{CompactionLeveled, CompactionUniversal, CompactionFIFO} {
		t.Run(style.String(), func(t *testing.T) {
			fs := vfs.NewMem()
			opts := testOptions(fs)
			opts.CompactionStyle = style
			opts.UniversalMaxRuns = 4
			opts.FIFOMaxTableSize = 1 << 20
			db, err := Open("db", opts)
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			for i := 0; i < 10000; i++ {
				k := fmt.Sprintf("k%06d", i%4000)
				if err := db.Put([]byte(k), make([]byte, 64)); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
			// Recent keys must be readable under every style (FIFO may have
			// dropped old ones, but the newest round fits in the cap).
			v, err := db.Get([]byte("k003999"))
			if err != nil {
				t.Fatalf("style %v: %v", style, err)
			}
			if len(v) != 64 {
				t.Fatalf("style %v: bad value length %d", style, len(v))
			}
		})
	}
}
