package lsm

import (
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"path"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"shield/internal/cache"
	"shield/internal/lsm/base"
	"shield/internal/lsm/manifest"
	"shield/internal/lsm/sstable"
	"shield/internal/lsm/wal"
	"shield/internal/metrics"
	"shield/internal/vfs"
)

// Errors returned by DB operations.
var (
	ErrNotFound = errors.New("lsm: key not found")
	ErrClosed   = errors.New("lsm: database closed")
	ErrReadOnly = errors.New("lsm: database opened read-only")
)

// Metrics exposes engine counters.
type Metrics struct {
	Flushes           int64
	Compactions       int64
	CompactionRead    int64 // bytes
	CompactionWritten int64 // bytes
	FlushWritten      int64 // bytes
	WALWritten        int64 // bytes
	WALSyncs          int64 // commit-path fsyncs; group commit makes this < synced batches
	StallTime         time.Duration
	Gets              int64
	Writes            int64
	CompactionsActive int64 // compaction jobs in flight now
	CompactionsQueued int64 // runnable plans deferred for lack of a job slot
	Subcompactions    int64 // key-range shards run by split compaction jobs

	// Block-cache counters (zero when the cache is disabled). PinnedBytes is
	// the charge held by the pinned class (L0 data + index/filter blocks
	// under Options.PinL0AndMeta) that eviction never reclaims.
	BlockCacheHits   int64
	BlockCacheMisses int64
	BlockCachePinned int64 // bytes, point-in-time gauge

	// Prefix-filter counters: seeks routed through SeekPrefixGE, and tables
	// those seeks skipped entirely because the prefix bloom proved the
	// prefix absent.
	PrefixSeeks int64
	PrefixSkips int64
}

// GroupCommitRatio returns wal_syncs/writes — the group-commit win under
// synced concurrent writers (1.0 means every write paid its own fsync; the
// smaller the better). Zero when nothing was written.
func (m Metrics) GroupCommitRatio() float64 {
	if m.Writes == 0 {
		return 0
	}
	return float64(m.WALSyncs) / float64(m.Writes)
}

// DB is the LSM-KVS instance.
type DB struct {
	opts    Options
	dir     string
	fs      vfs.FS
	wrapper FileWrapper

	blockCache *cache.LRU
	tables     *tableCache

	// commit is the group-commit pipeline (commit.go): writers coalesce into
	// leader-committed groups of one WAL record + one fsync each.
	commit commitPipeline
	// commitHook, when non-nil, observes each committed group: its size,
	// first and last sequence, and the encoded WAL record (aliased — the
	// leader's scratch buffer is reused, so hooks must copy what they keep).
	// Set only by tests in this package, before writes begin; it runs on the
	// leader with no locks held.
	commitHook func(groupSize int, first, last base.SeqNum, rec []byte)

	// lastSeq is the newest committed sequence, readable without mu.
	lastSeq atomic.Uint64

	mu          sync.Mutex
	mem         *memTable
	imm         []*memTable // oldest first
	current     *manifest.Version
	nextFileNum uint64
	fileSeq     uint64 // strictly increasing run ordinal for L0 ordering
	logNum      uint64
	walWriter   *wal.Writer
	walDEKID    string
	manifestW   *wal.Writer
	manifestNum uint64
	// manifestBad is set when an append to the live MANIFEST fails partway
	// (e.g. a torn write under ENOSPC). Recovery stops replaying at a torn
	// record, so any edit appended after one would be silently invisible —
	// the next edit must rotate to a fresh manifest instead of appending.
	manifestBad bool

	flushing    bool
	compactions int // compaction jobs in flight (background + manual)
	// l0Jobs counts in-flight jobs consuming level-0 inputs. At most one
	// may run: L0 files overlap arbitrarily and files flushed after an L0
	// job starts are not claimed by it, so a second L0 job's outputs could
	// interleave the first's at the base level.
	l0Jobs int
	// manualWaiters counts CompactRange steps waiting to claim a plan;
	// while nonzero the scheduler starts no new background jobs, so a
	// manual compaction cannot be starved by a busy write load.
	manualWaiters int
	// compactionsHalted stops background compaction scheduling after a
	// compaction aborted on ENOSPC. Unlike bgErr it does not poison writes:
	// the aborted compaction retained its inputs, so the DB is consistent.
	// The next successful flush (proof that space is available again)
	// clears it.
	compactionsHalted bool
	busyFiles         map[uint64]bool
	bgErr             error
	bgCond            *sync.Cond
	closed            bool
	iterCount         int
	zombies           []zombieFile
	snapshots         []base.SeqNum
	dekIDs            map[uint64]string // fileNum -> DEK-ID for SSTs
	// epoch is the store's freshness epoch: bumped past both the recovered
	// manifest epoch and the sealed floor on every writable open, written
	// into snapshot edits and CURRENT, and sealed into Options.Freshness.
	epoch uint64
	// integrityBad marks SSTs already quarantined (or being quarantined)
	// after a failed-authentication read, so repeated reads of a corrupt
	// file trigger exactly one version edit.
	integrityBad     map[uint64]bool
	flushWaiters     []chan error
	metFlushes       atomic.Int64
	metCompact       atomic.Int64
	metCompRead      atomic.Int64
	metCompWrite     atomic.Int64
	metFlushWrite    atomic.Int64
	metWAL           atomic.Int64
	metWALSyncs      atomic.Int64
	metStallNanos    atomic.Int64
	metGets          atomic.Int64
	metWrites        atomic.Int64
	metSubcomp       atomic.Int64
	metSchedDeferred atomic.Int64
	metPrefixSeeks   atomic.Int64
	metPrefixSkips   atomic.Int64
}

// errDegraded wraps a write-path failure in ErrDegraded.
func errDegraded(err error) error {
	return fmt.Errorf("%w: %w", ErrDegraded, err)
}

type zombieFile struct {
	name    string
	dekID   string
	fileNum uint64
	isSST   bool
	// quarantine moves the file into lost/ instead of unlinking it: the
	// zombie came from an integrity failure and the ciphertext is evidence.
	quarantine bool
}

// Open opens (creating if necessary) the database in dir.
func Open(dir string, opts Options) (*DB, error) {
	opts = opts.withDefaults()
	if opts.FS == nil {
		return nil, fmt.Errorf("lsm: Options.FS is required")
	}
	if err := opts.FS.MkdirAll(dir); err != nil {
		return nil, err
	}
	d := &DB{
		opts:         opts,
		dir:          dir,
		fs:           opts.FS,
		wrapper:      opts.Wrapper,
		busyFiles:    make(map[uint64]bool),
		dekIDs:       make(map[uint64]string),
		integrityBad: make(map[uint64]bool),
	}
	d.bgCond = sync.NewCond(&d.mu)
	d.commit.init()
	if opts.BlockCacheSize > 0 {
		d.blockCache = cache.New(opts.BlockCacheSize)
	}
	d.tables = newTableCache(d.fs, dir, d.wrapper, d.blockCache)
	d.tables.pinMeta = opts.PinL0AndMeta

	start := time.Now()
	if err := d.recover(); err != nil {
		return nil, err
	}
	metrics.Recovery.RecoveryNanos.Add(time.Since(start).Nanoseconds())

	d.mu.Lock()
	d.maybeScheduleFlushLocked()
	d.maybeScheduleCompactionLocked()
	d.mu.Unlock()
	return d, nil
}

// ---- Recovery ----

func (d *DB) recover() error {
	currentName := currentFileName(d.dir)
	_, err := d.fs.Stat(currentName)
	switch {
	case errors.Is(err, vfs.ErrNotFound):
		if d.opts.ReadOnly {
			return fmt.Errorf("lsm: read-only open of missing database: %w", err)
		}
		return d.createNew()
	case err != nil:
		return err
	}

	// Load CURRENT -> MANIFEST name (+ the optional epoch echo).
	data, err := vfs.ReadFile(d.fs, currentName)
	if err != nil {
		return fmt.Errorf("lsm: reading CURRENT: %w", err)
	}
	manifestName, curEpoch := parseCurrent(data)
	num, ok := parseManifestName(manifestName)
	if !ok {
		return &CorruptionError{
			Path:   currentName,
			Kind:   FileKindCurrent,
			Detail: fmt.Sprintf("points to invalid manifest %q", manifestName),
		}
	}
	d.manifestNum = num

	st, err := loadManifestFrom(d.fs, d.wrapper, d.dir, manifestName)
	if err != nil {
		return err
	}
	ver, logNum := st.ver, st.logNum
	d.current = ver
	d.logNum = logNum
	d.nextFileNum = st.nextFile
	if d.manifestNum >= d.nextFileNum {
		d.nextFileNum = d.manifestNum + 1
	}
	d.lastSeq.Store(uint64(st.lastSeq))

	// CURRENT echoes the epoch of the manifest it points at; a manifest
	// carrying an older epoch than its own CURRENT claims was swapped in
	// after the fact.
	if st.epoch < curEpoch {
		return &IntegrityError{
			Path: currentName, Kind: FileKindCurrent,
			Detail: fmt.Sprintf("manifest epoch %d older than CURRENT epoch %d (manifest replaced?)", st.epoch, curEpoch),
		}
	}
	// Fail closed if the store's epoch has moved backwards relative to the
	// floor sealed outside the data directory (snapshot rollback).
	if err := d.checkEpoch(st.epoch); err != nil {
		return err
	}

	for lvl, files := range ver.Levels {
		for _, f := range files {
			if f.DEKID != "" {
				d.dekIDs[f.FileNum] = f.DEKID
			}
			if f.Seq > d.fileSeq {
				d.fileSeq = f.Seq
			}
			// L0 files never change level (compaction replaces, never moves),
			// so pin-at-recovery plus pin-at-flush covers every L0 file.
			if lvl == 0 && d.opts.PinL0AndMeta {
				d.tables.setPinData(f.FileNum)
			}
		}
	}

	// Verify every SST the manifest references before trusting the version:
	// a missing or corrupt file either fails the open with a typed error or,
	// under BestEffortRecovery, is quarantined and dropped.
	if err := d.verifyTables(); err != nil {
		return err
	}

	if !d.opts.ReadOnly {
		// Roll the verified state into a fresh MANIFEST (compacting the edit
		// history) and only then repoint CURRENT — never before the new
		// manifest's snapshot record is durable. The new manifest generation
		// advances the freshness epoch; the floor is sealed only after the
		// manifest carrying the epoch is durable, so a crash in between
		// leaves floor <= manifest epoch (safe, never falsely regressive).
		d.epoch++
		d.manifestNum = d.allocFileNum()
		if err := d.createManifestFile(); err != nil {
			return err
		}
		if err := d.writeSnapshotLocked(d.current, logNum); err != nil {
			return err
		}
		if err := installCurrent(d.fs, d.dir, d.manifestNum, d.epoch); err != nil {
			return err
		}
		d.sealEpoch()
	}

	// Replay WALs >= logNum, oldest first.
	entries, err := d.fs.List(d.dir)
	if err != nil {
		return err
	}
	var walNums []uint64
	for _, e := range entries {
		kind, n, ok := parseFileName(e.Name)
		if !ok {
			continue
		}
		// The manifest's NextFileNumber can lag files created after the
		// last edit (e.g. a WAL rotated right before a crash); clear them.
		if kind != FileKindCurrent && n >= d.nextFileNum {
			d.nextFileNum = n + 1
		}
		if kind == FileKindWAL && n >= d.logNum {
			walNums = append(walNums, n)
		}
	}
	sort.Slice(walNums, func(i, j int) bool { return walNums[i] < walNums[j] })

	recovered := newMemTable(0)
	for _, n := range walNums {
		if err := d.replayWAL(n, recovered); err != nil {
			return err
		}
	}

	if d.opts.ReadOnly {
		// Serve the replayed WAL contents from the memtable; write nothing.
		d.mem = recovered
		return nil
	}

	// Start a fresh WAL + memtable; flush recovered data straight to L0.
	if err := d.startNewLogLocked(); err != nil {
		return err
	}
	if !recovered.empty() {
		meta, err := d.writeMemTable(recovered)
		if err != nil {
			return err
		}
		edit := &manifest.VersionEdit{
			Added: []manifest.AddedFile{{Level: 0, Meta: *meta}},
		}
		ln := d.logNum
		edit.LogNumber = &ln
		if err := d.applyEditLocked(edit); err != nil {
			return err
		}
	} else {
		// Persist the new log number so old WALs are not replayed twice.
		edit := &manifest.VersionEdit{}
		ln := d.logNum
		edit.LogNumber = &ln
		if err := d.applyEditLocked(edit); err != nil {
			return err
		}
	}
	d.deleteObsoleteLocked()
	return nil
}

func parseManifestName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "MANIFEST-") {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimPrefix(name, "MANIFEST-"), 10, 64)
	return n, err == nil
}

func (d *DB) createNew() error {
	// An empty directory where a sealed epoch floor says a store used to be
	// is the extreme rollback: the whole tree vanished. Fail closed.
	if err := d.checkEpoch(0); err != nil {
		return err
	}
	d.epoch++
	d.current = &manifest.Version{}
	d.nextFileNum = 1
	d.manifestNum = d.allocFileNum()
	if err := d.createManifestFile(); err != nil {
		return err
	}
	if err := d.startNewLogLocked(); err != nil {
		return err
	}
	edit := &manifest.VersionEdit{Epoch: d.epoch}
	ln := d.logNum
	edit.LogNumber = &ln
	if err := d.applyEditLocked(edit); err != nil {
		return err
	}
	// Only after the first edit is durable in the manifest does CURRENT get
	// installed: a CURRENT pointing at an empty manifest would read as an
	// empty database, silently discarding anything recovered later.
	if err := installCurrent(d.fs, d.dir, d.manifestNum, d.epoch); err != nil {
		return err
	}
	d.sealEpoch()
	return nil
}

// checkEpoch validates the recovered manifest epoch against the sealed
// floor and initializes d.epoch to the larger of the two. A recovered epoch
// below the floor proves the persistent state was rolled back to an older
// snapshot; open fails closed unless Options.AllowRollback acknowledges it.
func (d *DB) checkEpoch(recovered uint64) error {
	d.epoch = recovered
	if d.opts.Freshness == nil {
		return nil
	}
	floor, sealed := d.opts.Freshness.EpochFloor()
	if sealed && recovered < floor {
		err := fmt.Errorf("%w: recovered epoch %d below sealed floor %d", ErrEpochRegression, recovered, floor)
		if !d.opts.AllowRollback {
			return err
		}
		d.opts.Logger("lsm: accepting rollback (AllowRollback): %v", err)
	}
	if floor > d.epoch {
		d.epoch = floor
	}
	return nil
}

// sealEpoch records d.epoch as the new floor in the freshness store. A
// failure to seal is logged, not fatal: the floor merely stays at an older
// (still valid) value, so detection strength degrades but correctness does
// not — floor <= manifest epoch always holds.
func (d *DB) sealEpoch() {
	if d.opts.Freshness == nil {
		return
	}
	if err := d.opts.Freshness.SealEpoch(d.epoch); err != nil {
		d.opts.Logger("lsm: sealing freshness epoch %d: %v", d.epoch, err)
	}
}

func (d *DB) allocFileNum() uint64 {
	n := d.nextFileNum
	d.nextFileNum++
	return n
}

// createManifestFile creates the MANIFEST numbered d.manifestNum and points
// d.manifestW at it. It does NOT touch CURRENT — callers must write (and
// sync) at least one edit, then installCurrent, in that order: repointing
// CURRENT at a manifest with no durable records is a crash window that loses
// the whole tree.
//
//shield:nosyncdir durability is deliberately sequenced by the caller: a synced edit first, then installCurrent syncs the directory
func (d *DB) createManifestFile() error {
	name := manifestFileName(d.dir, d.manifestNum)
	raw, err := d.fs.Create(name)
	if err != nil {
		return err
	}
	wrapped, _, err := d.wrapper.WrapCreate(name, FileKindManifest, raw)
	if err != nil {
		raw.Close()
		return err
	}
	d.manifestW = wal.NewWriter(wrapped)
	return nil
}

// installCurrent atomically repoints CURRENT at manifestNum: write a synced
// tmp file, rename over CURRENT, and sync the directory so both the rename
// and the manifest file's entry survive power loss. epoch, when nonzero, is
// echoed on a second line so tools (and the manifest cross-check in
// recovery) can read the store's freshness epoch without replaying the
// manifest; older builds that read only the first line are unaffected.
func installCurrent(fsys vfs.FS, dir string, manifestNum uint64, epoch uint64) error {
	content := fmt.Sprintf("MANIFEST-%06d\n", manifestNum)
	if epoch > 0 {
		content += fmt.Sprintf("epoch %d\n", epoch)
	}
	tmp := currentFileName(dir) + ".tmp"
	if err := vfs.WriteFile(fsys, tmp, []byte(content)); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, currentFileName(dir)); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}

// parseCurrent splits a CURRENT file into the manifest name (first line)
// and the optional freshness-epoch echo ("epoch N" on the second line).
// Legacy single-line files parse with epoch 0; unrecognized trailing lines
// are ignored for forward compatibility.
func parseCurrent(data []byte) (manifestName string, epoch uint64) {
	lines := strings.Split(string(data), "\n")
	manifestName = strings.TrimSpace(lines[0])
	for _, ln := range lines[1:] {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(ln), "epoch "); ok {
			if n, err := strconv.ParseUint(rest, 10, 64); err == nil {
				epoch = n
			}
		}
	}
	return manifestName, epoch
}

// writeSnapshotLocked logs v as a single snapshot edit (the full file list
// plus bookkeeping) into the live manifest and syncs it.
func (d *DB) writeSnapshotLocked(v *manifest.Version, logNum uint64) error {
	snap := &manifest.VersionEdit{}
	for lvl := range v.Levels {
		for _, f := range v.Levels[lvl] {
			snap.Added = append(snap.Added, manifest.AddedFile{Level: lvl, Meta: *f})
		}
	}
	nf := d.nextFileNum
	ls := d.lastSeq.Load()
	ln := logNum
	snap.NextFileNumber = &nf
	snap.LastSeq = &ls
	snap.LogNumber = &ln
	snap.Epoch = d.epoch
	enc, err := snap.Encode()
	if err != nil {
		return err
	}
	if err := d.manifestW.AddRecord(enc); err != nil {
		return err
	}
	return d.manifestW.Sync()
}

// manifestState is the result of replaying one MANIFEST's edit log.
type manifestState struct {
	ver      *manifest.Version
	logNum   uint64
	nextFile uint64
	lastSeq  base.SeqNum
	epoch    uint64 // highest freshness epoch any edit carried
	torn     bool   // replay stopped at a torn tail record
	corrupt  bool   // salvage mode: replay stopped at an undecodable record
}

// loadManifestFrom replays the named MANIFEST's edit log without writing
// anything. A torn tail (crash mid-record) ends replay cleanly; a record
// that passes its checksum but fails to decode or apply is corruption and
// returns a *CorruptionError. Shared by DB recovery and Scrub.
func loadManifestFrom(fsys vfs.FS, wrapper FileWrapper, dir, name string) (*manifestState, error) {
	return loadManifestSalvage(fsys, wrapper, dir, name, false)
}

// loadManifestSalvage is loadManifestFrom with an option: when salvage is
// true, an undecodable or inconsistent record does not fail the load but
// ends replay with the valid prefix (st.corrupt set), the way fsck salvages
// what it can. Scrub uses salvage mode to rebuild a manifest around the
// damage.
func loadManifestSalvage(fsys vfs.FS, wrapper FileWrapper, dir, name string, salvage bool) (*manifestState, error) {
	full := path.Join(dir, name)
	raw, err := fsys.OpenSequential(full)
	if err != nil {
		if errors.Is(err, vfs.ErrNotFound) {
			return nil, &CorruptionError{
				Path:   full,
				Kind:   FileKindManifest,
				Detail: "CURRENT references a missing manifest",
				Err:    err,
			}
		}
		return nil, fmt.Errorf("lsm: opening manifest: %w", err)
	}
	wrapped, err := wrapper.WrapOpenSequential(full, FileKindManifest, raw)
	if err != nil {
		raw.Close()
		return nil, err
	}
	r := wal.NewReader(wrapped)
	defer r.Close()

	st := &manifestState{ver: &manifest.Version{}}
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			// A torn tail on the manifest (crash during write) ends replay.
			if errors.Is(err, wal.ErrCorrupt) {
				st.torn = true
				break
			}
			return nil, err
		}
		edit, err := manifest.DecodeVersionEdit(rec)
		if err != nil {
			if salvage {
				st.corrupt = true
				break
			}
			return nil, &CorruptionError{
				Path: full, Kind: FileKindManifest,
				Detail: "undecodable version edit", Err: err,
			}
		}
		nv, err := st.ver.Apply(edit)
		if err != nil {
			if salvage {
				st.corrupt = true
				break
			}
			return nil, &CorruptionError{
				Path: full, Kind: FileKindManifest,
				Detail: "inconsistent version edit", Err: err,
			}
		}
		st.ver = nv
		if edit.LogNumber != nil {
			st.logNum = *edit.LogNumber
		}
		if edit.NextFileNumber != nil {
			st.nextFile = *edit.NextFileNumber
		}
		if edit.LastSeq != nil {
			st.lastSeq = base.SeqNum(*edit.LastSeq)
		}
		if edit.Epoch > st.epoch {
			st.epoch = edit.Epoch
		}
	}
	// nextFile must clear every referenced file.
	for _, lvl := range st.ver.Levels {
		for _, f := range lvl {
			if f.FileNum >= st.nextFile {
				st.nextFile = f.FileNum + 1
			}
		}
	}
	if st.logNum >= st.nextFile {
		st.nextFile = st.logNum + 1
	}
	return st, nil
}

// verifyTables checks every SST the current version references. Without
// ParanoidChecks a file must exist and have a readable footer/index (opening
// it verifies those checksums); with ParanoidChecks every data block's
// checksum is read and verified too. Corrupt or missing files fail the open
// with a *CorruptionError unless BestEffortRecovery, which quarantines them
// (writable opens) and drops them from the version. Errors that do not prove
// corruption — e.g. an unreachable KDS leaving a DEK unresolvable — always
// fail the open: an unverifiable file is not a corrupt one.
func (d *DB) verifyTables() error {
	ver := d.current
	var dropped map[uint64]bool
	for lvl := range ver.Levels {
		for _, f := range ver.Levels[lvl] {
			name := sstFileName(d.dir, f.FileNum)
			err := d.verifyTable(f.FileNum)
			if err == nil && d.opts.ParanoidChecks {
				err = d.verifyDigest(f)
			}
			if err == nil {
				continue
			}
			if !isCorruptionErr(err) {
				return fmt.Errorf("lsm: verifying %s: %w", name, err)
			}
			cerr := &CorruptionError{Path: name, Kind: FileKindSST, Detail: "failed open-time verification", Err: err}
			if !d.opts.BestEffortRecovery {
				return cerr
			}
			d.opts.Logger("lsm: best-effort recovery dropping %s: %v", name, err)
			d.tables.evict(f.FileNum)
			if !d.opts.ReadOnly {
				d.quarantine(name)
			}
			metrics.Recovery.FilesQuarantined.Add(1)
			if dropped == nil {
				dropped = make(map[uint64]bool)
			}
			dropped[f.FileNum] = true
			delete(d.dekIDs, f.FileNum)
		}
	}
	if dropped != nil {
		nv := &manifest.Version{}
		for lvl := range ver.Levels {
			for _, f := range ver.Levels[lvl] {
				if !dropped[f.FileNum] {
					nv.Levels[lvl] = append(nv.Levels[lvl], f)
				}
			}
		}
		d.current = nv
	}
	return nil
}

// verifyTable opens one SST (footer, index, filter, and properties checksums
// are verified as a side effect) and, under ParanoidChecks, verifies every
// data block.
func (d *DB) verifyTable(fileNum uint64) error {
	r, release, err := d.tables.get(fileNum)
	if err != nil {
		return err
	}
	defer release()
	if !d.opts.ParanoidChecks {
		return nil
	}
	n, err := r.VerifyChecksums()
	metrics.Recovery.ScrubBlocksVerified.Add(n)
	return err
}

// verifyDigest recomputes an SST's tag-chain digest from the sealed file
// and compares it against the digest the manifest recorded when the file
// was installed. This is the hash-tree anchor: per-block AEAD tags prove
// each block authentic under the file's DEK, and the manifest-recorded
// digest over those tags proves the file is the exact one this version
// installed — replacing it with an older validly-sealed version changes
// the chain. Files without a manifest digest (format v1, encryption off)
// and wrappers that expose no digest are skipped.
func (d *DB) verifyDigest(f *manifest.FileMetadata) error {
	if f.Digest == "" {
		return nil
	}
	name := sstFileName(d.dir, f.FileNum)
	raw, err := d.fs.Open(name)
	if err != nil {
		return err
	}
	wrapped, err := d.wrapper.WrapOpen(name, FileKindSST, raw)
	if err != nil {
		raw.Close()
		return err
	}
	defer wrapped.Close()
	dr, ok := wrapped.(interface{ FileDigest() ([]byte, error) })
	if !ok {
		return nil
	}
	sum, err := dr.FileDigest()
	if err != nil {
		return d.typeIntegrityErr(f.FileNum, err)
	}
	if got := hex.EncodeToString(sum); got != f.Digest {
		return &IntegrityError{
			Path: name, Kind: FileKindSST,
			Detail: fmt.Sprintf("tag-chain digest %s does not match manifest digest %s (file replaced?)", got, f.Digest),
		}
	}
	return nil
}

// isCorruptionErr reports whether err proves the file's bytes are wrong (or
// the file is missing entirely), as opposed to a transient failure to read
// or decrypt it. An authentication failure from a sealed (format v2) file
// proves tampering or rot — the GCM tag cannot fail under the right key
// unless the ciphertext changed — so vfs.ErrIntegrity counts.
func isCorruptionErr(err error) bool {
	return errors.Is(err, ErrCorruption) ||
		errors.Is(err, sstable.ErrCorruption) ||
		errors.Is(err, wal.ErrCorrupt) ||
		errors.Is(err, vfs.ErrIntegrity) ||
		errors.Is(err, vfs.ErrNotFound)
}

// quarantine moves a corrupt file into <dir>/lost/ where recovery and scans
// cannot see it, preserving the evidence instead of deleting it.
func (d *DB) quarantine(name string) {
	if err := quarantineFile(d.fs, d.dir, name); err != nil {
		d.opts.Logger("lsm: quarantining %s: %v", name, err)
	}
}

// quarantineFile moves name into <dir>/lost/, durably. The lost/ directory
// is invisible to recovery and scans (List only returns a directory's direct
// file entries), so quarantined files cannot resurrect.
func quarantineFile(fsys vfs.FS, dir, name string) error {
	lostDir := path.Join(dir, "lost")
	if err := fsys.MkdirAll(lostDir); err != nil {
		return err
	}
	dst := path.Join(lostDir, path.Base(name))
	if err := fsys.Rename(name, dst); err != nil {
		return err
	}
	if err := fsys.SyncDir(lostDir); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}

func (d *DB) replayWAL(num uint64, mem *memTable) error {
	name := walFileName(d.dir, num)
	raw, err := d.fs.OpenSequential(name)
	if err != nil {
		return err
	}
	wrapped, err := d.wrapper.WrapOpenSequential(name, FileKindWAL, raw)
	if err != nil {
		raw.Close()
		// A WAL whose header never reached storage (crash or an unflushed
		// remote write buffer) is an empty log — the same torn-tail case
		// the record reader already tolerates.
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			d.opts.Logger("lsm: WAL %d has no readable header; treating as empty", num)
			return nil
		}
		return err
	}
	r := wal.NewReader(wrapped)
	defer r.Close()
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			if errors.Is(err, wal.ErrCorrupt) {
				// Torn tail from a crash: recover everything before it.
				d.opts.Logger("lsm: WAL %d truncated at corrupt record: %v", num, err)
				metrics.Recovery.WALTailTruncations.Add(1)
				return nil
			}
			return err
		}
		var maxSeq base.SeqNum
		err = decodeBatch(rec, func(seq base.SeqNum, kind base.Kind, key, value []byte) error {
			mem.add(seq, kind, key, value)
			maxSeq = seq
			return nil
		})
		if err != nil {
			// The record passed its checksum but holds an undecodable batch:
			// that is corruption, not a torn tail.
			return &CorruptionError{Path: name, Kind: FileKindWAL, Detail: "undecodable batch", Err: err}
		}
		metrics.Recovery.WALRecordsReplayed.Add(1)
		if uint64(maxSeq) > d.lastSeq.Load() {
			d.lastSeq.Store(uint64(maxSeq))
		}
	}
}

// startNewLogLocked creates a fresh WAL file and active memtable.
//
//shield:nolockio WAL rotation must swap the log file and memtable atomically under d.mu — commit order depends on it — and runs once per flush, not per write
func (d *DB) startNewLogLocked() error {
	num := d.allocFileNum()
	name := walFileName(d.dir, num)
	raw, err := d.fs.Create(name)
	if err != nil {
		return err
	}
	wrapped, dekID, err := d.wrapper.WrapCreate(name, FileKindWAL, raw)
	if err != nil {
		raw.Close()
		return err
	}
	// Make the WAL's directory entry durable now: records synced into it
	// later are worthless if the file itself vanishes with the power.
	if err := d.fs.SyncDir(d.dir); err != nil {
		wrapped.Close()
		return err
	}
	d.walWriter = wal.NewWriter(wrapped)
	d.walDEKID = dekID
	d.logNum = num
	d.mem = newMemTable(num)
	return nil
}

// ---- Write path ----

// Put sets key to value.
func (d *DB) Put(key, value []byte) error {
	b := NewBatch()
	b.Put(key, value)
	return d.Write(b, d.opts.SyncWrites)
}

// Delete removes key.
func (d *DB) Delete(key []byte) error {
	b := NewBatch()
	b.Delete(key)
	return d.Write(b, d.opts.SyncWrites)
}

// Write atomically commits a batch. When sync is true the WAL is fsynced
// before returning.
func (d *DB) Write(b *Batch, sync bool) error {
	if d.opts.ReadOnly {
		return ErrReadOnly
	}
	if b.Empty() {
		return nil
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrClosed
	}
	if d.bgErr != nil {
		err := d.bgErr
		d.mu.Unlock()
		return fmt.Errorf("%w: %w", ErrDegraded, err)
	}
	d.mu.Unlock()
	return d.commitSend(&commitWaiter{batch: b, sync: sync, done: make(chan struct{}), lead: make(chan struct{})})
}

// makeRoomForWrite rotates a full memtable and stalls on back-pressure.
func (d *DB) makeRoomForWrite() error {
	stallStart := time.Time{}
	for {
		d.mu.Lock()
		switch {
		case d.bgErr != nil:
			err := d.bgErr
			d.mu.Unlock()
			return fmt.Errorf("%w: %w", ErrDegraded, err)
		case d.mem.approximateSize() < d.opts.MemtableSize:
			d.mu.Unlock()
			if !stallStart.IsZero() {
				stalled := time.Since(stallStart).Nanoseconds()
				d.metStallNanos.Add(stalled)
				metrics.Jobs.StallNanos.Add(stalled)
			}
			return nil
		case len(d.imm) >= 2:
			// Too many unflushed memtables: wait for flush.
			if stallStart.IsZero() {
				stallStart = time.Now()
			}
			d.maybeScheduleFlushLocked()
			d.bgCond.Wait()
			d.mu.Unlock()
		case d.opts.CompactionStyle != CompactionFIFO &&
			len(d.current.Levels[0]) >= d.opts.L0StopWritesTrigger:
			// FIFO is exempt: it never merges L0, so a file-count stall
			// would never clear — FIFO bounds data by total size instead.
			if stallStart.IsZero() {
				stallStart = time.Now()
			}
			d.maybeScheduleCompactionLocked()
			d.bgCond.Wait()
			d.mu.Unlock()
		default:
			// Rotate: seal current memtable, start a fresh WAL.
			old := d.walWriter
			d.imm = append(d.imm, d.mem)
			if err := d.startNewLogLocked(); err != nil {
				d.setBGErrLocked(err)
				d.mu.Unlock()
				return fmt.Errorf("%w: %w", ErrDegraded, err)
			}
			d.maybeScheduleFlushLocked()
			d.mu.Unlock()
			if old != nil {
				if err := old.Close(); err != nil {
					d.setBGErr(err)
					return fmt.Errorf("%w: %w", ErrDegraded, err)
				}
			}
		}
	}
}

func (d *DB) setBGErr(err error) {
	d.mu.Lock()
	d.setBGErrLocked(err)
	d.mu.Unlock()
}

// setBGErrLocked poisons the DB into read-only degraded mode. d.mu held.
func (d *DB) setBGErrLocked(err error) {
	if d.bgErr == nil {
		d.bgErr = err
		metrics.Storage.DegradedEntries.Add(1)
		d.opts.Logger("lsm: entering degraded (read-only) mode: %v", err)
	}
	d.bgCond.Broadcast()
}

// CompactionsHalted reports whether background compactions are paused after
// an ENOSPC abort. The halt clears on the next successful flush or on reopen;
// it does not affect reads or writes.
func (d *DB) CompactionsHalted() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.compactionsHalted
}

// Degraded reports whether the DB is in read-only degraded mode: a prior
// write-path failure (WAL append, flush, manifest write) poisoned it, writes
// fail fast with ErrDegraded, and reads are still served. It returns nil when
// healthy, else the ErrDegraded-wrapped cause. Reopening the DB exits
// degraded mode.
func (d *DB) Degraded() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.bgErr == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrDegraded, d.bgErr)
}

// ---- Read path ----

// Get returns the value for key, or ErrNotFound.
func (d *DB) Get(key []byte) ([]byte, error) {
	return d.getAt(key, base.SeqNum(d.lastSeq.Load()))
}

func (d *DB) getAt(key []byte, seq base.SeqNum) ([]byte, error) {
	d.metGets.Add(1)
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, ErrClosed
	}
	mem := d.mem
	imms := append([]*memTable(nil), d.imm...)
	ver := d.current
	// Pin obsolete-file deletion while this read holds the version:
	// compaction may otherwise unlink an SST between the version capture
	// and the table open.
	d.iterCount++
	d.mu.Unlock()
	defer func() {
		d.mu.Lock()
		d.iterCount--
		if d.iterCount == 0 && len(d.zombies) > 0 {
			d.deleteObsoleteLocked()
		}
		d.mu.Unlock()
	}()

	// Active memtable, then immutables newest-first.
	if v, kind, ok := mem.get(key, seq); ok {
		if kind == base.KindDelete {
			return nil, ErrNotFound
		}
		return append([]byte(nil), v...), nil
	}
	for i := len(imms) - 1; i >= 0; i-- {
		if v, kind, ok := imms[i].get(key, seq); ok {
			if kind == base.KindDelete {
				return nil, ErrNotFound
			}
			return append([]byte(nil), v...), nil
		}
	}

	// L0 newest-first: files may overlap.
	for _, f := range ver.Levels[0] {
		if !f.Overlaps(key, key) {
			continue
		}
		v, kind, err := d.tableGet(f.FileNum, key, seq)
		if err == nil {
			if kind == base.KindDelete {
				return nil, ErrNotFound
			}
			return v, nil
		}
		if !errors.Is(err, ErrNotFound) {
			return nil, err
		}
	}
	// Deeper levels: at most one candidate file per level.
	for lvl := 1; lvl < manifest.NumLevels; lvl++ {
		files := ver.Levels[lvl]
		idx := sort.Search(len(files), func(i int) bool {
			return string(base.UserKey(files[i].Largest)) >= string(key)
		})
		if idx >= len(files) || !files[idx].Overlaps(key, key) {
			continue
		}
		v, kind, err := d.tableGet(files[idx].FileNum, key, seq)
		if err == nil {
			if kind == base.KindDelete {
				return nil, ErrNotFound
			}
			return v, nil
		}
		if !errors.Is(err, ErrNotFound) {
			return nil, err
		}
	}
	return nil, ErrNotFound
}

func (d *DB) tableGet(fileNum uint64, key []byte, seq base.SeqNum) ([]byte, base.Kind, error) {
	r, release, err := d.tables.get(fileNum)
	if err != nil {
		return nil, 0, d.wrapIntegrityErr(fileNum, err)
	}
	defer release()
	v, kind, err := r.Get(key, seq)
	if err != nil {
		if errors.Is(err, sstable.ErrNotFound) {
			return nil, 0, ErrNotFound
		}
		return nil, 0, d.wrapIntegrityErr(fileNum, err)
	}
	return v, kind, nil
}

// typeIntegrityErr types a failed-authentication error as *IntegrityError,
// attributing it to the SST it came from. Non-integrity errors pass through
// unchanged.
func (d *DB) typeIntegrityErr(fileNum uint64, err error) error {
	if err == nil || !errors.Is(err, vfs.ErrIntegrity) {
		return err
	}
	var ie *IntegrityError
	if errors.As(err, &ie) {
		return err
	}
	return &IntegrityError{
		Path:   sstFileName(d.dir, fileNum),
		Kind:   FileKindSST,
		Detail: "block failed authentication",
		Err:    err,
	}
}

// wrapIntegrityErr is typeIntegrityErr plus quarantine: the offending SST
// is dropped from the live version so the tree degrades instead of failing
// the same read forever. Must be called without d.mu held.
func (d *DB) wrapIntegrityErr(fileNum uint64, err error) error {
	if err == nil || !errors.Is(err, vfs.ErrIntegrity) {
		return err
	}
	d.quarantineIntegrity(fileNum)
	return d.typeIntegrityErr(fileNum, err)
}

// quarantineIntegrity drops an SST whose contents failed authentication
// from the live version and moves the file into lost/ (preserving the
// evidence). Its keys subsequently read as absent — the same degraded
// semantics as best-effort recovery — instead of every read failing. Files
// feeding an in-flight compaction are left in place (the compaction will
// surface its own integrity error); the read that triggered this still
// fails closed either way.
func (d *DB) quarantineIntegrity(fileNum uint64) {
	if d.opts.ReadOnly {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed || d.integrityBad[fileNum] || d.busyFiles[fileNum] {
		return
	}
	level := -1
	for lvl := range d.current.Levels {
		for _, f := range d.current.Levels[lvl] {
			if f.FileNum == fileNum {
				level = lvl
				break
			}
		}
	}
	if level < 0 {
		return
	}
	d.integrityBad[fileNum] = true
	name := sstFileName(d.dir, fileNum)
	d.opts.Logger("lsm: quarantining %s: contents failed authentication", name)
	edit := &manifest.VersionEdit{Deleted: []manifest.DeletedFile{{Level: level, FileNum: fileNum}}}
	if err := d.applyEditLocked(edit); err != nil {
		d.opts.Logger("lsm: recording quarantine of %s: %v", name, err)
		delete(d.integrityBad, fileNum)
		return
	}
	// Retag the zombie applyEditLocked queued: preserve the ciphertext in
	// lost/ and keep its DEK resolvable for forensics.
	for i := range d.zombies {
		if d.zombies[i].fileNum == fileNum {
			d.zombies[i].quarantine = true
		}
	}
	metrics.Recovery.FilesQuarantined.Add(1)
}

// NewIter returns an iterator over a consistent snapshot of the database.
func (d *DB) NewIter() (*Iterator, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, ErrClosed
	}
	seq := base.SeqNum(d.lastSeq.Load())
	var iters []internalIterator
	iters = append(iters, d.mem.iter())
	for i := len(d.imm) - 1; i >= 0; i-- {
		iters = append(iters, d.imm[i].iter())
	}
	ver := d.current
	for _, f := range ver.Levels[0] {
		it, err := d.openTableIter(f.FileNum)
		if err != nil {
			for _, o := range iters {
				o.Close()
			}
			return nil, err
		}
		iters = append(iters, it)
	}
	for lvl := 1; lvl < manifest.NumLevels; lvl++ {
		if len(ver.Levels[lvl]) == 0 {
			continue
		}
		var handles []fileHandle
		for _, f := range ver.Levels[lvl] {
			num := f.FileNum
			handles = append(handles, fileHandle{
				open:     func() (internalIterator, error) { return d.openTableIter(num) },
				smallest: f.Smallest,
				largest:  f.Largest,
			})
		}
		iters = append(iters, newConcatIter(handles))
	}
	d.iterCount++
	it := &Iterator{
		m:             newMergingIter(iters...),
		seq:           seq,
		prefixExtract: d.opts.PrefixExtractor,
		onPrefixSeek: func() {
			d.metPrefixSeeks.Add(1)
			metrics.Engine.PrefixSeeks.Add(1)
		},
		onClose: func() {
			d.mu.Lock()
			d.iterCount--
			if d.iterCount == 0 {
				d.deleteObsoleteLocked()
			}
			d.mu.Unlock()
		},
	}
	return it, nil
}

// openTableIter opens an iterator over one SST. Called with d.mu held (from
// NewIter) or lazily from concat iterators, so integrity failures are typed
// here but quarantined later, by the read that surfaces them.
func (d *DB) openTableIter(fileNum uint64) (internalIterator, error) {
	r, release, err := d.tables.get(fileNum)
	if err != nil {
		return nil, d.typeIntegrityErr(fileNum, err)
	}
	wrap := func(err error) error { return d.typeIntegrityErr(fileNum, err) }
	return &sstIterAdapter{
		it:      r.NewIter(),
		release: release,
		wrapErr: wrap,
		mayContainPrefix: func(prefix []byte) bool {
			if r.MayContainPrefix(prefix) {
				return true
			}
			d.metPrefixSkips.Add(1)
			metrics.Engine.PrefixSkips.Add(1)
			return false
		},
	}, nil
}

// ---- Flush ----

func (d *DB) maybeScheduleFlushLocked() {
	if d.opts.ReadOnly {
		return
	}
	if d.flushing || d.closed || d.bgErr != nil || len(d.imm) == 0 {
		return
	}
	d.flushing = true
	go d.flushWorker()
}

func (d *DB) flushWorker() {
	for {
		d.mu.Lock()
		if len(d.imm) == 0 || d.bgErr != nil || d.closed {
			d.flushing = false
			waiters := d.flushWaiters
			d.flushWaiters = nil
			err := d.bgErr
			d.maybeScheduleCompactionLocked()
			d.bgCond.Broadcast()
			d.mu.Unlock()
			for _, w := range waiters {
				w <- err
			}
			return
		}
		mem := d.imm[0]
		d.mu.Unlock()

		meta, err := d.writeMemTable(mem)
		if err != nil {
			d.setBGErr(err)
			continue
		}

		d.mu.Lock()
		edit := &manifest.VersionEdit{}
		if meta != nil {
			edit.Added = []manifest.AddedFile{{Level: 0, Meta: *meta}}
		}
		// All WALs older than the next surviving memtable are obsolete.
		var minLog uint64
		if len(d.imm) > 1 {
			minLog = d.imm[1].logNum
		} else {
			minLog = d.mem.logNum
		}
		edit.LogNumber = &minLog
		if err := d.applyEditLocked(edit); err != nil {
			d.mu.Unlock()
			d.setBGErr(err)
			continue
		}
		d.imm = d.imm[1:]
		d.metFlushes.Add(1)
		// A flush wrote a full SST: space is available again, so resume any
		// compactions halted by an earlier ENOSPC abort.
		d.compactionsHalted = false
		d.deleteObsoleteLocked()
		d.maybeScheduleCompactionLocked()
		d.bgCond.Broadcast()
		d.mu.Unlock()
	}
}

// fileDigest extracts the tag-chain digest from a finalized sealed SST
// handle (the wrapper's encrypting writer exposes it after Finish/Close).
// Empty when the file carries no authentication: format v1 or no encryption.
func fileDigest(f vfs.WritableFile) string {
	dw, ok := f.(interface{ FileDigest() ([]byte, bool) })
	if !ok {
		return ""
	}
	sum, ok := dw.FileDigest()
	if !ok {
		return ""
	}
	return hex.EncodeToString(sum)
}

// writeMemTable persists mem as an L0 table. Returns nil meta for an empty
// memtable.
func (d *DB) writeMemTable(mem *memTable) (*manifest.FileMetadata, error) {
	if mem.empty() {
		return nil, nil
	}
	d.mu.Lock()
	fileNum := d.allocFileNum()
	d.fileSeq++
	seq := d.fileSeq
	d.mu.Unlock()

	name := sstFileName(d.dir, fileNum)
	raw, err := d.fs.Create(name)
	if err != nil {
		return nil, err
	}
	wrapped, dekID, err := d.wrapper.WrapCreate(name, FileKindSST, raw)
	if err != nil {
		raw.Close()
		d.fs.Remove(name)
		return nil, err
	}
	w := newTableWriter(wrapped, d.opts)
	// On any failure below, remove the partial SST so it releases its disk
	// space and DEK registration; the memtable it was built from is retained
	// and the caller poisons the DB, so no data is lost.
	abortFlush := func(err error) (*manifest.FileMetadata, error) {
		w.Abort()
		d.fs.Remove(name)
		d.wrapper.FileDeleted(name, dekID)
		return nil, err
	}
	it := mem.iter()
	for ok := it.First(); ok; ok = it.Next() {
		if err := w.Add(it.Key(), it.Value()); err != nil {
			return abortFlush(err)
		}
	}
	if err := w.Finish(); err != nil {
		return abortFlush(err)
	}
	// The SST's directory entry must be durable before the manifest edit
	// that references it is; otherwise a crash leaves a manifest pointing at
	// a file that never existed.
	if err := d.fs.SyncDir(d.dir); err != nil {
		return abortFlush(err)
	}
	d.metFlushWrite.Add(int64(w.FileSize()))
	// Flush outputs land in L0; mark before install so the first reader open
	// already caches this file's data blocks in the pinned class.
	if d.opts.PinL0AndMeta {
		d.tables.setPinData(fileNum)
	}

	meta := &manifest.FileMetadata{
		FileNum:  fileNum,
		Size:     w.FileSize(),
		Smallest: w.Smallest(),
		Largest:  w.Largest(),
		DEKID:    dekID,
		Seq:      seq,
		Digest:   fileDigest(wrapped),
	}
	if dekID != "" {
		d.mu.Lock()
		d.dekIDs[fileNum] = dekID
		d.mu.Unlock()
	}
	return meta, nil
}

// rotateMemtable seals the active memtable behind a fresh WAL. It runs only
// on the commit-pipeline leader, so it never races WAL appends.
func (d *DB) rotateMemtable() error {
	d.mu.Lock()
	if d.mem.empty() {
		d.mu.Unlock()
		return nil
	}
	old := d.walWriter
	d.imm = append(d.imm, d.mem)
	if err := d.startNewLogLocked(); err != nil {
		d.setBGErrLocked(err)
		d.mu.Unlock()
		return fmt.Errorf("%w: %w", ErrDegraded, err)
	}
	d.maybeScheduleFlushLocked()
	d.mu.Unlock()
	if old != nil {
		return old.Close()
	}
	return nil
}

// Flush forces the active memtable to disk and waits for all pending
// flushes to finish.
func (d *DB) Flush() error {
	if d.opts.ReadOnly {
		return ErrReadOnly
	}
	rot := &commitWaiter{rotate: true, done: make(chan struct{}), lead: make(chan struct{})}
	if err := d.commitSend(rot); err != nil {
		return err
	}
	d.mu.Lock()
	// Degraded check while holding d.mu, not before: a background flush
	// can poison the engine between the rotate above and this point, after
	// which no flush worker will ever run again — a waiter registered now
	// would block forever. Under d.mu the cases are exhaustive: bgErr set
	// (fail fast here), a live worker (it drains waiters on exit), or no
	// worker and a clean engine (maybeScheduleFlushLocked starts one).
	if d.bgErr != nil {
		err := d.bgErr
		d.mu.Unlock()
		return fmt.Errorf("%w: %w", ErrDegraded, err)
	}
	if len(d.imm) == 0 {
		d.mu.Unlock()
		return nil
	}
	ch := make(chan error, 1)
	d.flushWaiters = append(d.flushWaiters, ch)
	d.maybeScheduleFlushLocked()
	d.mu.Unlock()
	return <-ch
}

// ---- Version management ----

// applyEditLocked logs edit to the MANIFEST and installs the new version.
// d.mu must be held.
func (d *DB) applyEditLocked(edit *manifest.VersionEdit) error {
	nf := d.nextFileNum
	ls := d.lastSeq.Load()
	edit.NextFileNumber = &nf
	edit.LastSeq = &ls

	nv, err := d.current.Apply(edit)
	if err != nil {
		return err
	}
	// Safety net for concurrent compactions: refuse to log a version whose
	// sorted levels overlap — a scheduler disjointness bug must fail the
	// installing job loudly, not corrupt the manifest.
	if err := nv.CheckOrdering(); err != nil {
		return err
	}
	// The snapshot's LogNumber must not skip any WAL still holding
	// unflushed data: immutable memtables waiting behind this edit keep
	// their logs live, so take the minimum — or, for a flush edit, the
	// LogNumber the edit itself establishes.
	snapLog := d.logNum
	for _, m := range d.imm {
		if m.logNum < snapLog {
			snapLog = m.logNum
		}
	}
	if edit.LogNumber != nil {
		snapLog = *edit.LogNumber
	}
	if d.manifestBad {
		// An earlier append tore the live manifest's tail; replay would stop
		// there, so an appended record could never be recovered. Install the
		// edit by rotating: nv (which already includes it) becomes the
		// snapshot of a fresh manifest. Failure keeps manifestBad set — the
		// old CURRENT/manifest pair is intact and the edit is not durable.
		if err := d.rotateManifestLocked(nv, snapLog); err != nil {
			return err
		}
		d.manifestBad = false
	} else {
		enc, err := edit.Encode()
		if err != nil {
			return err
		}
		if err := d.manifestW.AddRecord(enc); err != nil {
			d.manifestBad = true
			return err
		}
		if err := d.manifestW.Sync(); err != nil {
			d.manifestBad = true
			return err
		}
		// Long-running instances roll the MANIFEST once the edit history
		// grows past the cap, replacing it with one snapshot record (the
		// same compaction that happens at every open).
		if d.manifestW.Size() > d.opts.MaxManifestFileSize {
			if err := d.rotateManifestLocked(nv, snapLog); err != nil {
				// Rotation failure is not fatal: the old manifest is intact.
				d.opts.Logger("lsm: manifest rotation failed: %v", err)
			}
		}
	}
	// Files removed by this edit become deletion candidates.
	for _, del := range edit.Deleted {
		dekID := d.dekIDs[del.FileNum]
		delete(d.dekIDs, del.FileNum)
		d.zombies = append(d.zombies, zombieFile{
			name:    sstFileName(d.dir, del.FileNum),
			dekID:   dekID,
			fileNum: del.FileNum,
			isSST:   true,
		})
	}
	d.current = nv
	return nil
}

// rotateManifestLocked writes nv as a single snapshot edit into a fresh
// MANIFEST, then — only after that snapshot is durable — repoints CURRENT
// and retires the old manifest file. A crash anywhere before installCurrent
// leaves the old CURRENT/manifest pair fully intact. logNum is the oldest
// WAL recovery must still replay (NOT necessarily d.logNum: queued immutable
// memtables keep older logs live). d.mu held.
func (d *DB) rotateManifestLocked(nv *manifest.Version, logNum uint64) error {
	oldNum := d.manifestNum
	oldW := d.manifestW
	restore := func() {
		if d.manifestW != oldW {
			d.manifestW.Close()
		}
		d.manifestNum = oldNum
		d.manifestW = oldW
	}
	d.manifestNum = d.allocFileNum()
	if err := d.createManifestFile(); err != nil {
		d.manifestNum = oldNum
		d.manifestW = oldW
		return err
	}
	if err := d.writeSnapshotLocked(nv, logNum); err != nil {
		restore()
		return err
	}
	if err := installCurrent(d.fs, d.dir, d.manifestNum, d.epoch); err != nil {
		restore()
		return err
	}
	oldW.Close()
	oldName := manifestFileName(d.dir, oldNum)
	//shield:nolockio one unlink on the rare manifest-rollover path; retiring the old manifest atomically with the switch keeps recovery from ever seeing two
	if err := d.fs.Remove(oldName); err == nil {
		d.wrapper.FileDeleted(oldName, "")
	}
	return nil
}

// deleteObsoleteLocked removes zombie SSTs (unless iterators pin them) and
// WALs older than the live log. d.mu must be held.
//
//shield:nolockio iterCount and the zombie list must be checked atomically with the removals (an iterator opened mid-delete would read a vanished SST); runs on the background flush/compaction goroutine, not the commit path
func (d *DB) deleteObsoleteLocked() {
	if d.iterCount == 0 {
		for _, z := range d.zombies {
			d.tables.evict(z.fileNum)
			if z.quarantine {
				// Integrity quarantine: preserve the ciphertext as evidence
				// and keep its DEK resolvable (no FileDeleted) so scrub can
				// still examine the file.
				if err := quarantineFile(d.fs, d.dir, z.name); err != nil {
					d.opts.Logger("lsm: quarantining %s: %v", z.name, err)
				}
				continue
			}
			if err := d.fs.Remove(z.name); err != nil && !errors.Is(err, vfs.ErrNotFound) {
				d.opts.Logger("lsm: removing %s: %v", z.name, err)
			}
			d.wrapper.FileDeleted(z.name, z.dekID)
		}
		d.zombies = nil
	}

	// WALs below the oldest live memtable log are dead.
	minLog := d.logNum
	for _, m := range d.imm {
		if m.logNum < minLog {
			minLog = m.logNum
		}
	}
	entries, err := d.fs.List(d.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		kind, num, ok := parseFileName(e.Name)
		if !ok {
			continue
		}
		full := d.dir + "/" + e.Name
		switch kind {
		case FileKindWAL:
			if num < minLog {
				if err := d.fs.Remove(full); err == nil {
					d.wrapper.FileDeleted(full, "")
				}
			}
		case FileKindManifest:
			if num != d.manifestNum {
				if err := d.fs.Remove(full); err == nil {
					d.wrapper.FileDeleted(full, "")
				}
			}
		}
	}
}

// ---- Snapshots ----

// Snapshot pins a point-in-time view for reads.
type Snapshot struct {
	db  *DB
	seq base.SeqNum
}

// NewSnapshot returns a snapshot at the current sequence.
func (d *DB) NewSnapshot() *Snapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := &Snapshot{db: d, seq: base.SeqNum(d.lastSeq.Load())}
	d.snapshots = append(d.snapshots, s.seq)
	return s
}

// Get reads key at the snapshot.
func (s *Snapshot) Get(key []byte) ([]byte, error) { return s.db.getAt(key, s.seq) }

// Release unpins the snapshot.
func (s *Snapshot) Release() {
	d := s.db
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, seq := range d.snapshots {
		if seq == s.seq {
			d.snapshots = append(d.snapshots[:i], d.snapshots[i+1:]...)
			break
		}
	}
}

// smallestSnapshotLocked returns the lowest pinned sequence (or lastSeq).
func (d *DB) smallestSnapshotLocked() base.SeqNum {
	min := base.SeqNum(d.lastSeq.Load())
	for _, s := range d.snapshots {
		if s < min {
			min = s
		}
	}
	return min
}

// ---- Metrics / lifecycle ----

// Metrics returns a snapshot of engine counters.
func (d *DB) Metrics() Metrics {
	d.mu.Lock()
	active := int64(d.compactions)
	d.mu.Unlock()
	var hits, misses, pinned int64
	if d.blockCache != nil {
		hits, misses = d.blockCache.Stats()
		pinned = d.blockCache.Pinned()
	}
	return Metrics{
		Flushes:           d.metFlushes.Load(),
		Compactions:       d.metCompact.Load(),
		CompactionRead:    d.metCompRead.Load(),
		CompactionWritten: d.metCompWrite.Load(),
		FlushWritten:      d.metFlushWrite.Load(),
		WALWritten:        d.metWAL.Load(),
		WALSyncs:          d.metWALSyncs.Load(),
		StallTime:         time.Duration(d.metStallNanos.Load()),
		Gets:              d.metGets.Load(),
		Writes:            d.metWrites.Load(),
		CompactionsActive: active,
		CompactionsQueued: d.metSchedDeferred.Load(),
		Subcompactions:    d.metSubcomp.Load(),
		BlockCacheHits:    hits,
		BlockCacheMisses:  misses,
		BlockCachePinned:  pinned,
		PrefixSeeks:       d.metPrefixSeeks.Load(),
		PrefixSkips:       d.metPrefixSkips.Load(),
	}
}

// NumFilesAtLevel reports the file count at a level (for tests/benches).
func (d *DB) NumFilesAtLevel(level int) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.current.Levels[level])
}

// Close flushes the WAL and stops background work. Memtable contents remain
// recoverable from the WAL on reopen.
func (d *DB) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()

	// Fail queued writers and wait for the in-flight commit leader (if any)
	// to retire; afterwards nothing can touch the WAL or memtable.
	d.commitClose()

	// Wait for background workers to drain.
	d.mu.Lock()
	for d.flushing || d.compactions > 0 {
		d.bgCond.Wait()
	}
	walW := d.walWriter
	manW := d.manifestW
	d.mu.Unlock()

	var firstErr error
	if walW != nil {
		if err := walW.Close(); err != nil {
			firstErr = err
		}
	}
	if manW != nil {
		if err := manW.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	d.tables.close()
	return firstErr
}

// DebugString renders a human-readable summary of the tree: per-level file
// counts and sizes plus engine counters — the analog of RocksDB's
// "rocksdb.stats" property, used by tools and tests.
func (d *DB) DebugString() string {
	d.mu.Lock()
	ver := d.current
	memBytes := d.mem.approximateSize()
	immCount := len(d.imm)
	d.mu.Unlock()

	var b strings.Builder
	fmt.Fprintf(&b, "memtable: %d bytes (+%d immutable)\n", memBytes, immCount)
	for lvl := range ver.Levels {
		if len(ver.Levels[lvl]) == 0 {
			continue
		}
		fmt.Fprintf(&b, "L%d: %3d files %10d bytes\n", lvl, len(ver.Levels[lvl]), ver.LevelSize(lvl))
	}
	m := d.Metrics()
	fmt.Fprintf(&b, "flushes=%d compactions=%d wal=%dB flushed=%dB compacted(r/w)=%dB/%dB stall=%v\n",
		m.Flushes, m.Compactions, m.WALWritten, m.FlushWritten,
		m.CompactionRead, m.CompactionWritten, m.StallTime.Round(time.Millisecond))
	return b.String()
}
