package lsm

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"shield/internal/cache"
	"shield/internal/lsm/base"
	"shield/internal/lsm/manifest"
	"shield/internal/lsm/sstable"
	"shield/internal/lsm/wal"
	"shield/internal/vfs"
)

// Errors returned by DB operations.
var (
	ErrNotFound = errors.New("lsm: key not found")
	ErrClosed   = errors.New("lsm: database closed")
	ErrReadOnly = errors.New("lsm: database opened read-only")
)

// Metrics exposes engine counters.
type Metrics struct {
	Flushes           int64
	Compactions       int64
	CompactionRead    int64 // bytes
	CompactionWritten int64 // bytes
	FlushWritten      int64 // bytes
	WALWritten        int64 // bytes
	StallTime         time.Duration
	Gets              int64
	Writes            int64
}

// DB is the LSM-KVS instance.
type DB struct {
	opts    Options
	dir     string
	fs      vfs.FS
	wrapper FileWrapper

	blockCache *cache.LRU
	tables     *tableCache

	// Commit pipeline. commitMu guards channel sends against Close; senders
	// hold RLock, Close holds Lock while closing.
	commitMu sync.RWMutex
	commitCh chan *commitRequest
	commitWG sync.WaitGroup

	// lastSeq is the newest committed sequence, readable without mu.
	lastSeq atomic.Uint64

	mu          sync.Mutex
	mem         *memTable
	imm         []*memTable // oldest first
	current     *manifest.Version
	nextFileNum uint64
	fileSeq     uint64 // strictly increasing run ordinal for L0 ordering
	logNum      uint64
	walWriter   *wal.Writer
	walDEKID    string
	manifestW   *wal.Writer
	manifestNum uint64

	flushing      bool
	compactions   int // active compaction workers
	manualActive  bool
	busyFiles     map[uint64]bool
	bgErr         error
	bgCond        *sync.Cond
	closed        bool
	iterCount     int
	zombies       []zombieFile
	snapshots     []base.SeqNum
	dekIDs        map[uint64]string // fileNum -> DEK-ID for SSTs
	flushWaiters  []chan error
	metFlushes    atomic.Int64
	metCompact    atomic.Int64
	metCompRead   atomic.Int64
	metCompWrite  atomic.Int64
	metFlushWrite atomic.Int64
	metWAL        atomic.Int64
	metStallNanos atomic.Int64
	metGets       atomic.Int64
	metWrites     atomic.Int64
}

type zombieFile struct {
	name    string
	dekID   string
	fileNum uint64
	isSST   bool
}

type commitRequest struct {
	batch  *Batch
	sync   bool
	rotate bool // rotate the memtable instead of committing a batch
	done   chan error
}

// Open opens (creating if necessary) the database in dir.
func Open(dir string, opts Options) (*DB, error) {
	opts = opts.withDefaults()
	if opts.FS == nil {
		return nil, fmt.Errorf("lsm: Options.FS is required")
	}
	if err := opts.FS.MkdirAll(dir); err != nil {
		return nil, err
	}
	d := &DB{
		opts:      opts,
		dir:       dir,
		fs:        opts.FS,
		wrapper:   opts.Wrapper,
		commitCh:  make(chan *commitRequest, 1024),
		busyFiles: make(map[uint64]bool),
		dekIDs:    make(map[uint64]string),
	}
	d.bgCond = sync.NewCond(&d.mu)
	if opts.BlockCacheSize > 0 {
		d.blockCache = cache.New(opts.BlockCacheSize)
	}
	d.tables = newTableCache(d.fs, dir, d.wrapper, d.blockCache)

	if err := d.recover(); err != nil {
		return nil, err
	}

	d.commitWG.Add(1)
	go d.commitLoop()

	d.mu.Lock()
	d.maybeScheduleFlushLocked()
	d.maybeScheduleCompactionLocked()
	d.mu.Unlock()
	return d, nil
}

// ---- Recovery ----

func (d *DB) recover() error {
	currentName := currentFileName(d.dir)
	_, err := d.fs.Stat(currentName)
	switch {
	case errors.Is(err, vfs.ErrNotFound):
		if d.opts.ReadOnly {
			return fmt.Errorf("lsm: read-only open of missing database: %w", err)
		}
		return d.createNew()
	case err != nil:
		return err
	}

	// Load CURRENT -> MANIFEST name.
	data, err := vfs.ReadFile(d.fs, currentName)
	if err != nil {
		return fmt.Errorf("lsm: reading CURRENT: %w", err)
	}
	manifestName := strings.TrimSpace(string(data))
	num, ok := parseManifestName(manifestName)
	if !ok {
		return fmt.Errorf("lsm: CURRENT points to invalid manifest %q", manifestName)
	}
	d.manifestNum = num

	var ver *manifest.Version
	var logNum, nextFile uint64
	var lastSeq base.SeqNum
	if d.opts.ReadOnly {
		ver, logNum, nextFile, lastSeq, err = d.loadManifest(manifestName)
	} else {
		ver, logNum, nextFile, lastSeq, err = d.replayManifest(manifestName)
	}
	if err != nil {
		return err
	}
	d.current = ver
	d.logNum = logNum
	d.nextFileNum = nextFile
	d.lastSeq.Store(uint64(lastSeq))
	for _, lvl := range ver.Levels {
		for _, f := range lvl {
			if f.DEKID != "" {
				d.dekIDs[f.FileNum] = f.DEKID
			}
			if f.Seq > d.fileSeq {
				d.fileSeq = f.Seq
			}
		}
	}

	// Replay WALs >= logNum, oldest first.
	entries, err := d.fs.List(d.dir)
	if err != nil {
		return err
	}
	var walNums []uint64
	for _, e := range entries {
		kind, n, ok := parseFileName(e.Name)
		if !ok {
			continue
		}
		// The manifest's NextFileNumber can lag files created after the
		// last edit (e.g. a WAL rotated right before a crash); clear them.
		if kind != FileKindCurrent && n >= d.nextFileNum {
			d.nextFileNum = n + 1
		}
		if kind == FileKindWAL && n >= d.logNum {
			walNums = append(walNums, n)
		}
	}
	sort.Slice(walNums, func(i, j int) bool { return walNums[i] < walNums[j] })

	recovered := newMemTable(0)
	for _, n := range walNums {
		if err := d.replayWAL(n, recovered); err != nil {
			return err
		}
	}

	if d.opts.ReadOnly {
		// Serve the replayed WAL contents from the memtable; write nothing.
		d.mem = recovered
		return nil
	}

	// Start a fresh WAL + memtable; flush recovered data straight to L0.
	if err := d.startNewLogLocked(); err != nil {
		return err
	}
	if !recovered.empty() {
		meta, err := d.writeMemTable(recovered)
		if err != nil {
			return err
		}
		edit := &manifest.VersionEdit{
			Added: []manifest.AddedFile{{Level: 0, Meta: *meta}},
		}
		ln := d.logNum
		edit.LogNumber = &ln
		if err := d.applyEditLocked(edit); err != nil {
			return err
		}
	} else {
		// Persist the new log number so old WALs are not replayed twice.
		edit := &manifest.VersionEdit{}
		ln := d.logNum
		edit.LogNumber = &ln
		if err := d.applyEditLocked(edit); err != nil {
			return err
		}
	}
	d.deleteObsoleteLocked()
	return nil
}

func parseManifestName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "MANIFEST-") {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimPrefix(name, "MANIFEST-"), 10, 64)
	return n, err == nil
}

func (d *DB) createNew() error {
	d.current = &manifest.Version{}
	d.nextFileNum = 1
	d.manifestNum = d.allocFileNum()
	if err := d.openManifest(); err != nil {
		return err
	}
	if err := d.startNewLogLocked(); err != nil {
		return err
	}
	edit := &manifest.VersionEdit{}
	ln := d.logNum
	edit.LogNumber = &ln
	return d.applyEditLocked(edit)
}

func (d *DB) allocFileNum() uint64 {
	n := d.nextFileNum
	d.nextFileNum++
	return n
}

func (d *DB) openManifest() error {
	name := manifestFileName(d.dir, d.manifestNum)
	raw, err := d.fs.Create(name)
	if err != nil {
		return err
	}
	wrapped, _, err := d.wrapper.WrapCreate(name, FileKindManifest, raw)
	if err != nil {
		raw.Close()
		return err
	}
	d.manifestW = wal.NewWriter(wrapped)

	// Point CURRENT at it (write tmp + rename for atomicity).
	tmp := currentFileName(d.dir) + ".tmp"
	if err := vfs.WriteFile(d.fs, tmp, []byte(fmt.Sprintf("MANIFEST-%06d\n", d.manifestNum))); err != nil {
		return err
	}
	return d.fs.Rename(tmp, currentFileName(d.dir))
}

// loadManifest replays the named MANIFEST's edit log without writing
// anything, returning the recovered version and bookkeeping.
func (d *DB) loadManifest(name string) (*manifest.Version, uint64, uint64, base.SeqNum, error) {
	full := d.dir + "/" + name
	raw, err := d.fs.OpenSequential(full)
	if err != nil {
		return nil, 0, 0, 0, fmt.Errorf("lsm: opening manifest: %w", err)
	}
	wrapped, err := d.wrapper.WrapOpenSequential(full, FileKindManifest, raw)
	if err != nil {
		raw.Close()
		return nil, 0, 0, 0, err
	}
	r := wal.NewReader(wrapped)
	defer r.Close()

	ver := &manifest.Version{}
	var logNum, nextFile uint64
	var lastSeq base.SeqNum
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			// A torn tail on the manifest (crash during write) ends replay.
			if errors.Is(err, wal.ErrCorrupt) {
				break
			}
			return nil, 0, 0, 0, err
		}
		edit, err := manifest.DecodeVersionEdit(rec)
		if err != nil {
			return nil, 0, 0, 0, err
		}
		ver, err = ver.Apply(edit)
		if err != nil {
			return nil, 0, 0, 0, err
		}
		if edit.LogNumber != nil {
			logNum = *edit.LogNumber
		}
		if edit.NextFileNumber != nil {
			nextFile = *edit.NextFileNumber
		}
		if edit.LastSeq != nil {
			lastSeq = base.SeqNum(*edit.LastSeq)
		}
	}
	// nextFile must clear every referenced file and the manifest itself.
	for _, lvl := range ver.Levels {
		for _, f := range lvl {
			if f.FileNum >= nextFile {
				nextFile = f.FileNum + 1
			}
		}
	}
	if logNum >= nextFile {
		nextFile = logNum + 1
	}
	if d.manifestNum >= nextFile {
		nextFile = d.manifestNum + 1
	}
	return ver, logNum, nextFile, lastSeq, nil
}

// replayManifest loads the manifest, then rolls the edit history into a
// fresh MANIFEST (compacting it) and repoints CURRENT.
func (d *DB) replayManifest(name string) (*manifest.Version, uint64, uint64, base.SeqNum, error) {
	ver, logNum, nextFile, lastSeq, err := d.loadManifest(name)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	d.manifestNum = nextFile
	nextFile++
	d.nextFileNum = nextFile
	if err := d.openManifest(); err != nil {
		return nil, 0, 0, 0, err
	}
	// Write a snapshot edit describing the recovered state.
	snap := &manifest.VersionEdit{}
	for lvl := range ver.Levels {
		for _, f := range ver.Levels[lvl] {
			snap.Added = append(snap.Added, manifest.AddedFile{Level: lvl, Meta: *f})
		}
	}
	nf := d.nextFileNum
	ls := uint64(lastSeq)
	ln := logNum
	snap.NextFileNumber = &nf
	snap.LastSeq = &ls
	snap.LogNumber = &ln
	enc, err := snap.Encode()
	if err != nil {
		return nil, 0, 0, 0, err
	}
	if err := d.manifestW.AddRecord(enc); err != nil {
		return nil, 0, 0, 0, err
	}
	if err := d.manifestW.Sync(); err != nil {
		return nil, 0, 0, 0, err
	}
	return ver, logNum, d.nextFileNum, lastSeq, nil
}

func (d *DB) replayWAL(num uint64, mem *memTable) error {
	name := walFileName(d.dir, num)
	raw, err := d.fs.OpenSequential(name)
	if err != nil {
		return err
	}
	wrapped, err := d.wrapper.WrapOpenSequential(name, FileKindWAL, raw)
	if err != nil {
		raw.Close()
		// A WAL whose header never reached storage (crash or an unflushed
		// remote write buffer) is an empty log — the same torn-tail case
		// the record reader already tolerates.
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			d.opts.Logger("lsm: WAL %d has no readable header; treating as empty", num)
			return nil
		}
		return err
	}
	r := wal.NewReader(wrapped)
	defer r.Close()
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			if errors.Is(err, wal.ErrCorrupt) {
				// Torn tail from a crash: recover everything before it.
				d.opts.Logger("lsm: WAL %d truncated at corrupt record: %v", num, err)
				return nil
			}
			return err
		}
		var maxSeq base.SeqNum
		err = decodeBatch(rec, func(seq base.SeqNum, kind base.Kind, key, value []byte) error {
			mem.add(seq, kind, key, value)
			maxSeq = seq
			return nil
		})
		if err != nil {
			return err
		}
		if uint64(maxSeq) > d.lastSeq.Load() {
			d.lastSeq.Store(uint64(maxSeq))
		}
	}
}

// startNewLogLocked creates a fresh WAL file and active memtable.
func (d *DB) startNewLogLocked() error {
	num := d.allocFileNum()
	name := walFileName(d.dir, num)
	raw, err := d.fs.Create(name)
	if err != nil {
		return err
	}
	wrapped, dekID, err := d.wrapper.WrapCreate(name, FileKindWAL, raw)
	if err != nil {
		raw.Close()
		return err
	}
	d.walWriter = wal.NewWriter(wrapped)
	d.walDEKID = dekID
	d.logNum = num
	d.mem = newMemTable(num)
	return nil
}

// ---- Write path ----

// Put sets key to value.
func (d *DB) Put(key, value []byte) error {
	b := NewBatch()
	b.Put(key, value)
	return d.Write(b, d.opts.SyncWrites)
}

// Delete removes key.
func (d *DB) Delete(key []byte) error {
	b := NewBatch()
	b.Delete(key)
	return d.Write(b, d.opts.SyncWrites)
}

// Write atomically commits a batch. When sync is true the WAL is fsynced
// before returning.
func (d *DB) Write(b *Batch, sync bool) error {
	if d.opts.ReadOnly {
		return ErrReadOnly
	}
	if b.Empty() {
		return nil
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrClosed
	}
	if d.bgErr != nil {
		err := d.bgErr
		d.mu.Unlock()
		return err
	}
	d.mu.Unlock()
	req := &commitRequest{batch: b, sync: sync, done: make(chan error, 1)}
	if err := d.sendCommit(req); err != nil {
		return err
	}
	return <-req.done
}

// sendCommit enqueues a request, failing cleanly if the DB closed.
func (d *DB) sendCommit(req *commitRequest) error {
	d.commitMu.RLock()
	defer d.commitMu.RUnlock()
	d.mu.Lock()
	closed := d.closed
	d.mu.Unlock()
	if closed {
		return ErrClosed
	}
	d.commitCh <- req
	return nil
}

func (d *DB) commitLoop() {
	defer d.commitWG.Done()
	for req := range d.commitCh {
		if req.rotate {
			req.done <- d.rotateMemtable()
			continue
		}
		group := []*commitRequest{req}
		// Opportunistically group more pending writers (group commit).
	drain:
		for len(group) < 128 {
			select {
			case r, ok := <-d.commitCh:
				if !ok {
					break drain
				}
				if r.rotate {
					// Rotation runs after the group it interrupted.
					err := d.commitGroup(group)
					for _, g := range group {
						g.done <- err
					}
					group = group[:0]
					r.done <- d.rotateMemtable()
					continue drain
				}
				group = append(group, r)
			default:
				break drain
			}
		}
		if len(group) > 0 {
			err := d.commitGroup(group)
			for _, r := range group {
				r.done <- err
			}
		}
	}
}

func (d *DB) commitGroup(group []*commitRequest) error {
	if err := d.makeRoomForWrite(); err != nil {
		return err
	}

	seqBase := base.SeqNum(d.lastSeq.Load()) + 1
	next := seqBase
	needSync := false
	for _, r := range group {
		r.batch.setSeq(next)
		next += base.SeqNum(r.batch.Count())
		if r.sync {
			needSync = true
		}
	}

	d.mu.Lock()
	w := d.walWriter
	mem := d.mem
	d.mu.Unlock()

	if !d.opts.DisableWAL {
		for _, r := range group {
			if err := w.AddRecord(r.batch.data); err != nil {
				d.setBGErr(err)
				return err
			}
			d.metWAL.Add(int64(len(r.batch.data)))
		}
		if needSync {
			if err := w.Sync(); err != nil {
				d.setBGErr(err)
				return err
			}
		}
	}

	for _, r := range group {
		err := decodeBatch(r.batch.data, func(seq base.SeqNum, kind base.Kind, key, value []byte) error {
			mem.add(seq, kind, key, value)
			return nil
		})
		if err != nil {
			d.setBGErr(err)
			return err
		}
	}
	d.lastSeq.Store(uint64(next - 1))
	d.metWrites.Add(int64(len(group)))
	return nil
}

// makeRoomForWrite rotates a full memtable and stalls on back-pressure.
func (d *DB) makeRoomForWrite() error {
	stallStart := time.Time{}
	for {
		d.mu.Lock()
		switch {
		case d.bgErr != nil:
			err := d.bgErr
			d.mu.Unlock()
			return err
		case d.mem.approximateSize() < d.opts.MemtableSize:
			d.mu.Unlock()
			if !stallStart.IsZero() {
				d.metStallNanos.Add(time.Since(stallStart).Nanoseconds())
			}
			return nil
		case len(d.imm) >= 2:
			// Too many unflushed memtables: wait for flush.
			if stallStart.IsZero() {
				stallStart = time.Now()
			}
			d.maybeScheduleFlushLocked()
			d.bgCond.Wait()
			d.mu.Unlock()
		case d.opts.CompactionStyle != CompactionFIFO &&
			len(d.current.Levels[0]) >= d.opts.L0StopWritesTrigger:
			// FIFO is exempt: it never merges L0, so a file-count stall
			// would never clear — FIFO bounds data by total size instead.
			if stallStart.IsZero() {
				stallStart = time.Now()
			}
			d.maybeScheduleCompactionLocked()
			d.bgCond.Wait()
			d.mu.Unlock()
		default:
			// Rotate: seal current memtable, start a fresh WAL.
			old := d.walWriter
			d.imm = append(d.imm, d.mem)
			if err := d.startNewLogLocked(); err != nil {
				d.bgErr = err
				d.mu.Unlock()
				return err
			}
			d.maybeScheduleFlushLocked()
			d.mu.Unlock()
			if old != nil {
				if err := old.Close(); err != nil {
					d.setBGErr(err)
					return err
				}
			}
		}
	}
}

func (d *DB) setBGErr(err error) {
	d.mu.Lock()
	if d.bgErr == nil {
		d.bgErr = err
		d.opts.Logger("lsm: background error: %v", err)
	}
	d.bgCond.Broadcast()
	d.mu.Unlock()
}

// ---- Read path ----

// Get returns the value for key, or ErrNotFound.
func (d *DB) Get(key []byte) ([]byte, error) {
	return d.getAt(key, base.SeqNum(d.lastSeq.Load()))
}

func (d *DB) getAt(key []byte, seq base.SeqNum) ([]byte, error) {
	d.metGets.Add(1)
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, ErrClosed
	}
	mem := d.mem
	imms := append([]*memTable(nil), d.imm...)
	ver := d.current
	// Pin obsolete-file deletion while this read holds the version:
	// compaction may otherwise unlink an SST between the version capture
	// and the table open.
	d.iterCount++
	d.mu.Unlock()
	defer func() {
		d.mu.Lock()
		d.iterCount--
		if d.iterCount == 0 && len(d.zombies) > 0 {
			d.deleteObsoleteLocked()
		}
		d.mu.Unlock()
	}()

	// Active memtable, then immutables newest-first.
	if v, kind, ok := mem.get(key, seq); ok {
		if kind == base.KindDelete {
			return nil, ErrNotFound
		}
		return append([]byte(nil), v...), nil
	}
	for i := len(imms) - 1; i >= 0; i-- {
		if v, kind, ok := imms[i].get(key, seq); ok {
			if kind == base.KindDelete {
				return nil, ErrNotFound
			}
			return append([]byte(nil), v...), nil
		}
	}

	// L0 newest-first: files may overlap.
	for _, f := range ver.Levels[0] {
		if !f.Overlaps(key, key) {
			continue
		}
		v, kind, err := d.tableGet(f.FileNum, key, seq)
		if err == nil {
			if kind == base.KindDelete {
				return nil, ErrNotFound
			}
			return v, nil
		}
		if !errors.Is(err, ErrNotFound) {
			return nil, err
		}
	}
	// Deeper levels: at most one candidate file per level.
	for lvl := 1; lvl < manifest.NumLevels; lvl++ {
		files := ver.Levels[lvl]
		idx := sort.Search(len(files), func(i int) bool {
			return string(base.UserKey(files[i].Largest)) >= string(key)
		})
		if idx >= len(files) || !files[idx].Overlaps(key, key) {
			continue
		}
		v, kind, err := d.tableGet(files[idx].FileNum, key, seq)
		if err == nil {
			if kind == base.KindDelete {
				return nil, ErrNotFound
			}
			return v, nil
		}
		if !errors.Is(err, ErrNotFound) {
			return nil, err
		}
	}
	return nil, ErrNotFound
}

func (d *DB) tableGet(fileNum uint64, key []byte, seq base.SeqNum) ([]byte, base.Kind, error) {
	r, release, err := d.tables.get(fileNum)
	if err != nil {
		return nil, 0, err
	}
	defer release()
	v, kind, err := r.Get(key, seq)
	if err != nil {
		if errors.Is(err, sstable.ErrNotFound) {
			return nil, 0, ErrNotFound
		}
		return nil, 0, err
	}
	return v, kind, nil
}

// NewIter returns an iterator over a consistent snapshot of the database.
func (d *DB) NewIter() (*Iterator, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, ErrClosed
	}
	seq := base.SeqNum(d.lastSeq.Load())
	var iters []internalIterator
	iters = append(iters, d.mem.iter())
	for i := len(d.imm) - 1; i >= 0; i-- {
		iters = append(iters, d.imm[i].iter())
	}
	ver := d.current
	for _, f := range ver.Levels[0] {
		it, err := d.openTableIter(f.FileNum)
		if err != nil {
			for _, o := range iters {
				o.Close()
			}
			return nil, err
		}
		iters = append(iters, it)
	}
	for lvl := 1; lvl < manifest.NumLevels; lvl++ {
		if len(ver.Levels[lvl]) == 0 {
			continue
		}
		var handles []fileHandle
		for _, f := range ver.Levels[lvl] {
			num := f.FileNum
			handles = append(handles, fileHandle{
				open:     func() (internalIterator, error) { return d.openTableIter(num) },
				smallest: f.Smallest,
				largest:  f.Largest,
			})
		}
		iters = append(iters, newConcatIter(handles))
	}
	d.iterCount++
	it := &Iterator{
		m:   newMergingIter(iters...),
		seq: seq,
		onClose: func() {
			d.mu.Lock()
			d.iterCount--
			if d.iterCount == 0 {
				d.deleteObsoleteLocked()
			}
			d.mu.Unlock()
		},
	}
	return it, nil
}

func (d *DB) openTableIter(fileNum uint64) (internalIterator, error) {
	r, release, err := d.tables.get(fileNum)
	if err != nil {
		return nil, err
	}
	return &sstIterAdapter{it: r.NewIter(), release: release}, nil
}

// ---- Flush ----

func (d *DB) maybeScheduleFlushLocked() {
	if d.opts.ReadOnly {
		return
	}
	if d.flushing || d.closed || d.bgErr != nil || len(d.imm) == 0 {
		return
	}
	d.flushing = true
	go d.flushWorker()
}

func (d *DB) flushWorker() {
	for {
		d.mu.Lock()
		if len(d.imm) == 0 || d.bgErr != nil || d.closed {
			d.flushing = false
			waiters := d.flushWaiters
			d.flushWaiters = nil
			err := d.bgErr
			d.maybeScheduleCompactionLocked()
			d.bgCond.Broadcast()
			d.mu.Unlock()
			for _, w := range waiters {
				w <- err
			}
			return
		}
		mem := d.imm[0]
		d.mu.Unlock()

		meta, err := d.writeMemTable(mem)
		if err != nil {
			d.setBGErr(err)
			continue
		}

		d.mu.Lock()
		edit := &manifest.VersionEdit{}
		if meta != nil {
			edit.Added = []manifest.AddedFile{{Level: 0, Meta: *meta}}
		}
		// All WALs older than the next surviving memtable are obsolete.
		var minLog uint64
		if len(d.imm) > 1 {
			minLog = d.imm[1].logNum
		} else {
			minLog = d.mem.logNum
		}
		edit.LogNumber = &minLog
		if err := d.applyEditLocked(edit); err != nil {
			d.mu.Unlock()
			d.setBGErr(err)
			continue
		}
		d.imm = d.imm[1:]
		d.metFlushes.Add(1)
		d.deleteObsoleteLocked()
		d.maybeScheduleCompactionLocked()
		d.bgCond.Broadcast()
		d.mu.Unlock()
	}
}

// writeMemTable persists mem as an L0 table. Returns nil meta for an empty
// memtable.
func (d *DB) writeMemTable(mem *memTable) (*manifest.FileMetadata, error) {
	if mem.empty() {
		return nil, nil
	}
	d.mu.Lock()
	fileNum := d.allocFileNum()
	d.fileSeq++
	seq := d.fileSeq
	d.mu.Unlock()

	name := sstFileName(d.dir, fileNum)
	raw, err := d.fs.Create(name)
	if err != nil {
		return nil, err
	}
	wrapped, dekID, err := d.wrapper.WrapCreate(name, FileKindSST, raw)
	if err != nil {
		raw.Close()
		return nil, err
	}
	w := newTableWriter(wrapped, d.opts)
	it := mem.iter()
	for ok := it.First(); ok; ok = it.Next() {
		if err := w.Add(it.Key(), it.Value()); err != nil {
			return nil, err
		}
	}
	if err := w.Finish(); err != nil {
		return nil, err
	}
	d.metFlushWrite.Add(int64(w.FileSize()))

	meta := &manifest.FileMetadata{
		FileNum:  fileNum,
		Size:     w.FileSize(),
		Smallest: w.Smallest(),
		Largest:  w.Largest(),
		DEKID:    dekID,
		Seq:      seq,
	}
	if dekID != "" {
		d.mu.Lock()
		d.dekIDs[fileNum] = dekID
		d.mu.Unlock()
	}
	return meta, nil
}

// rotateMemtable seals the active memtable behind a fresh WAL. It runs on
// the commit goroutine, so it never races WAL appends.
func (d *DB) rotateMemtable() error {
	d.mu.Lock()
	if d.mem.empty() {
		d.mu.Unlock()
		return nil
	}
	old := d.walWriter
	d.imm = append(d.imm, d.mem)
	if err := d.startNewLogLocked(); err != nil {
		d.bgErr = err
		d.mu.Unlock()
		return err
	}
	d.maybeScheduleFlushLocked()
	d.mu.Unlock()
	if old != nil {
		return old.Close()
	}
	return nil
}

// Flush forces the active memtable to disk and waits for all pending
// flushes to finish.
func (d *DB) Flush() error {
	if d.opts.ReadOnly {
		return ErrReadOnly
	}
	req := &commitRequest{rotate: true, done: make(chan error, 1)}
	if err := d.sendCommit(req); err != nil {
		return err
	}
	if err := <-req.done; err != nil {
		return err
	}
	d.mu.Lock()
	if len(d.imm) == 0 {
		d.mu.Unlock()
		return nil
	}
	ch := make(chan error, 1)
	d.flushWaiters = append(d.flushWaiters, ch)
	d.maybeScheduleFlushLocked()
	d.mu.Unlock()
	return <-ch
}

// ---- Version management ----

// applyEditLocked logs edit to the MANIFEST and installs the new version.
// d.mu must be held.
func (d *DB) applyEditLocked(edit *manifest.VersionEdit) error {
	nf := d.nextFileNum
	ls := d.lastSeq.Load()
	edit.NextFileNumber = &nf
	edit.LastSeq = &ls

	nv, err := d.current.Apply(edit)
	if err != nil {
		return err
	}
	enc, err := edit.Encode()
	if err != nil {
		return err
	}
	if err := d.manifestW.AddRecord(enc); err != nil {
		return err
	}
	if err := d.manifestW.Sync(); err != nil {
		return err
	}
	// Long-running instances roll the MANIFEST once the edit history grows
	// past the cap, replacing it with one snapshot record (the same
	// compaction that happens at every open).
	if d.manifestW.Size() > maxManifestSize {
		if err := d.rotateManifestLocked(nv); err != nil {
			// Rotation failure is not fatal: the old manifest is intact.
			d.opts.Logger("lsm: manifest rotation failed: %v", err)
		}
	}
	// Files removed by this edit become deletion candidates.
	for _, del := range edit.Deleted {
		dekID := d.dekIDs[del.FileNum]
		delete(d.dekIDs, del.FileNum)
		d.zombies = append(d.zombies, zombieFile{
			name:    sstFileName(d.dir, del.FileNum),
			dekID:   dekID,
			fileNum: del.FileNum,
			isSST:   true,
		})
	}
	d.current = nv
	return nil
}

// maxManifestSize triggers a MANIFEST roll (snapshot into a fresh file).
// A variable so tests can lower it.
var maxManifestSize int64 = 4 << 20

// rotateManifestLocked writes nv as a single snapshot edit into a fresh
// MANIFEST, repoints CURRENT, and retires the old manifest file. d.mu held.
func (d *DB) rotateManifestLocked(nv *manifest.Version) error {
	oldNum := d.manifestNum
	oldW := d.manifestW
	d.manifestNum = d.allocFileNum()
	if err := d.openManifest(); err != nil {
		// Restore the previous writer; openManifest may have clobbered it.
		d.manifestNum = oldNum
		d.manifestW = oldW
		return err
	}
	snap := &manifest.VersionEdit{}
	for lvl := range nv.Levels {
		for _, f := range nv.Levels[lvl] {
			snap.Added = append(snap.Added, manifest.AddedFile{Level: lvl, Meta: *f})
		}
	}
	nf := d.nextFileNum
	ls := d.lastSeq.Load()
	ln := d.logNum
	snap.NextFileNumber = &nf
	snap.LastSeq = &ls
	snap.LogNumber = &ln
	enc, err := snap.Encode()
	if err != nil {
		return err
	}
	if err := d.manifestW.AddRecord(enc); err != nil {
		return err
	}
	if err := d.manifestW.Sync(); err != nil {
		return err
	}
	oldW.Close()
	oldName := manifestFileName(d.dir, oldNum)
	if err := d.fs.Remove(oldName); err == nil {
		d.wrapper.FileDeleted(oldName, "")
	}
	return nil
}

// deleteObsoleteLocked removes zombie SSTs (unless iterators pin them) and
// WALs older than the live log. d.mu must be held.
func (d *DB) deleteObsoleteLocked() {
	if d.iterCount == 0 {
		for _, z := range d.zombies {
			d.tables.evict(z.fileNum)
			if err := d.fs.Remove(z.name); err != nil && !errors.Is(err, vfs.ErrNotFound) {
				d.opts.Logger("lsm: removing %s: %v", z.name, err)
			}
			d.wrapper.FileDeleted(z.name, z.dekID)
		}
		d.zombies = nil
	}

	// WALs below the oldest live memtable log are dead.
	minLog := d.logNum
	for _, m := range d.imm {
		if m.logNum < minLog {
			minLog = m.logNum
		}
	}
	entries, err := d.fs.List(d.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		kind, num, ok := parseFileName(e.Name)
		if !ok {
			continue
		}
		full := d.dir + "/" + e.Name
		switch kind {
		case FileKindWAL:
			if num < minLog {
				if err := d.fs.Remove(full); err == nil {
					d.wrapper.FileDeleted(full, "")
				}
			}
		case FileKindManifest:
			if num != d.manifestNum {
				if err := d.fs.Remove(full); err == nil {
					d.wrapper.FileDeleted(full, "")
				}
			}
		}
	}
}

// ---- Snapshots ----

// Snapshot pins a point-in-time view for reads.
type Snapshot struct {
	db  *DB
	seq base.SeqNum
}

// NewSnapshot returns a snapshot at the current sequence.
func (d *DB) NewSnapshot() *Snapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := &Snapshot{db: d, seq: base.SeqNum(d.lastSeq.Load())}
	d.snapshots = append(d.snapshots, s.seq)
	return s
}

// Get reads key at the snapshot.
func (s *Snapshot) Get(key []byte) ([]byte, error) { return s.db.getAt(key, s.seq) }

// Release unpins the snapshot.
func (s *Snapshot) Release() {
	d := s.db
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, seq := range d.snapshots {
		if seq == s.seq {
			d.snapshots = append(d.snapshots[:i], d.snapshots[i+1:]...)
			break
		}
	}
}

// smallestSnapshotLocked returns the lowest pinned sequence (or lastSeq).
func (d *DB) smallestSnapshotLocked() base.SeqNum {
	min := base.SeqNum(d.lastSeq.Load())
	for _, s := range d.snapshots {
		if s < min {
			min = s
		}
	}
	return min
}

// ---- Metrics / lifecycle ----

// Metrics returns a snapshot of engine counters.
func (d *DB) Metrics() Metrics {
	return Metrics{
		Flushes:           d.metFlushes.Load(),
		Compactions:       d.metCompact.Load(),
		CompactionRead:    d.metCompRead.Load(),
		CompactionWritten: d.metCompWrite.Load(),
		FlushWritten:      d.metFlushWrite.Load(),
		WALWritten:        d.metWAL.Load(),
		StallTime:         time.Duration(d.metStallNanos.Load()),
		Gets:              d.metGets.Load(),
		Writes:            d.metWrites.Load(),
	}
}

// NumFilesAtLevel reports the file count at a level (for tests/benches).
func (d *DB) NumFilesAtLevel(level int) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.current.Levels[level])
}

// Close flushes the WAL and stops background work. Memtable contents remain
// recoverable from the WAL on reopen.
func (d *DB) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()

	// Exclude all senders, then close the commit channel.
	d.commitMu.Lock()
	close(d.commitCh)
	d.commitMu.Unlock()
	d.commitWG.Wait()

	// Wait for background workers to drain.
	d.mu.Lock()
	for d.flushing || d.compactions > 0 {
		d.bgCond.Wait()
	}
	walW := d.walWriter
	manW := d.manifestW
	d.mu.Unlock()

	var firstErr error
	if walW != nil {
		if err := walW.Close(); err != nil {
			firstErr = err
		}
	}
	if manW != nil {
		if err := manW.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	d.tables.close()
	return firstErr
}

// DebugString renders a human-readable summary of the tree: per-level file
// counts and sizes plus engine counters — the analog of RocksDB's
// "rocksdb.stats" property, used by tools and tests.
func (d *DB) DebugString() string {
	d.mu.Lock()
	ver := d.current
	memBytes := d.mem.approximateSize()
	immCount := len(d.imm)
	d.mu.Unlock()

	var b strings.Builder
	fmt.Fprintf(&b, "memtable: %d bytes (+%d immutable)\n", memBytes, immCount)
	for lvl := range ver.Levels {
		if len(ver.Levels[lvl]) == 0 {
			continue
		}
		fmt.Fprintf(&b, "L%d: %3d files %10d bytes\n", lvl, len(ver.Levels[lvl]), ver.LevelSize(lvl))
	}
	m := d.Metrics()
	fmt.Fprintf(&b, "flushes=%d compactions=%d wal=%dB flushed=%dB compacted(r/w)=%dB/%dB stall=%v\n",
		m.Flushes, m.Compactions, m.WALWritten, m.FlushWritten,
		m.CompactionRead, m.CompactionWritten, m.StallTime.Round(time.Millisecond))
	return b.String()
}
