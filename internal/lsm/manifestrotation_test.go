package lsm

import (
	"fmt"
	"strings"
	"testing"

	"shield/internal/vfs"
)

// TestManifestRotation: once the MANIFEST outgrows the cap it is rolled
// into a fresh snapshot file, CURRENT is repointed, the old manifest is
// deleted, and the database still recovers correctly.
func TestManifestRotation(t *testing.T) {
	fs := vfs.NewMem()
	opts := testOptions(fs)
	opts.MaxManifestFileSize = 4 << 10 // tiny cap to force rotations
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}

	// Many flushes -> many edits -> several rotations.
	for round := 0; round < 40; round++ {
		for i := 0; i < 50; i++ {
			if err := db.Put([]byte(fmt.Sprintf("r%02d-k%03d", round, i)), make([]byte, 64)); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	// Exactly one manifest file remains.
	entries, err := fs.List("db")
	if err != nil {
		t.Fatal(err)
	}
	manifests := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name, "MANIFEST-") {
			manifests++
			if e.Size > 64<<10 {
				t.Fatalf("manifest %s grew to %d bytes despite rotation", e.Name, e.Size)
			}
		}
	}
	if manifests != 1 {
		t.Fatalf("%d manifest files on disk, want 1", manifests)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery through the rotated manifest.
	db2, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for round := 0; round < 40; round += 7 {
		k := fmt.Sprintf("r%02d-k%03d", round, 25)
		if _, err := db2.Get([]byte(k)); err != nil {
			t.Fatalf("after rotation+reopen, Get(%s): %v", k, err)
		}
	}
}
