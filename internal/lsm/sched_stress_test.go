package lsm

import (
	"fmt"
	"math/rand"
	"path"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"shield/internal/vfs"
)

// createRecordingFS records every SST file number passed to Create, so the
// test can assert the scheduler never reuses a file number — the PR 4 race
// class where two jobs allocating from a shared counter collided.
type createRecordingFS struct {
	vfs.FS
	mu      sync.Mutex
	sstSeen map[uint64]int
}

func (fs *createRecordingFS) Create(name string) (vfs.WritableFile, error) {
	if kind, num, ok := parseFileName(path.Base(name)); ok && kind == FileKindSST {
		fs.mu.Lock()
		fs.sstSeen[num]++
		fs.mu.Unlock()
	}
	return fs.FS.Create(name)
}

func (fs *createRecordingFS) reusedNums() []uint64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var reused []uint64
	for num, n := range fs.sstSeen {
		if n > 1 {
			reused = append(reused, num)
		}
	}
	return reused
}

// TestSchedulerRaceStress drives concurrent writers, manual CompactRange
// callers, and explicit flushes against the parallel job scheduler. Run
// under -race (CI does). It asserts:
//
//   - no operation errors and the DB never enters degraded mode — in
//     particular no "deleting unknown file" manifest error, the symptom of
//     two jobs compacting the same input;
//   - SST file numbers are never reused across the run;
//   - every key written is readable afterwards.
func TestSchedulerRaceStress(t *testing.T) {
	rec := &createRecordingFS{FS: vfs.NewMem(), sstSeen: make(map[uint64]int)}
	opts := testOptions(rec)
	opts.MemtableSize = 16 << 10
	opts.BaseLevelSize = 32 << 10
	opts.TargetFileSize = 16 << 10
	opts.L0CompactionTrigger = 2
	opts.MaxBackgroundJobs = 4
	opts.MaxSubcompactions = 3
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	duration := 1500 * time.Millisecond
	if testing.Short() {
		duration = 300 * time.Millisecond
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	const keySpace = 800

	// Writers: the value encodes the key so readers can validate.
	var lastWritten [keySpace]atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := rng.Intn(keySpace)
				gen := int64(w)<<32 | int64(i)
				key := []byte(fmt.Sprintf("key-%06d", k))
				val := []byte(fmt.Sprintf("key-%06d-gen-%d-%s", k, gen, strings.Repeat("v", 64)))
				if err := db.Put(key, val); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				lastWritten[k].Store(gen)
			}
		}(w)
	}

	// Two manual compactors racing each other and the background jobs.
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := db.CompactRange(); err != nil {
					t.Errorf("compact range: %v", err)
					return
				}
			}
		}()
	}

	// A flusher adding memtable-rotation pressure.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := db.Flush(); err != nil {
				t.Errorf("flush: %v", err)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	time.Sleep(duration)
	close(stop)
	wg.Wait()

	if err := db.Degraded(); err != nil {
		t.Fatalf("DB degraded after stress (manifest race?): %v", err)
	}
	if reused := rec.reusedNums(); len(reused) > 0 {
		t.Fatalf("SST file numbers reused across jobs: %v", reused)
	}

	// Every key's final value must still read back consistently.
	for k := 0; k < keySpace; k++ {
		if lastWritten[k].Load() == 0 {
			continue
		}
		key := []byte(fmt.Sprintf("key-%06d", k))
		val, err := db.Get(key)
		if err != nil {
			t.Fatalf("get %q: %v", key, err)
		}
		if !strings.HasPrefix(string(val), string(key)+"-gen-") {
			t.Fatalf("get %q returned foreign value %q", key, val)
		}
	}

	// The run must actually have exercised concurrency: with 3 compaction
	// slots, 2 manual compactors, and this much churn, at least one
	// multi-job overlap and one subcompaction split should have happened.
	m := db.Metrics()
	t.Logf("compactions=%d subcompactions=%d queued=%d stall=%v",
		m.Compactions, m.Subcompactions, m.CompactionsQueued, m.StallTime)
	if m.Compactions == 0 {
		t.Fatal("stress run finished without a single compaction")
	}
	if m.Subcompactions == 0 {
		t.Error("stress run never split a compaction into subcompactions")
	}
}
