package lsm

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"shield/internal/vfs"
)

// faultFS injects write failures after a byte budget is exhausted,
// simulating a storage device or remote mount going bad mid-run.
type faultFS struct {
	vfs.FS
	budget atomic.Int64 // remaining writable bytes; negative = failing
}

var errInjected = errors.New("injected write failure")

func newFaultFS(base vfs.FS, budget int64) *faultFS {
	f := &faultFS{FS: base}
	f.budget.Store(budget)
	return f
}

func (f *faultFS) Create(name string) (vfs.WritableFile, error) {
	w, err := f.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultWritable{f: w, fs: f}, nil
}

type faultWritable struct {
	f  vfs.WritableFile
	fs *faultFS
}

func (w *faultWritable) Write(p []byte) (int, error) {
	if w.fs.budget.Add(-int64(len(p))) < 0 {
		return 0, errInjected
	}
	return w.f.Write(p)
}

func (w *faultWritable) Sync() error {
	if w.fs.budget.Load() < 0 {
		return errInjected
	}
	return w.f.Sync()
}

func (w *faultWritable) Close() error { return w.f.Close() }

// TestWriteFailureSurfacesAndPoisons: when storage starts failing, writes
// report errors (directly or via the poisoned background state) instead of
// silently losing data, and the process does not hang or panic.
func TestWriteFailureSurfacesAndPoisons(t *testing.T) {
	base := vfs.NewMem()
	ffs := newFaultFS(base, 256<<10) // fail after 256 KiB of writes
	opts := testOptions(ffs)
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	var firstErr error
	for i := 0; i < 50_000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%06d", i)), make([]byte, 100)); err != nil {
			firstErr = err
			break
		}
	}
	if firstErr == nil {
		t.Fatal("no error surfaced despite storage failure")
	}
	// Once poisoned, later writes keep failing fast.
	if err := db.Put([]byte("after"), []byte("x")); err == nil {
		t.Fatal("write succeeded on a poisoned database")
	}
}

// TestRecoveryAfterWriteFailure: data that was durably written before the
// fault is recoverable once the storage is healthy again.
func TestRecoveryAfterWriteFailure(t *testing.T) {
	base := vfs.NewMem()
	ffs := newFaultFS(base, 128<<10)
	opts := testOptions(ffs)
	opts.SyncWrites = true
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	written := 0
	for i := 0; i < 50_000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%06d", i)), make([]byte, 100)); err != nil {
			break
		}
		written++
	}
	db.Close()
	if written == 0 {
		t.Fatal("nothing written before fault")
	}

	// Reopen on the healthy base filesystem.
	db2, err := Open("db", testOptions(base))
	if err != nil {
		t.Fatalf("reopen after fault: %v", err)
	}
	defer db2.Close()
	// Every synced pre-fault write must be present.
	for i := 0; i < written; i++ {
		if _, err := db2.Get([]byte(fmt.Sprintf("k%06d", i))); err != nil {
			t.Fatalf("synced pre-fault key k%06d lost: %v", i, err)
		}
	}
}

// TestCloseIsIdempotent and post-close operations fail cleanly.
func TestCloseIdempotentAndGuards(t *testing.T) {
	db, err := Open("db", testOptions(vfs.NewMem()))
	if err != nil {
		t.Fatal(err)
	}
	db.Put([]byte("k"), []byte("v"))
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := db.Put([]byte("k2"), []byte("v")); !errors.Is(err, ErrClosed) {
		t.Fatalf("put after close: %v", err)
	}
	if _, err := db.Get([]byte("k")); !errors.Is(err, ErrClosed) {
		t.Fatalf("get after close: %v", err)
	}
	if _, err := db.NewIter(); !errors.Is(err, ErrClosed) {
		t.Fatalf("iter after close: %v", err)
	}
}

// TestEmptyAndEdgeKeys: empty keys/values and binary keys are legal.
func TestEmptyAndEdgeKeys(t *testing.T) {
	db, err := Open("db", testOptions(vfs.NewMem()))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	if err := db.Put([]byte{}, []byte("empty-key")); err != nil {
		t.Fatal(err)
	}
	if v, err := db.Get([]byte{}); err != nil || string(v) != "empty-key" {
		t.Fatalf("empty key: %q %v", v, err)
	}
	if err := db.Put([]byte("k"), nil); err != nil {
		t.Fatal(err)
	}
	if v, err := db.Get([]byte("k")); err != nil || len(v) != 0 {
		t.Fatalf("nil value: %q %v", v, err)
	}
	bin := []byte{0x00, 0xff, 0x00, 0x01}
	if err := db.Put(bin, []byte("binary")); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if v, err := db.Get(bin); err != nil || string(v) != "binary" {
		t.Fatalf("binary key after flush: %q %v", v, err)
	}
	// Large value crossing block and WAL-fragment boundaries.
	big := make([]byte, 300_000)
	for i := range big {
		big[i] = byte(i)
	}
	if err := db.Put([]byte("big"), big); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get([]byte("big"))
	if err != nil || len(v) != len(big) {
		t.Fatalf("big value: %d bytes, %v", len(v), err)
	}
	for i := range big {
		if v[i] != big[i] {
			t.Fatalf("big value corrupted at %d", i)
		}
	}
}
