// Package manifest defines the metadata of the LSM tree: per-file metadata,
// version edits (the records of the MANIFEST log), and the Version level
// structure. The DB owns MANIFEST I/O; this package owns the data model.
package manifest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"shield/internal/lsm/base"
)

// NumLevels is the depth of the leveled tree.
const NumLevels = 7

// FileMetadata describes one SST file. Smallest/Largest are internal keys.
type FileMetadata struct {
	FileNum  uint64 `json:"file_num"`
	Size     uint64 `json:"size"`
	Smallest []byte `json:"smallest"`
	Largest  []byte `json:"largest"`

	// DEKID records the file's encryption-key identifier, duplicated from
	// the file's own plaintext header so manifests can prune the secure
	// cache without opening files. Empty when encryption is off or EncFS
	// handles it transparently.
	DEKID string `json:"dek_id,omitempty"`

	// Seq orders files created by flush/compaction; used by universal and
	// FIFO compaction to know run recency (higher = newer).
	Seq uint64 `json:"seq"`

	// Digest is the hex SHA-256 over the file's per-block AEAD tag chain
	// (format v2), recorded by the version edit that installed the file.
	// Because the tags are unforgeable without the file's DEK, anchoring
	// their digest in the manifest extends the manifest's authenticity to
	// every block of every SST: replacing a file with an older validly-
	// sealed version changes the chain and is detected. Empty for format
	// v1 files (which carry no authentication) and when encryption is off.
	Digest string `json:"digest,omitempty"`
}

// Overlaps reports whether the file's key range intersects [smallest,
// largest] in user-key space. nil bounds mean unbounded.
func (f *FileMetadata) Overlaps(smallestUser, largestUser []byte) bool {
	if largestUser != nil && bytes.Compare(base.UserKey(f.Smallest), largestUser) > 0 {
		return false
	}
	if smallestUser != nil && bytes.Compare(base.UserKey(f.Largest), smallestUser) < 0 {
		return false
	}
	return true
}

// AddedFile is one file-addition record in a VersionEdit.
type AddedFile struct {
	Level int          `json:"level"`
	Meta  FileMetadata `json:"meta"`
}

// DeletedFile is one file-removal record in a VersionEdit.
type DeletedFile struct {
	Level   int    `json:"level"`
	FileNum uint64 `json:"file_num"`
}

// VersionEdit is one MANIFEST record: an atomic delta to the tree state.
type VersionEdit struct {
	LogNumber      *uint64       `json:"log_number,omitempty"`
	NextFileNumber *uint64       `json:"next_file_number,omitempty"`
	LastSeq        *uint64       `json:"last_seq,omitempty"`
	Added          []AddedFile   `json:"added,omitempty"`
	Deleted        []DeletedFile `json:"deleted,omitempty"`

	// Epoch, when nonzero, records the store's freshness epoch: a counter
	// that increases monotonically across manifest generations. Recovery
	// compares the recovered epoch against the floor sealed in the local
	// freshness store and fails closed if the disk has moved backwards
	// (snapshot-rollback detection). Written by the snapshot edit that
	// starts each manifest file.
	Epoch uint64 `json:"epoch,omitempty"`
}

// Encode serializes the edit for a MANIFEST log record.
func (e *VersionEdit) Encode() ([]byte, error) { return json.Marshal(e) }

// DecodeVersionEdit parses one MANIFEST record.
func DecodeVersionEdit(data []byte) (*VersionEdit, error) {
	var e VersionEdit
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("manifest: decoding edit: %w", err)
	}
	return &e, nil
}

// Version is an immutable snapshot of the tree's file layout. Levels[0] is
// ordered newest-first (files may overlap); Levels[1..] are ordered by
// smallest key (files are disjoint).
type Version struct {
	Levels [NumLevels][]*FileMetadata
}

// Clone returns a copy sharing FileMetadata pointers.
func (v *Version) Clone() *Version {
	nv := &Version{}
	for i := range v.Levels {
		nv.Levels[i] = append([]*FileMetadata(nil), v.Levels[i]...)
	}
	return nv
}

// Apply returns a new Version with the edit applied.
func (v *Version) Apply(e *VersionEdit) (*Version, error) {
	nv := v.Clone()
	for _, d := range e.Deleted {
		if d.Level < 0 || d.Level >= NumLevels {
			return nil, fmt.Errorf("manifest: delete at invalid level %d", d.Level)
		}
		files := nv.Levels[d.Level]
		idx := -1
		for i, f := range files {
			if f.FileNum == d.FileNum {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("manifest: deleting unknown file %d at level %d", d.FileNum, d.Level)
		}
		nv.Levels[d.Level] = append(files[:idx:idx], files[idx+1:]...)
	}
	for _, a := range e.Added {
		if a.Level < 0 || a.Level >= NumLevels {
			return nil, fmt.Errorf("manifest: add at invalid level %d", a.Level)
		}
		meta := a.Meta
		nv.Levels[a.Level] = append(nv.Levels[a.Level], &meta)
	}
	// Restore level ordering invariants.
	sort.Slice(nv.Levels[0], func(i, j int) bool {
		return nv.Levels[0][i].Seq > nv.Levels[0][j].Seq // newest first
	})
	for lvl := 1; lvl < NumLevels; lvl++ {
		files := nv.Levels[lvl]
		sort.Slice(files, func(i, j int) bool {
			return base.CompareInternal(files[i].Smallest, files[j].Smallest) < 0
		})
	}
	return nv, nil
}

// NumFiles reports the total file count across all levels.
func (v *Version) NumFiles() int {
	n := 0
	for _, lvl := range v.Levels {
		n += len(lvl)
	}
	return n
}

// LevelSize returns the total byte size of files at level.
func (v *Version) LevelSize(level int) uint64 {
	var n uint64
	for _, f := range v.Levels[level] {
		n += f.Size
	}
	return n
}

// Overlapping returns the files at level whose user-key ranges intersect
// [smallestUser, largestUser].
func (v *Version) Overlapping(level int, smallestUser, largestUser []byte) []*FileMetadata {
	var out []*FileMetadata
	for _, f := range v.Levels[level] {
		if f.Overlaps(smallestUser, largestUser) {
			out = append(out, f)
		}
	}
	return out
}

// CheckOrdering validates level invariants; used by tests and recovery.
func (v *Version) CheckOrdering() error {
	for lvl := 1; lvl < NumLevels; lvl++ {
		files := v.Levels[lvl]
		for i := 1; i < len(files); i++ {
			if base.CompareInternal(files[i-1].Largest, files[i].Smallest) >= 0 {
				return fmt.Errorf("manifest: level %d files %d and %d overlap",
					lvl, files[i-1].FileNum, files[i].FileNum)
			}
		}
	}
	return nil
}
