package manifest

import (
	"testing"

	"shield/internal/lsm/base"
)

func meta(num uint64, lo, hi string, seq uint64) FileMetadata {
	return FileMetadata{
		FileNum:  num,
		Size:     100,
		Smallest: base.MakeInternalKey([]byte(lo), 1, base.KindSet),
		Largest:  base.MakeInternalKey([]byte(hi), 1, base.KindSet),
		Seq:      seq,
	}
}

func TestEditEncodeDecode(t *testing.T) {
	ln, nf, ls := uint64(3), uint64(17), uint64(999)
	e := &VersionEdit{
		LogNumber:      &ln,
		NextFileNumber: &nf,
		LastSeq:        &ls,
		Added: []AddedFile{
			{Level: 0, Meta: meta(5, "a", "m", 1)},
			{Level: 2, Meta: meta(6, "n", "z", 2)},
		},
		Deleted: []DeletedFile{{Level: 1, FileNum: 4}},
	}
	enc, err := e.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeVersionEdit(enc)
	if err != nil {
		t.Fatal(err)
	}
	if *got.LogNumber != 3 || *got.NextFileNumber != 17 || *got.LastSeq != 999 {
		t.Fatalf("scalars: %+v", got)
	}
	if len(got.Added) != 2 || got.Added[1].Level != 2 || got.Added[1].Meta.FileNum != 6 {
		t.Fatalf("added: %+v", got.Added)
	}
	if len(got.Deleted) != 1 || got.Deleted[0].FileNum != 4 {
		t.Fatalf("deleted: %+v", got.Deleted)
	}
}

func TestApplyAddDelete(t *testing.T) {
	v := &Version{}
	v2, err := v.Apply(&VersionEdit{Added: []AddedFile{
		{Level: 0, Meta: meta(1, "a", "c", 1)},
		{Level: 0, Meta: meta(2, "b", "d", 2)},
		{Level: 1, Meta: meta(3, "a", "k", 0)},
		{Level: 1, Meta: meta(4, "l", "z", 0)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Original untouched (immutability).
	if v.NumFiles() != 0 {
		t.Fatal("Apply mutated the receiver")
	}
	if v2.NumFiles() != 4 {
		t.Fatalf("files %d", v2.NumFiles())
	}
	// L0 ordered newest-first by Seq.
	if v2.Levels[0][0].FileNum != 2 || v2.Levels[0][1].FileNum != 1 {
		t.Fatalf("L0 order: %v %v", v2.Levels[0][0].FileNum, v2.Levels[0][1].FileNum)
	}
	// L1 ordered by smallest key.
	if v2.Levels[1][0].FileNum != 3 || v2.Levels[1][1].FileNum != 4 {
		t.Fatal("L1 order wrong")
	}
	if err := v2.CheckOrdering(); err != nil {
		t.Fatal(err)
	}

	v3, err := v2.Apply(&VersionEdit{Deleted: []DeletedFile{{Level: 0, FileNum: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(v3.Levels[0]) != 1 || v3.Levels[0][0].FileNum != 2 {
		t.Fatal("delete failed")
	}

	// Deleting an unknown file is an error (manifest corruption guard).
	if _, err := v3.Apply(&VersionEdit{Deleted: []DeletedFile{{Level: 0, FileNum: 99}}}); err == nil {
		t.Fatal("deleting unknown file accepted")
	}
}

func TestOverlapping(t *testing.T) {
	v := &Version{}
	v, _ = v.Apply(&VersionEdit{Added: []AddedFile{
		{Level: 1, Meta: meta(1, "a", "f", 0)},
		{Level: 1, Meta: meta(2, "g", "m", 0)},
		{Level: 1, Meta: meta(3, "n", "t", 0)},
	}})

	got := v.Overlapping(1, []byte("h"), []byte("p"))
	if len(got) != 2 || got[0].FileNum != 2 || got[1].FileNum != 3 {
		t.Fatalf("overlap: %v", got)
	}
	// nil bounds are unbounded.
	if got := v.Overlapping(1, nil, nil); len(got) != 3 {
		t.Fatalf("unbounded overlap: %d", len(got))
	}
	if got := v.Overlapping(1, []byte("u"), []byte("z")); len(got) != 0 {
		t.Fatalf("no-overlap query returned %d", len(got))
	}
}

func TestLevelSize(t *testing.T) {
	v := &Version{}
	v, _ = v.Apply(&VersionEdit{Added: []AddedFile{
		{Level: 3, Meta: meta(1, "a", "b", 0)},
		{Level: 3, Meta: meta(2, "c", "d", 0)},
	}})
	if v.LevelSize(3) != 200 {
		t.Fatalf("level size %d", v.LevelSize(3))
	}
}

func TestCheckOrderingDetectsOverlap(t *testing.T) {
	v := &Version{}
	v, _ = v.Apply(&VersionEdit{Added: []AddedFile{
		{Level: 1, Meta: meta(1, "a", "m", 0)},
		{Level: 1, Meta: meta(2, "h", "z", 0)}, // overlaps file 1
	}})
	if err := v.CheckOrdering(); err == nil {
		t.Fatal("overlapping L1 files not detected")
	}
}

func TestInvalidLevelRejected(t *testing.T) {
	v := &Version{}
	if _, err := v.Apply(&VersionEdit{Added: []AddedFile{{Level: NumLevels, Meta: meta(1, "a", "b", 0)}}}); err == nil {
		t.Fatal("invalid level accepted")
	}
	if _, err := v.Apply(&VersionEdit{Deleted: []DeletedFile{{Level: -1, FileNum: 1}}}); err == nil {
		t.Fatal("negative level accepted")
	}
}
