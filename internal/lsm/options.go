// Package lsm implements the Log-Structured Merge-tree key-value store the
// SHIELD paper builds on: WAL-fronted writes into a skiplist memtable,
// flushes to block-based SST files, and leveled / universal / FIFO
// background compaction, with a MANIFEST-logged version set.
//
// The engine is encryption-agnostic. Every file it creates or opens passes
// through Options.FileWrapper — the seam where SHIELD (internal/core)
// embeds per-file DEKs, the WAL buffer, and chunked compaction encryption,
// and where instance-level encryption is a no-op (EncFS wraps the
// filesystem below this layer instead).
package lsm

import (
	"fmt"

	"shield/internal/lsm/sstable"
	"shield/internal/vfs"
)

// FileKind tells the FileWrapper what role a file plays, so encryption
// policy can differ per component (e.g. buffered WAL writes, chunked SST
// encryption, plaintext CURRENT pointer).
type FileKind int

// File roles.
const (
	FileKindWAL FileKind = iota
	FileKindSST
	FileKindManifest
	FileKindCurrent
	FileKindOther
)

// String implements fmt.Stringer.
func (k FileKind) String() string {
	switch k {
	case FileKindWAL:
		return "wal"
	case FileKindSST:
		return "sst"
	case FileKindManifest:
		return "manifest"
	case FileKindCurrent:
		return "current"
	default:
		return "other"
	}
}

// FileWrapper intercepts file creation and opening on the engine's write
// and read paths. Implementations encrypt/decrypt, assign DEKs, and track
// key lifecycle. The zero wrapper (NopWrapper) passes files through.
type FileWrapper interface {
	// WrapCreate wraps a newly created file. It may write a plaintext
	// header (e.g. carrying a DEK-ID) before returning. The returned dekID
	// (possibly empty) is recorded in file metadata for SSTs.
	WrapCreate(name string, kind FileKind, f vfs.WritableFile) (vfs.WritableFile, string, error)

	// WrapOpen wraps a file opened for random access, typically reading
	// the header written by WrapCreate and resolving its DEK.
	WrapOpen(name string, kind FileKind, f vfs.RandomAccessFile) (vfs.RandomAccessFile, error)

	// WrapOpenSequential is WrapOpen for streaming reads (WAL/MANIFEST
	// recovery).
	WrapOpenSequential(name string, kind FileKind, f vfs.SequentialFile) (vfs.SequentialFile, error)

	// FileDeleted notifies that a file was removed, so its DEK can be
	// pruned from the secure cache and revoked at the KDS (DEK rotation:
	// old keys die with their files).
	FileDeleted(name string, dekID string)
}

// NopWrapper is the identity FileWrapper (no encryption).
type NopWrapper struct{}

// WrapCreate implements FileWrapper.
func (NopWrapper) WrapCreate(_ string, _ FileKind, f vfs.WritableFile) (vfs.WritableFile, string, error) {
	return f, "", nil
}

// WrapOpen implements FileWrapper.
func (NopWrapper) WrapOpen(_ string, _ FileKind, f vfs.RandomAccessFile) (vfs.RandomAccessFile, error) {
	return f, nil
}

// WrapOpenSequential implements FileWrapper.
func (NopWrapper) WrapOpenSequential(_ string, _ FileKind, f vfs.SequentialFile) (vfs.SequentialFile, error) {
	return f, nil
}

// FileDeleted implements FileWrapper.
func (NopWrapper) FileDeleted(string, string) {}

// FreshnessStore persists the store's rollback-proof epoch floor outside
// the data directory — in SHIELD deployments, sealed into the passkey-
// protected secure cache next to the DEKs. Recovery reads the floor before
// trusting the manifest: a recovered epoch below the floor proves the data
// directory was rolled back to an earlier snapshot, and open fails closed
// (ErrEpochRegression) unless Options.AllowRollback. After a successful
// recovery the DB bumps the epoch past both the floor and the recovered
// value and seals the new floor.
type FreshnessStore interface {
	// EpochFloor returns the highest epoch ever sealed, and whether one has
	// been sealed at all (a fresh freshness store has no floor and accepts
	// any manifest epoch).
	EpochFloor() (uint64, bool)

	// SealEpoch durably records epoch as the new floor. Called after the
	// manifest carrying the epoch is durable, so a crash between the two
	// leaves floor <= manifest epoch — safe, never falsely regressive.
	SealEpoch(epoch uint64) error
}

// CompactionStyle selects the background-compaction policy.
type CompactionStyle int

// Compaction styles, mirroring RocksDB's leveled, universal (size-tiered),
// and FIFO policies.
const (
	CompactionLeveled CompactionStyle = iota
	CompactionUniversal
	CompactionFIFO
)

// String implements fmt.Stringer.
func (s CompactionStyle) String() string {
	switch s {
	case CompactionLeveled:
		return "leveled"
	case CompactionUniversal:
		return "universal"
	case CompactionFIFO:
		return "fifo"
	default:
		return fmt.Sprintf("style(%d)", int(s))
	}
}

// Options configures a DB.
type Options struct {
	// FS is the filesystem; defaults to the in-memory filesystem (tests)
	// is NOT implied — FS is required.
	FS vfs.FS

	// Wrapper intercepts file I/O; defaults to NopWrapper.
	Wrapper FileWrapper

	// MemtableSize triggers flush when the active memtable exceeds this
	// many bytes. Default 4 MiB.
	MemtableSize int64

	// BlockSize is the SST data-block size. Default 4096.
	BlockSize int

	// BloomBitsPerKey sizes SST bloom filters. Default 10; negative
	// disables filters.
	BloomBitsPerKey int

	// Compression compresses SST data blocks before they are encrypted
	// (ciphertext does not compress, so the pipeline order matters).
	// Default off, matching the paper's evaluation configuration.
	Compression sstable.Compression

	// BlockCacheSize bounds the decrypted-block cache. Default 8 MiB;
	// 0 keeps the default, negative disables the cache.
	BlockCacheSize int64

	// PinL0AndMeta pins the hot top of the read path in the block cache:
	// every table's index and filter bytes, plus the data blocks of L0 files,
	// are charged to a pinned class that eviction skips, so a scan-heavy
	// churn cannot evict the blocks every point read touches. Pins are
	// released when the file is deleted (L0 files never change level: a
	// compaction consuming them writes new files). Pinned charge counts
	// against BlockCacheSize; size the cache to hold L0 plus metadata with
	// room to spare. Default off.
	PinL0AndMeta bool

	// PrefixExtractor, when non-nil, derives a bucketing prefix from a user
	// key. It must return a byte-prefix of the key (so keys sharing a prefix
	// are contiguous) and must be pure and goroutine-safe. When set, flushed
	// SSTs carry a second bloom filter over distinct prefixes, and
	// Iterator.SeekPrefixGE consults it to skip tables that provably hold no
	// key with the sought prefix. Compaction outputs carry no prefix filter
	// (compactions may execute on an offloaded worker that cannot be handed
	// a Go function); reads degrade to unfiltered seeks there. Default nil.
	PrefixExtractor func(userKey []byte) []byte

	// L0CompactionTrigger is the L0 file count that starts a leveled
	// compaction (or the run count for universal). Default 4.
	L0CompactionTrigger int

	// L0StopWritesTrigger stalls writes when L0 grows past it. Default 20.
	L0StopWritesTrigger int

	// BaseLevelSize is the target size of L1. Default 16 MiB.
	BaseLevelSize uint64

	// LevelSizeMultiplier is the fanout between level targets. Default 10.
	LevelSizeMultiplier int

	// TargetFileSize caps individual compaction output files. Default 4 MiB.
	TargetFileSize uint64

	// MaxBackgroundJobs bounds concurrent flush+compaction goroutines: one
	// slot is always reserved for the flush worker (flush preempts
	// compaction), the rest run compaction jobs on disjoint level/key-range
	// pairs. Default 2 (one flush slot + one compaction job, i.e. the
	// serial behavior).
	MaxBackgroundJobs int

	// MaxSubcompactions splits a single leveled compaction into up to this
	// many key-range shards executed on parallel goroutines, each shard
	// driving its own encrypting writer. Default 1 (no splitting).
	MaxSubcompactions int

	// CompactionStyle selects leveled, universal, or FIFO compaction.
	CompactionStyle CompactionStyle

	// FIFOMaxTableSize is the total-size cap for FIFO compaction; oldest
	// files are dropped beyond it. Default 256 MiB.
	FIFOMaxTableSize uint64

	// UniversalMaxRuns is the sorted-run count that triggers a universal
	// merge. Default 8.
	UniversalMaxRuns int

	// SyncWrites makes every committed batch fsync the WAL. Default false
	// (matching db_bench's default of buffered, non-synced WAL writes).
	SyncWrites bool

	// DisableWAL turns the WAL off entirely (crash consistency is lost);
	// used by benchmarks isolating non-WAL costs.
	DisableWAL bool

	// Compactor, when non-nil, executes compactions remotely (offloaded
	// compaction). Flushes always run locally.
	Compactor Compactor

	// ParanoidChecks verifies every SST referenced by the manifest at open:
	// each file's footer, index, and all data-block checksums are read and
	// checked before recovery completes (RocksDB's paranoid_checks plus
	// verify_checksums_in_compaction spirit). Without it, open only verifies
	// that referenced files exist and have readable metadata.
	ParanoidChecks bool

	// BestEffortRecovery opens around corrupt or missing SSTs instead of
	// failing: offending files are dropped from the recovered version (and
	// quarantined into lost/ when the DB is writable), mirroring RocksDB's
	// best_efforts_recovery. Data in those files becomes unreadable but the
	// rest of the tree stays available. Without it, open fails with a
	// *CorruptionError.
	BestEffortRecovery bool

	// MaxManifestFileSize rolls the MANIFEST into a fresh snapshot file once
	// its edit log grows past this many bytes. Default 4 MiB.
	MaxManifestFileSize int64

	// Freshness, when non-nil, anchors the store's epoch outside the data
	// directory (see FreshnessStore). nil disables rollback detection.
	Freshness FreshnessStore

	// AllowRollback downgrades an epoch regression from a fail-closed open
	// error to a logged warning — the explicit operator acknowledgement
	// that the store was restored from an older snapshot on purpose (scrub
	// uses it for disaster recovery). Ignored when Freshness is nil.
	AllowRollback bool

	// ReadOnly opens the database as a read-only instance (the DS
	// optimization of launching extra read replicas over shared WAL and
	// SST files): the manifest and WALs are replayed in memory, nothing is
	// written or deleted, and no background work runs. Writes, Flush, and
	// CompactRange return ErrReadOnly.
	ReadOnly bool

	// Logger receives background-error and event lines; nil discards.
	Logger func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Wrapper == nil {
		o.Wrapper = NopWrapper{}
	}
	if o.MemtableSize == 0 {
		o.MemtableSize = 4 << 20
	}
	if o.BlockSize == 0 {
		o.BlockSize = 4096
	}
	if o.BloomBitsPerKey == 0 {
		o.BloomBitsPerKey = 10
	}
	if o.BlockCacheSize == 0 {
		o.BlockCacheSize = 8 << 20
	} else if o.BlockCacheSize < 0 {
		o.BlockCacheSize = 0
	}
	if o.L0CompactionTrigger == 0 {
		o.L0CompactionTrigger = 4
	}
	if o.L0StopWritesTrigger == 0 {
		o.L0StopWritesTrigger = 20
	}
	if o.BaseLevelSize == 0 {
		o.BaseLevelSize = 16 << 20
	}
	if o.LevelSizeMultiplier == 0 {
		o.LevelSizeMultiplier = 10
	}
	if o.TargetFileSize == 0 {
		o.TargetFileSize = 4 << 20
	}
	if o.MaxBackgroundJobs == 0 {
		o.MaxBackgroundJobs = 2
	}
	if o.MaxSubcompactions <= 0 {
		o.MaxSubcompactions = 1
	}
	if o.FIFOMaxTableSize == 0 {
		o.FIFOMaxTableSize = 256 << 20
	}
	if o.UniversalMaxRuns == 0 {
		o.UniversalMaxRuns = 8
	}
	if o.MaxManifestFileSize == 0 {
		o.MaxManifestFileSize = 4 << 20
	}
	if o.Logger == nil {
		o.Logger = func(string, ...any) {}
	}
	return o
}
