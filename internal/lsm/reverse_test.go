package lsm

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"shield/internal/vfs"
)

// TestReverseIteration validates Last/Prev/SeekLT against a model across
// memtable-only, flushed, and compacted states, with overwrites and
// deletes in the mix.
func TestReverseIteration(t *testing.T) {
	fs := vfs.NewMem()
	db, err := Open("db", testOptions(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	model := make(map[string]string)
	rng := rand.New(rand.NewSource(5))
	apply := func(n int) {
		for i := 0; i < n; i++ {
			k := fmt.Sprintf("k%05d", rng.Intn(3000))
			if rng.Intn(5) == 0 {
				if err := db.Delete([]byte(k)); err != nil {
					t.Fatal(err)
				}
				delete(model, k)
			} else {
				v := fmt.Sprintf("v%d", rng.Int63())
				if err := db.Put([]byte(k), []byte(v)); err != nil {
					t.Fatal(err)
				}
				model[k] = v
			}
		}
	}

	verify := func(stage string) {
		t.Helper()
		keys := make([]string, 0, len(model))
		for k := range model {
			keys = append(keys, k)
		}
		sort.Strings(keys)

		it, err := db.NewIter()
		if err != nil {
			t.Fatal(err)
		}
		defer it.Close()

		// Full reverse scan must mirror the sorted model.
		i := len(keys) - 1
		for ok := it.Last(); ok; ok = it.Prev() {
			if i < 0 {
				t.Fatalf("%s: reverse scan yielded extra key %q", stage, it.Key())
			}
			if string(it.Key()) != keys[i] {
				t.Fatalf("%s: reverse position %d: got %q want %q", stage, i, it.Key(), keys[i])
			}
			if string(it.Value()) != model[keys[i]] {
				t.Fatalf("%s: reverse value for %q mismatch", stage, it.Key())
			}
			i--
		}
		if err := it.Err(); err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		if i != -1 {
			t.Fatalf("%s: reverse scan stopped early, %d keys unseen", stage, i+1)
		}

		// SeekLT spot checks, including targets between keys and past ends.
		for probe := 0; probe < 50; probe++ {
			target := fmt.Sprintf("k%05d", rng.Intn(3200))
			idx := sort.SearchStrings(keys, target) - 1 // last key < target
			got := it.SeekLT([]byte(target))
			if idx < 0 {
				if got {
					t.Fatalf("%s: SeekLT(%s) found %q, want none", stage, target, it.Key())
				}
				continue
			}
			if !got {
				t.Fatalf("%s: SeekLT(%s) found nothing, want %q", stage, target, keys[idx])
			}
			if string(it.Key()) != keys[idx] {
				t.Fatalf("%s: SeekLT(%s) = %q, want %q", stage, target, it.Key(), keys[idx])
			}
		}

		// Direction mixing: Prev after SeekGE, Next-like consistency.
		if len(keys) > 2 {
			mid := keys[len(keys)/2]
			if !it.SeekGE([]byte(mid)) {
				t.Fatalf("%s: SeekGE(%s) failed", stage, mid)
			}
			if it.Prev() {
				got := string(it.Key())
				idx := sort.SearchStrings(keys, mid) - 1
				if idx >= 0 && got != keys[idx] {
					t.Fatalf("%s: Prev after SeekGE(%s) = %q want %q", stage, mid, got, keys[idx])
				}
			}
		}
	}

	// Stage 1: memtable only.
	apply(2000)
	verify("memtable")

	// Stage 2: flushed to L0 (plus fresh memtable contents).
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	apply(2000)
	verify("L0+memtable")

	// Stage 3: fully compacted plus a fresh overlay.
	if err := db.CompactRange(); err != nil {
		t.Fatal(err)
	}
	apply(1000)
	verify("compacted+overlay")
}

// TestReverseEmptyAndEdges covers reverse ops on empty and single-key DBs.
func TestReverseEmptyAndEdges(t *testing.T) {
	db, err := Open("db", testOptions(vfs.NewMem()))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	it, err := db.NewIter()
	if err != nil {
		t.Fatal(err)
	}
	if it.Last() || it.Prev() || it.SeekLT([]byte("z")) {
		t.Fatal("reverse ops on empty db returned entries")
	}
	it.Close()

	db.Put([]byte("only"), []byte("one"))
	it2, _ := db.NewIter()
	defer it2.Close()
	if !it2.Last() || string(it2.Key()) != "only" {
		t.Fatal("Last on single-key db")
	}
	if it2.Prev() {
		t.Fatal("Prev past the beginning returned an entry")
	}
	if it2.SeekLT([]byte("only")) {
		t.Fatal("SeekLT(first key) returned an entry")
	}
	if !it2.SeekLT([]byte("onlyz")) || string(it2.Key()) != "only" {
		t.Fatal("SeekLT(after) missed the key")
	}
	// Tombstoned newest version must be skipped in reverse too.
	db.Put([]byte("zz"), []byte("x"))
	db.Delete([]byte("zz"))
	it3, _ := db.NewIter()
	defer it3.Close()
	if !it3.Last() || string(it3.Key()) != "only" {
		t.Fatalf("Last skipped tombstone wrong: %q", it3.Key())
	}
}
