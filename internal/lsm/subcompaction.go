package lsm

// Key-range sharding of one compaction job (RocksDB's "subcompactions").
//
// The job's merged key space is cut at user-key boundaries into n disjoint
// shards, each run on its own goroutine with its own input readers, merge
// heap, and output writers. Every output goes through wrapper.WrapCreate,
// so under SHIELD each shard drives its own chunked encrypting writer —
// per-chunk encryption parallelism composes with compaction parallelism.
//
// Correctness relies on boundaries being user keys: all versions of a key
// land in exactly one shard, so the per-shard drop logic (shadowed
// versions, bottommost tombstone elision) sees the same record sequence
// the serial merge would. Shard i owns a disjoint slice of the job's
// reserved output-file-number space; with the same boundaries the
// concatenated shard outputs are byte-identical to the serial path's.

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"shield/internal/lsm/base"
	"shield/internal/lsm/manifest"
	"shield/internal/lsm/sstable"
	"shield/internal/metrics"
	"shield/internal/vfs"
)

// errShardAborted cancels sibling shards once one shard fails; the
// dispatcher reports the first real error instead.
var errShardAborted = errors.New("lsm: subcompaction aborted by sibling failure")

// subcompactionBoundaries derives user-key split points for the job, or nil
// to run serially. The candidates are the input files' bounding keys: free
// to compute, and they track the data distribution closely enough to
// balance the shards.
func subcompactionBoundaries(job CompactionJob) [][]byte {
	n := job.MaxSubcompactions
	if n <= 1 {
		return nil
	}
	var cands [][]byte
	for _, lvl := range job.Inputs {
		for _, f := range lvl.Files {
			cands = append(cands, base.UserKey(f.Smallest), base.UserKey(f.Largest))
		}
	}
	sort.Slice(cands, func(i, j int) bool { return bytes.Compare(cands[i], cands[j]) < 0 })
	uniq := cands[:0]
	for _, c := range cands {
		if len(uniq) == 0 || !bytes.Equal(uniq[len(uniq)-1], c) {
			uniq = append(uniq, c)
		}
	}
	// A boundary at the global minimum would only make an empty leading
	// shard.
	if len(uniq) > 0 {
		uniq = uniq[1:]
	}
	if len(uniq) == 0 {
		return nil
	}
	want := n - 1
	if want > len(uniq) {
		want = len(uniq)
	}
	var bounds [][]byte
	for i := 1; i <= want; i++ {
		b := uniq[i*len(uniq)/(want+1)]
		if len(bounds) == 0 || !bytes.Equal(bounds[len(bounds)-1], b) {
			bounds = append(bounds, b)
		}
	}
	return bounds
}

// runShardedCompaction executes the job across the shards the boundaries
// define (none = one serial shard). On any shard error every output of
// every shard is removed — the job-level abort-and-retain contract is
// unchanged from the serial path.
func runShardedCompaction(fs vfs.FS, wrapper FileWrapper, job CompactionJob, bounds [][]byte) (CompactionResult, error) {
	n := len(bounds) + 1
	res := CompactionResult{Subcompactions: n}
	if n == 1 {
		sr, err := runCompactionShard(fs, wrapper, job, nil, nil, job.FirstOutputFileNum, job.MaxOutputFiles, nil)
		if err != nil {
			return CompactionResult{Subcompactions: n}, err
		}
		res.Outputs = sr.outputs
		res.BytesWritten = sr.written
		return res, nil
	}

	per := job.MaxOutputFiles / uint64(n)
	if per == 0 {
		return res, fmt.Errorf("lsm: %d subcompactions over %d reserved file numbers", n, job.MaxOutputFiles)
	}
	metrics.Jobs.SubcompactionsStarted.Add(int64(n))
	var (
		wg      sync.WaitGroup
		abort   atomic.Bool
		results = make([]shardResult, n)
		errs    = make([]error, n)
	)
	for i := 0; i < n; i++ {
		var start, end []byte
		if i > 0 {
			start = bounds[i-1]
		}
		if i < n-1 {
			end = bounds[i]
		}
		wg.Add(1)
		go func(i int, start, end []byte) {
			defer wg.Done()
			sr, err := runCompactionShard(fs, wrapper, job,
				start, end, job.FirstOutputFileNum+uint64(i)*per, per, &abort)
			if err != nil {
				abort.Store(true)
				errs[i] = err
				return
			}
			results[i] = sr
		}(i, start, end)
	}
	wg.Wait()

	var firstErr error
	for _, err := range errs {
		if err != nil && !errors.Is(err, errShardAborted) {
			firstErr = err
			break
		}
	}
	if firstErr == nil {
		for _, err := range errs {
			if err != nil {
				firstErr = err
				break
			}
		}
	}
	if firstErr != nil {
		// Failed shards already removed their own outputs; remove the
		// survivors' too so the aborted job leaves nothing behind.
		for _, sr := range results {
			removeOutputs(fs, wrapper, job.Dir, sr.outputs)
		}
		return CompactionResult{Subcompactions: n}, firstErr
	}
	// Shard order is key order, so appending keeps outputs sorted and
	// non-overlapping across the whole job.
	for _, sr := range results {
		res.Outputs = append(res.Outputs, sr.outputs...)
		res.BytesWritten += sr.written
	}
	return res, nil
}

// removeOutputs deletes compaction output files and releases their DEK
// registrations (abort path).
func removeOutputs(fs vfs.FS, wrapper FileWrapper, dir string, outputs []manifest.FileMetadata) {
	for _, o := range outputs {
		name := sstFileName(dir, o.FileNum)
		fs.Remove(name)
		wrapper.FileDeleted(name, o.DEKID)
	}
}

// shardOverlapsFile reports whether file f can hold keys in [start, end)
// (nil bounds are open).
func shardOverlapsFile(start, end []byte, f manifest.FileMetadata) bool {
	if start != nil && bytes.Compare(base.UserKey(f.Largest), start) < 0 {
		return false
	}
	if end != nil && bytes.Compare(base.UserKey(f.Smallest), end) >= 0 {
		return false
	}
	return true
}

type shardResult struct {
	outputs []manifest.FileMetadata
	written int64
}

// runCompactionShard merges the job's inputs restricted to user keys in
// [start, end) (nil bounds are open), writing outputs numbered from
// firstNum within a budget of maxFiles. A non-nil abort flag is polled so
// a failing sibling shard cancels this one early.
//
// Failure is abort-and-retain: every output this shard created is closed
// and removed — releasing its quota and DEK registration — and the inputs
// remain authoritative.
//
//shield:nosyncdir shard outputs become durable as a set: the dispatcher (RunCompaction) syncs the directory once after every shard finishes, before the manifest edit installs
func runCompactionShard(fs vfs.FS, wrapper FileWrapper, job CompactionJob,
	start, end []byte, firstNum, maxFiles uint64, abort *atomic.Bool) (res shardResult, retErr error) {

	// Open the inputs that can intersect this shard and build the merge.
	var iters []internalIterator
	var readers []*sstable.Reader
	defer func() {
		for _, r := range readers {
			r.Close()
		}
	}()
	for _, lvl := range job.Inputs {
		for _, f := range lvl.Files {
			if !shardOverlapsFile(start, end, f) {
				continue
			}
			name := sstFileName(job.Dir, f.FileNum)
			raw, err := fs.Open(name)
			if err != nil {
				return res, fmt.Errorf("lsm: compaction input %d: %w", f.FileNum, err)
			}
			wrapped, err := wrapper.WrapOpen(name, FileKindSST, raw)
			if err != nil {
				raw.Close()
				return res, err
			}
			r, err := sstable.NewReader(wrapped, sstable.ReaderOptions{FileNum: f.FileNum})
			if err != nil {
				wrapped.Close()
				return res, fmt.Errorf("lsm: compaction input %d: %w", f.FileNum, err)
			}
			readers = append(readers, r)
			iters = append(iters, &sstIterAdapter{it: r.NewIter()})
		}
	}
	merged := newMergingIter(iters...)

	smallestSnapshot := base.SeqNum(job.SmallestSnapshot)
	var (
		w             *sstable.Writer
		outName       string
		outDEKID      string
		outFile       vfs.WritableFile
		outFileNum    uint64
		nextOutNum    = firstNum
		lastOutNum    = firstNum + maxFiles
		lastUserKey   []byte
		haveUserKey   bool
		lastSeqForKey base.SeqNum
		prevAddedUser []byte
		writerOpts    = Options{BlockSize: job.BlockSize, BloomBitsPerKey: job.BloomBitsPerKey, Compression: job.Compression}
	)

	type createdOutput struct{ name, dekID string }
	var created []createdOutput
	defer func() {
		if retErr == nil {
			return
		}
		if w != nil {
			w.Abort()
			w = nil
		}
		for _, c := range created {
			fs.Remove(c.name)
			wrapper.FileDeleted(c.name, c.dekID)
		}
		res = shardResult{}
	}()

	openOutput := func() error {
		if nextOutNum >= lastOutNum {
			return fmt.Errorf("lsm: compaction exhausted reserved file numbers")
		}
		outFileNum = nextOutNum
		nextOutNum++
		outName = sstFileName(job.Dir, outFileNum)
		raw, err := fs.Create(outName)
		if err != nil {
			return err
		}
		wrapped, dekID, err := wrapper.WrapCreate(outName, FileKindSST, raw)
		if err != nil {
			// The raw file exists but never joined created; remove it here
			// or the aborted job would leak it.
			raw.Close()
			fs.Remove(outName)
			return err
		}
		outDEKID = dekID
		outFile = wrapped
		created = append(created, createdOutput{name: outName, dekID: dekID})
		w = newTableWriter(wrapped, writerOpts)
		return nil
	}

	finishOutput := func() error {
		if w == nil || w.NumEntries() == 0 {
			if w != nil {
				// Empty output: finish and delete.
				if err := w.Finish(); err != nil {
					return err
				}
				fs.Remove(outName)
				wrapper.FileDeleted(outName, outDEKID)
				created = created[:len(created)-1]
				w = nil
			}
			return nil
		}
		if err := w.Finish(); err != nil {
			return err
		}
		res.outputs = append(res.outputs, manifest.FileMetadata{
			FileNum:  outFileNum,
			Size:     w.FileSize(),
			Smallest: w.Smallest(),
			Largest:  w.Largest(),
			DEKID:    outDEKID,
			Digest:   fileDigest(outFile),
		})
		res.written += int64(w.FileSize())
		w = nil
		return nil
	}

	var ok bool
	if start == nil {
		ok = merged.First()
	} else {
		// SearchKey sorts before every version of start, so the shard picks
		// up the first record at or after its lower bound.
		ok = merged.SeekGE(base.SearchKey(start, base.MaxSeqNum))
	}
	for ; ok; ok = merged.Next() {
		if abort != nil && abort.Load() {
			return res, errShardAborted
		}
		ikey := merged.Key()
		userKey := base.UserKey(ikey)
		if end != nil && bytes.Compare(userKey, end) >= 0 {
			break
		}
		seq, kind := base.DecodeTrailer(ikey)

		firstOccurrence := !haveUserKey || !bytes.Equal(userKey, lastUserKey)
		if firstOccurrence {
			lastUserKey = append(lastUserKey[:0], userKey...)
			haveUserKey = true
		}

		drop := false
		switch {
		case !firstOccurrence && lastSeqForKey <= smallestSnapshot:
			// A newer record of this key is visible to every snapshot.
			drop = true
		case kind == base.KindDelete && seq <= smallestSnapshot && job.Bottommost:
			// Tombstone with nothing underneath it to hide.
			drop = true
		}
		lastSeqForKey = seq
		if drop {
			continue
		}

		// Cut the output at the target size, but only between user keys so
		// all versions of a key share one file.
		if w != nil && w.EstimatedSize() >= job.TargetFileSize &&
			prevAddedUser != nil && !bytes.Equal(userKey, prevAddedUser) {
			if err := finishOutput(); err != nil {
				return res, err
			}
		}
		if w == nil {
			if err := openOutput(); err != nil {
				return res, err
			}
		}
		if err := w.Add(ikey, merged.Value()); err != nil {
			return res, err
		}
		prevAddedUser = append(prevAddedUser[:0], userKey...)
	}
	if err := merged.Err(); err != nil {
		return res, err
	}
	if err := finishOutput(); err != nil {
		return res, err
	}
	return res, nil
}
