package lsm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"shield/internal/vfs"
)

// pairingCompactor wraps the local compactor to (a) record the peak number
// of concurrently executing compaction jobs and (b) briefly hold the first
// job until a second arrives, widening the window in which crash images
// are captured with >= 2 jobs in flight.
type pairingCompactor struct {
	inner   Compactor
	mu      sync.Mutex
	cond    *sync.Cond
	running int
	peak    int
	sawPair bool
	subPeak atomic.Int64
}

func newPairingCompactor(inner Compactor) *pairingCompactor {
	c := &pairingCompactor{inner: inner}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *pairingCompactor) Compact(job CompactionJob) (CompactionResult, error) {
	c.mu.Lock()
	c.running++
	if c.running > c.peak {
		c.peak = c.running
	}
	if c.running >= 2 {
		c.sawPair = true
		c.cond.Broadcast()
	} else if !c.sawPair {
		// Hold the lone job a moment so a second pick can catch up; give up
		// quickly so a workload phase with only one runnable plan proceeds.
		deadline := time.Now().Add(100 * time.Millisecond)
		for c.running < 2 && !c.sawPair && time.Now().Before(deadline) {
			c.mu.Unlock()
			time.Sleep(time.Millisecond)
			c.mu.Lock()
		}
	}
	c.mu.Unlock()

	res, err := c.inner.Compact(job)

	c.mu.Lock()
	c.running--
	c.cond.Broadcast()
	c.mu.Unlock()
	if int64(res.Subcompactions) > c.subPeak.Load() {
		c.subPeak.Store(int64(res.Subcompactions))
	}
	return res, err
}

func (c *pairingCompactor) peakRunning() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.peak
}

// concurrentCrashOps alternates write bursts between two disjoint key
// ranges. After range A's data settles into L1, a burst in range B arms an
// L0→L1 job with no overlap on A's files — so an L1(A)→L2 job can run
// beside it, which is what puts two jobs in flight.
func concurrentCrashOps(n int) []crashOp {
	ops := make([]crashOp, n)
	for i := range ops {
		prefix := "a"
		if (i/40)%2 == 1 {
			prefix = "b"
		}
		k := fmt.Sprintf("%s%03d", prefix, i%60)
		v := fmt.Sprintf("v%05d-%064d", i, i)
		ops[i] = crashOp{key: []byte(k), value: []byte(v)}
	}
	return ops
}

// TestCrashRecoveryConcurrentCompactions extends the power-loss enumeration
// to the parallel scheduler: crash images are captured at every sync
// boundary while up to three compaction jobs — each split into
// subcompactions — rewrite the tree, and every image must recover with all
// acked writes intact (the PR 3 checker axioms, unchanged). The run is
// rejected if it never actually had two jobs in flight.
func TestCrashRecoveryConcurrentCompactions(t *testing.T) {
	ops := concurrentCrashOps(240)

	cfs := vfs.NewCrash(1)
	var (
		ptMu   sync.Mutex
		points []crashPoint
		acked  atomic.Int64
	)
	cfs.AfterSync(func(event string, img *vfs.CrashImage) {
		ptMu.Lock()
		points = append(points, crashPoint{event: event, img: img, acked: acked.Load()})
		ptMu.Unlock()
	})

	pairing := newPairingCompactor(&LocalCompactor{FS: cfs})
	opts := crashTestOptions(cfs)
	opts.MaxBackgroundJobs = 4
	opts.MaxSubcompactions = 3
	opts.Compactor = pairing

	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range ops {
		if err := db.Put(op.key, op.value); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		acked.Add(1)
		if (i+1)%20 == 0 {
			if err := db.Flush(); err != nil {
				t.Fatalf("flush at %d: %v", i, err)
			}
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	if got := pairing.peakRunning(); got < 2 {
		t.Fatalf("peak concurrent compaction jobs = %d, want >= 2 (workload failed to arm the scheduler)", got)
	}
	if got := pairing.subPeak.Load(); got < 2 {
		t.Errorf("no compaction split into subcompactions (peak shards = %d)", got)
	}

	ptMu.Lock()
	pts := points
	ptMu.Unlock()
	if len(pts) < 50 {
		t.Fatalf("only %d crash points enumerated, want >= 50", len(pts))
	}
	t.Logf("enumerated %d crash points; peak jobs=%d peak shards=%d",
		len(pts), pairing.peakRunning(), pairing.subPeak.Load())
	for i, pt := range pts {
		verifyCrashImage(t, "strict", i, pt, pt.img.Strict(), ops)
		verifyCrashImage(t, "torn", i, pt, pt.img.Torn(0), ops)
	}
}

// batchCrashPoint is one crash image plus a snapshot of how many ops each
// concurrent writer had been acked for when the boundary fired.
type batchCrashPoint struct {
	event string
	img   *vfs.CrashImage
	acked []int64
}

// TestCrashRecoveryGroupCommitAtomicity enumerates power-loss points while
// concurrent synced writers ride coalesced commit groups, then checks two
// invariants on every image, strict and torn:
//
//  1. Durability: every op a writer was acked for before the boundary
//     survives (each ack followed that op's own WAL sync).
//  2. Group atomicity: for every commit group the pipeline reported, the
//     recovered image holds ALL of the group's keys or NONE — a torn tail
//     mid-coalesced-record must drop the whole group, never half of it.
func TestCrashRecoveryGroupCommitAtomicity(t *testing.T) {
	const writers, perWriter = 6, 60
	cfs := vfs.NewCrash(1)
	var (
		ptMu   sync.Mutex
		points []batchCrashPoint
		acked  [writers]atomic.Int64
	)
	cfs.AfterSync(func(event string, img *vfs.CrashImage) {
		snap := make([]int64, writers)
		for i := range snap {
			snap[i] = acked[i].Load()
		}
		ptMu.Lock()
		points = append(points, batchCrashPoint{event: event, img: img, acked: snap})
		ptMu.Unlock()
	})

	// Slow WAL syncs (layered above the crash capture) make writers pile up
	// behind the leader, so groups really coalesce.
	fs := &slowSyncFS{FS: cfs, delay: 100 * time.Microsecond}
	opts := crashTestOptions(fs)
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	rec := &groupRecorder{}
	db.commitHook = rec.hook

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := fmt.Sprintf("w%d-%04d", w, i)
				if err := db.Put([]byte(k), []byte(fmt.Sprintf("v%d-%d", w, i))); err != nil {
					t.Errorf("writer %d put %d: %v", w, i, err)
					return
				}
				acked[w].Add(1)
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	rec.mu.Lock()
	groups := append([][]string(nil), rec.keys...)
	maxGroup := 0
	for _, s := range rec.sizes {
		if s > maxGroup {
			maxGroup = s
		}
	}
	rec.mu.Unlock()
	if maxGroup < 2 {
		t.Fatalf("largest commit group = %d: the workload never coalesced, test has no teeth", maxGroup)
	}
	ptMu.Lock()
	pts := points
	ptMu.Unlock()
	if len(pts) < 30 {
		t.Fatalf("only %d crash points enumerated, want >= 30", len(pts))
	}
	t.Logf("enumerated %d crash points, %d groups, largest group %d", len(pts), len(groups), maxGroup)

	verify := func(mode string, i int, pt batchCrashPoint, fs *vfs.MemFS) {
		opts := crashTestOptions(fs)
		opts.ParanoidChecks = true
		db, err := Open("db", opts)
		if err != nil {
			t.Fatalf("%s point %d (%s): reopen failed: %v", mode, i, pt.event, err)
		}
		defer db.Close()
		present := func(k string) bool {
			_, err := db.Get([]byte(k))
			if err != nil && !errors.Is(err, ErrNotFound) {
				t.Fatalf("%s point %d (%s): Get(%s): %v", mode, i, pt.event, k, err)
			}
			return err == nil
		}
		// Durability of acked ops.
		for w := 0; w < writers; w++ {
			for op := int64(0); op < pt.acked[w]; op++ {
				if k := fmt.Sprintf("w%d-%04d", w, op); !present(k) {
					t.Fatalf("%s point %d (%s): acked key %s lost", mode, i, pt.event, k)
				}
			}
		}
		// All-or-none per commit group.
		for gi, g := range groups {
			have := 0
			for _, k := range g {
				if present(k) {
					have++
				}
			}
			if have != 0 && have != len(g) {
				t.Fatalf("%s point %d (%s): group %d partially recovered: %d of %d keys (%v)",
					mode, i, pt.event, gi, have, len(g), g)
			}
		}
	}
	for i, pt := range pts {
		verify("strict", i, pt, pt.img.Strict())
		verify("torn", i, pt, pt.img.Torn(0))
	}
}
