package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"shield/internal/vfs"
)

// TestConcurrencyStress hammers one DB with writers, point readers,
// iterator scans, snapshot readers, and explicit maintenance concurrently,
// checking invariants the whole time:
//
//   - a read never returns a value that was never written for that key;
//   - iterators always yield strictly ascending keys;
//   - no operation errors, deadlocks, or panics.
//
// Run with -race for the full effect (the CI suite does).
func TestConcurrencyStress(t *testing.T) {
	fs := vfs.NewMem()
	opts := testOptions(fs)
	opts.MaxBackgroundJobs = 3
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const keySpace = 500
	duration := 2 * time.Second
	if testing.Short() {
		duration = 300 * time.Millisecond
	}
	stop := make(chan struct{})
	var ops atomic.Int64
	var wg sync.WaitGroup

	fail := func(format string, args ...any) {
		t.Errorf(format, args...)
	}

	// Writers: values always encode their key, so readers can validate.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := rng.Intn(keySpace)
				key := []byte(fmt.Sprintf("k%04d", k))
				switch rng.Intn(10) {
				case 0:
					if err := db.Delete(key); err != nil {
						fail("delete: %v", err)
						return
					}
				default:
					val := []byte(fmt.Sprintf("k%04d|payload-%d", k, rng.Int63()))
					if err := db.Put(key, val); err != nil {
						fail("put: %v", err)
						return
					}
				}
				ops.Add(1)
			}
		}(w)
	}

	// Point readers: any returned value must embed its own key.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := rng.Intn(keySpace)
				key := []byte(fmt.Sprintf("k%04d", k))
				v, err := db.Get(key)
				if err != nil {
					if errors.Is(err, ErrNotFound) {
						continue
					}
					fail("get: %v", err)
					return
				}
				if !bytes.HasPrefix(v, key) {
					fail("get(%s) returned foreign value %q", key, v)
					return
				}
				ops.Add(1)
			}
		}(r)
	}

	// Scanner: full iteration must be strictly ordered and self-consistent.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			it, err := db.NewIter()
			if err != nil {
				fail("iter: %v", err)
				return
			}
			var prev []byte
			for ok := it.First(); ok; ok = it.Next() {
				if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
					fail("iterator disorder: %q then %q", prev, it.Key())
					it.Close()
					return
				}
				if !bytes.HasPrefix(it.Value(), it.Key()) {
					fail("iterator value mismatch at %q", it.Key())
					it.Close()
					return
				}
				prev = append(prev[:0], it.Key()...)
			}
			if err := it.Err(); err != nil {
				fail("iterator error: %v", err)
			}
			it.Close()
			ops.Add(1)
		}
	}()

	// Snapshot reader: a snapshot's view of a key must be stable.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(777))
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := db.NewSnapshot()
			key := []byte(fmt.Sprintf("k%04d", rng.Intn(keySpace)))
			v1, err1 := snap.Get(key)
			time.Sleep(time.Millisecond)
			v2, err2 := snap.Get(key)
			if (err1 == nil) != (err2 == nil) || !bytes.Equal(v1, v2) {
				fail("snapshot view changed for %s: %q/%v then %q/%v", key, v1, err1, v2, err2)
				snap.Release()
				return
			}
			snap.Release()
			ops.Add(1)
		}
	}()

	// Maintenance: explicit flushes (compaction runs automatically).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(100 * time.Millisecond):
				if err := db.Flush(); err != nil && !errors.Is(err, ErrClosed) {
					fail("flush: %v", err)
					return
				}
			}
		}
	}()

	time.Sleep(duration)
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	t.Logf("stress: %d operations, metrics: flushes=%d compactions=%d",
		ops.Load(), db.Metrics().Flushes, db.Metrics().Compactions)
	if ops.Load() == 0 {
		t.Fatal("stress made no progress")
	}
}
