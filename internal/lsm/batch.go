package lsm

import (
	"encoding/binary"
	"fmt"

	"shield/internal/lsm/base"
)

// Batch is an atomic group of writes. Its wire encoding doubles as the WAL
// record format:
//
//	seq(8) count(4) { kind(1) varint(klen) key [varint(vlen) value] }*
//
// seq is assigned at commit time; records within a batch take consecutive
// sequence numbers starting at seq.
type Batch struct {
	data  []byte
	count uint32
}

const batchHeaderLen = 12

// NewBatch returns an empty batch.
func NewBatch() *Batch {
	return &Batch{data: make([]byte, batchHeaderLen)}
}

// Reset clears the batch for reuse.
func (b *Batch) Reset() {
	b.data = b.data[:batchHeaderLen]
	for i := range b.data {
		b.data[i] = 0
	}
	b.count = 0
}

// Put queues a key/value set.
func (b *Batch) Put(key, value []byte) {
	b.append(base.KindSet, key, value)
}

// Delete queues a tombstone for key.
func (b *Batch) Delete(key []byte) {
	b.append(base.KindDelete, key, nil)
}

func (b *Batch) append(kind base.Kind, key, value []byte) {
	if len(b.data) == 0 {
		b.data = make([]byte, batchHeaderLen)
	}
	var tmp [binary.MaxVarintLen32]byte
	b.data = append(b.data, byte(kind))
	n := binary.PutUvarint(tmp[:], uint64(len(key)))
	b.data = append(b.data, tmp[:n]...)
	b.data = append(b.data, key...)
	if kind == base.KindSet {
		n = binary.PutUvarint(tmp[:], uint64(len(value)))
		b.data = append(b.data, tmp[:n]...)
		b.data = append(b.data, value...)
	}
	b.count++
}

// Count returns the number of queued records.
func (b *Batch) Count() uint32 { return b.count }

// Len returns the encoded size in bytes.
func (b *Batch) Len() int { return len(b.data) }

// Empty reports whether the batch holds no records.
func (b *Batch) Empty() bool { return b.count == 0 }

// setSeq stamps the commit sequence into the header.
func (b *Batch) setSeq(seq base.SeqNum) {
	binary.LittleEndian.PutUint64(b.data[:8], uint64(seq))
	binary.LittleEndian.PutUint32(b.data[8:12], b.count)
}

// seq reads the stamped sequence.
func (b *Batch) seq() base.SeqNum {
	return base.SeqNum(binary.LittleEndian.Uint64(b.data[:8]))
}

// appendBatch merges other's records into b (group commit).
func (b *Batch) appendBatch(other *Batch) {
	b.data = append(b.data, other.data[batchHeaderLen:]...)
	b.count += other.count
}

// decodeBatch parses an encoded batch (a WAL record) and invokes fn for each
// record with its assigned sequence number.
func decodeBatch(data []byte, fn func(seq base.SeqNum, kind base.Kind, key, value []byte) error) error {
	if len(data) < batchHeaderLen {
		return fmt.Errorf("lsm: batch too short (%d bytes)", len(data))
	}
	seq := base.SeqNum(binary.LittleEndian.Uint64(data[:8]))
	count := binary.LittleEndian.Uint32(data[8:12])
	p := data[batchHeaderLen:]
	for i := uint32(0); i < count; i++ {
		if len(p) < 1 {
			return fmt.Errorf("lsm: batch truncated at record %d", i)
		}
		kind := base.Kind(p[0])
		p = p[1:]
		klen, n := binary.Uvarint(p)
		if n <= 0 || int(klen) > len(p)-n {
			return fmt.Errorf("lsm: batch corrupt key at record %d", i)
		}
		key := p[n : n+int(klen)]
		p = p[n+int(klen):]
		var value []byte
		if kind == base.KindSet {
			vlen, n := binary.Uvarint(p)
			if n <= 0 || int(vlen) > len(p)-n {
				return fmt.Errorf("lsm: batch corrupt value at record %d", i)
			}
			value = p[n : n+int(vlen)]
			p = p[n+int(vlen):]
		}
		if err := fn(seq+base.SeqNum(i), kind, key, value); err != nil {
			return err
		}
	}
	if len(p) != 0 {
		return fmt.Errorf("lsm: %d trailing bytes in batch", len(p))
	}
	return nil
}
