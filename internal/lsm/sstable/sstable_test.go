package sstable

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"shield/internal/cache"
	"shield/internal/lsm/base"
	"shield/internal/vfs"
)

type kv struct {
	key   []byte // internal key
	value []byte
}

// buildTable writes entries (must be pre-sorted) and opens a reader.
func buildTable(t *testing.T, entries []kv, opts WriterOptions, ropts ReaderOptions) *Reader {
	t.Helper()
	fs := vfs.NewMem()
	f, err := fs.Create("t.sst")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f, opts)
	for _, e := range entries {
		if err := w.Add(e.key, e.value); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	raf, err := fs.Open("t.sst")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(raf, ropts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func makeEntries(n int, seq base.SeqNum) []kv {
	entries := make([]kv, 0, n)
	for i := 0; i < n; i++ {
		uk := []byte(fmt.Sprintf("key-%06d", i))
		entries = append(entries, kv{
			key:   base.MakeInternalKey(uk, seq, base.KindSet),
			value: []byte(fmt.Sprintf("value-%06d", i)),
		})
	}
	return entries
}

func TestGetAllKeys(t *testing.T) {
	entries := makeEntries(5000, 9)
	r := buildTable(t, entries, WriterOptions{}, ReaderOptions{})
	for i := 0; i < 5000; i += 13 {
		uk := []byte(fmt.Sprintf("key-%06d", i))
		v, kind, err := r.Get(uk, 100)
		if err != nil {
			t.Fatalf("Get(%s): %v", uk, err)
		}
		if kind != base.KindSet {
			t.Fatalf("kind %v", kind)
		}
		if want := fmt.Sprintf("value-%06d", i); string(v) != want {
			t.Fatalf("Get(%s) = %q", uk, v)
		}
	}
	if _, _, err := r.Get([]byte("nope"), 100); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
}

func TestSnapshotVisibility(t *testing.T) {
	// Two versions of one key at seq 5 and 10.
	uk := []byte("k")
	entries := []kv{
		{key: base.MakeInternalKey(uk, 10, base.KindSet), value: []byte("new")},
		{key: base.MakeInternalKey(uk, 5, base.KindSet), value: []byte("old")},
	}
	r := buildTable(t, entries, WriterOptions{}, ReaderOptions{})

	v, _, err := r.Get(uk, 20)
	if err != nil || string(v) != "new" {
		t.Fatalf("seq 20: %q %v", v, err)
	}
	v, _, err = r.Get(uk, 7)
	if err != nil || string(v) != "old" {
		t.Fatalf("seq 7: %q %v", v, err)
	}
	if _, _, err := r.Get(uk, 3); !errors.Is(err, ErrNotFound) {
		t.Fatalf("seq 3 should see nothing: %v", err)
	}
}

func TestTombstoneReturnedNotHidden(t *testing.T) {
	uk := []byte("k")
	entries := []kv{
		{key: base.MakeInternalKey(uk, 10, base.KindDelete)},
		{key: base.MakeInternalKey(uk, 5, base.KindSet), value: []byte("old")},
	}
	r := buildTable(t, entries, WriterOptions{}, ReaderOptions{})
	v, kind, err := r.Get(uk, 20)
	if err != nil {
		t.Fatal(err)
	}
	if kind != base.KindDelete || v != nil {
		t.Fatalf("tombstone not surfaced: kind=%v v=%q", kind, v)
	}
}

func TestIteratorFullScanAndSeek(t *testing.T) {
	entries := makeEntries(3000, 1)
	r := buildTable(t, entries, WriterOptions{BlockSize: 512}, ReaderOptions{})

	it := r.NewIter()
	i := 0
	for ok := it.First(); ok; ok = it.Next() {
		if !bytes.Equal(it.Key(), entries[i].key) {
			t.Fatalf("scan position %d mismatch", i)
		}
		i++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if i != len(entries) {
		t.Fatalf("scanned %d of %d", i, len(entries))
	}

	// Seek to each 97th key.
	for j := 0; j < 3000; j += 97 {
		target := base.SearchKey([]byte(fmt.Sprintf("key-%06d", j)), base.MaxSeqNum)
		if !it.SeekGE(target) {
			t.Fatalf("SeekGE(%d) invalid", j)
		}
		if !bytes.Equal(base.UserKey(it.Key()), []byte(fmt.Sprintf("key-%06d", j))) {
			t.Fatalf("SeekGE(%d) landed on %s", j, base.UserKey(it.Key()))
		}
	}
	// Seek past the end.
	if it.SeekGE(base.SearchKey([]byte("zzz"), base.MaxSeqNum)) {
		t.Fatal("SeekGE past end returned an entry")
	}
}

func TestBloomFilterSkipsMissing(t *testing.T) {
	entries := makeEntries(10_000, 1)
	c := cache.New(1 << 20)
	r := buildTable(t, entries, WriterOptions{BloomBitsPerKey: 10}, ReaderOptions{Cache: c, FileNum: 1})

	// Misses should mostly be answered by the filter without block reads.
	for i := 0; i < 2000; i++ {
		uk := []byte(fmt.Sprintf("absent-%06d", i))
		if _, _, err := r.Get(uk, 100); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Get(%s): %v", uk, err)
		}
	}
	_, misses := c.Stats()
	// Without a filter every one of the 2000 misses would read a block;
	// with 10 bits/key the false-positive rate is ~1%.
	if misses > 100 {
		t.Fatalf("bloom filter ineffective: %d block-cache misses for absent keys", misses)
	}
}

func TestBloomDisabled(t *testing.T) {
	entries := makeEntries(100, 1)
	r := buildTable(t, entries, WriterOptions{BloomBitsPerKey: -1}, ReaderOptions{})
	if _, _, err := r.Get([]byte("key-000050"), 100); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Get([]byte("absent"), 100); !errors.Is(err, ErrNotFound) {
		t.Fatal(err)
	}
}

func TestOutOfOrderRejected(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("t.sst")
	w := NewWriter(f, WriterOptions{})
	if err := w.Add(base.MakeInternalKey([]byte("b"), 1, base.KindSet), nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(base.MakeInternalKey([]byte("a"), 1, base.KindSet), nil); err == nil {
		t.Fatal("out-of-order key accepted")
	}
}

func TestProperties(t *testing.T) {
	entries := makeEntries(500, 1)
	entries = append(entries, kv{key: base.MakeInternalKey([]byte("zzz"), 1, base.KindDelete)})
	r := buildTable(t, entries, WriterOptions{}, ReaderOptions{})
	p := r.Properties()
	if p.NumEntries != 501 || p.NumDeletes != 1 {
		t.Fatalf("props: %+v", p)
	}
	if p.DataBlocks == 0 {
		t.Fatalf("no data blocks recorded: %+v", p)
	}
}

func TestCorruptFooterRejected(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("t.sst")
	w := NewWriter(f, WriterOptions{})
	w.Add(base.MakeInternalKey([]byte("a"), 1, base.KindSet), []byte("v"))
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	data, _ := vfs.ReadFile(fs, "t.sst")
	data[len(data)-1] ^= 0xff // clobber the magic
	vfs.WriteFile(fs, "t.sst", data)

	raf, _ := fs.Open("t.sst")
	defer raf.Close()
	if _, err := NewReader(raf, ReaderOptions{}); err == nil {
		t.Fatal("corrupt footer accepted")
	}
}

func TestBlockCacheServesRepeatReads(t *testing.T) {
	entries := makeEntries(2000, 1)
	c := cache.New(4 << 20)
	r := buildTable(t, entries, WriterOptions{}, ReaderOptions{Cache: c, FileNum: 7})
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < 2000; i += 100 {
			uk := []byte(fmt.Sprintf("key-%06d", i))
			if _, _, err := r.Get(uk, 100); err != nil {
				t.Fatal(err)
			}
		}
	}
	hits, _ := c.Stats()
	if hits == 0 {
		t.Fatal("block cache never hit")
	}
}

func TestRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	model := make(map[string]string)
	var entries []kv
	for i := 0; i < 3000; i++ {
		uk := fmt.Sprintf("k%06d", i)
		v := fmt.Sprintf("v%d", rng.Int63())
		model[uk] = v
		entries = append(entries, kv{
			key:   base.MakeInternalKey([]byte(uk), base.SeqNum(i+1), base.KindSet),
			value: []byte(v),
		})
	}
	r := buildTable(t, entries, WriterOptions{BlockSize: 1024}, ReaderOptions{})
	for uk, want := range model {
		v, _, err := r.Get([]byte(uk), base.MaxSeqNum)
		if err != nil {
			t.Fatalf("Get(%s): %v", uk, err)
		}
		if string(v) != want {
			t.Fatalf("Get(%s) = %q want %q", uk, v, want)
		}
	}
}
