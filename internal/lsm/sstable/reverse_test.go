package sstable

import (
	"bytes"
	"fmt"
	"testing"

	"shield/internal/lsm/base"
	"shield/internal/vfs"
)

// TestIterReverseOps covers SeekLT/Last on the table iterator across block
// boundaries.
func TestIterReverseOps(t *testing.T) {
	fs := vfs.NewMem()
	f, err := fs.Create("t.sst")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f, WriterOptions{BlockSize: 256}) // many small blocks
	const n = 500
	for i := 0; i < n; i += 2 { // even keys only
		ik := base.MakeInternalKey([]byte(fmt.Sprintf("k%06d", i)), 1, base.KindSet)
		if err := w.Add(ik, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	raf, _ := fs.Open("t.sst")
	r, err := NewReader(raf, ReaderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	it := r.NewIter()

	if !it.Last() {
		t.Fatal("Last failed")
	}
	if got := string(base.UserKey(it.Key())); got != fmt.Sprintf("k%06d", n-2) {
		t.Fatalf("Last = %q", got)
	}

	mk := func(i int) []byte {
		return base.MakeInternalKey([]byte(fmt.Sprintf("k%06d", i)), base.MaxSeqNum, base.KindSet)
	}
	// Exact key: previous entry.
	if !it.SeekLT(mk(100)) || !bytes.Equal(base.UserKey(it.Key()), []byte("k000098")) {
		t.Fatalf("SeekLT(exact) = %q", base.UserKey(it.Key()))
	}
	// Between keys.
	if !it.SeekLT(mk(101)) || !bytes.Equal(base.UserKey(it.Key()), []byte("k000100")) {
		t.Fatalf("SeekLT(between) = %q", base.UserKey(it.Key()))
	}
	// Before the first.
	if it.SeekLT(mk(0)) {
		t.Fatalf("SeekLT(first) = %q", base.UserKey(it.Key()))
	}
	// Past the end.
	if !it.SeekLT(mk(10_000)) || !bytes.Equal(base.UserKey(it.Key()), []byte(fmt.Sprintf("k%06d", n-2))) {
		t.Fatalf("SeekLT(past end) = %q", base.UserKey(it.Key()))
	}
	// Block-boundary sweep: every even key's predecessor is key-2.
	for i := 2; i < n; i += 2 {
		if !it.SeekLT(mk(i)) {
			t.Fatalf("SeekLT(%d) invalid", i)
		}
		want := fmt.Sprintf("k%06d", i-2)
		if got := string(base.UserKey(it.Key())); got != want {
			t.Fatalf("SeekLT(%d) = %q want %q", i, got, want)
		}
	}
}
