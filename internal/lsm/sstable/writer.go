// Package sstable implements the Sorted String Table file format: 4 KiB
// data blocks of internal-key/value entries, a bloom filter over user keys,
// an index block mapping last-keys to block handles, a properties block, and
// a fixed footer.
//
// The package is encryption-agnostic by design: it writes through a
// vfs.WritableFile and reads through a vfs.RandomAccessFile, and the caller
// (the SHIELD codec in internal/core) supplies wrappers that encrypt the
// body and carry the plaintext DEK-ID header. Block granularity is what
// makes SHIELD's chunked, multi-threaded compaction encryption possible.
package sstable

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"

	"shield/internal/lsm/base"
	"shield/internal/vfs"
)

// Footer layout: indexHandle(16) filterHandle(16) propsHandle(16) magic(8),
// all little-endian fixed width.
const (
	footerLen       = 16*3 + 8
	blockTrailerLen = 4                  // CRC-32C of payload + type byte
	tableMagic      = 0x5353544253484c44 // "SSTBSHLD"
	defaultBits     = 10

	// Block type bytes, stored between payload and checksum.
	rawBlock   = 0
	flateBlock = 1
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Compression selects the data-block compression codec. Compression runs
// before encryption on the write path (ciphertext does not compress), the
// same pipeline order production LSM stores use.
type Compression uint8

// Compression codecs.
const (
	NoCompression Compression = iota
	FlateCompression
)

// WriterOptions configures table construction.
type WriterOptions struct {
	// BlockSize is the uncompressed data-block flush threshold (default 4096).
	BlockSize int

	// BloomBitsPerKey sizes the filter (default 10); 0 keeps the default,
	// negative disables the filter.
	BloomBitsPerKey int

	// Compression compresses data blocks (metadata blocks stay raw). A
	// compressed block that does not shrink is stored raw.
	Compression Compression

	// PrefixExtractor, when non-nil, adds a second bloom filter over the
	// distinct extractor prefixes of the table's user keys, sized by
	// BloomBitsPerKey. The filter block's handle is recorded in the JSON
	// properties (not the fixed footer), so files without one — and readers
	// that predate it — interoperate unchanged.
	PrefixExtractor func(userKey []byte) []byte
}

func (o WriterOptions) withDefaults() WriterOptions {
	if o.BlockSize <= 0 {
		o.BlockSize = 4096
	}
	if o.BloomBitsPerKey == 0 {
		o.BloomBitsPerKey = defaultBits
	}
	return o
}

// Properties summarizes a table; serialized as JSON in the properties block.
// Unknown fields are ignored on decode, so the block doubles as the format's
// forward-compatible extension point (the footer's handle slots are fixed).
type Properties struct {
	NumEntries  uint64 `json:"num_entries"`
	NumDeletes  uint64 `json:"num_deletes"`
	RawKeyBytes uint64 `json:"raw_key_bytes"`
	RawValBytes uint64 `json:"raw_val_bytes"`
	DataBlocks  uint64 `json:"data_blocks"`

	// PrefixFilterOffset/Len locate the optional prefix bloom filter block;
	// both zero when the table carries none.
	PrefixFilterOffset uint64 `json:"prefix_filter_offset,omitempty"`
	PrefixFilterLen    uint64 `json:"prefix_filter_len,omitempty"`
}

// Writer builds one SST file. Keys must be added in strictly increasing
// internal-key order.
type Writer struct {
	f            vfs.WritableFile
	opts         WriterOptions
	block        blockBuilder
	index        blockBuilder
	filter       *bloomFilter
	prefixFilter *prefixBloomFilter
	props        Properties

	offset   uint64
	smallest []byte
	largest  []byte
	lastKey  []byte
	closed   bool
}

// NewWriter begins a table on f.
func NewWriter(f vfs.WritableFile, opts WriterOptions) *Writer {
	opts = opts.withDefaults()
	w := &Writer{f: f, opts: opts}
	if opts.BloomBitsPerKey > 0 {
		w.filter = newBloomFilter(opts.BloomBitsPerKey)
		if opts.PrefixExtractor != nil {
			w.prefixFilter = newPrefixBloomFilter(opts.BloomBitsPerKey)
		}
	}
	return w
}

// Add appends one internal-key/value entry.
func (w *Writer) Add(ikey, value []byte) error {
	if w.closed {
		return fmt.Errorf("sstable: writer closed")
	}
	if w.lastKey != nil && base.CompareInternal(ikey, w.lastKey) <= 0 {
		return fmt.Errorf("sstable: keys out of order")
	}
	w.lastKey = append(w.lastKey[:0], ikey...)
	if w.smallest == nil {
		w.smallest = append([]byte(nil), ikey...)
	}
	w.largest = append(w.largest[:0], ikey...)

	w.block.add(ikey, value)
	if w.filter != nil {
		w.filter.add(base.UserKey(ikey))
	}
	if w.prefixFilter != nil {
		w.prefixFilter.addPrefix(w.opts.PrefixExtractor(base.UserKey(ikey)))
	}
	w.props.NumEntries++
	if _, kind := base.DecodeTrailer(ikey); kind == base.KindDelete {
		w.props.NumDeletes++
	}
	w.props.RawKeyBytes += uint64(len(ikey))
	w.props.RawValBytes += uint64(len(value))

	if w.block.sizeEstimate() >= w.opts.BlockSize {
		return w.flushBlock()
	}
	return nil
}

func (w *Writer) flushBlock() error {
	if w.block.empty() {
		return nil
	}
	data := w.block.finish()
	blockType := byte(rawBlock)
	if w.opts.Compression == FlateCompression {
		if compressed, ok := flateCompress(data); ok {
			data = compressed
			blockType = flateBlock
		}
	}
	handle, err := w.writeBlock(data, blockType)
	if err != nil {
		return err
	}
	w.index.add(w.block.lastKey, handle.encode())
	w.props.DataBlocks++
	w.block.reset()
	return nil
}

// flateCompress returns the DEFLATE encoding of data when it actually
// shrinks the block.
func flateCompress(data []byte) ([]byte, bool) {
	var buf bytes.Buffer
	fw, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return nil, false
	}
	if _, err := fw.Write(data); err != nil {
		return nil, false
	}
	if err := fw.Close(); err != nil {
		return nil, false
	}
	if buf.Len() >= len(data) {
		return nil, false
	}
	return buf.Bytes(), true
}

// writeRaw stores an uncompressed block.
func (w *Writer) writeRaw(data []byte) (blockHandle, error) {
	return w.writeBlock(data, rawBlock)
}

// writeBlock stores one block as payload, a type byte, and a CRC-32C over
// both. The checksum gives end-to-end integrity — it is the "optional
// integrity check" layer of the encryption pipeline: CTR mode is malleable,
// and the checksum (computed over the stored bytes, itself inside the
// encrypted body) detects both media corruption and ciphertext tampering.
func (w *Writer) writeBlock(data []byte, blockType byte) (blockHandle, error) {
	h := blockHandle{offset: w.offset, length: uint64(len(data)) + 1 + blockTrailerLen}
	var tail [1 + blockTrailerLen]byte
	tail[0] = blockType
	crc := crc32.Checksum(data, castagnoli)
	crc = crc32.Update(crc, castagnoli, tail[:1])
	binary.LittleEndian.PutUint32(tail[1:], crc)
	if err := vfs.WriteFull(w.f, data); err != nil {
		return blockHandle{}, err
	}
	if err := vfs.WriteFull(w.f, tail[:]); err != nil {
		return blockHandle{}, err
	}
	w.offset += h.length
	return h, nil
}

// Abort discards an unfinished table: it closes the underlying file without
// writing index or footer, so a caller recovering from a mid-build failure
// (ENOSPC on an output, a failed compaction) can release the handle and then
// remove the partial file. Safe to call after Finish, where it is a no-op.
func (w *Writer) Abort() error {
	if w.closed {
		return nil
	}
	w.closed = true
	return w.f.Close()
}

// EstimatedSize returns the bytes written so far plus the pending block.
func (w *Writer) EstimatedSize() uint64 {
	return w.offset + uint64(w.block.sizeEstimate())
}

// NumEntries returns the number of entries added.
func (w *Writer) NumEntries() uint64 { return w.props.NumEntries }

// Smallest and Largest return copies of the bounding internal keys; valid
// after at least one Add.
func (w *Writer) Smallest() []byte { return append([]byte(nil), w.smallest...) }

// Largest returns the largest internal key added.
func (w *Writer) Largest() []byte { return append([]byte(nil), w.largest...) }

// Finish flushes remaining data, writes filter/index/properties/footer, and
// closes the file. The Writer is unusable afterwards.
func (w *Writer) Finish() error {
	if w.closed {
		return fmt.Errorf("sstable: writer closed")
	}
	w.closed = true
	if err := w.flushBlock(); err != nil {
		w.f.Close()
		return err
	}

	var filterHandle blockHandle
	if w.filter != nil {
		var err error
		filterHandle, err = w.writeRaw(w.filter.build())
		if err != nil {
			w.f.Close()
			return err
		}
	}

	// The prefix filter block precedes the properties block that locates it.
	if w.prefixFilter != nil {
		h, err := w.writeRaw(w.prefixFilter.build())
		if err != nil {
			w.f.Close()
			return err
		}
		w.props.PrefixFilterOffset = h.offset
		w.props.PrefixFilterLen = h.length
	}

	indexHandle, err := w.writeRaw(w.index.finish())
	if err != nil {
		w.f.Close()
		return err
	}

	propsJSON, err := json.Marshal(w.props)
	if err != nil {
		w.f.Close()
		return err
	}
	propsHandle, err := w.writeRaw(propsJSON)
	if err != nil {
		w.f.Close()
		return err
	}

	var footer [footerLen]byte
	putHandle := func(off int, h blockHandle) {
		binary.LittleEndian.PutUint64(footer[off:], h.offset)
		binary.LittleEndian.PutUint64(footer[off+8:], h.length)
	}
	putHandle(0, indexHandle)
	putHandle(16, filterHandle)
	putHandle(32, propsHandle)
	binary.LittleEndian.PutUint64(footer[48:], tableMagic)
	if err := vfs.WriteFull(w.f, footer[:]); err != nil {
		w.f.Close()
		return err
	}
	w.offset += footerLen

	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// FileSize returns the final size after Finish.
func (w *Writer) FileSize() uint64 { return w.offset }
