package sstable

import (
	"bytes"
	"fmt"
	"testing"

	"shield/internal/lsm/base"
	"shield/internal/vfs"
)

// TestCompressionRoundTrip: compressed tables read identically and are
// smaller for compressible data.
func TestCompressionRoundTrip(t *testing.T) {
	build := func(c Compression) (*Reader, int64) {
		fs := vfs.NewMem()
		f, err := fs.Create("t.sst")
		if err != nil {
			t.Fatal(err)
		}
		w := NewWriter(f, WriterOptions{Compression: c})
		for i := 0; i < 3000; i++ {
			ik := base.MakeInternalKey([]byte(fmt.Sprintf("key-%06d", i)), 1, base.KindSet)
			// Highly compressible values.
			if err := w.Add(ik, bytes.Repeat([]byte("abcd"), 25)); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Finish(); err != nil {
			t.Fatal(err)
		}
		info, err := fs.Stat("t.sst")
		if err != nil {
			t.Fatal(err)
		}
		raf, err := fs.Open("t.sst")
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(raf, ReaderOptions{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { r.Close() })
		return r, info.Size
	}

	plain, plainSize := build(NoCompression)
	comp, compSize := build(FlateCompression)

	if compSize >= plainSize {
		t.Fatalf("compression did not shrink the table: %d vs %d", compSize, plainSize)
	}
	t.Logf("table size: raw=%d flate=%d (%.0f%%)", plainSize, compSize,
		float64(compSize)/float64(plainSize)*100)

	for i := 0; i < 3000; i += 37 {
		uk := []byte(fmt.Sprintf("key-%06d", i))
		v1, _, err1 := plain.Get(uk, 100)
		v2, _, err2 := comp.Get(uk, 100)
		if err1 != nil || err2 != nil {
			t.Fatalf("gets: %v %v", err1, err2)
		}
		if !bytes.Equal(v1, v2) {
			t.Fatalf("compressed read differs at %s", uk)
		}
	}

	// Full scans agree.
	it1, it2 := plain.NewIter(), comp.NewIter()
	ok1, ok2 := it1.First(), it2.First()
	for ok1 && ok2 {
		if !bytes.Equal(it1.Key(), it2.Key()) || !bytes.Equal(it1.Value(), it2.Value()) {
			t.Fatal("scan mismatch")
		}
		ok1, ok2 = it1.Next(), it2.Next()
	}
	if ok1 != ok2 {
		t.Fatal("scan lengths differ")
	}
}

// TestIncompressibleStaysRaw: blocks that do not shrink are stored raw
// (no expansion, still readable).
func TestIncompressibleStaysRaw(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("t.sst")
	w := NewWriter(f, WriterOptions{Compression: FlateCompression})
	// Pseudo-random (incompressible) values.
	val := make([]byte, 100)
	seed := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < 1000; i++ {
		for j := range val {
			seed = seed*6364136223846793005 + 1442695040888963407
			val[j] = byte(seed >> 56)
		}
		ik := base.MakeInternalKey([]byte(fmt.Sprintf("key-%06d", i)), 1, base.KindSet)
		if err := w.Add(ik, val); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	raf, _ := fs.Open("t.sst")
	r, err := NewReader(raf, ReaderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, _, err := r.Get([]byte("key-000500"), 100); err != nil {
		t.Fatal(err)
	}
}
