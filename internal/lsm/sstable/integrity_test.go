package sstable

import (
	"errors"
	"fmt"
	"testing"

	"shield/internal/lsm/base"
	"shield/internal/vfs"
)

// TestBlockCorruptionDetected: flipping any data byte inside a block makes
// reads of that block fail with a checksum error instead of returning
// garbage — the integrity property layered under encryption (CTR is
// malleable; the CRC inside the encrypted body detects tampering).
func TestBlockCorruptionDetected(t *testing.T) {
	fs := vfs.NewMem()
	f, err := fs.Create("t.sst")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f, WriterOptions{BlockSize: 512})
	const n = 1000
	for i := 0; i < n; i++ {
		ik := base.MakeInternalKey([]byte(fmt.Sprintf("key-%06d", i)), 1, base.KindSet)
		if err := w.Add(ik, []byte(fmt.Sprintf("value-%06d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}

	data, err := vfs.ReadFile(fs, "t.sst")
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte early in the file (inside the first data block).
	data[10] ^= 0x01
	if err := vfs.WriteFile(fs, "t.sst", data); err != nil {
		t.Fatal(err)
	}

	raf, err := fs.Open("t.sst")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(raf, ReaderOptions{})
	if err != nil {
		t.Fatal(err) // index/footer untouched; open succeeds
	}
	defer r.Close()

	// A key in the corrupted block must error (not silently mis-read).
	_, _, err = r.Get([]byte("key-000000"), 100)
	if err == nil {
		t.Fatal("read from corrupted block succeeded")
	}
	if errors.Is(err, ErrNotFound) {
		t.Fatalf("corruption reported as not-found: %v", err)
	}
	// A key in a later, intact block still reads fine.
	if _, _, err := r.Get([]byte(fmt.Sprintf("key-%06d", n-1)), 100); err != nil {
		t.Fatalf("intact block unreadable: %v", err)
	}

	// A full scan surfaces the corruption through the iterator error.
	it := r.NewIter()
	for ok := it.First(); ok; ok = it.Next() {
	}
	if it.Err() == nil {
		t.Fatal("iterator scanned through corruption without error")
	}
}

// TestIndexCorruptionDetected: damage to the index block fails open().
func TestIndexCorruptionDetected(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("t.sst")
	w := NewWriter(f, WriterOptions{})
	w.Add(base.MakeInternalKey([]byte("a"), 1, base.KindSet), []byte("v"))
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	data, _ := vfs.ReadFile(fs, "t.sst")
	// The index block sits between the filter and the footer; flip a byte
	// a little before the properties+footer region.
	data[len(data)-footerLen-20] ^= 0xff
	vfs.WriteFile(fs, "t.sst", data)

	raf, _ := fs.Open("t.sst")
	defer raf.Close()
	if _, err := NewReader(raf, ReaderOptions{}); err == nil {
		t.Fatal("reader opened a table with corrupt metadata")
	}
}
