package sstable

import "bytes"

// Bloom filter over user keys, the LevelDB construction: k probes derived
// from a single hash via double hashing with a rotated delta.

// bloomHash is LevelDB's murmur-inspired byte-slice hash.
func bloomHash(b []byte) uint32 {
	const (
		seed = 0xbc9f1d34
		m    = 0xc6a4a793
	)
	h := uint32(seed) ^ uint32(len(b))*m
	for ; len(b) >= 4; b = b[4:] {
		h += uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
		h *= m
		h ^= h >> 16
	}
	switch len(b) {
	case 3:
		h += uint32(b[2]) << 16
		fallthrough
	case 2:
		h += uint32(b[1]) << 8
		fallthrough
	case 1:
		h += uint32(b[0])
		h *= m
		h ^= h >> 24
	}
	return h
}

// bloomFilter builds a filter for a set of keys at bitsPerKey.
type bloomFilter struct {
	bitsPerKey int
	k          int
	hashes     []uint32
}

func newBloomFilter(bitsPerKey int) *bloomFilter {
	k := bitsPerKey * 69 / 100 // bitsPerKey * ln(2)
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	return &bloomFilter{bitsPerKey: bitsPerKey, k: k}
}

func (f *bloomFilter) add(key []byte) {
	f.hashes = append(f.hashes, bloomHash(key))
}

// build serializes the filter: bit array followed by one byte holding k.
func (f *bloomFilter) build() []byte {
	nBits := len(f.hashes) * f.bitsPerKey
	if nBits < 64 {
		nBits = 64
	}
	nBytes := (nBits + 7) / 8
	nBits = nBytes * 8
	out := make([]byte, nBytes+1)
	out[nBytes] = byte(f.k)
	for _, h := range f.hashes {
		delta := h>>17 | h<<15
		for j := 0; j < f.k; j++ {
			pos := h % uint32(nBits)
			out[pos/8] |= 1 << (pos % 8)
			h += delta
		}
	}
	return out
}

// prefixBloomFilter is the prefix variant: a bloom over the distinct
// extractor prefixes of a table's keys, serialized in the same wire format
// as the whole-key filter (so bloomMayContain tests both). Keys arrive in
// sorted order and prefix-sharing keys are contiguous, so deduplicating
// against the previous prefix is exact — the filter holds one hash per
// distinct prefix, keeping its false-positive rate at the configured
// bits-per-key regardless of how many keys share a prefix.
type prefixBloomFilter struct {
	bloomFilter
	last    []byte
	started bool
}

func newPrefixBloomFilter(bitsPerKey int) *prefixBloomFilter {
	return &prefixBloomFilter{bloomFilter: *newBloomFilter(bitsPerKey)}
}

// addPrefix records a prefix; consecutive duplicates are dropped.
func (f *prefixBloomFilter) addPrefix(p []byte) {
	if f.started && bytes.Equal(f.last, p) {
		return
	}
	f.started = true
	f.last = append(f.last[:0], p...)
	f.add(p)
}

// bloomMayContain tests key against a serialized filter. An empty filter
// matches everything (filters are optional).
func bloomMayContain(filter, key []byte) bool {
	if len(filter) < 2 {
		return true
	}
	nBytes := len(filter) - 1
	nBits := uint32(nBytes * 8)
	k := int(filter[nBytes])
	if k > 30 {
		return true // reserved encoding: treat as always-match
	}
	h := bloomHash(key)
	delta := h>>17 | h<<15
	for j := 0; j < k; j++ {
		pos := h % nBits
		if filter[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
		h += delta
	}
	return true
}
