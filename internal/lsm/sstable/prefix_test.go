package sstable

import (
	"fmt"
	"testing"

	"shield/internal/cache"
	"shield/internal/lsm/base"
	"shield/internal/vfs"
)

func firstN(n int) func([]byte) []byte {
	return func(k []byte) []byte {
		if len(k) < n {
			return k
		}
		return k[:n]
	}
}

// TestPrefixBloomRoundTrip writes a table with a prefix extractor and checks
// that the reader's prefix filter admits every present prefix and rejects
// (almost all) absent ones.
func TestPrefixBloomRoundTrip(t *testing.T) {
	fs := vfs.NewMem()
	f, err := fs.Create("t.sst")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f, WriterOptions{PrefixExtractor: firstN(4)})
	const prefixes, perPrefix = 50, 20
	for p := 0; p < prefixes; p++ {
		for i := 0; i < perPrefix; i++ {
			ik := base.MakeInternalKey([]byte(fmt.Sprintf("p%02d-%04d", p, i)), 1, base.KindSet)
			if err := w.Add(ik, []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}

	rf, err := fs.Open("t.sst")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(rf, ReaderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	props := r.Properties()
	if props.PrefixFilterLen == 0 {
		t.Fatal("table carries no prefix filter despite extractor")
	}
	for p := 0; p < prefixes; p++ {
		if !r.MayContainPrefix([]byte(fmt.Sprintf("p%02d-", p))) {
			t.Fatalf("false negative for present prefix p%02d-", p)
		}
	}
	falsePos := 0
	const absent = 1000
	for p := 0; p < absent; p++ {
		if r.MayContainPrefix([]byte(fmt.Sprintf("q%03d", p))) {
			falsePos++
		}
	}
	// 10 bits/key targets ~1% FP; the filter holds one hash per distinct
	// prefix, so allow a generous 5%.
	if falsePos > absent/20 {
		t.Fatalf("%d/%d false positives: filter sized per key instead of per distinct prefix?", falsePos, absent)
	}
}

// TestNoPrefixFilterAlwaysMatches: tables written without an extractor (all
// pre-existing files, and every compaction output) must answer true.
func TestNoPrefixFilterAlwaysMatches(t *testing.T) {
	fs := vfs.NewMem()
	f, err := fs.Create("t.sst")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f, WriterOptions{})
	ik := base.MakeInternalKey([]byte("key"), 1, base.KindSet)
	if err := w.Add(ik, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	rf, err := fs.Open("t.sst")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(rf, ReaderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Properties().PrefixFilterLen != 0 {
		t.Fatal("extractor-less table grew a prefix filter")
	}
	for _, p := range []string{"key", "zzz", ""} {
		if !r.MayContainPrefix([]byte(p)) {
			t.Fatalf("filter-less table rejected prefix %q", p)
		}
	}
}

// TestPrefixFilterDedup: the prefix filter holds one probe set per distinct
// prefix. Many keys sharing one prefix must not blow up the filter block —
// it should be roughly the size of a filter over ONE key.
func TestPrefixFilterDedup(t *testing.T) {
	build := func(perPrefix int) uint64 {
		fs := vfs.NewMem()
		f, _ := fs.Create("t.sst")
		w := NewWriter(f, WriterOptions{PrefixExtractor: firstN(4)})
		for i := 0; i < perPrefix; i++ {
			ik := base.MakeInternalKey([]byte(fmt.Sprintf("aaaa%06d", i)), 1, base.KindSet)
			if err := w.Add(ik, []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Finish(); err != nil {
			t.Fatal(err)
		}
		return w.props.PrefixFilterLen
	}
	one, many := build(1), build(5000)
	if many != one {
		t.Fatalf("prefix filter grew with per-prefix key count: 1 key -> %d bytes, 5000 keys -> %d bytes", one, many)
	}
}

// TestPinnedReaderChargesCache: PinMeta/PinData route a table's metadata and
// data blocks into the cache's pinned class.
func TestPinnedReaderChargesCache(t *testing.T) {
	fs := vfs.NewMem()
	f, err := fs.Create("t.sst")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f, WriterOptions{PrefixExtractor: firstN(2), BlockSize: 256})
	for i := 0; i < 200; i++ {
		ik := base.MakeInternalKey([]byte(fmt.Sprintf("k%06d", i)), 1, base.KindSet)
		if err := w.Add(ik, []byte(fmt.Sprintf("value-%06d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}

	c := cache.New(1 << 20)
	rf, err := fs.Open("t.sst")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(rf, ReaderOptions{Cache: c, FileNum: 9, PinMeta: true, PinData: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	metaPinned := c.Pinned()
	if metaPinned == 0 {
		t.Fatal("PinMeta pinned nothing at open")
	}
	// Read every block; with PinData all data blocks join the pinned class.
	if _, _, err := r.Get([]byte("k000000"), 100); err != nil {
		t.Fatal(err)
	}
	it := r.NewIter()
	for ok := it.First(); ok; ok = it.Next() {
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if got := c.Pinned(); got <= metaPinned {
		t.Fatalf("data-block reads left pinned charge at %d (meta alone was %d)", got, metaPinned)
	}
}
