package sstable

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"

	"shield/internal/cache"
	"shield/internal/lsm/base"
	"shield/internal/vfs"
)

// ErrNotFound reports that a key is absent from the table.
var ErrNotFound = fmt.Errorf("sstable: not found")

// ErrCorruption is wrapped by every error that indicates the file's bytes are
// wrong (truncated footer, bad magic, checksum mismatch) rather than an I/O
// failure, so recovery and scrub can classify with errors.Is.
var ErrCorruption = fmt.Errorf("sstable: corruption")

// ReaderOptions configures table reads.
type ReaderOptions struct {
	// Cache, when non-nil, caches decoded (decrypted) data blocks keyed by
	// (FileNum, block offset).
	Cache *cache.LRU

	// FileNum identifies this table in the cache keyspace.
	FileNum uint64

	// PinMeta charges the eagerly loaded index, filter, and prefix-filter
	// bytes to the cache's pinned class. The metadata blocks sit at their
	// own file offsets, so the pins share the data-block keyspace without
	// collision and EvictFile releases them with the rest of the file.
	PinMeta bool

	// PinData inserts this table's data blocks into the pinned class instead
	// of the LRU class — set for L0 files under the engine's PinL0AndMeta.
	PinData bool
}

// Reader provides lookups and iteration over one SST file.
type Reader struct {
	f     vfs.RandomAccessFile
	opts  ReaderOptions
	index []indexEntry
	// filter is the serialized bloom filter (may be nil).
	filter []byte
	// prefixFilter is the serialized prefix bloom filter (nil when the file
	// carries none — older files, or no extractor at write time).
	prefixFilter []byte
	props        Properties
}

type indexEntry struct {
	lastKey []byte
	handle  blockHandle
}

// NewReader opens the table stored in f. The entire index, filter, and
// properties are loaded eagerly; data blocks are read on demand.
func NewReader(f vfs.RandomAccessFile, opts ReaderOptions) (*Reader, error) {
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	if size < footerLen {
		return nil, fmt.Errorf("%w: file too small (%d bytes)", ErrCorruption, size)
	}
	var footer [footerLen]byte
	if _, err := f.ReadAt(footer[:], size-footerLen); err != nil && err != io.EOF {
		return nil, fmt.Errorf("sstable: reading footer: %w", err)
	}
	if got := binary.LittleEndian.Uint64(footer[48:]); got != tableMagic {
		return nil, fmt.Errorf("%w: bad magic %#x (wrong key or corrupt file?)", ErrCorruption, got)
	}
	getHandle := func(off int) blockHandle {
		return blockHandle{
			offset: binary.LittleEndian.Uint64(footer[off:]),
			length: binary.LittleEndian.Uint64(footer[off+8:]),
		}
	}
	r := &Reader{f: f, opts: opts}

	indexHandle := getHandle(0)
	indexData, err := r.readRaw(indexHandle)
	if err != nil {
		return nil, fmt.Errorf("sstable: reading index: %w", err)
	}
	it := newBlockIter(indexData)
	for it.next() {
		h, err := decodeHandle(it.val)
		if err != nil {
			return nil, err
		}
		r.index = append(r.index, indexEntry{
			lastKey: append([]byte(nil), it.key...),
			handle:  h,
		})
	}
	if it.err != nil {
		return nil, it.err
	}

	filterHandle := getHandle(16)
	if filterHandle.length > 0 {
		r.filter, err = r.readRaw(filterHandle)
		if err != nil {
			return nil, fmt.Errorf("sstable: reading filter: %w", err)
		}
	}
	propsData, err := r.readRaw(getHandle(32))
	if err != nil {
		return nil, fmt.Errorf("sstable: reading properties: %w", err)
	}
	if err := json.Unmarshal(propsData, &r.props); err != nil {
		return nil, fmt.Errorf("sstable: decoding properties: %w", err)
	}
	if r.props.PrefixFilterLen > 0 {
		h := blockHandle{offset: r.props.PrefixFilterOffset, length: r.props.PrefixFilterLen}
		r.prefixFilter, err = r.readRaw(h)
		if err != nil {
			return nil, fmt.Errorf("sstable: reading prefix filter: %w", err)
		}
	}

	if opts.PinMeta && opts.Cache != nil {
		// Charge the resident metadata to the pinned class under the blocks'
		// real file offsets: the cache budget then reflects the bytes these
		// tables hold in memory, and EvictFile releases the pins when the
		// file is deleted. The pinned values share r's slices — no copies.
		pin := func(off uint64, data []byte) {
			if len(data) > 0 {
				opts.Cache.PutPinned(cache.Key{File: opts.FileNum, Offset: off}, data, int64(len(data)))
			}
		}
		pin(indexHandle.offset, indexData)
		pin(filterHandle.offset, r.filter)
		pin(r.props.PrefixFilterOffset, r.prefixFilter)
	}
	return r, nil
}

// readRaw fetches a block, verifies its CRC-32C trailer (catching media
// corruption and — since the checksum lives inside the encrypted body —
// ciphertext tampering), and decompresses it if needed.
func (r *Reader) readRaw(h blockHandle) ([]byte, error) {
	if h.length == 0 {
		return nil, nil
	}
	if h.length < 1+blockTrailerLen {
		return nil, fmt.Errorf("%w: block handle too short (%d bytes)", ErrCorruption, h.length)
	}
	buf := make([]byte, h.length)
	if _, err := r.f.ReadAt(buf, int64(h.offset)); err != nil && err != io.EOF {
		return nil, err
	}
	checked := buf[:h.length-blockTrailerLen] // payload + type byte
	want := binary.LittleEndian.Uint32(buf[h.length-blockTrailerLen:])
	if got := crc32.Checksum(checked, castagnoli); got != want {
		return nil, fmt.Errorf("%w: block at %d fails checksum (media corruption or tampering)", ErrCorruption, h.offset)
	}
	data := checked[:len(checked)-1]
	switch checked[len(checked)-1] {
	case rawBlock:
		return data, nil
	case flateBlock:
		fr := flate.NewReader(bytes.NewReader(data))
		out, err := io.ReadAll(fr)
		if err != nil {
			return nil, fmt.Errorf("%w: decompressing block at %d: %v", ErrCorruption, h.offset, err)
		}
		return out, fr.Close()
	default:
		return nil, fmt.Errorf("%w: unknown block type %d at %d", ErrCorruption, checked[len(checked)-1], h.offset)
	}
}

// readBlock fetches a data block, consulting the block cache first.
func (r *Reader) readBlock(h blockHandle) ([]byte, error) {
	if r.opts.Cache != nil {
		if v, ok := r.opts.Cache.Get(cache.Key{File: r.opts.FileNum, Offset: h.offset}); ok {
			return v.([]byte), nil
		}
	}
	data, err := r.readRaw(h)
	if err != nil {
		return nil, err
	}
	if r.opts.Cache != nil {
		k := cache.Key{File: r.opts.FileNum, Offset: h.offset}
		if r.opts.PinData {
			r.opts.Cache.PutPinned(k, data, int64(len(data)))
		} else {
			r.opts.Cache.Put(k, data, int64(len(data)))
		}
	}
	return data, nil
}

// Properties returns the table's properties block.
func (r *Reader) Properties() Properties { return r.props }

// MayContainPrefix reports whether the table may hold a key with the given
// extractor prefix. Tables without a prefix filter (older files, compaction
// outputs) answer true — absence of the filter never causes a false skip.
func (r *Reader) MayContainPrefix(prefix []byte) bool {
	if r.prefixFilter == nil {
		return true
	}
	return bloomMayContain(r.prefixFilter, prefix)
}

// VerifyChecksums reads every data block, verifying each CRC-32C trailer
// (which for SHIELD files checks MAC-equivalent integrity of the decrypted
// payload). It bypasses the block cache so the bytes really come off storage,
// and returns the number of blocks verified. The first corruption aborts the
// walk with an ErrCorruption-wrapped error.
func (r *Reader) VerifyChecksums() (int64, error) {
	var n int64
	for _, e := range r.index {
		if _, err := r.readRaw(e.handle); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// Get returns the value and kind for the newest record of userKey visible at
// snapshot seq. Returns ErrNotFound when the table holds no such record
// (a tombstone is returned as KindDelete with a nil value, not ErrNotFound —
// the caller must stop searching older tables).
func (r *Reader) Get(userKey []byte, seq base.SeqNum) ([]byte, base.Kind, error) {
	if r.filter != nil && !bloomMayContain(r.filter, userKey) {
		return nil, 0, ErrNotFound
	}
	search := base.SearchKey(userKey, seq)
	// Binary-search the index for the first block whose last key >= search.
	lo, hi := 0, len(r.index)
	for lo < hi {
		mid := (lo + hi) / 2
		if base.CompareInternal(r.index[mid].lastKey, search) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.index) {
		return nil, 0, ErrNotFound
	}
	data, err := r.readBlock(r.index[lo].handle)
	if err != nil {
		return nil, 0, err
	}
	it := newBlockIter(data)
	if !it.seekGE(search) {
		if it.err != nil {
			return nil, 0, it.err
		}
		return nil, 0, ErrNotFound
	}
	if !bytes.Equal(base.UserKey(it.key), userKey) {
		return nil, 0, ErrNotFound
	}
	_, kind := base.DecodeTrailer(it.key)
	if kind == base.KindDelete {
		return nil, base.KindDelete, nil
	}
	return append([]byte(nil), it.val...), kind, nil
}

// Iter is a two-level iterator over the table's entries in internal-key
// order.
type Iter struct {
	r        *Reader
	blockIdx int
	bi       *blockIter
	err      error
}

// NewIter returns an iterator positioned before the first entry.
func (r *Reader) NewIter() *Iter { return &Iter{r: r, blockIdx: -1} }

// First positions at the smallest entry.
func (it *Iter) First() bool {
	it.blockIdx = -1
	it.bi = nil
	return it.nextBlock() && it.advance()
}

func (it *Iter) nextBlock() bool {
	it.blockIdx++
	if it.blockIdx >= len(it.r.index) {
		it.bi = nil
		return false
	}
	data, err := it.r.readBlock(it.r.index[it.blockIdx].handle)
	if err != nil {
		it.err = err
		it.bi = nil
		return false
	}
	it.bi = newBlockIter(data)
	return true
}

func (it *Iter) advance() bool {
	for {
		if it.bi == nil {
			return false
		}
		if it.bi.next() {
			return true
		}
		if it.bi.err != nil {
			it.err = it.bi.err
			return false
		}
		if !it.nextBlock() {
			return false
		}
	}
}

// Next advances to the following entry.
func (it *Iter) Next() bool { return it.advance() }

// SeekGE positions at the first entry with internal key >= target.
func (it *Iter) SeekGE(target []byte) bool {
	lo, hi := 0, len(it.r.index)
	for lo < hi {
		mid := (lo + hi) / 2
		if base.CompareInternal(it.r.index[mid].lastKey, target) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	it.blockIdx = lo - 1 // nextBlock will land on lo
	if !it.nextBlock() {
		return false
	}
	if it.bi.seekGE(target) {
		return true
	}
	if it.bi.err != nil {
		it.err = it.bi.err
		return false
	}
	// Target beyond this block's last key: continue into the next block.
	return it.nextBlock() && it.advance()
}

// SeekLT positions at the last entry with internal key < target. After
// SeekLT (or Last) only Key/Value/Valid are defined until the next
// positioning call; forward Next from a reverse position is unsupported.
func (it *Iter) SeekLT(target []byte) bool {
	// First block whose last key >= target may still hold keys < target.
	lo, hi := 0, len(it.r.index)
	for lo < hi {
		mid := (lo + hi) / 2
		if base.CompareInternal(it.r.index[mid].lastKey, target) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// Try block lo (its last key >= target, but it may start below target),
	// then fall back to block lo-1, which is entirely < target.
	if lo < len(it.r.index) {
		it.blockIdx = lo - 1
		if it.nextBlock() && it.bi.seekLT(target) {
			return true
		}
		if it.bi != nil && it.bi.err != nil {
			it.err = it.bi.err
			return false
		}
	}
	if lo == 0 {
		it.bi = nil
		return false
	}
	it.blockIdx = lo - 2 // nextBlock lands on lo-1
	if !it.nextBlock() {
		return false
	}
	if it.bi.last() {
		return true
	}
	if it.bi.err != nil {
		it.err = it.bi.err
	}
	it.bi = nil
	return false
}

// Last positions at the table's final entry (same caveats as SeekLT).
func (it *Iter) Last() bool {
	if len(it.r.index) == 0 {
		it.bi = nil
		return false
	}
	it.blockIdx = len(it.r.index) - 2 // nextBlock lands on the final block
	if !it.nextBlock() {
		return false
	}
	if it.bi.last() {
		return true
	}
	if it.bi.err != nil {
		it.err = it.bi.err
	}
	it.bi = nil
	return false
}

// Valid reports whether the iterator is positioned at an entry.
func (it *Iter) Valid() bool { return it.bi != nil && it.err == nil && it.bi.key != nil }

// Key returns the current internal key.
func (it *Iter) Key() []byte { return it.bi.key }

// Value returns the current value.
func (it *Iter) Value() []byte { return it.bi.val }

// Err returns the first error encountered.
func (it *Iter) Err() error { return it.err }

// Close releases the table's file handle.
func (r *Reader) Close() error { return r.f.Close() }
