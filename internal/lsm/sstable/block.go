package sstable

import (
	"encoding/binary"
	"fmt"

	"shield/internal/lsm/base"
)

// Data and index blocks share one entry format:
//
//	varint(keyLen) varint(valueLen) key value
//
// Entries are sorted by internal-key order. Blocks are the encryption chunk
// granularity of SHIELD's compaction path and the block-cache unit.

// blockBuilder accumulates sorted entries into one block.
type blockBuilder struct {
	buf     []byte
	count   int
	lastKey []byte
}

func (b *blockBuilder) add(key, value []byte) {
	var tmp [binary.MaxVarintLen32]byte
	n := binary.PutUvarint(tmp[:], uint64(len(key)))
	b.buf = append(b.buf, tmp[:n]...)
	n = binary.PutUvarint(tmp[:], uint64(len(value)))
	b.buf = append(b.buf, tmp[:n]...)
	b.buf = append(b.buf, key...)
	b.buf = append(b.buf, value...)
	b.count++
	b.lastKey = append(b.lastKey[:0], key...)
}

func (b *blockBuilder) sizeEstimate() int { return len(b.buf) }
func (b *blockBuilder) empty() bool       { return b.count == 0 }

func (b *blockBuilder) finish() []byte { return b.buf }

func (b *blockBuilder) reset() {
	b.buf = b.buf[:0]
	b.count = 0
}

// blockIter iterates the entries of one decoded block.
type blockIter struct {
	data []byte
	off  int
	key  []byte
	val  []byte
	err  error
}

func newBlockIter(data []byte) *blockIter {
	return &blockIter{data: data, off: -1}
}

// next decodes the entry at the current offset and advances. Returns false
// at the end of the block or on corruption (recorded in err).
func (it *blockIter) next() bool {
	if it.off < 0 {
		it.off = 0
	}
	if it.off >= len(it.data) {
		return false
	}
	klen, n := binary.Uvarint(it.data[it.off:])
	if n <= 0 {
		it.err = fmt.Errorf("sstable: corrupt block entry at %d", it.off)
		return false
	}
	it.off += n
	vlen, n := binary.Uvarint(it.data[it.off:])
	if n <= 0 {
		it.err = fmt.Errorf("sstable: corrupt block entry at %d", it.off)
		return false
	}
	it.off += n
	if it.off+int(klen)+int(vlen) > len(it.data) {
		it.err = fmt.Errorf("sstable: block entry overruns block")
		return false
	}
	it.key = it.data[it.off : it.off+int(klen)]
	it.off += int(klen)
	it.val = it.data[it.off : it.off+int(vlen)]
	it.off += int(vlen)
	return true
}

// seekGE positions at the first entry with internal key >= target. Returns
// false if no such entry exists in the block.
func (it *blockIter) seekGE(target []byte) bool {
	it.off = 0
	for it.next() {
		if base.CompareInternal(it.key, target) >= 0 {
			return true
		}
	}
	return false
}

// seekLT positions at the last entry with internal key < target (false if
// the block has none). Blocks are small, so a forward scan remembering the
// last qualifying entry suffices.
func (it *blockIter) seekLT(target []byte) bool {
	it.off = 0
	var lastKey, lastVal []byte
	found := false
	for it.next() {
		if base.CompareInternal(it.key, target) >= 0 {
			break
		}
		lastKey = append(lastKey[:0], it.key...)
		lastVal = append(lastVal[:0], it.val...)
		found = true
	}
	if it.err != nil || !found {
		return false
	}
	it.key, it.val = lastKey, lastVal
	return true
}

// last positions at the block's final entry.
func (it *blockIter) last() bool {
	it.off = 0
	found := false
	var lastKey, lastVal []byte
	for it.next() {
		lastKey = append(lastKey[:0], it.key...)
		lastVal = append(lastVal[:0], it.val...)
		found = true
	}
	if it.err != nil || !found {
		return false
	}
	it.key, it.val = lastKey, lastVal
	return true
}

// blockHandle locates a block within the table body.
type blockHandle struct {
	offset uint64
	length uint64
}

func (h blockHandle) encode() []byte {
	var buf [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], h.offset)
	n += binary.PutUvarint(buf[n:], h.length)
	return buf[:n]
}

func decodeHandle(b []byte) (blockHandle, error) {
	off, n := binary.Uvarint(b)
	if n <= 0 {
		return blockHandle{}, fmt.Errorf("sstable: corrupt block handle")
	}
	length, m := binary.Uvarint(b[n:])
	if m <= 0 {
		return blockHandle{}, fmt.Errorf("sstable: corrupt block handle")
	}
	return blockHandle{offset: off, length: length}, nil
}
