package lsm

import (
	"bytes"
	"errors"
	"fmt"

	"shield/internal/lsm/base"
	"shield/internal/lsm/manifest"
	"shield/internal/lsm/sstable"
	"shield/internal/metrics"
	"shield/internal/vfs"
)

// CompactionJob is a self-contained description of one compaction, designed
// to be serializable so an offloaded-compaction worker on another server
// can execute it against shared storage. DEK resolution happens on the
// executing side via the DEK-IDs embedded in each input file's header.
type CompactionJob struct {
	// Dir is the database directory on the (shared) filesystem.
	Dir string `json:"dir"`

	// Inputs lists the files to merge, grouped by level.
	Inputs []JobLevel `json:"inputs"`

	// OutputLevel receives the merged output files.
	OutputLevel int `json:"output_level"`

	// Bottommost is true when no deeper level overlaps the input range, so
	// tombstones older than every snapshot can be elided.
	Bottommost bool `json:"bottommost"`

	// SmallestSnapshot is the lowest pinned sequence number; versions
	// shadowed at or below it are dropped.
	SmallestSnapshot uint64 `json:"smallest_snapshot"`

	// FirstOutputFileNum is the first of MaxOutputFiles reserved file
	// numbers for outputs.
	FirstOutputFileNum uint64 `json:"first_output_file_num"`
	MaxOutputFiles     uint64 `json:"max_output_files"`

	// TargetFileSize caps each output file.
	TargetFileSize uint64 `json:"target_file_size"`

	// Table-format knobs, mirrored from Options.
	BlockSize       int                 `json:"block_size"`
	BloomBitsPerKey int                 `json:"bloom_bits_per_key"`
	Compression     sstable.Compression `json:"compression"`
}

// JobLevel is one level's input file set.
type JobLevel struct {
	Level int                     `json:"level"`
	Files []manifest.FileMetadata `json:"files"`
}

// CompactionResult reports a compaction's outputs and I/O volume.
type CompactionResult struct {
	Outputs      []manifest.FileMetadata `json:"outputs"`
	BytesRead    int64                   `json:"bytes_read"`
	BytesWritten int64                   `json:"bytes_written"`
}

// Compactor executes compaction jobs. The local implementation runs
// in-process; internal/compactsvc ships jobs to a remote worker.
type Compactor interface {
	Compact(job CompactionJob) (CompactionResult, error)
}

// LocalCompactor runs compactions in-process against fs.
type LocalCompactor struct {
	FS      vfs.FS
	Wrapper FileWrapper
}

// Compact implements Compactor.
func (c *LocalCompactor) Compact(job CompactionJob) (CompactionResult, error) {
	return RunCompaction(c.FS, c.Wrapper, job)
}

// newTableWriter builds an SST writer honoring the DB's table options.
func newTableWriter(f vfs.WritableFile, opts Options) *sstable.Writer {
	return sstable.NewWriter(f, sstable.WriterOptions{
		BlockSize:       opts.BlockSize,
		BloomBitsPerKey: opts.BloomBitsPerKey,
		Compression:     opts.Compression,
	})
}

// RunCompaction merges the job's inputs into output tables on fs. It is the
// single compaction implementation shared by the in-process path and the
// offloaded-compaction worker.
//
// Failure is abort-and-retain-inputs: no manifest state changes until the
// caller installs the returned edit, so on any error (ENOSPC on an output
// being the expected one) every output file created so far is closed and
// removed — releasing its quota and its DEK registration — and the inputs
// remain the authoritative data. The caller can simply retry later.
func RunCompaction(fs vfs.FS, wrapper FileWrapper, job CompactionJob) (res CompactionResult, retErr error) {
	if wrapper == nil {
		wrapper = NopWrapper{}
	}

	// Open every input and build the merged iterator.
	var iters []internalIterator
	var readers []*sstable.Reader
	defer func() {
		for _, r := range readers {
			r.Close()
		}
	}()
	for _, lvl := range job.Inputs {
		for _, f := range lvl.Files {
			name := sstFileName(job.Dir, f.FileNum)
			raw, err := fs.Open(name)
			if err != nil {
				return res, fmt.Errorf("lsm: compaction input %d: %w", f.FileNum, err)
			}
			wrapped, err := wrapper.WrapOpen(name, FileKindSST, raw)
			if err != nil {
				raw.Close()
				return res, err
			}
			r, err := sstable.NewReader(wrapped, sstable.ReaderOptions{FileNum: f.FileNum})
			if err != nil {
				wrapped.Close()
				return res, fmt.Errorf("lsm: compaction input %d: %w", f.FileNum, err)
			}
			readers = append(readers, r)
			iters = append(iters, &sstIterAdapter{it: r.NewIter()})
			res.BytesRead += int64(f.Size)
		}
	}
	merged := newMergingIter(iters...)

	smallestSnapshot := base.SeqNum(job.SmallestSnapshot)
	var (
		w             *sstable.Writer
		outName       string
		outDEKID      string
		outFileNum    uint64
		nextOutNum    = job.FirstOutputFileNum
		lastOutNum    = job.FirstOutputFileNum + job.MaxOutputFiles
		lastUserKey   []byte
		haveUserKey   bool
		lastSeqForKey base.SeqNum
		prevAddedUser []byte
		writerOpts    = Options{BlockSize: job.BlockSize, BloomBitsPerKey: job.BloomBitsPerKey, Compression: job.Compression}
	)

	type createdOutput struct{ name, dekID string }
	var created []createdOutput
	defer func() {
		if retErr == nil {
			return
		}
		// Abort: close the in-flight writer, then remove every output file
		// created so far so the failed compaction releases its disk space and
		// DEK registrations. The inputs were never touched.
		if w != nil {
			w.Abort()
			w = nil
		}
		for _, c := range created {
			fs.Remove(c.name)
			wrapper.FileDeleted(c.name, c.dekID)
		}
		res = CompactionResult{BytesRead: res.BytesRead}
		metrics.Storage.CompactionAborts.Add(1)
	}()

	openOutput := func() error {
		if nextOutNum >= lastOutNum {
			return fmt.Errorf("lsm: compaction exhausted reserved file numbers")
		}
		outFileNum = nextOutNum
		nextOutNum++
		outName = sstFileName(job.Dir, outFileNum)
		raw, err := fs.Create(outName)
		if err != nil {
			return err
		}
		wrapped, dekID, err := wrapper.WrapCreate(outName, FileKindSST, raw)
		if err != nil {
			raw.Close()
			return err
		}
		outDEKID = dekID
		created = append(created, createdOutput{name: outName, dekID: dekID})
		w = newTableWriter(wrapped, writerOpts)
		return nil
	}

	finishOutput := func() error {
		if w == nil || w.NumEntries() == 0 {
			if w != nil {
				// Empty output: finish and delete.
				if err := w.Finish(); err != nil {
					return err
				}
				fs.Remove(outName)
				wrapper.FileDeleted(outName, outDEKID)
				created = created[:len(created)-1]
				w = nil
			}
			return nil
		}
		if err := w.Finish(); err != nil {
			return err
		}
		res.Outputs = append(res.Outputs, manifest.FileMetadata{
			FileNum:  outFileNum,
			Size:     w.FileSize(),
			Smallest: w.Smallest(),
			Largest:  w.Largest(),
			DEKID:    outDEKID,
		})
		res.BytesWritten += int64(w.FileSize())
		w = nil
		return nil
	}

	for ok := merged.First(); ok; ok = merged.Next() {
		ikey := merged.Key()
		userKey := base.UserKey(ikey)
		seq, kind := base.DecodeTrailer(ikey)

		firstOccurrence := !haveUserKey || !bytes.Equal(userKey, lastUserKey)
		if firstOccurrence {
			lastUserKey = append(lastUserKey[:0], userKey...)
			haveUserKey = true
		}

		drop := false
		switch {
		case !firstOccurrence && lastSeqForKey <= smallestSnapshot:
			// A newer record of this key is visible to every snapshot.
			drop = true
		case kind == base.KindDelete && seq <= smallestSnapshot && job.Bottommost:
			// Tombstone with nothing underneath it to hide.
			drop = true
		}
		lastSeqForKey = seq
		if drop {
			continue
		}

		// Cut the output at the target size, but only between user keys so
		// all versions of a key share one file.
		if w != nil && w.EstimatedSize() >= job.TargetFileSize &&
			prevAddedUser != nil && !bytes.Equal(userKey, prevAddedUser) {
			if err := finishOutput(); err != nil {
				return res, err
			}
		}
		if w == nil {
			if err := openOutput(); err != nil {
				return res, err
			}
		}
		if err := w.Add(ikey, merged.Value()); err != nil {
			return res, err
		}
		prevAddedUser = append(prevAddedUser[:0], userKey...)
	}
	if err := merged.Err(); err != nil {
		return res, err
	}
	if err := finishOutput(); err != nil {
		return res, err
	}
	// The output files' directory entries must be durable before the caller
	// logs the manifest edit referencing them.
	if len(res.Outputs) > 0 {
		if err := fs.SyncDir(job.Dir); err != nil {
			return res, err
		}
	}
	return res, nil
}

// compactionPlan is an internal pick: which files move where.
type compactionPlan struct {
	inputs      []JobLevel
	outputLevel int
	bottommost  bool
	// universal outputs inherit the oldest input's run sequence.
	universalSeq uint64
	// fifoOnly plans delete inputs without merging.
	fifoOnly bool
	busy     []uint64 // file numbers locked by this plan
}

// levelTarget returns the size target for a level under leveled compaction.
func (d *DB) levelTarget(level int) uint64 {
	t := d.opts.BaseLevelSize
	for i := 1; i < level; i++ {
		t *= uint64(d.opts.LevelSizeMultiplier)
	}
	return t
}

// pickCompactionLocked chooses the next compaction, or nil. d.mu held.
func (d *DB) pickCompactionLocked() *compactionPlan {
	switch d.opts.CompactionStyle {
	case CompactionUniversal:
		return d.pickUniversalLocked()
	case CompactionFIFO:
		return d.pickFIFOLocked()
	default:
		return d.pickLeveledLocked()
	}
}

func (d *DB) anyBusy(files []*manifest.FileMetadata) bool {
	for _, f := range files {
		if d.busyFiles[f.FileNum] {
			return true
		}
	}
	return false
}

func (d *DB) pickLeveledLocked() *compactionPlan {
	v := d.current

	// Score L0 by file count, deeper levels by size vs target.
	bestLevel, bestScore := -1, 0.0
	if s := float64(len(v.Levels[0])) / float64(d.opts.L0CompactionTrigger); s >= 1 {
		bestLevel, bestScore = 0, s
	}
	for lvl := 1; lvl < manifest.NumLevels-1; lvl++ {
		s := float64(v.LevelSize(lvl)) / float64(d.levelTarget(lvl))
		if s >= 1 && s > bestScore {
			bestLevel, bestScore = lvl, s
		}
	}
	if bestLevel < 0 {
		return nil
	}

	var inputs0 []*manifest.FileMetadata
	if bestLevel == 0 {
		inputs0 = append(inputs0, v.Levels[0]...)
	} else {
		// Rotate through files: pick the first non-busy file.
		for _, f := range v.Levels[bestLevel] {
			if !d.busyFiles[f.FileNum] {
				inputs0 = append(inputs0, f)
				break
			}
		}
	}
	if len(inputs0) == 0 || d.anyBusy(inputs0) {
		return nil
	}

	// Key range of the level-N inputs.
	smallest, largest := keyRange(inputs0)
	outputLevel := bestLevel + 1
	inputs1 := v.Overlapping(outputLevel, base.UserKey(smallest), base.UserKey(largest))
	if d.anyBusy(inputs1) {
		return nil
	}

	plan := &compactionPlan{outputLevel: outputLevel}
	plan.inputs = append(plan.inputs, JobLevel{Level: bestLevel, Files: derefFiles(inputs0)})
	if len(inputs1) > 0 {
		plan.inputs = append(plan.inputs, JobLevel{Level: outputLevel, Files: derefFiles(inputs1)})
	}
	allSmallest, allLargest := smallest, largest
	if len(inputs1) > 0 {
		s2, l2 := keyRange(inputs1)
		if base.CompareInternal(s2, allSmallest) < 0 {
			allSmallest = s2
		}
		if base.CompareInternal(l2, allLargest) > 0 {
			allLargest = l2
		}
	}
	plan.bottommost = d.isBottommostLocked(outputLevel, base.UserKey(allSmallest), base.UserKey(allLargest))
	for _, in := range plan.inputs {
		for _, f := range in.Files {
			plan.busy = append(plan.busy, f.FileNum)
		}
	}
	return plan
}

func (d *DB) pickUniversalLocked() *compactionPlan {
	v := d.current
	runs := v.Levels[0] // newest first
	if len(runs) < d.opts.UniversalMaxRuns {
		return nil
	}
	// Merge the oldest half of the runs (at least two).
	n := len(runs) / 2
	if n < 2 {
		n = 2
	}
	oldest := runs[len(runs)-n:]
	if d.anyBusy(oldest) {
		return nil
	}
	plan := &compactionPlan{
		outputLevel:  0,
		bottommost:   n == len(runs),
		universalSeq: oldest[len(oldest)-1].Seq,
	}
	plan.inputs = []JobLevel{{Level: 0, Files: derefFiles(oldest)}}
	for _, f := range oldest {
		plan.busy = append(plan.busy, f.FileNum)
	}
	return plan
}

func (d *DB) pickFIFOLocked() *compactionPlan {
	v := d.current
	var total uint64
	for _, f := range v.Levels[0] {
		total += f.Size
	}
	if total <= d.opts.FIFOMaxTableSize {
		return nil
	}
	// Drop oldest files until under the cap.
	var victims []*manifest.FileMetadata
	for i := len(v.Levels[0]) - 1; i >= 0 && total > d.opts.FIFOMaxTableSize; i-- {
		f := v.Levels[0][i]
		if d.busyFiles[f.FileNum] {
			break
		}
		victims = append(victims, f)
		total -= f.Size
	}
	if len(victims) == 0 {
		return nil
	}
	plan := &compactionPlan{fifoOnly: true, outputLevel: 0}
	plan.inputs = []JobLevel{{Level: 0, Files: derefFiles(victims)}}
	for _, f := range victims {
		plan.busy = append(plan.busy, f.FileNum)
	}
	return plan
}

// isBottommostLocked reports whether no level deeper than outputLevel has a
// file overlapping [smallestUser, largestUser].
func (d *DB) isBottommostLocked(outputLevel int, smallestUser, largestUser []byte) bool {
	for lvl := outputLevel + 1; lvl < manifest.NumLevels; lvl++ {
		if len(d.current.Overlapping(lvl, smallestUser, largestUser)) > 0 {
			return false
		}
	}
	return true
}

func keyRange(files []*manifest.FileMetadata) (smallest, largest []byte) {
	for _, f := range files {
		if smallest == nil || base.CompareInternal(f.Smallest, smallest) < 0 {
			smallest = f.Smallest
		}
		if largest == nil || base.CompareInternal(f.Largest, largest) > 0 {
			largest = f.Largest
		}
	}
	return smallest, largest
}

func derefFiles(files []*manifest.FileMetadata) []manifest.FileMetadata {
	out := make([]manifest.FileMetadata, len(files))
	for i, f := range files {
		out[i] = *f
	}
	return out
}

// maybeScheduleCompactionLocked starts compaction workers while work exists
// and job slots are free. d.mu held.
func (d *DB) maybeScheduleCompactionLocked() {
	if d.opts.ReadOnly {
		return
	}
	if d.closed || d.bgErr != nil || d.manualActive || d.compactionsHalted {
		return
	}
	maxWorkers := d.opts.MaxBackgroundJobs - 1
	if maxWorkers < 1 {
		maxWorkers = 1
	}
	for d.compactions < maxWorkers {
		plan := d.pickCompactionLocked()
		if plan == nil {
			return
		}
		for _, num := range plan.busy {
			d.busyFiles[num] = true
		}
		d.compactions++
		go d.compactionWorker(plan)
	}
}

func (d *DB) compactionWorker(plan *compactionPlan) {
	err := d.runCompactionPlan(plan)

	d.mu.Lock()
	for _, num := range plan.busy {
		delete(d.busyFiles, num)
	}
	d.compactions--
	var aborted *compactionAbortedError
	switch {
	case err == nil:
	case errors.As(err, &aborted):
		// The compaction aborted cleanly before touching the manifest: its
		// partial outputs were removed and the inputs retained, so the DB is
		// fully consistent. Out of space is not a reason to poison the write
		// path — halt background compactions until space reappears (a
		// successful flush clears the halt) instead of entering degraded mode.
		d.compactionsHalted = true
		d.opts.Logger("lsm: compactions halted (aborted, inputs retained): %v", aborted.err)
	case d.bgErr == nil:
		d.setBGErrLocked(fmt.Errorf("compaction: %w", err))
	}
	d.maybeScheduleCompactionLocked()
	d.bgCond.Broadcast()
	d.mu.Unlock()
}

// compactionAbortedError marks a compaction failure that left no partial
// state behind: outputs removed, inputs retained, manifest untouched. It is
// recoverable by retrying once the cause (out of space) clears, so it must
// not poison the DB.
type compactionAbortedError struct{ err error }

func (e *compactionAbortedError) Error() string {
	return fmt.Sprintf("lsm: compaction aborted, inputs retained: %v", e.err)
}

func (e *compactionAbortedError) Unwrap() error { return e.err }

// runCompactionPlan executes one plan (local or offloaded) and installs the
// resulting version edit.
func (d *DB) runCompactionPlan(plan *compactionPlan) error {
	edit := &manifest.VersionEdit{}
	for _, in := range plan.inputs {
		for _, f := range in.Files {
			edit.Deleted = append(edit.Deleted, manifest.DeletedFile{Level: in.Level, FileNum: f.FileNum})
		}
	}

	if !plan.fifoOnly {
		d.mu.Lock()
		const reserve = 256
		firstNum := d.nextFileNum
		d.nextFileNum += reserve
		smallestSnap := d.smallestSnapshotLocked()
		d.mu.Unlock()

		targetSize := d.opts.TargetFileSize
		if d.opts.CompactionStyle == CompactionUniversal {
			// A universal sorted run is exactly one file: splitting the
			// merged output would leave the run count unchanged, so
			// compaction would reschedule forever.
			targetSize = 1 << 62
		}
		job := CompactionJob{
			Dir:                d.dir,
			Inputs:             plan.inputs,
			OutputLevel:        plan.outputLevel,
			Bottommost:         plan.bottommost,
			SmallestSnapshot:   uint64(smallestSnap),
			FirstOutputFileNum: firstNum,
			MaxOutputFiles:     reserve,
			TargetFileSize:     targetSize,
			BlockSize:          d.opts.BlockSize,
			BloomBitsPerKey:    d.opts.BloomBitsPerKey,
			Compression:        d.opts.Compression,
		}
		compactor := d.opts.Compactor
		if compactor == nil {
			compactor = &LocalCompactor{FS: d.fs, Wrapper: d.wrapper}
		}
		res, err := compactor.Compact(job)
		if err != nil {
			if errors.Is(err, vfs.ErrNoSpace) {
				// RunCompaction (local or remote) aborted and cleaned up its
				// outputs; nothing was installed, so this is retryable.
				return &compactionAbortedError{err: err}
			}
			return err
		}
		d.metCompRead.Add(res.BytesRead)
		d.metCompWrite.Add(res.BytesWritten)
		for _, out := range res.Outputs {
			meta := out
			if d.opts.CompactionStyle == CompactionUniversal {
				meta.Seq = plan.universalSeq
			}
			edit.Added = append(edit.Added, manifest.AddedFile{Level: plan.outputLevel, Meta: meta})
		}
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	for _, a := range edit.Added {
		if a.Meta.DEKID != "" {
			d.dekIDs[a.Meta.FileNum] = a.Meta.DEKID
		}
	}
	if err := d.applyEditLocked(edit); err != nil {
		return err
	}
	d.metCompact.Add(1)
	d.deleteObsoleteLocked()
	d.bgCond.Broadcast()
	return nil
}

// CompactRange forces full compaction of the whole key space, level by
// level, waiting for completion. It first flushes the memtable.
func (d *DB) CompactRange() error {
	if d.opts.ReadOnly {
		return ErrReadOnly
	}
	if err := d.Flush(); err != nil {
		return err
	}

	// Block automatic scheduling while the manual compaction runs, and
	// serialize against other manual callers: two concurrent CompactRanges
	// would pick overlapping inputs from the same version and the loser's
	// edit would try to delete already-deleted files.
	d.mu.Lock()
	for d.compactions > 0 || d.manualActive {
		d.bgCond.Wait()
	}
	if d.bgErr != nil {
		err := d.bgErr
		d.mu.Unlock()
		return err
	}
	d.manualActive = true
	d.mu.Unlock()
	defer func() {
		d.mu.Lock()
		d.manualActive = false
		d.maybeScheduleCompactionLocked()
		d.bgCond.Broadcast()
		d.mu.Unlock()
	}()

	if d.opts.CompactionStyle != CompactionLeveled {
		// Universal/FIFO: run picks until quiescent.
		for {
			d.mu.Lock()
			plan := d.pickCompactionLocked()
			d.mu.Unlock()
			if plan == nil {
				return nil
			}
			if err := d.runCompactionPlan(plan); err != nil {
				return err
			}
		}
	}

	for lvl := 0; lvl < manifest.NumLevels-1; lvl++ {
		d.mu.Lock()
		files := d.current.Levels[lvl]
		if len(files) == 0 {
			d.mu.Unlock()
			continue
		}
		smallest, largest := keyRange(files)
		overlap := d.current.Overlapping(lvl+1, base.UserKey(smallest), base.UserKey(largest))
		plan := &compactionPlan{outputLevel: lvl + 1}
		plan.inputs = append(plan.inputs, JobLevel{Level: lvl, Files: derefFiles(files)})
		if len(overlap) > 0 {
			plan.inputs = append(plan.inputs, JobLevel{Level: lvl + 1, Files: derefFiles(overlap)})
		}
		allS, allL := smallest, largest
		if len(overlap) > 0 {
			s2, l2 := keyRange(overlap)
			if base.CompareInternal(s2, allS) < 0 {
				allS = s2
			}
			if base.CompareInternal(l2, allL) > 0 {
				allL = l2
			}
		}
		plan.bottommost = d.isBottommostLocked(lvl+1, base.UserKey(allS), base.UserKey(allL))
		d.mu.Unlock()
		if err := d.runCompactionPlan(plan); err != nil {
			return err
		}
	}
	return nil
}
