package lsm

import (
	"errors"
	"fmt"
	"sort"

	"shield/internal/lsm/base"
	"shield/internal/lsm/manifest"
	"shield/internal/lsm/sstable"
	"shield/internal/metrics"
	"shield/internal/vfs"
)

// CompactionJob is a self-contained description of one compaction, designed
// to be serializable so an offloaded-compaction worker on another server
// can execute it against shared storage. DEK resolution happens on the
// executing side via the DEK-IDs embedded in each input file's header.
type CompactionJob struct {
	// Dir is the database directory on the (shared) filesystem.
	Dir string `json:"dir"`

	// Inputs lists the files to merge, grouped by level.
	Inputs []JobLevel `json:"inputs"`

	// OutputLevel receives the merged output files.
	OutputLevel int `json:"output_level"`

	// Bottommost is true when no deeper level overlaps the input range, so
	// tombstones older than every snapshot can be elided.
	Bottommost bool `json:"bottommost"`

	// SmallestSnapshot is the lowest pinned sequence number; versions
	// shadowed at or below it are dropped.
	SmallestSnapshot uint64 `json:"smallest_snapshot"`

	// FirstOutputFileNum is the first of MaxOutputFiles reserved file
	// numbers for outputs.
	FirstOutputFileNum uint64 `json:"first_output_file_num"`
	MaxOutputFiles     uint64 `json:"max_output_files"`

	// TargetFileSize caps each output file.
	TargetFileSize uint64 `json:"target_file_size"`

	// MaxSubcompactions splits the merge into up to this many key-range
	// shards executed on parallel goroutines (see subcompaction.go). 0 or
	// 1 runs the merge serially.
	MaxSubcompactions int `json:"max_subcompactions,omitempty"`

	// Boundaries optionally pins the shard split points (ascending user
	// keys); empty derives them from the input files' ranges. Pinning the
	// boundaries at the serial path's output cut points makes the sharded
	// outputs byte-identical to the serial outputs (the equivalence the
	// tests assert).
	Boundaries [][]byte `json:"boundaries,omitempty"`

	// Table-format knobs, mirrored from Options.
	BlockSize       int                 `json:"block_size"`
	BloomBitsPerKey int                 `json:"bloom_bits_per_key"`
	Compression     sstable.Compression `json:"compression"`
}

// JobLevel is one level's input file set.
type JobLevel struct {
	Level int                     `json:"level"`
	Files []manifest.FileMetadata `json:"files"`
}

// CompactionResult reports a compaction's outputs and I/O volume.
type CompactionResult struct {
	Outputs      []manifest.FileMetadata `json:"outputs"`
	BytesRead    int64                   `json:"bytes_read"`
	BytesWritten int64                   `json:"bytes_written"`

	// Subcompactions is the number of key-range shards the job ran as
	// (1 = serial merge).
	Subcompactions int `json:"subcompactions,omitempty"`
}

// Compactor executes compaction jobs. The local implementation runs
// in-process; internal/compactsvc ships jobs to a remote worker.
type Compactor interface {
	Compact(job CompactionJob) (CompactionResult, error)
}

// LocalCompactor runs compactions in-process against fs.
type LocalCompactor struct {
	FS      vfs.FS
	Wrapper FileWrapper
}

// Compact implements Compactor.
func (c *LocalCompactor) Compact(job CompactionJob) (CompactionResult, error) {
	return RunCompaction(c.FS, c.Wrapper, job)
}

// newTableWriter builds an SST writer honoring the DB's table options. The
// flush path (the only caller) threads the prefix extractor through, so L0
// files carry prefix blooms; compaction outputs are built from the
// JSON-serializable CompactionJob and carry none (see Options.PrefixExtractor).
func newTableWriter(f vfs.WritableFile, opts Options) *sstable.Writer {
	return sstable.NewWriter(f, sstable.WriterOptions{
		BlockSize:       opts.BlockSize,
		BloomBitsPerKey: opts.BloomBitsPerKey,
		Compression:     opts.Compression,
		PrefixExtractor: opts.PrefixExtractor,
	})
}

// RunCompaction merges the job's inputs into output tables on fs. It is the
// single compaction implementation shared by the in-process path and the
// offloaded-compaction worker. When the job allows subcompactions the merge
// is sharded by key range across goroutines (subcompaction.go); otherwise
// it runs as one serial shard.
//
// Failure is abort-and-retain-inputs: no manifest state changes until the
// caller installs the returned edit, so on any error (ENOSPC on an output
// being the expected one) every output file created so far is closed and
// removed — releasing its quota and its DEK registration — and the inputs
// remain the authoritative data. The caller can simply retry later.
func RunCompaction(fs vfs.FS, wrapper FileWrapper, job CompactionJob) (CompactionResult, error) {
	if wrapper == nil {
		wrapper = NopWrapper{}
	}
	bounds := job.Boundaries
	if len(bounds) == 0 {
		bounds = subcompactionBoundaries(job)
	}
	var bytesRead int64
	for _, lvl := range job.Inputs {
		for _, f := range lvl.Files {
			bytesRead += int64(f.Size)
		}
	}
	res, err := runShardedCompaction(fs, wrapper, job, bounds)
	res.BytesRead = bytesRead
	// The output files' directory entries must be durable before the caller
	// logs the manifest edit referencing them.
	if err == nil && len(res.Outputs) > 0 {
		if serr := fs.SyncDir(job.Dir); serr != nil {
			removeOutputs(fs, wrapper, job.Dir, res.Outputs)
			res.Outputs, res.BytesWritten = nil, 0
			err = serr
		}
	}
	if err != nil {
		metrics.Storage.CompactionAborts.Add(1)
		return CompactionResult{BytesRead: bytesRead, Subcompactions: res.Subcompactions}, err
	}
	return res, nil
}

// compactionPlan is an internal pick: which files move where.
type compactionPlan struct {
	inputs      []JobLevel
	outputLevel int
	bottommost  bool
	// l0 marks plans that consume level-0 inputs; at most one such job may
	// be in flight (see tryLeveledPlanLocked).
	l0 bool
	// universal outputs inherit the oldest input's run sequence.
	universalSeq uint64
	// fifoOnly plans delete inputs without merging.
	fifoOnly bool
	busy     []uint64 // file numbers locked by this plan
}

// levelTarget returns the size target for a level under leveled compaction.
func (d *DB) levelTarget(level int) uint64 {
	t := d.opts.BaseLevelSize
	for i := 1; i < level; i++ {
		t *= uint64(d.opts.LevelSizeMultiplier)
	}
	return t
}

// pickCompactionLocked chooses the next runnable compaction, or nil. The
// returned plan is built but not claimed. d.mu held.
func (d *DB) pickCompactionLocked() *compactionPlan {
	switch d.opts.CompactionStyle {
	case CompactionUniversal:
		return d.pickUniversalLocked()
	case CompactionFIFO:
		return d.pickFIFOLocked()
	default:
		return d.pickLeveledLocked()
	}
}

func (d *DB) anyBusy(files []*manifest.FileMetadata) bool {
	for _, f := range files {
		if d.busyFiles[f.FileNum] {
			return true
		}
	}
	return false
}

// planConflictsLocked reports whether the plan cannot run now: one of its
// inputs is claimed by an in-flight job, or it needs the exclusive L0 slot
// while another L0 job holds it. d.mu held.
func (d *DB) planConflictsLocked(plan *compactionPlan) bool {
	for _, num := range plan.busy {
		if d.busyFiles[num] {
			return true
		}
	}
	return plan.l0 && d.l0Jobs > 0
}

// pickLeveledLocked scores every level and tries candidates best-first, so
// one busy level no longer blocks compacting the runner-up — disjoint
// level/key-range pairs (an L0→L1 job and an L2→L3 job, say) run
// concurrently. d.mu held.
func (d *DB) pickLeveledLocked() *compactionPlan {
	v := d.current
	type scored struct {
		level int
		score float64
	}
	var cands []scored
	// Score L0 by file count, deeper levels by size vs target.
	if s := float64(len(v.Levels[0])) / float64(d.opts.L0CompactionTrigger); s >= 1 {
		cands = append(cands, scored{0, s})
	}
	for lvl := 1; lvl < manifest.NumLevels-1; lvl++ {
		if s := float64(v.LevelSize(lvl)) / float64(d.levelTarget(lvl)); s >= 1 {
			cands = append(cands, scored{lvl, s})
		}
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].score > cands[j].score })
	for _, c := range cands {
		if plan := d.tryLeveledPlanLocked(c.level); plan != nil {
			return plan
		}
	}
	return nil
}

// tryLeveledPlanLocked builds a conflict-free plan compacting out of level,
// or nil. d.mu held.
func (d *DB) tryLeveledPlanLocked(level int) *compactionPlan {
	v := d.current
	if level == 0 {
		// All of L0 compacts at once, and at most one job may consume L0:
		// its files overlap arbitrarily, and files flushed after a first
		// L0 job started are not claimed by it, so a second L0 job's
		// outputs could interleave the first's at the base level.
		if len(v.Levels[0]) == 0 {
			return nil
		}
		plan := d.newLeveledPlanLocked(0, v.Levels[0])
		if d.planConflictsLocked(plan) {
			return nil
		}
		return plan
	}
	// Try each idle file in turn: one busy key range (or a busy overlap at
	// the output level) doesn't block the rest of the level.
	for _, f := range v.Levels[level] {
		if d.busyFiles[f.FileNum] {
			continue
		}
		plan := d.newLeveledPlanLocked(level, []*manifest.FileMetadata{f})
		if !d.planConflictsLocked(plan) {
			return plan
		}
	}
	return nil
}

// newLeveledPlanLocked assembles a level→level+1 plan for inputs0 without
// checking conflicts. The plan claims every output-level file overlapping
// the inputs' key hull, which is what makes concurrently running plans
// disjoint: any range conflict between two jobs would surface as a shared
// input file. d.mu held.
func (d *DB) newLeveledPlanLocked(level int, inputs0 []*manifest.FileMetadata) *compactionPlan {
	v := d.current
	smallest, largest := keyRange(inputs0)
	outputLevel := level + 1
	inputs1 := v.Overlapping(outputLevel, base.UserKey(smallest), base.UserKey(largest))
	plan := &compactionPlan{outputLevel: outputLevel, l0: level == 0}
	plan.inputs = append(plan.inputs, JobLevel{Level: level, Files: derefFiles(inputs0)})
	if len(inputs1) > 0 {
		plan.inputs = append(plan.inputs, JobLevel{Level: outputLevel, Files: derefFiles(inputs1)})
	}
	allSmallest, allLargest := smallest, largest
	if len(inputs1) > 0 {
		s2, l2 := keyRange(inputs1)
		if base.CompareInternal(s2, allSmallest) < 0 {
			allSmallest = s2
		}
		if base.CompareInternal(l2, allLargest) > 0 {
			allLargest = l2
		}
	}
	plan.bottommost = d.isBottommostLocked(outputLevel, base.UserKey(allSmallest), base.UserKey(allLargest))
	for _, in := range plan.inputs {
		for _, f := range in.Files {
			plan.busy = append(plan.busy, f.FileNum)
		}
	}
	return plan
}

func (d *DB) pickUniversalLocked() *compactionPlan {
	v := d.current
	runs := v.Levels[0] // newest first
	if len(runs) < d.opts.UniversalMaxRuns {
		return nil
	}
	if d.l0Jobs > 0 {
		// Universal merges rewrite the run sequence; overlapping merges
		// would break the newest-first ordering invariant.
		return nil
	}
	// Merge the oldest half of the runs (at least two).
	n := len(runs) / 2
	if n < 2 {
		n = 2
	}
	oldest := runs[len(runs)-n:]
	if d.anyBusy(oldest) {
		return nil
	}
	plan := &compactionPlan{
		outputLevel:  0,
		bottommost:   n == len(runs),
		l0:           true,
		universalSeq: oldest[len(oldest)-1].Seq,
	}
	plan.inputs = []JobLevel{{Level: 0, Files: derefFiles(oldest)}}
	for _, f := range oldest {
		plan.busy = append(plan.busy, f.FileNum)
	}
	return plan
}

func (d *DB) pickFIFOLocked() *compactionPlan {
	v := d.current
	var total uint64
	for _, f := range v.Levels[0] {
		total += f.Size
	}
	if total <= d.opts.FIFOMaxTableSize {
		return nil
	}
	if d.l0Jobs > 0 {
		return nil
	}
	// Drop oldest files until under the cap.
	var victims []*manifest.FileMetadata
	for i := len(v.Levels[0]) - 1; i >= 0 && total > d.opts.FIFOMaxTableSize; i-- {
		f := v.Levels[0][i]
		if d.busyFiles[f.FileNum] {
			break
		}
		victims = append(victims, f)
		total -= f.Size
	}
	if len(victims) == 0 {
		return nil
	}
	plan := &compactionPlan{fifoOnly: true, outputLevel: 0, l0: true}
	plan.inputs = []JobLevel{{Level: 0, Files: derefFiles(victims)}}
	for _, f := range victims {
		plan.busy = append(plan.busy, f.FileNum)
	}
	return plan
}

// isBottommostLocked reports whether no level deeper than outputLevel has a
// file overlapping [smallestUser, largestUser].
func (d *DB) isBottommostLocked(outputLevel int, smallestUser, largestUser []byte) bool {
	for lvl := outputLevel + 1; lvl < manifest.NumLevels; lvl++ {
		if len(d.current.Overlapping(lvl, smallestUser, largestUser)) > 0 {
			return false
		}
	}
	return true
}

func keyRange(files []*manifest.FileMetadata) (smallest, largest []byte) {
	for _, f := range files {
		if smallest == nil || base.CompareInternal(f.Smallest, smallest) < 0 {
			smallest = f.Smallest
		}
		if largest == nil || base.CompareInternal(f.Largest, largest) > 0 {
			largest = f.Largest
		}
	}
	return smallest, largest
}

func derefFiles(files []*manifest.FileMetadata) []manifest.FileMetadata {
	out := make([]manifest.FileMetadata, len(files))
	for i, f := range files {
		out[i] = *f
	}
	return out
}

// claimPlanLocked marks the plan's inputs busy and accounts the job in the
// scheduler state and metrics. d.mu held.
func (d *DB) claimPlanLocked(plan *compactionPlan) {
	for _, num := range plan.busy {
		d.busyFiles[num] = true
	}
	if plan.l0 {
		d.l0Jobs++
	}
	d.compactions++
	metrics.Jobs.JobStarted()
}

// releasePlanLocked undoes claimPlanLocked once the job finishes. d.mu held.
func (d *DB) releasePlanLocked(plan *compactionPlan) {
	for _, num := range plan.busy {
		delete(d.busyFiles, num)
	}
	if plan.l0 {
		d.l0Jobs--
	}
	d.compactions--
	metrics.Jobs.JobDone()
}

// maybeScheduleCompactionLocked starts compaction workers while runnable
// plans exist and job slots are free. One MaxBackgroundJobs slot is always
// reserved for the flush worker — flush preempts compaction — so up to
// MaxBackgroundJobs-1 compaction jobs run concurrently on disjoint
// level/key-range pairs. d.mu held.
func (d *DB) maybeScheduleCompactionLocked() {
	if d.opts.ReadOnly {
		return
	}
	if d.closed || d.bgErr != nil || d.compactionsHalted {
		return
	}
	if d.manualWaiters > 0 {
		// A manual CompactRange step is waiting to claim its plan; starting
		// more background jobs here could starve it forever.
		return
	}
	maxWorkers := d.opts.MaxBackgroundJobs - 1
	if maxWorkers < 1 {
		maxWorkers = 1
	}
	for d.compactions < maxWorkers {
		plan := d.pickCompactionLocked()
		if plan == nil {
			return
		}
		d.claimPlanLocked(plan)
		go d.compactionWorker(plan)
	}
	// Every job slot is taken; note whether runnable work had to queue.
	if d.pickCompactionLocked() != nil {
		d.metSchedDeferred.Add(1)
		metrics.Jobs.SchedDeferred.Add(1)
	}
}

func (d *DB) compactionWorker(plan *compactionPlan) {
	err := d.runCompactionPlan(plan)

	d.mu.Lock()
	d.releasePlanLocked(plan)
	var aborted *compactionAbortedError
	switch {
	case err == nil:
	case errors.As(err, &aborted):
		// The compaction aborted cleanly before touching the manifest: its
		// partial outputs were removed and the inputs retained, so the DB is
		// fully consistent. Out of space is not a reason to poison the write
		// path — halt background compactions until space reappears (a
		// successful flush clears the halt) instead of entering degraded mode.
		d.compactionsHalted = true
		d.opts.Logger("lsm: compactions halted (aborted, inputs retained): %v", aborted.err)
	case d.bgErr == nil:
		d.setBGErrLocked(fmt.Errorf("compaction: %w", err))
	}
	d.maybeScheduleCompactionLocked()
	d.bgCond.Broadcast()
	d.mu.Unlock()
}

// compactionAbortedError marks a compaction failure that left no partial
// state behind: outputs removed, inputs retained, manifest untouched. It is
// recoverable by retrying once the cause (out of space) clears, so it must
// not poison the DB. The halt is per-job: other in-flight jobs finish and
// install normally.
type compactionAbortedError struct{ err error }

func (e *compactionAbortedError) Error() string {
	return fmt.Sprintf("lsm: compaction aborted, inputs retained: %v", e.err)
}

func (e *compactionAbortedError) Unwrap() error { return e.err }

// runCompactionPlan executes one plan (local or offloaded) and installs the
// resulting version edit. The caller must have claimed the plan.
func (d *DB) runCompactionPlan(plan *compactionPlan) error {
	edit := &manifest.VersionEdit{}
	for _, in := range plan.inputs {
		for _, f := range in.Files {
			edit.Deleted = append(edit.Deleted, manifest.DeletedFile{Level: in.Level, FileNum: f.FileNum})
		}
	}

	if !plan.fifoOnly {
		d.mu.Lock()
		const reserve = 256
		firstNum := d.nextFileNum
		d.nextFileNum += reserve
		smallestSnap := d.smallestSnapshotLocked()
		d.mu.Unlock()

		targetSize := d.opts.TargetFileSize
		maxSub := d.opts.MaxSubcompactions
		if d.opts.CompactionStyle == CompactionUniversal {
			// A universal sorted run is exactly one file: splitting the
			// merged output would leave the run count unchanged, so
			// compaction would reschedule forever. That also rules out
			// subcompactions, which shard the output by key range.
			targetSize = 1 << 62
			maxSub = 1
		}
		job := CompactionJob{
			Dir:                d.dir,
			Inputs:             plan.inputs,
			OutputLevel:        plan.outputLevel,
			Bottommost:         plan.bottommost,
			SmallestSnapshot:   uint64(smallestSnap),
			FirstOutputFileNum: firstNum,
			MaxOutputFiles:     reserve,
			TargetFileSize:     targetSize,
			MaxSubcompactions:  maxSub,
			BlockSize:          d.opts.BlockSize,
			BloomBitsPerKey:    d.opts.BloomBitsPerKey,
			Compression:        d.opts.Compression,
		}
		compactor := d.opts.Compactor
		if compactor == nil {
			compactor = &LocalCompactor{FS: d.fs, Wrapper: d.wrapper}
		}
		res, err := compactor.Compact(job)
		if err != nil {
			if errors.Is(err, vfs.ErrNoSpace) || errors.Is(err, ErrJobLost) {
				// RunCompaction (local or remote) aborted and cleaned up its
				// outputs — or the orchestrator lost every worker lease and
				// swept the partial outputs itself. Either way nothing was
				// installed and the inputs are retained, so this is retryable.
				return &compactionAbortedError{err: err}
			}
			return err
		}
		d.metCompRead.Add(res.BytesRead)
		d.metCompWrite.Add(res.BytesWritten)
		metrics.Jobs.BytesRead.Add(res.BytesRead)
		metrics.Jobs.BytesWritten.Add(res.BytesWritten)
		if res.Subcompactions > 1 {
			d.metSubcomp.Add(int64(res.Subcompactions))
		}
		for _, out := range res.Outputs {
			meta := out
			if d.opts.CompactionStyle == CompactionUniversal {
				meta.Seq = plan.universalSeq
			}
			edit.Added = append(edit.Added, manifest.AddedFile{Level: plan.outputLevel, Meta: meta})
		}
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	for _, a := range edit.Added {
		if a.Meta.DEKID != "" {
			d.dekIDs[a.Meta.FileNum] = a.Meta.DEKID
		}
	}
	if err := d.applyEditLocked(edit); err != nil {
		return err
	}
	d.metCompact.Add(1)
	d.deleteObsoleteLocked()
	d.bgCond.Broadcast()
	return nil
}

// CompactRange forces full compaction of the whole key space, level by
// level, waiting for each step to finish. It first flushes the memtable.
//
// Background jobs keep running: each manual step claims its input files
// like any other job and waits — rebuilding its plan from the then-current
// version after every wait, never running a stale pick — while a
// conflicting job is in flight. Two concurrent CompactRange callers, or a
// manual step racing a background pick, can therefore never install
// overlapping edits.
func (d *DB) CompactRange() error {
	if d.opts.ReadOnly {
		return ErrReadOnly
	}
	if err := d.Flush(); err != nil {
		return err
	}

	if d.opts.CompactionStyle != CompactionLeveled {
		return d.compactAllRuns()
	}

	for lvl := 0; lvl < manifest.NumLevels-1; lvl++ {
		plan, err := d.claimManualPlan(lvl)
		if err != nil {
			return err
		}
		if plan == nil {
			continue
		}
		err = d.runCompactionPlan(plan)
		d.finishManualPlan(plan)
		if err != nil {
			return err
		}
	}
	return nil
}

// claimManualPlan builds a whole-level plan for lvl→lvl+1 and claims it,
// waiting while any in-flight job holds a conflicting file. Returns a nil
// plan when the level is empty.
func (d *DB) claimManualPlan(lvl int) (*compactionPlan, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.manualWaiters++
	defer func() { d.manualWaiters-- }()
	for {
		if d.closed {
			return nil, ErrClosed
		}
		if d.bgErr != nil {
			return nil, d.bgErr
		}
		files := d.current.Levels[lvl]
		if len(files) == 0 {
			return nil, nil
		}
		plan := d.newLeveledPlanLocked(lvl, files)
		if !d.planConflictsLocked(plan) {
			d.claimPlanLocked(plan)
			return plan, nil
		}
		d.bgCond.Wait()
	}
}

// finishManualPlan releases a manual step's claim and wakes waiters.
func (d *DB) finishManualPlan(plan *compactionPlan) {
	d.mu.Lock()
	d.releasePlanLocked(plan)
	d.maybeScheduleCompactionLocked()
	d.bgCond.Broadcast()
	d.mu.Unlock()
}

// compactAllRuns drains universal/FIFO picks until quiescent, riding the
// same claim discipline as the background workers.
func (d *DB) compactAllRuns() error {
	d.mu.Lock()
	for {
		if d.closed {
			d.mu.Unlock()
			return ErrClosed
		}
		if d.bgErr != nil {
			err := d.bgErr
			d.mu.Unlock()
			return err
		}
		plan := d.pickCompactionLocked()
		if plan == nil {
			if d.compactions > 0 {
				// In-flight jobs may re-arm the pick once they install.
				d.bgCond.Wait()
				continue
			}
			d.mu.Unlock()
			return nil
		}
		d.claimPlanLocked(plan)
		d.mu.Unlock()
		err := d.runCompactionPlan(plan)
		d.mu.Lock()
		d.releasePlanLocked(plan)
		d.bgCond.Broadcast()
		if err != nil {
			d.mu.Unlock()
			return err
		}
	}
}
