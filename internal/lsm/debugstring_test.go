package lsm

import (
	"fmt"
	"strings"
	"testing"

	"shield/internal/vfs"
)

func TestDebugString(t *testing.T) {
	db, err := Open("db", testOptions(vfs.NewMem()))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 5000; i++ {
		db.Put([]byte(fmt.Sprintf("k%05d", i)), make([]byte, 64))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	s := db.DebugString()
	if !strings.Contains(s, "memtable:") || !strings.Contains(s, "flushes=") {
		t.Fatalf("malformed debug string:\n%s", s)
	}
	if !strings.Contains(s, "L0:") && !strings.Contains(s, "L1:") {
		t.Fatalf("no level lines:\n%s", s)
	}
}
