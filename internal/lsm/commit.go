package lsm

import (
	"encoding/binary"
	"sync"

	"shield/internal/lsm/base"
	"shield/internal/metrics"
)

// Group commit: concurrent Put/Write callers enqueue into a commit pipeline
// that coalesces them into one WAL batch record, one memtable apply pass, and
// one fsync. The first waiter to arrive while the pipeline is idle becomes
// the leader; it detaches a group of queued followers, commits the whole
// group, delivers the (shared) result to every member, and then hands
// leadership to the queue head. Exactly one leader runs at a time, which is
// the pipeline's safety argument: only the leader appends to the WAL,
// applies to the memtable, or rotates either — the same single-writer
// invariant the old dedicated commit goroutine provided.
//
// The coalesced group is written as ONE WAL record. Batch records within a
// record take consecutive sequence numbers, so merging batches is a header
// rewrite plus body concatenation; recovery replays the merged record with
// the identical seq assignment. Because the record is the WAL's atomicity
// unit (its CRC covers the whole record and a torn tail drops it entirely),
// every writer in a group becomes durable together or not at all — there is
// no crash outcome where half a group survives. A failed append or sync
// fails every waiter in the group and poisons the DB; no waiter is ever
// acked on a partially persisted group.

// maxCommitGroup bounds how many waiters one leader coalesces: enough to
// amortize the fsync under heavy concurrency, small enough to bound ack
// latency for the first waiter and the size of the merged record.
const maxCommitGroup = 128

// commitWaiter is one Write (or memtable-rotation) request travelling
// through the pipeline.
type commitWaiter struct {
	batch  *Batch
	sync   bool
	rotate bool // rotate the memtable instead of committing a batch

	// err is the commit result; readable after done is closed, or by the
	// waiter itself after leading.
	err error
	// done is closed by the leader once this waiter's group committed.
	done chan struct{}
	// lead is closed to promote this waiter from follower to leader.
	lead chan struct{}
}

// commitPipeline holds the queue and leadership state. It deliberately knows
// nothing about WAL or memtables; the DB's commitGroup does the I/O.
type commitPipeline struct {
	mu sync.Mutex
	// queue holds waiting followers in arrival order. A waiter is detached
	// (by the leader, into a group or into leadership) before its done/lead
	// channel is closed, so no waiter is ever both grouped and promoted.
	queue []*commitWaiter
	// leading is true while a leader is committing. Only the leader clears
	// it, and only with an empty queue, so leadership is never duplicated.
	leading bool
	closed  bool
	// idle signals Close when the leader retires (leading -> false).
	idle *sync.Cond
	// scratch is the leader-owned buffer for merged multi-writer records.
	// Only the current leader touches it, and the WAL writer copies out of
	// it before the leader retires, so one buffer serves all groups.
	scratch []byte
}

func (p *commitPipeline) init() {
	p.idle = sync.NewCond(&p.mu)
}

// commitSend runs w through the pipeline and returns its commit error. The
// calling goroutine either becomes the leader (idle pipeline), or parks as a
// follower until a leader commits it or promotes it.
func (d *DB) commitSend(w *commitWaiter) error {
	p := &d.commit
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	if p.leading {
		p.queue = append(p.queue, w)
		p.mu.Unlock()
		select {
		case <-w.done:
			return w.err
		case <-w.lead:
			// Promoted: the retiring leader detached us from the queue and
			// handed over; fall through to lead our own group.
		}
	} else {
		p.leading = true
		p.mu.Unlock()
	}
	d.commitLead(w)
	return w.err
}

// commitLead commits w's group and performs the leader handoff. Called with
// leadership held (p.leading true, w detached from the queue).
func (d *DB) commitLead(w *commitWaiter) {
	p := &d.commit

	// Gather followers. A rotation commits alone (it must observe the exact
	// memtable state its position in the arrival order implies), and a queued
	// rotation ends the group before it — it will lead its own "group" next.
	group := make([]*commitWaiter, 1, 8)
	group[0] = w
	if !w.rotate {
		p.mu.Lock()
		n := 0
		for n < len(p.queue) && len(group) < maxCommitGroup && !p.queue[n].rotate {
			group = append(group, p.queue[n])
			n++
		}
		p.queue = p.queue[:copy(p.queue, p.queue[n:])]
		p.mu.Unlock()
	}

	var err error
	if w.rotate {
		err = d.rotateMemtable()
	} else {
		err = d.commitGroup(group)
	}
	for _, g := range group {
		g.err = err
		close(g.done)
	}

	// Handoff: promote the queue head, or retire if nobody is waiting. After
	// Close marks the pipeline closed the queue is already drained (failed
	// with ErrClosed), so the empty-queue branch also covers shutdown.
	p.mu.Lock()
	if len(p.queue) == 0 {
		p.leading = false
		p.idle.Broadcast()
		p.mu.Unlock()
		return
	}
	next := p.queue[0]
	p.queue = p.queue[:copy(p.queue, p.queue[1:])]
	p.mu.Unlock()
	close(next.lead)
}

// commitClose shuts the pipeline down: new senders fail with ErrClosed,
// queued waiters that no leader will ever claim are failed, and the call
// blocks until the in-flight leader (if any) retires.
func (d *DB) commitClose() {
	p := &d.commit
	p.mu.Lock()
	p.closed = true
	for _, f := range p.queue {
		f.err = ErrClosed
		close(f.done)
	}
	p.queue = nil
	for p.leading {
		p.idle.Wait()
	}
	p.mu.Unlock()
}

// commitGroup persists one group: one merged WAL record, at most one fsync,
// one memtable apply pass. Runs only on the leader.
func (d *DB) commitGroup(group []*commitWaiter) error {
	if err := d.makeRoomForWrite(); err != nil {
		return err
	}

	seqBase := base.SeqNum(d.lastSeq.Load()) + 1
	next := seqBase
	needSync := false
	var count uint32
	for _, r := range group {
		r.batch.setSeq(next)
		next += base.SeqNum(r.batch.Count())
		count += r.batch.Count()
		if r.sync {
			needSync = true
		}
	}

	d.mu.Lock()
	w := d.walWriter
	mem := d.mem
	d.mu.Unlock()

	// One record for the whole group. A single-writer group commits its own
	// encoding unchanged; a multi-writer group concatenates the bodies under
	// a fresh header (seqBase, total count) in the leader's scratch buffer,
	// leaving the callers' batches untouched. decodeBatch assigns seqs
	// consecutively from the header, which is exactly the per-batch
	// assignment above.
	rec := group[0].batch.data
	if len(group) > 1 {
		p := &d.commit
		scratch := p.scratch[:0]
		var hdr [batchHeaderLen]byte
		binary.LittleEndian.PutUint64(hdr[:8], uint64(seqBase))
		binary.LittleEndian.PutUint32(hdr[8:12], count)
		scratch = append(scratch, hdr[:]...)
		for _, r := range group {
			scratch = append(scratch, r.batch.data[batchHeaderLen:]...)
		}
		p.scratch = scratch
		rec = scratch
	}

	if !d.opts.DisableWAL {
		if err := w.AddRecord(rec); err != nil {
			d.setBGErr(err)
			return errDegraded(err)
		}
		d.metWAL.Add(int64(len(rec)))
		if needSync {
			if err := w.Sync(); err != nil {
				d.setBGErr(err)
				return errDegraded(err)
			}
			d.metWALSyncs.Add(1)
			metrics.Engine.WALSyncs.Add(1)
		}
	}

	err := decodeBatch(rec, func(seq base.SeqNum, kind base.Kind, key, value []byte) error {
		mem.add(seq, kind, key, value)
		return nil
	})
	if err != nil {
		d.setBGErr(err)
		return errDegraded(err)
	}
	d.lastSeq.Store(uint64(next - 1))
	d.metWrites.Add(int64(len(group)))
	metrics.Engine.Writes.Add(int64(len(group)))
	if len(group) > 1 {
		metrics.Engine.GroupedCommits.Add(1)
		metrics.Engine.GroupedWriters.Add(int64(len(group)))
	}
	if hook := d.commitHook; hook != nil {
		hook(len(group), seqBase, next-1, rec)
	}
	return nil
}
