package lsm

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"shield/internal/vfs"
)

// TestIteratorSnapshotConsistencyUnderSubcompactions is the snapshot
// property test for the parallel scheduler: an iterator opened at sequence
// S must observe exactly the database state at S — every key exactly once,
// in order, with the value written in round r — while concurrent writers
// overwrite every key and subcompacted parallel jobs rewrite the levels
// underneath it. A half-installed version edit or a shard dropping records
// visible at S would surface here as a missing, duplicated, or
// future-valued key.
func TestIteratorSnapshotConsistencyUnderSubcompactions(t *testing.T) {
	fs := vfs.NewMem()
	opts := testOptions(fs)
	opts.MemtableSize = 16 << 10
	opts.BaseLevelSize = 32 << 10
	opts.TargetFileSize = 8 << 10
	opts.L0CompactionTrigger = 2
	opts.MaxBackgroundJobs = 4
	opts.MaxSubcompactions = 4
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const numKeys = 400
	rounds := 6
	if testing.Short() {
		rounds = 3
	}
	key := func(k int) []byte { return []byte(fmt.Sprintf("key-%05d", k)) }
	val := func(k, round int) []byte {
		return []byte(fmt.Sprintf("key-%05d-round-%04d-padpadpadpadpadpadpadpad", k, round))
	}

	writeRound := func(round int) {
		for k := 0; k < numKeys; k++ {
			if err := db.Put(key(k), val(k, round)); err != nil {
				t.Fatalf("round %d put: %v", round, err)
			}
			// Delete-and-rewrite a stripe of keys each round so compactions
			// have tombstones to drop underneath the open iterator.
			if k%7 == round%7 {
				if err := db.Delete(key(k)); err != nil {
					t.Fatalf("round %d delete: %v", round, err)
				}
				if err := db.Put(key(k), val(k, round)); err != nil {
					t.Fatalf("round %d re-put: %v", round, err)
				}
			}
		}
	}

	writeRound(0)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	for round := 1; round <= rounds; round++ {
		// The iterator pins the view as of the end of round-1.
		it, err := db.NewIter()
		if err != nil {
			t.Fatal(err)
		}

		// Meanwhile: overwrite everything with round's values and force
		// compaction churn (flushes + manual range compaction) so the
		// files backing the iterator are rewritten and zombied under it.
		var wg sync.WaitGroup
		wg.Add(1)
		go func(round int) {
			defer wg.Done()
			writeRound(round)
			if err := db.Flush(); err != nil {
				t.Errorf("round %d flush: %v", round, err)
				return
			}
			if err := db.CompactRange(); err != nil {
				t.Errorf("round %d compact: %v", round, err)
			}
		}(round)

		// Slow forward scan: yield regularly so the rewrite makes progress
		// mid-iteration.
		want := 0
		for ok := it.First(); ok; ok = it.Next() {
			if string(it.Key()) != string(key(want)) {
				t.Fatalf("round %d: iterator position %d saw key %q, want %q",
					round, want, it.Key(), key(want))
			}
			if string(it.Value()) != string(val(want, round-1)) {
				t.Fatalf("round %d: key %q saw value %q, want round-%d value",
					round, it.Key(), it.Value(), round-1)
			}
			want++
			if want%20 == 0 {
				runtime.Gosched()
			}
		}
		if err := it.Err(); err != nil {
			t.Fatalf("round %d iterator error: %v", round, err)
		}
		if want != numKeys {
			t.Fatalf("round %d: iterator yielded %d keys, want %d", round, want, numKeys)
		}

		// A reverse sweep over the same snapshot must agree.
		back := numKeys
		for ok := it.Last(); ok; ok = it.Prev() {
			back--
			if string(it.Key()) != string(key(back)) {
				t.Fatalf("round %d: reverse position %d saw key %q, want %q",
					round, back, it.Key(), key(back))
			}
		}
		if back != 0 {
			t.Fatalf("round %d: reverse scan yielded %d keys, want %d", round, numKeys-back, numKeys)
		}

		wg.Wait()
		if err := it.Close(); err != nil {
			t.Fatalf("round %d iterator close: %v", round, err)
		}
	}

	m := db.Metrics()
	t.Logf("compactions=%d subcompactions=%d", m.Compactions, m.Subcompactions)
	if m.Compactions == 0 {
		t.Fatal("test never compacted; property not exercised")
	}
}
