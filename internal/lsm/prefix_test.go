package lsm

import (
	"bytes"
	"fmt"
	"testing"

	"shield/internal/vfs"
)

// dashPrefix extracts up to and including the first '-' — "p07-0012" -> "p07-".
func dashPrefix(k []byte) []byte {
	if i := bytes.IndexByte(k, '-'); i >= 0 {
		return k[:i+1]
	}
	return k
}

// TestSeekPrefixGEEquivalence checks the prefix read path against the
// unfiltered one: for every prefix (present and absent), iterating with
// SeekPrefixGE must yield exactly the keys a plain SeekGE scan bounded to
// the prefix yields — across memtable data, L0 files with prefix blooms, and
// compacted levels without them.
func TestSeekPrefixGEEquivalence(t *testing.T) {
	fs := vfs.NewMem()
	opts := testOptions(fs)
	opts.PrefixExtractor = dashPrefix
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Three placement phases: compacted levels, flushed L0, live memtable.
	const prefixes, perPrefix = 12, 30
	phase := 0
	write := func(lo, hi int) {
		for p := lo; p < hi; p++ {
			for i := 0; i < perPrefix; i++ {
				k := fmt.Sprintf("p%02d-%04d", p, i)
				if err := db.Put([]byte(k), []byte(fmt.Sprintf("v%d-%d-%d", phase, p, i))); err != nil {
					t.Fatal(err)
				}
			}
		}
		phase++
	}
	write(0, 4)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.CompactRange(); err != nil {
		t.Fatal(err)
	}
	write(4, 8)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	write(8, prefixes)
	// Tombstones must shadow through a prefix seek too.
	if err := db.Delete([]byte("p05-0000")); err != nil {
		t.Fatal(err)
	}

	scanPlain := func(prefix string) []string {
		it, err := db.NewIter()
		if err != nil {
			t.Fatal(err)
		}
		defer it.Close()
		var out []string
		for ok := it.SeekGE([]byte(prefix)); ok; ok = it.Next() {
			if !bytes.HasPrefix(it.Key(), []byte(prefix)) {
				break
			}
			out = append(out, string(it.Key())+"="+string(it.Value()))
		}
		if err := it.Err(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	scanPrefix := func(prefix string) []string {
		it, err := db.NewIter()
		if err != nil {
			t.Fatal(err)
		}
		defer it.Close()
		var out []string
		for ok := it.SeekPrefixGE([]byte(prefix)); ok; ok = it.Next() {
			out = append(out, string(it.Key())+"="+string(it.Value()))
		}
		if err := it.Err(); err != nil {
			t.Fatal(err)
		}
		return out
	}

	for p := -2; p < prefixes+2; p++ {
		prefix := fmt.Sprintf("p%02d-", p)
		want := scanPlain(prefix)
		got := scanPrefix(prefix)
		if len(got) != len(want) {
			t.Fatalf("prefix %s: SeekPrefixGE saw %d keys, SeekGE saw %d", prefix, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("prefix %s entry %d: got %s want %s", prefix, i, got[i], want[i])
			}
		}
		if p >= 0 && p < prefixes {
			wantN := perPrefix
			if p == 5 {
				wantN-- // the tombstone
			}
			if len(got) != wantN {
				t.Fatalf("prefix %s: %d keys, want %d", prefix, len(got), wantN)
			}
		} else if len(got) != 0 {
			t.Fatalf("absent prefix %s yielded %d keys", prefix, len(got))
		}
	}

	m := db.Metrics()
	if m.PrefixSeeks == 0 {
		t.Fatal("no prefix seeks counted")
	}
	if m.PrefixSkips == 0 {
		t.Fatal("no table was ever skipped by a prefix bloom (filters not consulted?)")
	}
	t.Logf("prefix_seeks=%d prefix_skips=%d", m.PrefixSeeks, m.PrefixSkips)

	// A mid-prefix start position is honored.
	it, err := db.NewIter()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if !it.SeekPrefixGE([]byte("p09-0015")) {
		t.Fatal("SeekPrefixGE(p09-0015) found nothing")
	}
	if got := string(it.Key()); got != "p09-0015" {
		t.Fatalf("SeekPrefixGE(p09-0015) landed on %s", got)
	}
	// Without an extractor SeekPrefixGE is exactly SeekGE (crosses prefixes).
	db2opts := testOptions(fs)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open("db", db2opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	it2, err := db2.NewIter()
	if err != nil {
		t.Fatal(err)
	}
	defer it2.Close()
	if !it2.SeekPrefixGE([]byte("p03-9999")) {
		t.Fatal("extractor-less SeekPrefixGE found nothing")
	}
	if got := string(it2.Key()); got != "p04-0000" {
		t.Fatalf("extractor-less SeekPrefixGE = %s, want p04-0000 (plain SeekGE semantics)", got)
	}
}

// TestPinL0AndMetaPinsBlocks: with the option on, flushed L0 data and table
// metadata occupy the cache's pinned class (visible in Metrics), reads still
// work after heavy churn, and turning the option off pins nothing.
func TestPinL0AndMetaPinsBlocks(t *testing.T) {
	fs := vfs.NewMem()
	opts := testOptions(fs)
	opts.PinL0AndMeta = true
	opts.L0CompactionTrigger = 100 // keep files in L0
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}

	for f := 0; f < 3; f++ {
		for i := 0; i < 50; i++ {
			k := fmt.Sprintf("f%d-%04d", f, i)
			if err := db.Put([]byte(k), bytes.Repeat([]byte("v"), 64)); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	// Touch every key so L0 data blocks flow through the read path.
	for f := 0; f < 3; f++ {
		for i := 0; i < 50; i++ {
			if _, err := db.Get([]byte(fmt.Sprintf("f%d-%04d", f, i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	m := db.Metrics()
	if m.BlockCachePinned == 0 {
		t.Fatal("PinL0AndMeta on, but pinned charge is zero after L0 reads")
	}
	t.Logf("pinned=%dB hits=%d misses=%d", m.BlockCachePinned, m.BlockCacheHits, m.BlockCacheMisses)

	// Recovery pins too: reopen and read before any flush.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db, err = Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("f0-0000")); err != nil {
		t.Fatal(err)
	}
	if m := db.Metrics(); m.BlockCachePinned == 0 {
		t.Fatal("no pinned charge after recovery with PinL0AndMeta")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Feature off: nothing pinned.
	off := testOptions(fs)
	db2, err := Open("db", off)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for f := 0; f < 3; f++ {
		if _, err := db2.Get([]byte(fmt.Sprintf("f%d-0000", f))); err != nil {
			t.Fatal(err)
		}
	}
	if m := db2.Metrics(); m.BlockCachePinned != 0 {
		t.Fatalf("PinL0AndMeta off but pinned charge = %d", m.BlockCachePinned)
	}
}
