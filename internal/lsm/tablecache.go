package lsm

import (
	"fmt"
	"sync"

	"shield/internal/cache"
	"shield/internal/lsm/sstable"
	"shield/internal/vfs"
)

// tableCache keeps SST readers open and refcounted. Readers stay usable
// until every borrower releases them, even after the file is dropped from
// the version set.
type tableCache struct {
	fs         vfs.FS
	dir        string
	wrapper    FileWrapper
	blockCache *cache.LRU
	// pinMeta charges every reader's index/filter bytes to the block cache's
	// pinned class (Options.PinL0AndMeta). Set once at Open, read-only after.
	pinMeta bool

	mu      sync.Mutex
	entries map[uint64]*tableEntry
	// pinData marks files (L0) whose data blocks are cached pinned. Files
	// are marked before their first reader opens and unmarked on evict.
	pinData map[uint64]bool
}

type tableEntry struct {
	reader *sstable.Reader
	refs   int
	dead   bool // evicted; close when refs drop to zero
}

func newTableCache(fs vfs.FS, dir string, wrapper FileWrapper, blockCache *cache.LRU) *tableCache {
	return &tableCache{
		fs:         fs,
		dir:        dir,
		wrapper:    wrapper,
		blockCache: blockCache,
		entries:    make(map[uint64]*tableEntry),
		pinData:    make(map[uint64]bool),
	}
}

// setPinData marks fileNum's data blocks for the pinned cache class. Must be
// called before the file's first reader opens (at flush install / recovery).
func (tc *tableCache) setPinData(fileNum uint64) {
	tc.mu.Lock()
	tc.pinData[fileNum] = true
	tc.mu.Unlock()
}

// get returns an open reader for fileNum and a release function the caller
// must invoke when done.
func (tc *tableCache) get(fileNum uint64) (*sstable.Reader, func(), error) {
	tc.mu.Lock()
	if e, ok := tc.entries[fileNum]; ok && !e.dead {
		e.refs++
		tc.mu.Unlock()
		return e.reader, func() { tc.release(fileNum, e) }, nil
	}
	tc.mu.Unlock()

	// Open outside the lock; racing opens are reconciled below.
	name := sstFileName(tc.dir, fileNum)
	raw, err := tc.fs.Open(name)
	if err != nil {
		return nil, nil, fmt.Errorf("lsm: opening table %d: %w", fileNum, err)
	}
	wrapped, err := tc.wrapper.WrapOpen(name, FileKindSST, raw)
	if err != nil {
		raw.Close()
		return nil, nil, err
	}
	tc.mu.Lock()
	pinData := tc.pinData[fileNum]
	tc.mu.Unlock()
	reader, err := sstable.NewReader(wrapped, sstable.ReaderOptions{
		Cache:   tc.blockCache,
		FileNum: fileNum,
		PinMeta: tc.pinMeta,
		PinData: pinData,
	})
	if err != nil {
		wrapped.Close()
		return nil, nil, fmt.Errorf("lsm: table %d: %w", fileNum, err)
	}

	tc.mu.Lock()
	if e, ok := tc.entries[fileNum]; ok && !e.dead {
		// Lost the race; use the existing entry.
		e.refs++
		tc.mu.Unlock()
		reader.Close()
		return e.reader, func() { tc.release(fileNum, e) }, nil
	}
	e := &tableEntry{reader: reader, refs: 2} // 1 cache ref + 1 borrower
	tc.entries[fileNum] = e
	tc.mu.Unlock()
	return e.reader, func() { tc.release(fileNum, e) }, nil
}

func (tc *tableCache) release(fileNum uint64, e *tableEntry) {
	tc.mu.Lock()
	e.refs--
	shouldClose := e.refs == 0
	if shouldClose {
		delete(tc.entries, fileNum)
	}
	tc.mu.Unlock()
	if shouldClose {
		e.reader.Close()
	}
}

// evict drops the cache's own reference for a deleted file and purges its
// blocks from the block cache.
func (tc *tableCache) evict(fileNum uint64) {
	tc.mu.Lock()
	delete(tc.pinData, fileNum)
	e, ok := tc.entries[fileNum]
	if ok && !e.dead {
		e.dead = true
		e.refs--
		if e.refs == 0 {
			delete(tc.entries, fileNum)
			tc.mu.Unlock()
			e.reader.Close()
			if tc.blockCache != nil {
				tc.blockCache.EvictFile(fileNum)
			}
			return
		}
	}
	tc.mu.Unlock()
	if tc.blockCache != nil {
		tc.blockCache.EvictFile(fileNum)
	}
}

// close releases every cached reader; outstanding borrows keep theirs alive.
func (tc *tableCache) close() {
	tc.mu.Lock()
	var toClose []*sstable.Reader
	for num, e := range tc.entries {
		if !e.dead {
			e.dead = true
			e.refs--
			if e.refs == 0 {
				toClose = append(toClose, e.reader)
				delete(tc.entries, num)
			}
		}
	}
	tc.mu.Unlock()
	for _, r := range toClose {
		r.Close()
	}
}
