package lsm

import (
	"bytes"
	"container/heap"

	"shield/internal/lsm/base"
	"shield/internal/lsm/sstable"
)

// internalIterator walks internal-key/value entries in ascending
// internal-key order.
type internalIterator interface {
	First() bool
	Next() bool
	SeekGE(target []byte) bool

	// SeekLT and Last position in reverse: at the largest entry < target,
	// or the largest entry overall. After a reverse positioning only
	// Valid/Key/Value are defined until the next positioning call — calling
	// Next from a reverse position is unsupported. (The DB iterator builds
	// its Prev on one-shot reverse queries followed by forward re-seeks.)
	SeekLT(target []byte) bool
	Last() bool

	Valid() bool
	Key() []byte
	Value() []byte
	Err() error
	Close() error
}

// prefixSeeker is the optional fast path for prefix-scoped seeks: position at
// the first entry >= target, or report false without error when the source
// provably holds no key with the given extractor prefix (a bloom-filter
// skip). Sources without the interface fall back to a plain SeekGE — the
// filter only ever removes work, never entries.
type prefixSeeker interface {
	SeekPrefixGE(prefix, target []byte) bool
}

// sstIterAdapter adapts sstable.Iter and owns the table-cache release.
type sstIterAdapter struct {
	it      *sstable.Iter
	release func()
	// wrapErr, when set, types errors surfacing from lazy block loads
	// (e.g. a sealed block failing authentication mid-iteration).
	wrapErr func(error) error
	// mayContainPrefix, when set, consults the table's prefix bloom filter;
	// a definite miss lets SeekPrefixGE skip the table entirely.
	mayContainPrefix func(prefix []byte) bool
}

func (s *sstIterAdapter) First() bool               { return s.it.First() }
func (s *sstIterAdapter) Next() bool                { return s.it.Next() }
func (s *sstIterAdapter) SeekGE(target []byte) bool { return s.it.SeekGE(target) }

// SeekPrefixGE skips the table when its prefix bloom proves the prefix
// absent; otherwise it degrades to a plain SeekGE.
func (s *sstIterAdapter) SeekPrefixGE(prefix, target []byte) bool {
	if s.mayContainPrefix != nil && !s.mayContainPrefix(prefix) {
		return false
	}
	return s.it.SeekGE(target)
}
func (s *sstIterAdapter) SeekLT(target []byte) bool { return s.it.SeekLT(target) }
func (s *sstIterAdapter) Last() bool                { return s.it.Last() }
func (s *sstIterAdapter) Valid() bool               { return s.it.Valid() }
func (s *sstIterAdapter) Key() []byte               { return s.it.Key() }
func (s *sstIterAdapter) Value() []byte             { return s.it.Value() }
func (s *sstIterAdapter) Err() error {
	err := s.it.Err()
	if err != nil && s.wrapErr != nil {
		return s.wrapErr(err)
	}
	return err
}

func (s *sstIterAdapter) Close() error {
	if s.release != nil {
		s.release()
		s.release = nil
	}
	return nil
}

// mergingIter merges several internalIterators by internal-key order using
// a binary heap.
type mergingIter struct {
	iters []internalIterator // all children (for Close)
	h     iterHeap
	err   error
}

type iterHeap []internalIterator

func (h iterHeap) Len() int { return len(h) }
func (h iterHeap) Less(i, j int) bool {
	return base.CompareInternal(h[i].Key(), h[j].Key()) < 0
}
func (h iterHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *iterHeap) Push(x any)   { *h = append(*h, x.(internalIterator)) }
func (h *iterHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

func newMergingIter(iters ...internalIterator) *mergingIter {
	return &mergingIter{iters: iters}
}

func (m *mergingIter) initHeap(position func(internalIterator) bool) bool {
	m.h = m.h[:0]
	for _, it := range m.iters {
		if position(it) {
			m.h = append(m.h, it)
		} else if err := it.Err(); err != nil {
			m.err = err
			return false
		}
	}
	heap.Init(&m.h)
	return len(m.h) > 0
}

func (m *mergingIter) First() bool {
	return m.initHeap(func(it internalIterator) bool { return it.First() })
}

func (m *mergingIter) SeekGE(target []byte) bool {
	return m.initHeap(func(it internalIterator) bool { return it.SeekGE(target) })
}

// SeekPrefixGE seeks every child, letting prefix-aware children (SST tables,
// level runs) skip themselves via their bloom filters. Children without the
// fast path (memtables) do a full SeekGE, so no visible prefixed entry is
// ever lost.
func (m *mergingIter) SeekPrefixGE(prefix, target []byte) bool {
	return m.initHeap(func(it internalIterator) bool {
		if ps, ok := it.(prefixSeeker); ok {
			return ps.SeekPrefixGE(prefix, target)
		}
		return it.SeekGE(target)
	})
}

// reverseSelect positions every child with pos and keeps only the child
// holding the maximum key — the one-shot reverse query of the
// internalIterator contract.
func (m *mergingIter) reverseSelect(pos func(internalIterator) bool) bool {
	var best internalIterator
	for _, it := range m.iters {
		if pos(it) {
			if best == nil || base.CompareInternal(it.Key(), best.Key()) > 0 {
				best = it
			}
		} else if err := it.Err(); err != nil {
			m.err = err
			return false
		}
	}
	m.h = m.h[:0]
	if best == nil {
		return false
	}
	m.h = append(m.h, best)
	return true
}

// SeekLT positions at the largest entry < target.
func (m *mergingIter) SeekLT(target []byte) bool {
	return m.reverseSelect(func(it internalIterator) bool { return it.SeekLT(target) })
}

// Last positions at the overall largest entry.
func (m *mergingIter) Last() bool {
	return m.reverseSelect(func(it internalIterator) bool { return it.Last() })
}

func (m *mergingIter) Next() bool {
	if len(m.h) == 0 {
		return false
	}
	top := m.h[0]
	if top.Next() {
		heap.Fix(&m.h, 0)
	} else {
		if err := top.Err(); err != nil {
			m.err = err
			return false
		}
		heap.Pop(&m.h)
	}
	return len(m.h) > 0
}

func (m *mergingIter) Valid() bool   { return m.err == nil && len(m.h) > 0 }
func (m *mergingIter) Key() []byte   { return m.h[0].Key() }
func (m *mergingIter) Value() []byte { return m.h[0].Value() }
func (m *mergingIter) Err() error    { return m.err }

func (m *mergingIter) Close() error {
	var first error
	for _, it := range m.iters {
		if err := it.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Iterator is the user-facing DB iterator: it exposes the newest visible
// version of each user key at its snapshot, hiding tombstones and older
// versions.
type Iterator struct {
	m       *mergingIter
	seq     base.SeqNum
	key     []byte
	value   []byte
	valid   bool
	onClose func()

	// prefixExtract mirrors Options.PrefixExtractor; nil disables
	// SeekPrefixGE's filter path. onPrefixSeek, when set, counts prefix
	// seeks for metrics.
	prefixExtract func(userKey []byte) []byte
	onPrefixSeek  func()
	// activePrefix/prefixMode scope iteration after SeekPrefixGE: tables
	// whose blooms miss were skipped, so the stream is only complete while
	// keys still carry the prefix.
	activePrefix []byte
	prefixMode   bool
}

// findNextUserKey advances the merged stream to the next visible user entry
// at or after the merged iterator's current position.
func (it *Iterator) findNextUserKey(skipCurrent []byte) {
	it.valid = false
	for it.m.Valid() {
		ikey := it.m.Key()
		ukey := base.UserKey(ikey)
		seq, kind := base.DecodeTrailer(ikey)
		if seq > it.seq || (skipCurrent != nil && bytes.Equal(ukey, skipCurrent)) {
			// Invisible at this snapshot, or an older version of a key we
			// already emitted (or just skipped): move on.
			it.m.Next()
			continue
		}
		if kind == base.KindDelete {
			// Tombstone: skip every older version of this key.
			skipCurrent = append([]byte(nil), ukey...)
			it.m.Next()
			continue
		}
		it.key = append(it.key[:0], ukey...)
		it.value = append(it.value[:0], it.m.Value()...)
		it.valid = true
		return
	}
}

// First positions at the smallest visible key.
func (it *Iterator) First() bool {
	it.prefixMode = false
	if !it.m.First() {
		it.valid = false
		return false
	}
	it.findNextUserKey(nil)
	return it.valid
}

// SeekGE positions at the first visible key >= userKey.
func (it *Iterator) SeekGE(userKey []byte) bool {
	it.prefixMode = false
	if !it.m.SeekGE(base.SearchKey(userKey, it.seq)) {
		it.valid = false
		return false
	}
	it.findNextUserKey(nil)
	return it.valid
}

// SeekPrefixGE positions at the first visible key >= userKey that shares
// userKey's extractor prefix, consulting per-table prefix bloom filters to
// skip tables that provably lack the prefix. Without a configured
// PrefixExtractor it is exactly SeekGE. After a successful prefix seek the
// iterator is scoped to the prefix: Next returns false at the first key past
// it, and reverse positioning (Prev/SeekLT/Last) leaves prefix mode.
func (it *Iterator) SeekPrefixGE(userKey []byte) bool {
	if it.prefixExtract == nil {
		return it.SeekGE(userKey)
	}
	if it.onPrefixSeek != nil {
		it.onPrefixSeek()
	}
	it.activePrefix = append(it.activePrefix[:0], it.prefixExtract(userKey)...)
	it.prefixMode = true
	if !it.m.SeekPrefixGE(it.activePrefix, base.SearchKey(userKey, it.seq)) {
		it.valid = false
		return false
	}
	it.findNextUserKey(nil)
	if it.valid && !bytes.HasPrefix(it.key, it.activePrefix) {
		it.valid = false
	}
	return it.valid
}

// Next advances to the next visible key.
func (it *Iterator) Next() bool {
	if !it.valid {
		return false
	}
	cur := append([]byte(nil), it.key...)
	it.m.Next()
	it.findNextUserKey(cur)
	if it.valid && it.prefixMode && !bytes.HasPrefix(it.key, it.activePrefix) {
		it.valid = false
	}
	return it.valid
}

// resolveBackward emits the newest visible, non-deleted version of the
// largest user key strictly below bound (nil bound = unbounded). Each step
// is a one-shot reverse query for the previous user key followed by a
// forward seek for its visible version — O(log n) per step, the classic
// cost asymmetry of backward LSM iteration.
func (it *Iterator) resolveBackward(bound []byte) bool {
	it.valid = false
	it.prefixMode = false
	unbounded := bound == nil
	cur := append([]byte(nil), bound...)
	for {
		// Largest internal key strictly below every version of cur
		// (SearchKey(cur, MaxSeqNum) is cur's smallest internal key); an
		// unbounded first step starts from the very end.
		var ok bool
		if unbounded {
			ok = it.m.Last()
			unbounded = false
		} else {
			ok = it.m.SeekLT(base.SearchKey(cur, base.MaxSeqNum))
		}
		if !ok {
			return false
		}
		prevUser := append([]byte(nil), base.UserKey(it.m.Key())...)

		// Forward seek to prevUser's newest visible version.
		if !it.m.SeekGE(base.SearchKey(prevUser, it.seq)) {
			return false
		}
		ikey := it.m.Key()
		if !bytes.Equal(base.UserKey(ikey), prevUser) {
			// No version of prevUser visible at this snapshot.
			cur = prevUser
			continue
		}
		if _, kind := base.DecodeTrailer(ikey); kind == base.KindDelete {
			cur = prevUser
			continue
		}
		it.key = append(it.key[:0], prevUser...)
		it.value = append(it.value[:0], it.m.Value()...)
		it.valid = true
		return true
	}
}

// Last positions at the largest visible key.
func (it *Iterator) Last() bool { return it.resolveBackward(nil) }

// SeekLT positions at the largest visible key strictly less than userKey.
func (it *Iterator) SeekLT(userKey []byte) bool {
	if userKey == nil {
		userKey = []byte{}
	}
	return it.resolveBackward(userKey)
}

// Prev steps to the previous visible key. Valid after any positioning call
// (First, Last, SeekGE, SeekLT, Next, Prev).
func (it *Iterator) Prev() bool {
	if !it.valid {
		return false
	}
	return it.resolveBackward(it.key)
}

// Valid reports whether the iterator is positioned at an entry.
func (it *Iterator) Valid() bool { return it.valid }

// Key returns the current user key; valid until the next call.
func (it *Iterator) Key() []byte { return it.key }

// Value returns the current value; valid until the next call.
func (it *Iterator) Value() []byte { return it.value }

// Err returns the first error encountered.
func (it *Iterator) Err() error { return it.m.Err() }

// Close releases pinned tables and memtables.
func (it *Iterator) Close() error {
	err := it.m.Close()
	if it.onClose != nil {
		it.onClose()
		it.onClose = nil
	}
	return err
}

// concatIter iterates a sorted, non-overlapping run of files (one L1+
// level) lazily, opening one table at a time.
type concatIter struct {
	files []fileHandle
	idx   int
	cur   internalIterator
	err   error
}

// fileHandle defers table opening to iteration time.
type fileHandle struct {
	open func() (internalIterator, error)
	// smallest/largest bound the file in internal-key space.
	smallest, largest []byte
}

func newConcatIter(files []fileHandle) *concatIter {
	return &concatIter{files: files, idx: -1}
}

func (c *concatIter) closeCur() {
	if c.cur != nil {
		c.cur.Close()
		c.cur = nil
	}
}

func (c *concatIter) openIdx() bool {
	c.closeCur()
	if c.idx < 0 || c.idx >= len(c.files) {
		return false
	}
	it, err := c.files[c.idx].open()
	if err != nil {
		c.err = err
		return false
	}
	c.cur = it
	return true
}

func (c *concatIter) First() bool {
	c.idx = 0
	if !c.openIdx() {
		return false
	}
	if c.cur.First() {
		return true
	}
	return c.Next()
}

func (c *concatIter) Next() bool {
	if c.err != nil {
		return false
	}
	for {
		if c.cur != nil && c.cur.Next() {
			return true
		}
		if c.cur != nil {
			if err := c.cur.Err(); err != nil {
				c.err = err
				return false
			}
		}
		c.idx++
		if !c.openIdx() {
			return false
		}
		if c.cur.First() {
			return true
		}
	}
}

func (c *concatIter) SeekGE(target []byte) bool {
	// Binary-search the file whose largest >= target.
	lo, hi := 0, len(c.files)
	for lo < hi {
		mid := (lo + hi) / 2
		if base.CompareInternal(c.files[mid].largest, target) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	c.idx = lo
	if !c.openIdx() {
		return false
	}
	if c.cur.SeekGE(target) {
		return true
	}
	return c.Next()
}

// SeekPrefixGE walks the run from the file that would hold target, trying a
// prefix-filtered seek per file and stopping once a file's smallest key lies
// past the prefix range — in a sorted non-overlapping run no later file can
// hold a prefixed key either.
func (c *concatIter) SeekPrefixGE(prefix, target []byte) bool {
	lo, hi := 0, len(c.files)
	for lo < hi {
		mid := (lo + hi) / 2
		if base.CompareInternal(c.files[mid].largest, target) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for c.idx = lo; c.idx < len(c.files); c.idx++ {
		// A user key greater than the prefix that does not extend it sorts
		// after every key carrying the prefix.
		small := base.UserKey(c.files[c.idx].smallest)
		if bytes.Compare(small, prefix) > 0 && !bytes.HasPrefix(small, prefix) {
			break
		}
		if !c.openIdx() {
			return false
		}
		var ok bool
		if ps, isPS := c.cur.(prefixSeeker); isPS {
			ok = ps.SeekPrefixGE(prefix, target)
		} else {
			ok = c.cur.SeekGE(target)
		}
		if ok {
			return true
		}
		if err := c.cur.Err(); err != nil {
			c.err = err
			return false
		}
	}
	c.closeCur()
	return false
}

// SeekLT positions at the largest entry < target across the run.
func (c *concatIter) SeekLT(target []byte) bool {
	if len(c.files) == 0 {
		return false
	}
	// The first file whose largest >= target can still hold entries below
	// target when its smallest is below; otherwise the previous file is
	// entirely below target.
	lo, hi := 0, len(c.files)
	for lo < hi {
		mid := (lo + hi) / 2
		if base.CompareInternal(c.files[mid].largest, target) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(c.files) && base.CompareInternal(c.files[lo].smallest, target) < 0 {
		c.idx = lo
		if !c.openIdx() {
			return false
		}
		if c.cur.SeekLT(target) {
			return true
		}
		if err := c.cur.Err(); err != nil {
			c.err = err
			return false
		}
	}
	if lo == 0 {
		c.closeCur()
		return false
	}
	c.idx = lo - 1
	if !c.openIdx() {
		return false
	}
	return c.cur.Last()
}

// Last positions at the run's final entry.
func (c *concatIter) Last() bool {
	if len(c.files) == 0 {
		return false
	}
	c.idx = len(c.files) - 1
	if !c.openIdx() {
		return false
	}
	return c.cur.Last()
}

func (c *concatIter) Valid() bool   { return c.err == nil && c.cur != nil && c.cur.Valid() }
func (c *concatIter) Key() []byte   { return c.cur.Key() }
func (c *concatIter) Value() []byte { return c.cur.Value() }
func (c *concatIter) Err() error    { return c.err }

func (c *concatIter) Close() error {
	c.closeCur()
	return nil
}
