package lsm

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"shield/internal/vfs"
)

// buildScrubDB creates a small multi-SST database and closes it cleanly.
// Compaction is disabled so each flush leaves an independent L0 file —
// corrupting or dropping one must not take the whole key space with it.
func buildScrubDB(t *testing.T, fs vfs.FS) {
	t.Helper()
	opts := testOptions(fs)
	opts.L0CompactionTrigger = 100
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ {
		for i := 0; i < 100; i++ {
			k := fmt.Sprintf("r%d-k%03d", round, i)
			if err := db.Put([]byte(k), make([]byte, 128)); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// listNames returns the base names in dir, or empty on error.
func listNames(t *testing.T, fs vfs.FS, dir string) []string {
	t.Helper()
	entries, err := fs.List(dir)
	if err != nil {
		return nil
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name)
	}
	return names
}

func firstSST(t *testing.T, fs vfs.FS) string {
	t.Helper()
	for _, name := range listNames(t, fs, "db") {
		if strings.HasSuffix(name, ".sst") {
			return "db/" + name
		}
	}
	t.Fatal("no SST files")
	return ""
}

// flipByte flips one bit in the middle of a file.
func flipByte(t *testing.T, fs vfs.FS, name string) {
	t.Helper()
	data, err := vfs.ReadFile(fs, name)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := vfs.WriteFile(fs, name, data); err != nil {
		t.Fatal(err)
	}
}

func TestScrubCleanDB(t *testing.T) {
	fs := vfs.NewMem()
	buildScrubDB(t, fs)
	rep, err := Scrub(fs, "db", ScrubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("clean DB not clean:\n%s", rep)
	}
	if rep.SSTsChecked == 0 || rep.BlocksVerified == 0 {
		t.Fatalf("nothing verified: %+v", rep)
	}
}

func TestScrubQuarantinesBitFlippedSST(t *testing.T) {
	fs := vfs.NewMem()
	buildScrubDB(t, fs)
	victim := firstSST(t, fs)
	flipByte(t, fs, victim)

	rep, err := Scrub(fs, "db", ScrubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1\n%s", rep.Quarantined, rep)
	}
	if !rep.ManifestRepaired {
		t.Fatalf("manifest not repaired after dropping an SST\n%s", rep)
	}
	// The corrupt file moved into lost/ and out of the data dir.
	base := strings.TrimPrefix(victim, "db/")
	lost := listNames(t, fs, "db/lost")
	found := false
	for _, n := range lost {
		if n == base {
			found = true
		}
	}
	if !found {
		t.Fatalf("victim %s not in lost/: %v", base, lost)
	}
	for _, n := range listNames(t, fs, "db") {
		if n == base {
			t.Fatalf("victim %s still in data dir", base)
		}
	}
	// Recovery (strict, no best-effort) works: the repaired manifest no
	// longer references the quarantined file.
	opts := testOptions(fs)
	opts.ParanoidChecks = true
	db, err := Open("db", opts)
	if err != nil {
		t.Fatalf("reopen after scrub: %v", err)
	}
	db.Close()
}

func TestScrubDryRunTouchesNothing(t *testing.T) {
	fs := vfs.NewMem()
	buildScrubDB(t, fs)
	victim := firstSST(t, fs)
	flipByte(t, fs, victim)
	before := listNames(t, fs, "db")

	rep, err := Scrub(fs, "db", ScrubOptions{DryRun: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Quarantined != 1 {
		t.Fatalf("dry-run quarantined = %d (reported), want 1\n%s", rep.Quarantined, rep)
	}
	after := listNames(t, fs, "db")
	if len(before) != len(after) {
		t.Fatalf("dry run changed the directory: %v -> %v", before, after)
	}
	if names := listNames(t, fs, "db/lost"); len(names) != 0 {
		t.Fatalf("dry run created lost/: %v", names)
	}
}

func TestScrubRepairsTruncatedManifest(t *testing.T) {
	fs := vfs.NewMem()
	buildScrubDB(t, fs)
	var manifestName string
	for _, n := range listNames(t, fs, "db") {
		if strings.HasPrefix(n, "MANIFEST-") {
			manifestName = n
		}
	}
	data, err := vfs.ReadFile(fs, "db/"+manifestName)
	if err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fs, "db/"+manifestName, data[:len(data)-len(data)/3]); err != nil {
		t.Fatal(err)
	}

	rep, err := Scrub(fs, "db", ScrubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ManifestRepaired {
		t.Fatalf("truncated manifest not repaired\n%s", rep)
	}
	db, err := Open("db", testOptions(fs))
	if err != nil {
		t.Fatalf("reopen after manifest repair: %v", err)
	}
	defer db.Close()
	// Keys from the salvaged manifest prefix must still be readable.
	if _, err := db.Get([]byte("r0-k050")); err != nil {
		t.Fatalf("Get after repair: %v", err)
	}
}

func TestScrubMovesOrphans(t *testing.T) {
	fs := vfs.NewMem()
	buildScrubDB(t, fs)
	// Fabricate an unreferenced SST and an interrupted tmp+rename leftover.
	if err := vfs.WriteFile(fs, "db/999999.sst", []byte("junk")); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fs, "db/CURRENT.tmp", []byte("MANIFEST-xxxxxx\n")); err != nil {
		t.Fatal(err)
	}

	rep, err := Scrub(fs, "db", ScrubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Orphans != 2 {
		t.Fatalf("orphans = %d, want 2\n%s", rep.Orphans, rep)
	}
	for _, n := range listNames(t, fs, "db") {
		if n == "999999.sst" || n == "CURRENT.tmp" {
			t.Fatalf("orphan %s still in data dir", n)
		}
	}
}

func TestParanoidChecksRejectsCorruption(t *testing.T) {
	fs := vfs.NewMem()
	buildScrubDB(t, fs)
	flipByte(t, fs, firstSST(t, fs))

	opts := testOptions(fs)
	opts.ParanoidChecks = true
	if _, err := Open("db", opts); !errors.Is(err, ErrCorruption) {
		t.Fatalf("open = %v, want ErrCorruption", err)
	}
	var ce *CorruptionError
	if _, err := Open("db", opts); !errors.As(err, &ce) {
		t.Fatalf("open error %v is not a *CorruptionError", err)
	} else if ce.Kind != FileKindSST {
		t.Fatalf("corruption kind = %v, want sst", ce.Kind)
	}
}

func TestBestEffortRecoveryOpensAroundCorruption(t *testing.T) {
	fs := vfs.NewMem()
	buildScrubDB(t, fs)
	victim := firstSST(t, fs)
	flipByte(t, fs, victim)

	opts := testOptions(fs)
	opts.ParanoidChecks = true
	opts.BestEffortRecovery = true
	db, err := Open("db", opts)
	if err != nil {
		t.Fatalf("best-effort open: %v", err)
	}
	defer db.Close()
	// The corrupt file was quarantined and the rest of the tree serves reads.
	base := strings.TrimPrefix(victim, "db/")
	found := false
	for _, n := range listNames(t, fs, "db/lost") {
		if n == base {
			found = true
		}
	}
	if !found {
		t.Fatalf("victim %s not quarantined into lost/", base)
	}
	readable := 0
	for round := 0; round < 4; round++ {
		for i := 0; i < 100; i++ {
			k := fmt.Sprintf("r%d-k%03d", round, i)
			if _, err := db.Get([]byte(k)); err == nil {
				readable++
			}
		}
	}
	if readable == 0 || readable == 400 {
		t.Fatalf("readable = %d, want some-but-not-all after dropping one SST", readable)
	}
}

func TestBestEffortRecoveryMissingSST(t *testing.T) {
	fs := vfs.NewMem()
	buildScrubDB(t, fs)
	if err := fs.Remove(firstSST(t, fs)); err != nil {
		t.Fatal(err)
	}

	opts := testOptions(fs)
	if _, err := Open("db", opts); err == nil {
		t.Fatal("open with a missing referenced SST succeeded without best-effort")
	}
	opts.BestEffortRecovery = true
	db, err := Open("db", opts)
	if err != nil {
		t.Fatalf("best-effort open with missing SST: %v", err)
	}
	db.Close()
}
