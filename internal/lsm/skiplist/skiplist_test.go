package skiplist

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestInsertAndScan(t *testing.T) {
	l := New(bytes.Compare)
	n := 10_000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		k := fmt.Sprintf("k%06d", i)
		l.Insert([]byte(k), []byte(fmt.Sprintf("v%d", i)))
	}
	if l.Len() != n {
		t.Fatalf("len %d", l.Len())
	}

	it := l.NewIterator()
	count := 0
	var prev []byte
	for it.First(); it.Valid(); it.Next() {
		if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
			t.Fatalf("out of order at %d: %q after %q", count, it.Key(), prev)
		}
		prev = append(prev[:0], it.Key()...)
		count++
	}
	if count != n {
		t.Fatalf("scanned %d of %d", count, n)
	}
}

func TestSeekGE(t *testing.T) {
	l := New(bytes.Compare)
	for i := 0; i < 1000; i += 2 { // only even keys
		l.Insert([]byte(fmt.Sprintf("k%06d", i)), nil)
	}
	it := l.NewIterator()

	it.SeekGE([]byte("k000100"))
	if !it.Valid() || string(it.Key()) != "k000100" {
		t.Fatalf("exact seek landed on %q", it.Key())
	}
	it.SeekGE([]byte("k000101")) // odd: next even is 102
	if !it.Valid() || string(it.Key()) != "k000102" {
		t.Fatalf("between seek landed on %q", it.Key())
	}
	it.SeekGE([]byte("zzz"))
	if it.Valid() {
		t.Fatal("seek past end is valid")
	}
	it.SeekGE([]byte(""))
	if !it.Valid() || string(it.Key()) != "k000000" {
		t.Fatal("seek before start should land on first")
	}
}

func TestApproximateSize(t *testing.T) {
	l := New(bytes.Compare)
	l.Insert([]byte("abc"), []byte("defg"))
	if l.ApproximateSize() != 7 {
		t.Fatalf("size %d", l.ApproximateSize())
	}
}

// TestConcurrentReadDuringInsert: one writer (external serialization) with
// concurrent readers must never observe broken links or unordered keys.
func TestConcurrentReadDuringInsert(t *testing.T) {
	l := New(bytes.Compare)
	done := make(chan struct{})
	var wg sync.WaitGroup

	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				it := l.NewIterator()
				var prev []byte
				for it.First(); it.Valid(); it.Next() {
					if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
						t.Error("reader observed disorder")
						return
					}
					prev = append(prev[:0], it.Key()...)
				}
			}
		}()
	}

	for i := 0; i < 20_000; i++ {
		l.Insert([]byte(fmt.Sprintf("k%08d", rand.Int63())), nil)
	}
	close(done)
	wg.Wait()
}

func TestRandomizedAgainstSortedSlice(t *testing.T) {
	l := New(bytes.Compare)
	rng := rand.New(rand.NewSource(9))
	var keys []string
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("%016x", rng.Uint64())
		keys = append(keys, k)
		l.Insert([]byte(k), []byte(k))
	}
	sort.Strings(keys)
	it := l.NewIterator()
	i := 0
	for it.First(); it.Valid(); it.Next() {
		if string(it.Key()) != keys[i] {
			t.Fatalf("position %d: %q want %q", i, it.Key(), keys[i])
		}
		if !bytes.Equal(it.Key(), it.Value()) {
			t.Fatal("value mismatch")
		}
		i++
	}
	if i != len(keys) {
		t.Fatalf("scanned %d of %d", i, len(keys))
	}
}

func TestSeekLTAndLast(t *testing.T) {
	l := New(bytes.Compare)
	it := l.NewIterator()
	it.Last()
	if it.Valid() {
		t.Fatal("Last on empty list valid")
	}
	it.SeekLT([]byte("x"))
	if it.Valid() {
		t.Fatal("SeekLT on empty list valid")
	}

	for i := 0; i < 1000; i += 2 {
		l.Insert([]byte(fmt.Sprintf("k%06d", i)), nil)
	}
	it.Last()
	if !it.Valid() || string(it.Key()) != "k000998" {
		t.Fatalf("Last = %q", it.Key())
	}
	it.SeekLT([]byte("k000500")) // exact even key: previous is 498
	if !it.Valid() || string(it.Key()) != "k000498" {
		t.Fatalf("SeekLT(exact) = %q", it.Key())
	}
	it.SeekLT([]byte("k000501")) // between: last below is 500
	if !it.Valid() || string(it.Key()) != "k000500" {
		t.Fatalf("SeekLT(between) = %q", it.Key())
	}
	it.SeekLT([]byte("k000000")) // before first
	if it.Valid() {
		t.Fatal("SeekLT(first) returned entry")
	}
	it.SeekLT([]byte("zzz")) // past end
	if !it.Valid() || string(it.Key()) != "k000998" {
		t.Fatalf("SeekLT(past end) = %q", it.Key())
	}
}
