// Package skiplist implements the self-sorting in-memory structure backing
// the memtable. Writers hold an external lock (the DB write path is
// group-committed); readers are concurrent with writers thanks to
// atomically published next pointers, mirroring LevelDB's memtable contract.
package skiplist

import (
	"math/rand"
	"sync"
	"sync/atomic"
)

const (
	maxHeight = 12
	branching = 4
)

// node is a skiplist node. next pointers are atomic so readers never observe
// a half-linked node.
type node struct {
	key   []byte
	value []byte
	next  []atomic.Pointer[node]
}

// List is a skiplist keyed by byte slices under a caller-supplied comparator.
type List struct {
	cmp    func(a, b []byte) int
	head   *node
	height atomic.Int32
	size   atomic.Int64
	count  atomic.Int64

	rngMu sync.Mutex
	rng   *rand.Rand
}

// New returns an empty list ordered by cmp.
func New(cmp func(a, b []byte) int) *List {
	head := &node{next: make([]atomic.Pointer[node], maxHeight)}
	l := &List{cmp: cmp, head: head, rng: rand.New(rand.NewSource(0xdecaf))}
	l.height.Store(1)
	return l
}

func (l *List) randomHeight() int {
	l.rngMu.Lock()
	h := 1
	for h < maxHeight && l.rng.Intn(branching) == 0 {
		h++
	}
	l.rngMu.Unlock()
	return h
}

// findGreaterOrEqual returns the first node with key >= key, filling prev
// with the predecessor at every level when prev is non-nil.
func (l *List) findGreaterOrEqual(key []byte, prev *[maxHeight]*node) *node {
	x := l.head
	level := int(l.height.Load()) - 1
	for {
		next := x.next[level].Load()
		if next != nil && l.cmp(next.key, key) < 0 {
			x = next
			continue
		}
		if prev != nil {
			prev[level] = x
		}
		if level == 0 {
			return next
		}
		level--
	}
}

// Insert adds key with value. Keys must be unique (the memtable guarantees
// this by embedding a fresh sequence number in every internal key). The
// caller must serialize Insert calls.
func (l *List) Insert(key, value []byte) {
	var prev [maxHeight]*node
	l.findGreaterOrEqual(key, &prev)

	h := l.randomHeight()
	if h > int(l.height.Load()) {
		for i := int(l.height.Load()); i < h; i++ {
			prev[i] = l.head
		}
		l.height.Store(int32(h))
	}

	n := &node{key: key, value: value, next: make([]atomic.Pointer[node], h)}
	for i := 0; i < h; i++ {
		n.next[i].Store(prev[i].next[i].Load())
		prev[i].next[i].Store(n)
	}
	l.size.Add(int64(len(key) + len(value)))
	l.count.Add(1)
}

// ApproximateSize returns the total bytes of keys and values inserted.
func (l *List) ApproximateSize() int64 { return l.size.Load() }

// Len returns the number of entries.
func (l *List) Len() int { return int(l.count.Load()) }

// Iterator walks the list in key order. It is valid only while the list is
// live; it tolerates concurrent inserts.
type Iterator struct {
	list *List
	n    *node
}

// NewIterator returns an iterator positioned before the first entry.
func (l *List) NewIterator() *Iterator { return &Iterator{list: l} }

// Valid reports whether the iterator is positioned at an entry.
func (it *Iterator) Valid() bool { return it.n != nil }

// Key returns the current key. Valid only when Valid() is true.
func (it *Iterator) Key() []byte { return it.n.key }

// Value returns the current value.
func (it *Iterator) Value() []byte { return it.n.value }

// First positions at the smallest entry.
func (it *Iterator) First() { it.n = it.list.head.next[0].Load() }

// Next advances to the following entry.
func (it *Iterator) Next() { it.n = it.n.next[0].Load() }

// SeekGE positions at the first entry with key >= target.
func (it *Iterator) SeekGE(target []byte) {
	it.n = it.list.findGreaterOrEqual(target, nil)
}

// findLessThan returns the last node with key < target, or nil.
func (l *List) findLessThan(target []byte) *node {
	x := l.head
	level := int(l.height.Load()) - 1
	for {
		next := x.next[level].Load()
		if next != nil && l.cmp(next.key, target) < 0 {
			x = next
			continue
		}
		if level == 0 {
			if x == l.head {
				return nil
			}
			return x
		}
		level--
	}
}

// SeekLT positions at the last entry with key < target (invalid if none).
func (it *Iterator) SeekLT(target []byte) {
	it.n = it.list.findLessThan(target)
}

// Last positions at the largest entry (invalid if the list is empty).
func (it *Iterator) Last() {
	x := it.list.head
	level := int(it.list.height.Load()) - 1
	for {
		next := x.next[level].Load()
		if next != nil {
			x = next
			continue
		}
		if level == 0 {
			if x == it.list.head {
				it.n = nil
			} else {
				it.n = x
			}
			return
		}
		level--
	}
}
