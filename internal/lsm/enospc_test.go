package lsm

import (
	"errors"
	"fmt"
	"testing"

	"shield/internal/metrics"
	"shield/internal/vfs"
)

// TestWALAppendENOSPCDegradesThenRecovers is the disk-full acceptance
// scenario: an ENOSPC during a synced WAL append must poison the engine into
// read-only degraded mode — every later write fails fast with ErrDegraded,
// nothing is ever acked — while reads keep serving the acked data correctly.
// Raising the quota and reopening must recover exactly the acked writes, and
// a second reopen must replay nothing (the first recovery flushed the WAL to
// L0 and advanced the manifest's log number).
func TestWALAppendENOSPCDegradesThenRecovers(t *testing.T) {
	base := vfs.NewMem()
	q := vfs.NewQuota(base, 16<<10)
	opts := testOptions(q)
	opts.SyncWrites = true
	opts.Logger = func(string, ...any) {}

	storageBefore := metrics.Storage.Snapshot()

	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}

	// Write until the quota runs out mid-WAL-append. Every nil-returning Put
	// was synced-acked and must survive everything below.
	acked := map[string]string{}
	var writeErr error
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("k-%05d", i)
		v := fmt.Sprintf("v-%05d-%064d", i, i)
		if err := db.Put([]byte(k), []byte(v)); err != nil {
			writeErr = err
			break
		}
		acked[k] = v
	}
	if writeErr == nil {
		t.Fatal("quota never exhausted; test misconfigured")
	}
	if len(acked) == 0 {
		t.Fatal("no writes acked before exhaustion; quota too small to be interesting")
	}
	if !errors.Is(writeErr, ErrDegraded) {
		t.Fatalf("failing write not marked degraded: %v", writeErr)
	}
	if !errors.Is(writeErr, vfs.ErrNoSpace) {
		t.Fatalf("failing write lost the ENOSPC cause: %v", writeErr)
	}
	if err := db.Degraded(); err == nil {
		t.Fatal("Degraded() = nil after a poisoned WAL append")
	} else if !errors.Is(err, vfs.ErrNoSpace) {
		t.Fatalf("Degraded() cause is not ENOSPC: %v", err)
	}

	// Property: degraded mode never acks a write, of any flavor.
	for i := 0; i < 20; i++ {
		if err := db.Put([]byte(fmt.Sprintf("late-%d", i)), []byte("x")); !errors.Is(err, ErrDegraded) {
			t.Fatalf("write %d acked (or misclassified) in degraded mode: %v", i, err)
		}
	}
	if err := db.Delete([]byte("k-00000")); !errors.Is(err, ErrDegraded) {
		t.Fatalf("delete acked in degraded mode: %v", err)
	}

	// Reads still serve every acked write while degraded.
	for k, want := range acked {
		got, err := db.Get([]byte(k))
		if err != nil || string(got) != want {
			t.Fatalf("degraded read of %s: %q, %v", k, got, err)
		}
	}

	storageAfter := metrics.Storage.Snapshot()
	if d := storageAfter.Sub(storageBefore); d.DegradedEntries < 1 || d.NoSpaceErrors < 1 {
		t.Fatalf("metrics did not record the incident: %+v", d)
	}

	// Close may fail flushing writer buffers into the full disk; the WAL's
	// synced prefix is what recovery is specified against, not Close.
	_ = db.Close()

	// Operator frees space; reopen recovers all acked writes.
	q.SetLimit(0)
	recBefore := metrics.Recovery.Snapshot()
	db2, err := Open("db", opts)
	if err != nil {
		t.Fatalf("reopen after raising quota: %v", err)
	}
	if err := db2.Degraded(); err != nil {
		t.Fatalf("fresh open is degraded: %v", err)
	}
	for k, want := range acked {
		got, err := db2.Get([]byte(k))
		if err != nil || string(got) != want {
			t.Fatalf("post-recovery read of %s: %q, %v", k, got, err)
		}
	}
	// The never-acked writes must not have materialized as garbage: each is
	// either absent or exactly the value that one interrupted Put carried.
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("late-%d", i)
		if got, err := db2.Get([]byte(k)); err == nil && string(got) != "x" {
			t.Fatalf("unacked key %s resurrected with garbage %q", k, got)
		}
	}
	if d := metrics.Recovery.Snapshot().Sub(recBefore); d.WALRecordsReplayed == 0 {
		t.Fatal("recovery replayed no WAL records; the acked writes came from nowhere")
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}

	// WAL idempotence across the degraded boundary: recovery flushed the
	// replayed records to L0 and advanced the log number, so a second reopen
	// replays nothing twice.
	recBefore = metrics.Recovery.Snapshot()
	db3, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if d := metrics.Recovery.Snapshot().Sub(recBefore); d.WALRecordsReplayed != 0 {
		t.Fatalf("second reopen replayed %d WAL records; recovery is not idempotent", d.WALRecordsReplayed)
	}
	for k, want := range acked {
		got, err := db3.Get([]byte(k))
		if err != nil || string(got) != want {
			t.Fatalf("second-reopen read of %s: %q, %v", k, got, err)
		}
	}
}

// TestCompactionENOSPCAbortsAndRetainsInputs checks the softer failure mode:
// compaction output hitting ENOSPC aborts the compaction, deletes its partial
// outputs, and retains the inputs — the engine stays writable and correct,
// it does NOT enter degraded mode, and compaction succeeds once space frees.
func TestCompactionENOSPCAbortsAndRetainsInputs(t *testing.T) {
	base := vfs.NewMem()
	q := vfs.NewQuota(base, 0) // unlimited for the setup phase
	opts := testOptions(q)
	opts.L0CompactionTrigger = 100 // no automatic compactions
	opts.Logger = func(string, ...any) {}

	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	want := map[string]string{}
	for sst := 0; sst < 4; sst++ {
		for i := 0; i < 40; i++ {
			k := fmt.Sprintf("c-%02d-%03d", sst, i)
			v := fmt.Sprintf("val-%02d-%03d-%0128d", sst, i, i)
			if err := db.Put([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
			want[k] = v
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	countSSTs := func() int {
		entries, err := q.List("db")
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, e := range entries {
			if kind, _, ok := parseFileName(e.Name); ok && kind == FileKindSST {
				n++
			}
		}
		return n
	}
	sstsBefore := countSSTs()
	if sstsBefore < 4 {
		t.Fatalf("setup produced %d SSTs, want >= 4", sstsBefore)
	}

	// Leave room for barely a block of compaction output, then compact.
	q.SetLimit(q.Used() + 256)
	storageBefore := metrics.Storage.Snapshot()
	err = db.CompactRange()
	if err == nil {
		t.Fatal("CompactRange succeeded with no space for outputs")
	}
	if !errors.Is(err, vfs.ErrNoSpace) {
		t.Fatalf("compaction failure lost the ENOSPC cause: %v", err)
	}
	if db.Degraded() != nil {
		t.Fatalf("aborted compaction poisoned the engine: %v", db.Degraded())
	}
	if d := metrics.Storage.Snapshot().Sub(storageBefore); d.CompactionAborts < 1 {
		t.Fatal("CompactionAborts metric did not record the abort")
	}
	// Inputs retained, partial outputs deleted: same files, same data.
	if got := countSSTs(); got != sstsBefore {
		t.Fatalf("SST count changed across aborted compaction: %d -> %d", sstsBefore, got)
	}
	for k, v := range want {
		got, err := db.Get([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("read of %s after aborted compaction: %q, %v", k, got, err)
		}
	}
	// Still writable: not degraded, just behind on compaction.
	if err := db.Put([]byte("post-abort"), []byte("ok")); err != nil {
		t.Fatalf("write failed after aborted compaction: %v", err)
	}

	// Space frees; the retried compaction completes and the tree shrinks.
	q.SetLimit(0)
	if err := db.CompactRange(); err != nil {
		t.Fatalf("retried compaction failed with space available: %v", err)
	}
	if got := countSSTs(); got >= sstsBefore {
		t.Fatalf("compaction did not shrink the tree: %d -> %d SSTs", sstsBefore, got)
	}
	for k, v := range want {
		got, err := db.Get([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("read of %s after successful compaction: %q, %v", k, got, err)
		}
	}
}
