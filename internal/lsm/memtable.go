package lsm

import (
	"bytes"

	"shield/internal/lsm/base"
	"shield/internal/lsm/skiplist"
)

// memTable wraps the skiplist with internal-key semantics.
type memTable struct {
	list   *skiplist.List
	logNum uint64 // WAL file backing this memtable
}

func newMemTable(logNum uint64) *memTable {
	return &memTable{list: skiplist.New(base.CompareInternal), logNum: logNum}
}

// add inserts one record. Callers serialize adds (the commit pipeline).
func (m *memTable) add(seq base.SeqNum, kind base.Kind, key, value []byte) {
	ikey := base.MakeInternalKey(key, seq, kind)
	v := append([]byte(nil), value...)
	m.list.Insert(ikey, v)
}

// get returns the newest record for userKey visible at seq.
// ok reports whether any record was found; kind distinguishes live values
// from tombstones.
func (m *memTable) get(userKey []byte, seq base.SeqNum) (value []byte, kind base.Kind, ok bool) {
	it := m.list.NewIterator()
	it.SeekGE(base.SearchKey(userKey, seq))
	if !it.Valid() {
		return nil, 0, false
	}
	ikey := it.Key()
	if !bytes.Equal(base.UserKey(ikey), userKey) {
		return nil, 0, false
	}
	_, k := base.DecodeTrailer(ikey)
	return it.Value(), k, true
}

func (m *memTable) approximateSize() int64 { return m.list.ApproximateSize() }
func (m *memTable) empty() bool            { return m.list.Len() == 0 }

// iter adapts the skiplist iterator to the internalIterator interface.
func (m *memTable) iter() internalIterator {
	return &memIter{it: m.list.NewIterator()}
}

type memIter struct {
	it *skiplist.Iterator
}

func (m *memIter) First() bool {
	m.it.First()
	return m.it.Valid()
}

func (m *memIter) Next() bool {
	m.it.Next()
	return m.it.Valid()
}

func (m *memIter) SeekGE(target []byte) bool {
	m.it.SeekGE(target)
	return m.it.Valid()
}

func (m *memIter) SeekLT(target []byte) bool {
	m.it.SeekLT(target)
	return m.it.Valid()
}

func (m *memIter) Last() bool {
	m.it.Last()
	return m.it.Valid()
}

func (m *memIter) Valid() bool   { return m.it.Valid() }
func (m *memIter) Key() []byte   { return m.it.Key() }
func (m *memIter) Value() []byte { return m.it.Value() }
func (m *memIter) Err() error    { return nil }
func (m *memIter) Close() error  { return nil }
