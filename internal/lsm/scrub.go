package lsm

import (
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"path"
	"sort"
	"strings"

	"shield/internal/lsm/manifest"
	"shield/internal/lsm/sstable"
	"shield/internal/lsm/wal"
	"shield/internal/metrics"
	"shield/internal/vfs"
)

// ScrubOptions configures an offline integrity scrub.
type ScrubOptions struct {
	// Wrapper decrypts files the way the DB would; defaults to NopWrapper.
	Wrapper FileWrapper

	// DryRun reports what the scrub WOULD do without moving or writing
	// anything.
	DryRun bool

	// Encrypted, when non-nil, sniffs a file's raw first bytes and reports
	// whether it is in an encrypted format this scrub's Wrapper cannot read.
	// Such files are skipped (reported, never quarantined): an undecryptable
	// file is not provably corrupt.
	Encrypted func(prefix []byte) bool

	// Logger receives progress lines; nil discards.
	Logger func(format string, args ...any)

	// Freshness, when non-nil, supplies the sealed epoch floor for rollback
	// detection, the same way Options.Freshness does at open.
	Freshness FreshnessStore

	// AllowRollback is the disaster-recovery override: instead of failing
	// closed on an epoch regression, the scrub accepts the rolled-back
	// state, re-stamps the store with a fresh epoch above the sealed floor,
	// and seals the new floor — after which normal opens succeed again.
	// Healthy files in a rolled-back store report verdict "stale-epoch",
	// not "ok": their contents authenticate but their recency does not.
	AllowRollback bool
}

// ScrubVerdict is the per-file integrity verdict of an authenticated scrub.
type ScrubVerdict string

// Per-file verdicts.
const (
	// VerdictOK: every block authenticated (or, for format v1 files, every
	// checksum verified) and the tag-chain digest matches the manifest.
	VerdictOK ScrubVerdict = "ok"

	// VerdictTampered: cryptographic proof the bytes changed after sealing —
	// an AEAD tag failed under the right key, or the tag-chain digest does
	// not match the digest the manifest anchored. (Unauthenticated v1 files
	// report tampered on checksum failure; the proof is weaker but the
	// handling identical.)
	VerdictTampered ScrubVerdict = "tampered"

	// VerdictStaleEpoch: the file itself authenticates, but the store's
	// freshness epoch regressed below the sealed floor — the whole tree is
	// a rolled-back snapshot, so no file in it is known current.
	VerdictStaleEpoch ScrubVerdict = "stale-epoch"

	// VerdictUndecryptable: the file cannot be verified at all (DEK
	// unresolvable, KDS unreachable, keyless scrub). Never quarantined: an
	// undecryptable file is not provably corrupt.
	VerdictUndecryptable ScrubVerdict = "undecryptable"
)

// ScrubAction classifies what the scrub did (or would do) with one file.
type ScrubAction string

// Scrub actions.
const (
	ScrubQuarantined ScrubAction = "quarantined" // corrupt; moved to lost/
	ScrubMissing     ScrubAction = "missing"     // referenced by the manifest but absent
	ScrubSkipped     ScrubAction = "skipped"     // unverifiable (e.g. undecryptable); left alone
	ScrubOrphan      ScrubAction = "orphan"      // unreferenced; moved to lost/
	ScrubTornTail    ScrubAction = "torn-tail"   // WAL with a truncated tail; recoverable, left alone
	ScrubRepaired    ScrubAction = "repaired"    // manifest rewritten around damage
)

// ScrubFinding is one file-level result.
type ScrubFinding struct {
	Path   string
	Kind   FileKind
	Action ScrubAction
	Detail string
}

// ScrubReport summarizes one scrub pass.
type ScrubReport struct {
	SSTsChecked      int
	WALsChecked      int
	BlocksVerified   int64
	WALRecordsRead   int64
	TornWALTails     int
	Quarantined      int
	Orphans          int
	Skipped          int
	ManifestRepaired bool
	Findings         []ScrubFinding

	// Verdicts maps each live SST path to its integrity verdict.
	Verdicts map[string]ScrubVerdict

	// Epoch is the store's recovered freshness epoch; EpochRegressed is set
	// when it was below the sealed floor (the store is a rolled-back
	// snapshot, accepted only under AllowRollback).
	Epoch          uint64
	EpochRegressed bool
}

// Clean reports whether the scrub found nothing wrong at all.
func (r *ScrubReport) Clean() bool { return len(r.Findings) == 0 && !r.EpochRegressed }

// Verdict returns the recorded verdict for an SST path, defaulting to
// undecryptable for files the scrub never reached.
func (r *ScrubReport) Verdict(path string) ScrubVerdict {
	if v, ok := r.Verdicts[path]; ok {
		return v
	}
	return VerdictUndecryptable
}

// String renders a human-readable report.
func (r *ScrubReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scrub: %d SSTs (%d blocks), %d WALs (%d records)\n",
		r.SSTsChecked, r.BlocksVerified, r.WALsChecked, r.WALRecordsRead)
	fmt.Fprintf(&b, "scrub: quarantined=%d missing/orphans=%d skipped=%d torn_wal_tails=%d manifest_repaired=%v\n",
		r.Quarantined, r.Orphans, r.Skipped, r.TornWALTails, r.ManifestRepaired)
	if r.Epoch > 0 || r.EpochRegressed {
		fmt.Fprintf(&b, "scrub: epoch=%d regressed=%v\n", r.Epoch, r.EpochRegressed)
	}
	var counts [4]int
	for _, v := range r.Verdicts {
		switch v {
		case VerdictOK:
			counts[0]++
		case VerdictTampered:
			counts[1]++
		case VerdictStaleEpoch:
			counts[2]++
		case VerdictUndecryptable:
			counts[3]++
		}
	}
	if len(r.Verdicts) > 0 {
		fmt.Fprintf(&b, "scrub: verdicts ok=%d tampered=%d stale-epoch=%d undecryptable=%d\n",
			counts[0], counts[1], counts[2], counts[3])
	}
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "  %-11s %-8s %s: %s\n", f.Action, f.Kind, f.Path, f.Detail)
	}
	if r.Clean() {
		b.WriteString("scrub: clean\n")
	}
	return b.String()
}

// scrubber carries one pass's state.
type scrubber struct {
	fs     vfs.FS
	dir    string
	opts   ScrubOptions
	report *ScrubReport
}

// Scrub walks the database in dir like fsck: it verifies every SST block
// checksum and WAL record the manifest makes live, quarantines provably
// corrupt files into <dir>/lost/, rewrites the MANIFEST around the damage,
// and moves unreferenced files aside. It must run offline (no DB open on
// dir). A torn WAL or manifest tail is the expected power-loss outcome and
// is reported, not quarantined. With DryRun nothing is modified.
func Scrub(fsys vfs.FS, dir string, opts ScrubOptions) (*ScrubReport, error) {
	if opts.Wrapper == nil {
		opts.Wrapper = NopWrapper{}
	}
	if opts.Logger == nil {
		opts.Logger = func(string, ...any) {}
	}
	s := &scrubber{fs: fsys, dir: dir, opts: opts, report: &ScrubReport{
		Verdicts: make(map[string]ScrubVerdict),
	}}

	// CURRENT -> manifest. A database without a readable CURRENT cannot be
	// scrubbed (there is nothing to anchor the live file set to).
	data, err := vfs.ReadFile(fsys, currentFileName(dir))
	if err != nil {
		return nil, fmt.Errorf("lsm: scrub: reading CURRENT: %w", err)
	}
	manifestName, _ := parseCurrent(data)
	manifestNum, ok := parseManifestName(manifestName)
	if !ok {
		return nil, &CorruptionError{
			Path:   currentFileName(dir),
			Kind:   FileKindCurrent,
			Detail: fmt.Sprintf("points to invalid manifest %q", manifestName),
		}
	}

	st, err := loadManifestSalvage(fsys, opts.Wrapper, dir, manifestName, true)
	if err != nil {
		return s.report, err
	}
	manifestDamaged := st.corrupt || st.torn
	if manifestDamaged && !s.wrapperTransforms(path.Join(dir, manifestName)) &&
		s.sniffEncrypted(path.Join(dir, manifestName)) {
		// An encrypted manifest this wrapper cannot read is indistinguishable
		// from a torn one, and "repairing" it would discard the real tree.
		// Refuse rather than guess.
		return nil, fmt.Errorf("lsm: scrub: manifest %s is in an encrypted format this scrub cannot read; rerun with the keys", manifestName)
	}
	if st.corrupt {
		s.finding(path.Join(dir, manifestName), FileKindManifest, ScrubQuarantined,
			"undecodable edit record; salvaged the valid prefix")
	} else if st.torn {
		s.finding(path.Join(dir, manifestName), FileKindManifest, ScrubTornTail,
			"truncated tail record; salvaged the valid prefix")
	}

	// Freshness: a recovered epoch below the sealed floor means the whole
	// tree is a rolled-back snapshot. Fail closed unless AllowRollback, in
	// which case the repair below re-stamps the store past the floor.
	s.report.Epoch = st.epoch
	if opts.Freshness != nil {
		if floor, sealed := opts.Freshness.EpochFloor(); sealed && st.epoch < floor {
			s.report.EpochRegressed = true
			if !opts.AllowRollback {
				return s.report, fmt.Errorf("%w: recovered epoch %d below sealed floor %d (rerun with AllowRollback to accept)",
					ErrEpochRegression, st.epoch, floor)
			}
			opts.Logger("scrub: accepting rollback: epoch %d below floor %d", st.epoch, floor)
		}
	}

	// Verify every live SST.
	dropped := make(map[uint64]bool)
	for lvl := range st.ver.Levels {
		for _, f := range st.ver.Levels[lvl] {
			name := sstFileName(dir, f.FileNum)
			s.report.SSTsChecked++
			action, detail, verdict := s.checkSST(name, f)
			if verdict == VerdictOK && s.report.EpochRegressed {
				// Authentic bytes, stale tree.
				verdict = VerdictStaleEpoch
			}
			s.report.Verdicts[name] = verdict
			switch action {
			case "":
				// healthy
			case ScrubSkipped:
				s.finding(name, FileKindSST, ScrubSkipped, detail)
			case ScrubMissing:
				dropped[f.FileNum] = true
				s.finding(name, FileKindSST, ScrubMissing, detail)
			case ScrubQuarantined:
				dropped[f.FileNum] = true
				s.quarantine(name, FileKindSST, detail)
			}
		}
	}

	// Walk the directory: live WALs get read end to end, everything
	// unreferenced is an orphan.
	entries, err := fsys.List(dir)
	if err != nil {
		return s.report, err
	}
	live := make(map[uint64]bool)
	for _, lvl := range st.ver.Levels {
		for _, f := range lvl {
			live[f.FileNum] = true
		}
	}
	var walNums []uint64
	for _, e := range entries {
		full := path.Join(dir, e.Name)
		kind, num, ok := parseFileName(e.Name)
		if !ok {
			if strings.HasSuffix(e.Name, ".tmp") {
				// Leftover from an interrupted tmp+rename.
				s.moveOrphan(full, FileKindOther, "interrupted tmp+rename leftover")
			}
			continue
		}
		switch kind {
		case FileKindWAL:
			if num >= st.logNum {
				walNums = append(walNums, num)
			} else {
				s.moveOrphan(full, FileKindWAL, fmt.Sprintf("stale (older than live log %d)", st.logNum))
			}
		case FileKindSST:
			if !live[num] && !dropped[num] {
				s.moveOrphan(full, FileKindSST, "not referenced by the manifest")
			}
		case FileKindManifest:
			if num != manifestNum {
				s.moveOrphan(full, FileKindManifest, "not referenced by CURRENT")
			}
		}
	}

	// Read live WALs end to end; a torn tail is expected, anything the
	// reader cannot get past is reported (recovery will truncate there).
	sort.Slice(walNums, func(i, j int) bool { return walNums[i] < walNums[j] })
	for _, num := range walNums {
		s.checkWAL(num)
	}

	// Rewrite the manifest when damage was found in it, files were dropped,
	// or a rollback was accepted (the repair re-stamps the epoch), so
	// recovery never sees references to quarantined files or a stale epoch.
	if (manifestDamaged || len(dropped) > 0 || s.report.EpochRegressed) && !s.opts.DryRun {
		if err := s.repairManifest(st, manifestName, manifestNum, dropped); err != nil {
			return s.report, fmt.Errorf("lsm: scrub: rewriting manifest: %w", err)
		}
		s.report.ManifestRepaired = true
		s.finding(path.Join(dir, manifestName), FileKindManifest, ScrubRepaired,
			"rewrote a compacted manifest around the damage")
	}
	return s.report, nil
}

func (s *scrubber) finding(p string, kind FileKind, action ScrubAction, detail string) {
	s.report.Findings = append(s.report.Findings, ScrubFinding{Path: p, Kind: kind, Action: action, Detail: detail})
	switch action {
	case ScrubQuarantined:
		s.report.Quarantined++
	case ScrubMissing, ScrubOrphan:
		s.report.Orphans++
	case ScrubSkipped:
		s.report.Skipped++
	case ScrubTornTail:
		if kind == FileKindWAL {
			s.report.TornWALTails++
		}
	}
	s.opts.Logger("scrub: %s %s: %s", action, p, detail)
}

// quarantine moves a corrupt file to lost/ (or just reports under DryRun).
func (s *scrubber) quarantine(name string, kind FileKind, detail string) {
	if !s.opts.DryRun {
		if err := quarantineFile(s.fs, s.dir, name); err != nil {
			s.finding(name, kind, ScrubSkipped, "quarantine failed: "+err.Error())
			return
		}
		metrics.Recovery.FilesQuarantined.Add(1)
	}
	s.finding(name, kind, ScrubQuarantined, detail)
}

func (s *scrubber) moveOrphan(name string, kind FileKind, detail string) {
	if !s.opts.DryRun {
		if err := quarantineFile(s.fs, s.dir, name); err != nil {
			s.finding(name, kind, ScrubSkipped, "moving orphan failed: "+err.Error())
			return
		}
	}
	s.finding(name, kind, ScrubOrphan, detail)
}

// wrapperTransforms reports whether the configured wrapper actually decrypts
// name (returns a different stream than the raw file). When it does, the
// scrub holds the key, and damage found below it is genuine.
func (s *scrubber) wrapperTransforms(name string) bool {
	raw, err := s.fs.OpenSequential(name)
	if err != nil {
		return false
	}
	defer raw.Close()
	wrapped, err := s.opts.Wrapper.WrapOpenSequential(name, FileKindManifest, raw)
	if err != nil {
		return false
	}
	if wrapped != vfs.SequentialFile(raw) {
		wrapped.Close()
		return true
	}
	return false
}

// sniffEncrypted reports whether the file's raw prefix is an encrypted
// format the configured wrapper cannot read.
func (s *scrubber) sniffEncrypted(name string) bool {
	if s.opts.Encrypted == nil {
		return false
	}
	f, err := s.fs.Open(name)
	if err != nil {
		return false
	}
	defer f.Close()
	prefix := make([]byte, 64)
	n, err := f.ReadAt(prefix, 0)
	if n == 0 && err != nil {
		return false
	}
	return s.opts.Encrypted(prefix[:n])
}

// checkSST verifies one table: block checksums (which for sealed files are
// AEAD-authenticated reads), then the tag-chain digest against the digest
// the manifest anchored. Returns "" when healthy, otherwise the action to
// take, a detail string, and always the per-file verdict.
func (s *scrubber) checkSST(name string, meta *manifest.FileMetadata) (ScrubAction, string, ScrubVerdict) {
	raw, err := s.fs.Open(name)
	if err != nil {
		if errors.Is(err, vfs.ErrNotFound) {
			return ScrubMissing, "referenced by the manifest but absent", VerdictTampered
		}
		return ScrubSkipped, "unreadable: " + err.Error(), VerdictUndecryptable
	}
	// transformed records whether the wrapper actually decrypts this file:
	// if it does (we hold the key), a downstream checksum failure is genuine
	// corruption even though the raw prefix looks "encrypted".
	transformed := false
	verify := func() (int64, error) {
		wrapped, err := s.opts.Wrapper.WrapOpen(name, FileKindSST, raw)
		if err != nil {
			return 0, err
		}
		transformed = wrapped != vfs.RandomAccessFile(raw)
		r, err := sstable.NewReader(wrapped, sstable.ReaderOptions{})
		if err != nil {
			return 0, err
		}
		n, err := r.VerifyChecksums()
		if err != nil {
			return n, err
		}
		// Hash-tree anchor: the manifest recorded a tag-chain digest when
		// this file was installed; a validly-sealed file with a different
		// chain is an older version spliced back in.
		if meta.Digest != "" {
			dr, ok := wrapped.(interface{ FileDigest() ([]byte, error) })
			if !ok {
				return n, &IntegrityError{
					Path: name, Kind: FileKindSST,
					Detail: fmt.Sprintf("manifest records digest %s but the file is not sealed (replaced with an unauthenticated file?)", meta.Digest),
				}
			}
			sum, err := dr.FileDigest()
			if err != nil {
				return n, err
			}
			if got := hex.EncodeToString(sum); got != meta.Digest {
				return n, &IntegrityError{
					Path: name, Kind: FileKindSST,
					Detail: fmt.Sprintf("tag-chain digest %s does not match manifest digest %s (file replaced?)", got, meta.Digest),
				}
			}
		}
		return n, nil
	}
	n, err := verify()
	raw.Close()
	s.report.BlocksVerified += n
	metrics.Recovery.ScrubBlocksVerified.Add(n)
	if err == nil {
		return "", "", VerdictOK
	}
	if !isCorruptionErr(err) {
		// Cannot be read, but not provably corrupt (e.g. DEK unresolvable).
		return ScrubSkipped, "unverifiable: " + err.Error(), VerdictUndecryptable
	}
	if !transformed && s.sniffEncrypted(name) {
		// Looks corrupt only because we lack the key — never quarantine.
		return ScrubSkipped, "encrypted with an unavailable key; not verified", VerdictUndecryptable
	}
	return ScrubQuarantined, err.Error(), VerdictTampered
}

// checkWAL reads one live WAL end to end.
func (s *scrubber) checkWAL(num uint64) {
	name := walFileName(s.dir, num)
	s.report.WALsChecked++
	raw, err := s.fs.OpenSequential(name)
	if err != nil {
		s.finding(name, FileKindWAL, ScrubSkipped, "unreadable: "+err.Error())
		return
	}
	wrapped, err := s.opts.Wrapper.WrapOpenSequential(name, FileKindWAL, raw)
	if err != nil {
		raw.Close()
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			// Header never reached storage: recovery treats this as empty.
			s.finding(name, FileKindWAL, ScrubTornTail, "no readable header; recovery treats as empty")
			return
		}
		s.finding(name, FileKindWAL, ScrubSkipped, "unverifiable: "+err.Error())
		return
	}
	transformed := wrapped != vfs.SequentialFile(raw)
	r := wal.NewReader(wrapped)
	defer r.Close()
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return
		}
		if err != nil {
			if errors.Is(err, wal.ErrCorrupt) {
				if !transformed && s.sniffEncrypted(name) {
					s.finding(name, FileKindWAL, ScrubSkipped, "encrypted with an unavailable key; not verified")
					return
				}
				s.finding(name, FileKindWAL, ScrubTornTail,
					fmt.Sprintf("recoverable torn tail after %d records: %v", s.report.WALRecordsRead, err))
			} else {
				s.finding(name, FileKindWAL, ScrubSkipped, "unverifiable: "+err.Error())
			}
			return
		}
		_ = rec
		s.report.WALRecordsRead++
	}
}

// repairManifest writes the salvaged (and possibly thinned) version as a
// fresh compacted MANIFEST, installs CURRENT over it, and quarantines the
// damaged manifest.
//
//shield:nosyncdir installCurrent syncs the directory once the snapshot is durable; syncing earlier would be wasted — CURRENT still points at the old manifest
func (s *scrubber) repairManifest(st *manifestState, oldName string, oldNum uint64, dropped map[uint64]bool) error {
	thinned := &manifest.Version{}
	for lvl := range st.ver.Levels {
		for _, f := range st.ver.Levels[lvl] {
			if !dropped[f.FileNum] {
				thinned.Levels[lvl] = append(thinned.Levels[lvl], f)
			}
		}
	}

	newNum := st.nextFile
	if oldNum >= newNum {
		newNum = oldNum + 1
	}
	name := manifestFileName(s.dir, newNum)
	raw, err := s.fs.Create(name)
	if err != nil {
		return err
	}
	wrapped, _, err := s.opts.Wrapper.WrapCreate(name, FileKindManifest, raw)
	if err != nil {
		raw.Close()
		return err
	}
	w := wal.NewWriter(wrapped)

	snap := &manifest.VersionEdit{}
	for lvl := range thinned.Levels {
		for _, f := range thinned.Levels[lvl] {
			snap.Added = append(snap.Added, manifest.AddedFile{Level: lvl, Meta: *f})
		}
	}
	nf := newNum + 1
	ls := uint64(st.lastSeq)
	ln := st.logNum
	snap.NextFileNumber = &nf
	snap.LastSeq = &ls
	snap.LogNumber = &ln
	// Re-stamp the epoch. After an accepted rollback the new epoch must
	// clear the sealed floor, turning the restored snapshot into a fresh,
	// newer generation that subsequent opens accept without AllowRollback.
	epoch := st.epoch
	if s.opts.Freshness != nil {
		if floor, sealed := s.opts.Freshness.EpochFloor(); sealed && floor > epoch {
			epoch = floor
		}
		epoch++
	}
	snap.Epoch = epoch
	enc, err := snap.Encode()
	if err != nil {
		w.Close()
		return err
	}
	if err := w.AddRecord(enc); err != nil {
		w.Close()
		return err
	}
	if err := w.Sync(); err != nil {
		w.Close()
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	if err := installCurrent(s.fs, s.dir, newNum, epoch); err != nil {
		return err
	}
	if s.opts.Freshness != nil {
		if err := s.opts.Freshness.SealEpoch(epoch); err != nil {
			s.opts.Logger("scrub: sealing epoch %d: %v", epoch, err)
		}
	}
	return quarantineFile(s.fs, s.dir, path.Join(s.dir, oldName))
}
