package lsm

import (
	"bytes"
	"fmt"
	"testing"

	"shield/internal/crypt"
	"shield/internal/lsm/base"
	"shield/internal/lsm/manifest"
	"shield/internal/lsm/sstable"
	"shield/internal/vfs"
)

// detEncWrapper encrypts every SST with one fixed DEK/IV so two runs over
// the same inputs produce comparable ciphertext regardless of output file
// numbers. Test-only: real deployments derive a fresh DEK per file.
type detEncWrapper struct {
	threads int
}

var (
	detDEK = crypt.DEK{0x42, 0x17, 0x99, 0x03, 0x42, 0x17, 0x99, 0x03,
		0x42, 0x17, 0x99, 0x03, 0x42, 0x17, 0x99, 0x03}
	detIV = [crypt.IVSize]byte{0xAA, 0x55, 0xAA, 0x55}
)

func (w detEncWrapper) WrapCreate(_ string, _ FileKind, f vfs.WritableFile) (vfs.WritableFile, string, error) {
	return crypt.NewChunkedWriter(f, detDEK, detIV, 1024, w.threads), "det", nil
}

func (w detEncWrapper) WrapOpen(_ string, _ FileKind, f vfs.RandomAccessFile) (vfs.RandomAccessFile, error) {
	return crypt.NewDecryptingReaderAt(f, detDEK, detIV, 0)
}

func (w detEncWrapper) WrapOpenSequential(_ string, _ FileKind, f vfs.SequentialFile) (vfs.SequentialFile, error) {
	return f, nil
}

func (w detEncWrapper) FileDeleted(string, string) {}

// writeShardInputSST builds one encrypted input table holding keys
// [lo, hi) at seq, returning its metadata.
func writeShardInputSST(t *testing.T, fs vfs.FS, wrapper FileWrapper, dir string, fileNum uint64, lo, hi int, seq base.SeqNum) manifest.FileMetadata {
	t.Helper()
	name := sstFileName(dir, fileNum)
	raw, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	wrapped, dekID, err := wrapper.WrapCreate(name, FileKindSST, raw)
	if err != nil {
		t.Fatal(err)
	}
	w := newTableWriter(wrapped, Options{BlockSize: 4096, BloomBitsPerKey: 10})
	for k := lo; k < hi; k++ {
		ikey := base.MakeInternalKey(shardKey(k), seq, base.KindSet)
		val := []byte(fmt.Sprintf("val-%06d-seq-%d-%s", k, seq, bytes.Repeat([]byte("x"), 80)))
		if err := w.Add(ikey, val); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	return manifest.FileMetadata{
		FileNum:  fileNum,
		Size:     w.FileSize(),
		Smallest: w.Smallest(),
		Largest:  w.Largest(),
		DEKID:    dekID,
	}
}

func shardKey(k int) []byte { return []byte(fmt.Sprintf("key-%06d", k)) }

// shardTestJob builds a two-level job: three L1 files (newer) overlapping
// two L2 files (older), small target size so the merge cuts many outputs.
func shardTestJob(t *testing.T, fs vfs.FS, wrapper FileWrapper) CompactionJob {
	t.Helper()
	const dir = "db"
	if err := fs.MkdirAll(dir); err != nil {
		t.Fatal(err)
	}
	var l1, l2 []manifest.FileMetadata
	l1 = append(l1, writeShardInputSST(t, fs, wrapper, dir, 11, 0, 100, 200))
	l1 = append(l1, writeShardInputSST(t, fs, wrapper, dir, 12, 100, 200, 201))
	l1 = append(l1, writeShardInputSST(t, fs, wrapper, dir, 13, 200, 300, 202))
	l2 = append(l2, writeShardInputSST(t, fs, wrapper, dir, 21, 0, 150, 100))
	l2 = append(l2, writeShardInputSST(t, fs, wrapper, dir, 22, 150, 300, 101))
	return CompactionJob{
		Dir:              dir,
		Inputs:           []JobLevel{{Level: 1, Files: l1}, {Level: 2, Files: l2}},
		OutputLevel:      2,
		Bottommost:       true,
		SmallestSnapshot: 1000,
		TargetFileSize:   2 << 10,
		BlockSize:        4096,
		BloomBitsPerKey:  10,
	}
}

// TestSubcompactionCiphertextByteIdentity pins the acceptance criterion:
// with the shard boundaries set at the serial path's output cut points, the
// sharded compaction — parallel shards, each with a multi-threaded chunked
// encrypting writer — produces ciphertext byte-identical to the serial
// single-threaded run, file for file.
func TestSubcompactionCiphertextByteIdentity(t *testing.T) {
	fs := vfs.NewMem()
	serialWrapper := detEncWrapper{threads: 1}
	job := shardTestJob(t, fs, serialWrapper)

	serialJob := job
	serialJob.FirstOutputFileNum = 100
	serialJob.MaxOutputFiles = 64
	serialRes, err := RunCompaction(fs, serialWrapper, serialJob)
	if err != nil {
		t.Fatal(err)
	}
	if len(serialRes.Outputs) < 3 {
		t.Fatalf("serial run produced %d outputs, want >= 3 for a meaningful split", len(serialRes.Outputs))
	}
	if serialRes.Subcompactions != 1 {
		t.Fatalf("serial Subcompactions = %d, want 1", serialRes.Subcompactions)
	}

	// Split at the start keys of two interior serial outputs: each shard
	// then begins exactly where a serial output file began, so the shard's
	// size-based cuts land on the same records as the serial run's.
	m := len(serialRes.Outputs)
	bounds := [][]byte{
		append([]byte(nil), base.UserKey(serialRes.Outputs[m/3].Smallest)...),
		append([]byte(nil), base.UserKey(serialRes.Outputs[2*m/3].Smallest)...),
	}
	parJob := job
	parJob.FirstOutputFileNum = 300
	parJob.MaxOutputFiles = 64
	parJob.Boundaries = bounds
	parRes, err := RunCompaction(fs, detEncWrapper{threads: 4}, parJob)
	if err != nil {
		t.Fatal(err)
	}
	if parRes.Subcompactions != 3 {
		t.Fatalf("sharded Subcompactions = %d, want 3", parRes.Subcompactions)
	}
	if len(parRes.Outputs) != len(serialRes.Outputs) {
		t.Fatalf("sharded run produced %d outputs, serial %d", len(parRes.Outputs), len(serialRes.Outputs))
	}
	for i := range serialRes.Outputs {
		s, p := serialRes.Outputs[i], parRes.Outputs[i]
		if !bytes.Equal(s.Smallest, p.Smallest) || !bytes.Equal(s.Largest, p.Largest) {
			t.Fatalf("output %d key range mismatch: serial [%q,%q] sharded [%q,%q]",
				i, s.Smallest, s.Largest, p.Smallest, p.Largest)
		}
		if s.Size != p.Size {
			t.Fatalf("output %d size mismatch: serial %d sharded %d", i, s.Size, p.Size)
		}
		sb, err := vfs.ReadFile(fs, sstFileName(job.Dir, s.FileNum))
		if err != nil {
			t.Fatal(err)
		}
		pb, err := vfs.ReadFile(fs, sstFileName(job.Dir, p.FileNum))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sb, pb) {
			t.Fatalf("output %d ciphertext differs between serial and sharded runs", i)
		}
	}
	if parRes.BytesWritten != serialRes.BytesWritten {
		t.Fatalf("BytesWritten: serial %d sharded %d", serialRes.BytesWritten, parRes.BytesWritten)
	}
}

// readJobOutputs decrypts and iterates every output, returning the
// concatenated internal key/value stream (outputs are key-ordered).
func readJobOutputs(t *testing.T, fs vfs.FS, wrapper FileWrapper, dir string, outputs []manifest.FileMetadata) (keys, vals [][]byte) {
	t.Helper()
	for _, out := range outputs {
		name := sstFileName(dir, out.FileNum)
		raw, err := fs.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		wrapped, err := wrapper.WrapOpen(name, FileKindSST, raw)
		if err != nil {
			t.Fatal(err)
		}
		r, err := sstable.NewReader(wrapped, sstable.ReaderOptions{FileNum: out.FileNum})
		if err != nil {
			t.Fatal(err)
		}
		it := r.NewIter()
		for ok := it.First(); ok; ok = it.Next() {
			keys = append(keys, append([]byte(nil), it.Key()...))
			vals = append(vals, append([]byte(nil), it.Value()...))
		}
		if err := it.Err(); err != nil {
			t.Fatal(err)
		}
		r.Close()
	}
	return keys, vals
}

// TestSubcompactionAutoBoundariesEquivalence checks the derived-boundary
// path: sharding decided by subcompactionBoundaries must yield exactly the
// serial run's logical record stream, in order, with shard outputs disjoint.
func TestSubcompactionAutoBoundariesEquivalence(t *testing.T) {
	fs := vfs.NewMem()
	wrapper := detEncWrapper{threads: 2}
	job := shardTestJob(t, fs, wrapper)

	serialJob := job
	serialJob.FirstOutputFileNum = 100
	serialJob.MaxOutputFiles = 64
	serialRes, err := RunCompaction(fs, wrapper, serialJob)
	if err != nil {
		t.Fatal(err)
	}

	parJob := job
	parJob.FirstOutputFileNum = 300
	parJob.MaxOutputFiles = 64
	parJob.MaxSubcompactions = 4
	parRes, err := RunCompaction(fs, wrapper, parJob)
	if err != nil {
		t.Fatal(err)
	}
	if parRes.Subcompactions < 2 {
		t.Fatalf("Subcompactions = %d, want >= 2 (job should have split)", parRes.Subcompactions)
	}

	// Outputs must be globally sorted and non-overlapping.
	for i := 1; i < len(parRes.Outputs); i++ {
		if base.CompareInternal(parRes.Outputs[i-1].Largest, parRes.Outputs[i].Smallest) >= 0 {
			t.Fatalf("sharded outputs %d and %d overlap", i-1, i)
		}
	}

	sk, sv := readJobOutputs(t, fs, wrapper, job.Dir, serialRes.Outputs)
	pk, pv := readJobOutputs(t, fs, wrapper, job.Dir, parRes.Outputs)
	if len(sk) != len(pk) {
		t.Fatalf("record count: serial %d sharded %d", len(sk), len(pk))
	}
	for i := range sk {
		if !bytes.Equal(sk[i], pk[i]) {
			t.Fatalf("record %d key mismatch: %q vs %q", i, sk[i], pk[i])
		}
		if !bytes.Equal(sv[i], pv[i]) {
			t.Fatalf("record %d value mismatch for key %q", i, sk[i])
		}
	}
}

// failingCreateWrapper fails WrapCreate after a set number of creations,
// simulating an error striking one shard mid-job.
type failingCreateWrapper struct {
	detEncWrapper
	remaining *int32
}

func (w failingCreateWrapper) WrapCreate(name string, kind FileKind, f vfs.WritableFile) (vfs.WritableFile, string, error) {
	if *w.remaining <= 0 {
		return nil, "", fmt.Errorf("injected create failure")
	}
	*w.remaining--
	return w.detEncWrapper.WrapCreate(name, kind, f)
}

// TestSubcompactionAbortRemovesAllShardOutputs: when one shard fails, the
// whole job aborts and no output from any shard survives — the per-job
// abort-and-retain contract is preserved under sharding.
func TestSubcompactionAbortRemovesAllShardOutputs(t *testing.T) {
	fs := vfs.NewMem()
	wrapper := detEncWrapper{threads: 1}
	job := shardTestJob(t, fs, wrapper)

	before, err := fs.List(job.Dir)
	if err != nil {
		t.Fatal(err)
	}

	// Enough creations for the input tables are already done; allow a few
	// outputs and then fail, so some shards have completed files when the
	// abort lands. Serialize the shards' creations with threads=1 writers:
	// the counter itself is raced across shard goroutines only when a
	// failure is already inevitable, so wrap it in a mutex-free int32 and
	// accept approximate ordering — the invariant checked (no survivors)
	// does not depend on which shard fails.
	remaining := int32(2)
	failJob := job
	failJob.FirstOutputFileNum = 300
	failJob.MaxOutputFiles = 64
	failJob.Boundaries = [][]byte{shardKey(100), shardKey(200)}
	_, err = RunCompaction(fs, failingCreateWrapper{detEncWrapper{threads: 1}, &remaining}, failJob)
	if err == nil {
		t.Fatal("expected sharded compaction to fail")
	}

	after, err := fs.List(job.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("aborted job left files behind: before %d entries, after %d", len(before), len(after))
	}
}

// TestSubcompactionBoundariesDerivation sanity-checks the splitter: at most
// MaxSubcompactions-1 sorted, distinct boundaries, all inside the key hull.
func TestSubcompactionBoundariesDerivation(t *testing.T) {
	fs := vfs.NewMem()
	wrapper := detEncWrapper{threads: 1}
	job := shardTestJob(t, fs, wrapper)

	if got := subcompactionBoundaries(job); got != nil {
		t.Fatalf("MaxSubcompactions unset: want nil boundaries, got %d", len(got))
	}
	job.MaxSubcompactions = 4
	bounds := subcompactionBoundaries(job)
	if len(bounds) == 0 || len(bounds) > 3 {
		t.Fatalf("got %d boundaries, want 1..3", len(bounds))
	}
	for i := range bounds {
		if i > 0 && bytes.Compare(bounds[i-1], bounds[i]) >= 0 {
			t.Fatalf("boundaries not strictly ascending: %q >= %q", bounds[i-1], bounds[i])
		}
		if bytes.Compare(bounds[i], shardKey(0)) <= 0 || bytes.Compare(bounds[i], shardKey(299)) > 0 {
			t.Fatalf("boundary %q outside input hull", bounds[i])
		}
	}
}
