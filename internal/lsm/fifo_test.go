package lsm

import (
	"fmt"
	"testing"

	"shield/internal/vfs"
)

// TestFIFONoWriteStall is a regression test: FIFO compaction never merges
// L0, so the L0 stop-writes trigger must not apply — otherwise ingestion
// wedges permanently once file count exceeds the trigger while total size
// is still under the FIFO cap.
func TestFIFONoWriteStall(t *testing.T) {
	fs := vfs.NewMem()
	opts := Options{
		FS:                  fs,
		MemtableSize:        8 << 10, // many small L0 files
		CompactionStyle:     CompactionFIFO,
		FIFOMaxTableSize:    64 << 20, // cap far beyond the data written
		L0StopWritesTrigger: 4,        // would wedge writes if applied
	}
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 20_000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%06d", i)), make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if files := db.NumFilesAtLevel(0); files <= 4 {
		t.Fatalf("expected many L0 files under FIFO, got %d", files)
	}
	if _, err := db.Get([]byte("k019999")); err != nil {
		t.Fatal(err)
	}
}
