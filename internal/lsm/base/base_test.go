package base

import (
	"bytes"
	"sort"
	"testing"
	"testing/quick"
)

func TestTrailerRoundTrip(t *testing.T) {
	f := func(seq uint64, kindBit bool) bool {
		seq &= uint64(MaxSeqNum)
		kind := KindDelete
		if kindBit {
			kind = KindSet
		}
		ik := MakeInternalKey([]byte("user"), SeqNum(seq), kind)
		gotSeq, gotKind := DecodeTrailer(ik)
		return gotSeq == SeqNum(seq) && gotKind == kind && bytes.Equal(UserKey(ik), []byte("user"))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompareOrdering(t *testing.T) {
	// user key ascending dominates.
	a := MakeInternalKey([]byte("a"), 1, KindSet)
	b := MakeInternalKey([]byte("b"), 100, KindSet)
	if CompareInternal(a, b) >= 0 {
		t.Fatal("user-key order violated")
	}
	// Same user key: higher seq sorts first.
	newRec := MakeInternalKey([]byte("k"), 10, KindSet)
	oldRec := MakeInternalKey([]byte("k"), 5, KindSet)
	if CompareInternal(newRec, oldRec) >= 0 {
		t.Fatal("newer record must sort before older")
	}
	// Equal keys compare equal.
	if CompareInternal(newRec, MakeInternalKey([]byte("k"), 10, KindSet)) != 0 {
		t.Fatal("identical keys not equal")
	}
}

func TestSearchKeySortsBeforeVisibleRecords(t *testing.T) {
	// SearchKey(k, s) must sort at-or-before every record of k with seq <= s
	// and after every record with seq > s.
	visible := MakeInternalKey([]byte("k"), 5, KindSet)
	invisible := MakeInternalKey([]byte("k"), 9, KindSet)
	search := SearchKey([]byte("k"), 7)
	if CompareInternal(search, visible) > 0 {
		t.Fatal("search key sorts after a visible record")
	}
	if CompareInternal(search, invisible) < 0 {
		t.Fatal("search key sorts before an invisible record")
	}
}

func TestSortStability(t *testing.T) {
	keys := [][]byte{
		MakeInternalKey([]byte("b"), 3, KindSet),
		MakeInternalKey([]byte("a"), 9, KindDelete),
		MakeInternalKey([]byte("a"), 9, KindSet),
		MakeInternalKey([]byte("a"), 2, KindSet),
		MakeInternalKey([]byte("c"), 1, KindSet),
		MakeInternalKey([]byte("a"), 15, KindSet),
	}
	sort.Slice(keys, func(i, j int) bool { return CompareInternal(keys[i], keys[j]) < 0 })

	type rec struct {
		user string
		seq  SeqNum
	}
	var got []rec
	for _, k := range keys {
		seq, _ := DecodeTrailer(k)
		got = append(got, rec{string(UserKey(k)), seq})
	}
	want := []rec{{"a", 15}, {"a", 9}, {"a", 9}, {"a", 2}, {"b", 3}, {"c", 1}}
	for i := range want {
		if got[i].user != want[i].user || got[i].seq != want[i].seq {
			t.Fatalf("position %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	// At (a,9) the Set must precede Delete (kind descending).
	_, k1 := DecodeTrailer(keys[1])
	_, k2 := DecodeTrailer(keys[2])
	if !(k1 == KindSet && k2 == KindDelete) {
		t.Fatalf("kind tiebreak wrong: %v then %v", k1, k2)
	}
}

func TestKindString(t *testing.T) {
	if KindSet.String() != "set" || KindDelete.String() != "del" {
		t.Fatal("kind strings")
	}
}

func TestShortKeyDecodes(t *testing.T) {
	if UserKey([]byte{1, 2}) != nil {
		t.Fatal("short key should yield nil user key")
	}
	seq, kind := DecodeTrailer([]byte{1})
	if seq != 0 || kind != KindDelete {
		t.Fatal("short key trailer should be zero")
	}
}
