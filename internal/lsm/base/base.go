// Package base defines the internal key encoding shared by the memtable,
// SST, and compaction layers of the LSM engine.
//
// An internal key is the user key followed by an 8-byte trailer packing a
// 56-bit sequence number and an 8-bit kind, mirroring the
// LevelDB/RocksDB format:
//
//	| user key ... | (seq << 8 | kind) little-endian, 8 bytes |
//
// Ordering: user keys ascending, then sequence numbers descending (newer
// first), then kind descending. That makes the freshest version of a key the
// first one an iterator meets.
package base

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Kind distinguishes value records from tombstones.
type Kind uint8

// Record kinds. Deletion sorts below Set at equal sequence numbers, which
// never happens in practice (each record gets its own sequence).
const (
	KindDelete Kind = 0
	KindSet    Kind = 1
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindDelete:
		return "del"
	case KindSet:
		return "set"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// SeqNum is a global monotonically increasing write sequence number.
type SeqNum uint64

// MaxSeqNum is the largest representable sequence number (56 bits).
const MaxSeqNum SeqNum = (1 << 56) - 1

// TrailerLen is the internal-key trailer size in bytes.
const TrailerLen = 8

// MakeTrailer packs seq and kind.
func MakeTrailer(seq SeqNum, kind Kind) uint64 {
	return uint64(seq)<<8 | uint64(kind)
}

// AppendInternalKey appends the internal encoding of (userKey, seq, kind)
// to dst and returns the extended slice.
func AppendInternalKey(dst, userKey []byte, seq SeqNum, kind Kind) []byte {
	dst = append(dst, userKey...)
	var trailer [TrailerLen]byte
	binary.LittleEndian.PutUint64(trailer[:], MakeTrailer(seq, kind))
	return append(dst, trailer[:]...)
}

// MakeInternalKey allocates and returns the internal encoding.
func MakeInternalKey(userKey []byte, seq SeqNum, kind Kind) []byte {
	return AppendInternalKey(make([]byte, 0, len(userKey)+TrailerLen), userKey, seq, kind)
}

// UserKey returns the user-key prefix of an internal key.
func UserKey(ikey []byte) []byte {
	if len(ikey) < TrailerLen {
		return nil
	}
	return ikey[:len(ikey)-TrailerLen]
}

// DecodeTrailer returns the sequence number and kind of an internal key.
func DecodeTrailer(ikey []byte) (SeqNum, Kind) {
	if len(ikey) < TrailerLen {
		return 0, KindDelete
	}
	t := binary.LittleEndian.Uint64(ikey[len(ikey)-TrailerLen:])
	return SeqNum(t >> 8), Kind(t & 0xff)
}

// CompareInternal orders internal keys: user key ascending, then trailer
// (seq,kind) descending.
func CompareInternal(a, b []byte) int {
	ua, ub := UserKey(a), UserKey(b)
	if c := bytes.Compare(ua, ub); c != 0 {
		return c
	}
	ta := binary.LittleEndian.Uint64(a[len(a)-TrailerLen:])
	tb := binary.LittleEndian.Uint64(b[len(b)-TrailerLen:])
	switch {
	case ta > tb:
		return -1
	case ta < tb:
		return 1
	default:
		return 0
	}
}

// SearchKey returns an internal key that sorts before every record of
// userKey visible at or below seq — the seek target for point lookups.
func SearchKey(userKey []byte, seq SeqNum) []byte {
	return MakeInternalKey(userKey, seq, KindSet)
}
