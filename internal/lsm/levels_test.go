package lsm

import (
	"errors"
	"fmt"
	"testing"

	"shield/internal/vfs"
)

// TestReadsAcrossLevels builds a tree with data spread over memtable, L0,
// and deeper levels, then validates point reads and seeks that must
// traverse all of them with correct version precedence.
func TestReadsAcrossLevels(t *testing.T) {
	fs := vfs.NewMem()
	opts := testOptions(fs)
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Generation 1: everything, pushed to the deepest populated level.
	for i := 0; i < 6000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%05d", i)), []byte("gen1")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CompactRange(); err != nil {
		t.Fatal(err)
	}
	if db.NumFilesAtLevel(0) != 0 {
		t.Fatalf("L0 not empty after full compaction: %d", db.NumFilesAtLevel(0))
	}
	deepFiles := 0
	for lvl := 1; lvl < 7; lvl++ {
		deepFiles += db.NumFilesAtLevel(lvl)
	}
	if deepFiles == 0 {
		t.Fatal("no files below L0 after CompactRange")
	}

	// Generation 2: overwrite a slice, flush to L0 only.
	for i := 2000; i < 3000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%05d", i)), []byte("gen2")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	// Generation 3: overwrite a smaller slice, keep it in the memtable.
	for i := 2500; i < 2600; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%05d", i)), []byte("gen3")); err != nil {
			t.Fatal(err)
		}
	}

	expect := func(i int) string {
		switch {
		case i >= 2500 && i < 2600:
			return "gen3"
		case i >= 2000 && i < 3000:
			return "gen2"
		default:
			return "gen1"
		}
	}
	for _, i := range []int{0, 1999, 2000, 2499, 2500, 2599, 2600, 2999, 3000, 5999} {
		v, err := db.Get([]byte(fmt.Sprintf("k%05d", i)))
		if err != nil {
			t.Fatalf("Get(k%05d): %v", i, err)
		}
		if string(v) != expect(i) {
			t.Fatalf("Get(k%05d) = %q, want %q", i, v, expect(i))
		}
	}
	if _, err := db.Get([]byte("k99999")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}

	// A scan across the generation boundaries sees the same precedence.
	it, err := db.NewIter()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if !it.SeekGE([]byte("k02498")) {
		t.Fatal("seek failed")
	}
	i := 2498
	for ; it.Valid() && i < 3002; i++ {
		wantK := fmt.Sprintf("k%05d", i)
		if string(it.Key()) != wantK {
			t.Fatalf("scan position: %q want %q", it.Key(), wantK)
		}
		if string(it.Value()) != expect(i) {
			t.Fatalf("scan value at %s: %q want %q", wantK, it.Value(), expect(i))
		}
		it.Next()
	}
	if i != 3002 {
		t.Fatalf("scan ended early at %d", i)
	}
}
