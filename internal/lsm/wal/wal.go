// Package wal implements the Write-Ahead Log record format: the
// LevelDB/RocksDB physical log layout of 32 KiB blocks holding checksummed
// record fragments (full / first / middle / last).
//
// The writer emits one physical record per logical append; the reader
// reassembles fragments and stops cleanly at the first corruption or
// truncation, which is how a crash mid-write (or an encrypted tail that was
// lost with the application buffer) manifests.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync/atomic"

	"shield/internal/vfs"
)

// BlockSize is the physical block size of the log format.
const BlockSize = 32 * 1024

// headerSize is the per-fragment header: checksum(4) length(2) type(1).
const headerSize = 7

// Fragment types.
const (
	fullType   = 1
	firstType  = 2
	middleType = 3
	lastType   = 4
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a damaged log record; the reader stops at the first one.
var ErrCorrupt = errors.New("wal: corrupt record")

// Writer appends logical records to a log file. Appends are single-writer
// (the engine's commit leader); Metrics and Size may be read from any
// goroutine, so the counters they surface are atomics.
type Writer struct {
	f        vfs.WritableFile
	blockOff int // offset within the current block
	written  atomic.Int64
	// syncs counts Sync calls and syncBytes the high-water mark of appended
	// bytes covered by a completed Sync. Together they make the engine's
	// group-commit ratio observable: under group commit, syncs stays below
	// the number of committed batches.
	syncs     atomic.Int64
	syncBytes atomic.Int64
}

// Metrics is a point-in-time snapshot of a Writer's durability counters.
type Metrics struct {
	Syncs        int64 // completed Sync calls
	BytesWritten int64 // bytes appended (records + fragment headers + padding)
	BytesSynced  int64 // appended bytes covered by the last completed Sync
}

// Metrics returns the writer's counters. Safe to call concurrently with
// appends.
func (w *Writer) Metrics() Metrics {
	return Metrics{
		Syncs:        w.syncs.Load(),
		BytesWritten: w.written.Load(),
		BytesSynced:  w.syncBytes.Load(),
	}
}

// NewWriter returns a Writer appending to f, which must be empty or
// positioned at a block boundary (a fresh file).
func NewWriter(f vfs.WritableFile) *Writer {
	return &Writer{f: f}
}

// AddRecord appends one logical record.
func (w *Writer) AddRecord(data []byte) error {
	begin := true
	for {
		leftover := BlockSize - w.blockOff
		if leftover < headerSize {
			// Pad the block tail with zeros; readers skip it.
			if leftover > 0 {
				var pad [headerSize]byte
				if err := vfs.WriteFull(w.f, pad[:leftover]); err != nil {
					return err
				}
				w.written.Add(int64(leftover))
			}
			w.blockOff = 0
			leftover = BlockSize
		}
		avail := leftover - headerSize
		frag := data
		if len(frag) > avail {
			frag = data[:avail]
		}
		data = data[len(frag):]
		end := len(data) == 0

		var typ byte
		switch {
		case begin && end:
			typ = fullType
		case begin:
			typ = firstType
		case end:
			typ = lastType
		default:
			typ = middleType
		}
		if err := w.emit(typ, frag); err != nil {
			return err
		}
		begin = false
		if end {
			return nil
		}
	}
}

func (w *Writer) emit(typ byte, frag []byte) error {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint16(hdr[4:6], uint16(len(frag)))
	hdr[6] = typ
	crc := crc32.Update(0, castagnoli, hdr[6:7])
	crc = crc32.Update(crc, castagnoli, frag)
	binary.LittleEndian.PutUint32(hdr[0:4], crc)

	if err := vfs.WriteFull(w.f, hdr[:]); err != nil {
		return err
	}
	if err := vfs.WriteFull(w.f, frag); err != nil {
		return err
	}
	w.blockOff += headerSize + len(frag)
	w.written.Add(int64(headerSize + len(frag)))
	return nil
}

// Sync flushes the log to durable storage. The sync counter and synced-bytes
// mark advance only on success: a failed fsync durably covers nothing.
func (w *Writer) Sync() error {
	covered := w.written.Load()
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.syncs.Add(1)
	w.syncBytes.Store(covered)
	return nil
}

// Size returns the bytes appended so far.
func (w *Writer) Size() int64 { return w.written.Load() }

// Close syncs and closes the log file. The closing sync counts in Metrics.
func (w *Writer) Close() error {
	if err := w.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// Reader replays logical records from a log file.
type Reader struct {
	r       vfs.SequentialFile
	block   [BlockSize]byte
	n       int // valid bytes in block
	off     int // read offset in block
	eof     bool
	scratch []byte
}

// NewReader returns a Reader over r.
func NewReader(r vfs.SequentialFile) *Reader {
	return &Reader{r: r}
}

// Next returns the next logical record, io.EOF at the clean end of the log,
// or ErrCorrupt at a damaged/truncated record (a typical crash tail).
// The returned slice is valid until the next call.
func (r *Reader) Next() ([]byte, error) {
	r.scratch = r.scratch[:0]
	inFragmented := false
	for {
		typ, frag, err := r.nextFragment()
		if err == io.EOF {
			if inFragmented {
				// Log ended mid-record: truncated tail.
				return nil, fmt.Errorf("%w: truncated record", ErrCorrupt)
			}
			return nil, io.EOF
		}
		if err != nil {
			return nil, err
		}
		switch typ {
		case fullType:
			if inFragmented {
				return nil, fmt.Errorf("%w: unexpected full fragment", ErrCorrupt)
			}
			return frag, nil
		case firstType:
			if inFragmented {
				return nil, fmt.Errorf("%w: unexpected first fragment", ErrCorrupt)
			}
			inFragmented = true
			r.scratch = append(r.scratch, frag...)
		case middleType:
			if !inFragmented {
				return nil, fmt.Errorf("%w: orphan middle fragment", ErrCorrupt)
			}
			r.scratch = append(r.scratch, frag...)
		case lastType:
			if !inFragmented {
				return nil, fmt.Errorf("%w: orphan last fragment", ErrCorrupt)
			}
			r.scratch = append(r.scratch, frag...)
			return r.scratch, nil
		default:
			return nil, fmt.Errorf("%w: unknown fragment type %d", ErrCorrupt, typ)
		}
	}
}

func (r *Reader) nextFragment() (byte, []byte, error) {
	for {
		if r.n-r.off < headerSize {
			// Remaining bytes are block padding; load the next block.
			if r.eof {
				return 0, nil, io.EOF
			}
			n, err := io.ReadFull(r.r, r.block[:])
			r.n, r.off = n, 0
			if err == io.ErrUnexpectedEOF || err == io.EOF {
				r.eof = true
				if n == 0 {
					return 0, nil, io.EOF
				}
			} else if err != nil {
				return 0, nil, err
			}
			if r.n < headerSize {
				return 0, nil, io.EOF
			}
		}
		hdr := r.block[r.off : r.off+headerSize]
		length := int(binary.LittleEndian.Uint16(hdr[4:6]))
		typ := hdr[6]
		if typ == 0 && length == 0 {
			// Zero padding up to the block end; skip to next block.
			r.off = r.n
			continue
		}
		if r.off+headerSize+length > r.n {
			return 0, nil, fmt.Errorf("%w: fragment overruns block", ErrCorrupt)
		}
		frag := r.block[r.off+headerSize : r.off+headerSize+length]
		wantCRC := binary.LittleEndian.Uint32(hdr[0:4])
		crc := crc32.Update(0, castagnoli, hdr[6:7])
		crc = crc32.Update(crc, castagnoli, frag)
		if crc != wantCRC {
			return 0, nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
		}
		r.off += headerSize + length
		return typ, frag, nil
	}
}

// Close closes the underlying file.
func (r *Reader) Close() error { return r.r.Close() }
