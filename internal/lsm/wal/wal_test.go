package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"shield/internal/vfs"
)

func writeRecords(t *testing.T, fs *vfs.MemFS, name string, records [][]byte) {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f)
	for _, rec := range records {
		if err := w.AddRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func readAll(t *testing.T, fs *vfs.MemFS, name string) ([][]byte, error) {
	t.Helper()
	f, err := fs.OpenSequential(name)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader(f)
	defer r.Close()
	var out [][]byte
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, append([]byte(nil), rec...))
	}
}

func TestRoundTripSmallRecords(t *testing.T) {
	fs := vfs.NewMem()
	var records [][]byte
	for i := 0; i < 1000; i++ {
		records = append(records, []byte(fmt.Sprintf("record-%04d", i)))
	}
	writeRecords(t, fs, "wal", records)
	got, err := readAll(t, fs, "wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(records) {
		t.Fatalf("read %d records, wrote %d", len(got), len(records))
	}
	for i := range records {
		if !bytes.Equal(got[i], records[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

// TestFragmentation covers records spanning block boundaries:
// first/middle/last reassembly.
func TestFragmentation(t *testing.T) {
	fs := vfs.NewMem()
	rng := rand.New(rand.NewSource(7))
	var records [][]byte
	sizes := []int{0, 1, 100, BlockSize - headerSize, BlockSize, BlockSize + 1, 3 * BlockSize, 100_000}
	for _, size := range sizes {
		rec := make([]byte, size)
		rng.Read(rec)
		records = append(records, rec)
	}
	writeRecords(t, fs, "wal", records)
	got, err := readAll(t, fs, "wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(records) {
		t.Fatalf("read %d records, wrote %d", len(got), len(records))
	}
	for i := range records {
		if !bytes.Equal(got[i], records[i]) {
			t.Fatalf("record %d (size %d) mismatch", i, len(records[i]))
		}
	}
}

// Property: arbitrary record sequences round-trip.
func TestRoundTripProperty(t *testing.T) {
	f := func(records [][]byte) bool {
		fs := vfs.NewMem()
		file, err := fs.Create("wal")
		if err != nil {
			return false
		}
		w := NewWriter(file)
		for _, rec := range records {
			if err := w.AddRecord(rec); err != nil {
				return false
			}
		}
		if err := w.Close(); err != nil {
			return false
		}
		sf, err := fs.OpenSequential("wal")
		if err != nil {
			return false
		}
		r := NewReader(sf)
		defer r.Close()
		for _, want := range records {
			got, err := r.Next()
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		_, err = r.Next()
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestTruncatedTail: a crash that cuts the file mid-record yields the full
// prefix then ErrCorrupt (not garbage).
func TestTruncatedTail(t *testing.T) {
	fs := vfs.NewMem()
	records := [][]byte{
		[]byte("alpha"), []byte("beta"), bytes.Repeat([]byte("x"), 50_000),
	}
	writeRecords(t, fs, "wal", records)

	data, err := vfs.ReadFile(fs, "wal")
	if err != nil {
		t.Fatal(err)
	}
	// Cut into the middle of the big record.
	if err := vfs.WriteFile(fs, "wal", data[:len(data)-20_000]); err != nil {
		t.Fatal(err)
	}

	f, _ := fs.OpenSequential("wal")
	r := NewReader(f)
	defer r.Close()
	for i := 0; i < 2; i++ {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("prefix record %d: %v", i, err)
		}
		if !bytes.Equal(rec, records[i]) {
			t.Fatalf("prefix record %d mismatch", i)
		}
	}
	if _, err := r.Next(); !errors.Is(err, ErrCorrupt) && err != io.EOF {
		t.Fatalf("truncated tail: want ErrCorrupt or EOF, got %v", err)
	}
}

// TestBitFlipDetected: corruption inside a record fails its checksum.
func TestBitFlipDetected(t *testing.T) {
	fs := vfs.NewMem()
	writeRecords(t, fs, "wal", [][]byte{[]byte("good-one"), []byte("good-two")})
	data, _ := vfs.ReadFile(fs, "wal")
	data[headerSize+2] ^= 0x40 // flip a payload bit in record 1
	vfs.WriteFile(fs, "wal", data)

	f, _ := fs.OpenSequential("wal")
	r := NewReader(f)
	defer r.Close()
	if _, err := r.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit flip: want ErrCorrupt, got %v", err)
	}
}

func TestEmptyLog(t *testing.T) {
	fs := vfs.NewMem()
	writeRecords(t, fs, "wal", nil)
	got, err := readAll(t, fs, "wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty log yielded %d records", len(got))
	}
}

func TestWriterSize(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("wal")
	w := NewWriter(f)
	w.AddRecord(make([]byte, 100))
	if w.Size() != 100+headerSize {
		t.Fatalf("size %d", w.Size())
	}
	w.Close()
}

// failingSyncFile wraps a writable file, failing Sync while armed.
type failingSyncFile struct {
	vfs.WritableFile
	fail bool
}

var errSyncInjected = errors.New("injected sync failure")

func (f *failingSyncFile) Sync() error {
	if f.fail {
		return errSyncInjected
	}
	return f.WritableFile.Sync()
}

// TestWriterMetrics checks the durability counters: bytes written advance
// with appends (including fragment headers), the sync counter advances only
// on successful Sync, the synced-bytes mark trails written bytes until a
// sync covers them, and Close's final sync is counted.
func TestWriterMetrics(t *testing.T) {
	fs := vfs.NewMem()
	raw, err := fs.Create("wal")
	if err != nil {
		t.Fatal(err)
	}
	f := &failingSyncFile{WritableFile: raw}
	w := NewWriter(f)

	if m := w.Metrics(); m.Syncs != 0 || m.BytesWritten != 0 || m.BytesSynced != 0 {
		t.Fatalf("fresh writer metrics = %+v, want zeros", m)
	}

	rec := bytes.Repeat([]byte("x"), 100)
	if err := w.AddRecord(rec); err != nil {
		t.Fatal(err)
	}
	m := w.Metrics()
	if m.BytesWritten != int64(len(rec))+headerSize {
		t.Fatalf("BytesWritten = %d, want %d", m.BytesWritten, len(rec)+headerSize)
	}
	if m.Syncs != 0 || m.BytesSynced != 0 {
		t.Fatalf("metrics before any sync = %+v, want no sync coverage", m)
	}

	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	m = w.Metrics()
	if m.Syncs != 1 {
		t.Fatalf("Syncs = %d after one Sync, want 1", m.Syncs)
	}
	if m.BytesSynced != m.BytesWritten {
		t.Fatalf("BytesSynced = %d, want %d (everything written was synced)", m.BytesSynced, m.BytesWritten)
	}

	// A failed sync counts nothing and covers nothing.
	if err := w.AddRecord(rec); err != nil {
		t.Fatal(err)
	}
	f.fail = true
	if err := w.Sync(); !errors.Is(err, errSyncInjected) {
		t.Fatalf("Sync = %v, want injected failure", err)
	}
	m2 := w.Metrics()
	if m2.Syncs != 1 || m2.BytesSynced != m.BytesSynced {
		t.Fatalf("failed sync advanced counters: %+v (was %+v)", m2, m)
	}
	f.fail = false

	// A record spanning multiple blocks accrues per-fragment headers.
	big := bytes.Repeat([]byte("y"), 2*BlockSize)
	before := w.Metrics().BytesWritten
	if err := w.AddRecord(big); err != nil {
		t.Fatal(err)
	}
	if got := w.Metrics().BytesWritten - before; got <= int64(len(big)) {
		t.Fatalf("fragmented record accounted %d bytes, want > payload %d", got, len(big))
	}

	// Close routes through Sync, so the closing sync is visible.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	m = w.Metrics()
	if m.Syncs != 2 {
		t.Fatalf("Syncs after Close = %d, want 2", m.Syncs)
	}
	if m.BytesSynced != m.BytesWritten {
		t.Fatalf("Close left BytesSynced=%d < BytesWritten=%d", m.BytesSynced, m.BytesWritten)
	}
}
