package lsm

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"shield/internal/vfs"
)

// crashPoint is one captured crash image plus the number of operations the
// workload had been acknowledged for when the sync boundary fired. Every op
// with index < acked completed a synced commit before this point, so its
// effect must survive the crash.
type crashPoint struct {
	event string
	img   *vfs.CrashImage
	acked int64
}

// crashOp is one scripted workload operation (Put of key->value).
type crashOp struct {
	key, value []byte
}

func crashWorkloadOps(n int) []crashOp {
	ops := make([]crashOp, n)
	for i := range ops {
		// Reuse keys so later ops overwrite earlier ones: the expected
		// post-crash value depends on exactly which ops were acked.
		k := fmt.Sprintf("k%03d", i%90)
		v := fmt.Sprintf("v%05d-%064d", i, i)
		ops[i] = crashOp{key: []byte(k), value: []byte(v)}
	}
	return ops
}

// expectedAfter applies the first acked ops to a model map.
func expectedAfter(ops []crashOp, acked int64) map[string][]byte {
	m := make(map[string][]byte)
	for i := int64(0); i < acked && i < int64(len(ops)); i++ {
		m[string(ops[i].key)] = ops[i].value
	}
	return m
}

func crashTestOptions(fs vfs.FS) Options {
	return Options{
		FS:                  fs,
		SyncWrites:          true,    // every acked Put is a durability promise
		MemtableSize:        1 << 10, // flush every handful of ops
		L0CompactionTrigger: 2,       // compact eagerly
		BaseLevelSize:       8 << 10,
		TargetFileSize:      4 << 10,
		MaxManifestFileSize: 2 << 10, // force manifest rotations mid-workload
	}
}

// runCrashWorkload runs the scripted workload on a CrashFS, collecting a
// crash image at every sync boundary.
func runCrashWorkload(t *testing.T, ops []crashOp) []crashPoint {
	t.Helper()
	cfs := vfs.NewCrash(1)
	var (
		mu     sync.Mutex
		points []crashPoint
		acked  atomic.Int64
	)
	cfs.AfterSync(func(event string, img *vfs.CrashImage) {
		mu.Lock()
		points = append(points, crashPoint{event: event, img: img, acked: acked.Load()})
		mu.Unlock()
	})

	db, err := Open("db", crashTestOptions(cfs))
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range ops {
		if err := db.Put(op.key, op.value); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		acked.Add(1)
		if (i+1)%25 == 0 {
			if err := db.Flush(); err != nil {
				t.Fatalf("flush at %d: %v", i, err)
			}
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	return points
}

// verifyCrashImage reopens a materialized post-crash filesystem and checks
// that every acked op survived.
func verifyCrashImage(t *testing.T, mode string, i int, pt crashPoint, fs *vfs.MemFS, ops []crashOp) {
	t.Helper()
	opts := crashTestOptions(fs)
	opts.ParanoidChecks = true
	db, err := Open("db", opts)
	if err != nil {
		t.Fatalf("%s point %d (%s): reopen failed: %v\nimage:\n%s", mode, i, pt.event, err, pt.img)
	}
	defer db.Close()
	// The op with index == acked is mid-commit when the boundary fires (the
	// boundary runs inside its WAL sync, before the ack), so its effect MAY
	// already be durable. Anything below acked MUST be.
	var inflight *crashOp
	if pt.acked < int64(len(ops)) {
		inflight = &ops[pt.acked]
	}
	for k, want := range expectedAfter(ops, pt.acked) {
		got, err := db.Get([]byte(k))
		if err != nil {
			t.Fatalf("%s point %d (%s, acked=%d): Get(%s): %v", mode, i, pt.event, pt.acked, k, err)
		}
		if bytes.Equal(got, want) {
			continue
		}
		if inflight != nil && k == string(inflight.key) && bytes.Equal(got, inflight.value) {
			continue
		}
		t.Fatalf("%s point %d (%s, acked=%d): Get(%s) = %q, want %q", mode, i, pt.event, pt.acked, k, got, want)
	}
}

// TestCrashRecoveryEnumeration crashes the database at every sync boundary of
// a scripted workload — WAL syncs, SST flushes, compactions, manifest
// rotations, CURRENT installs — and recovers from both the strict image
// (unsynced data gone) and a torn image (random prefixes of unsynced tails
// survive). At every point recovery must succeed and every synced-acked
// operation must be readable.
func TestCrashRecoveryEnumeration(t *testing.T) {
	ops := crashWorkloadOps(150)
	points := runCrashWorkload(t, ops)
	if len(points) < 50 {
		t.Fatalf("only %d crash points enumerated, want >= 50", len(points))
	}
	t.Logf("enumerated %d crash points", len(points))
	for i, pt := range points {
		verifyCrashImage(t, "strict", i, pt, pt.img.Strict(), ops)
		verifyCrashImage(t, "torn", i, pt, pt.img.Torn(0), ops)
	}
}

// TestCrashRecoveryFinalImage crashes after the final boundary (covering the
// clean-shutdown path) and checks full workload survival.
func TestCrashRecoveryFinalImage(t *testing.T) {
	ops := crashWorkloadOps(150)
	points := runCrashWorkload(t, ops)
	if len(points) == 0 {
		t.Fatal("no crash points")
	}
	last := points[len(points)-1]
	// Close() syncs everything, so the last boundary may still predate the
	// final acked count; use it as the floor and verify against it.
	verifyCrashImage(t, "final", len(points)-1, last, last.img.Strict(), ops)
}
