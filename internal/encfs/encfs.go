// Package encfs implements the paper's instance-level encryption design
// (Section 4): a transparent encrypting filesystem that intercepts all file
// I/O of the LSM-KVS and encrypts every byte with a single instance-wide DEK
// before it reaches the underlying filesystem.
//
// The LSM core stays unchanged and unaware — encfs.FS satisfies vfs.FS, so
// it drops in wherever the plain filesystem would. Each file begins with a
// small plaintext header (magic, version, random IV); the body is
// AES-128-CTR ciphertext under the instance DEK.
//
// Trade-offs (Section 4.2): one DEK for everything means no per-file blast-
// radius limits and no cheap rotation — rotating requires re-encrypting the
// entire store. SHIELD (internal/core) addresses those for DS deployments.
package encfs

import (
	"encoding/binary"
	"fmt"
	"io"
	"strings"

	"shield/internal/crypt"
	"shield/internal/vfs"
)

// headerMagic identifies EncFS files.
const headerMagic = 0x454e4346 // "ENCF"

// Header versions. v1 bodies are AES-128-CTR under the 16-byte IV
// (confidentiality only); v2 bodies are per-block AES-GCM (format v2,
// crypt/seal.go) where the first 8 IV bytes are the GCM nonce prefix and
// the whole header is bound into every block as AAD. The version is
// negotiated per file: readers accept both, so a store written by an older
// build keeps working and migrates file-by-file as compaction rewrites it.
const (
	headerVersion  = 1
	headerVersion2 = 2
	latestVersion  = headerVersion2
)

// HeaderLen is the plaintext header size: magic(4) + version(4) + IV(16).
const HeaderLen = 8 + crypt.IVSize

// IsEncrypted reports whether a file's raw prefix carries the EncFS header —
// used by integrity scrubs to tell "encrypted with a key we don't hold" from
// "corrupt" when reading below the decryption layer.
func IsEncrypted(prefix []byte) bool {
	return len(prefix) >= 4 && binary.LittleEndian.Uint32(prefix[0:4]) == headerMagic
}

// FS wraps a base filesystem with transparent single-DEK encryption.
type FS struct {
	base vfs.FS
	key  crypt.DEK

	// walBufSize, when positive, applies the application-managed buffer of
	// Section 5.3 to WAL files (names ending ".log"), amortizing the
	// per-write encryption-initialization cost. 0 encrypts every write
	// individually.
	walBufSize int

	// legacyCTR forces new files onto format v1 (CTR). It exists for
	// mixed-version coexistence tests and staged rollouts; reads always
	// accept both versions regardless.
	legacyCTR bool
}

// New returns an encrypting FS over base using the instance DEK key. The DEK
// is supplied at startup (e.g. by an operator or a KDS) and held only in
// memory for the lifetime of the instance.
func New(base vfs.FS, key crypt.DEK) *FS {
	return &FS{base: base, key: key}
}

// NewWithWALBuffer is New with the WAL-buffer optimization enabled for log
// files (the "EncFS + WAL-Buf" variant of the paper's evaluation).
func NewWithWALBuffer(base vfs.FS, key crypt.DEK, walBufSize int) *FS {
	return &FS{base: base, key: key, walBufSize: walBufSize}
}

// NewLegacyCTR returns an FS that writes format v1 (CTR) files, as builds
// before format v2 did. Reading is unaffected — both formats open.
func NewLegacyCTR(base vfs.FS, key crypt.DEK, walBufSize int) *FS {
	return &FS{base: base, key: key, walBufSize: walBufSize, legacyCTR: true}
}

// streamFile reports whether name is an append-many stream that must stay
// on format v1: sealed files are finalized by their first Sync, which is
// incompatible with the WAL's and MANIFEST's append-sync-append lifecycle.
// (Their records carry CRCs inside the ciphertext; the residual malleability
// window is documented in DESIGN.md §13.)
func streamFile(name string) bool {
	return strings.HasSuffix(name, ".log") || strings.Contains(name, "MANIFEST")
}

// Create implements vfs.FS. It writes the plaintext header, then returns a
// handle that encrypts everything appended after it.
func (e *FS) Create(name string) (vfs.WritableFile, error) {
	f, err := e.base.Create(name)
	if err != nil {
		return nil, err
	}
	iv, err := crypt.NewIV()
	if err != nil {
		f.Close()
		return nil, err
	}
	version := uint32(latestVersion)
	if e.legacyCTR || streamFile(name) {
		version = headerVersion
	}
	var hdr [HeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], headerMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], version)
	copy(hdr[8:], iv[:])
	if err := vfs.WriteFull(f, hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("encfs: writing header: %w", err)
	}
	if version == headerVersion2 {
		sealer, err := crypt.NewSealer(e.key, iv[:crypt.SealedNoncePrefixLen], hdr[:])
		if err != nil {
			f.Close()
			return nil, err
		}
		return crypt.NewSealedWriter(f, sealer), nil
	}
	bufSize := 0
	if e.walBufSize > 0 && strings.HasSuffix(name, ".log") {
		bufSize = e.walBufSize
	}
	return crypt.NewBufferedWriter(f, e.key, iv, bufSize), nil
}

// readHeader parses and validates an EncFS header from f, returning the
// raw header bytes (the v2 AAD), the IV, and the format version.
func readHeader(f vfs.RandomAccessFile) ([HeaderLen]byte, [crypt.IVSize]byte, uint32, error) {
	var iv [crypt.IVSize]byte
	var hdr [HeaderLen]byte
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, HeaderLen), hdr[:]); err != nil {
		return hdr, iv, 0, fmt.Errorf("encfs: reading header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != headerMagic {
		return hdr, iv, 0, fmt.Errorf("encfs: bad magic (file not encrypted by encfs?)")
	}
	v := binary.LittleEndian.Uint32(hdr[4:8])
	if v != headerVersion && v != headerVersion2 {
		return hdr, iv, 0, fmt.Errorf("encfs: unsupported header version %d", v)
	}
	copy(iv[:], hdr[8:])
	return hdr, iv, v, nil
}

// Open implements vfs.FS, returning a handle that decrypts positional reads
// (and, for format v2, authenticates every block it returns).
func (e *FS) Open(name string) (vfs.RandomAccessFile, error) {
	f, err := e.base.Open(name)
	if err != nil {
		return nil, err
	}
	hdr, iv, version, err := readHeader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	var r vfs.RandomAccessFile
	if version == headerVersion2 {
		sealer, serr := crypt.NewSealer(e.key, iv[:crypt.SealedNoncePrefixLen], hdr[:])
		if serr == nil {
			r, serr = crypt.NewSealedReaderAt(f, sealer, HeaderLen)
		}
		err = serr
	} else {
		//shield:noauthread format v1 compatibility: CTR files written before sealing existed remain readable
		r, err = crypt.NewDecryptingReaderAt(f, e.key, iv, HeaderLen)
	}
	if err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

// OpenSequential implements vfs.FS for streaming (WAL/MANIFEST recovery).
func (e *FS) OpenSequential(name string) (vfs.SequentialFile, error) {
	// Sequential decryption is implemented over the positional reader; WAL
	// recovery is rare enough that the simplicity wins.
	r, err := e.Open(name)
	if err != nil {
		return nil, err
	}
	return &sectionSequential{r: r}, nil
}

type sectionSequential struct {
	r   vfs.RandomAccessFile
	off int64
}

func (s *sectionSequential) Read(p []byte) (int, error) {
	n, err := s.r.ReadAt(p, s.off)
	s.off += int64(n)
	if n > 0 && err == io.EOF {
		return n, nil
	}
	return n, err
}

func (s *sectionSequential) Close() error { return s.r.Close() }

// Remove implements vfs.FS.
func (e *FS) Remove(name string) error { return e.base.Remove(name) }

// Rename implements vfs.FS.
func (e *FS) Rename(oldname, newname string) error { return e.base.Rename(oldname, newname) }

// List implements vfs.FS. Sizes reported include the EncFS header; the
// engine treats sizes as opaque hints, so this is acceptable.
func (e *FS) List(dir string) ([]vfs.FileInfo, error) { return e.base.List(dir) }

// MkdirAll implements vfs.FS.
func (e *FS) MkdirAll(dir string) error { return e.base.MkdirAll(dir) }

// SyncDir implements vfs.FS. Directory entries are not encrypted, so this is
// a straight passthrough.
func (e *FS) SyncDir(dir string) error { return e.base.SyncDir(dir) }

// Stat implements vfs.FS.
func (e *FS) Stat(name string) (vfs.FileInfo, error) { return e.base.Stat(name) }
