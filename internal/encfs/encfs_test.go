package encfs

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"shield/internal/crypt"
	"shield/internal/vfs"
)

func newFS(t *testing.T) (*vfs.MemFS, *FS, crypt.DEK) {
	t.Helper()
	base := vfs.NewMem()
	dek, err := crypt.NewDEK()
	if err != nil {
		t.Fatal(err)
	}
	return base, New(base, dek), dek
}

func TestTransparentRoundTrip(t *testing.T) {
	base, efs, _ := newFS(t)
	payload := make([]byte, 50_000)
	rand.New(rand.NewSource(1)).Read(payload)

	if err := vfs.WriteFile(efs, "f.bin", payload); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(efs, "f.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("round trip mismatch")
	}

	// Underlying bytes are ciphertext + header.
	raw, err := vfs.ReadFile(base, "f.bin")
	if err != nil {
		t.Fatal(err)
	}
	// v2 sealed body: one 16-byte GCM tag per 4 KiB block plus the final
	// tail block.
	wantRaw := HeaderLen + len(payload) + (len(payload)/crypt.SealedBlockSize+1)*crypt.SealedTagSize
	if len(raw) != wantRaw {
		t.Fatalf("raw size %d, want %d", len(raw), wantRaw)
	}
	if bytes.Contains(raw, payload[:64]) {
		t.Fatal("plaintext visible on the base filesystem")
	}
}

func TestPositionalReads(t *testing.T) {
	_, efs, _ := newFS(t)
	payload := make([]byte, 10_000)
	rand.New(rand.NewSource(2)).Read(payload)
	vfs.WriteFile(efs, "f", payload)

	f, err := efs.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		off := rng.Intn(9000)
		n := 1 + rng.Intn(1000)
		buf := make([]byte, n)
		if _, err := f.ReadAt(buf, int64(off)); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, payload[off:off+n]) {
			t.Fatalf("ReadAt(%d,%d) mismatch", off, n)
		}
	}
	if size, _ := f.Size(); size != int64(len(payload)) {
		t.Fatalf("size %d (header must be hidden)", size)
	}
}

func TestSequentialRead(t *testing.T) {
	_, efs, _ := newFS(t)
	payload := []byte("sequential payload for WAL-style recovery reads")
	vfs.WriteFile(efs, "f", payload)
	sf, err := efs.OpenSequential("f")
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	got, err := io.ReadAll(sf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("sequential read %q", got)
	}
}

func TestWrongKeyFailsAuthentication(t *testing.T) {
	base, efs, _ := newFS(t)
	payload := []byte("the secret payload")
	vfs.WriteFile(efs, "f", payload)

	other, err := crypt.NewDEK()
	if err != nil {
		t.Fatal(err)
	}
	// Format v2 authenticates: a wrong key must fail loudly, never return
	// noise (v1 CTR decrypted to garbage here).
	efs2 := New(base, other)
	got, err := vfs.ReadFile(efs2, "f")
	if err == nil {
		if bytes.Equal(got, payload) {
			t.Fatal("wrong key decrypted correctly?!")
		}
		t.Fatal("wrong key returned unauthenticated bytes")
	}
	if !errors.Is(err, vfs.ErrIntegrity) {
		t.Fatalf("want vfs.ErrIntegrity, got %v", err)
	}
}

func TestNonEncFSFileRejected(t *testing.T) {
	base, efs, _ := newFS(t)
	vfs.WriteFile(base, "plain.txt", []byte("not an encfs file"))
	if _, err := efs.Open("plain.txt"); err == nil {
		t.Fatal("plain file opened as encrypted")
	}
}

func TestPerFileIVsDiffer(t *testing.T) {
	base, efs, _ := newFS(t)
	payload := bytes.Repeat([]byte("A"), 1000)
	vfs.WriteFile(efs, "a", payload)
	vfs.WriteFile(efs, "b", payload)
	ra, _ := vfs.ReadFile(base, "a")
	rb, _ := vfs.ReadFile(base, "b")
	if bytes.Equal(ra[HeaderLen:], rb[HeaderLen:]) {
		t.Fatal("same plaintext under one DEK produced identical ciphertext (IV reuse)")
	}
}

func TestWALBufferVariant(t *testing.T) {
	base := vfs.NewMem()
	dek, _ := crypt.NewDEK()
	efs := NewWithWALBuffer(base, dek, 512)

	// .log files buffer; Sync persists.
	f, err := efs.Create("000001.log")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("small"))
	if info, _ := base.Stat("000001.log"); info.Size != HeaderLen {
		t.Fatalf("buffered write leaked early: %d", info.Size)
	}
	f.Sync()
	if info, _ := base.Stat("000001.log"); info.Size != HeaderLen+5 {
		t.Fatalf("sync did not flush: %d", info.Size)
	}
	f.Close()

	// Non-log files are sealed (v2): sub-block writes stay buffered until
	// finalization, which emits the tail block plus its GCM tag.
	g, _ := efs.Create("000002.sst")
	g.Write([]byte("block"))
	if info, _ := base.Stat("000002.sst"); info.Size != HeaderLen {
		t.Fatalf("sealed write leaked before finalization: %d", info.Size)
	}
	g.Close()
	if info, _ := base.Stat("000002.sst"); info.Size != HeaderLen+5+crypt.SealedTagSize {
		t.Fatalf("sealed close did not finalize: %d", info.Size)
	}
}

func TestFSOpsDelegate(t *testing.T) {
	_, efs, _ := newFS(t)
	efs.MkdirAll("d")
	vfs.WriteFile(efs, "d/a", []byte("1"))
	if err := efs.Rename("d/a", "d/b"); err != nil {
		t.Fatal(err)
	}
	infos, err := efs.List("d")
	if err != nil || len(infos) != 1 || infos[0].Name != "b" {
		t.Fatalf("list: %v %v", infos, err)
	}
	if err := efs.Remove("d/b"); err != nil {
		t.Fatal(err)
	}
}
