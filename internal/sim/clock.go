// Package sim is the whole-stack fault simulator: a seeded, reproducible
// harness that drives the full SHIELD stack (LSM engine, per-file
// encryption, KDS replicas, secure DEK cache, optionally a disaggregated
// storage node) through a composed nemesis schedule — disk-full, network
// faults, KDS and storage-node kills, bit-rot, and power-loss crashes —
// while a concurrent workload records what was acknowledged and a checker
// holds the run to the durability contract:
//
//   - every synced-acknowledged write survives everything the nemesis does;
//   - every read returns a value some linear history permits;
//   - tampering surfaces as a typed corruption error, never as silent
//     wrong data.
//
// A run is parameterized by a single uint64 seed. The nemesis schedule is
// derived entirely from the seed before the workload starts, so the
// schedule (and its hash) replays byte-identically; the thread
// interleaving of the workload is genuinely concurrent and is checked, not
// replayed. When a seed fails, Reduce shrinks the schedule to the shortest
// still-failing prefix and the CLI prints the replay command.
package sim

import "sync/atomic"

// clock is the simulation's virtual time base: a monotonic step counter
// advanced once per workload operation. Nemesis events trigger on step
// thresholds, so fault timing is phrased in workload progress — the same
// schedule stresses the same phases of a run regardless of host speed.
type clock struct {
	step atomic.Uint64
}

// tick advances virtual time by one operation and returns the new step.
func (c *clock) tick() uint64 { return c.step.Add(1) }

// now returns the current step without advancing.
func (c *clock) now() uint64 { return c.step.Load() }

// splitmix64 is the seed-derivation PRNG step (Vigna's SplitMix64). Every
// independent random stream in a run — per-worker op streams, fault-rule
// probabilities, torn-write shuffles — gets its own sub-seed derived from
// the master seed and a stream index, so streams never alias.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// subSeed derives the stream-th independent seed from master.
func subSeed(master uint64, stream uint64) int64 {
	return int64(splitmix64(master ^ splitmix64(stream)))
}
