package sim

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"path"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"shield/internal/compactsvc"
	"shield/internal/core"
	"shield/internal/dstore"
	"shield/internal/kds"
	"shield/internal/lsm"
	"shield/internal/netretry"
	"shield/internal/seccache"
	"shield/internal/server"
	"shield/internal/vfs"
)

const (
	simDir      = "db"
	simServerID = "sim-server"
	cachePath   = "seccache"
)

// Config parameterizes one simulation run. Zero values select defaults
// sized so a run finishes in well under a second on an in-memory stack.
type Config struct {
	// Seed is the single source of randomness: it derives the nemesis
	// schedule, every worker's op stream, fault probabilities, torn-write
	// shuffles, and the retry-jitter stream.
	Seed uint64

	// Ops is the total workload operation budget across workers
	// (default 600).
	Ops int

	// Workers is the number of concurrent workload goroutines (default 4).
	Workers int

	// KeysPerWorker sizes each worker's private key range (default 24).
	KeysPerWorker int

	// Events is the nemesis schedule length (default Ops/60, min 4).
	Events int

	// MaxEvents, when > 0, truncates the schedule to its first MaxEvents
	// entries — the reducer's lever. The zero value applies no cap (the
	// full schedule runs); a negative value runs an empty schedule. (The
	// zero value used to truncate everything, which silently stripped the
	// nemesis from any Config that didn't set the field.)
	MaxEvents int

	// Dstore routes the data path through a disaggregated storage node
	// (a dstore server + client pair), adding node-kill events and real
	// network framing to the mix.
	Dstore bool

	// BitRot enables tamper events. A tampered run relaxes the checker to
	// quarantine semantics, so leave it off when hunting strict-durability
	// bugs.
	BitRot bool

	// Rollback enables the manifest-rollback nemesis: an adversary captures
	// the durable image at one point and later restores it wholesale — the
	// freshness attack the sealed epoch floor exists to catch. The secure
	// cache lives on a separate device and is NOT rolled back, so a reopen
	// against the stale tree must fail closed with an epoch-regression
	// error before the harness overrides it, operator-style, with
	// AllowRollback. A rolled-back run relaxes the checker like BitRot.
	Rollback bool

	// NodeLoss replicates the data path across three storage nodes behind a
	// quorum-2 replica set and offloads compactions through a lease-based
	// orchestrator to two storage-side SHIELD workers — then kills replicas
	// mid-write and workers mid-lease on top of the usual fault mix, and
	// audits every in-sync replica for byte-identical state at end of run.
	// Supersedes Dstore (the single-node topology) when set.
	NodeLoss bool

	// ConnStorm fronts the engine with a RESP shield-server on loopback
	// and adds connection-storm and slow-client events: bursts of clients
	// mixing valid, unknown, and malformed commands, plus connections that
	// stall mid-frame. A health probe after each event checks the server
	// still answers; a wedged server is a violation.
	ConnStorm bool

	// Timeout aborts a wedged run (default 2 minutes); a trip is reported
	// as a violation, since nothing in the stack should deadlock.
	Timeout time.Duration

	// Logf, when set, receives verbose progress (the CLI's -v).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Ops <= 0 {
		c.Ops = 600
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.KeysPerWorker <= 0 {
		c.KeysPerWorker = 24
	}
	if c.Events == 0 {
		c.Events = c.Ops / 60
		if c.Events < 4 {
			c.Events = 4
		}
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Minute
	}
	if c.NodeLoss {
		c.Dstore = false // the replicated fleet replaces the single node
	}
	return c
}

// Result is one run's verdict and reproduction record.
type Result struct {
	Seed uint64

	// Hash digests the seed-derived schedule; two runs of the same seed
	// and config produce the same hash (the reproducibility witness).
	Hash string

	// Plan is the hashed schedule, one line per nemesis event.
	Plan []string

	// Notes are unhashed runtime observations (engine logs, retry notes).
	Notes []string

	// Violations are checker findings; empty means the run passed.
	Violations []string

	Acked, FailedWrites, Reads, Scans int64
	Crashes, Reopens                  int64
	Tainted                           bool
}

// Failed reports whether the run violated the durability contract.
func (r *Result) Failed() bool { return len(r.Violations) > 0 }

type simulation struct {
	cfg     Config
	clock   clock
	checker *checker
	keys    []string // full key universe; worker w owns [w*K, (w+1)*K)

	// stackMu serializes nemesis events against workload ops: workers
	// hold it shared per op, event execution holds it exclusive. This is
	// the crash barrier — a snapshot is only taken with no op in flight,
	// so every acknowledgment the checker recorded precedes the image.
	stackMu sync.RWMutex
	db      *lsm.DB
	crash   *vfs.CrashFS
	quota   *vfs.QuotaFS
	fault   *vfs.FaultFS
	cache   *seccache.Cache

	quotaLimit  int64
	activeRules []vfs.FaultRule // re-installed after a crash rebuild
	tainted     bool
	faultStream uint64 // sub-seed counter for rebuilt RNG streams

	// Rollback nemesis state: the captured durable image, whether a
	// rollback was actually performed (epoch regression is only legitimate
	// then), and whether reopen runs with the operator's override.
	rollbackImg   *vfs.CrashImage
	rolledBack    bool
	allowRollback bool

	// tampered maps each bit-rotted file to the SHA-256 of its post-flip
	// bytes; the end-of-run scrub audit asserts every such file that still
	// holds those bytes gets a non-ok verdict.
	tampered map[string][32]byte

	cacheBase *vfs.MemFS
	cacheFS   *vfs.FaultFS

	kdsStore  *kds.Store
	kdsSrv    [2]*kds.Server
	kdsAddr   [2]string
	kdsUp     [2]bool
	kdsClient *kds.Client

	storeSrv    *dstore.Server
	storeAddr   string
	storeClient *dstore.Client
	storeUp     bool

	// Replicated fleet (NodeLoss runs). repMu guards the slots because
	// replica/worker kill events fire under stackMu *shared* (they must
	// overlap in-flight ops) while crash rebuilds hold it exclusive; the
	// lock order is stackMu before repMu everywhere.
	repMu      sync.Mutex
	repBase    [2]*vfs.MemFS // replicas 1 and 2: independent devices
	repSrv     [3]*dstore.Server
	repAddr    [3]string
	repUp      [3]bool
	rs         *dstore.ReplicaSet
	rsSwap     *swapFS // the workers' storage handle; repointed on rebuild
	orch       *compactsvc.Orchestrator
	orchAddr   string
	simWorkers [2]*compactsvc.Worker
	workerWrap [2]lsm.FileWrapper
	workerKDS  [2]*kds.Client
	workerUp   [2]bool

	// Serving layer (ConnStorm runs): a RESP server over a lock-free
	// swappable engine handle, plus the stalled connections the
	// slow-client event leaves open. All mutated under stackMu exclusive.
	srv       *server.Server
	srvDone   chan error // receives Serve's result; drained by stopServerLocked
	srvEngine *swapEngine
	srvAddr   string
	slowConns []net.Conn

	plan   []event
	nextEv int
	evMu   sync.Mutex

	dead atomic.Bool // harness gave up (unrecoverable reopen); workers drain

	notesMu sync.Mutex
	notes   []string

	acked, failedW, reads, scans atomic.Int64
	crashes, reopens             atomic.Int64
}

// Run executes one seeded simulation and reports the verdict.
func Run(cfg Config) *Result {
	cfg = cfg.withDefaults()
	planRNG := rand.New(rand.NewSource(subSeed(cfg.Seed, 0)))
	plan := planNemesis(cfg, planRNG)
	if cfg.MaxEvents != 0 {
		limit := cfg.MaxEvents
		if limit < 0 {
			limit = 0
		}
		if len(plan) > limit {
			plan = plan[:limit]
		}
	}
	netretry.Seed(subSeed(cfg.Seed, 1))

	s := &simulation{cfg: cfg, plan: plan}
	for w := 0; w < cfg.Workers; w++ {
		for k := 0; k < cfg.KeysPerWorker; k++ {
			s.keys = append(s.keys, fmt.Sprintf("w%02d-k%03d", w, k))
		}
	}
	s.checker = newChecker(s.keys)

	if err := s.bootstrap(); err != nil {
		s.checker.violate("bootstrap: %v", err)
		return s.result()
	}
	defer s.teardown()

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go s.worker(w, &wg)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(cfg.Timeout):
		s.dead.Store(true)
		s.checker.violate("watchdog: run wedged after %v at step %d", cfg.Timeout, s.clock.now())
		return s.result()
	}

	s.finalVerify()
	return s.result()
}

func (s *simulation) result() *Result {
	r := &Result{
		Seed:         s.cfg.Seed,
		Hash:         hashPlan(s.cfg.Seed, s.plan),
		Violations:   s.checker.report(),
		Acked:        s.acked.Load(),
		FailedWrites: s.failedW.Load(),
		Reads:        s.reads.Load(),
		Scans:        s.scans.Load(),
		Crashes:      s.crashes.Load(),
		Reopens:      s.reopens.Load(),
		Tainted:      s.tainted,
	}
	for _, e := range s.plan {
		r.Plan = append(r.Plan, e.String())
	}
	s.notesMu.Lock()
	r.Notes = append([]string(nil), s.notes...)
	s.notesMu.Unlock()
	return r
}

func (s *simulation) note(format string, args ...any) {
	s.notesMu.Lock()
	defer s.notesMu.Unlock()
	if len(s.notes) < 256 {
		s.notes = append(s.notes, fmt.Sprintf(format, args...))
	}
	if s.cfg.Logf != nil {
		s.cfg.Logf("seed %d: "+format, append([]any{s.cfg.Seed}, args...)...)
	}
}

func (s *simulation) nextStream() int64 {
	s.faultStream++
	return subSeed(s.cfg.Seed, 1000+s.faultStream)
}

// ---- Stack construction ----

func (s *simulation) bootstrap() error {
	policy := kds.DefaultPolicy()
	if s.cfg.NodeLoss {
		// One-time provisioning, fleet-sized: a worker-created DEK is
		// foreign-fetched by the compute node AND by the other worker when
		// it later compacts those outputs. (The creator's own re-fetch is
		// free and does not consume the budget.)
		policy.MaxFetches = 4
	}
	s.kdsStore = kds.NewStore(policy)
	s.kdsStore.Authorize(simServerID)
	for i := range s.kdsSrv {
		srv, err := kds.NewServer(s.kdsStore, "127.0.0.1:0")
		if err != nil {
			return fmt.Errorf("kds replica %d: %w", i, err)
		}
		s.kdsSrv[i] = srv
		s.kdsAddr[i] = srv.Addr()
		s.kdsUp[i] = true
	}
	s.kdsClient = kds.NewClientConfig(simServerID, kds.ClientConfig{
		DialTimeout:    200 * time.Millisecond,
		RequestTimeout: 500 * time.Millisecond,
		MaxAttempts:    4,
		BackoffBase:    time.Millisecond,
		BackoffMax:     20 * time.Millisecond,
	}, s.kdsAddr[0], s.kdsAddr[1])

	s.cacheBase = vfs.NewMem()
	s.cacheFS = vfs.NewFault(s.cacheBase, s.nextStream())
	s.reopenCacheLocked()

	s.crash = vfs.NewCrash(s.nextStream())
	s.quota = vfs.NewQuota(s.crash, 0)
	s.fault = vfs.NewFault(s.quota, s.nextStream())

	if s.cfg.Dstore {
		if err := s.startStoreLocked("127.0.0.1:0"); err != nil {
			return err
		}
	}
	if s.cfg.NodeLoss {
		if err := s.startReplicaFleetLocked(); err != nil {
			return err
		}
	}
	if s.cfg.ConnStorm {
		s.srvEngine = &swapEngine{}
	}
	s.openDBLocked()
	if s.dead.Load() {
		return errors.New("initial open failed")
	}
	if s.cfg.ConnStorm {
		if err := s.startServerLocked(); err != nil {
			return err
		}
	}
	return nil
}

// setDBLocked swaps the engine: the field the workload reads under the
// crash barrier, and the lock-free handle the serving layer reads without
// it (nil while the stack is torn down mid-crash).
func (s *simulation) setDBLocked(db *lsm.DB) {
	s.db = db
	if s.srvEngine != nil {
		s.srvEngine.db.Store(db)
	}
}

func (s *simulation) dataFSLocked() vfs.FS {
	if s.cfg.NodeLoss {
		return s.rs
	}
	if s.cfg.Dstore {
		return s.storeClient
	}
	return s.fault
}

func (s *simulation) startStoreLocked(addr string) error {
	srv, err := dstore.NewServer(s.fault, addr, 0, 0)
	if err != nil {
		return fmt.Errorf("dstore node: %w", err)
	}
	s.storeSrv = srv
	s.storeAddr = srv.Addr()
	client, err := dstore.DialConfig(s.storeAddr, dstore.Config{
		Conns:          2,
		DialTimeout:    200 * time.Millisecond,
		RequestTimeout: 2 * time.Second,
		MaxAttempts:    3,
		BackoffBase:    time.Millisecond,
		BackoffMax:     20 * time.Millisecond,
	})
	if err != nil {
		srv.Close()
		return fmt.Errorf("dstore dial: %w", err)
	}
	s.storeClient = client
	s.storeUp = true
	return nil
}

func (s *simulation) reopenCacheLocked() {
	cache, err := seccache.Open(s.cacheFS, cachePath, []byte("sim-passkey"))
	if err != nil {
		s.note("seccache open failed, running cacheless: %v", err)
		s.cache = nil
		return
	}
	if cache.Recovered() {
		s.note("seccache cold-started after corruption")
	}
	s.cache = cache
}

func (s *simulation) lsmOptsLocked() lsm.Options {
	opts := lsm.Options{
		MemtableSize:        8 << 10, // flush constantly
		BaseLevelSize:       64 << 10,
		TargetFileSize:      16 << 10,
		L0CompactionTrigger: 3,
		MaxBackgroundJobs:   4,       // concurrent compactions under the nemesis
		MaxSubcompactions:   3,       // crash mid-shard is part of the fault space
		MaxManifestFileSize: 8 << 10, // exercise manifest rotation
		SyncWrites:          true,    // acked == durable, the checker's axiom
		BestEffortRecovery:  s.tainted,
		AllowRollback:       s.allowRollback,
		Logger: func(format string, args ...any) {
			s.note("engine: "+format, args...)
		},
	}
	if s.cfg.NodeLoss && s.orch != nil {
		opts.Compactor = s.orch
	}
	return opts
}

// openDBLocked opens the database on the current stack, absorbing the two
// recoverable open-failure classes the nemesis can cause (disk still full,
// every KDS replica down) the way an operator would. Anything else is a
// genuine recovery failure and is reported as a violation.
//
//shield:nolockio stackMu is the simulation's crash barrier: rebuilding the stack must exclude every workload op, and all I/O here is against in-memory fakes
func (s *simulation) openDBLocked() {
	// Every recoverable failure class below strictly drains: ENOSPC is lifted
	// on the first retry, KDS replicas restart, and injected fault rules are
	// count-limited — so a generous attempt budget terminates. It must cover
	// the worst-case fault budget a net-fault event can install (~15 firings).
	for attempt := 0; attempt < 25; attempt++ {
		cfg := core.Config{
			Mode:          core.ModeSHIELD,
			FS:            s.dataFSLocked(),
			KDS:           s.kdsClient,
			Cache:         s.cache,
			WALBufferSize: 512,
		}
		db, err := core.Open(simDir, cfg, s.lsmOptsLocked())
		if err == nil {
			s.setDBLocked(db)
			s.reopens.Add(1)
			return
		}
		switch {
		case errors.Is(err, vfs.ErrNoSpace):
			s.note("open hit ENOSPC; freeing space and retrying")
			s.quota.SetLimit(0)
			s.quotaLimit = 0
		case errors.Is(err, kds.ErrNoReplica) || errors.Is(err, kds.ErrUnconfirmed):
			s.note("open with all KDS replicas down; restarting them")
			s.restartKDSLocked()
		case errors.Is(err, vfs.ErrInjected):
			// A transient injected fault (flaky remote storage) hit the
			// recovery path. The rules are count-limited, so retrying the
			// open drains them — the operator model for a flaky mount.
			s.note("open hit an injected transient fault; retrying")
		case s.cfg.NodeLoss && errors.Is(err, dstore.ErrNoQuorum):
			// Too many replicas demoted (a kill window overlapping enough
			// write failures on replica 0). Restart the dead nodes and give
			// the re-sync loop a beat to heal and promote them.
			s.note("open below write quorum; restarting dead replicas")
			s.restartDownReplicasLocked()
			time.Sleep(100 * time.Millisecond)
		case errors.Is(err, lsm.ErrEpochRegression):
			// Fail-closed rollback detection fired. Legitimate only if the
			// nemesis actually rolled the image back; the harness then plays
			// the operator who verified the rollback and overrides it.
			// Spurious detection is a violation — it would lock users out of
			// an intact store.
			if !s.rolledBack {
				s.checker.violate("reopen reported epoch regression with no rollback injected: %v", err)
				s.setDBLocked(nil)
				s.dead.Store(true)
				return
			}
			s.note("rollback detected at reopen (%v); continuing with allow-rollback", err)
			s.allowRollback = true
		default:
			s.checker.violate("reopen failed irrecoverably: %v", err)
			s.setDBLocked(nil)
			s.dead.Store(true)
			return
		}
	}
	s.checker.violate("reopen retries exhausted")
	s.setDBLocked(nil)
	s.dead.Store(true)
}

func (s *simulation) restartKDSLocked() {
	for i := range s.kdsSrv {
		if s.kdsUp[i] {
			continue
		}
		srv, err := kds.NewServer(s.kdsStore, s.kdsAddr[i])
		if err != nil {
			s.note("kds replica %d failed to restart: %v", i, err)
			continue
		}
		s.kdsSrv[i] = srv
		s.kdsUp[i] = true
	}
}

// ---- Nemesis execution ----

// fireDue runs every planned event whose step has arrived. Workers call it
// once per op; each event is claimed exactly once, in plan order.
func (s *simulation) fireDue(step uint64) {
	for {
		s.evMu.Lock()
		if s.nextEv >= len(s.plan) || s.plan[s.nextEv].step > step {
			s.evMu.Unlock()
			return
		}
		ev := s.plan[s.nextEv]
		idx := s.nextEv
		s.nextEv++
		s.evMu.Unlock()
		s.fire(ev, idx)
	}
}

// fire executes one claimed event; idx is its plan position, captured by
// the claimer under evMu (reading s.nextEv here would race later claims).
//
//shield:nolockio the exclusive lock IS the nemesis barrier: events must run with no workload op in flight, so blocking I/O under stackMu is the design, not an accident
func (s *simulation) fire(ev event, idx int) {
	switch ev.kind {
	case evReplicaKill, evReplicaRestart, evWorkerKill, evWorkerRestart:
		// The fleet events take the barrier *shared*: a node dying out from
		// under an in-flight quorum write (or a worker mid-lease) is exactly
		// the race this band exists to exercise, so they must overlap ops
		// rather than quiesce them like every other event.
		s.fireReplicaEvent(ev)
		return
	}
	s.stackMu.Lock()
	defer s.stackMu.Unlock()
	if s.dead.Load() {
		return
	}
	s.note("firing %s", ev)
	switch ev.kind {
	case evDiskFull:
		s.quotaLimit = s.quota.Used() + ev.arg
		s.quota.SetLimit(s.quotaLimit)
	case evDiskFree:
		s.quotaLimit = 0
		s.quota.SetLimit(0)
		s.healLocked()
	case evNetFault:
		rules := []vfs.FaultRule{
			{Op: vfs.FaultWrite, Probability: 0.2, Count: int(ev.arg)},
			{Op: vfs.FaultRead, Probability: 0.1, Count: int(ev.arg)},
			{Op: vfs.FaultWrite, Probability: 0.05, Count: 1, TornBytes: 7},
		}
		s.activeRules = rules
		for _, r := range rules {
			s.fault.Inject(r)
		}
	case evNetHeal:
		s.fault.ClearRules()
		s.activeRules = nil
		s.healLocked()
	case evCacheFault:
		s.cacheFS.Inject(vfs.FaultRule{Op: vfs.FaultWrite, Path: cachePath, Count: int(ev.arg)})
	case evKDSKill:
		i := int(ev.arg) % len(s.kdsSrv)
		other := (i + 1) % len(s.kdsSrv)
		if s.kdsUp[i] && s.kdsUp[other] { // never kill the last replica
			s.kdsSrv[i].Close()
			s.kdsUp[i] = false
		}
	case evKDSRestart:
		s.restartKDSLocked()
		s.healLocked()
	case evStoreKill:
		if s.storeUp {
			s.storeClient.Close()
			s.storeSrv.Close()
			s.storeUp = false
		}
	case evStoreRestart:
		if s.cfg.Dstore && !s.storeUp {
			if err := s.startStoreLocked(s.storeAddr); err != nil {
				s.note("store restart failed: %v", err)
				return
			}
			s.healLocked()
		}
	case evBitRot:
		s.bitRotLocked(ev.arg)
	case evManifestSnap:
		// The adversary quietly copies the durable image (manifest, CURRENT,
		// SSTs — everything but the secure cache, which lives on another
		// device) for a later replay.
		s.rollbackImg = s.crash.Snapshot()
		s.note("manifest-snap: adversary captured the durable image")
	case evManifestRollback:
		if s.rollbackImg == nil {
			s.note("manifest-rollback: no captured image yet; skipped")
			return
		}
		// Replay the stale image wholesale and power-cycle onto it. Acked
		// writes since the snapshot vanish, so the checker degrades to
		// taint semantics — but the sealed epoch floor must make the reopen
		// fail closed first (asserted in openDBLocked).
		s.tainted = true
		s.checker.taint()
		s.rolledBack = true
		s.note("manifest-rollback: restoring stale durable image")
		s.crashToLocked(s.rollbackImg, false, subSeed(s.cfg.Seed, 6000+uint64(idx)))
	case evConnStorm:
		s.connStormLocked(ev.arg)
	case evSlowClient:
		s.slowClientLocked(ev.arg)
	case evCrash:
		s.crashLocked(ev.arg == 1, subSeed(s.cfg.Seed, 5000+uint64(idx)))
	}
}

// healLocked performs the operator's move after a fault window lifts: if
// the engine poisoned itself into degraded mode, close it gracefully and
// reopen on the same (healed) stack. Recovery replays the synced WAL, so
// nothing acknowledged is lost — the enospc/degraded tests assert the same
// transition deterministically.
func (s *simulation) healLocked() {
	if s.db == nil || s.db.Degraded() == nil {
		return
	}
	if s.cfg.Dstore && !s.storeUp {
		// No reopen can succeed while the storage node is down; stay in
		// degraded mode (reads still work) until store-restart heals us.
		s.note("degraded with the storage node down; deferring heal")
		return
	}
	s.note("degraded after heal: controlled reopen")
	if err := s.db.Close(); err != nil {
		s.note("close while degraded: %v", err)
	}
	s.setDBLocked(nil)
	s.openDBLocked()
}

// bitRotLocked flips one bit in a cold SST, writing through the crash
// layer directly (below quota accounting — media corruption does not
// allocate space). The checker is tainted first, so any read observing the
// damage is judged under quarantine semantics.
//
//shield:nolockio stackMu is the simulation's crash barrier (tampering must not race a workload op), and the "device" is an in-memory fake
//shield:nosyncdir the tampered SST already exists; media corruption rewrites bytes in place and owes its directory entry no durability
func (s *simulation) bitRotLocked(arg int64) {
	entries, err := s.crash.List(simDir)
	if err != nil {
		s.note("bit-rot: list: %v", err)
		return
	}
	var ssts []string
	for _, e := range entries {
		// List returns base names; tampering needs the full path.
		if strings.HasSuffix(e.Name, ".sst") {
			ssts = append(ssts, path.Join(simDir, e.Name))
		}
	}
	if len(ssts) == 0 {
		s.note("bit-rot: no SSTs yet; skipped")
		return
	}
	// Prefer the older half of the tree: cold files, likely not open for
	// writing and overdue for a scrub to catch.
	name := ssts[int(uint64(arg)%uint64((len(ssts)+1)/2))]
	data, err := vfs.ReadFile(s.crash, name)
	if err != nil || len(data) == 0 {
		s.note("bit-rot: read %s: %v", name, err)
		return
	}
	s.tainted = true
	s.checker.taint()
	off := int(uint64(arg) % uint64(len(data)))
	data[off] ^= 1 << (uint64(arg) % 8)
	f, err := s.crash.Create(name)
	if err != nil {
		s.note("bit-rot: rewrite %s: %v", name, err)
		return
	}
	if _, err := f.Write(data); err == nil {
		f.Sync() //nolint:errcheck
	}
	f.Close()
	// Remember the exact tampered bytes: the end-of-run scrub audit asserts
	// that a file still holding them never gets an ok verdict. (Compaction
	// or a rollback may legitimately replace the file; the hash tells the
	// audit which assertions still apply.)
	if s.tampered == nil {
		s.tampered = make(map[string][32]byte)
	}
	s.tampered[name] = sha256.Sum256(data)
	s.note("bit-rot: flipped bit %d of %s (%d bytes)", off, name, len(data))
}

// crashLocked is power loss: abandon the running engine (its goroutines
// wind down against the dead store), restore the filesystem to exactly the
// durable image — optionally with torn unsynced tails — rebuild the
// wrapper stack, and recover.
//
//shield:nolockio stackMu is the simulation's crash barrier: the whole point is that no workload op may overlap the power cycle; every device is an in-memory fake
func (s *simulation) crashLocked(torn bool, tornSeed int64) {
	s.crashToLocked(s.crash.Snapshot(), torn, tornSeed)
}

// crashToLocked is crashLocked generalized over the image the machine comes
// back up on: the current durable snapshot for power loss, an older captured
// snapshot for the manifest-rollback nemesis.
//
//shield:nolockio stackMu is the simulation's crash barrier: the whole point is that no workload op may overlap the power cycle; every device is an in-memory fake
func (s *simulation) crashToLocked(img *vfs.CrashImage, torn bool, tornSeed int64) {
	s.crashes.Add(1)
	if s.db != nil {
		old := s.db
		s.setDBLocked(nil)
		go old.Close() //nolint:errcheck // the "process" died; this just reaps goroutines
	}
	if s.cfg.Dstore && s.storeUp {
		s.storeClient.Close()
		s.storeSrv.Close()
		s.storeUp = false
	}
	if s.cfg.NodeLoss {
		s.crashReplicaStackLocked()
	}

	s.crash = vfs.NewCrashFrom(img, torn, tornSeed)
	s.quota = vfs.NewQuota(s.crash, s.quotaLimit)
	if err := s.quota.ChargeDir(simDir); err != nil {
		s.note("quota recharge: %v", err)
	}
	s.fault = vfs.NewFault(s.quota, s.nextStream())
	for _, r := range s.activeRules {
		s.fault.Inject(r)
	}
	// The process took the in-memory DEK cache with it; reopen from disk.
	s.reopenCacheLocked()
	if s.cfg.Dstore {
		if err := s.startStoreLocked(s.storeAddr); err != nil {
			s.checker.violate("storage node failed to restart after crash: %v", err)
			s.dead.Store(true)
			return
		}
	}
	if s.cfg.NodeLoss && !s.restoreReplicaStackLocked() {
		return
	}
	s.openDBLocked()
}

// ---- Workload ----

func (s *simulation) worker(id int, wg *sync.WaitGroup) {
	defer wg.Done()
	rng := rand.New(rand.NewSource(subSeed(s.cfg.Seed, 100+uint64(id))))
	own := s.keys[id*s.cfg.KeysPerWorker : (id+1)*s.cfg.KeysPerWorker]
	ops := s.cfg.Ops / s.cfg.Workers
	for i := 0; i < ops && !s.dead.Load(); i++ {
		step := s.clock.tick()
		s.fireDue(step)
		s.doOp(id, i, own, rng)
	}
}

func (s *simulation) doOp(id, op int, own []string, rng *rand.Rand) {
	s.stackMu.RLock()
	defer s.stackMu.RUnlock()
	db := s.db
	if db == nil {
		return
	}
	key := own[rng.Intn(len(own))]
	switch r := rng.Float64(); {
	case r < 0.40: // put own key
		val := fmt.Sprintf("%s=%02d.%04d:%0*d", key, id, op, 10+rng.Intn(90), rng.Int63n(1<<40))
		s.checker.beginWrite(key, val)
		if err := db.Put([]byte(key), []byte(val)); err != nil {
			s.failedW.Add(1)
			s.checker.failWrite(key, val)
		} else {
			s.acked.Add(1)
			s.checker.ackWrite(key, val)
		}
	case r < 0.50: // delete own key
		if err := db.Delete([]byte(key)); err != nil {
			s.failedW.Add(1)
			s.checker.failWrite(key, "")
		} else {
			s.acked.Add(1)
			s.checker.ackWrite(key, "")
		}
	case r < 0.74: // read own key, strict
		s.reads.Add(1)
		got, err := db.Get([]byte(key))
		found := err == nil
		if errors.Is(err, lsm.ErrNotFound) {
			err = nil
		}
		s.checker.checkOwnerRead(key, string(got), found, err)
	case r < 0.86: // read any key, racing its owner
		k := s.keys[rng.Intn(len(s.keys))]
		s.reads.Add(1)
		got, err := db.Get([]byte(k))
		found := err == nil
		if errors.Is(err, lsm.ErrNotFound) {
			err = nil
		}
		s.checker.checkCrossRead(k, string(got), found, err)
	case r < 0.92: // bounded scan from a random key
		s.scans.Add(1)
		it, err := db.NewIter()
		if err != nil {
			s.checker.checkReadError("<scan>", err)
			return
		}
		for ok, n := it.SeekGE([]byte(s.keys[rng.Intn(len(s.keys))])), 0; ok && n < 20; ok, n = it.Next(), n+1 {
			s.checker.checkScanEntry(string(it.Key()), string(it.Value()))
		}
		if err := it.Err(); err != nil {
			s.checker.checkReadError("<scan>", err)
		}
		it.Close() //nolint:errcheck
	case r < 0.97: // force a flush (memtable -> encrypted L0)
		if err := db.Flush(); err != nil {
			s.note("flush: %v", err)
		}
	default: // force a full compaction pass
		if err := db.CompactRange(); err != nil {
			s.note("compact: %v", err)
		}
	}
}

// ---- End of run ----

// finalVerify heals every outstanding fault, performs one last strict
// power-loss crash, recovers, and audits the entire key space against the
// checker — the "every acked write survived everything" bottom line.
//
//shield:nolockio runs after every worker has exited; stackMu is held only as the crash barrier and the devices are in-memory fakes
func (s *simulation) finalVerify() {
	s.fireDue(^uint64(0)) // drain the remaining schedule (its heal tail)
	if s.dead.Load() {
		return
	}
	s.stackMu.Lock()
	defer s.stackMu.Unlock()
	s.quotaLimit = 0
	s.quota.SetLimit(0)
	s.fault.ClearRules()
	s.activeRules = nil
	s.restartKDSLocked()
	if s.cfg.NodeLoss {
		s.restartDownReplicasLocked()
		s.restartDownWorkersLocked()
	}
	if s.db == nil || s.db.Degraded() != nil {
		if s.db != nil {
			s.db.Close() //nolint:errcheck
		}
		s.setDBLocked(nil)
		s.openDBLocked()
	}
	if s.dead.Load() {
		return
	}

	s.crashLocked(false, 0)
	if s.dead.Load() || s.db == nil {
		return
	}
	for _, key := range s.keys {
		got, err := s.db.Get([]byte(key))
		found := err == nil
		if errors.Is(err, lsm.ErrNotFound) {
			err = nil
		}
		s.checker.checkOwnerRead(key, string(got), found, err)
	}
	it, err := s.db.NewIter()
	if err != nil {
		s.checker.checkReadError("<final-scan>", err)
		return
	}
	for ok := it.First(); ok; ok = it.Next() {
		s.checker.checkScanEntry(string(it.Key()), string(it.Value()))
	}
	if err := it.Err(); err != nil {
		s.checker.checkReadError("<final-scan>", err)
	}
	it.Close() //nolint:errcheck

	s.scrubAuditLocked()
	s.replicaAuditLocked()
}

// scrubAuditLocked closes the engine and runs the offline scrub over the
// final image: every file the nemesis tampered with that still holds the
// tampered bytes must come back with a non-ok verdict. Tampering may
// legitimately lose data (quarantine) but must never pass an audit —
// that holds even in a tainted run.
//
//shield:nolockio runs after every worker has exited; stackMu is held only as the crash barrier and the devices are in-memory fakes
func (s *simulation) scrubAuditLocked() {
	if len(s.tampered) == 0 && !s.rolledBack {
		return
	}
	if s.db != nil {
		s.db.Close() //nolint:errcheck
		s.setDBLocked(nil)
	}
	cfg := core.Config{
		Mode:  core.ModeSHIELD,
		FS:    s.dataFSLocked(),
		KDS:   s.kdsClient,
		Cache: s.cache,
	}
	rep, err := core.Scrub(simDir, cfg, lsm.ScrubOptions{AllowRollback: true})
	if err != nil {
		s.checker.violate("final scrub failed: %v", err)
		return
	}
	s.note("final scrub: epoch=%d regressed=%v ssts=%d findings=%d",
		rep.Epoch, rep.EpochRegressed, rep.SSTsChecked, len(rep.Findings))
	for name, sum := range s.tampered {
		data, rerr := vfs.ReadFile(s.dataFSLocked(), name)
		if rerr != nil || sha256.Sum256(data) != sum {
			// Quarantined, rewritten by compaction, or rolled away — the
			// tampered bytes are gone and there is nothing to assert.
			continue
		}
		if v := rep.Verdict(name); v == lsm.VerdictOK {
			s.checker.violate("final scrub passed tampered file %s as %s", name, v)
		} else {
			s.note("final scrub: tampered %s verdict=%s", name, v)
		}
	}
}

// teardown closes every live component of the stack.
//
//shield:nolockio runs once at end of run with all workers gone; stackMu is held as the crash barrier and all targets are in-memory fakes or loopback sockets
func (s *simulation) teardown() {
	s.stackMu.Lock()
	defer s.stackMu.Unlock()
	s.stopServerLocked()
	if s.db != nil {
		s.db.Close() //nolint:errcheck
		s.setDBLocked(nil)
	}
	if s.storeClient != nil {
		s.storeClient.Close()
	}
	if s.storeSrv != nil && s.storeUp {
		s.storeSrv.Close()
	}
	if s.cfg.NodeLoss {
		s.teardownReplicaStackLocked()
	}
	s.kdsClient.Close()
	for i, srv := range s.kdsSrv {
		if srv != nil && s.kdsUp[i] {
			srv.Close()
		}
	}
}
