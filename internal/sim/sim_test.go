package sim

import (
	"strings"
	"testing"
)

func requirePass(t *testing.T, r *Result) {
	t.Helper()
	if r.Failed() {
		for _, v := range r.Violations {
			t.Errorf("violation: %s", v)
		}
		for _, n := range r.Notes {
			t.Logf("note: %s", n)
		}
		for _, p := range r.Plan {
			t.Logf("plan: %s", p)
		}
		t.Fatalf("seed %d failed (hash %s)", r.Seed, r.Hash)
	}
	if r.Acked == 0 {
		t.Fatalf("seed %d acked no writes; the run exercised nothing", r.Seed)
	}
}

// TestSmokeSeeds runs a handful of fixed seeds through the local stack.
// These are the CI gate: the durability contract must hold under whatever
// schedule each seed derives.
func TestSmokeSeeds(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		r := Run(Config{Seed: seed, Ops: 400})
		t.Logf("seed %d: hash=%s acked=%d failed=%d reads=%d crashes=%d reopens=%d",
			seed, r.Hash, r.Acked, r.FailedWrites, r.Reads, r.Crashes, r.Reopens)
		requirePass(t, r)
	}
}

// TestSmokeDstore runs one seed with the data path routed through a
// disaggregated storage node, adding node kills and real framing.
func TestSmokeDstore(t *testing.T) {
	r := Run(Config{Seed: 11, Ops: 300, Dstore: true})
	t.Logf("dstore seed 11: hash=%s acked=%d crashes=%d reopens=%d",
		r.Hash, r.Acked, r.Crashes, r.Reopens)
	requirePass(t, r)
}

// TestSmokeBitRot runs one tamper-enabled seed: flipped bits must surface
// as typed corruption or quarantine-absence, never as silent wrong data
// (a never-written value is a violation even when tainted).
func TestSmokeBitRot(t *testing.T) {
	r := Run(Config{Seed: 7, Ops: 400, BitRot: true})
	t.Logf("bitrot seed 7: hash=%s tainted=%v acked=%d", r.Hash, r.Tainted, r.Acked)
	requirePass(t, r)
}

// TestSmokeRollback runs tamper-plus-rollback seeds: the nemesis captures
// the durable image mid-run and later restores it (the freshness attack),
// alongside bit flips in cold SSTs. The run must pass with zero violations:
// flipped blocks surface as authentication failures or quarantine-absence
// (never wrong bytes), the stale image is detected fail-closed at reopen
// via the sealed epoch floor before the harness overrides it, and the
// end-of-run scrub audit gives every still-tampered file a non-ok verdict.
// Seed 1 at these settings both flips a bit and detects the rollback.
func TestSmokeRollback(t *testing.T) {
	var detected bool
	for seed := uint64(1); seed <= 3; seed++ {
		r := Run(Config{Seed: seed, Ops: 400, BitRot: true, Rollback: true})
		t.Logf("rollback seed %d: hash=%s tainted=%v acked=%d crashes=%d", seed, r.Hash, r.Tainted, r.Acked, r.Crashes)
		requirePass(t, r)
		var rb bool
		for _, l := range r.Plan {
			rb = rb || strings.Contains(l, "manifest-rollback")
		}
		if !rb {
			t.Errorf("seed %d planned no manifest-rollback event:\n  %s", seed, strings.Join(r.Plan, "\n  "))
		}
		for _, n := range r.Notes {
			detected = detected || strings.Contains(n, "rollback detected at reopen")
		}
	}
	if !detected {
		t.Error("no seed detected the rollback fail-closed at reopen; the epoch floor never engaged")
	}
}

// TestRollbackOffKeepsPlans pins the gating contract: enabling the rollback
// nemesis must not disturb the schedule any pre-existing seed derives with
// it off, so old hashes stay replayable.
func TestRollbackOffKeepsPlans(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		plain := Run(Config{Seed: seed, Ops: 300})
		for _, l := range plain.Plan {
			if strings.Contains(l, "manifest-snap") || strings.Contains(l, "manifest-rollback") {
				t.Fatalf("seed %d planned a rollback event with Rollback off: %s", seed, l)
			}
		}
	}
}

// TestSmokeConnStorm runs seeds with the RESP serving layer fronting the
// engine: connection storms and slow clients fire between crashes, and the
// post-event health probes (a wedged server is a violation) must pass.
// Seed 1 at these settings plans both a conn-storm and a slow-client event.
func TestSmokeConnStorm(t *testing.T) {
	r := Run(Config{Seed: 1, Ops: 300, ConnStorm: true})
	t.Logf("connstorm seed 1: hash=%s acked=%d crashes=%d", r.Hash, r.Acked, r.Crashes)
	requirePass(t, r)
	var storm, slow bool
	for _, l := range r.Plan {
		storm = storm || strings.Contains(l, "conn-storm")
		slow = slow || strings.Contains(l, "slow-client")
	}
	if !storm || !slow {
		t.Errorf("plan exercised conn-storm=%v slow-client=%v, want both:\n  %s",
			storm, slow, strings.Join(r.Plan, "\n  "))
	}
}

// TestConnStormOffKeepsPlans pins the gating contract: enabling the
// serving layer must not disturb the schedule any pre-existing seed
// derives with it off, so old hashes stay replayable.
func TestConnStormOffKeepsPlans(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		plain := Run(Config{Seed: seed, Ops: 300})
		for _, l := range plain.Plan {
			if strings.Contains(l, "conn-storm") || strings.Contains(l, "slow-client") {
				t.Fatalf("seed %d planned a serving-layer event with ConnStorm off: %s", seed, l)
			}
		}
	}
}

// TestSmokeNodeLoss runs seeds on the replicated topology: three storage
// nodes behind a quorum-2 replica set, offloaded compactions through the
// lease-based orchestrator, replica kills overlapping in-flight writes and
// worker kills mid-lease — plus the usual crash mix — and the end-of-run
// audit requiring byte-identical namespaces across in-sync replicas.
// Seeds 1-3 plan replica kills at these settings; seed 6 plans a worker
// kill.
func TestSmokeNodeLoss(t *testing.T) {
	var killedRep, killedWorker bool
	for _, seed := range []uint64{1, 2, 3, 6} {
		r := Run(Config{Seed: seed, Ops: 300, NodeLoss: true})
		t.Logf("nodeloss seed %d: hash=%s acked=%d crashes=%d", seed, r.Hash, r.Acked, r.Crashes)
		requirePass(t, r)
		for _, l := range r.Plan {
			killedRep = killedRep || strings.Contains(l, "replica-kill")
			killedWorker = killedWorker || strings.Contains(l, "worker-kill")
		}
	}
	if !killedRep || !killedWorker {
		t.Errorf("seeds exercised replica-kill=%v worker-kill=%v, want both",
			killedRep, killedWorker)
	}
}

// TestNodeLossOffKeepsPlans pins the gating contract: the fleet events
// must not disturb the schedule any pre-existing seed derives with the
// flag off, so old hashes stay replayable.
func TestNodeLossOffKeepsPlans(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		plain := Run(Config{Seed: seed, Ops: 300})
		for _, l := range plain.Plan {
			if strings.Contains(l, "replica-") || strings.Contains(l, "worker-") {
				t.Fatalf("seed %d planned a fleet event with NodeLoss off: %s", seed, l)
			}
		}
	}
}

// TestSeedReproducesHash is the reproducibility acceptance check: the same
// seed derives the same nemesis schedule, byte for byte, across runs.
func TestSeedReproducesHash(t *testing.T) {
	a := Run(Config{Seed: 42, Ops: 300})
	b := Run(Config{Seed: 42, Ops: 300})
	if a.Hash != b.Hash {
		t.Fatalf("same seed, different schedule hash: %s vs %s", a.Hash, b.Hash)
	}
	if strings.Join(a.Plan, "\n") != strings.Join(b.Plan, "\n") {
		t.Fatal("same seed, different schedule")
	}
	requirePass(t, a)
	requirePass(t, b)
	if c := Run(Config{Seed: 43, Ops: 300}); c.Hash == a.Hash {
		t.Fatal("different seeds collided on the schedule hash")
	}
}

// TestMaxEventsTruncatesPlan anchors the reducer's lever: capping the
// event count must yield exactly the prefix of the full schedule.
func TestMaxEventsTruncatesPlan(t *testing.T) {
	full := Run(Config{Seed: 9, Ops: 300})
	if len(full.Plan) < 2 {
		t.Skipf("seed 9 planned only %d events", len(full.Plan))
	}
	cut := Run(Config{Seed: 9, Ops: 300, MaxEvents: 1})
	if len(cut.Plan) != 1 || cut.Plan[0] != full.Plan[0] {
		t.Fatalf("MaxEvents=1 plan %v is not a prefix of %v", cut.Plan, full.Plan)
	}
	requirePass(t, cut)
}
