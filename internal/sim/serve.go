package sim

// Serving-layer nemesis (Config.ConnStorm): the simulation fronts the
// engine with a real shield-server on a loopback socket and adds two
// client-misbehavior events to the fault mix — connection storms (a burst
// of clients sending valid, unknown, and malformed commands at once) and
// slow clients (partial frames, then silence, holding their connections
// for the rest of the run). After each event a health probe checks the
// server still answers PING; a server wedged by misbehaving clients is a
// violation.
//
// The server reaches the engine through a swappable handle rather than
// *lsm.DB directly: nemesis events run with the crash barrier (stackMu)
// held exclusively, and a server handler taking stackMu to reach the
// engine would deadlock against a storm fired under that same lock. The
// handle is an atomic pointer — nil while a crash is rebuilding the stack,
// in which case commands fail with -ERR and the connection survives.

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"shield/internal/lsm"
	"shield/internal/resp"
	"shield/internal/server"
)

// errEngineDown is what server commands return while the nemesis has the
// engine torn down mid-crash.
var errEngineDown = errors.New("sim: engine restarting")

// swapEngine adapts the simulation's crash-and-reopen *lsm.DB to
// server.Engine, lock-free so handlers never block on the crash barrier.
type swapEngine struct {
	db atomic.Pointer[lsm.DB]
}

func (e *swapEngine) Get(key []byte) ([]byte, error) {
	if db := e.db.Load(); db != nil {
		return db.Get(key)
	}
	return nil, errEngineDown
}

func (e *swapEngine) Write(b *lsm.Batch, sync bool) error {
	if db := e.db.Load(); db != nil {
		return db.Write(b, sync)
	}
	return errEngineDown
}

func (e *swapEngine) Metrics() lsm.Metrics {
	if db := e.db.Load(); db != nil {
		return db.Metrics()
	}
	return lsm.Metrics{}
}

// startServerLocked boots the RESP front-end over the swappable engine
// handle. Called from bootstrap when ConnStorm is enabled.
func (s *simulation) startServerLocked() error {
	srv, err := server.New(server.Config{
		Shards:       []server.Engine{s.srvEngine},
		IdleTimeout:  30 * time.Second,
		WriteTimeout: 5 * time.Second,
		DrainTimeout: time.Second,
		Logger: func(format string, args ...any) {
			s.note("server: "+format, args...)
		},
	})
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		return err
	}
	s.srv = srv
	s.srvAddr = srv.Addr()
	s.srvDone = make(chan error, 1)
	done := s.srvDone
	go func() { done <- srv.Serve() }()
	return nil
}

// connStormLocked is the connection-storm event: arg clients connect at
// once, each sending a mix of valid commands, unknown commands, and a
// malformed (recoverable) frame, then reading its replies. Storm clients
// never write keys, so the durability checker stays undisturbed. Runs
// under the crash barrier; handlers stay live because the engine handle is
// lock-free.
//
//shield:nolockio stackMu is the nemesis barrier; the sockets are loopback and the event must exclude workload ops by design
func (s *simulation) connStormLocked(arg int64) {
	n := int(arg)
	if n < 1 {
		n = 1
	}
	var wg sync.WaitGroup
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := net.DialTimeout("tcp", s.srvAddr, time.Second)
			if err != nil {
				s.note("storm client %d: dial: %v", c, err)
				return
			}
			defer conn.Close()                                //nolint:errcheck
			conn.SetDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
			key := s.keys[(int(arg)+c)%len(s.keys)]
			// One pipelined burst: inline PING, an unknown command, a
			// malformed array header (recoverable protocol error), a GET,
			// and INFO — five replies expected, connection stays up.
			frame := "PING\r\nNOSUCHCMD a b\r\n*zz\r\nGET " + key + "\r\nINFO\r\n"
			if _, err := conn.Write([]byte(frame)); err != nil {
				s.note("storm client %d: write: %v", c, err)
				return
			}
			r := resp.NewReader(conn)
			for i := 0; i < 5; i++ {
				if _, err := r.ReadReply(); err != nil {
					s.note("storm client %d: reply %d: %v", c, i, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	s.probeServerLocked("conn-storm")
}

// slowClientLocked opens arg connections that each send a partial frame
// and then stall, holding their sockets for the rest of the run — the
// server must keep serving around them (its idle deadline would reap them
// eventually; sim runs are shorter than that, so the point is isolation,
// not reaping).
//
//shield:nolockio stackMu is the nemesis barrier; the sockets are loopback and the event must exclude workload ops by design
func (s *simulation) slowClientLocked(arg int64) {
	n := int(arg)
	if n < 1 {
		n = 1
	}
	for c := 0; c < n; c++ {
		conn, err := net.DialTimeout("tcp", s.srvAddr, time.Second)
		if err != nil {
			s.note("slow client %d: dial: %v", c, err)
			continue
		}
		if _, err := conn.Write([]byte("*2\r\n$3\r\nGET\r\n$64\r\npartial")); err != nil {
			s.note("slow client %d: write: %v", c, err)
			conn.Close() //nolint:errcheck
			continue
		}
		s.slowConns = append(s.slowConns, conn)
	}
	s.probeServerLocked("slow-client")
}

// probeServerLocked is the post-event health check: a fresh connection
// must get +PONG. A server that stopped answering after a client-chaos
// event is wedged, and that is a checker violation. (Its I/O-under-lock
// findings report at the lock-holding callers, which carry their own
// lockio audits.)
func (s *simulation) probeServerLocked(after string) {
	cl, err := resp.Dial(s.srvAddr, 2*time.Second)
	if err != nil {
		s.checker.violate("server unreachable after %s: %v", after, err)
		return
	}
	defer cl.Close() //nolint:errcheck
	v, err := cl.Do("PING")
	if err != nil || v.Kind != resp.KindStatus || string(v.Str) != "PONG" {
		s.checker.violate("server health probe failed after %s: %+v, %v", after, v, err)
	}
}

// stopServerLocked tears down the serving layer at end of run.
//
//shield:nolockio runs once at teardown with all workers gone; sockets are loopback
func (s *simulation) stopServerLocked() {
	for _, c := range s.slowConns {
		c.Close() //nolint:errcheck
	}
	s.slowConns = nil
	if s.srv != nil {
		s.srv.Close() //nolint:errcheck // Close only returns nil
		// Join the accept loop. Serve returns nil after Close; anything
		// else means the loop died mid-run and every later probe failure
		// was a symptom, so surface the root cause.
		if err := <-s.srvDone; err != nil {
			s.checker.violate("server accept loop died: %v", err)
		}
		s.srv = nil
		s.srvDone = nil
	}
}
