package sim

// Reduce shrinks a failing run to the shortest still-failing prefix of its
// nemesis schedule. The workload is concurrent, so a failure may not
// reproduce on every attempt; each candidate prefix gets `attempts` tries
// before it is considered passing. Returns the minimal failing event count
// and the last failing Result, or (-1, nil) if the failure never
// reproduced (a scheduling-dependent bug — rerun the full seed).
func Reduce(cfg Config, attempts int) (int, *Result) {
	cfg = cfg.withDefaults()
	if attempts <= 0 {
		attempts = 2
	}
	// fails probes a prefix of k events (0 = no nemesis at all, expressed
	// as a negative MaxEvents since the zero value means "no cap").
	fails := func(k int) *Result {
		c := cfg
		c.MaxEvents = k
		if k == 0 {
			c.MaxEvents = -1
		}
		for i := 0; i < attempts; i++ {
			if r := Run(c); r.Failed() {
				return r
			}
		}
		return nil
	}

	// Confirm the full schedule still fails before spending time shrinking.
	c := cfg
	c.MaxEvents = 0
	var full *Result
	for i := 0; i < attempts && full == nil; i++ {
		if r := Run(c); r.Failed() {
			full = r
		}
	}
	if full == nil {
		return -1, nil
	}
	best, bestRes := len(full.Plan), full

	// Bisect on the prefix length: find the smallest K whose first K
	// events still reproduce the failure. Monotonicity is heuristic (more
	// faults usually fail more), which is all a reducer needs.
	lo, hi := 0, best
	for lo < hi {
		mid := (lo + hi) / 2
		if r := fails(mid); r != nil {
			best, bestRes = mid, r
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return best, bestRes
}
