package sim

// Replicated-fleet nemesis (Config.NodeLoss): the data path runs across
// three dstore storage nodes behind a quorum-2 ReplicaSet, and compactions
// are offloaded through a lease-based orchestrator to two storage-side
// SHIELD workers. The nemesis then does what disaggregation makes
// possible: kills replicas while quorum writes are in flight and kills
// workers mid-lease, on top of the usual crash/disk-full/net-fault mix.
//
// Topology and fault domains:
//
//   - Replica 0's device is the crash/quota/fault stack — it shares the
//     primary site's fault domain, so power-loss crashes restore it to the
//     durable image (with torn tails) while replicas 1 and 2, on
//     independent devices, keep every acknowledged byte. The dial-time
//     majority reconcile must then repair replica 0 from the survivors:
//     replication is what carries acked-but-unsynced-on-0 writes across a
//     site crash.
//   - The orchestrator and the ReplicaSet client live on the compute node
//     and die with it on every crash; both are rebuilt on the same
//     addresses. The workers are storage-side processes: they survive
//     compute crashes, redial the orchestrator, and reach storage through
//     a swappable handle that is repointed at the rebuilt ReplicaSet — so
//     every mutation, engine or worker, always flows through the one
//     live quorum/promotion discipline.
//   - Replica kill/restart and worker kill/restart fire under the *shared*
//     crash barrier, unlike every other nemesis event: a node dying out
//     from under an in-flight fan-out write is exactly the race the
//     quorum protocol exists for, so these events must overlap ops rather
//     than quiesce them. The fleet slots get their own mutex (repMu) to
//     stay coherent against exclusive-side rebuilds.
//
// The end-of-run audit dials every in-sync replica directly and requires
// byte-identical namespaces (full-content sums, deliberately stronger than
// comparing sealed tag-chain digests): replication must surface any
// divergence among copies it acknowledged as identical. Divergence in an
// untainted run is a checker violation; in a tainted run it is the audit
// catching the nemesis's tampering, which is noted.

import (
	"errors"
	"fmt"
	"path"
	"sync/atomic"
	"time"

	"shield/internal/compactsvc"
	"shield/internal/core"
	"shield/internal/dstore"
	"shield/internal/kds"
	"shield/internal/seccache"
	"shield/internal/vfs"
)

// errStorageDetached is what worker I/O returns while a compute-node crash
// has the replica set torn down; the orchestrator treats it as a retryable
// execution error.
var errStorageDetached = errors.New("sim: compute-node storage handle detached (rebuilding)")

// swapFS is the storage handle the orchestrator and the compaction workers
// share: an atomic pointer to the current ReplicaSet, swapped by the crash
// rebuild. Going through it (rather than holding a ReplicaSet directly)
// keeps worker mutations inside the engine's quorum and promotion
// discipline across compute-node restarts.
type swapFS struct {
	rs atomic.Pointer[dstore.ReplicaSet]
}

func (f *swapFS) store(rs *dstore.ReplicaSet) { f.rs.Store(rs) }

func (f *swapFS) load() (*dstore.ReplicaSet, error) {
	if rs := f.rs.Load(); rs != nil {
		return rs, nil
	}
	return nil, errStorageDetached
}

func (f *swapFS) Create(name string) (vfs.WritableFile, error) {
	rs, err := f.load()
	if err != nil {
		return nil, err
	}
	return rs.Create(name)
}

func (f *swapFS) Open(name string) (vfs.RandomAccessFile, error) {
	rs, err := f.load()
	if err != nil {
		return nil, err
	}
	return rs.Open(name)
}

func (f *swapFS) OpenSequential(name string) (vfs.SequentialFile, error) {
	rs, err := f.load()
	if err != nil {
		return nil, err
	}
	return rs.OpenSequential(name)
}

func (f *swapFS) Remove(name string) error {
	rs, err := f.load()
	if err != nil {
		return err
	}
	return rs.Remove(name)
}

func (f *swapFS) Rename(oldname, newname string) error {
	rs, err := f.load()
	if err != nil {
		return err
	}
	return rs.Rename(oldname, newname)
}

func (f *swapFS) List(dir string) ([]vfs.FileInfo, error) {
	rs, err := f.load()
	if err != nil {
		return nil, err
	}
	return rs.List(dir)
}

func (f *swapFS) MkdirAll(dir string) error {
	rs, err := f.load()
	if err != nil {
		return err
	}
	return rs.MkdirAll(dir)
}

func (f *swapFS) SyncDir(dir string) error {
	rs, err := f.load()
	if err != nil {
		return err
	}
	return rs.SyncDir(dir)
}

func (f *swapFS) Stat(name string) (vfs.FileInfo, error) {
	rs, err := f.load()
	if err != nil {
		return vfs.FileInfo{}, err
	}
	return rs.Stat(name)
}

// simReplicaClientCfg is the per-replica connection config: short deadlines
// and a small retry budget so a killed node demotes fast instead of
// stalling the run.
func simReplicaClientCfg() dstore.Config {
	return dstore.Config{
		Conns:          2,
		DialTimeout:    200 * time.Millisecond,
		RequestTimeout: 2 * time.Second,
		MaxAttempts:    3,
		BackoffBase:    time.Millisecond,
		BackoffMax:     20 * time.Millisecond,
	}
}

func (s *simulation) replicaSetCfg() dstore.ReplicaConfig {
	return dstore.ReplicaConfig{
		WriteQuorum: 2,
		Client:      simReplicaClientCfg(),
		Dirs:        []string{simDir},
		ResyncEvery: 40 * time.Millisecond,
	}
}

func (s *simulation) orchCfg() compactsvc.OrchestratorConfig {
	return compactsvc.OrchestratorConfig{
		LeaseTTL:    300 * time.Millisecond,
		MaxAttempts: 3,
		JobTimeout:  15 * time.Second,
	}
}

func simWorkerCfg() compactsvc.WorkerConfig {
	return compactsvc.WorkerConfig{
		PollEvery:      3 * time.Millisecond,
		DialTimeout:    200 * time.Millisecond,
		RequestTimeout: 2 * time.Second,
		BackoffBase:    time.Millisecond,
		BackoffMax:     50 * time.Millisecond,
	}
}

// startReplicaFleetLocked bootstraps the NodeLoss topology: three storage
// nodes (replica 0 on the nemesis-controlled stack, 1 and 2 on independent
// devices), the replica-set client, the compaction orchestrator, and the
// two storage-side workers with their own KDS identities and caches.
func (s *simulation) startReplicaFleetLocked() error {
	srv0, err := dstore.NewServer(s.fault, "127.0.0.1:0", 0, 0)
	if err != nil {
		return fmt.Errorf("replica 0: %w", err)
	}
	s.repSrv[0] = srv0
	s.repAddr[0] = srv0.Addr()
	s.repUp[0] = true
	for i := 0; i < 2; i++ {
		s.repBase[i] = vfs.NewMem()
		srv, err := dstore.NewServer(s.repBase[i], "127.0.0.1:0", 0, 0)
		if err != nil {
			return fmt.Errorf("replica %d: %w", i+1, err)
		}
		s.repSrv[i+1] = srv
		s.repAddr[i+1] = srv.Addr()
		s.repUp[i+1] = true
	}
	s.rsSwap = &swapFS{}
	if err := s.startReplicaStackLocked(); err != nil {
		return err
	}
	return s.startWorkersLocked()
}

// startReplicaStackLocked dials the replica set over the current fleet,
// points the workers' storage handle at it, and boots the compute node's
// orchestrator (on its original address after a crash, so surviving
// workers redial seamlessly). The recoverable dial-failure classes — quota
// still set on replica 0, a replica still in its kill window, injected
// faults on replica 0's device — are absorbed the way an operator would.
//
//shield:nolockio stackMu is the simulation's crash barrier; all sockets are loopback over in-memory fakes
func (s *simulation) startReplicaStackLocked() error {
	for attempt := 0; ; attempt++ {
		rs, err := dstore.DialReplicaSet(s.replicaSetCfg(), s.repAddr[0], s.repAddr[1], s.repAddr[2])
		if err == nil {
			s.rs = rs
			break
		}
		if attempt >= 10 {
			return fmt.Errorf("replica set: %w", err)
		}
		switch {
		case errors.Is(err, vfs.ErrNoSpace):
			s.note("replica reconcile hit ENOSPC; freeing space and retrying")
			s.quotaLimit = 0
			s.quota.SetLimit(0)
		case errors.Is(err, dstore.ErrNoQuorum):
			s.note("replica set below quorum at dial; restarting dead replicas")
			s.restartDownReplicasLocked()
		case errors.Is(err, vfs.ErrInjected):
			s.note("replica reconcile hit an injected fault; retrying")
		default:
			return fmt.Errorf("replica set: %w", err)
		}
	}
	s.rsSwap.store(s.rs)
	addr := s.orchAddr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	orch, err := compactsvc.NewOrchestrator(s.rsSwap, addr, s.orchCfg())
	if err != nil {
		return fmt.Errorf("orchestrator: %w", err)
	}
	s.orch = orch
	s.orchAddr = orch.Addr()
	return nil
}

// startWorkersLocked builds the storage-side worker pool: each worker has
// its own KDS identity, secure cache, and SHIELD wrapper over the shared
// storage handle. One-time DEK provisioning is widened to the fleet size:
// a worker-created DEK is foreign-fetched by the compute node AND by the
// other worker when it later compacts those outputs, so MaxFetches 1
// would strand data behind ErrAlreadyIssued by design rather than by bug.
//
//shield:nolockio stackMu is the simulation's crash barrier; all sockets are loopback over in-memory fakes
func (s *simulation) startWorkersLocked() error {
	for w := range s.simWorkers {
		id := fmt.Sprintf("sim-worker-%d", w+1)
		s.kdsStore.Authorize(id)
		s.workerKDS[w] = kds.NewClientConfig(id, kds.ClientConfig{
			DialTimeout:    200 * time.Millisecond,
			RequestTimeout: 500 * time.Millisecond,
			MaxAttempts:    4,
			BackoffBase:    time.Millisecond,
			BackoffMax:     20 * time.Millisecond,
		}, s.kdsAddr[0], s.kdsAddr[1])
		cache, err := seccache.Open(vfs.NewMem(), "worker-cache.bin", []byte("sim-worker-pass"))
		if err != nil {
			return fmt.Errorf("worker %d cache: %w", w, err)
		}
		wrapper, err := core.Config{
			Mode:  core.ModeSHIELD,
			FS:    s.rsSwap,
			KDS:   s.workerKDS[w],
			Cache: cache,
		}.BuildWrapper()
		if err != nil {
			return fmt.Errorf("worker %d wrapper: %w", w, err)
		}
		s.workerWrap[w] = wrapper
		s.simWorkers[w] = compactsvc.NewWorker(s.rsSwap, wrapper, id, s.orchAddr, simWorkerCfg())
		s.workerUp[w] = true
	}
	return nil
}

// restartDownReplicasLocked restarts every stopped storage node on its
// original address and backing device; the replica set's re-sync loop then
// heals and promotes it. Replica 0 rides the current fault stack.
func (s *simulation) restartDownReplicasLocked() {
	s.repMu.Lock()
	defer s.repMu.Unlock()
	for r := range s.repSrv {
		if s.repUp[r] {
			continue
		}
		backing := vfs.FS(s.fault)
		if r > 0 {
			backing = s.repBase[r-1]
		}
		srv, err := dstore.NewServer(backing, s.repAddr[r], 0, 0)
		if err != nil {
			s.note("replica %d failed to restart: %v", r, err)
			continue
		}
		s.repSrv[r] = srv
		s.repUp[r] = true
	}
}

// restartDownWorkersLocked revives dead compaction workers. The wrapper,
// KDS identity, and secure cache persist across the kill — the node
// restarted; its durable state did not vanish.
func (s *simulation) restartDownWorkersLocked() {
	s.repMu.Lock()
	defer s.repMu.Unlock()
	for w := range s.simWorkers {
		if s.workerUp[w] {
			continue
		}
		id := fmt.Sprintf("sim-worker-%d", w+1)
		s.simWorkers[w] = compactsvc.NewWorker(s.rsSwap, s.workerWrap[w], id, s.orchAddr, simWorkerCfg())
		s.workerUp[w] = true
	}
}

// fireReplicaEvent runs the fleet events under the *shared* crash barrier:
// a storage node dying out from under an in-flight quorum write — or a
// worker dying mid-lease while the engine waits on its job — is exactly
// the race the replica set and the lease protocol exist for, so these
// events must overlap workload ops instead of quiescing them the way
// every other nemesis event does.
func (s *simulation) fireReplicaEvent(ev event) {
	s.stackMu.RLock()
	defer s.stackMu.RUnlock()
	if s.dead.Load() || !s.cfg.NodeLoss {
		return
	}
	s.note("firing %s", ev)
	switch ev.kind {
	case evReplicaKill:
		r := 1 + int(ev.arg)%2 // replica 0 dies only with the primary site
		s.repMu.Lock()
		if s.repUp[r] {
			s.repSrv[r].Close()
			s.repUp[r] = false
		}
		s.repMu.Unlock()
	case evReplicaRestart:
		s.restartDownReplicasLocked()
	case evWorkerKill:
		w := int(ev.arg) % len(s.simWorkers)
		s.repMu.Lock()
		if s.workerUp[w] {
			s.simWorkers[w].Close() // heartbeats stop now; the lease expires
			s.workerUp[w] = false
		}
		s.repMu.Unlock()
	case evWorkerRestart:
		s.restartDownWorkersLocked()
	}
}

// crashReplicaStackLocked is the compute-node half of a power-loss crash
// under NodeLoss: the orchestrator and the replica-set client die with the
// node, and replica 0 — sharing the primary site's fault domain — goes
// down for the durable-image restore. Closing the orchestrator fails its
// in-flight jobs with ErrJobLost, which unblocks the abandoned engine's
// compaction goroutines; the workers survive (separate processes) but
// their storage handle goes dark until the rebuild repoints it.
//
//shield:nolockio stackMu (exclusive) is the crash barrier; all teardown I/O is loopback against in-memory fakes
func (s *simulation) crashReplicaStackLocked() {
	s.rsSwap.store(nil)
	if s.orch != nil {
		s.orch.Close() //nolint:errcheck
		s.orch = nil
	}
	if s.rs != nil {
		s.rs.Close() //nolint:errcheck
		s.rs = nil
	}
	s.repMu.Lock()
	if s.repUp[0] {
		s.repSrv[0].Close()
		s.repUp[0] = false
	}
	s.repMu.Unlock()
}

// restoreReplicaStackLocked brings the primary site back after a crash:
// replica 0 restarts over the rebuilt fault stack (the restored durable
// image), then the replica set re-dials — its majority reconcile repairs
// replica 0 from the surviving replicas, restoring acknowledged writes the
// crash tore off replica 0's device — and a fresh orchestrator comes up on
// the old address for the surviving workers to redial.
func (s *simulation) restoreReplicaStackLocked() bool {
	s.repMu.Lock()
	if !s.repUp[0] {
		srv, err := dstore.NewServer(s.fault, s.repAddr[0], 0, 0)
		if err != nil {
			s.repMu.Unlock()
			s.checker.violate("replica 0 failed to restart after crash: %v", err)
			s.dead.Store(true)
			return false
		}
		s.repSrv[0] = srv
		s.repUp[0] = true
	}
	s.repMu.Unlock()
	if err := s.startReplicaStackLocked(); err != nil {
		s.checker.violate("replica stack failed to restart after crash: %v", err)
		s.dead.Store(true)
		return false
	}
	return true
}

// replicaAuditLocked is the end-of-run divergence audit: after the final
// crash, recovery, and key audit, it quiesces the stack and dials every
// in-sync replica directly, requiring byte-identical namespaces. Full
// content sums (OpSum) are deliberately stronger than comparing sealed
// tag-chain digests: replication must surface ANY divergence among copies
// it acknowledged as identical, not only divergence inside sealed regions.
// Stale replicas are entitled to lag and are skipped, like DigestAll
// skips them. In an untainted run divergence is a violation; in a tainted
// run it is the audit catching the nemesis's tampering (bit-rot lands on
// replica 0's device only), which is noted.
//
//shield:nolockio runs after every worker has exited; stackMu is the crash barrier and the replicas are loopback servers over in-memory fakes
func (s *simulation) replicaAuditLocked() {
	if !s.cfg.NodeLoss || s.rs == nil {
		return
	}
	inSync := make(map[string]bool)
	for _, st := range s.rs.Replicas() {
		if st.InSync {
			inSync[st.Addr] = true
		}
	}
	// Quiesce: the engine and the replica set must stop mutating the fleet
	// (appends, re-sync repairs) before the copies are compared.
	if s.db != nil {
		s.db.Close() //nolint:errcheck
		s.setDBLocked(nil)
	}
	if s.orch != nil {
		s.orch.Close() //nolint:errcheck
		s.orch = nil
	}
	s.rs.Close() //nolint:errcheck
	s.rs = nil
	s.rsSwap.store(nil)

	type fileSums map[string]string
	var (
		states []fileSums
		addrs  []string
	)
	s.repMu.Lock()
	defer s.repMu.Unlock()
	for r := range s.repSrv {
		if !s.repUp[r] || !inSync[s.repAddr[r]] {
			s.note("replica audit: skipping replica %d (up=%v in-sync=%v)",
				r, s.repUp[r], inSync[s.repAddr[r]])
			continue
		}
		c, err := dstore.DialConfig(s.repAddr[r], simReplicaClientCfg())
		if err != nil {
			s.checker.violate("replica audit: dial replica %d: %v", r, err)
			continue
		}
		st := make(fileSums)
		infos, err := c.List(simDir)
		if err != nil {
			s.checker.violate("replica audit: list replica %d: %v", r, err)
			c.Close()
			continue
		}
		ok := true
		for _, fi := range infos {
			p := path.Join(simDir, fi.Name)
			sum, size, err := c.Sum(p)
			if err != nil {
				s.checker.violate("replica audit: sum %s on replica %d: %v", p, r, err)
				ok = false
				break
			}
			st[fi.Name] = fmt.Sprintf("%d:%x", size, sum)
		}
		c.Close()
		if ok {
			states = append(states, st)
			addrs = append(addrs, s.repAddr[r])
		}
	}
	if len(states) < 2 {
		s.note("replica audit: only %d in-sync replicas answered; nothing to compare", len(states))
		return
	}
	diverged := false
	base := states[0]
	for i := 1; i < len(states); i++ {
		for name, v := range base {
			if got, ok := states[i][name]; !ok || got != v {
				diverged = true
				s.divergence(name, addrs[0], v, addrs[i], got)
			}
		}
		for name, v := range states[i] {
			if _, ok := base[name]; !ok {
				diverged = true
				s.divergence(name, addrs[0], "<absent>", addrs[i], v)
			}
		}
	}
	if !diverged {
		s.note("replica audit: %d replicas hold byte-identical namespaces (%d files)",
			len(states), len(base))
	}
}

// divergence records one audit mismatch under the run's taint semantics.
func (s *simulation) divergence(name, addrA, verA, addrB, verB string) {
	if verB == "" {
		verB = "<absent>"
	}
	if s.tainted {
		s.note("replica audit caught divergence on %s (%s=%s, %s=%s) in a tainted run — tampering surfaced",
			name, addrA, verA, addrB, verB)
		return
	}
	s.checker.violate("replica divergence on %s: %s holds %s, %s holds %s",
		name, addrA, verA, addrB, verB)
}

// teardownReplicaStackLocked closes the whole fleet at end of run: workers
// first (stop polling), then the orchestrator, the replica-set client, the
// storage nodes, and the workers' KDS clients.
//
//shield:nolockio runs once at teardown with all workers gone; all targets are loopback servers over in-memory fakes
func (s *simulation) teardownReplicaStackLocked() {
	s.repMu.Lock()
	for w := range s.simWorkers {
		if s.workerUp[w] {
			s.simWorkers[w].Close()
			s.workerUp[w] = false
		}
	}
	s.repMu.Unlock()
	if s.orch != nil {
		s.orch.Close() //nolint:errcheck
		s.orch = nil
	}
	if s.rs != nil {
		s.rs.Close() //nolint:errcheck
		s.rs = nil
	}
	s.repMu.Lock()
	for r := range s.repSrv {
		if s.repUp[r] {
			s.repSrv[r].Close()
			s.repUp[r] = false
		}
	}
	s.repMu.Unlock()
	for _, kc := range s.workerKDS {
		if kc != nil {
			kc.Close()
		}
	}
}
