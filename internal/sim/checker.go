package sim

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"shield/internal/lsm"
)

// checker is the run's oracle. Keys are single-writer (each key belongs to
// exactly one workload goroutine), which keeps the per-key model exact
// without a full linearizability search:
//
//   - an acknowledged synced write collapses the key's durable state to
//     exactly that value (SyncWrites is on, so the ack implies the WAL
//     record is durable and no crash can lose it);
//   - a failed write leaves the key uncertain between its previous
//     candidates and the attempted value (the bytes may or may not have
//     reached the WAL before the error);
//   - reads by the owner must return the exact latest value while the key
//     is certain, and one of the candidates while it is not;
//   - reads by other workers are checked against the set of values ever
//     attempted for the key — a looser bound that still catches the fatal
//     class: values that were never written anywhere (decryption garbage,
//     cross-key leaks, resurrected deletes of other keys).
//
// After a bit-rot event the model degrades on purpose: quarantine-based
// recovery may legitimately drop tampered files, so absence and typed
// corruption errors become acceptable everywhere — but a read returning a
// never-written value stays a violation forever. Tampering must never
// produce silent wrong data.
type checker struct {
	keys    map[string]*keyState
	tainted atomic.Bool

	mu         sync.Mutex
	violations []string
}

type keyState struct {
	mu sync.Mutex

	// ever holds every value any write op ever attempted for this key.
	ever map[string]bool

	// possible holds the durable candidates; "" means absent.
	possible map[string]bool

	// latest is the unique durable value while strict is true.
	latest string
	strict bool
}

func newChecker(universe []string) *checker {
	c := &checker{keys: make(map[string]*keyState, len(universe))}
	for _, k := range universe {
		c.keys[k] = &keyState{
			ever:     map[string]bool{},
			possible: map[string]bool{"": true},
			strict:   true,
		}
	}
	return c
}

func (c *checker) violate(format string, args ...any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.violations) < 64 { // keep failure output bounded
		c.violations = append(c.violations, fmt.Sprintf(format, args...))
	}
}

// taint relaxes the model after bit-rot: quarantine may drop data.
func (c *checker) taint() { c.tainted.Store(true) }

// beginWrite registers v as attempted-for-key before the bytes can reach
// the store, so a concurrent reader that observes it mid-flight is not
// falsely flagged as seeing a never-written value.
func (c *checker) beginWrite(key, v string) {
	ks := c.keys[key]
	ks.mu.Lock()
	ks.ever[v] = true
	ks.mu.Unlock()
}

// ackWrite records a synced-acknowledged write: v is now the one durable
// value for key ("" for a delete).
func (c *checker) ackWrite(key, v string) {
	ks := c.keys[key]
	ks.mu.Lock()
	defer ks.mu.Unlock()
	if v != "" {
		ks.ever[v] = true
	}
	ks.possible = map[string]bool{v: true}
	ks.latest = v
	ks.strict = true
}

// failWrite records a write that errored: v may or may not have landed.
func (c *checker) failWrite(key, v string) {
	ks := c.keys[key]
	ks.mu.Lock()
	defer ks.mu.Unlock()
	if v != "" {
		ks.ever[v] = true
	}
	ks.possible[v] = true
	ks.strict = false
}

// checkOwnerRead validates a Get by the key's owning worker. found=false
// means ErrNotFound.
func (c *checker) checkOwnerRead(key, got string, found bool, err error) {
	if err != nil {
		c.checkReadError(key, err)
		return
	}
	ks := c.keys[key]
	ks.mu.Lock()
	defer ks.mu.Unlock()
	v := ""
	if found {
		v = got
	}
	if found && !ks.ever[v] {
		// Garbage is fatal regardless of taint: no history wrote this.
		c.violate("owner read of %s returned never-written value %.40q", key, v)
		return
	}
	if c.tainted.Load() {
		// Quarantine may have dropped any file; absence and stale values
		// (the pre-quarantine durable candidates) are both permitted.
		if !found || ks.ever[v] {
			return
		}
	}
	if ks.strict {
		if v != ks.latest {
			c.violate("owner read of %s: got %.40q, want exactly %.40q (synced-acked)", key, v, ks.latest)
		}
		return
	}
	if !ks.possible[v] {
		c.violate("owner read of %s: got %.40q, not among %d durable candidates", key, v, len(ks.possible))
	}
}

// checkCrossRead validates a Get by a non-owner (racing the owner's
// writes): any value ever attempted for the key is permitted, as is
// absence; a never-written value is a violation.
func (c *checker) checkCrossRead(key, got string, found bool, err error) {
	if err != nil {
		c.checkReadError(key, err)
		return
	}
	if !found {
		return
	}
	ks := c.keys[key]
	ks.mu.Lock()
	defer ks.mu.Unlock()
	if !ks.ever[got] {
		c.violate("cross read of %s returned never-written value %.40q", key, got)
	}
}

// checkScanEntry validates one (key, value) produced by an iterator.
func (c *checker) checkScanEntry(key, v string) {
	ks, ok := c.keys[key]
	if !ok {
		c.violate("scan surfaced unknown key %.40q", key)
		return
	}
	ks.mu.Lock()
	defer ks.mu.Unlock()
	if !ks.ever[v] {
		c.violate("scan of %s returned never-written value %.40q", key, v)
	}
}

// checkReadError classifies a read-path error. Typed corruption and
// integrity failures are acceptable only after tampering was injected (a
// tampered block must surface as exactly this, never as wrong bytes);
// transient I/O errors are always acceptable (they do not assert anything
// false about the data).
func (c *checker) checkReadError(key string, err error) {
	if c.tainted.Load() {
		return
	}
	var ce *lsm.CorruptionError
	if errors.As(err, &ce) {
		c.violate("read of %s reported corruption with no tampering injected: %v", key, err)
		return
	}
	if errors.Is(err, lsm.ErrIntegrity) {
		c.violate("read of %s failed authentication with no tampering injected: %v", key, err)
	}
}

func (c *checker) report() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.violations...)
}
