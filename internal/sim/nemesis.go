package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"sort"
)

// eventKind enumerates the nemesis's moves. Each paired fault (full/free,
// fault/heal, kill/restart) is planned as a matched pair so no run ends
// wedged behind a fault that never lifts.
type eventKind int

const (
	evDiskFull         eventKind = iota // shrink the data quota to Used()+arg bytes
	evDiskFree                          // lift the quota; heal-reopen if degraded
	evNetFault                          // probabilistic I/O faults on the data path
	evNetHeal                           // clear fault rules; heal-reopen if degraded
	evCacheFault                        // fail the next arg secure-cache saves
	evKDSKill                           // stop KDS replica arg
	evKDSRestart                        // restart every stopped KDS replica
	evStoreKill                         // stop the dstore node (dstore runs only)
	evStoreRestart                      // restart the dstore node; heal if degraded
	evBitRot                            // flip a bit in one cold SST (taints the run)
	evConnStorm                         // burst of arg RESP clients, valid + malformed mix
	evSlowClient                        // arg connections send a partial frame and stall
	evCrash                             // power loss: snapshot, restore, reopen (arg=1: torn)
	evManifestSnap                      // adversary captures the durable image
	evManifestRollback                  // adversary restores the captured image (taints)
	evReplicaKill                       // stop storage replica 1+arg%2 mid-write (nodeloss runs)
	evReplicaRestart                    // restart stopped replicas; re-sync reclaims them
	evWorkerKill                        // kill compaction worker arg%2 mid-lease (nodeloss runs)
	evWorkerRestart                     // restart dead compaction workers
)

var eventNames = map[eventKind]string{
	evDiskFull:         "disk-full",
	evDiskFree:         "disk-free",
	evNetFault:         "net-fault",
	evNetHeal:          "net-heal",
	evCacheFault:       "cache-fault",
	evKDSKill:          "kds-kill",
	evKDSRestart:       "kds-restart",
	evStoreKill:        "store-kill",
	evStoreRestart:     "store-restart",
	evBitRot:           "bit-rot",
	evConnStorm:        "conn-storm",
	evSlowClient:       "slow-client",
	evCrash:            "crash",
	evManifestSnap:     "manifest-snap",
	evManifestRollback: "manifest-rollback",
	evReplicaKill:      "replica-kill",
	evReplicaRestart:   "replica-restart",
	evWorkerKill:       "worker-kill",
	evWorkerRestart:    "worker-restart",
}

// event is one planned nemesis action, firing when the virtual clock
// reaches step. Everything in it derives from the seed, so the plan —
// and therefore its hash — replays byte-identically for a given seed.
type event struct {
	step uint64
	kind eventKind
	arg  int64
}

func (e event) String() string {
	return fmt.Sprintf("step=%d event=%s arg=%d", e.step, eventNames[e.kind], e.arg)
}

// planNemesis derives the full fault schedule from the seed. Pairing
// discipline: at most one disk-full, one net-fault window, one store-kill,
// one replica-kill, and one worker-kill outstanding at a time, and at
// least one KDS replica stays up outside kill windows — so the replicated
// fleet never drops below write quorum by plan (crashes can still overlap
// a kill window, which is the hard case the re-sync path must absorb).
// Crashes and bit-rot can land anywhere.
func planNemesis(cfg Config, rng *rand.Rand) []event {
	n := cfg.Events
	if n <= 0 {
		return nil
	}
	// Draw distinct steps across the run, then walk them assigning kinds
	// under the pairing discipline.
	steps := make(map[uint64]bool, n)
	for len(steps) < n {
		steps[1+uint64(rng.Int63n(int64(cfg.Ops)))] = true
	}
	ordered := make([]uint64, 0, n)
	for s := range steps {
		ordered = append(ordered, s)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })

	var (
		plan       []event
		diskFull   bool
		netFault   bool
		kdsDown    bool
		storeDown  bool
		repDown    bool
		workerDown bool
	)
	// The rollback attack needs two ordered moves — capture an image, then
	// restore it with durable history in between — so leaving it to the
	// probability rolls would make most schedules skip it. Reserve two of
	// the drawn steps instead: a third of the way in and two thirds in.
	// Gated on the flag so every pre-existing seed's plan (and hash) is
	// unchanged with it off.
	snapIdx, rbIdx := -1, -1
	if cfg.Rollback {
		snapIdx = len(ordered) / 3
		rbIdx = (2 * len(ordered)) / 3
		if rbIdx <= snapIdx {
			rbIdx = snapIdx + 1
		}
	}
	for i, step := range ordered {
		if i == snapIdx {
			plan = append(plan, event{step, evManifestSnap, 0})
			continue
		}
		if i == rbIdx {
			plan = append(plan, event{step, evManifestRollback, 0})
			continue
		}
		// Close any open window first with some probability, so paired
		// faults actually overlap the workload instead of lasting one op.
		switch {
		case diskFull && rng.Float64() < 0.6:
			plan = append(plan, event{step, evDiskFree, 0})
			diskFull = false
			continue
		case netFault && rng.Float64() < 0.6:
			plan = append(plan, event{step, evNetHeal, 0})
			netFault = false
			continue
		case kdsDown && rng.Float64() < 0.7:
			plan = append(plan, event{step, evKDSRestart, 0})
			kdsDown = false
			continue
		case storeDown && rng.Float64() < 0.8:
			plan = append(plan, event{step, evStoreRestart, 0})
			storeDown = false
			continue
		// The fleet windows only open under NodeLoss, so these draws never
		// happen (and never shift pre-existing plans) with the flag off.
		case repDown && rng.Float64() < 0.7:
			plan = append(plan, event{step, evReplicaRestart, 0})
			repDown = false
			continue
		case workerDown && rng.Float64() < 0.7:
			plan = append(plan, event{step, evWorkerRestart, 0})
			workerDown = false
			continue
		}
		roll := rng.Float64()
		switch {
		case roll < 0.18 && !diskFull:
			plan = append(plan, event{step, evDiskFull, 512 + rng.Int63n(4096)})
			diskFull = true
		case roll < 0.33 && !netFault:
			plan = append(plan, event{step, evNetFault, 2 + rng.Int63n(6)})
			netFault = true
		case roll < 0.43:
			plan = append(plan, event{step, evCacheFault, 1 + rng.Int63n(3)})
		case roll < 0.55 && !kdsDown:
			plan = append(plan, event{step, evKDSKill, rng.Int63n(2)})
			kdsDown = true
		case roll < 0.63 && cfg.Dstore && !storeDown:
			plan = append(plan, event{step, evStoreKill, 0})
			storeDown = true
		case roll < 0.72 && cfg.BitRot:
			plan = append(plan, event{step, evBitRot, rng.Int63()})
		// The serving-layer events are gated on ConnStorm so every
		// pre-existing seed's plan (and hash) is unchanged with it off.
		case roll < 0.80 && cfg.ConnStorm:
			plan = append(plan, event{step, evConnStorm, 3 + rng.Int63n(6)})
		case roll < 0.85 && cfg.ConnStorm:
			plan = append(plan, event{step, evSlowClient, 1 + rng.Int63n(3)})
		// The fleet events are gated on NodeLoss the same way ConnStorm's
		// are: the short-circuit keeps the draw count (and so every
		// pre-existing seed's plan and hash) unchanged with the flag off.
		// Only replicas 1 and 2 are ever killed — replica 0 shares the
		// primary site's fault domain and dies in crash events instead.
		case roll < 0.80 && cfg.NodeLoss && !repDown:
			plan = append(plan, event{step, evReplicaKill, 1 + rng.Int63n(2)})
			repDown = true
		case roll < 0.88 && cfg.NodeLoss && !workerDown:
			plan = append(plan, event{step, evWorkerKill, rng.Int63n(2)})
			workerDown = true
		default:
			torn := int64(0)
			if rng.Float64() < 0.5 {
				torn = 1
			}
			plan = append(plan, event{step, evCrash, torn})
		}
	}
	// Lift anything still open so the run can finish and verify cleanly.
	end := uint64(cfg.Ops) + 1
	if diskFull {
		plan = append(plan, event{end, evDiskFree, 0})
	}
	if netFault {
		plan = append(plan, event{end, evNetHeal, 0})
	}
	if kdsDown {
		plan = append(plan, event{end, evKDSRestart, 0})
	}
	if storeDown {
		plan = append(plan, event{end, evStoreRestart, 0})
	}
	if repDown {
		plan = append(plan, event{end, evReplicaRestart, 0})
	}
	if workerDown {
		plan = append(plan, event{end, evWorkerRestart, 0})
	}
	return plan
}

// hashPlan is the run's reproducibility witness: a digest over the
// seed-derived schedule (and only over it — runtime measurements would
// vary with thread interleaving). Two runs of the same seed and config
// must produce the same hash.
func hashPlan(seed uint64, plan []event) string {
	h := sha256.New()
	fmt.Fprintf(h, "seed=%d\n", seed)
	for _, e := range plan {
		fmt.Fprintf(h, "%s\n", e)
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}
